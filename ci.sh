#!/usr/bin/env bash
# Tier-1 verification for the DVC simulator.
#
#   ./ci.sh             configure (warnings-as-errors), build, and run the
#                       full test suite
#   ./ci.sh --sanitize  same, under AddressSanitizer + UBSan (separate
#                       build tree, slower; catches lifetime/UB bugs the
#                       plain build cannot)
#   ./ci.sh --soak      the sanitizer build with -DDVC_SOAK=ON, running
#                       only the soak-labelled suites (`ctest -L soak`) —
#                       the randomized failure schedules where lifetime
#                       bugs in the recovery paths actually surface
#   ./ci.sh --coverage  instrumented (gcc --coverage) build, runs the
#                       tier-1 suite and writes a per-subsystem
#                       line-coverage artifact (build-cov/coverage.json)
#   ./ci.sh --tidy      clang-tidy (config in .clang-tidy: bugprone-*,
#                       concurrency-*, and a readability subset) over every
#                       translation unit in src/, against a fresh
#                       compile_commands.json
#
# All modes exit non-zero on any build or test failure.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

build_and_test() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

case "${1:-}" in
  --sanitize)
    SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -g"
    build_and_test build-asan \
      -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
      -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
    ;;
  --soak)
    SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -g"
    cmake -B build-soak -S . \
      -DCMAKE_BUILD_TYPE=Debug \
      -DDVC_SOAK=ON \
      -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
      -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
    cmake --build build-soak -j "$JOBS"
    ctest --test-dir build-soak --output-on-failure -L soak
    ;;
  --coverage)
    COV_FLAGS="--coverage -O0 -g"
    cmake -B build-cov -S . \
      -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_CXX_FLAGS="$COV_FLAGS" \
      -DCMAKE_EXE_LINKER_FLAGS="--coverage"
    cmake --build build-cov -j "$JOBS"
    ctest --test-dir build-cov --output-on-failure -L tier1 -j "$JOBS"
    python3 tools/coverage_report.py build-cov build-cov/coverage.json
    ;;
  --tidy)
    TIDY=""
    for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17; do
      if command -v "$candidate" >/dev/null 2>&1; then
        TIDY="$candidate"
        break
      fi
    done
    if [ -z "$TIDY" ]; then
      echo "ci.sh --tidy: clang-tidy not found on PATH" >&2
      exit 2
    fi
    cmake -B build-tidy -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    # Every library/tool translation unit; headers are covered through
    # their includers via the HeaderFilterRegex in .clang-tidy.
    find src -name '*.cpp' -print0 |
      xargs -0 -P "$JOBS" -n 1 "$TIDY" -p build-tidy --quiet
    ;;
  "")
    build_and_test build -DDVC_WERROR=ON
    ;;
  *)
    echo "usage: $0 [--sanitize|--soak|--coverage|--tidy]" >&2
    exit 2
    ;;
esac
