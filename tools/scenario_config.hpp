#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace dvc::tools {

/// Parser for dvcsim scenario files: one `key = value` per line, `#`
/// comments, blank lines ignored. Values are strings; typed getters
/// convert on demand and throw with the offending key on bad input.
class ScenarioConfig final {
 public:
  /// Parses scenario text (the CLI reads the file and hands it in).
  static ScenarioConfig parse(const std::string& text) {
    ScenarioConfig cfg;
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      const std::string trimmed = trim(line);
      if (trimmed.empty()) continue;
      const auto eq = trimmed.find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("scenario line " +
                                    std::to_string(line_no) +
                                    ": expected key = value");
      }
      const std::string key = trim(trimmed.substr(0, eq));
      const std::string value = trim(trimmed.substr(eq + 1));
      if (key.empty()) {
        throw std::invalid_argument("scenario line " +
                                    std::to_string(line_no) + ": empty key");
      }
      cfg.values_[key] = value;
    }
    return cfg;
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key);
  }

  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      std::size_t pos = 0;
      const std::int64_t v = std::stoll(it->second, &pos);
      if (pos != it->second.size()) throw std::invalid_argument("trailing");
      return v;
    } catch (const std::exception&) {
      throw std::invalid_argument("scenario key '" + key +
                                  "': not an integer: " + it->second);
    }
  }

  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      std::size_t pos = 0;
      const double v = std::stod(it->second, &pos);
      if (pos != it->second.size()) throw std::invalid_argument("trailing");
      return v;
    } catch (const std::exception&) {
      throw std::invalid_argument("scenario key '" + key +
                                  "': not a number: " + it->second);
    }
  }

  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const std::string& v = it->second;
    if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
    if (v == "false" || v == "no" || v == "off" || v == "0") return false;
    throw std::invalid_argument("scenario key '" + key +
                                "': not a boolean: " + v);
  }

  /// Rejects keys outside the caller's vocabulary, so a typo in a
  /// scenario file fails loudly instead of silently falling back to a
  /// default. Throws listing the first offending key.
  void validate_keys(std::initializer_list<const char*> known) const {
    const std::set<std::string, std::less<>> allowed(known.begin(),
                                                     known.end());
    for (const auto& [key, value] : values_) {
      if (!allowed.contains(key)) {
        throw std::invalid_argument("scenario key '" + key +
                                    "' is not recognised");
      }
    }
  }

  /// Container overload, for vocabularies assembled at runtime (the shared
  /// list in scenario_keys.hpp).
  void validate_keys(const std::vector<const char*>& known) const {
    const std::set<std::string, std::less<>> allowed(known.begin(),
                                                     known.end());
    for (const auto& [key, value] : values_) {
      if (!allowed.contains(key)) {
        throw std::invalid_argument("scenario key '" + key +
                                    "' is not recognised");
      }
    }
  }

  /// Sets (or overrides) one key — how a sweep mix's overrides and the
  /// per-cell seed are layered onto a base scenario.
  void set(const std::string& key, std::string value) {
    values_[key] = std::move(value);
  }

  [[nodiscard]] const std::map<std::string, std::string>& entries()
      const noexcept {
    return values_;
  }

 private:
  [[nodiscard]] static std::string trim(const std::string& s) {
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos) return "";
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
  }

  std::map<std::string, std::string> values_;
};

}  // namespace dvc::tools
