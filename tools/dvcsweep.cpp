// dvcsweep — parallel scenario-sweep driver for the DVC simulator.
//
//   dvcsweep [--jobs N] [--out PATH] [--seeds A..B] <grid.scn>
//   dvcsweep --repro <cell-key> <grid.scn>
//
// A grid file is a dvcsim scenario plus sweep lines:
//
//   sweep.seeds = 1..8            # or a space-separated list
//   sweep.mixes = faulty durable  # named fault mixes (optional)
//   mix.faulty.fault.enabled = true
//   mix.faulty.fault.node_crash_mtbf_s = 70
//
// The grid expands to the cross product mixes × seeds; each cell is an
// independent Simulation run on a worker pool (--jobs, default hardware
// concurrency) with the invariant checker attached. Outcomes merge into
// one aggregate JSON document whose bytes are independent of --jobs.
//
// Cell keys are `<grid-stem>:<mix>:<seed>`. `--repro` re-runs exactly one
// cell on one thread and prints its outcome record — the command line
// embedded in every reported violation.
//
// Exit status: 0 when every cell completed or was diagnosed; 1 when any
// cell hit an invariant violation or wedged; 2 on usage/load errors.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/sweep.hpp"

using namespace dvc;  // NOLINT — CLI brevity

int main(int argc, char** argv) {
  std::string grid_path;
  std::string out_path;
  std::string repro_key;
  std::string seeds_arg;
  unsigned jobs = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      jobs = static_cast<unsigned>(std::stoul(value("--jobs")));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<unsigned>(std::stoul(arg.substr(7)));
    } else if (arg == "--out") {
      out_path = value("--out");
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--seeds") {
      seeds_arg = value("--seeds");
    } else if (arg.rfind("--seeds=", 0) == 0) {
      seeds_arg = arg.substr(8);
    } else if (arg == "--repro") {
      repro_key = value("--repro");
    } else if (arg.rfind("--repro=", 0) == 0) {
      repro_key = arg.substr(8);
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else if (grid_path.empty()) {
      grid_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (grid_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--jobs N] [--out PATH] [--seeds A..B]"
                 " [--repro CELL-KEY] <grid.scn>\n",
                 argv[0]);
    return 2;
  }
  std::ifstream file(grid_path);
  if (!file) {
    std::fprintf(stderr, "cannot open grid file: %s\n", grid_path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << file.rdbuf();

  try {
    tools::SweepGrid grid = tools::SweepGrid::load(grid_path, text.str());
    if (!seeds_arg.empty()) {
      // Reuse the grid's own seed grammar by parsing a one-line grid.
      const tools::SweepGrid override_grid = tools::SweepGrid::load(
          "seeds", "sweep.seeds = " + seeds_arg + "\n");
      grid.set_seeds(override_grid.seeds());
    }
    const std::vector<tools::SweepCell> cells = grid.cells();

    if (!repro_key.empty()) {
      for (const tools::SweepCell& cell : cells) {
        if (cell.key != repro_key) continue;
        const tools::CellOutcome out = tools::run_cell(cell);
        std::printf("%s\n", out.to_json().c_str());
        for (const check::Violation& v : out.violations) {
          std::fprintf(stderr, "[%s t=%llu] %s: %s\n",
                       std::string(check::to_string(v.boundary)).c_str(),
                       static_cast<unsigned long long>(v.at),
                       v.invariant.c_str(), v.detail.c_str());
        }
        return out.status == tools::CellStatus::kCompleted ||
                       out.status == tools::CellStatus::kDiagnosed
                   ? 0
                   : 1;
      }
      std::fprintf(stderr, "no such cell in this grid: %s\n",
                   repro_key.c_str());
      return 2;
    }

    const tools::SweepReport report =
        tools::run_sweep(cells, jobs, grid_path);
    const std::string json = report.to_json();
    if (out_path.empty()) {
      std::printf("%s\n", json.c_str());
    } else {
      std::ofstream out(out_path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 2;
      }
      out << json << '\n';
      std::fprintf(stderr, "aggregate:       %s\n", out_path.c_str());
    }
    std::fprintf(stderr,
                 "sweep:           %zu cells — %zu completed, %zu"
                 " diagnosed, %zu violations, %zu wedged\n",
                 report.outcomes.size(), report.completed, report.diagnosed,
                 report.invariant_violations, report.wedged);
    for (const tools::CellOutcome& o : report.outcomes) {
      if (o.status == tools::CellStatus::kCompleted ||
          o.status == tools::CellStatus::kDiagnosed) {
        continue;
      }
      std::fprintf(stderr, "  %-12s %s — repro: %s\n",
                   tools::to_string(o.status), o.key.c_str(),
                   o.repro.c_str());
      for (const check::Violation& v : o.violations) {
        std::fprintf(stderr, "    [%s t=%llu] %s: %s\n",
                     std::string(check::to_string(v.boundary)).c_str(),
                     static_cast<unsigned long long>(v.at),
                     v.invariant.c_str(), v.detail.c_str());
      }
      if (!o.error.empty()) {
        std::fprintf(stderr, "    error: %s\n", o.error.c_str());
      }
    }
    return (report.invariant_violations == 0 && report.wedged == 0) ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dvcsweep: %s\n", e.what());
    return 2;
  }
}
