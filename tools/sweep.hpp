#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "tools/scenario_config.hpp"

namespace dvc::tools {

/// How one sweep cell ended.
enum class CellStatus : std::uint8_t {
  kCompleted,          ///< job ran to completion, zero violations
  kDiagnosed,          ///< job lost, but with an explicit diagnosis
  kInvariantViolation, ///< the checker caught a broken invariant
  kWedged,             ///< horizon hit with neither completion nor diagnosis
};

[[nodiscard]] const char* to_string(CellStatus s) noexcept;

/// One cell of a sweep grid: a fully resolved scenario (base keys + mix
/// overrides + seed) plus the identity that names it in the aggregate.
struct SweepCell {
  std::string key;   ///< "<grid>:<mix>:<seed>" — the stable cell identity
  std::string grid;  ///< grid stem the cell came from
  std::string mix;   ///< fault-mix name ("base" when the grid has none)
  std::uint64_t seed = 0;
  ScenarioConfig cfg;
};

/// Outcome of one cell: status, the headline counters the soak teeth
/// assert over, and every invariant violation with a reproducing command.
struct CellOutcome {
  std::string key;
  std::string mix;
  std::uint64_t seed = 0;
  CellStatus status = CellStatus::kWedged;
  std::string error;  ///< non-empty when the cell threw instead of running

  std::uint32_t iterations = 0;  ///< rank-0 iterations completed
  double sim_time_s = 0.0;
  std::uint64_t checkpoints = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t watchdog = 0;
  std::uint64_t lsc_retries = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_lifted = 0;
  std::uint64_t verify_failures = 0;
  std::uint64_t failovers = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t damage_planted = 0;
  std::uint64_t coordinator_crashes = 0;
  std::uint64_t coordinator_reboots = 0;
  std::uint64_t stale_completions = 0;
  std::uint64_t orphans_swept = 0;
  std::uint64_t fenced_writes = 0;

  std::vector<check::Violation> violations;
  std::string repro;  ///< `dvcsweep --repro <key> <grid-file>`

  /// One deterministic JSON object (keys in fixed order, no wall-clock or
  /// thread-dependent data).
  [[nodiscard]] std::string to_json() const;
};

/// A sweep grid: a base scenario plus `sweep.seeds`, optional
/// `sweep.mixes = m1 m2 ...` and per-mix `mix.<name>.<key> = value`
/// override lines. Expands to the cross product mixes × seeds.
class SweepGrid final {
 public:
  /// Parses grid text. `name` becomes the cell-key stem and should be the
  /// grid file's path (or any stable name in tests). Throws on unknown
  /// keys, malformed seed ranges, or overrides for undeclared mixes.
  static SweepGrid load(std::string name, const std::string& text);

  /// Replaces the grid's seed list (the CLI's --seeds override).
  void set_seeds(std::vector<std::uint64_t> seeds);

  /// All cells, sorted by key — the expansion order is part of the
  /// aggregate's byte-determinism contract.
  [[nodiscard]] std::vector<SweepCell> cells() const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<std::string>& mixes() const noexcept {
    return mixes_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& seeds() const noexcept {
    return seeds_;
  }

 private:
  std::string name_;
  std::string stem_;  ///< name_ minus directory and .scn suffix
  ScenarioConfig base_;
  std::vector<std::string> mixes_;
  std::map<std::string, std::map<std::string, std::string>> overrides_;
  std::vector<std::uint64_t> seeds_;
};

/// Runs one cell to its outcome: a silent dvcsim-reliability-style run
/// with the invariant checker attached (unless `check.invariants = off`).
/// Deterministic per cell and safe to call from multiple threads at once
/// (each cell owns its entire simulation).
[[nodiscard]] CellOutcome run_cell(const SweepCell& cell);

/// The merged result of a sweep.
struct SweepReport {
  std::string grid;
  std::vector<CellOutcome> outcomes;  ///< sorted by cell key
  std::size_t completed = 0;
  std::size_t diagnosed = 0;
  std::size_t invariant_violations = 0;
  std::size_t wedged = 0;

  /// The aggregate JSON document. Byte-identical for the same cell list
  /// regardless of `jobs`: cells are pre-sorted, outcomes land by index,
  /// and nothing time- or thread-dependent is emitted.
  [[nodiscard]] std::string to_json() const;
};

/// Expands nothing and merges everything: runs `cells` across `jobs`
/// worker threads (jobs = 0 → hardware concurrency) and returns the
/// deterministic aggregate.
[[nodiscard]] SweepReport run_sweep(const std::vector<SweepCell>& cells,
                                    unsigned jobs,
                                    const std::string& grid_name);

}  // namespace dvc::tools
