// dvcsim — scenario-driven Dynamic Virtual Clustering simulator.
//
//   dvcsim <scenario-file> [--metrics-json=PATH] [--chrome-trace=PATH]
//
// --metrics-json writes every counter/gauge/histogram of the run as
// deterministic JSON; --chrome-trace writes the sim-time span timeline in
// Chrome trace_event format (open in chrome://tracing or Perfetto). Both
// are also settable as scenario keys (metrics_json / chrome_trace); the
// command line wins.
//
// A scenario file is `key = value` lines (# comments). Common keys:
//
//   experiment            reliability | checkpoint | migrate
//   seed                  RNG seed (default 42)
//   clusters              physical clusters (default 1)
//   nodes_per_cluster     nodes per cluster (default 32)
//   store_write_mbps      shared store write bandwidth (default 100)
//   vc_size               guests in the virtual cluster (default 16)
//   guest_ram_mib         guest memory (default 256)
//   workload              ptrans | hpl (default ptrans)
//   iterations            bulk-synchronous iterations (default 1000)
//   iter_seconds          compute seconds per iteration (default 0.5)
//   checkpoint_interval_s periodic LSC interval (default 300)
//   incremental           dirty-only checkpoints (default false)
//   store_replicas        extra checkpoint-store replicas, k-1 (default 0)
//   keep_checkpoints      retained recovery generations (default 2)
//   max_restore_retries   restore failures tolerated per point (default 4)
//   mtbf_per_node_s       0 disables failures (default 0)
//   repair_s              node repair time (default 1800)
//   predicted_fraction    share of faults announced early (default 0)
//   prediction_lead_s     warning lead time (default 120)
//   proactive             evacuate on predictions (default false)
//   migrate_at_s          [migrate] when to move the VC (default 60)
//   live                  [migrate] pre-copy instead of LSC (default true)
//   pattern               communication pattern override: none | ring |
//                         broadcast | treebroadcast | alltoall
//   msg_bytes             per-message payload override (0 = workload's)
//   horizon_s             [reliability] simulation horizon (default 100 h)
//   slice_s               [reliability] drive-loop granularity (default 10)
//   settle_s              [reliability] extra settle after the loop (0)
//   check.invariants      attach the invariant checker (default true);
//                         violations are printed and force exit 1
//   trace                 echo the machine room's event log (default true)
//   metrics_json          metrics dump path ("" disables, default "")
//   chrome_trace          Chrome trace path ("" disables, default "")
//
// Fault-injection keys (all off by default; see src/fault/):
//
//   fault.enabled           master switch for the injector (default false)
//   fault.start_s           shift the whole fault schedule this much later
//   fault.seed              RNG seed for stochastic faults (default: seed)
//   fault.script            scripted events, FaultPlan::parse_script grammar
//   fault.horizon_s         stochastic sampling window (0 disables)
//   fault.node_crash_mtbf_s mean gap between injected node crashes
//   fault.node_down_s       reboot time after a crash (0 = stays dead)
//   fault.link_down_mtbf_s  mean gap between inter-cluster link cuts
//   fault.link_down_s       duration of each link cut (default 30)
//   fault.disk_slow_mtbf_s  mean gap between store slowdowns
//   fault.disk_slow_s       duration of each slowdown (default 60)
//   fault.disk_slow_factor  bandwidth divisor while slowed (default 10)
//   fault.clock_step_mtbf_s mean gap between host clock steps
//   fault.clock_step_ms     max |step| in milliseconds (default 500)
//   fault.store_corrupt_mtbf_s mean gap between silent image corruptions
//   fault.store_tear_mtbf_s    mean gap between torn-write store deaths
//   fault.partition_mtbf_s  mean gap between network partitions (needs >= 2
//                           clusters; one cluster is cut off from the rest)
//   fault.partition_s       duration of each partition (default 30)
//   fault.coordinator_crash_mtbf_s mean gap between control-plane crashes
//   fault.coordinator_down_s       coordinator reboot time (default 20)
//
// Coordinator fault-domain keys (see docs/ARCHITECTURE.md):
//
//   coordinator.head_node   node hosting the DVC control plane (-1 = the
//                           control plane is not a fault domain, default)
//   coordinator.lease_s     epoch lease on the head node's clock (default 10)
//
// Recovery-tuning keys:
//
//   lsc.round_timeout_s     abort an LSC round after this long (0 = never)
//   lsc.max_round_retries   re-attempt failed/timed-out rounds (default 0)
//   lsc.retry_backoff_s     first retry delay, doubles per retry (default 2)
//   watchdog_interval_s     [reliability] member liveness sweep (0 = off)
//   abort_saves_on_failure  fail in-flight saves on node death (default false)
//
// Sample scenarios live in scenarios/.

#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "app/workload.hpp"
#include "check/invariants.hpp"
#include "ckpt/interval.hpp"
#include "ckpt/lsc.hpp"
#include "core/machine_room.hpp"
#include "fault/fault_injector.hpp"
#include "tools/scenario_config.hpp"
#include "tools/scenario_keys.hpp"

using namespace dvc;  // NOLINT — CLI brevity

namespace {

struct Scenario {
  tools::ScenarioConfig cfg;
  core::MachineRoom room;
  core::VirtualCluster* vc = nullptr;
  std::unique_ptr<app::ParallelApp> application;
  std::unique_ptr<ckpt::NtpLscCoordinator> lsc;
  std::unique_ptr<fault::FaultInjector> injector;
  std::uint64_t seed = 42;
  std::unique_ptr<check::Invariants> inv;
};

core::MachineRoomOptions room_options(const tools::ScenarioConfig& cfg) {
  core::MachineRoomOptions o;
  o.clusters = static_cast<std::uint32_t>(cfg.get_int("clusters", 1));
  o.nodes_per_cluster =
      static_cast<std::uint32_t>(cfg.get_int("nodes_per_cluster", 32));
  o.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  const double write_mbps = cfg.get_double("store_write_mbps", 100.0);
  o.store.write_bps = write_mbps * 1e6;
  o.store.read_bps = 2 * write_mbps * 1e6;
  o.hv.abort_saves_on_failure =
      cfg.get_bool("abort_saves_on_failure", false);
  o.store_replicas =
      static_cast<std::uint32_t>(cfg.get_int("store_replicas", 0));
  return o;
}

std::unique_ptr<Scenario> build(const tools::ScenarioConfig& cfg) {
  auto sc = std::unique_ptr<Scenario>(new Scenario{
      cfg, core::MachineRoom(room_options(cfg)), nullptr, nullptr, nullptr,
      nullptr, static_cast<std::uint64_t>(cfg.get_int("seed", 42)),
      nullptr});
  if (cfg.get_bool("trace", true)) {
    sc->room.trace.set_echo(true);
    sc->room.trace.set_min_level(sim::TraceLevel::kInfo);
  }

  const auto vc_size =
      static_cast<std::uint32_t>(cfg.get_int("vc_size", 16));
  core::VcSpec spec;
  spec.name = "dvcsim";
  spec.size = vc_size;
  spec.guest.ram_bytes =
      static_cast<std::uint64_t>(cfg.get_int("guest_ram_mib", 256)) << 20;
  const auto placement = sc->room.dvc->pick_nodes(vc_size);
  if (!placement) {
    throw std::runtime_error("not enough nodes for vc_size=" +
                             std::to_string(vc_size));
  }
  sc->vc = &sc->room.dvc->create_vc(spec, *placement, {});
  // Opt-in coordinator fault domain: the control plane runs on a head
  // node, journals intents, and fences its commands with an epoch.
  const std::int64_t head = cfg.get_int("coordinator.head_node", -1);
  if (head >= 0) {
    sc->room.dvc->designate_head_node(
        static_cast<hw::NodeId>(head),
        sim::from_seconds(cfg.get_double("coordinator.lease_s", 10.0)));
  }
  sc->room.sim.run_until(20 * sim::kSecond);

  const std::string kind = cfg.get_string("workload", "ptrans");
  const auto iterations =
      static_cast<std::uint32_t>(cfg.get_int("iterations", 1000));
  const double iter_s = cfg.get_double("iter_seconds", 0.5);
  app::WorkloadSpec workload =
      kind == "hpl" ? app::make_hpl(16384, vc_size, iterations)
                    : app::make_ptrans(4096, vc_size, iterations);
  workload.flops_per_rank_iter = iter_s * 1e10;
  workload.bytes_per_msg = 64 << 10;
  const std::string pattern = cfg.get_string("pattern", "");
  if (!pattern.empty()) {
    if (pattern == "none") {
      workload.pattern = app::Pattern::kNone;
    } else if (pattern == "ring") {
      workload.pattern = app::Pattern::kRing;
    } else if (pattern == "broadcast") {
      workload.pattern = app::Pattern::kBroadcast;
    } else if (pattern == "treebroadcast") {
      workload.pattern = app::Pattern::kTreeBroadcast;
    } else if (pattern == "alltoall") {
      workload.pattern = app::Pattern::kAllToAll;
    } else {
      throw std::invalid_argument("unknown pattern: " + pattern);
    }
  }
  const std::int64_t msg_bytes = cfg.get_int("msg_bytes", 0);
  if (msg_bytes > 0) {
    workload.bytes_per_msg = static_cast<std::uint64_t>(msg_bytes);
  }
  sc->application = std::make_unique<app::ParallelApp>(
      sc->room.sim, sc->room.fabric.network(), sc->vc->contexts(),
      workload);
  sc->room.dvc->attach_app(*sc->vc, *sc->application);
  sc->application->start();

  sc->lsc = std::make_unique<ckpt::NtpLscCoordinator>(
      sc->room.sim, ckpt::NtpLscCoordinator::Config{},
      sim::Rng(sc->seed ^ 0xD5C));
  sc->lsc->set_metrics(&sc->room.metrics);
  ckpt::LscCoordinator::RetryPolicy retry;
  retry.round_timeout =
      sim::from_seconds(cfg.get_double("lsc.round_timeout_s", 0.0));
  retry.max_round_retries =
      static_cast<int>(cfg.get_int("lsc.max_round_retries", 0));
  retry.backoff =
      sim::from_seconds(cfg.get_double("lsc.retry_backoff_s", 2.0));
  sc->lsc->set_retry_policy(retry);

  // Invariant checker: always compiled, on by default, opt out with
  // `check.invariants = off`. Violations turn the run's exit nonzero.
  if (cfg.get_bool("check.invariants", true)) {
    sc->inv = std::make_unique<check::Invariants>(check::Invariants::Wiring{
        &sc->room.sim, sc->room.dvc.get(), &sc->room.images,
        &sc->room.fence, &sc->room.metrics});
    sc->inv->attach();
    sc->lsc->set_check(sc->inv.get());
  }
  return sc;
}

/// The injector's control-plane kill switch: a `coordcrash` event takes
/// the DVC coordinator down for its payload duration.
std::function<void(sim::Duration)> coordinator_crash_hook(Scenario& sc) {
  return [&sc](sim::Duration down_for) {
    sc.room.dvc->crash_coordinator(down_for);
  };
}

/// Builds the fault plan out of `fault.*` keys and arms it (no-op unless
/// fault.enabled). Scripted events and stochastic processes accumulate in
/// one plan; sampling is pinned to fault.seed, so the schedule is the same
/// for every run of a scenario file regardless of what the room does.
void arm_faults(Scenario& sc) {
  if (!sc.cfg.get_bool("fault.enabled", false)) return;
  fault::FaultPlan plan;
  const std::string script = sc.cfg.get_string("fault.script", "");
  if (!script.empty()) plan = fault::FaultPlan::parse_script(script);
  fault::StochasticFaults spec;
  spec.horizon =
      sim::from_seconds(sc.cfg.get_double("fault.horizon_s", 0.0));
  spec.node_crash_mtbf = sim::from_seconds(
      sc.cfg.get_double("fault.node_crash_mtbf_s", 0.0));
  spec.node_down_for =
      sim::from_seconds(sc.cfg.get_double("fault.node_down_s", 0.0));
  spec.link_down_mtbf = sim::from_seconds(
      sc.cfg.get_double("fault.link_down_mtbf_s", 0.0));
  spec.link_down_for =
      sim::from_seconds(sc.cfg.get_double("fault.link_down_s", 30.0));
  spec.disk_slow_mtbf = sim::from_seconds(
      sc.cfg.get_double("fault.disk_slow_mtbf_s", 0.0));
  spec.disk_slow_for =
      sim::from_seconds(sc.cfg.get_double("fault.disk_slow_s", 60.0));
  spec.disk_slow_factor = sc.cfg.get_double("fault.disk_slow_factor", 10.0);
  spec.clock_step_mtbf = sim::from_seconds(
      sc.cfg.get_double("fault.clock_step_mtbf_s", 0.0));
  spec.clock_step_max = static_cast<sim::Duration>(
      sc.cfg.get_double("fault.clock_step_ms", 500.0) * sim::kMillisecond);
  spec.store_corrupt_mtbf = sim::from_seconds(
      sc.cfg.get_double("fault.store_corrupt_mtbf_s", 0.0));
  spec.store_tear_mtbf = sim::from_seconds(
      sc.cfg.get_double("fault.store_tear_mtbf_s", 0.0));
  spec.partition_mtbf = sim::from_seconds(
      sc.cfg.get_double("fault.partition_mtbf_s", 0.0));
  spec.partition_for =
      sim::from_seconds(sc.cfg.get_double("fault.partition_s", 30.0));
  spec.coordinator_crash_mtbf = sim::from_seconds(
      sc.cfg.get_double("fault.coordinator_crash_mtbf_s", 0.0));
  spec.coordinator_down_for = sim::from_seconds(
      sc.cfg.get_double("fault.coordinator_down_s", 20.0));
  if (spec.horizon > 0) {
    const auto fault_seed = static_cast<std::uint64_t>(sc.cfg.get_int(
        "fault.seed", static_cast<std::int64_t>(sc.seed)));
    plan.sample(spec,
                static_cast<std::uint32_t>(sc.room.fabric.node_count()),
                static_cast<std::uint32_t>(sc.room.fabric.cluster_count()),
                sim::Rng(fault_seed),
                static_cast<std::uint32_t>(
                    1 + sc.room.replica_stores.size()));
  }
  // `fault.start_s` shifts the whole sampled schedule, so a grid can open
  // the fault window after the first full checkpoint instead of at boot.
  const sim::Duration start =
      sim::from_seconds(sc.cfg.get_double("fault.start_s", 0.0));
  if (start > 0) {
    fault::FaultPlan shifted;
    for (fault::FaultEvent e : plan.schedule()) {
      e.at += start;
      shifted.add(e);
    }
    plan = std::move(shifted);
  }
  sc.injector = std::make_unique<fault::FaultInjector>(
      sc.room.sim,
      fault::FaultInjector::Hooks{&sc.room.fabric, &sc.room.store,
                                  sc.room.time.get(),
                                  sc.room.replica_ptrs(),
                                  coordinator_crash_hook(sc)},
      &sc.room.metrics);
  sc.injector->arm(plan);
  std::printf("fault injector:  %zu events armed\n", plan.size());
}

void arm_failures(Scenario& sc) {
  const double mtbf_s = sc.cfg.get_double("mtbf_per_node_s", 0.0);
  if (mtbf_s <= 0.0) return;
  const double repair_s = sc.cfg.get_double("repair_s", 1800.0);
  sc.room.fabric.subscribe_failures([&sc, repair_s](hw::NodeId n) {
    sc.room.sim.schedule_after(sim::from_seconds(repair_s), [&sc, n] {
      sc.room.fabric.repair_node(n);
    });
  });
  sc.room.fabric.arm_random_failures(
      sim::from_seconds(mtbf_s),
      sc.cfg.get_double("predicted_fraction", 0.0),
      sim::from_seconds(sc.cfg.get_double("prediction_lead_s", 120.0)));
}

void print_summary(Scenario& sc) {
  const app::JobStats st = sc.application->stats();
  std::printf("\n==== dvcsim summary ====\n");
  std::printf("completed:       %s\n",
              sc.application->completed()
                  ? "yes"
                  : (sc.application->failed() ? "no (job FAILED)"
                                              : "no (open-ended run)"));
  if (sc.application->completed()) {
    std::printf("wall time:       %.0f s\n", st.makespan_s);
  } else {
    std::printf("simulated time:  %.0f s\n",
                sim::to_seconds(sc.room.sim.now()));
  }
  std::printf("compute done:    %.0f s/rank (incl. redone)\n",
              st.compute_done_s);
  std::printf("messages:        %llu (%llu retransmitted, %llu dups)\n",
              static_cast<unsigned long long>(st.messages),
              static_cast<unsigned long long>(st.retransmissions),
              static_cast<unsigned long long>(st.duplicates));
  std::printf("node failures:   %llu (%llu predicted)\n",
              static_cast<unsigned long long>(
                  sc.room.fabric.failures_injected()),
              static_cast<unsigned long long>(
                  sc.room.fabric.failures_predicted()));
  std::printf("checkpoints:     %llu\n",
              static_cast<unsigned long long>(
                  sc.room.dvc->checkpoints_taken()));
  std::printf("recoveries:      %llu   evacuations: %llu   migrations:"
              " %llu (+%llu live)\n",
              static_cast<unsigned long long>(
                  sc.room.dvc->recoveries_performed()),
              static_cast<unsigned long long>(
                  sc.room.dvc->evacuations_performed()),
              static_cast<unsigned long long>(
                  sc.room.dvc->migrations_performed()),
              static_cast<unsigned long long>(
                  sc.room.dvc->live_migrations_performed()));
  if (sc.injector != nullptr) {
    std::printf("faults injected: %llu (%llu lifted, %llu skipped)\n",
                static_cast<unsigned long long>(
                    sc.injector->injected_total()),
                static_cast<unsigned long long>(sc.injector->lifted_total()),
                static_cast<unsigned long long>(
                    sc.injector->skipped_total()));
    std::printf("lsc retries:     %llu (%llu timeouts)   watchdog hits:"
                " %llu\n",
                static_cast<unsigned long long>(
                    sc.room.metrics.counter_value("ckpt.lsc.round_retries")),
                static_cast<unsigned long long>(
                    sc.room.metrics.counter_value(
                        "ckpt.lsc.round_timeouts")),
                static_cast<unsigned long long>(
                    sc.room.dvc->watchdog_detections()));
    std::printf("durability:      %llu verify failures, %llu replica"
                " failovers, %llu generation fallbacks, %llu abandoned\n",
                static_cast<unsigned long long>(
                    sc.room.metrics.counter_value(
                        "storage.store.verify_failures")),
                static_cast<unsigned long long>(
                    sc.room.metrics.counter_value(
                        "storage.replica.failovers")),
                static_cast<unsigned long long>(
                    sc.room.dvc->restore_fallbacks()),
                static_cast<unsigned long long>(
                    sc.room.dvc->recoveries_abandoned()));
  }
  if (sc.room.dvc->coordinator_crashes() > 0) {
    std::printf("coordinator:     %llu crashes, %llu reboots, %llu fenced"
                " writes, %llu orphan sets swept\n",
                static_cast<unsigned long long>(
                    sc.room.dvc->coordinator_crashes()),
                static_cast<unsigned long long>(
                    sc.room.dvc->coordinator_reboots()),
                static_cast<unsigned long long>(
                    sc.room.metrics.counter_value(
                        "storage.images.fenced_writes") +
                    sc.room.metrics.counter_value(
                        "vm.hypervisor.fenced_commands")),
                static_cast<unsigned long long>(
                    sc.room.dvc->orphan_sets_discarded() +
                    sc.room.dvc->orphan_rounds_aborted()));
  }
}

int run_reliability(Scenario& sc) {
  core::DvcManager::RecoveryPolicy policy;
  policy.coordinator = sc.lsc.get();
  policy.interval = sim::from_seconds(
      sc.cfg.get_double("checkpoint_interval_s", 300.0));
  policy.incremental = sc.cfg.get_bool("incremental", false);
  policy.proactive_migration = sc.cfg.get_bool("proactive", false);
  policy.watchdog_interval =
      sim::from_seconds(sc.cfg.get_double("watchdog_interval_s", 0.0));
  policy.keep_checkpoints = static_cast<std::size_t>(
      sc.cfg.get_int("keep_checkpoints", 2));
  policy.max_restore_retries =
      static_cast<int>(sc.cfg.get_int("max_restore_retries", 4));
  sc.room.dvc->enable_auto_recovery(*sc.vc, policy);
  arm_failures(sc);

  const sim::Time horizon = sim::from_seconds(
      sc.cfg.get_double("horizon_s", sim::to_seconds(100 * sim::kHour)));
  const sim::Duration slice =
      sim::from_seconds(sc.cfg.get_double("slice_s", 10.0));
  while (!sc.application->completed() && sc.room.sim.now() < horizon) {
    if (sc.application->failed() ||
        sc.vc->state() == core::VcState::kFailed) {
      break;  // recovery abandoned — no point simulating the wreck further
    }
    sc.room.sim.run_until(sc.room.sim.now() + slice);
  }
  const double settle_s = sc.cfg.get_double("settle_s", 0.0);
  if (settle_s > 0) {
    sc.room.sim.run_until(sc.room.sim.now() +
                          sim::from_seconds(settle_s));
  }
  print_summary(sc);
  if (!sc.application->completed()) {
    // A reliability run that ends without finishing the job is a failure:
    // either recovery gave up with a diagnosis (kFailed) or the VC wedged
    // until the horizon. Exit nonzero so CI and scripts notice.
    const char* why = "did not complete by the simulation horizon";
    if (sc.vc->state() == core::VcState::kFailed) {
      why = "recovery abandoned (every generation damaged or retries"
            " exhausted)";
    } else if (sc.application->failed()) {
      why = "application failed without a successful recovery";
    } else if (sc.vc->state() == core::VcState::kRecovering) {
      why = "wedged in recovery at the horizon";
    }
    std::printf("UNRECOVERED VC:  %s\n", why);
    return 1;
  }
  return 0;
}

int run_checkpoint(Scenario& sc) {
  // One coordinated checkpoint, then a whole-cluster restore: the T2
  // experiment as a scenario.
  std::optional<ckpt::LscResult> result;
  sc.room.sim.schedule_after(5 * sim::kSecond, [&] {
    sc.room.dvc->checkpoint_vc(*sc.vc, *sc.lsc,
                               [&](ckpt::LscResult r) { result = r; });
  });
  while (!result.has_value()) {
    sc.room.sim.run_until(sc.room.sim.now() + sim::kSecond);
  }
  std::printf("checkpoint %s: skew %.2f ms, %.1f s total\n",
              result->ok ? "sealed" : "FAILED",
              sim::to_milliseconds(result->pause_skew),
              sim::to_seconds(result->total_time));
  bool restored = false;
  sc.room.dvc->restore_vc(*sc.vc, sc.vc->placements(),
                          [&](bool ok) { restored = ok; });
  sc.room.sim.run_until(sc.room.sim.now() + 120 * sim::kSecond);
  std::printf("restore: %s\n", restored ? "ok" : "FAILED");
  sc.room.sim.run_until(sc.room.sim.now() + 60 * sim::kSecond);
  print_summary(sc);
  return (result->ok && restored && !sc.application->failed()) ? 0 : 1;
}

int run_migrate(Scenario& sc) {
  const double at_s = sc.cfg.get_double("migrate_at_s", 60.0);
  const bool live = sc.cfg.get_bool("live", true);
  const auto size = sc.vc->size();
  bool done = false;
  bool ok = false;
  sc.room.sim.run_until(sim::from_seconds(at_s));
  const auto target = sc.room.dvc->pick_nodes(size);
  if (!target) {
    std::printf("no target nodes free for migration\n");
    return 1;
  }
  if (live) {
    sc.room.dvc->live_migrate_vc(
        *sc.vc, *target, {},
        [&](core::DvcManager::LiveMigrationStats s) {
          done = true;
          ok = s.ok;
          std::printf("live migration: downtime %.2f s, %.1f s total, "
                      "%.2f GiB moved\n",
                      sim::to_seconds(s.max_downtime),
                      sim::to_seconds(s.total_time),
                      s.bytes_moved / (1ull << 30));
        });
  } else {
    sc.room.dvc->migrate_vc(*sc.vc, *sc.lsc, *target, [&](bool r) {
      done = true;
      ok = r;
    });
  }
  while (!done && sc.room.sim.now() < 2 * sim::kHour) {
    sc.room.sim.run_until(sc.room.sim.now() + sim::kSecond);
  }
  sc.room.sim.run_until(sc.room.sim.now() + 60 * sim::kSecond);
  print_summary(sc);
  return (ok && !sc.application->failed()) ? 0 : 1;
}

/// Writes the run's telemetry to the requested files (empty path = skip).
void export_telemetry(Scenario& sc, const std::string& metrics_path,
                      const std::string& trace_path) {
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) throw std::runtime_error("cannot write " + metrics_path);
    sc.room.metrics.write_metrics_json(out);
    std::printf("metrics:         %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) throw std::runtime_error("cannot write " + trace_path);
    sc.room.metrics.write_chrome_trace(out);
    std::printf("chrome trace:    %s (open in chrome://tracing)\n",
                trace_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_path;
  std::string metrics_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_path = arg.substr(15);
    } else if (arg.rfind("--chrome-trace=", 0) == 0) {
      trace_path = arg.substr(15);
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else if (scenario_path.empty()) {
      scenario_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (scenario_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s <scenario-file> [--metrics-json=PATH]"
                 " [--chrome-trace=PATH]\n",
                 argv[0]);
    return 2;
  }
  std::ifstream file(scenario_path);
  if (!file) {
    std::fprintf(stderr, "cannot open scenario file: %s\n",
                 scenario_path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << file.rdbuf();

  try {
    const tools::ScenarioConfig cfg =
        tools::ScenarioConfig::parse(text.str());
    cfg.validate_keys(tools::scenario_keys());
    if (metrics_path.empty()) {
      metrics_path = cfg.get_string("metrics_json", "");
    }
    if (trace_path.empty()) {
      trace_path = cfg.get_string("chrome_trace", "");
    }
    auto sc = build(cfg);
    arm_faults(*sc);
    const std::string experiment =
        cfg.get_string("experiment", "reliability");
    int status = 2;
    if (experiment == "reliability") {
      status = run_reliability(*sc);
    } else if (experiment == "checkpoint") {
      status = run_checkpoint(*sc);
    } else if (experiment == "migrate") {
      status = run_migrate(*sc);
    } else {
      std::fprintf(stderr, "unknown experiment: %s\n", experiment.c_str());
      return 2;
    }
    if (sc->inv != nullptr) {
      // Final invariant sweep; a CLI run doesn't force-drain the queue,
      // so no quiescence expectation here.
      sc->inv->end_of_run(/*expect_quiesced=*/false);
      if (!sc->inv->ok()) {
        std::fprintf(stderr, "INVARIANT VIOLATIONS (%zu):\n%s",
                     sc->inv->violations().size(),
                     sc->inv->report().c_str());
        status = 1;
      }
      sc->inv->detach();
    }
    export_telemetry(*sc, metrics_path, trace_path);
    return status;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dvcsim: %s\n", e.what());
    return 2;
  }
}
