#pragma once

#include <vector>

namespace dvc::tools {

/// The shared scenario-key vocabulary: every `key = value` a scenario file
/// may carry, consumed by both dvcsim and the dvcsweep cell runner so the
/// two interpreters can never drift apart. Sweep grids additionally accept
/// `sweep.*` and `mix.<name>.<key>` lines (validated against this list
/// after the prefix is stripped).
inline const std::vector<const char*>& scenario_keys() {
  static const std::vector<const char*> keys = {
      // experiment shape
      "experiment", "clusters", "nodes_per_cluster", "seed",
      "store_write_mbps", "trace", "vc_size", "guest_ram_mib", "workload",
      "iterations", "iter_seconds", "pattern", "msg_bytes",
      // reliability policy
      "mtbf_per_node_s", "repair_s", "predicted_fraction",
      "prediction_lead_s", "checkpoint_interval_s", "incremental",
      "proactive", "migrate_at_s", "live", "store_replicas",
      "keep_checkpoints", "max_restore_retries", "watchdog_interval_s",
      "abort_saves_on_failure",
      // run driving (reliability experiment / sweep cells)
      "horizon_s", "slice_s", "settle_s",
      // telemetry
      "metrics_json", "chrome_trace",
      // invariant checking
      "check.invariants",
      // fault injection
      "fault.enabled", "fault.seed", "fault.script", "fault.start_s",
      "fault.horizon_s", "fault.node_crash_mtbf_s", "fault.node_down_s",
      "fault.link_down_mtbf_s", "fault.link_down_s",
      "fault.disk_slow_mtbf_s", "fault.disk_slow_s", "fault.disk_slow_factor",
      "fault.clock_step_mtbf_s", "fault.clock_step_ms",
      "fault.store_corrupt_mtbf_s", "fault.store_tear_mtbf_s",
      "fault.partition_mtbf_s", "fault.partition_s",
      "fault.coordinator_crash_mtbf_s", "fault.coordinator_down_s",
      // coordinator fault domain
      "coordinator.head_node", "coordinator.lease_s",
      // LSC retry machinery
      "lsc.round_timeout_s", "lsc.max_round_retries", "lsc.retry_backoff_s",
  };
  return keys;
}

}  // namespace dvc::tools
