#!/usr/bin/env python3
"""Per-subsystem line-coverage report for a `gcc --coverage` build tree.

Usage: coverage_report.py <build-dir> [<out.json>]

Walks the build tree for .gcda files, asks gcov for JSON intermediate
records, and folds them into per-file and per-subsystem line coverage
(a line counts as covered if any test executed it in any translation
unit). Only repo sources under src/ and tools/ are reported.

Uses gcov's --json-format directly (no gcovr dependency).
"""

import json
import os
import subprocess
import sys
from collections import defaultdict


def subsystem_of(rel_path):
    parts = rel_path.split(os.sep)
    if parts[0] == "src" and len(parts) > 2:
        return parts[1]
    return parts[0]  # tools/, tests/


def main():
    build = sys.argv[1] if len(sys.argv) > 1 else "build-cov"
    out_path = (
        sys.argv[2] if len(sys.argv) > 2
        else os.path.join(build, "coverage.json")
    )
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

    gcda = []
    for dirpath, _dirs, files in os.walk(build):
        gcda.extend(
            os.path.join(dirpath, f) for f in files if f.endswith(".gcda")
        )
    if not gcda:
        print(f"coverage: no .gcda files under {build} — run the "
              "instrumented tests first", file=sys.stderr)
        return 2

    # file -> {line_number: covered?}; OR-merged across translation units.
    lines = defaultdict(dict)
    for path in gcda:
        proc = subprocess.run(
            ["gcov", "--json-format", "--stdout", os.path.basename(path)],
            cwd=os.path.dirname(path),
            capture_output=True,
        )
        if proc.returncode != 0:
            print(f"coverage: gcov failed on {path}: "
                  f"{proc.stderr.decode().strip()}", file=sys.stderr)
            continue
        for doc in proc.stdout.decode().splitlines():
            doc = doc.strip()
            if not doc:
                continue
            data = json.loads(doc)
            for f in data.get("files", []):
                name = f["file"]
                if not os.path.isabs(name):
                    name = os.path.join(os.path.dirname(path), name)
                name = os.path.realpath(name)
                if not name.startswith(repo + os.sep):
                    continue
                rel = os.path.relpath(name, repo)
                if not (rel.startswith("src" + os.sep)
                        or rel.startswith("tools" + os.sep)):
                    continue
                per = lines[rel]
                for ln in f.get("lines", []):
                    n = ln["line_number"]
                    per[n] = per.get(n, False) or ln["count"] > 0

    files = {}
    subsystems = defaultdict(lambda: [0, 0])
    for rel in sorted(lines):
        total = len(lines[rel])
        covered = sum(1 for hit in lines[rel].values() if hit)
        files[rel] = {
            "lines": total,
            "covered": covered,
            "pct": round(100.0 * covered / total, 1) if total else 0.0,
        }
        agg = subsystems[subsystem_of(rel)]
        agg[0] += total
        agg[1] += covered

    report = {
        "subsystems": {
            name: {
                "lines": total,
                "covered": covered,
                "pct": round(100.0 * covered / total, 1) if total else 0.0,
            }
            for name, (total, covered) in sorted(subsystems.items())
        },
        "files": files,
    }
    with open(out_path, "w") as out:
        json.dump(report, out, indent=2, sort_keys=True)
        out.write("\n")

    print(f"{'subsystem':<12} {'lines':>7} {'covered':>8} {'pct':>7}")
    for name, stats in report["subsystems"].items():
        print(f"{name:<12} {stats['lines']:>7} {stats['covered']:>8} "
              f"{stats['pct']:>6.1f}%")
    grand_total = sum(t for t, _ in subsystems.values())
    grand_covered = sum(c for _, c in subsystems.values())
    pct = 100.0 * grand_covered / grand_total if grand_total else 0.0
    print(f"{'TOTAL':<12} {grand_total:>7} {grand_covered:>8} {pct:>6.1f}%")
    print(f"coverage artifact: {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
