#include "tools/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "app/workload.hpp"
#include "ckpt/lsc.hpp"
#include "core/machine_room.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "tools/scenario_keys.hpp"

namespace dvc::tools {

namespace {

/// Foreground-drain budget after a completed job: generous enough for any
/// legitimate in-flight round to land, small enough that a perpetually
/// rescheduling leak stops instead of hanging the sweep.
constexpr std::uint64_t kDrainLimit = 2'000'000;

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

[[nodiscard]] std::string grid_stem(const std::string& name) {
  std::string stem = name;
  const auto slash = stem.find_last_of('/');
  if (slash != std::string::npos) stem.erase(0, slash + 1);
  const auto dot = stem.rfind(".scn");
  if (dot != std::string::npos && dot == stem.size() - 4) stem.erase(dot);
  return stem;
}

[[nodiscard]] std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == ' ' || c == '\t' || c == ',') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

[[nodiscard]] std::vector<std::uint64_t> parse_seeds(const std::string& v) {
  std::vector<std::uint64_t> seeds;
  for (const std::string& tok : split_ws(v)) {
    const auto dots = tok.find("..");
    try {
      if (dots != std::string::npos) {
        const std::uint64_t lo = std::stoull(tok.substr(0, dots));
        const std::uint64_t hi = std::stoull(tok.substr(dots + 2));
        if (hi < lo) throw std::invalid_argument("range reversed");
        for (std::uint64_t s = lo; s <= hi; ++s) seeds.push_back(s);
      } else {
        seeds.push_back(std::stoull(tok));
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("sweep.seeds: bad entry '" + tok + "'");
    }
  }
  return seeds;
}

[[nodiscard]] bool key_known(const std::string& key) {
  for (const char* k : scenario_keys()) {
    if (key == k) return true;
  }
  return false;
}

}  // namespace

const char* to_string(CellStatus s) noexcept {
  switch (s) {
    case CellStatus::kCompleted: return "completed";
    case CellStatus::kDiagnosed: return "diagnosed";
    case CellStatus::kInvariantViolation: return "invariant-violation";
    case CellStatus::kWedged: return "wedged";
  }
  return "?";
}

// ---- grid expansion ---------------------------------------------------------

SweepGrid SweepGrid::load(std::string name, const std::string& text) {
  SweepGrid g;
  g.name_ = std::move(name);
  g.stem_ = grid_stem(g.name_);
  const ScenarioConfig raw = ScenarioConfig::parse(text);
  for (const auto& [key, value] : raw.entries()) {
    if (key == "sweep.seeds") {
      g.seeds_ = parse_seeds(value);
      continue;
    }
    if (key == "sweep.mixes") {
      g.mixes_ = split_ws(value);
      continue;
    }
    if (key.rfind("sweep.", 0) == 0) {
      throw std::invalid_argument("unknown sweep key '" + key + "'");
    }
    if (key.rfind("mix.", 0) == 0) {
      const auto dot = key.find('.', 4);
      if (dot == std::string::npos || dot == 4 || dot + 1 == key.size()) {
        throw std::invalid_argument("mix override '" + key +
                                    "': expected mix.<name>.<key>");
      }
      const std::string mix = key.substr(4, dot - 4);
      const std::string sub = key.substr(dot + 1);
      if (!key_known(sub)) {
        throw std::invalid_argument("mix override '" + key +
                                    "': scenario key '" + sub +
                                    "' is not recognised");
      }
      g.overrides_[mix][sub] = value;
      continue;
    }
    if (!key_known(key)) {
      throw std::invalid_argument("scenario key '" + key +
                                  "' is not recognised");
    }
    g.base_.set(key, value);
  }
  if (g.mixes_.empty()) {
    if (!g.overrides_.empty()) {
      throw std::invalid_argument(
          "grid has mix.* overrides but no sweep.mixes line");
    }
    g.mixes_ = {"base"};
  }
  for (const auto& [mix, kv] : g.overrides_) {
    if (std::find(g.mixes_.begin(), g.mixes_.end(), mix) ==
        g.mixes_.end()) {
      throw std::invalid_argument("mix '" + mix +
                                  "' has overrides but is not listed in "
                                  "sweep.mixes");
    }
  }
  return g;
}

void SweepGrid::set_seeds(std::vector<std::uint64_t> seeds) {
  seeds_ = std::move(seeds);
}

std::vector<SweepCell> SweepGrid::cells() const {
  if (seeds_.empty()) {
    throw std::invalid_argument("grid '" + name_ +
                                "' has no seeds (sweep.seeds or --seeds)");
  }
  std::vector<SweepCell> out;
  out.reserve(mixes_.size() * seeds_.size());
  // Deterministic expansion order: mixes as declared, seeds ascending,
  // then a final sort by key so the aggregate's order is a function of
  // the cell set alone.
  std::vector<std::uint64_t> seeds = seeds_;
  std::sort(seeds.begin(), seeds.end());
  for (const std::string& mix : mixes_) {
    const auto ov = overrides_.find(mix);
    for (const std::uint64_t seed : seeds) {
      SweepCell c;
      c.grid = name_;
      c.mix = mix;
      c.seed = seed;
      c.key = stem_ + ":" + mix + ":" + std::to_string(seed);
      c.cfg = base_;
      if (ov != overrides_.end()) {
        for (const auto& [k, v] : ov->second) c.cfg.set(k, v);
      }
      c.cfg.set("seed", std::to_string(seed));
      c.cfg.set("trace", "false");
      out.push_back(std::move(c));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SweepCell& a, const SweepCell& b) {
              return a.key < b.key;
            });
  return out;
}

// ---- one cell ---------------------------------------------------------------

namespace {

void run_cell_impl(const SweepCell& cell, CellOutcome& out) {
  const ScenarioConfig& cfg = cell.cfg;
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  core::MachineRoomOptions o;
  o.clusters = static_cast<std::uint32_t>(cfg.get_int("clusters", 1));
  o.nodes_per_cluster =
      static_cast<std::uint32_t>(cfg.get_int("nodes_per_cluster", 32));
  o.seed = seed;
  const double write_mbps = cfg.get_double("store_write_mbps", 100.0);
  o.store.write_bps = write_mbps * 1e6;
  o.store.read_bps = 2 * write_mbps * 1e6;
  o.hv.abort_saves_on_failure =
      cfg.get_bool("abort_saves_on_failure", false);
  o.store_replicas =
      static_cast<std::uint32_t>(cfg.get_int("store_replicas", 0));
  core::MachineRoom room(o);

  const auto vc_size =
      static_cast<std::uint32_t>(cfg.get_int("vc_size", 16));
  core::VcSpec spec;
  spec.name = "sweep";
  spec.size = vc_size;
  spec.guest.ram_bytes =
      static_cast<std::uint64_t>(cfg.get_int("guest_ram_mib", 256)) << 20;
  const auto placement = room.dvc->pick_nodes(vc_size);
  if (!placement) {
    throw std::runtime_error("not enough nodes for vc_size=" +
                             std::to_string(vc_size));
  }
  core::VirtualCluster* vc = &room.dvc->create_vc(spec, *placement, {});
  const std::int64_t head = cfg.get_int("coordinator.head_node", -1);
  if (head >= 0) {
    room.dvc->designate_head_node(
        static_cast<hw::NodeId>(head),
        sim::from_seconds(cfg.get_double("coordinator.lease_s", 10.0)));
  }
  room.sim.run_until(20 * sim::kSecond);

  const std::string kind = cfg.get_string("workload", "ptrans");
  const auto iterations =
      static_cast<std::uint32_t>(cfg.get_int("iterations", 1000));
  const double iter_s = cfg.get_double("iter_seconds", 0.5);
  app::WorkloadSpec workload =
      kind == "hpl" ? app::make_hpl(16384, vc_size, iterations)
                    : app::make_ptrans(4096, vc_size, iterations);
  workload.flops_per_rank_iter = iter_s * 1e10;
  workload.bytes_per_msg = 64 << 10;
  const std::string pattern = cfg.get_string("pattern", "");
  if (!pattern.empty()) {
    if (pattern == "none") {
      workload.pattern = app::Pattern::kNone;
    } else if (pattern == "ring") {
      workload.pattern = app::Pattern::kRing;
    } else if (pattern == "broadcast") {
      workload.pattern = app::Pattern::kBroadcast;
    } else if (pattern == "treebroadcast") {
      workload.pattern = app::Pattern::kTreeBroadcast;
    } else if (pattern == "alltoall") {
      workload.pattern = app::Pattern::kAllToAll;
    } else {
      throw std::invalid_argument("unknown pattern: " + pattern);
    }
  }
  const std::int64_t msg_bytes = cfg.get_int("msg_bytes", 0);
  if (msg_bytes > 0) {
    workload.bytes_per_msg = static_cast<std::uint64_t>(msg_bytes);
  }
  auto application = std::make_unique<app::ParallelApp>(
      room.sim, room.fabric.network(), vc->contexts(), workload);
  room.dvc->attach_app(*vc, *application);
  application->start();

  ckpt::NtpLscCoordinator lsc(room.sim, {}, sim::Rng(seed ^ 0xD5C));
  lsc.set_metrics(&room.metrics);
  ckpt::LscCoordinator::RetryPolicy retry;
  retry.round_timeout =
      sim::from_seconds(cfg.get_double("lsc.round_timeout_s", 0.0));
  retry.max_round_retries =
      static_cast<int>(cfg.get_int("lsc.max_round_retries", 0));
  retry.backoff =
      sim::from_seconds(cfg.get_double("lsc.retry_backoff_s", 2.0));
  lsc.set_retry_policy(retry);

  // The invariant checker rides along by default; a scenario opts out
  // with `check.invariants = off` (e.g. to time checker overhead).
  std::unique_ptr<check::Invariants> inv;
  if (cfg.get_bool("check.invariants", true)) {
    inv = std::make_unique<check::Invariants>(check::Invariants::Wiring{
        &room.sim, room.dvc.get(), &room.images, &room.fence,
        &room.metrics});
    inv->attach();
    lsc.set_check(inv.get());
  }

  // Fault injection, dvcsim grammar plus `fault.start_s`: the sampled
  // schedule is shifted wholesale so the fault window opens after the
  // first complete checkpoint instead of during boot.
  std::unique_ptr<fault::FaultInjector> injector;
  if (cfg.get_bool("fault.enabled", false)) {
    fault::FaultPlan plan;
    const std::string script = cfg.get_string("fault.script", "");
    if (!script.empty()) plan = fault::FaultPlan::parse_script(script);
    fault::StochasticFaults fs;
    fs.horizon = sim::from_seconds(cfg.get_double("fault.horizon_s", 0.0));
    fs.node_crash_mtbf =
        sim::from_seconds(cfg.get_double("fault.node_crash_mtbf_s", 0.0));
    fs.node_down_for =
        sim::from_seconds(cfg.get_double("fault.node_down_s", 0.0));
    fs.link_down_mtbf =
        sim::from_seconds(cfg.get_double("fault.link_down_mtbf_s", 0.0));
    fs.link_down_for =
        sim::from_seconds(cfg.get_double("fault.link_down_s", 30.0));
    fs.disk_slow_mtbf =
        sim::from_seconds(cfg.get_double("fault.disk_slow_mtbf_s", 0.0));
    fs.disk_slow_for =
        sim::from_seconds(cfg.get_double("fault.disk_slow_s", 60.0));
    fs.disk_slow_factor = cfg.get_double("fault.disk_slow_factor", 10.0);
    fs.clock_step_mtbf =
        sim::from_seconds(cfg.get_double("fault.clock_step_mtbf_s", 0.0));
    fs.clock_step_max = static_cast<sim::Duration>(
        cfg.get_double("fault.clock_step_ms", 500.0) * sim::kMillisecond);
    fs.store_corrupt_mtbf = sim::from_seconds(
        cfg.get_double("fault.store_corrupt_mtbf_s", 0.0));
    fs.store_tear_mtbf =
        sim::from_seconds(cfg.get_double("fault.store_tear_mtbf_s", 0.0));
    fs.partition_mtbf =
        sim::from_seconds(cfg.get_double("fault.partition_mtbf_s", 0.0));
    fs.partition_for =
        sim::from_seconds(cfg.get_double("fault.partition_s", 30.0));
    fs.coordinator_crash_mtbf = sim::from_seconds(
        cfg.get_double("fault.coordinator_crash_mtbf_s", 0.0));
    fs.coordinator_down_for = sim::from_seconds(
        cfg.get_double("fault.coordinator_down_s", 20.0));
    if (fs.horizon > 0) {
      const auto fault_seed = static_cast<std::uint64_t>(
          cfg.get_int("fault.seed", static_cast<std::int64_t>(seed)));
      plan.sample(fs,
                  static_cast<std::uint32_t>(room.fabric.node_count()),
                  static_cast<std::uint32_t>(room.fabric.cluster_count()),
                  sim::Rng(fault_seed),
                  static_cast<std::uint32_t>(
                      1 + room.replica_stores.size()));
    }
    const sim::Duration start =
        sim::from_seconds(cfg.get_double("fault.start_s", 0.0));
    if (start > 0) {
      fault::FaultPlan shifted;
      for (fault::FaultEvent e : plan.schedule()) {
        e.at += start;
        shifted.add(e);
      }
      plan = std::move(shifted);
    }
    injector = std::make_unique<fault::FaultInjector>(
        room.sim,
        fault::FaultInjector::Hooks{
            &room.fabric, &room.store, room.time.get(), room.replica_ptrs(),
            [&room](sim::Duration down_for) {
              room.dvc->crash_coordinator(down_for);
            }},
        &room.metrics);
    injector->arm(plan);
  }
  const double mtbf_s = cfg.get_double("mtbf_per_node_s", 0.0);
  if (mtbf_s > 0.0) {
    const double repair_s = cfg.get_double("repair_s", 1800.0);
    room.fabric.subscribe_failures([&room, repair_s](hw::NodeId n) {
      room.sim.schedule_after(sim::from_seconds(repair_s), [&room, n] {
        room.fabric.repair_node(n);
      });
    });
    room.fabric.arm_random_failures(
        sim::from_seconds(mtbf_s), cfg.get_double("predicted_fraction", 0.0),
        sim::from_seconds(cfg.get_double("prediction_lead_s", 120.0)));
  }

  core::DvcManager::RecoveryPolicy policy;
  policy.coordinator = &lsc;
  policy.interval =
      sim::from_seconds(cfg.get_double("checkpoint_interval_s", 300.0));
  policy.incremental = cfg.get_bool("incremental", false);
  policy.proactive_migration = cfg.get_bool("proactive", false);
  policy.watchdog_interval =
      sim::from_seconds(cfg.get_double("watchdog_interval_s", 0.0));
  policy.keep_checkpoints =
      static_cast<std::size_t>(cfg.get_int("keep_checkpoints", 2));
  policy.max_restore_retries =
      static_cast<int>(cfg.get_int("max_restore_retries", 4));
  room.dvc->enable_auto_recovery(*vc, policy);

  // Sliced driving, soak-style: keep going on transient application
  // failure (the watchdog may still roll the job back); stop only on
  // completion, a terminal diagnosis, or the horizon.
  const sim::Time horizon =
      sim::from_seconds(cfg.get_double("horizon_s", 3600.0));
  const sim::Duration slice =
      sim::from_seconds(cfg.get_double("slice_s", 10.0));
  while (!application->completed() && room.sim.now() < horizon) {
    if (vc->state() == core::VcState::kFailed) break;
    room.sim.run_until(room.sim.now() + slice);
  }
  // Let in-flight churn (a recovery racing job completion) settle before
  // sampling the outcome.
  room.sim.run_until(
      room.sim.now() +
      sim::from_seconds(cfg.get_double("settle_s", 30.0)));
  const bool completed = application->completed();
  if (completed) {
    // Stop the periodic machinery and drain every remaining foreground
    // event; whatever survives the budget is a leak the checker reports.
    room.dvc->disable_auto_recovery(*vc);
    room.sim.run(kDrainLimit);
  }
  if (inv != nullptr) inv->end_of_run(/*expect_quiesced=*/completed);

  out.iterations = application->rank(0).state().iter;
  out.sim_time_s = sim::to_seconds(room.sim.now());
  out.checkpoints = room.metrics.counter_value("core.dvc.checkpoints");
  out.recoveries = room.dvc->recoveries_performed();
  out.watchdog = room.dvc->watchdog_detections();
  out.lsc_retries = room.metrics.counter_value("ckpt.lsc.round_retries");
  out.faults_injected = room.metrics.counter_value("fault.injected");
  out.faults_lifted = room.metrics.counter_value("fault.lifted");
  out.verify_failures =
      room.metrics.counter_value("storage.store.verify_failures");
  out.failovers = room.metrics.counter_value("storage.replica.failovers");
  out.fallbacks = room.dvc->restore_fallbacks();
  out.abandoned = room.dvc->recoveries_abandoned();
  out.damage_planted =
      room.metrics.counter_value("storage.store.corruptions") +
      room.metrics.counter_value("storage.store.torn_writes");
  for (std::size_t r = 0; r < room.replica_stores.size(); ++r) {
    const std::string prefix = "storage.replica" + std::to_string(r);
    out.damage_planted +=
        room.metrics.counter_value(prefix + ".store.corruptions") +
        room.metrics.counter_value(prefix + ".store.torn_writes");
  }
  out.coordinator_crashes = room.dvc->coordinator_crashes();
  out.coordinator_reboots = room.dvc->coordinator_reboots();
  out.stale_completions = room.dvc->stale_completions();
  out.orphans_swept =
      room.dvc->orphan_sets_discarded() + room.dvc->orphan_rounds_aborted();
  out.fenced_writes =
      room.metrics.counter_value("storage.images.fenced_writes") +
      room.metrics.counter_value("vm.hypervisor.fenced_commands");
  if (inv != nullptr) out.violations = inv->violations();

  if (!out.violations.empty()) {
    out.status = CellStatus::kInvariantViolation;
  } else if (completed) {
    out.status = CellStatus::kCompleted;
  } else if (application->failed() ||
             vc->state() == core::VcState::kFailed) {
    out.status = CellStatus::kDiagnosed;
  } else {
    out.status = CellStatus::kWedged;
  }
  if (inv != nullptr) inv->detach();
}

}  // namespace

CellOutcome run_cell(const SweepCell& cell) {
  CellOutcome out;
  out.key = cell.key;
  out.mix = cell.mix;
  out.seed = cell.seed;
  out.repro = "dvcsweep --repro " + cell.key + " " + cell.grid;
  try {
    run_cell_impl(cell, out);
  } catch (const std::exception& e) {
    out.status = CellStatus::kWedged;
    out.error = e.what();
  }
  return out;
}

// ---- merging ----------------------------------------------------------------

std::string CellOutcome::to_json() const {
  auto num = [](std::uint64_t v) { return std::to_string(v); };
  std::string j = "{";
  j += "\"cell\":\"" + json_escape(key) + "\"";
  j += ",\"mix\":\"" + json_escape(mix) + "\"";
  j += ",\"seed\":" + num(seed);
  j += ",\"status\":\"" + std::string(to_string(status)) + "\"";
  if (!error.empty()) j += ",\"error\":\"" + json_escape(error) + "\"";
  j += ",\"iterations\":" + num(iterations);
  char t[32];
  std::snprintf(t, sizeof t, "%.3f", sim_time_s);
  j += ",\"sim_time_s\":" + std::string(t);
  j += ",\"checkpoints\":" + num(checkpoints);
  j += ",\"recoveries\":" + num(recoveries);
  j += ",\"watchdog\":" + num(watchdog);
  j += ",\"lsc_retries\":" + num(lsc_retries);
  j += ",\"faults_injected\":" + num(faults_injected);
  j += ",\"faults_lifted\":" + num(faults_lifted);
  j += ",\"verify_failures\":" + num(verify_failures);
  j += ",\"failovers\":" + num(failovers);
  j += ",\"fallbacks\":" + num(fallbacks);
  j += ",\"abandoned\":" + num(abandoned);
  j += ",\"damage_planted\":" + num(damage_planted);
  j += ",\"coordinator_crashes\":" + num(coordinator_crashes);
  j += ",\"coordinator_reboots\":" + num(coordinator_reboots);
  j += ",\"stale_completions\":" + num(stale_completions);
  j += ",\"orphans_swept\":" + num(orphans_swept);
  j += ",\"fenced_writes\":" + num(fenced_writes);
  j += ",\"violations\":[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const check::Violation& v = violations[i];
    if (i > 0) j += ",";
    j += "{\"invariant\":\"" + json_escape(v.invariant) + "\"";
    j += ",\"boundary\":\"" + std::string(check::to_string(v.boundary)) +
         "\"";
    j += ",\"at\":" + std::to_string(v.at);
    j += ",\"detail\":\"" + json_escape(v.detail) + "\"}";
  }
  j += "]";
  j += ",\"repro\":\"" + json_escape(repro) + "\"";
  j += "}";
  return j;
}

std::string SweepReport::to_json() const {
  std::string j = "{";
  j += "\"grid\":\"" + json_escape(grid) + "\"";
  j += ",\"cells\":" + std::to_string(outcomes.size());
  j += ",\"completed\":" + std::to_string(completed);
  j += ",\"diagnosed\":" + std::to_string(diagnosed);
  j += ",\"invariant_violations\":" + std::to_string(invariant_violations);
  j += ",\"wedged\":" + std::to_string(wedged);
  j += ",\"outcomes\":[\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (i > 0) j += ",\n";
    j += outcomes[i].to_json();
  }
  j += "\n]}";
  return j;
}

SweepReport run_sweep(const std::vector<SweepCell>& cells, unsigned jobs,
                      const std::string& grid_name) {
  if (jobs == 0) {
    jobs = std::thread::hardware_concurrency();
    if (jobs == 0) jobs = 1;
  }
  SweepReport report;
  report.grid = grid_name;
  report.outcomes.resize(cells.size());

  // Work-stealing by atomic index into the pre-sorted cell list; each
  // outcome lands at its cell's index, so the merged order (and therefore
  // the aggregate bytes) is independent of scheduling.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= cells.size()) return;
      report.outcomes[i] = run_cell(cells[i]);
    }
  };
  if (jobs == 1 || cells.size() <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    const unsigned n =
        std::min<unsigned>(jobs, static_cast<unsigned>(cells.size()));
    pool.reserve(n);
    for (unsigned i = 0; i < n; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  for (const CellOutcome& o : report.outcomes) {
    switch (o.status) {
      case CellStatus::kCompleted: ++report.completed; break;
      case CellStatus::kDiagnosed: ++report.diagnosed; break;
      case CellStatus::kInvariantViolation:
        ++report.invariant_violations;
        break;
      case CellStatus::kWedged: ++report.wedged; break;
    }
  }
  return report;
}

}  // namespace dvc::tools
