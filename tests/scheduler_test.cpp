#include <gtest/gtest.h>

#include <vector>

#include "hw/cluster.hpp"
#include "rm/scheduler.hpp"
#include "sim/simulation.hpp"

namespace dvc::rm {
namespace {

struct RmFixture {
  explicit RmFixture(Scheduler::Config cfg = {}, std::uint32_t clusters = 2,
                     std::uint32_t nodes = 4)
      : sched(sim, fabric, cfg) {
    for (std::uint32_t c = 0; c < clusters; ++c) {
      fabric.add_cluster("c" + std::to_string(c), nodes);
    }
  }

  sim::Simulation sim;
  hw::Fabric fabric{sim, {}};
  Scheduler sched;
};

JobRequest job(std::uint32_t nodes, double work_node_seconds = 100.0,
               hw::ClusterId home = 0) {
  JobRequest r;
  r.nodes_requested = nodes;
  r.node_seconds_work = work_node_seconds;
  r.home_cluster = home;
  return r;
}

TEST(SchedulerTest, RejectsZeroNodeRequests) {
  RmFixture f;
  EXPECT_THROW(f.sched.submit(job(0)), std::invalid_argument);
}

TEST(SchedulerTest, RunsJobForWorkOverNodes) {
  RmFixture f;
  std::vector<JobId> finished;
  f.sched.set_on_finish(
      [&](const JobRecord& j) { finished.push_back(j.id); });
  const JobId id = f.sched.submit(job(4, 400.0));
  f.sim.run();
  EXPECT_EQ(finished, (std::vector<JobId>{id}));
  const JobRecord& rec = f.sched.job(id);
  EXPECT_EQ(rec.state, JobState::kCompleted);
  EXPECT_EQ(rec.allocation.nodes.size(), 4u);
  EXPECT_FALSE(rec.allocation.spans_clusters);
  // 400 node-seconds on 4 nodes = 100 s.
  EXPECT_NEAR(sim::to_seconds(rec.finished_at - rec.started_at), 100.0,
              0.01);
}

TEST(SchedulerTest, PrefersHomeClusterThenForeign) {
  RmFixture f;
  const JobId a = f.sched.submit(job(4, 1000.0, /*home=*/1));
  const JobId b = f.sched.submit(job(4, 1000.0, /*home=*/1));
  f.sim.run_until(sim::kSecond);
  EXPECT_EQ(f.fabric.node(f.sched.job(a).allocation.nodes[0]).cluster(), 1u);
  EXPECT_EQ(f.fabric.node(f.sched.job(b).allocation.nodes[0]).cluster(), 0u);
  EXPECT_EQ(f.sched.running(), 2u);
}

TEST(SchedulerTest, FifoHeadBlocksQueue) {
  RmFixture f(Scheduler::Config{}, /*clusters=*/1, /*nodes=*/4);
  f.sched.submit(job(3, 300.0));  // runs, leaves 1 free
  f.sched.submit(job(2, 100.0));  // blocked (head of queue)
  const JobId tiny = f.sched.submit(job(1, 1.0));  // would fit, but FCFS
  f.sim.run_until(10 * sim::kSecond);
  EXPECT_EQ(f.sched.queued(), 2u);
  EXPECT_EQ(f.sched.job(tiny).state, JobState::kQueued);
  f.sim.run();
  EXPECT_EQ(f.sched.completed(), 3u);
}

TEST(SchedulerTest, WithoutSpanningOversizedJobIsMolded) {
  RmFixture f;  // 2 clusters x 4 nodes, spanning off
  const JobId id = f.sched.submit(job(6, 600.0));
  f.sim.run();
  const JobRecord& rec = f.sched.job(id);
  EXPECT_EQ(rec.state, JobState::kCompleted);
  // Molded down to a full single cluster: 4 nodes, so it ran 150 s
  // instead of the 100 s it would have taken on 6.
  EXPECT_EQ(rec.allocation.nodes.size(), 4u);
  EXPECT_NEAR(sim::to_seconds(rec.finished_at - rec.started_at), 150.0,
              0.01);
}

TEST(SchedulerTest, MoldingRespectsMinNodesFloor) {
  RmFixture f;  // 2 clusters x 4 nodes, spanning off, molding on
  JobRequest strict = job(6, 600.0);
  strict.min_nodes = 5;  // will not accept fewer than 5 nodes
  const JobId id = f.sched.submit(strict);
  // 6 > biggest cluster (4) and the floor (5) > 4 too: rejected outright.
  EXPECT_EQ(f.sched.job(id).state, JobState::kFailed);

  JobRequest flexible = job(6, 600.0);
  flexible.min_nodes = 3;
  const JobId ok = f.sched.submit(flexible);
  f.sim.run();
  EXPECT_EQ(f.sched.job(ok).state, JobState::kCompleted);
  EXPECT_EQ(f.sched.job(ok).allocation.nodes.size(), 4u);
}

TEST(SchedulerTest, SpanningRunsOversizedJobAcrossClusters) {
  Scheduler::Config cfg;
  cfg.allow_spanning = true;
  RmFixture f(cfg);
  const JobId id = f.sched.submit(job(6, 600.0));
  f.sim.run();
  const JobRecord& rec = f.sched.job(id);
  EXPECT_EQ(rec.allocation.nodes.size(), 6u);
  EXPECT_TRUE(rec.allocation.spans_clusters);
  EXPECT_NEAR(sim::to_seconds(rec.finished_at - rec.started_at), 100.0,
              0.01);
}

TEST(SchedulerTest, RigidOversizedJobIsRejectedWithoutSpanning) {
  Scheduler::Config cfg;
  cfg.mold_oversized = false;
  RmFixture f(cfg);
  // 6 > any single 4-node cluster and it may not mold or span: rejected at
  // submit instead of head-blocking the FCFS queue forever.
  const JobId id = f.sched.submit(job(6, 600.0));
  EXPECT_EQ(f.sched.job(id).state, JobState::kFailed);
  EXPECT_EQ(f.sched.failed(), 1u);
  // The same request is accepted once spanning is allowed.
  Scheduler::Config span_cfg;
  span_cfg.allow_spanning = true;
  span_cfg.mold_oversized = false;
  RmFixture g(span_cfg);
  const JobId ok = g.sched.submit(job(6, 600.0));
  g.sim.run();
  EXPECT_EQ(g.sched.job(ok).state, JobState::kCompleted);
}

TEST(SchedulerTest, ReleasedNodesUnblockQueue) {
  RmFixture f(Scheduler::Config{}, 1, 4);
  f.sched.submit(job(4, 400.0));        // 100 s
  const JobId second = f.sched.submit(job(4, 40.0));
  f.sim.run();
  const JobRecord& rec = f.sched.job(second);
  EXPECT_EQ(rec.state, JobState::kCompleted);
  EXPECT_NEAR(sim::to_seconds(rec.started_at), 100.0, 0.01);
  EXPECT_NEAR(f.sched.wait_stats().max(), 100.0, 0.01);
}

TEST(SchedulerTest, FailedNodesAreNeverAllocated) {
  RmFixture f(Scheduler::Config{}, 1, 4);
  f.fabric.fail_node(0);
  const JobId id = f.sched.submit(job(4, 400.0));
  f.sim.run_until(10 * sim::kSecond);
  // Only 3 healthy nodes: a 4-node job cannot start in a 4-node cluster
  // with one dead node (it molds to... nothing smaller exists).
  EXPECT_EQ(f.sched.job(id).state, JobState::kQueued);
  f.fabric.repair_node(0);
  // A repair alone does not re-run the queue in this design; the next
  // scheduling event does. Submit a tiny job to trigger one.
  f.sched.submit(job(1, 0.001));
  f.sim.run();
  EXPECT_EQ(f.sched.job(id).state, JobState::kCompleted);
}

TEST(SchedulerTest, NodeFailureKillsRunningJobAndFreesNodes) {
  RmFixture f(Scheduler::Config{}, 1, 4);
  const JobId id = f.sched.submit(job(4, 4000.0));
  f.sim.run_until(10 * sim::kSecond);
  f.fabric.fail_node(2);
  EXPECT_EQ(f.sched.job(id).state, JobState::kFailed);
  EXPECT_EQ(f.sched.failed(), 1u);
  // The three healthy nodes are free again for the next job.
  const JobId next = f.sched.submit(job(3, 30.0));
  f.sim.run();
  EXPECT_EQ(f.sched.job(next).state, JobState::kCompleted);
}

TEST(SchedulerTest, EasyBackfillLetsSmallJobsJumpWithoutDelayingHead) {
  Scheduler::Config cfg;
  cfg.easy_backfill = true;
  RmFixture f(cfg, /*clusters=*/1, /*nodes=*/4);
  // Job A holds 3 nodes for 100 s. Head-of-queue B needs all 4 nodes, so
  // it must wait for A. Tiny C (1 node, 50 s) fits in the stray node and
  // finishes before A does — EASY lets it jump.
  const JobId a = f.sched.submit(job(3, 300.0));   // ends at t=100
  const JobId b = f.sched.submit(job(4, 400.0));   // shadow start t=100
  const JobId c = f.sched.submit(job(1, 50.0));    // 50 s on 1 node
  f.sim.run_until(sim::kSecond);
  EXPECT_EQ(f.sched.job(c).state, JobState::kRunning);  // backfilled
  EXPECT_EQ(f.sched.job(b).state, JobState::kQueued);
  EXPECT_EQ(f.sched.backfilled(), 1u);
  f.sim.run();
  // B still started exactly when A ended — the backfill cost it nothing.
  EXPECT_NEAR(sim::to_seconds(f.sched.job(b).started_at), 100.0, 0.01);
  EXPECT_EQ(f.sched.job(a).state, JobState::kCompleted);
}

TEST(SchedulerTest, EasyBackfillRefusesJobsThatWouldDelayHead) {
  Scheduler::Config cfg;
  cfg.easy_backfill = true;
  RmFixture f(cfg, /*clusters=*/1, /*nodes=*/4);
  f.sched.submit(job(3, 300.0));                    // ends at t=100
  const JobId b = f.sched.submit(job(4, 400.0));    // shadow start t=100
  const JobId d = f.sched.submit(job(1, 200.0));    // 200 s > shadow slack
  f.sim.run_until(sim::kSecond);
  EXPECT_EQ(f.sched.job(d).state, JobState::kQueued);
  EXPECT_EQ(f.sched.backfilled(), 0u);
  f.sim.run();
  EXPECT_NEAR(sim::to_seconds(f.sched.job(b).started_at), 100.0, 0.01);
}

TEST(SchedulerTest, BackfillDisabledKeepsStrictFcfs) {
  RmFixture f(Scheduler::Config{}, 1, 4);
  f.sched.submit(job(3, 300.0));
  f.sched.submit(job(4, 400.0));
  const JobId c = f.sched.submit(job(1, 50.0));
  f.sim.run_until(sim::kSecond);
  EXPECT_EQ(f.sched.job(c).state, JobState::kQueued);
}

TEST(SchedulerTest, CallerDrivenCompletion) {
  Scheduler::Config cfg;
  cfg.auto_run = false;
  RmFixture f(cfg);
  const JobId id = f.sched.submit(job(2, 100.0));
  f.sim.run_until(sim::kSecond);
  EXPECT_EQ(f.sched.job(id).state, JobState::kRunning);
  f.sim.run_until(50 * sim::kSecond);
  f.sched.complete(id);
  EXPECT_EQ(f.sched.job(id).state, JobState::kCompleted);
  EXPECT_EQ(f.sched.completed(), 1u);
}

TEST(SchedulerTest, UtilisationIntegralAccumulates) {
  RmFixture f(Scheduler::Config{}, 1, 4);
  f.sched.submit(job(2, 20.0));  // 2 nodes x 10 s = 20 node-seconds
  f.sim.run();
  EXPECT_NEAR(f.sched.busy_node_seconds(), 20.0, 0.1);
}

TEST(SchedulerTest, StartupOverheadExtendsRuntime) {
  RmFixture f;
  JobRequest r = job(2, 20.0);
  r.startup_overhead = 30 * sim::kSecond;  // virtual cluster boot cost
  const JobId id = f.sched.submit(r);
  f.sim.run();
  const JobRecord& rec = f.sched.job(id);
  EXPECT_NEAR(sim::to_seconds(rec.finished_at - rec.started_at), 40.0,
              0.01);
}

}  // namespace
}  // namespace dvc::rm
