#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "app/workload.hpp"
#include "ckpt/lsc.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "testbed.hpp"

namespace dvc {
namespace {

using test::TestBed;
using test::TestBedOptions;

app::WorkloadSpec chatty_job(app::RankId ranks, std::uint32_t iters) {
  app::WorkloadSpec s;
  s.name = "recovery-test";
  s.ranks = ranks;
  s.iterations = iters;
  s.flops_per_rank_iter = 1e9;  // ~0.1 s of compute per iteration
  s.pattern = app::Pattern::kAllToAll;
  s.bytes_per_msg = 4096;
  return s;
}

/// A VC + application + auto-recovery stack on a fabric with spare nodes,
/// with in-flight saves aborting on node death (the realistic hypervisor
/// behaviour the failure-path tests need).
struct RecoveryStack {
  RecoveryStack(std::uint32_t clusters, std::uint32_t nodes_per_cluster,
                std::uint32_t vc_size, std::uint32_t iters,
                core::DvcManager::RecoveryPolicy base_policy,
                ckpt::LscCoordinator::RetryPolicy retry,
                std::uint64_t seed = 26, double store_write_bps = 200e6)
      : bed(make_options(clusters, nodes_per_cluster, seed,
                         store_write_bps)),
        lsc(bed.sim, {}, sim::Rng(seed ^ 0x15C)) {
    lsc.set_metrics(&bed.metrics);
    lsc.set_retry_policy(retry);
    core::VcSpec spec;
    spec.name = "rec-vc";
    spec.size = vc_size;
    spec.guest.ram_bytes = 128ull << 20;
    vc = &bed.dvc->create_vc(spec, *bed.dvc->pick_nodes(vc_size), {});
    bed.sim.run_until(20 * sim::kSecond);  // boot completes at 15 s
    application = std::make_unique<app::ParallelApp>(
        bed.sim, bed.fabric.network(), vc->contexts(),
        chatty_job(vc_size, iters));
    bed.dvc->attach_app(*vc, *application);
    application->start();
    base_policy.coordinator = &lsc;
    bed.dvc->enable_auto_recovery(*vc, base_policy);
  }

  static TestBedOptions make_options(std::uint32_t clusters,
                                     std::uint32_t nodes_per_cluster,
                                     std::uint64_t seed, double write_bps) {
    TestBedOptions o;
    o.clusters = clusters;
    o.nodes_per_cluster = nodes_per_cluster;
    o.seed = seed;
    o.store.write_bps = write_bps;
    o.store.read_bps = 2 * write_bps;
    o.hv.abort_saves_on_failure = true;
    return o;
  }

  TestBed bed;
  ckpt::NtpLscCoordinator lsc;
  core::VirtualCluster* vc = nullptr;
  std::unique_ptr<app::ParallelApp> application;
};

// ---------------------------------------------------------------------------
// Crash a node mid-LSC-round: the round fails, recovery relocates the
// member, and the retried round re-resolves its targets and succeeds.

TEST(RecoveryTest, CrashMidRoundIsRetriedAgainstFreshTargetsAndSucceeds) {
  core::DvcManager::RecoveryPolicy policy;
  policy.interval = 300 * sim::kSecond;  // periodic rounds out of the way
  ckpt::LscCoordinator::RetryPolicy retry;
  retry.max_round_retries = 2;
  retry.backoff = 5 * sim::kSecond;
  RecoveryStack s(/*clusters=*/1, /*nodes=*/12, /*vc=*/8, /*iters=*/3000,
                  policy, retry);

  const hw::NodeId doomed = s.vc->placement(2);
  std::optional<ckpt::LscResult> result;
  // A manual round at 30 s: guests freeze at ~32 s (2 s NTP lead), the
  // 8 x 128 MiB set drains for ~5 s after that.
  s.bed.sim.schedule_after(30 * sim::kSecond, [&] {
    s.bed.dvc->checkpoint_vc(*s.vc, s.lsc,
                             [&](ckpt::LscResult r) { result = r; });
  });
  // Kill member 2's node while its image is streaming: the in-flight save
  // aborts, the round fails, and the failure feed starts a recovery.
  s.bed.sim.schedule_after(33 * sim::kSecond,
                           [&] { s.bed.fabric.fail_node(doomed); });

  s.bed.sim.run_until(120 * sim::kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_GE(result->retries, 1);
  EXPECT_GE(s.bed.metrics.counter_value("ckpt.lsc.round_retries"), 1u);
  // The retry fired at the member's *new* home, not the dead node: with
  // the stale mapping the round could never have succeeded (the dead
  // node's hypervisor rejects every save until the repair).
  EXPECT_NE(s.vc->placement(2), doomed);
  EXPECT_GE(s.bed.dvc->recoveries_performed(), 1u);

  // The application survived the whole episode and keeps making progress.
  EXPECT_FALSE(s.application->failed());
  const auto iter_then = s.application->rank(0).state().iter;
  s.bed.sim.run_until(150 * sim::kSecond);
  EXPECT_GT(s.application->rank(0).state().iter, iter_then);
}

// ---------------------------------------------------------------------------
// Kill a member VM after a checkpoint sealed: no node fails, so only the
// member watchdog can notice; it restores the VC from the last complete
// checkpoint and the job finishes every iteration exactly once.

TEST(RecoveryTest, WatchdogRestoresVcAfterMemberVmDies) {
  core::DvcManager::RecoveryPolicy policy;
  policy.interval = 20 * sim::kSecond;
  policy.watchdog_interval = 7 * sim::kSecond;
  RecoveryStack s(/*clusters=*/1, /*nodes=*/8, /*vc=*/6, /*iters=*/600,
                  policy, {});

  // By 30 s at least one periodic checkpoint has sealed. The guest dies
  // without its node failing — invisible to the hardware failure feed.
  s.bed.sim.schedule_after(30 * sim::kSecond,
                           [&] { s.vc->machine(4).kill(); });

  s.bed.sim.run_until(400 * sim::kSecond);
  EXPECT_GE(s.bed.dvc->watchdog_detections(), 1u);
  EXPECT_GE(s.bed.dvc->recoveries_performed(), 1u);
  EXPECT_TRUE(s.application->completed());
  EXPECT_FALSE(s.application->failed());
  // No lost completed work and nothing double-counted: every rank ran its
  // iterations to the end after the rollback.
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(s.application->rank(i).state().iter, 600u);
  }
}

// ---------------------------------------------------------------------------
// An inter-cluster cut longer than the transport retry budget aborts the
// application with every member alive: only the watchdog's application
// check can trigger the rollback that saves the job.

TEST(RecoveryTest, WatchdogRecoversFromApplicationLevelTransportFailure) {
  core::DvcManager::RecoveryPolicy policy;
  policy.interval = 25 * sim::kSecond;
  policy.watchdog_interval = 9 * sim::kSecond;
  // 8 ranks over 6-node clusters: the VC necessarily spans both.
  RecoveryStack s(/*clusters=*/2, /*nodes=*/6, /*vc=*/8, /*iters=*/600,
                  policy, {});

  fault::FaultInjector injector(
      s.bed.sim,
      fault::FaultInjector::Hooks{&s.bed.fabric, &s.bed.store,
                                  s.bed.time.get(), {}, {}},
      &s.bed.metrics);
  // Cut the inter-cluster link for 40 s starting at 40 s — longer than
  // the ~25 s retransmission budget, so endpoints abort and the app
  // reports failure while every node and VM stays healthy.
  injector.arm(fault::FaultPlan::parse_script("40 linkdown 0 1 40"));

  s.bed.sim.run_until(600 * sim::kSecond);
  EXPECT_GT(s.bed.metrics.counter_value("net.endpoint.aborts"), 0u);
  EXPECT_GE(s.bed.dvc->watchdog_detections(), 1u);
  EXPECT_GE(s.bed.dvc->recoveries_performed(), 1u);
  EXPECT_TRUE(s.application->completed());
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(s.application->rank(i).state().iter, 600u);
  }
}

}  // namespace
}  // namespace dvc
