#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "app/workload.hpp"
#include "ckpt/lsc.hpp"
#include "core/dvc_manager.hpp"
#include "testbed.hpp"

namespace dvc::core {
namespace {

using test::TestBed;

app::WorkloadSpec steady_job(app::RankId ranks, std::uint32_t iters) {
  app::WorkloadSpec s;
  s.name = "steady";
  s.ranks = ranks;
  s.iterations = iters;
  s.flops_per_rank_iter = 1e9;  // ~0.1 s per iteration
  s.pattern = app::Pattern::kAllToAll;
  s.bytes_per_msg = 2048;
  return s;
}

TestBed::Options two_cluster_opts(std::uint32_t nodes_per = 4) {
  TestBed::Options o;
  o.clusters = 2;
  o.nodes_per_cluster = nodes_per;
  o.store.write_bps = 400e6;
  o.store.read_bps = 800e6;
  return o;
}

VcSpec small_vc(std::uint32_t size, std::uint64_t ram = 64ull << 20) {
  VcSpec spec;
  spec.name = "vc";
  spec.size = size;
  spec.guest.ram_bytes = ram;
  return spec;
}

TEST(DvcManagerTest, PickNodesPacksSingleClusterThenSpans) {
  TestBed bed(two_cluster_opts());
  const auto packed = bed.dvc->pick_nodes(4);
  ASSERT_TRUE(packed.has_value());
  std::set<hw::ClusterId> clusters;
  for (const auto n : *packed) clusters.insert(bed.fabric.node(n).cluster());
  EXPECT_EQ(clusters.size(), 1u);

  const auto spanned = bed.dvc->pick_nodes(6);
  ASSERT_TRUE(spanned.has_value());
  clusters.clear();
  for (const auto n : *spanned) clusters.insert(bed.fabric.node(n).cluster());
  EXPECT_EQ(clusters.size(), 2u);

  EXPECT_FALSE(bed.dvc->pick_nodes(9).has_value());
}

TEST(DvcManagerTest, PickNodesSkipsClaimedAndFailed) {
  TestBed bed(two_cluster_opts());
  bed.fabric.fail_node(0);
  auto placement = bed.dvc->pick_nodes(3);
  ASSERT_TRUE(placement.has_value());
  bed.dvc->create_vc(small_vc(3), *placement, {});
  const auto rest = bed.dvc->pick_nodes(4);
  ASSERT_TRUE(rest.has_value());
  for (const auto n : *rest) {
    EXPECT_NE(n, 0u);
    EXPECT_FALSE(std::count(placement->begin(), placement->end(), n));
  }
  EXPECT_FALSE(bed.dvc->pick_nodes(5).has_value());
}

TEST(DvcManagerTest, PickNodesAvoidsCondemnedNodes) {
  TestBed bed(two_cluster_opts());
  bed.fabric.predict_failure(1, 10 * sim::kMinute);
  const auto placement = bed.dvc->pick_nodes(4);
  ASSERT_TRUE(placement.has_value());
  for (const hw::NodeId n : *placement) EXPECT_NE(n, 1u);
  // After the sentence is carried out and the node repaired, it is
  // allocatable again.
  bed.sim.run_until(11 * sim::kMinute);
  EXPECT_TRUE(bed.fabric.node(1).failed());
  bed.fabric.repair_node(1);
  EXPECT_FALSE(bed.fabric.condemned(1));
  EXPECT_TRUE(bed.dvc->pick_nodes(8).has_value());
}

TEST(DvcManagerTest, CreateVcBootsEveryMachine) {
  TestBed bed(two_cluster_opts());
  bool ready = false;
  VirtualCluster& vc =
      bed.dvc->create_vc(small_vc(3), {0, 1, 2}, [&] { ready = true; });
  EXPECT_EQ(vc.state(), VcState::kProvisioning);
  bed.sim.run_until(20 * sim::kSecond);
  EXPECT_TRUE(ready);
  EXPECT_EQ(vc.state(), VcState::kRunning);
  EXPECT_EQ(vc.contexts().size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(vc.machine(i).running());
    EXPECT_EQ(vc.machine(i).placed_on(), i);
  }
  EXPECT_EQ(bed.dvc->claims().size(), 3u);
  EXPECT_FALSE(vc.spans_clusters(bed.fabric));
  EXPECT_EQ(vc.instantiations(), 1u);
}

TEST(DvcManagerTest, SpanningVcIsDetected) {
  TestBed bed(two_cluster_opts());
  VirtualCluster& vc = bed.dvc->create_vc(small_vc(6), {0, 1, 2, 3, 4, 5}, {});
  EXPECT_TRUE(vc.spans_clusters(bed.fabric));
}

TEST(DvcManagerTest, DestroyReleasesClaims) {
  TestBed bed(two_cluster_opts());
  VirtualCluster& vc = bed.dvc->create_vc(small_vc(3), {0, 1, 2}, {});
  bed.sim.run_until(20 * sim::kSecond);
  bed.dvc->destroy_vc(vc);  // invalidates vc
  EXPECT_TRUE(bed.dvc->claims().empty());
  EXPECT_TRUE(bed.dvc->pick_nodes(8).has_value());
}

TEST(DvcManagerTest, AttachAppSizeMismatchThrows) {
  TestBed bed(two_cluster_opts());
  VirtualCluster& vc = bed.dvc->create_vc(small_vc(3), {0, 1, 2}, {});
  bed.sim.run_until(20 * sim::kSecond);
  auto contexts = vc.contexts();
  contexts.pop_back();
  app::ParallelApp two(bed.sim, bed.fabric.network(), contexts,
                       steady_job(2, 10));
  EXPECT_THROW(bed.dvc->attach_app(vc, two), std::invalid_argument);
}

struct RunningVc {
  RunningVc(TestBed& bed, std::uint32_t size, std::uint32_t iters,
            std::vector<hw::NodeId> placement)
      : vc(&bed.dvc->create_vc(small_vc(size), std::move(placement), {})) {
    bed.sim.run_until(20 * sim::kSecond);
    application = std::make_unique<app::ParallelApp>(
        bed.sim, bed.fabric.network(), vc->contexts(),
        steady_job(size, iters));
    bed.dvc->attach_app(*vc, *application);
    application->start();
  }

  VirtualCluster* vc;
  std::unique_ptr<app::ParallelApp> application;
};

TEST(DvcManagerTest, CheckpointRecordsRecoveryPoint) {
  TestBed bed(two_cluster_opts());
  RunningVc r(bed, 3, 600, {0, 1, 2});
  ckpt::NtpLscCoordinator lsc(bed.sim, {}, sim::Rng(3));
  std::optional<ckpt::LscResult> result;
  bed.sim.schedule_after(5 * sim::kSecond, [&] {
    bed.dvc->checkpoint_vc(*r.vc, lsc,
                           [&](ckpt::LscResult res) { result = res; });
  });
  bed.sim.run_until(60 * sim::kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_TRUE(r.vc->has_checkpoint());
  EXPECT_EQ(r.vc->last_checkpoint().set, result->set);
  EXPECT_EQ(bed.dvc->checkpoints_taken(), 1u);
  EXPECT_FALSE(r.application->failed());
}

TEST(DvcManagerTest, RestoreOntoDisjointNodesResumesFromCheckpoint) {
  TestBed bed(two_cluster_opts());
  RunningVc r(bed, 3, 400, {0, 1, 2});
  ckpt::NtpLscCoordinator lsc(bed.sim, {}, sim::Rng(5));
  bed.sim.schedule_after(5 * sim::kSecond, [&] {
    bed.dvc->checkpoint_vc(*r.vc, lsc, {});
  });
  // Node 1 dies mid-run; with no auto policy, we drive recovery by hand
  // onto a completely different node set (the paper's headline ability).
  bed.sim.schedule_after(40 * sim::kSecond,
                         [&] { bed.fabric.fail_node(1); });
  bool restored = false;
  bed.sim.schedule_after(45 * sim::kSecond, [&] {
    bed.dvc->restore_vc(*r.vc, {4, 5, 6}, [&](bool ok) { restored = ok; });
  });
  bed.sim.run_until(300 * sim::kSecond);
  EXPECT_TRUE(restored);
  EXPECT_EQ(r.vc->placements(), (std::vector<hw::NodeId>{4, 5, 6}));
  EXPECT_EQ(r.vc->instantiations(), 2u);
  bed.sim.run_until(600 * sim::kSecond);
  EXPECT_TRUE(r.application->completed());
  EXPECT_FALSE(r.application->failed());
  // Every rank ran exactly its configured number of iterations.
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r.application->rank(i).state().iter, 400u);
  }
}

TEST(DvcManagerTest, MigrationMovesVcWithoutLosingWork) {
  TestBed bed(two_cluster_opts());
  RunningVc r(bed, 3, 400, {0, 1, 2});
  ckpt::NtpLscCoordinator lsc(bed.sim, {}, sim::Rng(7));
  bool migrated = false;
  bed.sim.schedule_after(10 * sim::kSecond, [&] {
    bed.dvc->migrate_vc(*r.vc, lsc, {5, 6, 7},
                        [&](bool ok) { migrated = ok; });
  });
  bed.sim.run_until(120 * sim::kSecond);
  EXPECT_TRUE(migrated);
  EXPECT_EQ(bed.dvc->migrations_performed(), 1u);
  EXPECT_EQ(r.vc->placements(), (std::vector<hw::NodeId>{5, 6, 7}));
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r.vc->machine(i).placed_on(), 5 + i);
  }
  bed.sim.run_until(600 * sim::kSecond);
  EXPECT_TRUE(r.application->completed());
  EXPECT_FALSE(r.application->failed());
}

TEST(DvcManagerTest, AutoRecoverySurvivesNodeFailure) {
  TestBed bed(two_cluster_opts());
  RunningVc r(bed, 3, 600, {0, 1, 2});
  ckpt::NtpLscCoordinator lsc(bed.sim, {}, sim::Rng(9));
  DvcManager::RecoveryPolicy policy;
  policy.coordinator = &lsc;
  policy.interval = 20 * sim::kSecond;
  bed.dvc->enable_auto_recovery(*r.vc, policy);
  bed.sim.schedule_after(50 * sim::kSecond, [&] { bed.fabric.fail_node(2); });
  bed.sim.run_until(900 * sim::kSecond);
  EXPECT_TRUE(r.application->completed());
  EXPECT_FALSE(r.application->failed());
  EXPECT_GE(bed.dvc->recoveries_performed(), 1u);
  EXPECT_GE(r.vc->recoveries(), 1u);
  // The dead node is not in the final mapping.
  for (const hw::NodeId n : r.vc->placements()) EXPECT_NE(n, 2u);
  // Redone work: total compute exceeds the useful 0.1 s x 600 iterations.
  EXPECT_GT(r.application->stats().compute_done_s, 60.0);
}

TEST(DvcManagerTest, AutoRecoveryRelocatesAllWhenAsked) {
  TestBed bed(two_cluster_opts());
  RunningVc r(bed, 3, 600, {0, 1, 2});
  ckpt::NtpLscCoordinator lsc(bed.sim, {}, sim::Rng(11));
  DvcManager::RecoveryPolicy policy;
  policy.coordinator = &lsc;
  policy.interval = 20 * sim::kSecond;
  policy.relocate_all = true;
  bed.dvc->enable_auto_recovery(*r.vc, policy);
  bed.sim.schedule_after(50 * sim::kSecond, [&] { bed.fabric.fail_node(0); });
  bed.sim.run_until(900 * sim::kSecond);
  EXPECT_TRUE(r.application->completed());
  // All three members moved off the original mapping.
  for (const hw::NodeId n : r.vc->placements()) {
    EXPECT_GT(n, 2u);
  }
}

TEST(DvcManagerTest, RecoveryWaitsForSparesWhenNoneFree) {
  TestBed::Options opts = two_cluster_opts(2);  // only 4 nodes total
  TestBed bed(opts);
  RunningVc r(bed, 4, 600, {0, 1, 2, 3});  // VC owns every node
  ckpt::NtpLscCoordinator lsc(bed.sim, {}, sim::Rng(13));
  DvcManager::RecoveryPolicy policy;
  policy.coordinator = &lsc;
  policy.interval = 20 * sim::kSecond;
  bed.dvc->enable_auto_recovery(*r.vc, policy);
  bed.sim.schedule_after(50 * sim::kSecond, [&] { bed.fabric.fail_node(3); });
  // No spare exists; recovery must hold until the node is repaired.
  bed.sim.schedule_after(200 * sim::kSecond,
                         [&] { bed.fabric.repair_node(3); });
  bed.sim.run_until(1200 * sim::kSecond);
  EXPECT_TRUE(r.application->completed());
  EXPECT_GE(bed.dvc->recoveries_performed(), 1u);
}

TEST(DvcManagerTest, IncrementalCheckpointsAreSmallAndRestorable) {
  TestBed bed(two_cluster_opts());
  RunningVc r(bed, 3, 900, {0, 1, 2});
  ckpt::NtpLscCoordinator lsc(bed.sim, {}, sim::Rng(23));

  // Full image first, then two incrementals 2 s apart (the guests dirty
  // 10 MB/s, so each incremental holds ~20 MiB + dirty-map overhead).
  std::vector<std::uint64_t> set_bytes;
  auto take = [&](bool incremental) {
    std::optional<ckpt::LscResult> res;
    bed.dvc->checkpoint_vc(*r.vc, lsc,
                           [&](ckpt::LscResult out) { res = out; },
                           incremental);
    while (!res.has_value()) {
      bed.sim.run_until(bed.sim.now() + sim::kSecond);
    }
    ASSERT_TRUE(res->ok);
    set_bytes.push_back(bed.images.find_set(res->set)->total_bytes());
    bed.sim.run_until(bed.sim.now() + 2 * sim::kSecond);
  };
  take(false);
  take(true);
  take(true);
  ASSERT_EQ(set_bytes.size(), 3u);
  // Fulls write 3 x 64 MiB; an incremental writes only the ~4-5 s of
  // dirtying between images (wait + LSC lead time) plus the dirty-map
  // overhead per guest.
  EXPECT_EQ(set_bytes[0], 3ull * (64ull << 20));
  EXPECT_LT(set_bytes[1], set_bytes[0] * 3 / 4);
  EXPECT_LT(set_bytes[2], set_bytes[0] * 3 / 4);
  EXPECT_GT(set_bytes[1], 3ull * (4ull << 20));  // at least the dirty maps
  EXPECT_EQ(r.vc->checkpoint_chain().size(), 3u);

  // Restoring from the newest incremental stages the whole chain and the
  // application resumes correctly.
  bool restored = false;
  bed.dvc->restore_vc(*r.vc, {4, 5, 6}, [&](bool ok) { restored = ok; });
  bed.sim.run_until(bed.sim.now() + 60 * sim::kSecond);
  EXPECT_TRUE(restored);
  bed.sim.run_until(bed.sim.now() + 900 * sim::kSecond);
  EXPECT_TRUE(r.application->completed());
  EXPECT_FALSE(r.application->failed());
}

TEST(DvcManagerTest, IncrementalWithoutBaselineFallsBackToFull) {
  TestBed bed(two_cluster_opts());
  RunningVc r(bed, 3, 400, {0, 1, 2});
  ckpt::NtpLscCoordinator lsc(bed.sim, {}, sim::Rng(29));
  std::optional<ckpt::LscResult> res;
  bed.dvc->checkpoint_vc(*r.vc, lsc,
                         [&](ckpt::LscResult out) { res = out; },
                         /*incremental=*/true);
  bed.sim.run_until(bed.sim.now() + 60 * sim::kSecond);
  ASSERT_TRUE(res.has_value() && res->ok);
  // No prior image existed, so the "incremental" round wrote full images.
  EXPECT_EQ(bed.images.find_set(res->set)->total_bytes(),
            3ull * (64ull << 20));
  EXPECT_EQ(r.vc->checkpoint_chain().size(), 1u);
}

TEST(DvcManagerTest, LiveMigrationMovesRunningVcWithTinyDowntime) {
  TestBed bed(two_cluster_opts());
  RunningVc r(bed, 3, 600, {0, 1, 2});
  DvcManager::LiveMigrationConfig cfg;
  cfg.bandwidth_bps = 300e6;
  std::optional<DvcManager::LiveMigrationStats> stats;
  bed.sim.schedule_after(10 * sim::kSecond, [&] {
    bed.dvc->live_migrate_vc(*r.vc, {5, 6, 7}, cfg,
                             [&](DvcManager::LiveMigrationStats s) {
                               stats = s;
                             });
  });
  bed.sim.run_until(120 * sim::kSecond);
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->ok);
  EXPECT_EQ(r.vc->placements(), (std::vector<hw::NodeId>{5, 6, 7}));
  EXPECT_EQ(bed.dvc->live_migrations_performed(), 1u);
  // Pre-copy downtime is a fraction of a second; the checkpoint path
  // would have frozen the guests for the whole save+stage+restore.
  EXPECT_LT(stats->max_downtime, sim::kSecond);
  // Dirtied memory was re-sent: more bytes moved than guest RAM.
  EXPECT_GT(stats->bytes_moved, 3.0 * (64 << 20));
  // The old nodes are free again; the new ones are claimed.
  EXPECT_FALSE(bed.dvc->claims().contains(0));
  EXPECT_TRUE(bed.dvc->claims().contains(5));
  bed.sim.run_until(600 * sim::kSecond);
  EXPECT_TRUE(r.application->completed());
  EXPECT_FALSE(r.application->failed());
}

TEST(DvcManagerTest, LiveMigrationFailsCleanlyIfTargetDies) {
  TestBed bed(two_cluster_opts());
  RunningVc r(bed, 3, 600, {0, 1, 2});
  bed.fabric.fail_node(5);
  DvcManager::LiveMigrationConfig cfg;
  std::optional<DvcManager::LiveMigrationStats> stats;
  bed.dvc->live_migrate_vc(*r.vc, {5, 6, 7}, cfg,
                           [&](DvcManager::LiveMigrationStats s) {
                             stats = s;
                           });
  bed.sim.run_until(120 * sim::kSecond);
  ASSERT_TRUE(stats.has_value());
  EXPECT_FALSE(stats->ok);
}

TEST(DvcManagerTest, ProactiveMigrationEvacuatesBeforeTheFault) {
  TestBed bed(two_cluster_opts());
  RunningVc r(bed, 3, 600, {0, 1, 2});
  ckpt::NtpLscCoordinator lsc(bed.sim, {}, sim::Rng(17));
  DvcManager::RecoveryPolicy policy;
  policy.coordinator = &lsc;
  policy.interval = 60 * sim::kSecond;
  policy.proactive_migration = true;
  bed.dvc->enable_auto_recovery(*r.vc, policy);

  // Health monitoring announces node 1's death 60 s ahead.
  bed.sim.schedule_after(30 * sim::kSecond, [&] {
    bed.fabric.predict_failure(1, 60 * sim::kSecond);
  });
  bed.sim.run_until(600 * sim::kSecond);
  EXPECT_GE(bed.dvc->evacuations_performed(), 1u);
  // The VC left the suspect node before it died: no rollback needed.
  EXPECT_EQ(bed.dvc->recoveries_performed(), 0u);
  for (const hw::NodeId n : r.vc->placements()) EXPECT_NE(n, 1u);
  bed.sim.run_until(900 * sim::kSecond);
  EXPECT_TRUE(r.application->completed());
  EXPECT_FALSE(r.application->failed());
}

TEST(DvcManagerTest, RecoverNowHandlesSoftwareFailure) {
  TestBed bed(two_cluster_opts());
  RunningVc r(bed, 3, 400, {0, 1, 2});
  ckpt::NtpLscCoordinator lsc(bed.sim, {}, sim::Rng(15));
  bed.sim.schedule_after(5 * sim::kSecond,
                         [&] { bed.dvc->checkpoint_vc(*r.vc, lsc, {}); });
  // Simulate an application/software wedge at t=40 s: the operator (or a
  // monitor) rolls the whole VC back to the checkpoint.
  bed.sim.schedule_after(40 * sim::kSecond,
                         [&] { bed.dvc->recover_now(*r.vc); });
  bed.sim.run_until(600 * sim::kSecond);
  EXPECT_TRUE(r.application->completed());
  EXPECT_FALSE(r.application->failed());
}

}  // namespace
}  // namespace dvc::core
