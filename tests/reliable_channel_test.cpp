#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "net/network.hpp"
#include "net/reliable_channel.hpp"
#include "sim/simulation.hpp"

namespace dvc::net {
namespace {

struct ChannelFixture {
  explicit ChannelFixture(double loss = 0.0, ReliableConfig cfg = {},
                          std::uint64_t seed = 1)
      : link(std::make_shared<FlatLinkModel>(FlatLinkModel::Config{
            100 * sim::kMicrosecond, 20 * sim::kMicrosecond, loss, 1e9})),
        net(sim, link, sim::Rng(seed)),
        a_host(net.new_host()),
        b_host(net.new_host()),
        a(sim, net, {a_host, 1}, {b_host, 1}, cfg),
        b(sim, net, {b_host, 1}, {a_host, 1}, cfg) {}

  sim::Simulation sim;
  std::shared_ptr<FlatLinkModel> link;
  Network net;
  HostId a_host;
  HostId b_host;
  ReliableEndpoint a;
  ReliableEndpoint b;
};

TEST(ReliableConfigTest, RetryBudgetSumsBackedOffSchedule) {
  ReliableConfig cfg;
  cfg.initial_rto = 200 * sim::kMillisecond;
  cfg.backoff = 2.0;
  cfg.max_retries = 6;
  cfg.max_rto = 60 * sim::kSecond;
  // 0.2 + 0.4 + 0.8 + 1.6 + 3.2 + 6.4 + 12.8 = 25.4 s
  EXPECT_NEAR(sim::to_seconds(cfg.retry_budget()), 25.4, 1e-6);
}

TEST(ReliableChannelTest, DeliversInOrderWithIds) {
  ChannelFixture f;
  std::vector<Message> got;
  f.b.set_delivery_handler([&](const Message& m) { got.push_back(m); });
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_NE(f.a.send(100 + i, /*tag=*/i), 0u);
  }
  f.sim.run();
  ASSERT_EQ(got.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(got[i].id, i + 1);
    EXPECT_EQ(got[i].bytes, 100 + i);
    EXPECT_EQ(got[i].tag, i);
  }
  EXPECT_EQ(f.a.unacked(), 0u);
  EXPECT_EQ(f.a.retransmissions(), 0u);
  EXPECT_FALSE(f.a.failed());
}

TEST(ReliableChannelTest, BidirectionalTrafficIsIndependent) {
  ChannelFixture f;
  std::vector<Message> at_a;
  std::vector<Message> at_b;
  f.a.set_delivery_handler([&](const Message& m) { at_a.push_back(m); });
  f.b.set_delivery_handler([&](const Message& m) { at_b.push_back(m); });
  f.a.send(1);
  f.b.send(2);
  f.a.send(3);
  f.sim.run();
  EXPECT_EQ(at_b.size(), 2u);
  EXPECT_EQ(at_a.size(), 1u);
  EXPECT_EQ(at_a[0].bytes, 2u);
}

TEST(ReliableChannelTest, RetransmitsThroughLossExactlyOnce) {
  ReliableConfig cfg;
  cfg.max_retries = 12;
  ChannelFixture f(/*loss=*/0.3, cfg, /*seed=*/7);
  std::vector<Message> got;
  f.b.set_delivery_handler([&](const Message& m) { got.push_back(m); });
  for (int i = 0; i < 50; ++i) f.a.send(64, i);
  f.sim.run();
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[i].tag, static_cast<unsigned>(i));
  EXPECT_GT(f.a.retransmissions(), 0u);
  EXPECT_FALSE(f.a.failed());
  EXPECT_EQ(f.a.unacked(), 0u);
}

TEST(ReliableChannelTest, AbortsAfterRetryBudgetAgainstDeadPeer) {
  ChannelFixture f;
  std::string reason;
  f.a.set_failure_handler([&](std::string_view r) { reason = r; });
  f.net.set_host_up(f.b_host, false);  // peer frozen forever
  f.a.send(100);
  f.sim.run();
  EXPECT_TRUE(f.a.failed());
  EXPECT_FALSE(reason.empty());
  // Abort lands one retry-budget after the send.
  const ReliableConfig cfg;
  EXPECT_NEAR(sim::to_seconds(f.sim.now()),
              sim::to_seconds(cfg.retry_budget()), 0.2);
  // A failed endpoint refuses further sends.
  EXPECT_EQ(f.a.send(1), 0u);
}

TEST(ReliableChannelTest, FrozenSenderConsumesNoRetries) {
  ChannelFixture f;
  f.net.set_host_up(f.b_host, false);
  f.a.send(100);
  // Freeze the sender before its budget runs out; keep both frozen a long
  // time; then thaw both. The transfer must complete, not abort.
  f.sim.schedule_after(3 * sim::kSecond,
                       [&] { f.net.set_host_up(f.a_host, false); });
  f.sim.schedule_after(10 * sim::kMinute, [&] {
    f.net.set_host_up(f.a_host, true);
    f.net.set_host_up(f.b_host, true);
  });
  std::vector<Message> got;
  f.b.set_delivery_handler([&](const Message& m) { got.push_back(m); });
  f.sim.run();
  EXPECT_FALSE(f.a.failed());
  EXPECT_EQ(got.size(), 1u);
}

TEST(ReliableChannelTest, PaperScenario1_DataLostAcrossCut) {
  // A message is in flight when the receiver freezes; it is dropped, never
  // ACKed, and retransmitted after both guests thaw (paper §3 scenario 1).
  ChannelFixture f;
  std::vector<Message> got;
  f.b.set_delivery_handler([&](const Message& m) { got.push_back(m); });
  f.a.send(100);
  // Freeze the receiver before the packet lands (latency ~100 us).
  f.net.set_host_up(f.b_host, false);
  // Freeze the "sender guest" a moment later (coordinated checkpoint).
  f.sim.schedule_after(5 * sim::kMillisecond,
                       [&] { f.net.set_host_up(f.a_host, false); });
  // Restore both much later.
  f.sim.schedule_after(2 * sim::kMinute, [&] {
    f.net.set_host_up(f.a_host, true);
    f.net.set_host_up(f.b_host, true);
  });
  f.sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 1u);
  EXPECT_FALSE(f.a.failed());
  EXPECT_GE(f.a.retransmissions(), 1u);
}

TEST(ReliableChannelTest, PaperScenario2_AckLostAcrossCut) {
  // The receiver delivers and ACKs, but the ACK dies on the wire before
  // the cut. After restore the sender retransmits; the receiver re-ACKs
  // the duplicate without redelivering (paper §3 scenario 2).
  ChannelFixture f;
  std::vector<Message> got;
  f.b.set_delivery_handler([&](const Message& m) { got.push_back(m); });
  f.a.send(100);
  // The data packet is already on the wire; freezing the sender now means
  // the receiver's ACK will find the sender's NIC dark and be lost.
  f.net.set_host_up(f.a_host, false);
  f.sim.schedule_after(5 * sim::kMillisecond, [&] {
    EXPECT_EQ(got.size(), 1u);  // receiver delivered before its own freeze
    f.net.set_host_up(f.b_host, false);
  });
  f.sim.schedule_after(2 * sim::kMinute, [&] {
    f.net.set_host_up(f.a_host, true);
    f.net.set_host_up(f.b_host, true);
  });
  f.sim.run();
  EXPECT_EQ(got.size(), 1u);           // exactly once: no redelivery
  EXPECT_EQ(f.b.duplicates_discarded(), 1u);
  EXPECT_FALSE(f.a.failed());
  EXPECT_EQ(f.a.unacked(), 0u);        // the re-ACK completed the exchange
}

TEST(ReliableChannelTest, RetransmissionMasksOneWayLossWindow) {
  // A one-way cut (dying transceiver): data packets a -> b vanish while
  // the reverse path stays perfect. As long as the window is shorter than
  // the retry budget (~25.4 s), retransmission masks it completely.
  sim::Simulation sim;
  auto link = std::make_shared<ClusterLinkModel>(ClusterLinkModel::Config{});
  Network net(sim, link, sim::Rng(5));
  const HostId a_host = net.new_host();  // cluster 0 (default)
  const HostId b_host = net.new_host();
  link->set_cluster(b_host, 1);
  ReliableEndpoint a(sim, net, {a_host, 1}, {b_host, 1}, {});
  ReliableEndpoint b(sim, net, {b_host, 1}, {a_host, 1}, {});
  std::vector<Message> got;
  b.set_delivery_handler([&](const Message& m) { got.push_back(m); });

  ClusterLinkModel::PairOverride cut;
  cut.cut = true;
  link->set_directed_override(0, 1, cut);
  a.send(100, 7);
  // Every transmission inside the window dies on the forward path; the
  // cut lifts at 12 s, well inside the budget.
  sim.schedule_after(12 * sim::kSecond,
                     [&] { link->clear_directed_override(0, 1); });
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].tag, 7u);
  EXPECT_FALSE(a.failed());
  EXPECT_GE(a.retransmissions(), 1u);
  EXPECT_EQ(a.unacked(), 0u);
}

TEST(ReliableChannelTest, SnapshotRestoreRoundTripsState) {
  ChannelFixture f;
  f.net.set_host_up(f.b_host, false);
  f.a.send(100, 5);
  f.a.send(200, 6);
  f.sim.run_until(sim::kSecond);
  const TransportSnapshot snap = f.a.snapshot();
  EXPECT_EQ(snap.next_seq, 2u);
  EXPECT_EQ(snap.acked, 0u);
  EXPECT_EQ(snap.unacked.size(), 2u);
  EXPECT_EQ(snap.unacked.at(0).first, 100u);
  EXPECT_EQ(snap.unacked.at(1).second, 6u);
}

TEST(ReliableChannelTest, RollbackRestoreRedeliversUnacked) {
  ChannelFixture f;
  std::vector<Message> got;
  f.b.set_delivery_handler([&](const Message& m) { got.push_back(m); });

  // Freeze both sides with a message unACKed; snapshot; then simulate a
  // crash-and-rollback: both endpoints restore with a bumped epoch.
  f.net.set_host_up(f.b_host, false);
  f.a.send(123, 9);
  f.sim.run_until(10 * sim::kMillisecond);
  f.net.set_host_up(f.a_host, false);
  const TransportSnapshot sa = f.a.snapshot();
  const TransportSnapshot sb = f.b.snapshot();

  f.sim.run_until(sim::kMinute);
  f.net.set_host_up(f.a_host, true);
  f.net.set_host_up(f.b_host, true);
  f.a.restore(sa, /*epoch=*/1);
  f.b.restore(sb, /*epoch=*/1);
  f.sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].bytes, 123u);
  EXPECT_EQ(got[0].tag, 9u);
  EXPECT_EQ(f.a.unacked(), 0u);
}

TEST(ReliableChannelTest, StaleEpochPacketsAreIgnored) {
  ChannelFixture f;
  std::vector<Message> got;
  f.b.set_delivery_handler([&](const Message& m) { got.push_back(m); });
  // b rolls forward to epoch 1; a (still epoch 0) sends — ignored.
  f.b.restore(TransportSnapshot{}, /*epoch=*/1);
  f.a.send(55);
  f.sim.run_until(sim::kSecond);
  EXPECT_TRUE(got.empty());
  // Once a is also restored into epoch 1, traffic flows again.
  TransportSnapshot sa = f.a.snapshot();
  f.a.restore(sa, /*epoch=*/1);
  f.sim.run();
  ASSERT_EQ(got.size(), 1u);
}

TEST(ReliableChannelTest, RestoreReopensFailedEndpoint) {
  ChannelFixture f;
  f.net.set_host_up(f.b_host, false);
  f.a.send(100);
  f.sim.run();  // aborts
  ASSERT_TRUE(f.a.failed());
  TransportSnapshot sa;
  sa.next_seq = 1;  // pretend the checkpoint saw the message queued
  sa.unacked.emplace(0, std::make_pair(100u, 0u));
  f.net.set_host_up(f.b_host, true);
  f.a.restore(sa, 1);
  f.b.restore(TransportSnapshot{}, 1);
  std::vector<Message> got;
  f.b.set_delivery_handler([&](const Message& m) { got.push_back(m); });
  f.sim.run();
  EXPECT_FALSE(f.a.failed());
  EXPECT_EQ(got.size(), 1u);
}

TEST(ReliableConnectionTest, WrapsTwoEndpoints) {
  sim::Simulation sim;
  auto link = std::make_shared<FlatLinkModel>(FlatLinkModel::Config{});
  Network net(sim, link, sim::Rng(3));
  const HostId h1 = net.new_host();
  const HostId h2 = net.new_host();
  ReliableConnection conn(sim, net, {h1, 9}, {h2, 9});
  int delivered = 0;
  conn.end_b().set_delivery_handler([&](const Message&) { ++delivered; });
  conn.end_a().send(10);
  sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_FALSE(conn.failed());
}

// Property sweep: exactly-once in-order delivery under loss x seed.
class LossSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(LossSweep, ExactlyOnceInOrderUnderLoss) {
  const auto [loss, seed] = GetParam();
  ReliableConfig cfg;
  cfg.max_retries = 14;
  ChannelFixture f(loss, cfg, seed);
  std::vector<Message> got;
  f.b.set_delivery_handler([&](const Message& m) { got.push_back(m); });
  constexpr int kMessages = 120;
  // Spread sends over time so reordering between retransmits can happen.
  for (int i = 0; i < kMessages; ++i) {
    f.sim.schedule_after(i * 3 * sim::kMillisecond,
                         [&f, i] { f.a.send(32, i); });
  }
  f.sim.run();
  ASSERT_FALSE(f.a.failed()) << "loss=" << loss << " seed=" << seed;
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(got[i].tag, static_cast<std::uint32_t>(i));
    EXPECT_EQ(got[i].id, static_cast<std::uint64_t>(i) + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossGrid, LossSweep,
    ::testing::Combine(::testing::Values(0.0, 0.02, 0.1, 0.3),
                       ::testing::Values(1ull, 17ull, 4242ull)));

// Property sweep: exactly-once in-order delivery survives arbitrary
// freeze/thaw patterns on both hosts (checkpoint cuts at random times),
// as long as the transport's retry budget is generous enough.
class FreezeChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FreezeChaos, ExactlyOnceThroughRandomCuts) {
  ReliableConfig cfg;
  cfg.max_retries = 30;  // patience >> any freeze in this test
  ChannelFixture f(/*loss=*/0.05, cfg, GetParam());
  sim::Rng rng(GetParam() ^ 0xF5EE);
  std::vector<Message> got;
  f.b.set_delivery_handler([&](const Message& m) { got.push_back(m); });

  constexpr int kMessages = 80;
  for (int i = 0; i < kMessages; ++i) {
    f.sim.schedule_after(i * 50 * sim::kMillisecond,
                         [&f, i] { f.a.send(64, i); });
  }
  // Random freeze/thaw pulses on both hosts over the send window.
  sim::Time t = 0;
  for (int pulse = 0; pulse < 12; ++pulse) {
    t += rng.exponential_duration(400 * sim::kMillisecond);
    const net::HostId victim = rng.chance(0.5) ? f.a_host : f.b_host;
    const sim::Duration down =
        rng.exponential_duration(500 * sim::kMillisecond);
    f.sim.schedule_at(t, [&f, victim] { f.net.set_host_up(victim, false); });
    f.sim.schedule_at(t + down,
                      [&f, victim] { f.net.set_host_up(victim, true); });
    t += down;
  }
  f.sim.run();
  ASSERT_FALSE(f.a.failed()) << "seed=" << GetParam();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(got[i].tag, static_cast<std::uint32_t>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FreezeChaos,
                         ::testing::Values(1, 7, 23, 77, 123, 999, 5150,
                                           31337));

}  // namespace
}  // namespace dvc::net
