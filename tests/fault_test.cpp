#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "testbed.hpp"

namespace dvc {
namespace {

using fault::FaultEvent;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using fault::StochasticFaults;
using test::TestBed;
using test::TestBedOptions;

bool same_event(const FaultEvent& a, const FaultEvent& b) {
  return a.at == b.at && a.kind == b.kind && a.node == b.node &&
         a.cluster_a == b.cluster_a && a.cluster_b == b.cluster_b &&
         a.one_way == b.one_way && a.group_a == b.group_a &&
         a.group_b == b.group_b && a.down_for == b.down_for &&
         a.loss == b.loss && a.latency_factor == b.latency_factor &&
         a.factor == b.factor && a.clock_step == b.clock_step;
}

bool same_schedule(const std::vector<FaultEvent>& a,
                   const std::vector<FaultEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!same_event(a[i], b[i])) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// FaultPlan: script parsing

TEST(FaultPlanTest, ParsesEveryVerb) {
  const FaultPlan plan = FaultPlan::parse_script(
      "5 crash 3 60; 10 linkdown 0 1 30\n"
      "15 degrade 0 1 0.05 3 60; 20 diskslow 8 45; 25 clockstep 2 -250");
  const std::vector<FaultEvent> s = plan.schedule();
  ASSERT_EQ(s.size(), 5u);

  EXPECT_EQ(s[0].kind, FaultKind::kNodeCrash);
  EXPECT_EQ(s[0].at, 5 * sim::kSecond);
  EXPECT_EQ(s[0].node, 3u);
  EXPECT_EQ(s[0].down_for, 60 * sim::kSecond);

  EXPECT_EQ(s[1].kind, FaultKind::kLinkDown);
  EXPECT_EQ(s[1].cluster_a, 0u);
  EXPECT_EQ(s[1].cluster_b, 1u);
  EXPECT_EQ(s[1].down_for, 30 * sim::kSecond);

  EXPECT_EQ(s[2].kind, FaultKind::kLinkDegrade);
  EXPECT_DOUBLE_EQ(s[2].loss, 0.05);
  EXPECT_DOUBLE_EQ(s[2].latency_factor, 3.0);
  EXPECT_EQ(s[2].down_for, 60 * sim::kSecond);

  EXPECT_EQ(s[3].kind, FaultKind::kDiskSlow);
  EXPECT_DOUBLE_EQ(s[3].factor, 8.0);
  EXPECT_EQ(s[3].down_for, 45 * sim::kSecond);

  EXPECT_EQ(s[4].kind, FaultKind::kClockStep);
  EXPECT_EQ(s[4].node, 2u);
  EXPECT_EQ(s[4].clock_step, -250 * sim::kMillisecond);
}

TEST(FaultPlanTest, ParsesOneWayPartitionAndCoordcrashVerbs) {
  const FaultPlan plan = FaultPlan::parse_script(
      "5 linkdown 0->1 30; 10 degrade 1->0 0.2 2 30\n"
      "15 partition 0,1|2 20; 20 coordcrash 15; 25 coordcrash");
  const std::vector<FaultEvent> s = plan.schedule();
  ASSERT_EQ(s.size(), 5u);

  EXPECT_EQ(s[0].kind, FaultKind::kLinkDown);
  EXPECT_TRUE(s[0].one_way);
  EXPECT_EQ(s[0].cluster_a, 0u);
  EXPECT_EQ(s[0].cluster_b, 1u);
  EXPECT_EQ(s[0].down_for, 30 * sim::kSecond);

  EXPECT_EQ(s[1].kind, FaultKind::kLinkDegrade);
  EXPECT_TRUE(s[1].one_way);
  EXPECT_EQ(s[1].cluster_a, 1u);
  EXPECT_EQ(s[1].cluster_b, 0u);
  EXPECT_DOUBLE_EQ(s[1].loss, 0.2);
  EXPECT_DOUBLE_EQ(s[1].latency_factor, 2.0);

  EXPECT_EQ(s[2].kind, FaultKind::kPartition);
  EXPECT_EQ(s[2].group_a, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(s[2].group_b, (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(s[2].down_for, 20 * sim::kSecond);

  EXPECT_EQ(s[3].kind, FaultKind::kCoordinatorCrash);
  EXPECT_EQ(s[3].down_for, 15 * sim::kSecond);
  // A coordcrash with no duration: down until explicitly rebooted.
  EXPECT_EQ(s[4].kind, FaultKind::kCoordinatorCrash);
  EXPECT_EQ(s[4].down_for, 0);
}

TEST(FaultPlanTest, RejectsBadPartitionAndOneWayScripts) {
  // Self links, in either syntax.
  EXPECT_THROW(FaultPlan::parse_script("5 linkdown 0->0 10"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse_script("5 degrade 1->1 0.1 2 10"),
               std::invalid_argument);
  // Partition groups must be two non-empty disjoint sides.
  EXPECT_THROW(FaultPlan::parse_script("5 partition 01 10"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse_script("5 partition |1 10"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse_script("5 partition 0,1|1 10"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse_script("5 coordcrash 1 2"),
               std::invalid_argument);
}

TEST(FaultPlanTest, RejectsMalformedScripts) {
  EXPECT_THROW(FaultPlan::parse_script("5 explode 1"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse_script("crash 1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse_script("5 crash"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse_script("5 degrade 0 1 0.05"),
               std::invalid_argument);
  // Permanent crash (no down_for) and empty scripts are fine.
  EXPECT_EQ(FaultPlan::parse_script("5 crash 1").size(), 1u);
  EXPECT_TRUE(FaultPlan::parse_script("").empty());
}

TEST(FaultPlanTest, ScheduleOrdersByTimeKeepingInsertionOrderOnTies) {
  FaultPlan plan;
  FaultEvent a;
  a.at = 20 * sim::kSecond;
  a.node = 1;
  FaultEvent b;
  b.at = 10 * sim::kSecond;
  b.node = 2;
  FaultEvent c;
  c.at = 20 * sim::kSecond;
  c.node = 3;
  plan.add(a);
  plan.add(b);
  plan.add(c);
  const std::vector<FaultEvent> s = plan.schedule();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].node, 2u);
  EXPECT_EQ(s[1].node, 1u);  // inserted before c at the same instant
  EXPECT_EQ(s[2].node, 3u);
}

// ---------------------------------------------------------------------------
// FaultPlan: stochastic sampling determinism — the property the soak
// suite leans on: the schedule is a pure function of (spec, counts, seed).

StochasticFaults full_spec() {
  StochasticFaults spec;
  spec.horizon = 600 * sim::kSecond;
  spec.node_crash_mtbf = 120 * sim::kSecond;
  spec.node_down_for = 60 * sim::kSecond;
  spec.link_down_mtbf = 200 * sim::kSecond;
  spec.disk_slow_mtbf = 150 * sim::kSecond;
  spec.clock_step_mtbf = 100 * sim::kSecond;
  spec.partition_mtbf = 250 * sim::kSecond;
  spec.coordinator_crash_mtbf = 300 * sim::kSecond;
  return spec;
}

TEST(FaultPlanTest, SameSeedSamplesIdenticalSchedules) {
  FaultPlan a;
  a.sample(full_spec(), 24, 2, sim::Rng(777));
  FaultPlan b;
  b.sample(full_spec(), 24, 2, sim::Rng(777));
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE(same_schedule(a.schedule(), b.schedule()));

  FaultPlan c;
  c.sample(full_spec(), 24, 2, sim::Rng(778));
  EXPECT_FALSE(same_schedule(a.schedule(), c.schedule()));
}

TEST(FaultPlanTest, EnablingOneProcessDoesNotPerturbAnother) {
  // Each process forks its own child Rng: turning the disk process off
  // must leave the crash sequence untouched.
  StochasticFaults crashes_only = full_spec();
  crashes_only.link_down_mtbf = 0;
  crashes_only.disk_slow_mtbf = 0;
  crashes_only.clock_step_mtbf = 0;

  FaultPlan lone;
  lone.sample(crashes_only, 24, 2, sim::Rng(42));
  FaultPlan mixed;
  mixed.sample(full_spec(), 24, 2, sim::Rng(42));

  std::vector<FaultEvent> lone_crashes;
  for (const FaultEvent& e : lone.schedule()) {
    if (e.kind == FaultKind::kNodeCrash) lone_crashes.push_back(e);
  }
  std::vector<FaultEvent> mixed_crashes;
  for (const FaultEvent& e : mixed.schedule()) {
    if (e.kind == FaultKind::kNodeCrash) mixed_crashes.push_back(e);
  }
  EXPECT_FALSE(lone_crashes.empty());
  EXPECT_TRUE(same_schedule(lone_crashes, mixed_crashes));
}

// ---------------------------------------------------------------------------
// FaultInjector: each event kind has its advertised observable effect.

TestBedOptions two_cluster_opts() {
  TestBedOptions o;
  o.clusters = 2;
  o.nodes_per_cluster = 4;
  return o;
}

FaultInjector::Hooks hooks_for(TestBed& bed) {
  return FaultInjector::Hooks{&bed.fabric, &bed.store, bed.time.get(), {},
                              {}};
}

TEST(FaultInjectorTest, NodeCrashFailsAndRebootsTheNode) {
  TestBed bed(two_cluster_opts());
  FaultInjector inj(bed.sim, hooks_for(bed), &bed.metrics);
  inj.arm(FaultPlan::parse_script("5 crash 1 10"));

  bed.sim.run_until(6 * sim::kSecond);
  EXPECT_TRUE(bed.fabric.node(1).failed());
  EXPECT_EQ(inj.injected(FaultKind::kNodeCrash), 1u);

  bed.sim.run_until(20 * sim::kSecond);
  EXPECT_FALSE(bed.fabric.node(1).failed());
  EXPECT_EQ(inj.lifted_total(), 1u);
  EXPECT_EQ(bed.metrics.counter_value("fault.injected"), 1u);
  EXPECT_EQ(bed.metrics.counter_value("fault.lifted"), 1u);
}

TEST(FaultInjectorTest, LinkDownCutsThePairThenRestoresIt) {
  TestBed bed(two_cluster_opts());
  FaultInjector inj(bed.sim, hooks_for(bed), &bed.metrics);
  inj.arm(FaultPlan::parse_script("5 linkdown 0 1 10"));

  // Host 0 lives in cluster 0, host 4 in cluster 1 (4 nodes per cluster).
  net::ClusterLinkModel& links = bed.fabric.links();
  const double base = links.loss_probability(0, 4);

  bed.sim.run_until(6 * sim::kSecond);
  EXPECT_DOUBLE_EQ(links.loss_probability(0, 4), 1.0);
  // Intra-cluster traffic is untouched.
  EXPECT_DOUBLE_EQ(links.loss_probability(0, 1), 0.0);

  bed.sim.run_until(20 * sim::kSecond);
  EXPECT_DOUBLE_EQ(links.loss_probability(0, 4), base);
}

TEST(FaultInjectorTest, OneWayCutAffectsOnlyThatDirection) {
  TestBed bed(two_cluster_opts());
  FaultInjector inj(bed.sim, hooks_for(bed), &bed.metrics);
  inj.arm(FaultPlan::parse_script("5 linkdown 0->1 10"));

  net::ClusterLinkModel& links = bed.fabric.links();
  const double base = links.loss_probability(0, 4);

  bed.sim.run_until(6 * sim::kSecond);
  // Forward traffic drops; the reverse direction is untouched — the
  // asymmetric-transceiver failure mode.
  EXPECT_DOUBLE_EQ(links.loss_probability(0, 4), 1.0);
  EXPECT_DOUBLE_EQ(links.loss_probability(4, 0), base);

  bed.sim.run_until(20 * sim::kSecond);
  EXPECT_DOUBLE_EQ(links.loss_probability(0, 4), base);
  EXPECT_EQ(inj.lifted_total(), 1u);
}

TEST(FaultInjectorTest, PartitionCutsOnlyCrossGroupTraffic) {
  TestBedOptions o;
  o.clusters = 3;
  o.nodes_per_cluster = 2;  // hosts 0-1 / 2-3 / 4-5
  TestBed bed(o);
  FaultInjector inj(bed.sim, hooks_for(bed), &bed.metrics);
  inj.arm(FaultPlan::parse_script("5 partition 0|1,2 10"));

  net::ClusterLinkModel& links = bed.fabric.links();
  const double base = links.loss_probability(2, 4);

  bed.sim.run_until(6 * sim::kSecond);
  // Every ordered pair across the cut drops...
  EXPECT_DOUBLE_EQ(links.loss_probability(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(links.loss_probability(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(links.loss_probability(0, 4), 1.0);
  EXPECT_DOUBLE_EQ(links.loss_probability(4, 0), 1.0);
  // ...while traffic within a side flows normally: clusters 1 and 2 are
  // on the same side, and intra-cluster links never see the fault.
  EXPECT_DOUBLE_EQ(links.loss_probability(2, 4), base);
  EXPECT_DOUBLE_EQ(links.loss_probability(0, 1), 0.0);

  bed.sim.run_until(20 * sim::kSecond);
  EXPECT_DOUBLE_EQ(links.loss_probability(0, 2), base);
  EXPECT_DOUBLE_EQ(links.loss_probability(0, 4), base);
  EXPECT_EQ(inj.injected(FaultKind::kPartition), 1u);
}

TEST(FaultInjectorTest, CoordinatorCrashInvokesHookOrIsSkipped) {
  TestBed bed(two_cluster_opts());
  std::vector<sim::Duration> crashes;
  FaultInjector::Hooks hooks = hooks_for(bed);
  hooks.coordinator_crash = [&](sim::Duration down_for) {
    crashes.push_back(down_for);
  };
  FaultInjector inj(bed.sim, hooks, &bed.metrics);
  inj.arm(FaultPlan::parse_script("5 coordcrash 15; 8 coordcrash"));

  bed.sim.run_until(20 * sim::kSecond);
  ASSERT_EQ(crashes.size(), 2u);
  EXPECT_EQ(crashes[0], 15 * sim::kSecond);
  EXPECT_EQ(crashes[1], 0);
  EXPECT_EQ(inj.injected(FaultKind::kCoordinatorCrash), 2u);

  // Without a hook the event is skipped, not crashed-on.
  TestBed bare(two_cluster_opts());
  FaultInjector lone(bare.sim, hooks_for(bare), &bare.metrics);
  lone.arm(FaultPlan::parse_script("5 coordcrash 15"));
  bare.sim.run_until(20 * sim::kSecond);
  EXPECT_EQ(lone.skipped_total(), 1u);
}

TEST(FaultInjectorTest, DegradeAddsLossAndNestsUnderACut) {
  TestBed bed(two_cluster_opts());
  FaultInjector inj(bed.sim, hooks_for(bed), &bed.metrics);
  inj.arm(FaultPlan::parse_script(
      "5 degrade 0 1 0.05 3 30; 10 linkdown 0 1 10"));

  net::ClusterLinkModel& links = bed.fabric.links();
  const double base = links.loss_probability(0, 4);

  bed.sim.run_until(6 * sim::kSecond);
  EXPECT_DOUBLE_EQ(links.loss_probability(0, 4), base + 0.05);

  // While a cut is active it wins over the degrade...
  bed.sim.run_until(15 * sim::kSecond);
  EXPECT_DOUBLE_EQ(links.loss_probability(0, 4), 1.0);

  // ...and when the cut lifts the still-active degrade resurfaces.
  bed.sim.run_until(25 * sim::kSecond);
  EXPECT_DOUBLE_EQ(links.loss_probability(0, 4), base + 0.05);

  bed.sim.run_until(40 * sim::kSecond);
  EXPECT_DOUBLE_EQ(links.loss_probability(0, 4), base);
}

TEST(FaultInjectorTest, DiskSlowdownRunsAtTheWorstActiveFactor) {
  TestBed bed(two_cluster_opts());
  FaultInjector inj(bed.sim, hooks_for(bed), &bed.metrics);
  const double base = bed.store.write_pool().capacity_bps();
  inj.arm(FaultPlan::parse_script("5 diskslow 4 30; 10 diskslow 8 10"));

  bed.sim.run_until(6 * sim::kSecond);
  EXPECT_DOUBLE_EQ(bed.store.write_pool().capacity_bps(), base / 4);

  bed.sim.run_until(15 * sim::kSecond);  // both active: worst factor wins
  EXPECT_DOUBLE_EQ(bed.store.write_pool().capacity_bps(), base / 8);

  bed.sim.run_until(25 * sim::kSecond);  // the 8x lifted, the 4x remains
  EXPECT_DOUBLE_EQ(bed.store.write_pool().capacity_bps(), base / 4);

  bed.sim.run_until(40 * sim::kSecond);
  EXPECT_DOUBLE_EQ(bed.store.write_pool().capacity_bps(), base);
}

TEST(FaultInjectorTest, ClockStepShiftsOneHostsWallClock) {
  TestBed bed(two_cluster_opts());
  FaultInjector inj(bed.sim, hooks_for(bed), &bed.metrics);
  inj.arm(FaultPlan::parse_script("5 clockstep 2 250"));

  bed.sim.run_until(4 * sim::kSecond);
  const sim::Duration before =
      bed.time->clock(2).local_now() - bed.time->clock(0).local_now();
  bed.sim.run_until(6 * sim::kSecond);
  const sim::Duration after =
      bed.time->clock(2).local_now() - bed.time->clock(0).local_now();
  // The relative offset jumps by the step (drift over 2 s is microseconds).
  EXPECT_NEAR(sim::to_seconds(after - before), 0.250, 0.005);
  EXPECT_EQ(inj.injected(FaultKind::kClockStep), 1u);
}

TEST(FaultInjectorTest, UnappliableEventsAreCountedAsSkipped) {
  TestBed bed(two_cluster_opts());
  // No store hook: disk events cannot be applied.
  FaultInjector inj(bed.sim,
                    FaultInjector::Hooks{&bed.fabric, nullptr,
                                         bed.time.get(), {}, {}},
                    &bed.metrics);
  inj.arm(FaultPlan::parse_script(
      "5 diskslow 4 10; 6 crash 99; 7 crash 1 30; 8 crash 1 30"));

  bed.sim.run_until(20 * sim::kSecond);
  // diskslow (no hook), crash 99 (bad id), second crash 1 (already dead).
  EXPECT_EQ(inj.skipped_total(), 3u);
  EXPECT_EQ(inj.injected_total(), 1u);
  EXPECT_TRUE(bed.fabric.node(1).failed());
  EXPECT_EQ(bed.metrics.counter_value("fault.skipped"), 3u);
}

TEST(FaultInjectorTest, InjectionSequenceIsDeterministicUnderASeed) {
  const auto run = [](std::uint64_t seed) {
    TestBed bed(two_cluster_opts());
    FaultPlan plan;
    plan.sample(full_spec(), 8, 2, sim::Rng(seed));
    FaultInjector inj(bed.sim, hooks_for(bed), &bed.metrics);
    inj.arm(plan);
    bed.sim.run_until(700 * sim::kSecond);
    return std::make_tuple(inj.injected_total(), inj.lifted_total(),
                           inj.skipped_total());
  };
  EXPECT_EQ(run(31), run(31));
}

}  // namespace
}  // namespace dvc
