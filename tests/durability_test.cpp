#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "app/workload.hpp"
#include "ckpt/lsc.hpp"
#include "core/dvc_manager.hpp"
#include "testbed.hpp"

namespace dvc {
namespace {

using test::TestBed;
using test::TestBedOptions;

app::WorkloadSpec steady_job(app::RankId ranks, std::uint32_t iters) {
  app::WorkloadSpec s;
  s.name = "durability-test";
  s.ranks = ranks;
  s.iterations = iters;
  s.flops_per_rank_iter = 1e9;  // ~0.1 s of compute per iteration
  s.pattern = app::Pattern::kAllToAll;
  s.bytes_per_msg = 4096;
  return s;
}

/// A VC + application + auto-recovery stack, optionally with checkpoint
/// replication, for exercising the durability layer end to end: damage is
/// planted in the image store and recovery must either mask it (replicas),
/// walk back a generation (fallback), or diagnose the loss (kFailed).
struct DurabilityStack {
  DurabilityStack(std::uint32_t nodes, std::uint32_t vc_size,
                  std::uint32_t iters,
                  core::DvcManager::RecoveryPolicy base_policy,
                  std::uint32_t store_replicas = 0, std::uint64_t seed = 26)
      : bed(make_options(nodes, seed, store_replicas)),
        lsc(bed.sim, {}, sim::Rng(seed ^ 0x15C)) {
    lsc.set_metrics(&bed.metrics);
    core::VcSpec spec;
    spec.name = "dur-vc";
    spec.size = vc_size;
    spec.guest.ram_bytes = 128ull << 20;
    vc = &bed.dvc->create_vc(spec, *bed.dvc->pick_nodes(vc_size), {});
    bed.sim.run_until(20 * sim::kSecond);  // boot completes at 15 s
    application = std::make_unique<app::ParallelApp>(
        bed.sim, bed.fabric.network(), vc->contexts(),
        steady_job(vc_size, iters));
    bed.dvc->attach_app(*vc, *application);
    application->start();
    base_policy.coordinator = &lsc;
    bed.dvc->enable_auto_recovery(*vc, base_policy);
  }

  static TestBedOptions make_options(std::uint32_t nodes, std::uint64_t seed,
                                     std::uint32_t store_replicas) {
    TestBedOptions o;
    o.clusters = 1;
    o.nodes_per_cluster = nodes;
    o.seed = seed;
    o.store.write_bps = 200e6;
    o.store.read_bps = 400e6;
    o.store_replicas = store_replicas;
    o.hv.abort_saves_on_failure = true;
    return o;
  }

  /// Flips the stored digest of every *primary* object a generation's
  /// restore chain would read. Replica copies are left intact.
  std::size_t corrupt_generation(const core::VcGeneration& gen) {
    std::size_t corrupted = 0;
    for (const storage::CheckpointSetId sid : gen.chain) {
      const storage::CheckpointSet* s = bed.images.find_set(sid);
      if (s == nullptr) continue;
      for (const auto& m : s->members) {
        if (bed.store.corrupt_object(m.object)) ++corrupted;
      }
    }
    return corrupted;
  }

  TestBed bed;
  ckpt::NtpLscCoordinator lsc;
  core::VirtualCluster* vc = nullptr;
  std::unique_ptr<app::ParallelApp> application;
};

// ---------------------------------------------------------------------------
// Bit rot hits every image of the newest checkpoint generation. The restore
// detects it (digest verification), marks the set damaged, and falls back to
// the previous verified generation — the job re-runs a little more work but
// still completes every iteration.

TEST(DurabilityTest, CorruptNewestGenerationFallsBackAndCompletes) {
  core::DvcManager::RecoveryPolicy policy;
  policy.interval = 20 * sim::kSecond;
  policy.watchdog_interval = 7 * sim::kSecond;
  policy.keep_checkpoints = 2;
  DurabilityStack s(/*nodes=*/8, /*vc=*/6, /*iters=*/600, policy);

  bool armed = false;
  s.bed.sim.schedule_after(72 * sim::kSecond, [&] {
    // Two periodic rounds (at ~40 s and ~60 s) have sealed by now.
    ASSERT_GE(s.vc->generations().size(), 2u);
    EXPECT_GT(s.corrupt_generation(s.vc->generations().back()), 0u);
    armed = true;
    s.vc->machine(3).kill();  // watchdog-visible failure forces a restore
  });

  s.bed.sim.run_until(500 * sim::kSecond);
  ASSERT_TRUE(armed);
  EXPECT_GE(s.bed.dvc->restore_fallbacks(), 1u);
  EXPECT_GE(s.bed.metrics.counter_value("core.dvc.restore_fallbacks"), 1u);
  EXPECT_GT(s.bed.metrics.counter_value("storage.store.verify_failures"),
            0u);
  EXPECT_GT(s.bed.metrics.counter_value("storage.images.sets_damaged"), 0u);
  // The older generation carried the job home.
  EXPECT_TRUE(s.application->completed());
  EXPECT_FALSE(s.application->failed());
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(s.application->rank(i).state().iter, 600u);
  }
}

// ---------------------------------------------------------------------------
// Same damage, but the checkpoint writes were torn mid-flight (the store
// died during the drain) instead of rotted at rest. The set still *sealed* —
// a torn write is silent at write time — so only restore-time verification
// can catch it.

TEST(DurabilityTest, TornNewestGenerationIsCaughtAtRestoreAndFallsBack) {
  core::DvcManager::RecoveryPolicy policy;
  policy.interval = 300 * sim::kSecond;  // manual rounds only
  policy.watchdog_interval = 7 * sim::kSecond;
  policy.keep_checkpoints = 2;
  DurabilityStack s(/*nodes=*/8, /*vc=*/6, /*iters=*/600, policy);

  // Generation 1: a clean manual round at 30 s.
  s.bed.sim.schedule_at(30 * sim::kSecond, [&] {
    s.bed.dvc->checkpoint_vc(*s.vc, s.lsc, {});
  });
  // Generation 2 at 50 s, torn while its images drain: poll from 52 s until
  // the store actually has writes in flight (deterministic — the sim replays
  // identically every run).
  int torn = 0;
  auto tear = std::make_shared<std::function<void()>>();
  *tear = [&s, &torn, tear] {
    torn += static_cast<int>(s.bed.store.tear_inflight_writes());
    if (torn == 0 && s.bed.sim.now() < 65 * sim::kSecond) {
      s.bed.sim.schedule_after(sim::kSecond / 5, [tear] { (*tear)(); });
    }
  };
  s.bed.sim.schedule_at(50 * sim::kSecond, [&] {
    s.bed.dvc->checkpoint_vc(*s.vc, s.lsc, {});
  });
  s.bed.sim.schedule_at(52 * sim::kSecond, [tear] { (*tear)(); });

  bool armed = false;
  s.bed.sim.schedule_at(72 * sim::kSecond, [&] {
    ASSERT_EQ(s.vc->generations().size(), 2u);
    armed = true;
    s.vc->machine(1).kill();
  });

  s.bed.sim.run_until(500 * sim::kSecond);
  ASSERT_TRUE(armed);
  EXPECT_GT(torn, 0);  // the tear really hit in-flight checkpoint writes
  EXPECT_GT(s.bed.metrics.counter_value("storage.store.torn_writes"), 0u);
  EXPECT_GE(s.bed.dvc->restore_fallbacks(), 1u);
  EXPECT_TRUE(s.application->completed());
  EXPECT_FALSE(s.application->failed());
}

// ---------------------------------------------------------------------------
// With k >= 2 replication, losing one store's copy of the newest generation
// is masked entirely: restore fails over to the replica, no generation is
// sacrificed, and the job loses nothing beyond the normal rollback.

TEST(DurabilityTest, ReplicationMasksPrimaryCorruptionWithZeroFallbacks) {
  core::DvcManager::RecoveryPolicy policy;
  policy.interval = 20 * sim::kSecond;
  policy.watchdog_interval = 7 * sim::kSecond;
  policy.keep_checkpoints = 2;
  DurabilityStack s(/*nodes=*/8, /*vc=*/6, /*iters=*/600, policy,
                    /*store_replicas=*/1);

  bool armed = false;
  s.bed.sim.schedule_after(72 * sim::kSecond, [&] {
    ASSERT_GE(s.vc->generations().size(), 2u);
    EXPECT_GT(s.corrupt_generation(s.vc->generations().back()), 0u);
    armed = true;
    s.vc->machine(3).kill();
  });

  s.bed.sim.run_until(500 * sim::kSecond);
  ASSERT_TRUE(armed);
  EXPECT_GT(s.bed.metrics.counter_value("storage.replica.failovers"), 0u);
  EXPECT_EQ(s.bed.dvc->restore_fallbacks(), 0u);  // damage fully masked
  EXPECT_EQ(s.bed.metrics.counter_value("storage.images.sets_damaged"), 0u);
  EXPECT_TRUE(s.application->completed());
  EXPECT_FALSE(s.application->failed());
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(s.application->rank(i).state().iter, 600u);
  }
}

// ---------------------------------------------------------------------------
// Every retained generation is damaged: recovery walks the whole history,
// finds nothing restorable, and abandons with a diagnosis — VC in kFailed,
// application marked failed — instead of wedging in an endless retry loop.

TEST(DurabilityTest, AbandonsWithDiagnosisWhenEveryGenerationIsDamaged) {
  core::DvcManager::RecoveryPolicy policy;
  policy.interval = 20 * sim::kSecond;
  policy.watchdog_interval = 7 * sim::kSecond;
  policy.keep_checkpoints = 2;
  // Far more iterations than the run window: the job cannot complete, so
  // the only acceptable outcome is an explicit failure diagnosis.
  DurabilityStack s(/*nodes=*/8, /*vc=*/4, /*iters=*/50000, policy);

  bool armed = false;
  s.bed.sim.schedule_after(72 * sim::kSecond, [&] {
    ASSERT_GE(s.vc->generations().size(), 2u);
    for (const auto& gen : s.vc->generations()) {
      EXPECT_GT(s.corrupt_generation(gen), 0u);
    }
    armed = true;
    s.vc->machine(1).kill();
  });

  s.bed.sim.run_until(400 * sim::kSecond);
  ASSERT_TRUE(armed);
  EXPECT_GE(s.bed.dvc->recoveries_abandoned(), 1u);
  EXPECT_GE(s.bed.metrics.counter_value("core.dvc.recoveries_abandoned"),
            1u);
  EXPECT_EQ(s.vc->state(), core::VcState::kFailed);
  EXPECT_TRUE(s.application->failed());
  EXPECT_FALSE(s.application->completed());
}

}  // namespace
}  // namespace dvc
