#pragma once

#include "core/machine_room.hpp"

namespace dvc::test {

/// Tests use the library's own MachineRoom facility under its older
/// test-local name.
using TestBed = core::MachineRoom;
using TestBedOptions = core::MachineRoomOptions;

}  // namespace dvc::test
