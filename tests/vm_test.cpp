#include <gtest/gtest.h>

#include <any>
#include <string>
#include <vector>

#include "hw/cluster.hpp"
#include "sim/simulation.hpp"
#include "storage/image_manager.hpp"
#include "storage/shared_store.hpp"
#include "vm/hypervisor.hpp"
#include "vm/native_context.hpp"
#include "vm/virtual_machine.hpp"

namespace dvc::vm {
namespace {

struct VmFixture {
  VmFixture() {
    fabric.add_cluster("a", 2);
    cfg.ram_bytes = 1 << 20;  // tiny guest: fast saves in tests
  }

  sim::Simulation sim;
  hw::Fabric fabric{sim, {}};
  GuestConfig cfg;
};

/// Guest software double that counts lifecycle callbacks.
class FakeGuest final : public GuestSoftware {
 public:
  int snapshots = 0;
  int restores = 0;
  int kills = 0;
  std::string last_restored;

  [[nodiscard]] std::any snapshot_state() const override {
    ++const_cast<FakeGuest*>(this)->snapshots;
    return std::string("state@") + std::to_string(snapshots);
  }
  void restore_state(const std::any& state) override {
    ++restores;
    last_restored = std::any_cast<std::string>(state);
  }
  void on_killed() override { ++kills; }
};

TEST(VirtualMachineTest, CreatedFrozenWithDarkNic) {
  VmFixture f;
  VirtualMachine vm(f.sim, f.fabric.network(), 1, f.cfg);
  EXPECT_EQ(vm.state(), DomainState::kPaused);
  EXPECT_FALSE(f.fabric.network().host_up(vm.host()));
  vm.place_on(f.fabric.node(0));
  vm.resume();
  EXPECT_TRUE(vm.running());
  EXPECT_TRUE(f.fabric.network().host_up(vm.host()));
}

TEST(VirtualMachineTest, PlacementAppliesParavirtTax) {
  VmFixture f;
  VirtualMachine vm(f.sim, f.fabric.network(), 1, f.cfg);
  vm.place_on(f.fabric.node(0));
  const double raw = f.fabric.node(0).spec().flops;
  EXPECT_DOUBLE_EQ(vm.flops(), raw * 0.97);  // default 3% overhead
}

TEST(VirtualMachineTest, GuestTimerFiresAfterDelay) {
  VmFixture f;
  VirtualMachine vm(f.sim, f.fabric.network(), 1, f.cfg);
  vm.place_on(f.fabric.node(0));
  vm.resume();
  sim::Time fired = 0;
  vm.schedule(sim::kSecond, [&] { fired = f.sim.now(); });
  f.sim.run();
  EXPECT_EQ(fired, sim::kSecond);
}

TEST(VirtualMachineTest, PauseStretchesGuestTimerByPauseLength) {
  VmFixture f;
  VirtualMachine vm(f.sim, f.fabric.network(), 1, f.cfg);
  vm.place_on(f.fabric.node(0));
  vm.resume();
  sim::Time fired = 0;
  vm.schedule(10 * sim::kSecond, [&] { fired = f.sim.now(); });
  // Freeze from t=4 s to t=9 s: the timer had 6 s to go, so it fires at
  // 9 + 6 = 15 s of true time (10 s of guest progress).
  f.sim.schedule_at(4 * sim::kSecond, [&] { vm.pause(); });
  f.sim.schedule_at(9 * sim::kSecond, [&] { vm.resume(); });
  f.sim.run();
  EXPECT_EQ(fired, 15 * sim::kSecond);
  EXPECT_EQ(vm.total_frozen(), 5 * sim::kSecond);
}

TEST(VirtualMachineTest, TimerScheduledWhilePausedWaitsForResume) {
  VmFixture f;
  VirtualMachine vm(f.sim, f.fabric.network(), 1, f.cfg);
  vm.place_on(f.fabric.node(0));
  // Not yet resumed: scheduled work must not run while frozen.
  sim::Time fired = 0;
  vm.schedule(sim::kSecond, [&] { fired = f.sim.now(); });
  f.sim.schedule_at(5 * sim::kSecond, [&] { vm.resume(); });
  f.sim.run();
  EXPECT_EQ(fired, 6 * sim::kSecond);
}

TEST(VirtualMachineTest, CancelAndRemaining) {
  VmFixture f;
  VirtualMachine vm(f.sim, f.fabric.network(), 1, f.cfg);
  vm.place_on(f.fabric.node(0));
  vm.resume();
  bool fired = false;
  const GuestTimerId id = vm.schedule(10 * sim::kSecond, [&] { fired = true; });
  f.sim.run_until(4 * sim::kSecond);
  EXPECT_EQ(vm.remaining(id), 6 * sim::kSecond);
  EXPECT_TRUE(vm.cancel(id));
  EXPECT_FALSE(vm.cancel(id));
  EXPECT_EQ(vm.remaining(id), 0);
  f.sim.run();
  EXPECT_FALSE(fired);
}

TEST(VirtualMachineTest, RemainingIsFrozenDuringPause) {
  VmFixture f;
  VirtualMachine vm(f.sim, f.fabric.network(), 1, f.cfg);
  vm.place_on(f.fabric.node(0));
  vm.resume();
  const GuestTimerId id = vm.schedule(10 * sim::kSecond, [] {});
  f.sim.run_until(3 * sim::kSecond);
  vm.pause();
  f.sim.run_until(20 * sim::kSecond);
  EXPECT_EQ(vm.remaining(id), 7 * sim::kSecond);
}

TEST(VirtualMachineTest, NonVirtualizedWallClockJumpsAcrossPause) {
  VmFixture f;
  VirtualMachine vm(f.sim, f.fabric.network(), 1, f.cfg);
  vm.place_on(f.fabric.node(0));
  vm.resume();
  const sim::Time t0 = vm.wall_now();
  f.sim.run_until(2 * sim::kSecond);
  vm.pause();
  f.sim.run_until(60 * sim::kSecond);
  vm.resume();
  // The guest's clock re-syncs to host time: the 58 s gap is visible.
  EXPECT_EQ(vm.wall_now() - t0, 60 * sim::kSecond);
}

TEST(VirtualMachineTest, VirtualizedWallClockHidesPause) {
  VmFixture f;
  f.cfg.virtualize_time = true;
  VirtualMachine vm(f.sim, f.fabric.network(), 1, f.cfg);
  vm.place_on(f.fabric.node(0));
  vm.resume();
  const sim::Time t0 = vm.wall_now();
  f.sim.run_until(2 * sim::kSecond);
  vm.pause();
  f.sim.run_until(60 * sim::kSecond);
  vm.resume();
  EXPECT_EQ(vm.wall_now() - t0, 2 * sim::kSecond);
}

TEST(VirtualMachineTest, WatchdogTripsOnlyOnLongGaps) {
  VmFixture f;
  f.cfg.watchdog_period = 10 * sim::kSecond;
  VirtualMachine vm(f.sim, f.fabric.network(), 1, f.cfg);
  vm.place_on(f.fabric.node(0));
  vm.resume();
  // Short pause: no timeout.
  f.sim.run_until(sim::kSecond);
  vm.pause();
  f.sim.run_until(2 * sim::kSecond);
  vm.resume();
  EXPECT_EQ(vm.watchdog_timeouts(), 0u);
  // Long pause: one timeout, with kernel log messages.
  vm.pause();
  f.sim.run_until(60 * sim::kSecond);
  vm.resume();
  EXPECT_EQ(vm.watchdog_timeouts(), 1u);
  EXPECT_FALSE(vm.kernel_log().empty());
  EXPECT_TRUE(vm.running());  // execution unaffected (paper §3.2)
}

TEST(VirtualMachineTest, WatchdogCanBeDisabled) {
  VmFixture f;
  f.cfg.watchdog_enabled = false;
  VirtualMachine vm(f.sim, f.fabric.network(), 1, f.cfg);
  vm.place_on(f.fabric.node(0));
  vm.resume();
  vm.pause();
  f.sim.run_until(sim::kMinute);
  vm.resume();
  EXPECT_EQ(vm.watchdog_timeouts(), 0u);
}

TEST(VirtualMachineTest, KillDropsTimersAndNotifiesSoftware) {
  VmFixture f;
  VirtualMachine vm(f.sim, f.fabric.network(), 1, f.cfg);
  FakeGuest guest;
  vm.set_guest_software(&guest);
  vm.place_on(f.fabric.node(0));
  vm.resume();
  bool fired = false;
  vm.schedule(sim::kSecond, [&] { fired = true; });
  vm.kill();
  f.sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(vm.state(), DomainState::kDead);
  EXPECT_EQ(guest.kills, 1);
  EXPECT_FALSE(f.fabric.network().host_up(vm.host()));
  // A dead VM refuses new timers.
  EXPECT_EQ(vm.schedule(sim::kSecond, [] {}), kInvalidGuestTimer);
}

TEST(VirtualMachineTest, RollbackRestoresSoftwareState) {
  VmFixture f;
  VirtualMachine vm(f.sim, f.fabric.network(), 1, f.cfg);
  FakeGuest guest;
  vm.set_guest_software(&guest);
  vm.place_on(f.fabric.node(0));
  vm.resume();
  vm.kill();
  f.sim.run_until(sim::kMinute);
  vm.rollback_and_resume(std::any(std::string("ckpt-7")));
  EXPECT_TRUE(vm.running());
  EXPECT_EQ(guest.restores, 1);
  EXPECT_EQ(guest.last_restored, "ckpt-7");
  EXPECT_GE(vm.watchdog_timeouts(), 1u);  // restore gap trips the watchdog
}

TEST(VirtualMachineTest, DirtyTrackingCountsOnlyRunningTime) {
  VmFixture f;
  f.cfg.ram_bytes = 1ull << 30;
  f.cfg.dirty_rate_bps = 10e6;
  VirtualMachine vm(f.sim, f.fabric.network(), 1, f.cfg);
  vm.place_on(f.fabric.node(0));
  vm.resume();
  // Before any image exists, "dirty" is the whole guest.
  EXPECT_EQ(vm.dirty_bytes_since_last_image(), f.cfg.ram_bytes);
  EXPECT_FALSE(vm.has_image_baseline());
  vm.mark_imaged();
  EXPECT_TRUE(vm.has_image_baseline());
  EXPECT_EQ(vm.dirty_bytes_since_last_image(), 0u);
  // 10 s of running at 10 MB/s = 100 MB dirty.
  f.sim.run_until(10 * sim::kSecond);
  EXPECT_NEAR(static_cast<double>(vm.dirty_bytes_since_last_image()),
              100e6, 1e6);
  // A 60 s freeze dirties nothing.
  vm.pause();
  f.sim.run_until(70 * sim::kSecond);
  vm.resume();
  EXPECT_NEAR(static_cast<double>(vm.dirty_bytes_since_last_image()),
              100e6, 1e6);
  // Dirty volume is clamped at guest RAM.
  f.sim.run_until(70 * sim::kSecond + 300 * sim::kSecond);
  EXPECT_EQ(vm.dirty_bytes_since_last_image(), f.cfg.ram_bytes);
}

// ---------------------------------------------------------------------------
// Hypervisor

struct HvFixture : VmFixture {
  HvFixture()
      : store(sim, {}),
        images(store),
        fleet(sim, fabric, {}, sim::Rng(5)) {}

  storage::SharedStore store;
  storage::ImageManager images;
  HypervisorFleet fleet;
};

TEST(HypervisorTest, BootTakesConfiguredTime) {
  HvFixture f;
  VirtualMachine vm(f.sim, f.fabric.network(), 1, f.cfg);
  bool booted = false;
  f.fleet.on_node(0).boot_domain(vm, [&] { booted = true; });
  f.sim.run();
  EXPECT_TRUE(booted);
  EXPECT_TRUE(vm.running());
  EXPECT_EQ(vm.placed_on(), 0u);
  EXPECT_EQ(f.sim.now(), Hypervisor::Config{}.boot_time);
}

TEST(HypervisorTest, SaveCapturesSnapshotAndSealsImage) {
  HvFixture f;
  VirtualMachine vm(f.sim, f.fabric.network(), 1, f.cfg);
  FakeGuest guest;
  vm.set_guest_software(&guest);
  f.fleet.on_node(0).boot_domain(vm, {});
  f.sim.run();

  const auto set = f.images.open_set("t", 1);
  bool ok = false;
  std::any snap;
  f.fleet.on_node(0).save_domain(vm, f.images, set, 0,
                                 [&](bool r, std::any s) {
                                   ok = r;
                                   snap = std::move(s);
                                 });
  f.sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(guest.snapshots, 1);
  EXPECT_EQ(std::any_cast<std::string>(snap), "state@1");
  EXPECT_EQ(vm.state(), DomainState::kSaved);
  ASSERT_NE(f.images.find_set(set), nullptr);
  EXPECT_TRUE(f.images.find_set(set)->sealed);
  EXPECT_EQ(f.images.find_set(set)->total_bytes(), f.cfg.ram_bytes);
  EXPECT_EQ(f.fleet.on_node(0).saves_completed(), 1u);

  f.fleet.on_node(0).resume_domain(vm);
  EXPECT_TRUE(vm.running());
}

TEST(HypervisorTest, SaveOfDeadDomainReportsFailure) {
  HvFixture f;
  VirtualMachine vm(f.sim, f.fabric.network(), 1, f.cfg);
  f.fleet.on_node(0).boot_domain(vm, {});
  f.sim.run();
  vm.kill();
  const auto set = f.images.open_set("t", 1);
  bool ok = true;
  f.fleet.on_node(0).save_domain(vm, f.images, set, 0,
                                 [&](bool r, std::any) { ok = r; });
  f.sim.run();
  EXPECT_FALSE(ok);
  EXPECT_FALSE(f.images.find_set(set)->sealed);
}

TEST(HypervisorTest, NodeFailureKillsResidentDomains) {
  HvFixture f;
  VirtualMachine vm1(f.sim, f.fabric.network(), 1, f.cfg);
  VirtualMachine vm2(f.sim, f.fabric.network(), 2, f.cfg);
  f.fleet.on_node(0).boot_domain(vm1, {});
  f.fleet.on_node(0).boot_domain(vm2, {});
  f.sim.run();
  EXPECT_EQ(f.fleet.on_node(0).resident_count(), 2u);
  f.fabric.fail_node(0);
  EXPECT_EQ(vm1.state(), DomainState::kDead);
  EXPECT_EQ(vm2.state(), DomainState::kDead);
  EXPECT_EQ(f.fleet.on_node(0).resident_count(), 0u);
}

TEST(HypervisorTest, RestoreMovesDomainToNewNode) {
  HvFixture f;
  VirtualMachine vm(f.sim, f.fabric.network(), 1, f.cfg);
  FakeGuest guest;
  vm.set_guest_software(&guest);
  f.fleet.on_node(0).boot_domain(vm, {});
  f.sim.run();

  const auto set = f.images.open_set("t", 1);
  std::any snap;
  f.fleet.on_node(0).save_domain(vm, f.images, set, 0,
                                 [&](bool, std::any s) { snap = std::move(s); });
  f.sim.run();

  // The original node dies; the saved domain is adopted by node 1.
  f.fabric.fail_node(0);
  EXPECT_EQ(vm.state(), DomainState::kDead);
  bool restored = false;
  f.fleet.on_node(1).restore_domain(vm, f.images, set, 0, snap,
                                    [&](bool ok) { restored = ok; });
  f.sim.run();
  EXPECT_TRUE(restored);
  EXPECT_TRUE(vm.running());
  EXPECT_EQ(vm.placed_on(), 1u);
  EXPECT_EQ(guest.restores, 1);
  EXPECT_EQ(f.fleet.on_node(1).restores_completed(), 1u);
  // The VM keeps its fabric identity across the move.
  EXPECT_TRUE(f.fabric.network().host_up(vm.host()));
}

TEST(HypervisorTest, RestoreFromUnsealedSetFails) {
  HvFixture f;
  VirtualMachine vm(f.sim, f.fabric.network(), 1, f.cfg);
  const auto set = f.images.open_set("t", 2);  // will never seal
  f.images.add_member(set, 0, 100);
  f.sim.run();
  bool ok = true;
  f.fleet.on_node(1).restore_domain(vm, f.images, set, 0, {},
                                    [&](bool r) { ok = r; });
  f.sim.run();
  EXPECT_FALSE(ok);
}

TEST(HypervisorTest, EvictRejectsRunningDomain) {
  HvFixture f;
  VirtualMachine vm(f.sim, f.fabric.network(), 1, f.cfg);
  f.fleet.on_node(0).boot_domain(vm, {});
  f.sim.run();
  EXPECT_THROW(f.fleet.on_node(0).evict(vm), std::logic_error);
  vm.pause();
  EXPECT_NO_THROW(f.fleet.on_node(0).evict(vm));
  EXPECT_EQ(f.fleet.on_node(0).resident_count(), 0u);
}

TEST(NativeContextTest, RunsAtFullNodeSpeedAndTracksFailure) {
  VmFixture f;
  NativeContext ctx(f.sim, f.fabric, 0);
  EXPECT_DOUBLE_EQ(ctx.flops(), f.fabric.node(0).spec().flops);
  EXPECT_TRUE(ctx.running());
  sim::Time fired = 0;
  const GuestTimerId id = ctx.schedule(sim::kSecond, [&] { fired = f.sim.now(); });
  EXPECT_GT(ctx.remaining(id), 0);
  f.sim.run();
  EXPECT_EQ(fired, sim::kSecond);
  f.fabric.fail_node(0);
  EXPECT_FALSE(ctx.running());
}

TEST(NativeContextTest, CancelWorks) {
  VmFixture f;
  NativeContext ctx(f.sim, f.fabric, 0);
  bool fired = false;
  const GuestTimerId id = ctx.schedule(sim::kSecond, [&] { fired = true; });
  EXPECT_TRUE(ctx.cancel(id));
  f.sim.run();
  EXPECT_FALSE(fired);
}

}  // namespace
}  // namespace dvc::vm
