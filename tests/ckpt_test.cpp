#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/workload.hpp"
#include "ckpt/cocheck.hpp"
#include "ckpt/interval.hpp"
#include "ckpt/ledger.hpp"
#include "ckpt/lsc.hpp"
#include "ckpt/methods.hpp"
#include "testbed.hpp"

namespace dvc::ckpt {
namespace {

using test::TestBed;

// ---------------------------------------------------------------------------
// Method models (paper §2 taxonomy)

TEST(MethodsTest, FootprintOrderingMatchesTaxonomy) {
  const app::WorkloadSpec hpl = app::make_hpl(8192, 1);
  vm::GuestConfig guest;
  guest.ram_bytes = 2ull << 30;
  const auto app_fp = footprint(MethodKind::kApplication, hpl, guest);
  const auto usr_fp = footprint(MethodKind::kUserLevel, hpl, guest);
  const auto krn_fp = footprint(MethodKind::kKernelLevel, hpl, guest);
  const auto vm_fp = footprint(MethodKind::kVmLevel, hpl, guest);
  EXPECT_LT(app_fp.bytes, usr_fp.bytes);
  EXPECT_LT(usr_fp.bytes, krn_fp.bytes);
  EXPECT_LT(krn_fp.bytes, vm_fp.bytes);
  EXPECT_EQ(vm_fp.bytes, guest.ram_bytes);
}

TEST(MethodsTest, ApplicabilityRules) {
  vm::GuestConfig guest;
  const app::WorkloadSpec hpl = app::make_hpl(4096, 8);      // has app ckpt
  const app::WorkloadSpec ptrans = app::make_ptrans(4096, 8);  // does not
  const app::WorkloadSpec seq = app::make_sequential(1e12);

  EXPECT_TRUE(footprint(MethodKind::kApplication, hpl, guest).applicable);
  EXPECT_FALSE(
      footprint(MethodKind::kApplication, ptrans, guest).applicable);
  // User/kernel level cannot cut parallel network state (§2.1).
  EXPECT_FALSE(footprint(MethodKind::kUserLevel, hpl, guest).applicable);
  EXPECT_TRUE(footprint(MethodKind::kUserLevel, seq, guest).applicable);
  EXPECT_FALSE(footprint(MethodKind::kKernelLevel, ptrans, guest).applicable);
  // VM level is always applicable — DVC's whole point.
  EXPECT_TRUE(footprint(MethodKind::kVmLevel, hpl, guest).applicable);
  EXPECT_TRUE(footprint(MethodKind::kVmLevel, ptrans, guest).applicable);
}

TEST(MethodsTest, ProfilesMatchPaperDiscussion) {
  EXPECT_TRUE(profile(MethodKind::kApplication).requires_app_code);
  EXPECT_FALSE(profile(MethodKind::kApplication).transparent_to_app);
  EXPECT_TRUE(profile(MethodKind::kUserLevel).requires_relink);
  EXPECT_TRUE(profile(MethodKind::kKernelLevel).transparent_to_app);
  const MethodProfile dvc_vm = profile(MethodKind::kVmLevel);
  EXPECT_TRUE(dvc_vm.transparent_to_app);
  EXPECT_FALSE(dvc_vm.requires_relink);
  EXPECT_TRUE(dvc_vm.handles_parallel);
  EXPECT_TRUE(dvc_vm.saves_kernel_state);
}

TEST(MethodsTest, EstimateTimeScalesWithBytes) {
  Footprint f{1'000'000'000, true};
  EXPECT_NEAR(sim::to_seconds(estimate_time(f, 1e8)), 10.0, 1e-6);
  Footprint na{1'000'000'000, false};
  EXPECT_EQ(estimate_time(na, 1e8), 0);
}

// ---------------------------------------------------------------------------
// Checkpoint-interval theory

TEST(IntervalTest, YoungMatchesClosedForm) {
  // sqrt(2 * 8 * 900) = 120 s.
  EXPECT_NEAR(sim::to_seconds(young_interval(sim::from_seconds(8.0),
                                             sim::from_seconds(900.0))),
              120.0, 0.01);
  EXPECT_EQ(young_interval(0, sim::kSecond), 0);
  EXPECT_EQ(young_interval(sim::kSecond, 0), 0);
}

TEST(IntervalTest, DalyRefinesYoungDownward) {
  const auto c = sim::from_seconds(8.0);
  const auto m = sim::from_seconds(900.0);
  // Daly subtracts ~C from Young's estimate at small C/M.
  EXPECT_LT(daly_interval(c, m), young_interval(c, m));
  EXPECT_GT(daly_interval(c, m), young_interval(c, m) - 2 * c);
  // Degenerate regime: checkpointing costs more than the MTBF.
  EXPECT_EQ(daly_interval(sim::from_seconds(100.0), sim::from_seconds(40.0)),
            sim::from_seconds(40.0));
}

TEST(IntervalTest, ExpectedRuntimeIsConvexInInterval) {
  // U-shape: too-frequent and too-rare checkpointing both cost more than
  // the optimum region.
  const double work = 2000.0, c = 8.0, r = 10.0, mtbf = 750.0;
  const double at_opt = expected_runtime_s(work, c, r, mtbf, 110.0);
  EXPECT_LT(at_opt, expected_runtime_s(work, c, r, mtbf, 10.0));
  EXPECT_LT(at_opt, expected_runtime_s(work, c, r, mtbf, 2000.0));
  // No failures, no checkpoints: the work is the runtime.
  EXPECT_DOUBLE_EQ(expected_runtime_s(work, c, r, 0.0, 100.0), work);
}

// ---------------------------------------------------------------------------
// Message ledger

TEST(LedgerTest, ConsistentStream) {
  MessageLedger l;
  for (int i = 1; i <= 5; ++i) {
    l.record_send(0, 1, i);
    l.record_delivery(0, 1, i);
  }
  EXPECT_TRUE(l.check().consistent);
  EXPECT_EQ(l.total_sent(), 5u);
  EXPECT_EQ(l.total_delivered(), 5u);
}

TEST(LedgerTest, DetectsLoss) {
  MessageLedger l;
  l.record_send(0, 1, 1);
  l.record_send(0, 1, 2);
  l.record_delivery(0, 1, 1);
  EXPECT_FALSE(l.check().consistent);
  EXPECT_TRUE(l.check(/*allow_in_flight=*/true).consistent);
}

TEST(LedgerTest, DetectsDuplicateAndReorder) {
  MessageLedger dup;
  dup.record_send(0, 1, 1);
  dup.record_delivery(0, 1, 1);
  dup.record_delivery(0, 1, 1);
  EXPECT_FALSE(dup.check(true).consistent);

  MessageLedger ooo;
  ooo.record_send(2, 3, 1);
  ooo.record_send(2, 3, 2);
  ooo.record_delivery(2, 3, 2);
  ooo.record_delivery(2, 3, 1);
  EXPECT_FALSE(ooo.check().consistent);

  MessageLedger phantom;
  phantom.record_delivery(4, 5, 9);
  EXPECT_FALSE(phantom.check(true).consistent);
}

TEST(LedgerTest, RollbackReexecutionIsNotDuplicateDelivery) {
  // A VC restored from an *older* checkpoint generation re-executes work
  // recorded after that cut: the same message ids are sent and delivered
  // again. With the rollback noted, the ledger collapses the re-execution
  // onto the first occurrence instead of flagging duplicates.
  MessageLedger l;
  for (int i = 1; i <= 4; ++i) {
    l.record_send(0, 1, i);
    l.record_delivery(0, 1, i);
  }
  l.note_rollback();  // cut taken after message 2; work 3..4 re-runs
  for (int i = 3; i <= 6; ++i) {
    l.record_send(0, 1, i);
    l.record_delivery(0, 1, i);
  }
  EXPECT_TRUE(l.check().consistent);
  EXPECT_EQ(l.epoch(), 1u);
  // Raw totals still count every event; collapse happens only in check().
  EXPECT_EQ(l.total_sent(), 8u);
  EXPECT_EQ(l.total_delivered(), 8u);
}

TEST(LedgerTest, TwoFallbacksDeepReexecutionStaysConsistent) {
  // Generation fallback can roll back twice (newest generation damaged,
  // walk to the one before): ids may repeat once per epoch.
  MessageLedger l;
  l.record_send(0, 1, 1);
  l.record_delivery(0, 1, 1);
  l.note_rollback();
  l.record_send(0, 1, 1);
  l.record_delivery(0, 1, 1);
  l.note_rollback();
  l.record_send(0, 1, 1);
  l.record_send(0, 1, 2);
  l.record_delivery(0, 1, 1);
  l.record_delivery(0, 1, 2);
  EXPECT_TRUE(l.check().consistent);
  EXPECT_EQ(l.epoch(), 2u);
}

TEST(LedgerTest, DuplicateWithinAnEpochStillFails) {
  // note_rollback() is not an amnesty: a genuine duplicate delivery inside
  // the re-execution epoch is still a consistency violation.
  MessageLedger l;
  l.record_send(0, 1, 1);
  l.record_delivery(0, 1, 1);
  l.note_rollback();
  l.record_send(0, 1, 1);
  l.record_delivery(0, 1, 1);
  l.record_delivery(0, 1, 1);  // delivered twice in epoch 1
  EXPECT_FALSE(l.check(true).consistent);
}

// ---------------------------------------------------------------------------
// Coordinated checkpointing end-to-end

/// A communication-steady PTRANS-like load: ~10 iterations per second so
/// every rank always has traffic in flight against every peer.
app::WorkloadSpec steady_ptrans(app::RankId ranks, std::uint32_t iters) {
  app::WorkloadSpec s;
  s.name = "steady-ptrans";
  s.ranks = ranks;
  s.iterations = iters;
  s.flops_per_rank_iter = 1e9;  // ~0.1 s of compute per iteration
  s.pattern = app::Pattern::kAllToAll;
  s.bytes_per_msg = 4096;
  s.working_set_bytes_per_rank = 64ull << 20;
  return s;
}

struct LscFixture {
  explicit LscFixture(std::uint32_t nodes, std::uint64_t guest_ram,
                      net::ReliableConfig transport = {},
                      std::uint64_t seed = 42, double store_bps = 400e6,
                      bool abort_saves_on_failure = false)
      : bed(make_options(nodes, seed, store_bps, abort_saves_on_failure)) {
    core::VcSpec spec;
    spec.name = "test-vc";
    spec.size = nodes;
    spec.guest.ram_bytes = guest_ram;
    auto placement = bed.dvc->pick_nodes(nodes);
    vc = &bed.dvc->create_vc(spec, *placement, {});
    bed.sim.run_until(20 * sim::kSecond);  // boot completes at 15 s
    application = std::make_unique<app::ParallelApp>(
        bed.sim, bed.fabric.network(), vc->contexts(),
        steady_ptrans(nodes, 3000), transport);
    bed.dvc->attach_app(*vc, *application);
    application->start();
  }

  static TestBed::Options make_options(std::uint32_t nodes,
                                       std::uint64_t seed, double store_bps,
                                       bool abort_saves_on_failure = false) {
    TestBed::Options o;
    o.nodes_per_cluster = nodes;
    o.seed = seed;
    o.store.write_bps = store_bps;
    o.store.read_bps = 2 * store_bps;
    o.hv.abort_saves_on_failure = abort_saves_on_failure;
    return o;
  }

  TestBed bed;
  core::VirtualCluster* vc = nullptr;
  std::unique_ptr<app::ParallelApp> application;
};

TEST(QuiesceTest, RanksParkAtBoundariesAndResume) {
  LscFixture f(4, 64ull << 20);
  bool all_held = false;
  f.bed.sim.schedule_after(5 * sim::kSecond, [&] {
    f.application->request_quiesce([&] { all_held = true; });
  });
  f.bed.sim.run_until(30 * sim::kSecond);
  ASSERT_TRUE(all_held);
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_TRUE(f.application->rank(r).held());
  }
  // Parked ranks make no progress...
  const auto iter_held = f.application->rank(0).state().iter;
  f.bed.sim.run_until(60 * sim::kSecond);
  EXPECT_EQ(f.application->rank(0).state().iter, iter_held);
  EXPECT_TRUE(f.application->mesh_drained());
  // ...until released.
  f.application->release_quiesce();
  f.bed.sim.run_until(90 * sim::kSecond);
  EXPECT_GT(f.application->rank(0).state().iter, iter_held);
  EXPECT_FALSE(f.application->failed());
}

TEST(CocheckTest, UserLevelCheckpointWithoutFreezingGuests) {
  LscFixture f(6, 1ull << 30);  // big guests: the VM path would be slow
  CocheckCoordinator cocheck(f.bed.sim);
  std::optional<CocheckCoordinator::Result> result;
  vm::GuestConfig guest;
  guest.ram_bytes = 1ull << 30;
  f.bed.sim.schedule_after(5 * sim::kSecond, [&] {
    cocheck.checkpoint(*f.application, guest, f.bed.images,
                       [&](CocheckCoordinator::Result r) { result = r; });
  });
  f.bed.sim.run_until(120 * sim::kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  // The quiesce costs about one application iteration (~0.1 s) + drain.
  EXPECT_LT(result->quiesce_time, 2 * sim::kSecond);
  // Process images, not guest images: far less than 6 x 1 GiB.
  EXPECT_LT(result->bytes_written, 6ull << 30);
  EXPECT_GT(result->bytes_written, 0u);
  // The guests themselves never froze.
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(f.vc->machine(i).pauses(), 0u);
  }
  // And the application keeps running afterwards.
  const auto iter_then = f.application->rank(0).state().iter;
  f.bed.sim.run_until(180 * sim::kSecond);
  EXPECT_GT(f.application->rank(0).state().iter, iter_then);
  EXPECT_FALSE(f.application->failed());
}

TEST(NtpLscTest, CheckpointIsTransparentToTheApplication) {
  LscFixture f(8, 512ull << 20);
  NtpLscCoordinator lsc(f.bed.sim, {}, sim::Rng(7));
  std::optional<LscResult> result;
  f.bed.sim.schedule_after(5 * sim::kSecond, [&] {
    f.bed.dvc->checkpoint_vc(*f.vc, lsc,
                             [&](LscResult r) { result = std::move(r); });
  });
  // 8 x 512 MiB over 400 MB/s shared ~ 10.7 s of frozen time.
  f.bed.sim.run_until(60 * sim::kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  // Skew bounded by clock error + timer jitter + local `xm save` latency:
  // tens of milliseconds, versus a >12 s transport retry budget.
  EXPECT_LT(result->pause_skew, 50 * sim::kMillisecond);
  EXPECT_GT(result->total_time, 5 * sim::kSecond);
  EXPECT_FALSE(f.application->failed());
  EXPECT_TRUE(f.vc->has_checkpoint());
  EXPECT_EQ(f.vc->last_checkpoint().app_snapshots.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(f.vc->machine(i).running());
    // The >10 s freeze trips each guest's software watchdog (§3.2).
    EXPECT_GE(f.vc->machine(i).watchdog_timeouts(), 1u);
  }
  // The application keeps making progress afterwards.
  const auto iter_then = f.application->rank(0).state().iter;
  f.bed.sim.run_until(90 * sim::kSecond);
  EXPECT_GT(f.application->rank(0).state().iter, iter_then);
  EXPECT_FALSE(f.application->failed());
}

TEST(NtpLscTest, RepeatedRoundsAllSucceed) {
  LscFixture f(6, 64ull << 20);
  NtpLscCoordinator lsc(f.bed.sim, {}, sim::Rng(11));
  int ok_rounds = 0;
  // Five back-to-back checkpoint rounds, 20 s apart.
  for (int round = 0; round < 5; ++round) {
    f.bed.sim.schedule_after((5 + 20 * round) * sim::kSecond, [&] {
      f.bed.dvc->checkpoint_vc(*f.vc, lsc, [&](LscResult r) {
        if (r.ok) ++ok_rounds;
      });
    });
  }
  f.bed.sim.run_until(150 * sim::kSecond);
  EXPECT_EQ(ok_rounds, 5);
  EXPECT_FALSE(f.application->failed());
  EXPECT_EQ(f.bed.dvc->checkpoints_taken(), 5u);
}

TEST(NtpLscTest, SaveAndHoldLeavesDomainsFrozen) {
  LscFixture f(4, 64ull << 20);
  NtpLscCoordinator lsc(f.bed.sim, {}, sim::Rng(13));
  std::optional<LscResult> result;
  f.bed.sim.schedule_after(5 * sim::kSecond, [&] {
    lsc.checkpoint("hold", f.bed.dvc->save_targets(*f.vc),
                   f.bed.images, [&](LscResult r) { result = std::move(r); },
                   /*resume_after_save=*/false);
  });
  f.bed.sim.run_until(40 * sim::kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(f.vc->machine(i).state(), vm::DomainState::kSaved);
  }
}

TEST(LscValidationTest, EmptyTargetListsAreRejected) {
  LscFixture f(2, 64ull << 20);
  NaiveLscCoordinator naive(f.bed.sim, {}, sim::Rng(1));
  NtpLscCoordinator ntp(f.bed.sim, {}, sim::Rng(1));
  EXPECT_THROW(naive.checkpoint("x", {}, f.bed.images, {}),
               std::invalid_argument);
  EXPECT_THROW(ntp.checkpoint("x", {}, f.bed.images, {}),
               std::invalid_argument);
  // The NTP coordinator also insists on a clock per target.
  std::vector<SaveTarget> no_clock = f.bed.dvc->save_targets(*f.vc);
  no_clock[0].clock = nullptr;
  EXPECT_THROW(ntp.checkpoint("x", std::move(no_clock), f.bed.images, {}),
               std::invalid_argument);
}

TEST(NaiveLscTest, SaveAndHoldAlsoWorksNaively) {
  LscFixture f(3, 64ull << 20);
  NaiveLscCoordinator lsc(f.bed.sim, {}, sim::Rng(9));
  std::optional<LscResult> result;
  f.bed.sim.schedule_after(2 * sim::kSecond, [&] {
    lsc.checkpoint("hold", f.bed.dvc->save_targets(*f.vc), f.bed.images,
                   [&](LscResult r) { result = std::move(r); },
                   /*resume_after_save=*/false);
  });
  f.bed.sim.run_until(60 * sim::kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(f.vc->machine(i).state(), vm::DomainState::kSaved);
  }
}

TEST(NaiveLscTest, SkewGrowsLinearlyWithNodeCount) {
  // The naive skew is a sum of per-terminal dispatch gaps, so its *mean*
  // grows linearly in the node count; average over seeds to see it.
  const auto mean_skew = [](std::uint32_t nodes) {
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      LscFixture f(nodes, 64ull << 20, {}, seed);
      NaiveLscCoordinator lsc(f.bed.sim, {}, sim::Rng(seed));
      sim::Duration skew = 0;
      f.bed.sim.schedule_after(5 * sim::kSecond, [&] {
        f.bed.dvc->checkpoint_vc(
            *f.vc, lsc, [&](LscResult r) { skew = r.pause_skew; });
      });
      f.bed.sim.run_until(90 * sim::kSecond);
      EXPECT_GT(skew, 0);
      total += sim::to_seconds(skew);
    }
    return total / 5.0;
  };
  const double small = mean_skew(2);
  const double large = mean_skew(8);
  EXPECT_GT(large, 3.0 * small);
  // 7 inter-dispatch gaps of >= 0.175 s each.
  EXPECT_GT(large, 1.2);
}

TEST(NaiveLscTest, SkewedSavesKillTheApplicationAtScale) {
  // Tight transport: retry budget = 0.2+0.4+0.8+1.6+3.2 (+6.4 final wait)
  // = 12.6 s. Twelve serial dispatches at ~1.4 s each push the skew well
  // past it: the still-running guests abort their connections to the
  // frozen ones — the paper's "12 nodes failing 90% of the time".
  // Paper-era substrate: 1 GiB guests against a ~100 MB/s NFS store, so
  // a save freezes its guest for minutes — far longer than the dispatch
  // skew — and the staggered saves also *finish* staggered, so resumed
  // guests exhaust their retry budget against still-frozen peers.
  net::ReliableConfig tight;
  tight.max_retries = 5;
  LscFixture f(12, 1ull << 30, tight, /*seed=*/1, /*store_bps=*/100e6);
  NaiveLscCoordinator lsc(f.bed.sim, {}, sim::Rng(1));
  std::optional<LscResult> result;
  f.bed.sim.schedule_after(5 * sim::kSecond, [&] {
    f.bed.dvc->checkpoint_vc(*f.vc, lsc,
                             [&](LscResult r) { result = std::move(r); });
  });
  f.bed.sim.run_until(400 * sim::kSecond);
  ASSERT_TRUE(result.has_value());
  // Eleven serial dispatch gaps of ~0.35 s each: seconds of pause skew,
  // amplified further on the staggered resumes.
  EXPECT_GT(result->pause_skew, sim::from_seconds(2.0));
  EXPECT_TRUE(f.application->failed());
}

TEST(NtpLscTest, LoadedHostsWithoutHealthCheckKillTheApplication) {
  net::ReliableConfig tight;
  tight.max_retries = 5;
  LscFixture f(8, 1ull << 30, tight, /*seed=*/5, /*store_bps=*/100e6);
  NtpLscCoordinator::Config cfg;
  cfg.stall_prob = 1.0;  // every agent starved (worst-case loaded hosts)
  cfg.stall_mean = 30 * sim::kSecond;
  NtpLscCoordinator lsc(f.bed.sim, cfg, sim::Rng(5));
  std::optional<LscResult> result;
  f.bed.sim.schedule_after(5 * sim::kSecond, [&] {
    f.bed.dvc->checkpoint_vc(*f.vc, lsc,
                             [&](LscResult r) { result = std::move(r); });
  });
  f.bed.sim.run_until(600 * sim::kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(f.application->failed());
}

TEST(NtpLscTest, HealthCheckAbortsCleanlyInsteadOfCrashing) {
  LscFixture f(8, 64ull << 20, {}, /*seed=*/5);
  NtpLscCoordinator::Config cfg;
  cfg.stall_prob = 1.0;
  cfg.stall_mean = 30 * sim::kSecond;
  cfg.health_check = true;
  cfg.max_attempts = 3;
  NtpLscCoordinator lsc(f.bed.sim, cfg, sim::Rng(5));
  std::optional<LscResult> result;
  f.bed.sim.schedule_after(5 * sim::kSecond, [&] {
    f.bed.dvc->checkpoint_vc(*f.vc, lsc,
                             [&](LscResult r) { result = std::move(r); });
  });
  f.bed.sim.run_until(300 * sim::kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_TRUE(result->aborted_cleanly);
  EXPECT_EQ(result->attempts, 3);
  // No guest ever froze: the application never noticed anything.
  EXPECT_FALSE(f.application->failed());
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(f.vc->machine(i).running());
  }
}

// ---------------------------------------------------------------------------
// Round-outcome split: a save rejected before its guest froze is an
// *aborted* member (nothing disturbed), a save that froze the guest and
// then died is a *failed* member (work was lost). The two must never be
// conflated — recovery treats them differently.

TEST(NtpLscTest, PreFreezeRejectionsAreAbortedMembersNotFailures) {
  LscFixture f(4, 64ull << 20);
  NtpLscCoordinator lsc(f.bed.sim, {}, sim::Rng(3));
  lsc.set_metrics(&f.bed.metrics);
  // Member 2's node dies before the round fires: its hypervisor rejects
  // the save outright, before any pause command reaches the guest.
  f.bed.sim.schedule_after(4 * sim::kSecond, [&] {
    f.bed.fabric.fail_node(f.vc->placement(2));
  });
  std::optional<LscResult> result;
  f.bed.sim.schedule_after(5 * sim::kSecond, [&] {
    lsc.checkpoint("split", f.bed.dvc->save_targets(*f.vc), f.bed.images,
                   [&](LscResult r) { result = std::move(r); });
  });
  f.bed.sim.run_until(60 * sim::kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_EQ(result->members_aborted, 1);
  EXPECT_EQ(result->members_failed, 0);
  // The healthy members did freeze, so the round is not a clean abort.
  EXPECT_FALSE(result->aborted_cleanly);
  EXPECT_EQ(f.bed.metrics.counter_value("ckpt.lsc.members_aborted"), 1u);
  EXPECT_EQ(f.bed.metrics.counter_value("ckpt.lsc.members_failed"), 0u);
}

TEST(NtpLscTest, WholeRoundRejectedPreFreezeIsACleanAbort) {
  LscFixture f(4, 64ull << 20);
  NtpLscCoordinator lsc(f.bed.sim, {}, sim::Rng(3));
  lsc.set_metrics(&f.bed.metrics);
  f.bed.sim.schedule_after(4 * sim::kSecond, [&] {
    for (std::uint32_t i = 0; i < 4; ++i) {
      f.bed.fabric.fail_node(f.vc->placement(i));
    }
  });
  std::optional<LscResult> result;
  f.bed.sim.schedule_after(5 * sim::kSecond, [&] {
    lsc.checkpoint("all-gone", f.bed.dvc->save_targets(*f.vc), f.bed.images,
                   [&](LscResult r) { result = std::move(r); });
  });
  f.bed.sim.run_until(60 * sim::kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_EQ(result->members_aborted, 4);
  EXPECT_EQ(result->members_failed, 0);
  // No guest froze at all: clean abort, no work disturbed by the round.
  EXPECT_TRUE(result->aborted_cleanly);
}

TEST(NtpLscTest, MidSaveCrashIsAFailedMemberAndSurvivorsThaw) {
  // Slow store (4 x 128 MiB at 100 MB/s ~ 5.4 s of writes) so the crash
  // lands while images are streaming; in-flight saves abort on node death.
  LscFixture f(4, 128ull << 20, {}, /*seed=*/42, /*store_bps=*/100e6,
               /*abort_saves_on_failure=*/true);
  NtpLscCoordinator lsc(f.bed.sim, {}, sim::Rng(3));
  lsc.set_metrics(&f.bed.metrics);
  std::optional<LscResult> result;
  f.bed.sim.schedule_after(5 * sim::kSecond, [&] {
    lsc.checkpoint("mid-save", f.bed.dvc->save_targets(*f.vc), f.bed.images,
                   [&](LscResult r) { result = std::move(r); });
  });
  // The NTP lead is ~2 s, so guests freeze around t=7 s; kill member 1's
  // node two seconds into the write phase.
  f.bed.sim.schedule_after(9 * sim::kSecond, [&] {
    f.bed.fabric.fail_node(f.vc->placement(1));
  });
  f.bed.sim.run_until(60 * sim::kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_EQ(result->members_failed, 1);
  EXPECT_EQ(result->members_aborted, 0);
  EXPECT_FALSE(result->aborted_cleanly);
  EXPECT_EQ(f.bed.metrics.counter_value("ckpt.lsc.members_failed"), 1u);
  // The survivors' guests were resumed after their own saves completed —
  // a failed round must not leave live guests frozen forever.
  for (std::uint32_t i : {0u, 2u, 3u}) {
    EXPECT_TRUE(f.vc->machine(i).running()) << "member " << i;
  }
  EXPECT_EQ(f.vc->machine(1).state(), vm::DomainState::kDead);
}

TEST(NtpLscTest, RoundTimeoutReportsStragglersAsLateCompletions) {
  // 4 x 128 MiB at 50 MB/s ~ 10.7 s of writes against a 6 s round budget.
  LscFixture f(4, 128ull << 20, {}, /*seed=*/42, /*store_bps=*/50e6);
  NtpLscCoordinator lsc(f.bed.sim, {}, sim::Rng(3));
  lsc.set_metrics(&f.bed.metrics);
  LscCoordinator::RetryPolicy retry;
  retry.round_timeout = 6 * sim::kSecond;
  lsc.set_retry_policy(retry);
  std::optional<LscResult> result;
  f.bed.sim.schedule_after(5 * sim::kSecond, [&] {
    lsc.checkpoint("slow", f.bed.dvc->save_targets(*f.vc), f.bed.images,
                   [&](LscResult r) { result = std::move(r); });
  });
  // The fixture has already run to 20 s; the round fires at 25 s and its
  // watchdog at 31 s, well before the ~35 s the writes need.
  f.bed.sim.run_until(32 * sim::kSecond);
  ASSERT_TRUE(result.has_value());  // the watchdog fired, not the saves
  EXPECT_FALSE(result->ok);
  EXPECT_TRUE(result->timed_out);
  EXPECT_EQ(f.bed.metrics.counter_value("ckpt.lsc.round_timeouts"), 1u);
  // The stragglers eventually finish; their completions are counted but
  // swallowed, and their guests are thawed.
  f.bed.sim.run_until(60 * sim::kSecond);
  EXPECT_GE(f.bed.metrics.counter_value("ckpt.lsc.late_completions"), 1u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(f.vc->machine(i).running()) << "member " << i;
  }
}

}  // namespace
}  // namespace dvc::ckpt
