#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/sweep.hpp"

// The sweep harness contract: grids expand deterministically, the
// aggregate's bytes are a function of the cell set alone (never of the
// worker count or scheduling), and any cell key can be replayed in
// isolation to the bit-identical outcome the aggregate recorded.

namespace dvc::tools {
namespace {

// A fast 32-cell grid: 4 mixes x 8 seeds of a small fault-free-ish job.
// The churn mix adds real fault injection so the sweep exercises the
// recovery machinery (and the checker) under thread-pool scheduling too.
constexpr const char* kGrid = R"(
clusters = 1
nodes_per_cluster = 8
vc_size = 4
guest_ram_mib = 64
workload = ptrans
pattern = alltoall
msg_bytes = 2048
iterations = 10
iter_seconds = 0.05
checkpoint_interval_s = 10
watchdog_interval_s = 11
lsc.round_timeout_s = 30
lsc.max_round_retries = 2
horizon_s = 200
slice_s = 10
settle_s = 10
sweep.seeds = 1..8
sweep.mixes = plain retry churn heavy
mix.retry.lsc.retry_backoff_s = 1
mix.heavy.iterations = 25
mix.churn.fault.enabled = true
mix.churn.fault.start_s = 10
mix.churn.fault.horizon_s = 40
mix.churn.fault.node_crash_mtbf_s = 30
mix.churn.fault.node_down_s = 15
)";

TEST(SweepGridTest, ExpandsSortedCrossProductWithOverrides) {
  const SweepGrid grid = SweepGrid::load("scenarios/unit.scn", kGrid);
  EXPECT_EQ(grid.mixes(),
            (std::vector<std::string>{"plain", "retry", "churn", "heavy"}));
  EXPECT_EQ(grid.seeds().size(), 8u);

  const std::vector<SweepCell> cells = grid.cells();
  ASSERT_EQ(cells.size(), 32u);
  EXPECT_TRUE(std::is_sorted(cells.begin(), cells.end(),
                             [](const SweepCell& a, const SweepCell& b) {
                               return a.key < b.key;
                             }));
  // Stem strips the directory and .scn; key is <stem>:<mix>:<seed>.
  EXPECT_EQ(cells.front().key, "unit:churn:1");
  for (const SweepCell& c : cells) {
    EXPECT_EQ(c.key, "unit:" + c.mix + ":" + std::to_string(c.seed));
    EXPECT_EQ(c.cfg.get_int("seed", -1),
              static_cast<std::int64_t>(c.seed));
    // Mix overrides land only on their own mix.
    EXPECT_EQ(c.cfg.get_int("iterations", -1), c.mix == "heavy" ? 25 : 10);
    EXPECT_EQ(c.cfg.get_bool("fault.enabled", false), c.mix == "churn");
  }
}

TEST(SweepGridTest, RejectsMalformedGrids) {
  EXPECT_THROW(SweepGrid::load("g", "no_such_key = 1\n"),
               std::invalid_argument);
  EXPECT_THROW(SweepGrid::load("g", "sweep.typo = 1\n"),
               std::invalid_argument);
  EXPECT_THROW(SweepGrid::load("g", "sweep.seeds = 5..1\n"),
               std::invalid_argument);
  EXPECT_THROW(SweepGrid::load("g", "sweep.seeds = banana\n"),
               std::invalid_argument);
  // Overrides must name a declared mix and a recognised scenario key.
  EXPECT_THROW(SweepGrid::load("g", "mix.ghost.iterations = 5\n"),
               std::invalid_argument);
  EXPECT_THROW(SweepGrid::load("g",
                               "sweep.mixes = a\nmix.a.no_such_key = 5\n"),
               std::invalid_argument);
  // A grid without seeds loads (the CLI can inject them) but won't expand.
  const SweepGrid grid = SweepGrid::load("g", "iterations = 5\n");
  EXPECT_THROW((void)grid.cells(), std::invalid_argument);
}

TEST(SweepGridTest, SeedListsAndRangesParse) {
  const SweepGrid a = SweepGrid::load("g", "sweep.seeds = 3..6\n");
  EXPECT_EQ(a.seeds(), (std::vector<std::uint64_t>{3, 4, 5, 6}));
  const SweepGrid b = SweepGrid::load("g", "sweep.seeds = 9 2 5\n");
  EXPECT_EQ(b.seeds(), (std::vector<std::uint64_t>{9, 2, 5}));
}

TEST(SweepHarnessTest, AggregateBytesAreIndependentOfJobCount) {
  const SweepGrid grid = SweepGrid::load("sweep_unit.scn", kGrid);
  const std::vector<SweepCell> cells = grid.cells();
  ASSERT_EQ(cells.size(), 32u);

  const SweepReport serial = run_sweep(cells, /*jobs=*/1, grid.name());
  const SweepReport parallel = run_sweep(cells, /*jobs=*/8, grid.name());

  // The tentpole contract: byte-identical aggregates regardless of the
  // worker count.
  EXPECT_EQ(serial.to_json(), parallel.to_json());

  // And the grid itself is healthy: every cell completed or diagnosed,
  // no invariant violations, no silent wedges.
  EXPECT_EQ(serial.invariant_violations, 0u);
  EXPECT_EQ(serial.wedged, 0u);
  EXPECT_EQ(serial.completed + serial.diagnosed, cells.size());
  for (const CellOutcome& o : serial.outcomes) {
    EXPECT_TRUE(o.error.empty()) << o.key << ": " << o.error;
    if (o.status == CellStatus::kCompleted && o.mix != "heavy") {
      EXPECT_EQ(o.iterations, 10u) << o.key;
    }
  }
}

TEST(SweepHarnessTest, ReproReplaysARecordedCellBitForBit) {
  SweepGrid grid = SweepGrid::load("sweep_unit.scn", kGrid);
  grid.set_seeds({1, 2});
  const std::vector<SweepCell> cells = grid.cells();
  ASSERT_EQ(cells.size(), 8u);
  const SweepReport report = run_sweep(cells, /*jobs=*/4, grid.name());

  // Replaying any cell alone — what `dvcsweep --repro <key>` does —
  // reproduces the recorded outcome byte for byte, including the fault
  // schedule, counters, and any violations.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellOutcome replay = run_cell(cells[i]);
    EXPECT_EQ(replay.to_json(), report.outcomes[i].to_json())
        << "cell " << cells[i].key << " did not replay bit-for-bit";
  }
}

TEST(SweepHarnessTest, ReproCommandLineNamesTheCell) {
  SweepGrid grid = SweepGrid::load("scenarios/sweep_unit.scn", kGrid);
  grid.set_seeds({4});
  const std::vector<SweepCell> cells = grid.cells();
  for (const SweepCell& c : cells) {
    const CellOutcome out = run_cell(c);
    EXPECT_EQ(out.repro,
              "dvcsweep --repro " + c.key + " scenarios/sweep_unit.scn");
  }
}

}  // namespace
}  // namespace dvc::tools
