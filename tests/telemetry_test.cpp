#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "app/workload.hpp"
#include "ckpt/lsc.hpp"
#include "core/dvc_manager.hpp"
#include "rm/scheduler.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_bridge.hpp"
#include "testbed.hpp"

namespace dvc::telemetry {
namespace {

using test::TestBed;

// ---- instruments ----------------------------------------------------------

TEST(TelemetryTest, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(TelemetryTest, GaugeTracksValueAndHighWater) {
  Gauge g;
  g.set(3.0);
  g.set(7.0);
  g.set(2.0);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  EXPECT_DOUBLE_EQ(g.max(), 7.0);
}

TEST(TelemetryTest, HistogramSummaryIsExact) {
  Histogram h;
  for (const double v : {0.001, 0.002, 0.004, 1.0}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.summary().min(), 0.001);
  EXPECT_DOUBLE_EQ(h.summary().max(), 1.0);
  EXPECT_NEAR(h.summary().mean(), 0.25175, 1e-9);
}

TEST(TelemetryTest, HistogramPercentileIsBucketAccurate) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(i * 1e-3);  // 1 ms .. 1 s
  // Geometric buckets with ratio 2: the quantile can be off by at most one
  // bucket, i.e. a factor of 2; the tails are clamped by the exact extrema.
  const double p50 = h.percentile(50);
  EXPECT_GE(p50, 0.25);
  EXPECT_LE(p50, 1.0);
  // The low tail is reported as its (clamped) bucket bound: within one
  // growth factor of the true minimum.
  EXPECT_GE(h.percentile(0), 1e-3);
  EXPECT_LE(h.percentile(0), 2e-3);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1.0);
}

TEST(TelemetryTest, HistogramBucketsCoverWideRange) {
  Histogram h;
  h.observe(1e-7);  // below the first bound
  h.observe(1.0);   // mid-range
  h.observe(1e15);  // past the last finite bound (1e-6 * 2^63): overflow
  std::uint64_t total = 0;
  for (const auto c : h.bucket_counts()) total += c;
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(h.bucket_counts().front(), 1u);
  EXPECT_EQ(h.bucket_counts().back(), 1u);
}

// ---- registry -------------------------------------------------------------

TEST(TelemetryTest, RegistryCreatesOnFirstUseAndFindsByName) {
  MetricsRegistry m;
  EXPECT_EQ(m.find_counter("a.b.c"), nullptr);
  m.counter("a.b.c").add(5);
  ASSERT_NE(m.find_counter("a.b.c"), nullptr);
  EXPECT_EQ(m.counter_value("a.b.c"), 5u);
  EXPECT_EQ(m.counter_value("never.touched"), 0u);

  m.gauge("g").set(2.5);
  ASSERT_NE(m.find_gauge("g"), nullptr);
  EXPECT_DOUBLE_EQ(m.find_gauge("g")->value(), 2.5);

  m.histogram("h").observe(1.0);
  ASSERT_NE(m.find_histogram("h"), nullptr);
  EXPECT_EQ(m.find_histogram("h")->count(), 1u);
}

TEST(TelemetryTest, SpansAndInstantsRecordTimeline) {
  MetricsRegistry m;
  const auto id = m.begin_span(10 * sim::kSecond, "vm/node0", "save");
  m.instant(11 * sim::kSecond, "vm/node0", "blip");
  m.end_span(id, 12 * sim::kSecond);
  m.end_span(MetricsRegistry::kInvalidSpan, 0);  // no-op
  m.end_span(999, 0);                            // unknown id: no-op

  ASSERT_EQ(m.spans().size(), 1u);
  EXPECT_EQ(m.spans()[0].track, "vm/node0");
  EXPECT_EQ(m.spans()[0].name, "save");
  EXPECT_EQ(m.spans()[0].begin, 10 * sim::kSecond);
  EXPECT_EQ(m.spans()[0].end, 12 * sim::kSecond);
  EXPECT_FALSE(m.spans()[0].open);
  ASSERT_EQ(m.instants().size(), 1u);
  EXPECT_EQ(m.instants()[0].name, "blip");
}

TEST(TelemetryTest, NullRegistryHelpersAreSafe) {
  count(nullptr, "x");
  observe(nullptr, "x", 1.0);
  gauge_set(nullptr, "x", 1.0);
  gauge_add(nullptr, "x", 1.0);
  const auto id = begin_span(nullptr, 0, "t", "n");
  EXPECT_EQ(id, MetricsRegistry::kInvalidSpan);
  end_span(nullptr, id, 1);
  instant(nullptr, 0, "t", "n");
}

TEST(TelemetryTest, ScopedTimerObservesSimTime) {
  sim::Simulation sim;
  MetricsRegistry m;
  auto timer = std::make_unique<ScopedTimer>(&m, sim, "op_s", "track", "op");
  sim.schedule_at(3 * sim::kSecond, [&] { timer->end(); });
  sim.run();
  timer.reset();  // second end() must be a no-op
  ASSERT_NE(m.find_histogram("op_s"), nullptr);
  EXPECT_EQ(m.find_histogram("op_s")->count(), 1u);
  EXPECT_DOUBLE_EQ(m.find_histogram("op_s")->summary().mean(), 3.0);
  ASSERT_EQ(m.spans().size(), 1u);
  EXPECT_EQ(m.spans()[0].end, 3 * sim::kSecond);
}

// ---- export ---------------------------------------------------------------

TEST(TelemetryTest, MetricsJsonContainsEveryInstrument) {
  MetricsRegistry m;
  m.counter("n.c").add(7);
  m.gauge("n.g").set(1.5);
  m.histogram("n.h").observe(0.25);
  m.instant(sim::kSecond, "t", "tick");
  std::ostringstream out;
  m.write_metrics_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"n.c\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"n.g\""), std::string::npos);
  EXPECT_NE(json.find("\"n.h\""), std::string::npos);
  EXPECT_NE(json.find("\"instants\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

TEST(TelemetryTest, ChromeTraceHasMetadataSpansAndInstants) {
  MetricsRegistry m;
  const auto id = m.begin_span(sim::kSecond, "lsc", "round");
  m.end_span(id, 2 * sim::kSecond);
  m.begin_span(3 * sim::kSecond, "lsc", "stuck");  // stays open -> "B"
  m.instant(sim::kSecond, "dvc", "recovered");
  std::ostringstream out;
  m.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"lsc\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  // 1 s of sim time is 1e6 trace microseconds.
  EXPECT_NE(json.find("\"ts\": 1000000.000"), std::string::npos);
}

// ---- trace bridge (satellite: TraceLog -> telemetry) ----------------------

TEST(TelemetryTest, TraceBridgeCountsWarningsAndErrorsPerComponent) {
  sim::TraceLog log;
  MetricsRegistry m;
  bridge_trace_errors(log, m);
  log.emit(0, sim::TraceLevel::kInfo, "dvc", "quiet");
  log.emit(0, sim::TraceLevel::kWarn, "dvc", "worrying");
  log.emit(0, sim::TraceLevel::kError, "hypervisor/3", "bad");
  log.emit(0, sim::TraceLevel::kError, "hypervisor/3", "worse");

  EXPECT_EQ(m.counter_value("trace.warn.dvc"), 1u);
  EXPECT_EQ(m.counter_value("trace.error.hypervisor/3"), 2u);
  EXPECT_EQ(m.counter_value("trace.warn.hypervisor/3"), 0u);
  // The bridge and the ring buffer must agree on totals.
  EXPECT_EQ(m.counter_value("trace.warn.dvc") +
                m.counter_value("trace.error.hypervisor/3"),
            log.count_at_least(sim::TraceLevel::kWarn));
}

// ---- end-to-end across subsystems -----------------------------------------

app::WorkloadSpec steady_job(app::RankId ranks, std::uint32_t iters) {
  app::WorkloadSpec s;
  s.name = "steady";
  s.ranks = ranks;
  s.iterations = iters;
  s.flops_per_rank_iter = 1e9;
  s.pattern = app::Pattern::kAllToAll;
  s.bytes_per_msg = 2048;
  return s;
}

TEST(TelemetryIntegrationTest, CheckpointRestoreTouchesEverySubsystem) {
  TestBed::Options opt;
  opt.clusters = 2;
  opt.nodes_per_cluster = 4;
  opt.store.write_bps = 400e6;
  opt.store.read_bps = 800e6;
  TestBed bed(opt);

  core::VcSpec spec;
  spec.name = "vc";
  spec.size = 3;
  spec.guest.ram_bytes = 64ull << 20;
  core::VirtualCluster& vc = bed.dvc->create_vc(spec, {0, 1, 2}, {});
  bed.sim.run_until(20 * sim::kSecond);
  app::ParallelApp application(bed.sim, bed.fabric.network(), vc.contexts(),
                               steady_job(3, 600));
  bed.dvc->attach_app(vc, application);
  application.start();

  ckpt::NtpLscCoordinator lsc(bed.sim, {}, sim::Rng(3));
  lsc.set_metrics(&bed.metrics);
  std::optional<ckpt::LscResult> result;
  bed.sim.schedule_after(5 * sim::kSecond, [&] {
    bed.dvc->checkpoint_vc(vc, lsc,
                           [&](ckpt::LscResult res) { result = res; });
  });
  bed.sim.run_until(60 * sim::kSecond);
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->ok);

  bool restored = false;
  bed.dvc->restore_vc(vc, {4, 5, 6}, [&](bool ok) { restored = ok; });
  bed.sim.run_until(300 * sim::kSecond);
  ASSERT_TRUE(restored);

  const MetricsRegistry& m = bed.metrics;
  // vm: every guest booted (twice: provisioning + restore), saved, restored.
  EXPECT_GE(m.counter_value("vm.hypervisor.boots"), 3u);
  EXPECT_EQ(m.counter_value("vm.hypervisor.saves"), 3u);
  EXPECT_EQ(m.counter_value("vm.hypervisor.restores"), 3u);
  EXPECT_GT(m.counter_value("vm.hypervisor.bytes_saved"), 0u);
  // ckpt: one successful coordinated round with its timing histograms.
  EXPECT_EQ(m.counter_value("ckpt.lsc.rounds"), 1u);
  EXPECT_EQ(m.counter_value("ckpt.lsc.members_saved"), 3u);
  ASSERT_NE(m.find_histogram("ckpt.lsc.round_s"), nullptr);
  EXPECT_EQ(m.find_histogram("ckpt.lsc.round_s")->count(), 1u);
  // net: the app's all-to-all traffic went over the wire.
  EXPECT_GT(m.counter_value("net.network.packets_sent"), 0u);
  EXPECT_GT(m.counter_value("net.network.packets_delivered"), 0u);
  // storage: images streamed through the store both ways.
  EXPECT_EQ(m.counter_value("storage.store.writes"), 3u);
  EXPECT_GT(m.counter_value("storage.store.reads"), 0u);
  EXPECT_EQ(m.counter_value("storage.images.members_added"), 3u);
  EXPECT_EQ(m.counter_value("storage.images.sets_sealed"), 1u);
  // core: the control plane recorded the checkpoint and the restore.
  EXPECT_EQ(m.counter_value("core.dvc.vcs_created"), 1u);
  EXPECT_EQ(m.counter_value("core.dvc.checkpoints"), 1u);
  EXPECT_EQ(m.counter_value("core.dvc.restores"), 1u);
  // Timeline: per-node save spans and the control-plane track exist.
  bool saw_save_span = false;
  bool saw_dvc_track = false;
  for (const auto& s : m.spans()) {
    saw_save_span |= s.track == "vm/node0" && s.name == "save" && !s.open;
    saw_dvc_track |= s.track == "dvc";
  }
  EXPECT_TRUE(saw_save_span);
  EXPECT_TRUE(saw_dvc_track);
}

TEST(TelemetryIntegrationTest, SchedulerReportsIntoSharedRegistry) {
  // rm::Scheduler is not part of the MachineRoom; it attaches to any
  // registry the same way every other subsystem does.
  sim::Simulation sim;
  hw::Fabric fabric(sim, {});
  fabric.add_cluster("c0", 4);
  rm::Scheduler sched(sim, fabric, {});
  MetricsRegistry m;
  sched.set_metrics(&m);

  rm::JobRequest req;
  req.name = "probe";
  req.nodes_requested = 2;
  req.node_seconds_work = 100.0;
  sched.submit(req);
  sim.run();

  EXPECT_EQ(m.counter_value("rm.scheduler.jobs_submitted"), 1u);
  EXPECT_EQ(m.counter_value("rm.scheduler.jobs_started"), 1u);
  EXPECT_EQ(m.counter_value("rm.scheduler.jobs_completed"), 1u);
  ASSERT_NE(m.find_gauge("rm.scheduler.running"), nullptr);
  EXPECT_DOUBLE_EQ(m.find_gauge("rm.scheduler.running")->value(), 0.0);
  EXPECT_DOUBLE_EQ(m.find_gauge("rm.scheduler.running")->max(), 1.0);
  ASSERT_EQ(m.spans().size(), 1u);
  EXPECT_EQ(m.spans()[0].track, "rm");
  EXPECT_EQ(m.spans()[0].name, "probe");
  EXPECT_FALSE(m.spans()[0].open);
}

TEST(TelemetryIntegrationTest, SameSeedRunsExportIdenticalJson) {
  auto run_once = [](std::string& metrics_json, std::string& trace_json) {
    TestBed::Options opt;
    opt.clusters = 1;
    opt.nodes_per_cluster = 4;
    opt.seed = 1234;
    TestBed bed(opt);
    core::VcSpec spec;
    spec.size = 3;
    spec.guest.ram_bytes = 32ull << 20;
    core::VirtualCluster& vc = bed.dvc->create_vc(spec, {0, 1, 2}, {});
    bed.sim.run_until(20 * sim::kSecond);
    app::ParallelApp application(bed.sim, bed.fabric.network(),
                                 vc.contexts(), steady_job(3, 50));
    bed.dvc->attach_app(vc, application);
    application.start();
    ckpt::NtpLscCoordinator lsc(bed.sim, {}, sim::Rng(9));
    lsc.set_metrics(&bed.metrics);
    bed.sim.schedule_after(5 * sim::kSecond,
                           [&] { bed.dvc->checkpoint_vc(vc, lsc, {}); });
    bed.sim.run_until(120 * sim::kSecond);
    std::ostringstream a;
    std::ostringstream b;
    bed.metrics.write_metrics_json(a);
    bed.metrics.write_chrome_trace(b);
    metrics_json = a.str();
    trace_json = b.str();
  };
  std::string m1;
  std::string t1;
  std::string m2;
  std::string t2;
  run_once(m1, t1);
  run_once(m2, t2);
  EXPECT_FALSE(m1.empty());
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(t1, t2);
}

}  // namespace
}  // namespace dvc::telemetry
