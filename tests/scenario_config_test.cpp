#include <gtest/gtest.h>

#include "tools/scenario_config.hpp"

namespace dvc::tools {
namespace {

TEST(ScenarioConfigTest, ParsesTypedValues) {
  const auto cfg = ScenarioConfig::parse(
      "# a comment\n"
      "experiment = reliability\n"
      "vc_size=26   # trailing comment\n"
      "iter_seconds =  0.25\n"
      "\n"
      "proactive = yes\n");
  EXPECT_EQ(cfg.get_string("experiment", ""), "reliability");
  EXPECT_EQ(cfg.get_int("vc_size", 0), 26);
  EXPECT_DOUBLE_EQ(cfg.get_double("iter_seconds", 0.0), 0.25);
  EXPECT_TRUE(cfg.get_bool("proactive", false));
  EXPECT_TRUE(cfg.has("vc_size"));
  EXPECT_FALSE(cfg.has("missing"));
}

TEST(ScenarioConfigTest, FallbacksApplyForMissingKeys) {
  const auto cfg = ScenarioConfig::parse("");
  EXPECT_EQ(cfg.get_string("x", "dflt"), "dflt");
  EXPECT_EQ(cfg.get_int("x", 7), 7);
  EXPECT_DOUBLE_EQ(cfg.get_double("x", 1.5), 1.5);
  EXPECT_FALSE(cfg.get_bool("x", false));
}

TEST(ScenarioConfigTest, RejectsMalformedInput) {
  EXPECT_THROW(ScenarioConfig::parse("not a key value line\n"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioConfig::parse("= value\n"), std::invalid_argument);
  const auto cfg = ScenarioConfig::parse("n = twelve\nb = maybe\n");
  EXPECT_THROW((void)cfg.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)cfg.get_double("n", 0.0), std::invalid_argument);
  EXPECT_THROW((void)cfg.get_bool("b", false), std::invalid_argument);
}

TEST(ScenarioConfigTest, MalformedLineReportsLineNumber) {
  try {
    ScenarioConfig::parse("a = 1\n\n# fine\nbroken line\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

TEST(ScenarioConfigTest, BadNumericsNameTheKeyAndValue) {
  const auto cfg = ScenarioConfig::parse(
      "count = 12x\nratio = 0.5.1\nempty =\n");
  for (const char* key : {"count", "ratio", "empty"}) {
    try {
      (void)cfg.get_int(key, 0);
      FAIL() << "expected std::invalid_argument for key " << key;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(key), std::string::npos);
    }
  }
  EXPECT_THROW((void)cfg.get_double("ratio", 0.0), std::invalid_argument);
  // Trailing garbage after a valid prefix must not parse as the prefix.
  EXPECT_THROW((void)cfg.get_int("count", 0), std::invalid_argument);
}

TEST(ScenarioConfigTest, ValidateKeysRejectsUnknownKey) {
  const auto cfg = ScenarioConfig::parse("experiment = migrate\nsede = 7\n");
  try {
    cfg.validate_keys({"experiment", "seed"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("sede"), std::string::npos);
  }
  // The full vocabulary passes.
  cfg.validate_keys({"experiment", "seed", "sede"});
}

TEST(ScenarioConfigTest, CoordinatorAndPartitionFaultKeysRoundTrip) {
  // The dvcsim vocabulary for the coordinator fault domain and the
  // partition fault class: every key parses to its intended type and
  // passes key validation; a typo in any of them still fails loudly.
  const auto cfg = ScenarioConfig::parse(
      "fault.partition_mtbf_s = 180\n"
      "fault.partition_s = 25\n"
      "fault.coordinator_crash_mtbf_s = 200\n"
      "fault.coordinator_down_s = 15.5\n"
      "coordinator.head_node = 0\n"
      "coordinator.lease_s = 10\n");
  cfg.validate_keys({"fault.partition_mtbf_s", "fault.partition_s",
                     "fault.coordinator_crash_mtbf_s",
                     "fault.coordinator_down_s", "coordinator.head_node",
                     "coordinator.lease_s"});
  EXPECT_DOUBLE_EQ(cfg.get_double("fault.partition_mtbf_s", 0.0), 180.0);
  EXPECT_DOUBLE_EQ(cfg.get_double("fault.partition_s", 0.0), 25.0);
  EXPECT_DOUBLE_EQ(cfg.get_double("fault.coordinator_crash_mtbf_s", 0.0),
                   200.0);
  EXPECT_DOUBLE_EQ(cfg.get_double("fault.coordinator_down_s", 0.0), 15.5);
  EXPECT_EQ(cfg.get_int("coordinator.head_node", -1), 0);
  EXPECT_DOUBLE_EQ(cfg.get_double("coordinator.lease_s", 0.0), 10.0);

  const auto typo = ScenarioConfig::parse("coordinator.headnode = 0\n");
  EXPECT_THROW(typo.validate_keys({"coordinator.head_node"}),
               std::invalid_argument);
}

TEST(ScenarioConfigTest, LastDuplicateWins) {
  const auto cfg = ScenarioConfig::parse("a = 1\na = 2\n");
  EXPECT_EQ(cfg.get_int("a", 0), 2);
  EXPECT_EQ(cfg.entries().size(), 1u);
}

}  // namespace
}  // namespace dvc::tools
