#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "clocksync/host_clock.hpp"
#include "clocksync/ntp.hpp"
#include "sim/simulation.hpp"

namespace dvc::clocksync {
namespace {

TEST(HostClockTest, PerfectClockTracksTrueTime) {
  sim::Simulation s;
  HostClock c(s, 0, 0.0);
  EXPECT_EQ(c.local_now(), 0);
  s.run_until(5 * sim::kSecond);
  EXPECT_EQ(c.local_now(), 5 * sim::kSecond);
  EXPECT_EQ(c.offset_error(), 0);
}

TEST(HostClockTest, InitialOffsetIsVisible) {
  sim::Simulation s;
  HostClock c(s, 30 * sim::kMillisecond, 0.0);
  EXPECT_EQ(c.offset_error(), 30 * sim::kMillisecond);
  s.run_until(sim::kMinute);
  EXPECT_EQ(c.offset_error(), 30 * sim::kMillisecond);
}

TEST(HostClockTest, DriftAccumulates) {
  sim::Simulation s;
  HostClock fast(s, 0, 100.0);  // +100 ppm
  HostClock slow(s, 0, -50.0);
  s.run_until(100 * sim::kSecond);
  // 100 ppm over 100 s = 10 ms fast.
  EXPECT_NEAR(sim::to_milliseconds(fast.offset_error()), 10.0, 0.01);
  EXPECT_NEAR(sim::to_milliseconds(slow.offset_error()), -5.0, 0.01);
}

TEST(HostClockTest, CorrectionCancelsOffset) {
  sim::Simulation s;
  HostClock c(s, 25 * sim::kMillisecond, 0.0);
  c.apply_correction(-c.offset_error());
  EXPECT_EQ(c.offset_error(), 0);
}

TEST(HostClockTest, ToSimInvertsToLocal) {
  sim::Simulation s;
  s.run_until(10 * sim::kSecond);
  HostClock c(s, 7 * sim::kMillisecond, 42.0);
  const sim::Time future_sim = s.now() + 13 * sim::kSecond;
  const sim::Time local = c.to_local(future_sim);
  // Round-trips to within a tick or two of drift rounding.
  EXPECT_NEAR(static_cast<double>(c.to_sim(local)),
              static_cast<double>(future_sim), 4.0);
}

TEST(HostClockTest, ScheduleAtLocalTimeLandsWithinDriftError) {
  sim::Simulation s;
  HostClock c(s, -4 * sim::kMillisecond, 80.0);
  // "Fire when my clock reads 60 s."
  const sim::Time target_local = 60 * sim::kSecond;
  const sim::Time fire_sim = c.to_sim(target_local);
  sim::Time read_at_fire = 0;
  s.schedule_at(fire_sim, [&] { read_at_fire = c.local_now(); });
  s.run();
  EXPECT_NEAR(static_cast<double>(read_at_fire),
              static_cast<double>(target_local), 4.0);
}

TEST(NtpTest, SingleSyncRemovesBulkOffset) {
  sim::Simulation s;
  HostClock c(s, 500 * sim::kMillisecond, 20.0);
  NtpSynchronizer sync(s, c, NtpPathModel{}, sim::Rng(1));
  sync.sync_once();
  // Residual is bounded by path asymmetry: well under 5 ms on this path.
  EXPECT_LT(std::abs(c.offset_error()), 5 * sim::kMillisecond);
  EXPECT_EQ(sync.polls(), 1u);
}

TEST(NtpTest, ResidualScalesWithPathJitter) {
  sim::Simulation s;
  NtpPathModel quiet{200 * sim::kMicrosecond, 50 * sim::kMicrosecond};
  NtpPathModel noisy{200 * sim::kMicrosecond, 20 * sim::kMillisecond};
  double quiet_err = 0.0;
  double noisy_err = 0.0;
  for (int trial = 0; trial < 64; ++trial) {
    HostClock a(s, 100 * sim::kMillisecond, 0.0);
    NtpSynchronizer sa(s, a, quiet, sim::Rng(100 + trial));
    sa.sync_once();
    quiet_err += std::abs(sim::to_milliseconds(a.offset_error()));

    HostClock b(s, 100 * sim::kMillisecond, 0.0);
    NtpSynchronizer sb(s, b, noisy, sim::Rng(100 + trial));
    sb.sync_once();
    noisy_err += std::abs(sim::to_milliseconds(b.offset_error()));
  }
  EXPECT_LT(quiet_err, noisy_err);
}

TEST(NtpTest, PeriodicPollingBoundsDrift) {
  sim::Simulation s;
  HostClock c(s, 200 * sim::kMillisecond, 200.0);  // aggressive drift
  NtpSynchronizer sync(s, c, NtpPathModel{}, sim::Rng(3));
  sync.start_periodic(16 * sim::kSecond);
  s.run_until(10 * sim::kMinute);
  // 200 ppm * 16 s = 3.2 ms between polls; residual stays small forever.
  EXPECT_LT(std::abs(c.offset_error()), 10 * sim::kMillisecond);
  EXPECT_GE(sync.polls(), 30u);
}

TEST(NtpTest, FrequencyDisciplineShrinksSteadyStateError) {
  // Two identical fast clocks; one synchroniser disciplines frequency,
  // the other only steps phase. After convergence the disciplined clock's
  // residual drift (and thus its inter-poll error) is far smaller.
  sim::Simulation s;
  HostClock disciplined(s, 100 * sim::kMillisecond, 150.0);
  HostClock stepped(s, 100 * sim::kMillisecond, 150.0);
  NtpSynchronizer sync_d(s, disciplined, NtpPathModel{}, sim::Rng(5),
                         /*samples_per_poll=*/8,
                         /*discipline_frequency=*/true);
  NtpSynchronizer sync_s(s, stepped, NtpPathModel{}, sim::Rng(5),
                         /*samples_per_poll=*/8,
                         /*discipline_frequency=*/false);
  sync_d.start_periodic(16 * sim::kSecond);
  sync_s.start_periodic(16 * sim::kSecond);
  s.run_until(20 * sim::kMinute);
  // The oscillator error itself has been driven toward zero...
  EXPECT_LT(std::abs(disciplined.drift_ppm()), 15.0);
  EXPECT_NEAR(stepped.drift_ppm(), 150.0, 1e-9);
  // ...so mid-poll-interval the disciplined clock is much closer to true
  // time: 150 ppm x 8 s = 1.2 ms of undisciplined wander.
  s.run_until(s.now() + 8 * sim::kSecond);
  EXPECT_LT(std::abs(disciplined.offset_error()),
            std::abs(stepped.offset_error()));
}

TEST(ClusterTimeServiceTest, SyncAllAchievesMillisecondSkew) {
  sim::Simulation s;
  ClusterTimeService::Config cfg;
  ClusterTimeService svc(s, 26, cfg, sim::Rng(7));
  // Before sync, initial offsets are tens of milliseconds.
  EXPECT_GT(svc.max_pairwise_skew(), 10 * sim::kMillisecond);
  svc.sync_all();
  // After sync: "within a few milliseconds" (paper §3.1 / Mills).
  EXPECT_LT(svc.max_pairwise_skew(), 5 * sim::kMillisecond);
  const auto stats = svc.offset_error_stats();
  EXPECT_LT(stats.mean(), 2.0);  // mean |error| in ms
}

TEST(ClusterTimeServiceTest, SkewReGrowsWithDriftThenPeriodicHolds) {
  sim::Simulation s;
  ClusterTimeService::Config cfg;
  cfg.drift_ppm_stddev = 100.0;
  ClusterTimeService svc(s, 8, cfg, sim::Rng(9));
  svc.sync_all();
  const auto just_synced = svc.max_pairwise_skew();
  s.run_until(30 * sim::kMinute);
  EXPECT_GT(svc.max_pairwise_skew(), just_synced);

  ClusterTimeService svc2(s, 8, cfg, sim::Rng(9));
  svc2.start_periodic();
  s.run_until(s.now() + 30 * sim::kMinute);
  EXPECT_LT(svc2.max_pairwise_skew(), 10 * sim::kMillisecond);
}

class TimeServiceSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TimeServiceSweep, SkewBoundHoldsAtEveryScale) {
  sim::Simulation s;
  ClusterTimeService svc(s, GetParam(), {}, sim::Rng(31 + GetParam()));
  svc.sync_all();
  EXPECT_LT(svc.max_pairwise_skew(), 8 * sim::kMillisecond);
}

INSTANTIATE_TEST_SUITE_P(Scales, TimeServiceSweep,
                         ::testing::Values(1, 2, 8, 13, 26, 64, 256));

}  // namespace
}  // namespace dvc::clocksync
