#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "app/workload.hpp"
#include "ckpt/lsc.hpp"
#include "core/job_runner.hpp"
#include "core/machine_room.hpp"
#include "rm/scheduler.hpp"
#include "testbed.hpp"

namespace dvc {
namespace {

using core::MachineRoom;
using core::MachineRoomOptions;

app::WorkloadSpec quick_job(app::RankId ranks, std::uint32_t iters = 50) {
  app::WorkloadSpec s;
  s.name = "itest";
  s.ranks = ranks;
  s.iterations = iters;
  s.flops_per_rank_iter = 1e9;  // ~0.1 s per iteration
  s.pattern = app::Pattern::kAllToAll;
  s.bytes_per_msg = 2048;
  return s;
}

MachineRoomOptions runner_opts() {
  MachineRoomOptions o;
  o.clusters = 2;
  o.nodes_per_cluster = 6;
  o.store.write_bps = 400e6;
  o.store.read_bps = 800e6;
  return o;
}

struct RunnerStack {
  explicit RunnerStack(MachineRoomOptions opt, rm::Scheduler::Config cfg)
      : room(opt), scheduler(room.sim, room.fabric, cfg),
        runner(room.sim, scheduler, *room.dvc) {}

  MachineRoom room;
  rm::Scheduler scheduler;
  core::VirtualJobRunner runner;
};

rm::Scheduler::Config runner_sched_cfg() {
  rm::Scheduler::Config cfg;
  cfg.auto_run = false;
  cfg.allow_spanning = true;
  cfg.mold_oversized = false;
  cfg.fail_jobs_on_node_failure = false;  // DVC recovers beneath the RM
  return cfg;
}

TEST(JobRunnerTest, RejectsAutoRunScheduler) {
  MachineRoom room(runner_opts());
  rm::Scheduler sched(room.sim, room.fabric, {});
  EXPECT_THROW(core::VirtualJobRunner(room.sim, sched, *room.dvc),
               std::invalid_argument);
}

TEST(JobRunnerTest, RunsQueuedWorkloadsThroughVirtualClusters) {
  RunnerStack s(runner_opts(), runner_sched_cfg());
  int finished = 0;
  vm::GuestConfig guest;
  guest.ram_bytes = 64ull << 20;
  // Three jobs: 12 nodes exist, so the third queues behind the others.
  for (const app::RankId ranks : {4u, 8u, 6u}) {
    s.runner.submit(quick_job(ranks), guest, 0,
                    [&](bool ok) { finished += ok ? 1 : 0; });
  }
  s.room.sim.run_until(600 * sim::kSecond);
  EXPECT_EQ(finished, 3);
  EXPECT_EQ(s.runner.jobs_completed(), 3u);
  EXPECT_EQ(s.scheduler.completed(), 3u);
  // Everything torn down: nodes free on both layers.
  EXPECT_TRUE(s.room.dvc->claims().empty());
  EXPECT_EQ(s.scheduler.running(), 0u);
}

TEST(JobRunnerTest, SpanningJobRunsAcrossClusters) {
  RunnerStack s(runner_opts(), runner_sched_cfg());
  vm::GuestConfig guest;
  guest.ram_bytes = 64ull << 20;
  bool done = false;
  const rm::JobId id =
      s.runner.submit(quick_job(9), guest, 0, [&](bool ok) { done = ok; });
  s.room.sim.run_until(400 * sim::kSecond);
  EXPECT_TRUE(done);
  EXPECT_TRUE(s.scheduler.job(id).allocation.spans_clusters);
}

TEST(JobRunnerTest, InfeasibleJobIsReportedImmediately) {
  rm::Scheduler::Config cfg = runner_sched_cfg();
  cfg.allow_spanning = false;  // 13 ranks can never fit a 6-node cluster
  RunnerStack s(runner_opts(), cfg);
  vm::GuestConfig guest;
  std::optional<bool> outcome;
  s.runner.submit(quick_job(13), guest, 0,
                  [&](bool ok) { outcome = ok; });
  s.room.sim.run_until(sim::kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(*outcome);
  EXPECT_EQ(s.runner.jobs_abandoned(), 1u);
  EXPECT_TRUE(s.room.dvc->claims().empty());
}

TEST(JobRunnerTest, ProtectedJobSurvivesNodeFailure) {
  RunnerStack s(runner_opts(), runner_sched_cfg());
  ckpt::NtpLscCoordinator lsc(s.room.sim, {}, sim::Rng(41));
  core::VirtualJobRunner::Reliability rel;
  rel.coordinator = &lsc;
  rel.interval = 30 * sim::kSecond;
  s.runner.set_reliability(rel);

  vm::GuestConfig guest;
  guest.ram_bytes = 64ull << 20;
  bool done = false;
  const rm::JobId id = s.runner.submit(quick_job(6, 600), guest, 0,
                                       [&](bool ok) { done = ok; });
  // Kill one of the job's nodes mid-run; DVC recovers beneath the RM.
  s.room.sim.schedule_after(60 * sim::kSecond, [&] {
    const rm::JobRecord& rec = s.scheduler.job(id);
    ASSERT_FALSE(rec.allocation.nodes.empty());
    s.room.fabric.fail_node(rec.allocation.nodes.front());
  });
  s.room.sim.run_until(1200 * sim::kSecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(s.scheduler.job(id).state, rm::JobState::kCompleted);
  EXPECT_GE(s.room.dvc->recoveries_performed(), 1u);
  EXPECT_EQ(s.runner.jobs_abandoned(), 0u);
}

TEST(JobRunnerTest, UnprotectedJobIsAbandonedOnNodeFailure) {
  RunnerStack s(runner_opts(), runner_sched_cfg());
  vm::GuestConfig guest;
  guest.ram_bytes = 64ull << 20;
  std::optional<bool> done;
  const rm::JobId id = s.runner.submit(quick_job(6, 600), guest, 0,
                                       [&](bool ok) { done = ok; });
  s.room.sim.schedule_after(60 * sim::kSecond, [&] {
    s.room.fabric.fail_node(s.scheduler.job(id).allocation.nodes.front());
  });
  s.room.sim.run_until(1200 * sim::kSecond);
  ASSERT_TRUE(done.has_value());
  EXPECT_FALSE(*done);
  EXPECT_EQ(s.scheduler.job(id).state, rm::JobState::kFailed);
  EXPECT_EQ(s.runner.jobs_abandoned(), 1u);
  // The failed job's healthy nodes are reusable immediately.
  EXPECT_TRUE(s.room.dvc->claims().empty());
}

// ---------------------------------------------------------------------------
// Whole-stack end-to-end: the paper's experiment in one test.

TEST(EndToEndTest, TwentySixVmCampaignWithFailureAndRecovery) {
  MachineRoomOptions opt;
  opt.nodes_per_cluster = 32;
  opt.seed = 2007;
  opt.store.write_bps = 400e6;
  opt.store.read_bps = 800e6;
  MachineRoom room(opt);

  core::VcSpec spec;
  spec.size = 26;
  spec.guest.ram_bytes = 64ull << 20;
  core::VirtualCluster& vc =
      room.dvc->create_vc(spec, *room.dvc->pick_nodes(26), {});
  room.sim.run_until(20 * sim::kSecond);

  app::ParallelApp application(room.sim, room.fabric.network(),
                               vc.contexts(), quick_job(26, 1200));
  room.dvc->attach_app(vc, application);
  application.start();

  ckpt::NtpLscCoordinator lsc(room.sim, {}, sim::Rng(2007));
  core::DvcManager::RecoveryPolicy policy;
  policy.coordinator = &lsc;
  policy.interval = 30 * sim::kSecond;
  room.dvc->enable_auto_recovery(vc, policy);

  room.sim.schedule_after(70 * sim::kSecond,
                          [&] { room.fabric.fail_node(vc.placement(13)); });
  room.sim.run_until(1500 * sim::kSecond);

  EXPECT_TRUE(application.completed());
  EXPECT_FALSE(application.failed());
  EXPECT_GE(room.dvc->recoveries_performed(), 1u);
  EXPECT_GE(room.dvc->checkpoints_taken(), 2u);
  // Every rank did exactly its iterations — nothing lost, nothing doubled.
  for (std::uint32_t i = 0; i < 26; ++i) {
    EXPECT_EQ(application.rank(i).state().iter, 1200u);
  }
}

// ---------------------------------------------------------------------------
// Determinism: the whole stack replays bit-for-bit under one seed.

struct CampaignResult {
  double makespan = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t recoveries = 0;
  sim::Time finished_at = 0;

  friend bool operator==(const CampaignResult&,
                         const CampaignResult&) = default;
};

CampaignResult run_campaign(std::uint64_t seed) {
  MachineRoomOptions opt;
  opt.nodes_per_cluster = 12;
  opt.seed = seed;
  MachineRoom room(opt);
  core::VcSpec spec;
  spec.size = 8;
  spec.guest.ram_bytes = 64ull << 20;
  core::VirtualCluster& vc =
      room.dvc->create_vc(spec, *room.dvc->pick_nodes(8), {});
  room.sim.run_until(20 * sim::kSecond);
  app::ParallelApp application(room.sim, room.fabric.network(),
                               vc.contexts(), quick_job(8, 400));
  room.dvc->attach_app(vc, application);
  application.start();
  ckpt::NtpLscCoordinator lsc(room.sim, {}, sim::Rng(seed));
  core::DvcManager::RecoveryPolicy policy;
  policy.coordinator = &lsc;
  policy.interval = 20 * sim::kSecond;
  room.dvc->enable_auto_recovery(vc, policy);
  room.sim.schedule_after(45 * sim::kSecond,
                          [&] { room.fabric.fail_node(vc.placement(3)); });
  room.sim.run_until(900 * sim::kSecond);

  CampaignResult r;
  r.makespan = application.stats().makespan_s;
  r.messages = application.stats().messages;
  r.retransmissions = application.stats().retransmissions;
  r.checkpoints = room.dvc->checkpoints_taken();
  r.recoveries = room.dvc->recoveries_performed();
  r.finished_at = room.sim.now();
  return r;
}

TEST(EndToEndTest, WholeStackIsDeterministicUnderASeed) {
  const CampaignResult a = run_campaign(99);
  const CampaignResult b = run_campaign(99);
  EXPECT_EQ(a, b);
  // And a different seed gives a different trajectory (jitter shifts the
  // timeline even when the deterministic workload sends the same volume).
  const CampaignResult c = run_campaign(100);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace dvc
