#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "app/workload.hpp"
#include "ckpt/lsc.hpp"
#include "sim/trace.hpp"
#include "testbed.hpp"

namespace dvc::sim {
namespace {

TEST(TraceLogTest, RetainsEventsUpToCapacity) {
  TraceLog log(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    log.emit(i, TraceLevel::kInfo, "c", "event " + std::to_string(i));
  }
  EXPECT_EQ(log.events().size(), 4u);
  EXPECT_EQ(log.total_emitted(), 10u);
  EXPECT_EQ(log.events().front().message, "event 6");
  EXPECT_EQ(log.events().back().message, "event 9");
}

TEST(TraceLogTest, MinLevelFilters) {
  TraceLog log;
  log.set_min_level(TraceLevel::kWarn);
  log.emit(0, TraceLevel::kDebug, "c", "quiet");
  log.emit(0, TraceLevel::kInfo, "c", "also quiet");
  log.emit(0, TraceLevel::kWarn, "c", "loud");
  log.emit(0, TraceLevel::kError, "c", "louder");
  EXPECT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.count_at_least(TraceLevel::kError), 1u);
}

TEST(TraceLogTest, SubscribersSeeEveryEvent) {
  TraceLog log;
  std::vector<std::string> seen;
  log.subscribe([&](const TraceEvent& e) { seen.push_back(e.message); });
  log.emit(1, TraceLevel::kInfo, "a", "one");
  log.emit(2, TraceLevel::kError, "b", "two");
  EXPECT_EQ(seen, (std::vector<std::string>{"one", "two"}));
}

TEST(TraceLogTest, ComponentPrefixAndContains) {
  TraceLog log;
  log.emit(0, TraceLevel::kInfo, "hypervisor/3", "saved");
  log.emit(0, TraceLevel::kInfo, "dvc", "vc#1 sealed");
  EXPECT_EQ(log.with_component("hypervisor").size(), 1u);
  EXPECT_EQ(log.with_component("dvc").size(), 1u);
  EXPECT_TRUE(log.contains("sealed"));
  EXPECT_FALSE(log.contains("missing"));
}

TEST(TraceLogTest, NullSinkIsSafe) {
  trace(nullptr, 0, TraceLevel::kInfo, "c", "dropped");  // must not crash
}

TEST(TraceIntegrationTest, MachineRoomNarratesFailureAndRecovery) {
  test::TestBed bed;
  // A running VC with auto-recovery; a node failure should leave a
  // readable operational trail in the machine room's trace log.
  core::VcSpec spec;
  spec.size = 3;
  spec.guest.ram_bytes = 64ull << 20;
  core::VirtualCluster& vc =
      bed.dvc->create_vc(spec, *bed.dvc->pick_nodes(3), {});
  bed.sim.run_until(20 * sim::kSecond);
  app::WorkloadSpec job;
  job.ranks = 3;
  job.iterations = 600;
  job.flops_per_rank_iter = 1e9;
  job.pattern = app::Pattern::kAllToAll;
  job.bytes_per_msg = 1024;
  app::ParallelApp application(bed.sim, bed.fabric.network(), vc.contexts(),
                               job);
  bed.dvc->attach_app(vc, application);
  application.start();
  ckpt::NtpLscCoordinator lsc(bed.sim, {}, sim::Rng(3));
  core::DvcManager::RecoveryPolicy policy;
  policy.coordinator = &lsc;
  policy.interval = 20 * sim::kSecond;
  bed.dvc->enable_auto_recovery(vc, policy);
  bed.sim.schedule_after(40 * sim::kSecond,
                         [&] { bed.fabric.fail_node(vc.placement(1)); });
  bed.sim.run_until(600 * sim::kSecond);

  ASSERT_TRUE(application.completed());
  EXPECT_TRUE(bed.trace.contains("provisioning vc#1"));
  EXPECT_TRUE(bed.trace.contains("checkpoint sealed"));
  EXPECT_TRUE(bed.trace.contains("failed"));
  EXPECT_TRUE(bed.trace.contains("rolling back"));
  EXPECT_TRUE(bed.trace.contains("recovered"));
  EXPECT_GE(bed.trace.count_at_least(TraceLevel::kError), 1u);
  // Events arrive in causal order: failure before rollback before recover.
  sim::Time failed_at = 0;
  sim::Time recovered_at = 0;
  for (const TraceEvent& e : bed.trace.events()) {
    if (e.message.find("node") == 0 &&
        e.message.find("failed") != std::string::npos) {
      failed_at = e.at;
    }
    if (e.message.find("recovered") != std::string::npos) {
      recovered_at = e.at;
    }
  }
  EXPECT_GT(recovered_at, failed_at);
}

}  // namespace
}  // namespace dvc::sim
