#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace dvc::net {
namespace {

/// Test link with per-direction loss overrides and zero jitter, so
/// individual packets can be targeted deterministically.
class ScriptedLink final : public LinkModel {
 public:
  sim::Duration base_latency = 100 * sim::kMicrosecond;
  double bandwidth = 1e9;
  std::map<std::pair<HostId, HostId>, double> loss;

  sim::Duration latency(HostId, HostId, sim::Rng&) override {
    return base_latency;
  }
  double loss_probability(HostId s, HostId d) override {
    const auto it = loss.find({s, d});
    return it == loss.end() ? 0.0 : it->second;
  }
  double bandwidth_bps(HostId, HostId) override { return bandwidth; }
};

class Collector final : public PacketSink {
 public:
  std::vector<Packet> packets;
  void on_packet(const Packet& p) override { packets.push_back(p); }
};

struct NetFixture {
  sim::Simulation sim;
  std::shared_ptr<ScriptedLink> link = std::make_shared<ScriptedLink>();
  Network net{sim, link, sim::Rng(1)};
  HostId a = net.new_host();
  HostId b = net.new_host();
};

TEST(NetworkTest, DeliversDatagramToAttachedSink) {
  NetFixture f;
  Collector sink;
  f.net.attach({f.b, 7}, &sink);
  Packet p;
  p.src = {f.a, 1};
  p.dst = {f.b, 7};
  p.size_bytes = 100;
  EXPECT_TRUE(f.net.send(p));
  f.sim.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(sink.packets[0].size_bytes, 100u);
  EXPECT_EQ(f.net.packets_delivered(), 1u);
}

TEST(NetworkTest, DeliveryDelayIsLatencyPlusSerialisation) {
  NetFixture f;
  f.link->base_latency = 1 * sim::kMillisecond;
  f.link->bandwidth = 1e6;  // bytes/s
  Collector sink;
  f.net.attach({f.b, 0}, &sink);
  Packet p;
  p.src = {f.a, 0};
  p.dst = {f.b, 0};
  p.size_bytes = 5000;  // 5 ms of serialisation at 1 MB/s
  f.net.send(p);
  f.sim.run();
  EXPECT_EQ(f.sim.now(), 6 * sim::kMillisecond);
}

TEST(NetworkTest, DownSourceCannotSend) {
  NetFixture f;
  Collector sink;
  f.net.attach({f.b, 0}, &sink);
  f.net.set_host_up(f.a, false);
  Packet p;
  p.src = {f.a, 0};
  p.dst = {f.b, 0};
  EXPECT_FALSE(f.net.send(p));
  f.sim.run();
  EXPECT_TRUE(sink.packets.empty());
}

TEST(NetworkTest, PacketToDownHostIsDropped) {
  NetFixture f;
  Collector sink;
  f.net.attach({f.b, 0}, &sink);
  Packet p;
  p.src = {f.a, 0};
  p.dst = {f.b, 0};
  f.net.send(p);
  f.net.set_host_up(f.b, false);  // goes down while the packet flies
  f.sim.run();
  EXPECT_TRUE(sink.packets.empty());
  EXPECT_EQ(f.net.packets_dropped(), 1u);
}

TEST(NetworkTest, InFlightPacketFromNowDownSourceStillArrives) {
  // Once on the wire, a packet does not care what happens to its sender.
  NetFixture f;
  Collector sink;
  f.net.attach({f.b, 0}, &sink);
  Packet p;
  p.src = {f.a, 0};
  p.dst = {f.b, 0};
  f.net.send(p);
  f.net.set_host_up(f.a, false);
  f.sim.run();
  EXPECT_EQ(sink.packets.size(), 1u);
}

TEST(NetworkTest, LossDropsFraction) {
  NetFixture f;
  f.link->loss[{f.a, f.b}] = 0.5;
  Collector sink;
  f.net.attach({f.b, 0}, &sink);
  for (int i = 0; i < 2000; ++i) {
    Packet p;
    p.src = {f.a, 0};
    p.dst = {f.b, 0};
    f.net.send(p);
  }
  f.sim.run();
  EXPECT_NEAR(static_cast<double>(sink.packets.size()), 1000.0, 80.0);
}

TEST(NetworkTest, HostStateObserversFireOnTransitionOnly) {
  NetFixture f;
  std::vector<bool> seen;
  f.net.subscribe_host_state(f.a, [&](bool up) { seen.push_back(up); });
  f.net.set_host_up(f.a, true);  // already up: no event
  EXPECT_TRUE(seen.empty());
  f.net.set_host_up(f.a, false);
  f.net.set_host_up(f.a, false);  // no transition
  f.net.set_host_up(f.a, true);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_FALSE(seen[0]);
  EXPECT_TRUE(seen[1]);
}

TEST(NetworkTest, UnsubscribeStopsNotifications) {
  NetFixture f;
  int events = 0;
  const auto token =
      f.net.subscribe_host_state(f.a, [&](bool) { ++events; });
  f.net.set_host_up(f.a, false);
  f.net.unsubscribe_host_state(f.a, token);
  f.net.set_host_up(f.a, true);
  EXPECT_EQ(events, 1);
}

TEST(NetworkTest, UnknownHostThrows) {
  NetFixture f;
  EXPECT_THROW(f.net.set_host_up(999, false), std::out_of_range);
  Collector sink;
  EXPECT_THROW(f.net.attach({999, 0}, &sink), std::out_of_range);
  EXPECT_THROW(f.net.attach({f.a, 0}, nullptr), std::invalid_argument);
}

TEST(ClusterLinkModelTest, IntraVsInterClusterTiers) {
  ClusterLinkModel::Config cfg;
  cfg.intra = {10 * sim::kMicrosecond, 0, 0.0, 1e9};
  cfg.inter = {2 * sim::kMillisecond, 0, 0.01, 1e7};
  ClusterLinkModel m(cfg);
  m.set_cluster(0, 0);
  m.set_cluster(1, 0);
  m.set_cluster(2, 1);
  sim::Rng rng(1);
  EXPECT_EQ(m.latency(0, 1, rng), 10 * sim::kMicrosecond);
  EXPECT_EQ(m.latency(0, 2, rng), 2 * sim::kMillisecond);
  EXPECT_DOUBLE_EQ(m.loss_probability(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.loss_probability(1, 2), 0.01);
  EXPECT_DOUBLE_EQ(m.bandwidth_bps(0, 2), 1e7);
  // Unmapped hosts default to cluster 0.
  EXPECT_EQ(m.latency(0, 99, rng), 10 * sim::kMicrosecond);
}

}  // namespace
}  // namespace dvc::net
