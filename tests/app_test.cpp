#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "app/mpi_job.hpp"
#include "app/workload.hpp"
#include "hw/cluster.hpp"
#include "sim/simulation.hpp"
#include "vm/virtual_machine.hpp"

namespace dvc::app {
namespace {

/// Boots `n` tiny VMs directly (no hypervisor: placement + resume).
struct AppFixture {
  explicit AppFixture(std::uint32_t n) {
    fabric.add_cluster("a", n);
    vm::GuestConfig cfg;
    cfg.ram_bytes = 1 << 20;
    for (std::uint32_t i = 0; i < n; ++i) {
      vms.push_back(std::make_unique<vm::VirtualMachine>(
          sim, fabric.network(), i + 1, cfg));
      vms.back()->place_on(fabric.node(i));
      vms.back()->resume();
      contexts.push_back(vms.back().get());
    }
  }

  sim::Simulation sim;
  hw::Fabric fabric{sim, {}};
  std::vector<std::unique_ptr<vm::VirtualMachine>> vms;
  std::vector<vm::ExecutionContext*> contexts;
};

TEST(WorkloadSpecTest, HplIsComputeDominatedAndCheckpointable) {
  const WorkloadSpec s = make_hpl(4096, 8);
  EXPECT_EQ(s.ranks, 8u);
  EXPECT_EQ(s.pattern, Pattern::kBroadcast);
  EXPECT_TRUE(s.supports_app_checkpoint);
  EXPECT_NEAR(s.total_flops(), (2.0 / 3.0) * 4096.0 * 4096.0 * 4096.0,
              1e6);
  EXPECT_EQ(s.working_set_bytes_per_rank, 4096ull * 4096 * 8 / 8);
}

TEST(WorkloadSpecTest, PtransIsCommunicationHeavy) {
  const WorkloadSpec s = make_ptrans(4096, 8);
  EXPECT_EQ(s.pattern, Pattern::kAllToAll);
  EXPECT_FALSE(s.supports_app_checkpoint);
  EXPECT_EQ(s.bytes_per_msg, 4096u * 4096 * 8 / 64);
  // Far fewer flops than HPL at the same order.
  EXPECT_LT(s.total_flops(), make_hpl(4096, 8).total_flops() / 100);
}

TEST(WorkloadSpecTest, SequentialIsSingleRank) {
  const WorkloadSpec s = make_sequential(1e12);
  EXPECT_EQ(s.ranks, 1u);
  EXPECT_EQ(s.pattern, Pattern::kNone);
  EXPECT_NEAR(s.total_flops(), 1e12, 1.0);
}

TEST(ParallelAppTest, SequentialJobCompletes) {
  AppFixture f(1);
  ParallelApp app(f.sim, f.fabric.network(), f.contexts,
                  make_sequential(1e10, 5));
  app.start();
  f.sim.run();
  EXPECT_TRUE(app.completed());
  EXPECT_FALSE(app.failed());
  // 1e10 flops at 0.97e10 flop/s -> ~1.03 s.
  EXPECT_NEAR(app.stats().makespan_s, 1.0 / 0.97, 0.01);
}

TEST(ParallelAppTest, HplCompletesWithBroadcasts) {
  AppFixture f(4);
  ParallelApp app(f.sim, f.fabric.network(), f.contexts,
                  make_hpl(512, 4, 4));
  bool completed_cb = false;
  app.set_on_complete([&] { completed_cb = true; });
  app.start();
  f.sim.run();
  EXPECT_TRUE(app.completed());
  EXPECT_TRUE(completed_cb);
  const JobStats st = app.stats();
  // Each of 4 iterations: root broadcasts to 3 peers.
  EXPECT_EQ(st.messages, 4u * 3u);
  EXPECT_EQ(st.retransmissions, 0u);
  EXPECT_GT(st.reported_gflops, 0.0);
}

TEST(ParallelAppTest, PtransCompletesWithAllToAll) {
  AppFixture f(6);
  ParallelApp app(f.sim, f.fabric.network(), f.contexts,
                  make_ptrans(256, 6, 5));
  app.start();
  f.sim.run();
  EXPECT_TRUE(app.completed());
  EXPECT_EQ(app.stats().messages, 5u * 6u * 5u);  // iters * P * (P-1)
}

TEST(TreeTopologyTest, RootZeroBinomialShape) {
  // Classic binomial tree over 8 ranks rooted at 0.
  EXPECT_EQ(tree_children(0, 0, 8), (std::vector<RankId>{1, 2, 4}));
  EXPECT_EQ(tree_children(1, 0, 8), (std::vector<RankId>{}));
  EXPECT_EQ(tree_children(2, 0, 8), (std::vector<RankId>{3}));
  EXPECT_EQ(tree_children(4, 0, 8), (std::vector<RankId>{5, 6}));
  EXPECT_EQ(tree_children(6, 0, 8), (std::vector<RankId>{7}));
  EXPECT_EQ(tree_parent(3, 0, 8), 2u);
  EXPECT_EQ(tree_parent(7, 0, 8), 6u);
  EXPECT_EQ(tree_parent(4, 0, 8), 0u);
  EXPECT_EQ(tree_parent(0, 0, 8), 0u);  // the root has no parent
}

class TreeProperty
    : public ::testing::TestWithParam<std::tuple<RankId, RankId>> {};

TEST_P(TreeProperty, EveryRankReachableExactlyOnce) {
  const auto [p, root] = GetParam();
  // parent/children are mutually consistent and the tree spans all ranks.
  std::vector<int> indegree(p, 0);
  for (RankId r = 0; r < p; ++r) {
    for (const RankId c : tree_children(r, root, p)) {
      ASSERT_LT(c, p);
      ++indegree[c];
      EXPECT_EQ(tree_parent(c, root, p), r);
    }
  }
  for (RankId r = 0; r < p; ++r) {
    EXPECT_EQ(indegree[r], r == root ? 0 : 1) << "rank " << r;
  }
  // Depth is logarithmic: every rank reaches the root in <= ceil(log2 p)+1
  // parent hops.
  for (RankId r = 0; r < p; ++r) {
    RankId cur = r;
    int hops = 0;
    while (cur != root && hops <= 34) {
      cur = tree_parent(cur, root, p);
      ++hops;
    }
    EXPECT_EQ(cur, root);
    int log2p = 0;
    while ((1u << log2p) < p) ++log2p;
    EXPECT_LE(hops, log2p + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeProperty,
    ::testing::Values(std::make_tuple<RankId, RankId>(1, 0),
                      std::make_tuple<RankId, RankId>(2, 0),
                      std::make_tuple<RankId, RankId>(2, 1),
                      std::make_tuple<RankId, RankId>(5, 3),
                      std::make_tuple<RankId, RankId>(8, 0),
                      std::make_tuple<RankId, RankId>(8, 5),
                      std::make_tuple<RankId, RankId>(13, 7),
                      std::make_tuple<RankId, RankId>(26, 11),
                      std::make_tuple<RankId, RankId>(32, 31),
                      std::make_tuple<RankId, RankId>(33, 16)));

TEST(ParallelAppTest, TreeBroadcastCompletes) {
  AppFixture f(13);
  WorkloadSpec s;
  s.ranks = 13;
  s.iterations = 9;
  s.flops_per_rank_iter = 1e8;
  s.pattern = Pattern::kTreeBroadcast;
  s.bytes_per_msg = 8192;
  ParallelApp app(f.sim, f.fabric.network(), f.contexts, s);
  app.start();
  f.sim.run();
  EXPECT_TRUE(app.completed());
  // Every iteration moves exactly P-1 panel copies, just like flat bcast.
  EXPECT_EQ(app.stats().messages, 9u * 12u);
}

TEST(ParallelAppTest, TreeBroadcastBeatsFlatForLargePanels) {
  // With per-host egress serialisation, a flat broadcast pays P-1 panel
  // serialisations on the root's link; the binomial tree pays ~log2(P).
  // One iteration isolates the collective (rotating roots would otherwise
  // pipeline consecutive flat broadcasts across different links).
  const auto run = [](Pattern pattern) {
    AppFixture f(32);
    WorkloadSpec s;
    s.ranks = 32;
    s.iterations = 1;
    s.flops_per_rank_iter = 1e6;  // negligible compute
    s.pattern = pattern;
    s.bytes_per_msg = 8 << 20;  // 8 MiB panels: serialisation dominates
    ParallelApp app(f.sim, f.fabric.network(), f.contexts, s);
    app.start();
    f.sim.run();
    EXPECT_TRUE(app.completed());
    return app.stats().makespan_s;
  };
  const double flat = run(Pattern::kBroadcast);
  const double tree = run(Pattern::kTreeBroadcast);
  EXPECT_LT(tree, flat / 2.0);
}

TEST(ParallelAppTest, RingPatternCompletes) {
  AppFixture f(5);
  WorkloadSpec s;
  s.ranks = 5;
  s.iterations = 7;
  s.flops_per_rank_iter = 1e8;
  s.pattern = Pattern::kRing;
  s.bytes_per_msg = 4096;
  ParallelApp app(f.sim, f.fabric.network(), f.contexts, s);
  app.start();
  f.sim.run();
  EXPECT_TRUE(app.completed());
  EXPECT_EQ(app.stats().messages, 7u * 5u);
}

TEST(ParallelAppTest, RanksProgressInLockstepPlusMinusOneIteration) {
  AppFixture f(4);
  ParallelApp app(f.sim, f.fabric.network(), f.contexts,
                  make_ptrans(128, 4, 50));
  app.start();
  // Sample midway: in an all-to-all workload no rank can run ahead of a
  // peer by more than one iteration. Sampling points are spread across
  // the whole run, whose makespan is ~12 ms here.
  std::uint32_t max_spread = 0;
  bool sampled_midway = false;
  for (int ms = 1; ms <= 10; ++ms) {
    f.sim.schedule_at(ms * sim::kMillisecond, [&] {
      std::uint32_t lo = 0xffffffff;
      std::uint32_t hi = 0;
      for (RankId r = 0; r < 4; ++r) {
        lo = std::min(lo, app.rank(r).state().iter);
        hi = std::max(hi, app.rank(r).state().iter);
      }
      max_spread = std::max(max_spread, hi - lo);
      if (lo > 0 && !app.completed()) sampled_midway = true;
    });
  }
  f.sim.run();
  EXPECT_TRUE(app.completed());
  EXPECT_TRUE(sampled_midway);
  EXPECT_LE(max_spread, 1u);
}

TEST(ParallelAppTest, WallClockInflationAcrossPause) {
  // A mid-run freeze inflates the app's own elapsed-time report but not
  // its true compute time (the paper's HPL observation, T6's mechanism).
  AppFixture f(2);
  WorkloadSpec s;
  s.ranks = 2;
  s.iterations = 10;
  s.flops_per_rank_iter = 1e9;  // ~0.1 s per iteration
  s.pattern = Pattern::kRing;
  s.bytes_per_msg = 1024;
  ParallelApp app(f.sim, f.fabric.network(), f.contexts, s);
  app.start();
  // Freeze both VMs for 30 s mid-run (coordinated, so no transport abort).
  f.sim.schedule_at(sim::from_seconds(0.35), [&] {
    f.vms[0]->pause();
    f.vms[1]->pause();
  });
  f.sim.schedule_at(sim::from_seconds(30.35), [&] {
    f.vms[0]->resume();
    f.vms[1]->resume();
  });
  f.sim.run();
  ASSERT_TRUE(app.completed());
  const JobStats st = app.stats();
  EXPECT_GT(st.reported_elapsed_s, 30.0);      // the jump is visible
  EXPECT_LT(st.compute_done_s, 1.5);           // real work is ~1 s
  EXPECT_NEAR(st.makespan_s, st.reported_elapsed_s, 0.2);
}

TEST(ParallelAppTest, KilledRankEventuallyFailsTheJob) {
  AppFixture f(3);
  WorkloadSpec s;
  s.ranks = 3;
  s.iterations = 1000;
  s.flops_per_rank_iter = 1e8;
  s.pattern = Pattern::kAllToAll;
  s.bytes_per_msg = 512;
  ParallelApp app(f.sim, f.fabric.network(), f.contexts, s);
  std::string why;
  app.set_on_failure([&](std::string w) { why = std::move(w); });
  app.start();
  f.sim.schedule_at(sim::kSecond, [&] { f.vms[1]->kill(); });
  f.sim.run();
  EXPECT_TRUE(app.failed());
  EXPECT_FALSE(app.completed());
  EXPECT_FALSE(why.empty());
}

TEST(ParallelAppTest, MismatchedContextCountThrows) {
  AppFixture f(2);
  EXPECT_THROW(ParallelApp(f.sim, f.fabric.network(), f.contexts,
                           make_hpl(256, 4)),
               std::invalid_argument);
}

TEST(MpiJobTest, AggregateCountersTrackTraffic) {
  AppFixture f(3);
  MpiJob job(f.sim, f.fabric.network(), f.contexts);
  int at2 = 0;
  job.set_rank_handler(2, [&](RankId from, const net::Message& m) {
    ++at2;
    EXPECT_EQ(from, 0u);
    EXPECT_EQ(m.bytes, 64u);
  });
  EXPECT_TRUE(job.send(0, 2, 64, 0));
  f.sim.run();
  EXPECT_EQ(at2, 1);
  EXPECT_EQ(job.messages_sent(), 1u);
  EXPECT_EQ(job.messages_delivered(), 1u);
  EXPECT_EQ(job.bytes_sent(), 64u);
}

TEST(MpiJobTest, TransportSnapshotRoundTrip) {
  AppFixture f(2);
  MpiJob job(f.sim, f.fabric.network(), f.contexts);
  f.vms[1]->pause();  // peer frozen: message stays unacked
  job.send(0, 1, 128, 3);
  f.sim.run_until(sim::kSecond);
  f.vms[0]->pause();
  const RankTransportSnapshot snap = job.snapshot_transport(0);
  ASSERT_TRUE(snap.to_peer.contains(1));
  EXPECT_EQ(snap.to_peer.at(1).unacked.size(), 1u);

  int delivered = 0;
  job.set_rank_handler(1, [&](RankId, const net::Message&) { ++delivered; });
  f.vms[0]->resume();
  f.vms[1]->resume();
  job.restore_transport(0, snap, 1);
  job.restore_transport(1, job.snapshot_transport(1), 1);
  f.sim.run();
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace dvc::app
