#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "app/workload.hpp"
#include "check/invariants.hpp"
#include "ckpt/ledger.hpp"
#include "ckpt/lsc.hpp"
#include "testbed.hpp"

// The invariant checker's own suite: every invariant family must
// demonstrably fire on a deliberately broken run, and a fault-free run
// through the full checkpoint/restore lifecycle must stay clean. The
// deliberate breakages bypass the public API on purpose — the checker
// exists to catch exactly the states the API is supposed to make
// unreachable.

namespace dvc {
namespace {

using test::TestBed;
using test::TestBedOptions;

/// Builds a room + VC with the checker attached, runs clock sync, and
/// returns everything a test needs to drive checkpoints.
struct Rig {
  TestBed bed;
  ckpt::NtpLscCoordinator lsc;
  check::Invariants inv;
  core::VirtualCluster* vc;

  explicit Rig(std::uint64_t seed = 7, std::uint32_t vc_size = 4)
      : bed(make_options(seed)),
        lsc(bed.sim, {}, sim::Rng(seed ^ 0xD5C)),
        inv(check::Invariants::Wiring{&bed.sim, bed.dvc.get(), &bed.images,
                                      &bed.fence, &bed.metrics}),
        vc(nullptr) {
    lsc.set_metrics(&bed.metrics);
    inv.attach();
    lsc.set_check(&inv);
    core::VcSpec spec;
    spec.name = "check-vc";
    spec.size = vc_size;
    spec.guest.ram_bytes = 64ull << 20;
    vc = &bed.dvc->create_vc(spec, *bed.dvc->pick_nodes(vc_size), {});
    bed.sim.run_until(20 * sim::kSecond);
  }

  ~Rig() { inv.detach(); }

  static TestBedOptions make_options(std::uint64_t seed) {
    TestBedOptions o;
    o.clusters = 1;
    o.nodes_per_cluster = 8;
    o.seed = seed;
    return o;
  }

  /// One coordinated checkpoint, driven to completion.
  void checkpoint() {
    std::optional<ckpt::LscResult> result;
    bed.dvc->checkpoint_vc(*vc, lsc, [&](ckpt::LscResult r) { result = r; });
    while (!result.has_value()) {
      bed.sim.run_until(bed.sim.now() + sim::kSecond);
    }
    ASSERT_TRUE(result->ok);
  }

  [[nodiscard]] bool saw(const std::string& invariant) const {
    for (const check::Violation& v : inv.violations()) {
      if (v.invariant == invariant) return true;
    }
    return false;
  }
};

// ---- each invariant fires on a deliberate breakage --------------------------

TEST(InvariantCheckerTest, RetiringAReferencedGenerationFires) {
  Rig rig;
  rig.checkpoint();
  ASSERT_TRUE(rig.inv.ok()) << rig.inv.report();

  // Hand-retire the recovery point out from under the live VC, bypassing
  // the manager's refcounting entirely.
  const storage::CheckpointSetId set = rig.vc->last_checkpoint().set;
  ASSERT_GT(rig.bed.images.discard_set(set), 0u);

  rig.inv.end_of_run(/*expect_quiesced=*/false);
  EXPECT_FALSE(rig.inv.ok());
  EXPECT_TRUE(rig.saw("retention-liveness")) << rig.inv.report();
  EXPECT_TRUE(rig.saw("image-completeness")) << rig.inv.report();
}

TEST(InvariantCheckerTest, ForgedDeposedEpochWriteFires) {
  Rig rig;
  const std::uint64_t deposed = rig.bed.fence.current();
  rig.bed.fence.advance();
  ASSERT_TRUE(rig.inv.ok()) << rig.inv.report();

  // Forge what a buggy fence would do: report a mutation stamped with the
  // deposed epoch as admitted.
  rig.inv.on_admitted_mutation("open_set", deposed);
  EXPECT_TRUE(rig.saw("epoch-fence")) << rig.inv.report();
}

TEST(InvariantCheckerTest, NonMonotonicEpochAdvanceFires) {
  Rig rig;
  const std::uint64_t epoch = rig.bed.fence.advance();
  ASSERT_TRUE(rig.inv.ok()) << rig.inv.report();

  // A fence that re-issues the same epoch has lost monotonicity.
  rig.inv.on_epoch_advance(epoch);
  EXPECT_TRUE(rig.saw("epoch-fence")) << rig.inv.report();
}

TEST(InvariantCheckerTest, ResurrectedRecoveryPointFires) {
  Rig rig;
  rig.checkpoint();
  rig.checkpoint();
  ASSERT_TRUE(rig.inv.ok()) << rig.inv.report();

  // Replay the seal boundary without a newer checkpoint: the watermark
  // says this recovery point was already sealed, so the control plane
  // just resurrected a stale one.
  rig.inv.on_vc_boundary(check::Boundary::kRoundSeal, rig.vc->id());
  EXPECT_TRUE(rig.saw("generation-monotonicity")) << rig.inv.report();
}

TEST(InvariantCheckerTest, PhantomRoundCompletionFires) {
  Rig rig;
  ASSERT_TRUE(rig.inv.ok()) << rig.inv.report();

  // An LSC round claiming success with a set id the store never saw.
  rig.inv.on_round_complete(/*ok=*/true, /*set=*/987654321);
  EXPECT_TRUE(rig.saw("image-completeness")) << rig.inv.report();
}

TEST(InvariantCheckerTest, LeakedForegroundEventFires) {
  Rig rig;
  ASSERT_TRUE(rig.inv.ok()) << rig.inv.report();

  // Leak: foreground work scheduled past the end of the run that nothing
  // will ever consume.
  rig.bed.sim.schedule_after(1000 * sim::kSecond, [] {});
  rig.inv.end_of_run(/*expect_quiesced=*/true);
  EXPECT_TRUE(rig.saw("queue-hygiene")) << rig.inv.report();
}

TEST(InvariantCheckerTest, InconsistentLedgerFires) {
  Rig rig;
  ckpt::MessageLedger ledger;
  ledger.record_send(0, 1, /*msg_id=*/1);
  // At a cut with no in-flight traffic allowed, a sent-but-undelivered
  // message is an inconsistent ledger.
  EXPECT_FALSE(rig.inv.verify_ledger(ledger, /*allow_in_flight=*/false));
  EXPECT_TRUE(rig.saw("ledger-consistency")) << rig.inv.report();

  // The same ledger is a legal in-flight cut.
  check::Invariants clean(check::Invariants::Wiring{});
  EXPECT_TRUE(clean.verify_ledger(ledger, /*allow_in_flight=*/true));
  EXPECT_TRUE(clean.ok());
}

TEST(InvariantCheckerTest, ViolationsAreCountedInTelemetry) {
  Rig rig;
  rig.inv.on_round_complete(true, 424242);
  rig.inv.on_round_complete(true, 424243);
  EXPECT_EQ(rig.bed.metrics.counter_value("check.violations"), 2u);
  EXPECT_EQ(
      rig.bed.metrics.counter_value("check.violation.image-completeness"),
      2u);
}

// ---- fault-free runs stay clean ---------------------------------------------

TEST(InvariantCheckerTest, FaultFreeCheckpointLifecycleIsClean) {
  Rig rig;
  rig.checkpoint();
  rig.checkpoint();
  rig.checkpoint();

  // Restore from the newest generation, then retire the VC entirely.
  bool restored = false;
  rig.bed.dvc->restore_vc(*rig.vc, rig.vc->placements(),
                          [&](bool ok) { restored = ok; });
  rig.bed.sim.run_until(rig.bed.sim.now() + 120 * sim::kSecond);
  EXPECT_TRUE(restored);

  rig.inv.end_of_run(/*expect_quiesced=*/false);
  EXPECT_TRUE(rig.inv.ok()) << rig.inv.report();
}

TEST(InvariantCheckerTest, FaultFreeFullJobRunIsClean) {
  Rig rig(/*seed=*/11, /*vc_size=*/4);

  app::WorkloadSpec job;
  job.name = "check-job";
  job.ranks = 4;
  job.iterations = 40;
  job.flops_per_rank_iter = 1e9;
  job.pattern = app::Pattern::kAllToAll;
  job.bytes_per_msg = 4096;
  auto application = std::make_unique<app::ParallelApp>(
      rig.bed.sim, rig.bed.fabric.network(), rig.vc->contexts(), job);
  rig.bed.dvc->attach_app(*rig.vc, *application);
  application->start();

  core::DvcManager::RecoveryPolicy policy;
  policy.coordinator = &rig.lsc;
  policy.interval = 10 * sim::kSecond;
  policy.watchdog_interval = 11 * sim::kSecond;
  rig.bed.dvc->enable_auto_recovery(*rig.vc, policy);

  while (!application->completed() &&
         rig.bed.sim.now() < 600 * sim::kSecond) {
    rig.bed.sim.run_until(rig.bed.sim.now() + 10 * sim::kSecond);
  }
  ASSERT_TRUE(application->completed());

  // Quiesce: stop the periodic machinery and drain the foreground queue,
  // then demand a clean final sweep including queue hygiene.
  rig.bed.dvc->disable_auto_recovery(*rig.vc);
  rig.bed.sim.run(2'000'000);
  rig.inv.end_of_run(/*expect_quiesced=*/true);
  EXPECT_TRUE(rig.inv.ok()) << rig.inv.report();
}

TEST(InvariantCheckerTest, DestroyedVcLeavesNoRefcountResidue) {
  Rig rig;
  rig.checkpoint();
  rig.checkpoint();
  EXPECT_FALSE(rig.bed.dvc->set_refs().empty());

  rig.bed.dvc->destroy_vc(*rig.vc);
  rig.vc = nullptr;
  // With the VC gone its retained generations must be released — a
  // leftover refcount entry is exactly the leak check_refcounts flags.
  rig.inv.end_of_run(/*expect_quiesced=*/false);
  EXPECT_TRUE(rig.inv.ok()) << rig.inv.report();
  EXPECT_TRUE(rig.bed.dvc->set_refs().empty());
}

}  // namespace
}  // namespace dvc
