#include <gtest/gtest.h>
#include <iostream>

#include <cstdint>
#include <memory>
#include <tuple>

#include "app/workload.hpp"
#include "ckpt/lsc.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "testbed.hpp"

// Seeded fault soak: N randomized fault schedules against the full stack,
// each asserting the one invariant that matters — the job either completes
// or reports a diagnosed failure. Silent hangs (the bug class this PR's
// retry/recovery machinery exists to kill) fail the suite with the seed in
// the message so any schedule is replayable in isolation.
//
// A plain build runs kSeeds schedules and stays tier-1 fast; a -DDVC_SOAK=ON
// build (ci.sh --soak, under ASan) widens the sweep.

namespace dvc {
namespace {

using test::TestBed;
using test::TestBedOptions;

#ifdef DVC_SOAK
constexpr std::uint64_t kSeeds = 150;
constexpr std::uint64_t kStorageSeeds = 60;
constexpr std::uint64_t kControlSeeds = 45;
#else
constexpr std::uint64_t kSeeds = 50;
constexpr std::uint64_t kStorageSeeds = 20;
constexpr std::uint64_t kControlSeeds = 15;
#endif

struct SoakOutcome {
  bool completed = false;
  bool failed = false;
  std::uint32_t iter0 = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t watchdog = 0;
  std::uint64_t lsc_retries = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_lifted = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t verify_failures = 0;
  std::uint64_t failovers = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t damage_planted = 0;  ///< corruptions + torn writes, all stores
  std::uint64_t coordinator_crashes = 0;
  std::uint64_t coordinator_reboots = 0;
  std::uint64_t stale_completions = 0;
  std::uint64_t orphans_swept = 0;   ///< discarded sealed + aborted open sets
  std::uint64_t fenced_writes = 0;   ///< store + hypervisor fence rejections

  friend bool operator==(const SoakOutcome& a, const SoakOutcome& b) {
    return std::tie(a.completed, a.failed, a.iter0, a.recoveries, a.watchdog,
                    a.lsc_retries, a.faults_injected, a.faults_lifted,
                    a.checkpoints, a.verify_failures, a.failovers,
                    a.fallbacks, a.abandoned, a.damage_planted,
                    a.coordinator_crashes, a.coordinator_reboots,
                    a.stale_completions, a.orphans_swept, a.fenced_writes) ==
           std::tie(b.completed, b.failed, b.iter0, b.recoveries, b.watchdog,
                    b.lsc_retries, b.faults_injected, b.faults_lifted,
                    b.checkpoints, b.verify_failures, b.failovers,
                    b.fallbacks, b.abandoned, b.damage_planted,
                    b.coordinator_crashes, b.coordinator_reboots,
                    b.stale_completions, b.orphans_swept, b.fenced_writes);
  }
};

/// One randomized schedule against the full stack. `storage_faults` swaps
/// the link/disk/clock processes for the durability gauntlet: silent
/// corruption and torn writes against the checkpoint store (and one
/// replica, so some damage is masked and some forces generation fallback).
/// `control_faults` puts the control plane itself in the blast radius:
/// the coordinator runs on a (crashable) head node while partitions and
/// coordinator crashes land on top of the general schedule.
SoakOutcome run_soak(std::uint64_t seed, bool storage_faults = false,
                     bool control_faults = false) {
  TestBedOptions o;
  o.clusters = 2;
  o.nodes_per_cluster = 5;
  o.seed = seed;
  o.store.write_bps = 400e6;
  o.store.read_bps = 800e6;
  o.hv.abort_saves_on_failure = true;
  if (storage_faults) o.store_replicas = 1;
  TestBed bed(o);

  ckpt::NtpLscCoordinator lsc(bed.sim, {}, sim::Rng(seed ^ 0x50AC));
  lsc.set_metrics(&bed.metrics);
  ckpt::LscCoordinator::RetryPolicy retry;
  retry.max_round_retries = 2;
  retry.backoff = 2 * sim::kSecond;
  retry.round_timeout = 30 * sim::kSecond;
  lsc.set_retry_policy(retry);

  core::VcSpec spec;
  spec.name = "soak-vc";
  spec.size = 6;  // spans both clusters, leaves 4 spare nodes
  spec.guest.ram_bytes = 64ull << 20;
  auto* vc = &bed.dvc->create_vc(spec, *bed.dvc->pick_nodes(spec.size), {});
  // A spare node hosts the coordinator, so the node-crash process can kill
  // the control plane the hard way too (head death, reboot on repair).
  if (control_faults) bed.dvc->designate_head_node(9);
  bed.sim.run_until(20 * sim::kSecond);

  app::WorkloadSpec job;
  job.name = "soak-job";
  job.ranks = spec.size;
  // The storage sweep runs a longer job: the fault window must overlap
  // actual restores, or the planted damage is never read back.
  job.iterations = storage_faults ? 500 : 200;
  job.flops_per_rank_iter = 1e9;  // ~0.1 s of fault-free compute per iter
  job.pattern = app::Pattern::kAllToAll;
  job.bytes_per_msg = 4096;
  auto application = std::make_unique<app::ParallelApp>(
      bed.sim, bed.fabric.network(), vc->contexts(), job);
  bed.dvc->attach_app(*vc, *application);
  application->start();

  core::DvcManager::RecoveryPolicy policy;
  policy.coordinator = &lsc;
  // Storage sweep: longer interval, so a damaged newest generation is
  // usually still the recovery point when the next crash forces a restore.
  policy.interval = storage_faults ? 25 * sim::kSecond : 15 * sim::kSecond;
  policy.watchdog_interval = 11 * sim::kSecond;
  bed.dvc->enable_auto_recovery(*vc, policy);

  // The randomized schedule: every fault class active, crashes reboot (so
  // the spare pool regenerates), all sampled over a 90 s horizon so the
  // tail of the run is quiet enough to converge.
  fault::StochasticFaults stochastic;
  stochastic.horizon = 90 * sim::kSecond;
  stochastic.node_crash_mtbf = 70 * sim::kSecond;
  stochastic.node_down_for = 25 * sim::kSecond;
  if (storage_faults) {
    // Durability gauntlet: crashes force restores while corruption and
    // torn writes chew on the very images those restores need. Dense
    // schedules — a corrupted image is only *observed* if a restore reads
    // it before the next periodic round supersedes it.
    stochastic.horizon = 150 * sim::kSecond;
    stochastic.node_crash_mtbf = 28 * sim::kSecond;
    stochastic.store_corrupt_mtbf = 10 * sim::kSecond;
    stochastic.store_tear_mtbf = 20 * sim::kSecond;
  } else {
    stochastic.link_down_mtbf = 120 * sim::kSecond;
    stochastic.link_down_for = 15 * sim::kSecond;
    stochastic.disk_slow_mtbf = 100 * sim::kSecond;
    stochastic.disk_slow_for = 30 * sim::kSecond;
    stochastic.disk_slow_factor = 4.0;
    stochastic.clock_step_mtbf = 80 * sim::kSecond;
    stochastic.clock_step_max = 300 * sim::kMillisecond;
    if (control_faults) {
      // Partitions mostly shorter than the ~25 s transport budget (masked
      // unless they compound with a crash) plus repeated control-plane
      // outages, so LSC rounds die at every phase across the sweep.
      stochastic.partition_mtbf = 110 * sim::kSecond;
      stochastic.partition_for = 12 * sim::kSecond;
      stochastic.coordinator_crash_mtbf = 55 * sim::kSecond;
      stochastic.coordinator_down_for = 10 * sim::kSecond;
    }
  }
  fault::FaultPlan sampled;
  sampled.sample(stochastic,
                 static_cast<std::uint32_t>(bed.fabric.node_count()),
                 o.clusters, sim::Rng(seed ^ 0xFA17),
                 static_cast<std::uint32_t>(1 + bed.replica_stores.size()));
  // Shift the schedule past checkpoint #0 (seals ~23 s): the window before
  // the first complete checkpoint is inherently unprotected — a member
  // lost there ends the job with a diagnosed failure, which is correct
  // but not what this sweep is probing.
  fault::FaultPlan plan;
  for (fault::FaultEvent e : sampled.schedule()) {
    e.at += 30 * sim::kSecond;
    plan.add(e);
  }
  fault::FaultInjector::Hooks hooks{&bed.fabric, &bed.store, bed.time.get(),
                                    bed.replica_ptrs(), {}};
  if (control_faults) {
    hooks.coordinator_crash = [&bed](sim::Duration down_for) {
      bed.dvc->crash_coordinator(down_for);
    };
  }
  fault::FaultInjector injector(bed.sim, hooks, &bed.metrics);
  injector.arm(plan);

  // Run in slices so a completed job doesn't drag a thousand seconds of
  // idle-VC checkpoints behind it; stopping early never changes the
  // schedule of what did run.
  for (sim::Time t = 100 * sim::kSecond; t <= 1200 * sim::kSecond;
       t += 100 * sim::kSecond) {
    bed.sim.run_until(t);
    // Keep going on failure: the watchdog may still roll the job back.
    if (application->completed()) break;
  }
  // A recovery that was already in flight when the job finished rolls the
  // ranks back and re-runs the tail; give that churn time to settle so the
  // outcome below reflects the final state, not a mid-rerun sample.
  bed.sim.run_until(bed.sim.now() + 150 * sim::kSecond);

  SoakOutcome out;
  out.completed = application->completed();
  out.failed = application->failed();
  out.iter0 = application->rank(0).state().iter;
  out.recoveries = bed.dvc->recoveries_performed();
  out.watchdog = bed.dvc->watchdog_detections();
  out.lsc_retries = bed.metrics.counter_value("ckpt.lsc.round_retries");
  out.faults_injected = bed.metrics.counter_value("fault.injected");
  out.faults_lifted = bed.metrics.counter_value("fault.lifted");
  out.checkpoints = bed.metrics.counter_value("core.dvc.checkpoints");
  out.verify_failures =
      bed.metrics.counter_value("storage.store.verify_failures");
  out.failovers = bed.metrics.counter_value("storage.replica.failovers");
  out.fallbacks = bed.dvc->restore_fallbacks();
  out.abandoned = bed.dvc->recoveries_abandoned();
  out.damage_planted =
      bed.metrics.counter_value("storage.store.corruptions") +
      bed.metrics.counter_value("storage.store.torn_writes") +
      bed.metrics.counter_value("storage.replica0.store.corruptions") +
      bed.metrics.counter_value("storage.replica0.store.torn_writes");
  out.coordinator_crashes = bed.dvc->coordinator_crashes();
  out.coordinator_reboots = bed.dvc->coordinator_reboots();
  out.stale_completions = bed.dvc->stale_completions();
  out.orphans_swept =
      bed.dvc->orphan_sets_discarded() + bed.dvc->orphan_rounds_aborted();
  out.fenced_writes =
      bed.metrics.counter_value("storage.images.fenced_writes") +
      bed.metrics.counter_value("vm.hypervisor.fenced_commands");
  return out;
}

TEST(FaultSoakTest, EverySeedCompletesOrDiagnosesItsFailure) {
  std::uint64_t completed = 0;
  std::uint64_t with_faults = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const SoakOutcome out = run_soak(seed);
    // The invariant: no silent hang. Either the job ran to the end or the
    // stack diagnosed a failure it could not recover from.
    ASSERT_TRUE(out.completed || out.failed)
        << "seed " << seed << " hung silently: iter0=" << out.iter0
        << " recoveries=" << out.recoveries << " watchdog=" << out.watchdog
        << " faults=" << out.faults_injected << "/" << out.faults_lifted
        << " checkpoints=" << out.checkpoints;
    if (out.completed) {
      ++completed;
      EXPECT_EQ(out.iter0, 200u) << "seed " << seed;
    } else {
      std::cout << "[soak] seed " << seed << " failed: iter0=" << out.iter0
                << " recoveries=" << out.recoveries
                << " watchdog=" << out.watchdog
                << " lsc_retries=" << out.lsc_retries
                << " faults=" << out.faults_injected << "/"
                << out.faults_lifted << " ckpts=" << out.checkpoints << "\n";
    }
    if (out.faults_injected > 0) ++with_faults;
  }
  // The sweep has teeth: nearly every schedule injects something, and the
  // recovery machinery turns nearly all of them into completions.
  EXPECT_GE(with_faults, kSeeds * 9 / 10);
  EXPECT_GE(completed, kSeeds * 9 / 10);
}

TEST(FaultSoakTest, SameSeedReplaysToTheSameOutcome) {
  for (std::uint64_t seed : {7ull, 21ull, 42ull}) {
    const SoakOutcome first = run_soak(seed);
    const SoakOutcome second = run_soak(seed);
    EXPECT_TRUE(first == second) << "seed " << seed << " not deterministic";
  }
}

// ---------------------------------------------------------------------------
// The same sweep against the durability layer: corruption and torn-write
// schedules on top of node crashes. The invariant is unchanged — complete
// or diagnose, never hang — and the damage must actually be exercised
// (verify failures observed across the sweep, not silently absorbed).

TEST(FaultSoakTest, StorageFaultSeedsCompleteOrDiagnose) {
  std::uint64_t completed = 0;
  std::uint64_t damage_seen = 0;
  std::uint64_t damage_planted = 0;
  for (std::uint64_t seed = 1; seed <= kStorageSeeds; ++seed) {
    const SoakOutcome out = run_soak(seed, /*storage_faults=*/true);
    ASSERT_TRUE(out.completed || out.failed)
        << "storage seed " << seed << " hung silently: iter0=" << out.iter0
        << " recoveries=" << out.recoveries
        << " verify_failures=" << out.verify_failures
        << " failovers=" << out.failovers << " fallbacks=" << out.fallbacks
        << " abandoned=" << out.abandoned;
    if (out.completed) {
      ++completed;
      EXPECT_EQ(out.iter0, 500u) << "storage seed " << seed;
    } else {
      // Diagnosed loss is only acceptable when the durability machinery
      // actually ran out of intact generations — never as a default.
      EXPECT_GT(out.abandoned, 0u) << "storage seed " << seed;
      std::cout << "[soak] storage seed " << seed
                << " diagnosed: verify_failures=" << out.verify_failures
                << " failovers=" << out.failovers
                << " fallbacks=" << out.fallbacks
                << " abandoned=" << out.abandoned << "\n";
    }
    if (out.verify_failures > 0) ++damage_seen;
    damage_planted += out.damage_planted;
  }
  // The sweep has teeth: every run plants real damage, and in a steady
  // fraction of seeds a restore reads it back and trips verification
  // (deterministic detection guarantees live in durability_test.cpp; this
  // sweep checks the machinery holds up under randomized schedules).
  EXPECT_GE(damage_planted, kStorageSeeds * 5);
  EXPECT_GE(damage_seen, kStorageSeeds / 10);
  EXPECT_GE(completed, kStorageSeeds * 8 / 10);
}

TEST(FaultSoakTest, StorageFaultSeedsReplayDeterministically) {
  for (std::uint64_t seed : {5ull, 13ull, 33ull}) {
    const SoakOutcome first = run_soak(seed, /*storage_faults=*/true);
    const SoakOutcome second = run_soak(seed, /*storage_faults=*/true);
    EXPECT_TRUE(first == second)
        << "storage seed " << seed << " not deterministic";
  }
}

// ---------------------------------------------------------------------------
// The same sweep with the control plane in the blast radius: network
// partitions and coordinator crashes (including head-node deaths from the
// ordinary crash process) on top of the general schedule. The invariant is
// the same — complete or diagnose, never hang — which is exactly the
// property the intent WAL, epoch fencing, and reboot reconciliation exist
// to preserve.

TEST(FaultSoakTest, ControlPlaneSeedsCompleteOrDiagnose) {
  std::uint64_t completed = 0;
  std::uint64_t with_outages = 0;
  for (std::uint64_t seed = 1; seed <= kControlSeeds; ++seed) {
    const SoakOutcome out =
        run_soak(seed, /*storage_faults=*/false, /*control_faults=*/true);
    ASSERT_TRUE(out.completed || out.failed)
        << "control seed " << seed << " hung silently: iter0=" << out.iter0
        << " recoveries=" << out.recoveries
        << " coordinator=" << out.coordinator_crashes << "/"
        << out.coordinator_reboots << " stale=" << out.stale_completions
        << " orphans=" << out.orphans_swept
        << " fenced=" << out.fenced_writes;
    // A crashed coordinator always came back: no schedule ends headless.
    EXPECT_EQ(out.coordinator_crashes, out.coordinator_reboots)
        << "control seed " << seed;
    if (out.completed) {
      ++completed;
      EXPECT_EQ(out.iter0, 200u) << "control seed " << seed;
    } else {
      std::cout << "[soak] control seed " << seed
                << " diagnosed: recoveries=" << out.recoveries
                << " coordinator=" << out.coordinator_crashes << "/"
                << out.coordinator_reboots
                << " stale=" << out.stale_completions
                << " orphans=" << out.orphans_swept << "\n";
    }
    if (out.coordinator_crashes > 0) ++with_outages;
  }
  // The sweep has teeth: most schedules take the coordinator down at
  // least once, and the reboot machinery still lands the jobs.
  EXPECT_GE(with_outages, kControlSeeds / 2);
  EXPECT_GE(completed, kControlSeeds * 7 / 10);
}

TEST(FaultSoakTest, ControlPlaneSeedsReplayDeterministically) {
  for (std::uint64_t seed : {3ull, 11ull, 26ull}) {
    const SoakOutcome first =
        run_soak(seed, /*storage_faults=*/false, /*control_faults=*/true);
    const SoakOutcome second =
        run_soak(seed, /*storage_faults=*/false, /*control_faults=*/true);
    EXPECT_TRUE(first == second)
        << "control seed " << seed << " not deterministic";
  }
}

}  // namespace
}  // namespace dvc
