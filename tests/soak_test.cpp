#include <gtest/gtest.h>
#include <iostream>

#include <cstdint>
#include <memory>
#include <tuple>

#include "app/workload.hpp"
#include "ckpt/lsc.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "testbed.hpp"

// Seeded fault soak: N randomized fault schedules against the full stack,
// each asserting the one invariant that matters — the job either completes
// or reports a diagnosed failure. Silent hangs (the bug class this PR's
// retry/recovery machinery exists to kill) fail the suite with the seed in
// the message so any schedule is replayable in isolation.
//
// A plain build runs kSeeds schedules and stays tier-1 fast; a -DDVC_SOAK=ON
// build (ci.sh --soak, under ASan) widens the sweep.

namespace dvc {
namespace {

using test::TestBed;
using test::TestBedOptions;

#ifdef DVC_SOAK
constexpr std::uint64_t kSeeds = 150;
#else
constexpr std::uint64_t kSeeds = 50;
#endif

struct SoakOutcome {
  bool completed = false;
  bool failed = false;
  std::uint32_t iter0 = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t watchdog = 0;
  std::uint64_t lsc_retries = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_lifted = 0;
  std::uint64_t checkpoints = 0;

  friend bool operator==(const SoakOutcome& a, const SoakOutcome& b) {
    return std::tie(a.completed, a.failed, a.iter0, a.recoveries, a.watchdog,
                    a.lsc_retries, a.faults_injected, a.faults_lifted,
                    a.checkpoints) ==
           std::tie(b.completed, b.failed, b.iter0, b.recoveries, b.watchdog,
                    b.lsc_retries, b.faults_injected, b.faults_lifted,
                    b.checkpoints);
  }
};

SoakOutcome run_soak(std::uint64_t seed) {
  TestBedOptions o;
  o.clusters = 2;
  o.nodes_per_cluster = 5;
  o.seed = seed;
  o.store.write_bps = 400e6;
  o.store.read_bps = 800e6;
  o.hv.abort_saves_on_failure = true;
  TestBed bed(o);

  ckpt::NtpLscCoordinator lsc(bed.sim, {}, sim::Rng(seed ^ 0x50AC));
  lsc.set_metrics(&bed.metrics);
  ckpt::LscCoordinator::RetryPolicy retry;
  retry.max_round_retries = 2;
  retry.backoff = 2 * sim::kSecond;
  retry.round_timeout = 30 * sim::kSecond;
  lsc.set_retry_policy(retry);

  core::VcSpec spec;
  spec.name = "soak-vc";
  spec.size = 6;  // spans both clusters, leaves 4 spare nodes
  spec.guest.ram_bytes = 64ull << 20;
  auto* vc = &bed.dvc->create_vc(spec, *bed.dvc->pick_nodes(spec.size), {});
  bed.sim.run_until(20 * sim::kSecond);

  app::WorkloadSpec job;
  job.name = "soak-job";
  job.ranks = spec.size;
  job.iterations = 200;
  job.flops_per_rank_iter = 1e9;  // ~20 s of fault-free compute
  job.pattern = app::Pattern::kAllToAll;
  job.bytes_per_msg = 4096;
  auto application = std::make_unique<app::ParallelApp>(
      bed.sim, bed.fabric.network(), vc->contexts(), job);
  bed.dvc->attach_app(*vc, *application);
  application->start();

  core::DvcManager::RecoveryPolicy policy;
  policy.coordinator = &lsc;
  policy.interval = 15 * sim::kSecond;
  policy.watchdog_interval = 11 * sim::kSecond;
  bed.dvc->enable_auto_recovery(*vc, policy);

  // The randomized schedule: every fault class active, crashes reboot (so
  // the spare pool regenerates), all sampled over a 90 s horizon so the
  // tail of the run is quiet enough to converge.
  fault::StochasticFaults stochastic;
  stochastic.horizon = 90 * sim::kSecond;
  stochastic.node_crash_mtbf = 70 * sim::kSecond;
  stochastic.node_down_for = 25 * sim::kSecond;
  stochastic.link_down_mtbf = 120 * sim::kSecond;
  stochastic.link_down_for = 15 * sim::kSecond;
  stochastic.disk_slow_mtbf = 100 * sim::kSecond;
  stochastic.disk_slow_for = 30 * sim::kSecond;
  stochastic.disk_slow_factor = 4.0;
  stochastic.clock_step_mtbf = 80 * sim::kSecond;
  stochastic.clock_step_max = 300 * sim::kMillisecond;
  fault::FaultPlan sampled;
  sampled.sample(stochastic,
                 static_cast<std::uint32_t>(bed.fabric.node_count()),
                 o.clusters, sim::Rng(seed ^ 0xFA17));
  // Shift the schedule past checkpoint #0 (seals ~23 s): the window before
  // the first complete checkpoint is inherently unprotected — a member
  // lost there ends the job with a diagnosed failure, which is correct
  // but not what this sweep is probing.
  fault::FaultPlan plan;
  for (fault::FaultEvent e : sampled.schedule()) {
    e.at += 30 * sim::kSecond;
    plan.add(e);
  }
  fault::FaultInjector injector(
      bed.sim,
      fault::FaultInjector::Hooks{&bed.fabric, &bed.store, bed.time.get()},
      &bed.metrics);
  injector.arm(plan);

  // Run in slices so a completed job doesn't drag a thousand seconds of
  // idle-VC checkpoints behind it; stopping early never changes the
  // schedule of what did run.
  for (sim::Time t = 100 * sim::kSecond; t <= 1200 * sim::kSecond;
       t += 100 * sim::kSecond) {
    bed.sim.run_until(t);
    // Keep going on failure: the watchdog may still roll the job back.
    if (application->completed()) break;
  }
  // A recovery that was already in flight when the job finished rolls the
  // ranks back and re-runs the tail; give that churn time to settle so the
  // outcome below reflects the final state, not a mid-rerun sample.
  bed.sim.run_until(bed.sim.now() + 150 * sim::kSecond);

  SoakOutcome out;
  out.completed = application->completed();
  out.failed = application->failed();
  out.iter0 = application->rank(0).state().iter;
  out.recoveries = bed.dvc->recoveries_performed();
  out.watchdog = bed.dvc->watchdog_detections();
  out.lsc_retries = bed.metrics.counter_value("ckpt.lsc.round_retries");
  out.faults_injected = bed.metrics.counter_value("fault.injected");
  out.faults_lifted = bed.metrics.counter_value("fault.lifted");
  out.checkpoints = bed.metrics.counter_value("core.dvc.checkpoints");
  return out;
}

TEST(FaultSoakTest, EverySeedCompletesOrDiagnosesItsFailure) {
  std::uint64_t completed = 0;
  std::uint64_t with_faults = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const SoakOutcome out = run_soak(seed);
    // The invariant: no silent hang. Either the job ran to the end or the
    // stack diagnosed a failure it could not recover from.
    ASSERT_TRUE(out.completed || out.failed)
        << "seed " << seed << " hung silently: iter0=" << out.iter0
        << " recoveries=" << out.recoveries << " watchdog=" << out.watchdog
        << " faults=" << out.faults_injected << "/" << out.faults_lifted
        << " checkpoints=" << out.checkpoints;
    if (out.completed) {
      ++completed;
      EXPECT_EQ(out.iter0, 200u) << "seed " << seed;
    } else {
      std::cout << "[soak] seed " << seed << " failed: iter0=" << out.iter0
                << " recoveries=" << out.recoveries
                << " watchdog=" << out.watchdog
                << " lsc_retries=" << out.lsc_retries
                << " faults=" << out.faults_injected << "/"
                << out.faults_lifted << " ckpts=" << out.checkpoints << "\n";
    }
    if (out.faults_injected > 0) ++with_faults;
  }
  // The sweep has teeth: nearly every schedule injects something, and the
  // recovery machinery turns nearly all of them into completions.
  EXPECT_GE(with_faults, kSeeds * 9 / 10);
  EXPECT_GE(completed, kSeeds * 9 / 10);
}

TEST(FaultSoakTest, SameSeedReplaysToTheSameOutcome) {
  for (std::uint64_t seed : {7ull, 21ull, 42ull}) {
    const SoakOutcome first = run_soak(seed);
    const SoakOutcome second = run_soak(seed);
    EXPECT_TRUE(first == second) << "seed " << seed << " not deterministic";
  }
}

}  // namespace
}  // namespace dvc
