#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "tools/sweep.hpp"

// Seeded fault soak, driven through the dvcsweep harness: each campaign is
// one mix of the scenarios/sweep26.scn grid (kept verbatim below), run
// across a worker pool with the invariant checker attached to every cell.
// The core assertion is unchanged from the original hand-rolled loops —
// every schedule either completes or reports a diagnosed failure, never a
// silent hang — and now additionally: zero invariant violations anywhere.
//
// A plain build runs kSeeds schedules per mix and stays fast; a
// -DDVC_SOAK=ON build (ci.sh --soak, under ASan) widens the sweep.

namespace dvc {
namespace {

using tools::CellOutcome;
using tools::CellStatus;
using tools::SweepCell;
using tools::SweepGrid;
using tools::SweepReport;

#ifdef DVC_SOAK
constexpr std::uint64_t kSeeds = 150;
constexpr std::uint64_t kStorageSeeds = 60;
constexpr std::uint64_t kControlSeeds = 45;
#else
constexpr std::uint64_t kSeeds = 50;
constexpr std::uint64_t kStorageSeeds = 20;
constexpr std::uint64_t kControlSeeds = 15;
#endif

// The soak grid — scenarios/sweep26.scn inline (the dvcsweep_grid_scenario
// ctest entry runs the file itself; keep the two in sync).
constexpr const char* kSoakGrid = R"(
clusters = 2
nodes_per_cluster = 5
store_write_mbps = 400
abort_saves_on_failure = true
vc_size = 6
guest_ram_mib = 64

workload = ptrans
pattern = alltoall
msg_bytes = 4096
iterations = 200
iter_seconds = 0.1

checkpoint_interval_s = 15
watchdog_interval_s = 11
lsc.round_timeout_s = 30
lsc.max_round_retries = 2
lsc.retry_backoff_s = 2

horizon_s = 1200
slice_s = 100
settle_s = 150

fault.enabled = true
fault.start_s = 30
fault.horizon_s = 90
fault.node_crash_mtbf_s = 70
fault.node_down_s = 25
fault.link_down_mtbf_s = 120
fault.link_down_s = 15
fault.disk_slow_mtbf_s = 100
fault.disk_slow_s = 30
fault.disk_slow_factor = 4.0
fault.clock_step_mtbf_s = 80
fault.clock_step_ms = 300

sweep.seeds = 1..8
sweep.mixes = faulty durable partition

mix.durable.store_replicas = 1
mix.durable.iterations = 500
mix.durable.checkpoint_interval_s = 25
mix.durable.fault.horizon_s = 150
mix.durable.fault.node_crash_mtbf_s = 28
mix.durable.fault.store_corrupt_mtbf_s = 10
mix.durable.fault.store_tear_mtbf_s = 20
mix.durable.fault.link_down_mtbf_s = 0
mix.durable.fault.disk_slow_mtbf_s = 0
mix.durable.fault.clock_step_mtbf_s = 0

mix.partition.coordinator.head_node = 9
mix.partition.fault.partition_mtbf_s = 110
mix.partition.fault.partition_s = 12
mix.partition.fault.coordinator_crash_mtbf_s = 55
mix.partition.fault.coordinator_down_s = 10
)";

/// Expands the soak grid to one mix's cells over seeds 1..n.
std::vector<SweepCell> mix_cells(const std::string& mix, std::uint64_t n) {
  SweepGrid grid = SweepGrid::load("sweep26.scn", kSoakGrid);
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= n; ++s) seeds.push_back(s);
  grid.set_seeds(seeds);
  std::vector<SweepCell> cells;
  for (SweepCell& c : grid.cells()) {
    if (c.mix == mix) cells.push_back(std::move(c));
  }
  return cells;
}

/// Shared teeth: no silent hangs, no invariant violations, anywhere.
void assert_no_hangs(const SweepReport& report) {
  for (const CellOutcome& o : report.outcomes) {
    ASSERT_TRUE(o.status == CellStatus::kCompleted ||
                o.status == CellStatus::kDiagnosed)
        << o.key << " " << tools::to_string(o.status)
        << (o.error.empty() ? "" : " error=" + o.error)
        << ": iterations=" << o.iterations
        << " recoveries=" << o.recoveries << " watchdog=" << o.watchdog
        << " faults=" << o.faults_injected << "/" << o.faults_lifted
        << " checkpoints=" << o.checkpoints
        << " violations=" << o.violations.size() << " — repro: " << o.repro;
  }
  EXPECT_EQ(report.invariant_violations, 0u);
  EXPECT_EQ(report.wedged, 0u);
}

TEST(FaultSoakTest, EverySeedCompletesOrDiagnosesItsFailure) {
  const std::vector<SweepCell> cells = mix_cells("faulty", kSeeds);
  ASSERT_EQ(cells.size(), kSeeds);
  const SweepReport report = run_sweep(cells, /*jobs=*/2, "sweep26.scn");
  assert_no_hangs(report);

  std::uint64_t with_faults = 0;
  for (const CellOutcome& o : report.outcomes) {
    if (o.status == CellStatus::kCompleted) {
      EXPECT_EQ(o.iterations, 200u) << o.key;
    } else {
      std::cout << "[soak] " << o.key << " diagnosed: iterations="
                << o.iterations << " recoveries=" << o.recoveries
                << " watchdog=" << o.watchdog
                << " lsc_retries=" << o.lsc_retries << " faults="
                << o.faults_injected << "/" << o.faults_lifted
                << " ckpts=" << o.checkpoints << "\n";
    }
    if (o.faults_injected > 0) ++with_faults;
  }
  // The sweep has teeth: nearly every schedule injects something, and the
  // recovery machinery turns nearly all of them into completions.
  EXPECT_GE(with_faults, kSeeds * 9 / 10);
  EXPECT_GE(report.completed, kSeeds * 9 / 10);
}

TEST(FaultSoakTest, SameSeedReplaysToTheSameOutcome) {
  const std::vector<SweepCell> cells = mix_cells("faulty", 42);
  for (const SweepCell& c : cells) {
    if (c.seed != 7 && c.seed != 21 && c.seed != 42) continue;
    const CellOutcome first = tools::run_cell(c);
    const CellOutcome second = tools::run_cell(c);
    EXPECT_EQ(first.to_json(), second.to_json())
        << c.key << " not deterministic";
  }
}

// ---------------------------------------------------------------------------
// The durability mix: corruption and torn-write schedules on top of node
// crashes, against the replicated store and generation fallback. The
// invariant is unchanged — complete or diagnose, never hang — and the
// damage must actually be exercised (verify failures observed across the
// sweep, not silently absorbed).

TEST(FaultSoakTest, StorageFaultSeedsCompleteOrDiagnose) {
  const std::vector<SweepCell> cells = mix_cells("durable", kStorageSeeds);
  ASSERT_EQ(cells.size(), kStorageSeeds);
  const SweepReport report = run_sweep(cells, /*jobs=*/2, "sweep26.scn");
  assert_no_hangs(report);

  std::uint64_t damage_seen = 0;
  std::uint64_t damage_planted = 0;
  for (const CellOutcome& o : report.outcomes) {
    if (o.status == CellStatus::kCompleted) {
      EXPECT_EQ(o.iterations, 500u) << o.key;
    } else {
      // Diagnosed loss is only acceptable when the durability machinery
      // actually ran out of intact generations — never as a default.
      EXPECT_GT(o.abandoned, 0u) << o.key;
      std::cout << "[soak] " << o.key << " diagnosed: verify_failures="
                << o.verify_failures << " failovers=" << o.failovers
                << " fallbacks=" << o.fallbacks
                << " abandoned=" << o.abandoned << "\n";
    }
    if (o.verify_failures > 0) ++damage_seen;
    damage_planted += o.damage_planted;
  }
  // The sweep has teeth: every run plants real damage, and in a steady
  // fraction of seeds a restore reads it back and trips verification
  // (deterministic detection guarantees live in durability_test.cpp; this
  // sweep checks the machinery holds up under randomized schedules).
  EXPECT_GE(damage_planted, kStorageSeeds * 5);
  EXPECT_GE(damage_seen, kStorageSeeds / 10);
  EXPECT_GE(report.completed, kStorageSeeds * 8 / 10);
}

TEST(FaultSoakTest, StorageFaultSeedsReplayDeterministically) {
  const std::vector<SweepCell> cells = mix_cells("durable", 33);
  for (const SweepCell& c : cells) {
    if (c.seed != 5 && c.seed != 13 && c.seed != 33) continue;
    const CellOutcome first = tools::run_cell(c);
    const CellOutcome second = tools::run_cell(c);
    EXPECT_EQ(first.to_json(), second.to_json())
        << c.key << " not deterministic";
  }
}

// ---------------------------------------------------------------------------
// The partition mix: the control plane in the blast radius — network
// partitions and coordinator crashes (including head-node deaths from the
// ordinary crash process) on top of the general schedule. Complete or
// diagnose, never hang: exactly the property the intent WAL, epoch
// fencing, and reboot reconciliation exist to preserve.

TEST(FaultSoakTest, ControlPlaneSeedsCompleteOrDiagnose) {
  const std::vector<SweepCell> cells = mix_cells("partition", kControlSeeds);
  ASSERT_EQ(cells.size(), kControlSeeds);
  const SweepReport report = run_sweep(cells, /*jobs=*/2, "sweep26.scn");
  assert_no_hangs(report);

  std::uint64_t with_outages = 0;
  for (const CellOutcome& o : report.outcomes) {
    // A crashed coordinator always came back: no schedule ends headless.
    EXPECT_EQ(o.coordinator_crashes, o.coordinator_reboots) << o.key;
    if (o.status == CellStatus::kCompleted) {
      EXPECT_EQ(o.iterations, 200u) << o.key;
    } else {
      std::cout << "[soak] " << o.key << " diagnosed: recoveries="
                << o.recoveries << " coordinator=" << o.coordinator_crashes
                << "/" << o.coordinator_reboots
                << " stale=" << o.stale_completions
                << " orphans=" << o.orphans_swept << "\n";
    }
    if (o.coordinator_crashes > 0) ++with_outages;
  }
  // The sweep has teeth: most schedules take the coordinator down at
  // least once, and the reboot machinery still lands the jobs.
  EXPECT_GE(with_outages, kControlSeeds / 2);
  EXPECT_GE(report.completed, kControlSeeds * 7 / 10);
}

TEST(FaultSoakTest, ControlPlaneSeedsReplayDeterministically) {
  const std::vector<SweepCell> cells = mix_cells("partition", 26);
  for (const SweepCell& c : cells) {
    if (c.seed != 3 && c.seed != 11 && c.seed != 26) continue;
    const CellOutcome first = tools::run_cell(c);
    const CellOutcome second = tools::run_cell(c);
    EXPECT_EQ(first.to_json(), second.to_json())
        << c.key << " not deterministic";
  }
}

}  // namespace
}  // namespace dvc
