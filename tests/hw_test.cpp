#include <gtest/gtest.h>

#include <vector>

#include "hw/cluster.hpp"
#include "sim/simulation.hpp"

namespace dvc::hw {
namespace {

TEST(FabricTest, BuildsClustersWithSequentialNodeIds) {
  sim::Simulation s;
  Fabric f(s, {});
  const ClusterId c0 = f.add_cluster("alpha", 3);
  const ClusterId c1 = f.add_cluster("beta", 2);
  EXPECT_EQ(c0, 0u);
  EXPECT_EQ(c1, 1u);
  EXPECT_EQ(f.node_count(), 5u);
  EXPECT_EQ(f.cluster(c0).nodes, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(f.cluster(c1).nodes, (std::vector<NodeId>{3, 4}));
  EXPECT_EQ(f.cluster(c1).name, "beta");
  EXPECT_EQ(f.node(3).cluster(), c1);
}

TEST(FabricTest, NodeSpecIsApplied) {
  sim::Simulation s;
  Fabric f(s, {});
  NodeSpec spec;
  spec.flops = 5e9;
  spec.ram_bytes = 8ull << 30;
  f.add_cluster("a", 1, spec);
  EXPECT_DOUBLE_EQ(f.node(0).spec().flops, 5e9);
  EXPECT_EQ(f.node(0).spec().ram_bytes, 8ull << 30);
}

TEST(FabricTest, EachNodeHasDistinctNetworkHost) {
  sim::Simulation s;
  Fabric f(s, {});
  f.add_cluster("a", 4);
  EXPECT_NE(f.node(0).host(), f.node(1).host());
  EXPECT_TRUE(f.network().host_up(f.node(3).host()));
}

TEST(FabricTest, FailTakesNodeOffFabricAndNotifies) {
  sim::Simulation s;
  Fabric f(s, {});
  f.add_cluster("a", 3);
  std::vector<NodeId> failures;
  f.subscribe_failures([&](NodeId n) { failures.push_back(n); });
  f.fail_node(1);
  EXPECT_TRUE(f.node(1).failed());
  EXPECT_FALSE(f.network().host_up(f.node(1).host()));
  EXPECT_EQ(failures, (std::vector<NodeId>{1}));
  EXPECT_EQ(f.healthy_nodes(), (std::vector<NodeId>{0, 2}));
  // Double-fail is idempotent.
  f.fail_node(1);
  EXPECT_EQ(failures.size(), 1u);
  EXPECT_EQ(f.failures_injected(), 1u);
}

TEST(FabricTest, RepairRestoresNode) {
  sim::Simulation s;
  Fabric f(s, {});
  f.add_cluster("a", 2);
  f.fail_node(0);
  f.repair_node(0);
  EXPECT_FALSE(f.node(0).failed());
  EXPECT_TRUE(f.network().host_up(f.node(0).host()));
  EXPECT_EQ(f.healthy_nodes().size(), 2u);
}

TEST(FabricTest, HealthyNodesPerCluster) {
  sim::Simulation s;
  Fabric f(s, {});
  f.add_cluster("a", 2);
  f.add_cluster("b", 2);
  f.fail_node(2);
  EXPECT_EQ(f.healthy_nodes(0).size(), 2u);
  EXPECT_EQ(f.healthy_nodes(1), (std::vector<NodeId>{3}));
}

TEST(FabricTest, RandomFailuresFollowMtbf) {
  sim::Simulation s;
  Fabric f(s, {});
  f.add_cluster("a", 50);
  f.arm_random_failures(100 * sim::kHour);
  s.run_until(10 * sim::kHour);
  // Expected failures ~ 50 nodes * 10h / 100h = 5.
  EXPECT_GT(f.failures_injected(), 0u);
  EXPECT_LT(f.failures_injected(), 20u);
  EXPECT_THROW(f.arm_random_failures(0), std::invalid_argument);
}

TEST(FabricTest, PredictionsFireBeforeTheFault) {
  sim::Simulation s;
  Fabric f(s, {});
  f.add_cluster("a", 3);
  std::vector<std::pair<NodeId, sim::Duration>> predictions;
  f.subscribe_predictions([&](NodeId n, sim::Duration lead) {
    predictions.push_back({n, lead});
  });
  f.predict_failure(1, 30 * sim::kSecond);
  ASSERT_EQ(predictions.size(), 1u);
  EXPECT_EQ(predictions[0].first, 1u);
  EXPECT_EQ(predictions[0].second, 30 * sim::kSecond);
  EXPECT_FALSE(f.node(1).failed());  // warning only, so far
  s.run_until(29 * sim::kSecond);
  EXPECT_FALSE(f.node(1).failed());
  s.run_until(31 * sim::kSecond);
  EXPECT_TRUE(f.node(1).failed());
  EXPECT_EQ(f.failures_predicted(), 1u);
}

TEST(FabricTest, RandomFailuresCanBePartiallyPredicted) {
  sim::Simulation s;
  Fabric f(s, {});
  f.add_cluster("a", 40);
  int predictions = 0;
  f.subscribe_predictions([&](NodeId, sim::Duration) { ++predictions; });
  f.arm_random_failures(50 * sim::kHour, /*predicted_fraction=*/0.5,
                        /*prediction_lead=*/60 * sim::kSecond);
  s.run_until(20 * sim::kHour);
  EXPECT_GT(f.failures_injected(), 0u);
  EXPECT_GT(predictions, 0);
  EXPECT_LT(static_cast<std::uint64_t>(predictions),
            f.failures_injected() + 1);
}

TEST(FabricTest, LinkModelRoutesIntraVsInterCluster) {
  sim::Simulation s;
  Fabric::Config cfg;
  cfg.links.intra = {10 * sim::kMicrosecond, 0, 0.0, 1e9};
  cfg.links.inter = {5 * sim::kMillisecond, 0, 0.0, 1e7};
  Fabric f(s, cfg);
  f.add_cluster("a", 2);
  f.add_cluster("b", 1);
  sim::Rng rng(1);
  EXPECT_EQ(f.links().latency(f.node(0).host(), f.node(1).host(), rng),
            10 * sim::kMicrosecond);
  EXPECT_EQ(f.links().latency(f.node(0).host(), f.node(2).host(), rng),
            5 * sim::kMillisecond);
}

}  // namespace
}  // namespace dvc::hw
