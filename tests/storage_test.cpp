#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "storage/bandwidth_pool.hpp"
#include "storage/image_manager.hpp"
#include "storage/shared_store.hpp"

namespace dvc::storage {
namespace {

TEST(BandwidthPoolTest, SingleTransferTakesBytesOverRate) {
  sim::Simulation s;
  BandwidthPool pool(s, 100.0);  // 100 bytes/s
  bool done = false;
  pool.start(200, [&] { done = true; });
  s.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(sim::to_seconds(s.now()), 2.0, 0.01);
  EXPECT_EQ(pool.completed(), 1u);
}

TEST(BandwidthPoolTest, ConcurrentTransfersShareFairly) {
  sim::Simulation s;
  BandwidthPool pool(s, 100.0);
  std::vector<double> finish(2, 0.0);
  pool.start(100, [&] { finish[0] = sim::to_seconds(s.now()); });
  pool.start(100, [&] { finish[1] = sim::to_seconds(s.now()); });
  s.run();
  // Two equal transfers at half rate each: both end at 2 s, not 1 s.
  EXPECT_NEAR(finish[0], 2.0, 0.01);
  EXPECT_NEAR(finish[1], 2.0, 0.01);
}

TEST(BandwidthPoolTest, ShortTransferLeavesLongOneToSpeedUp) {
  sim::Simulation s;
  BandwidthPool pool(s, 100.0);
  double short_done = 0.0;
  double long_done = 0.0;
  pool.start(50, [&] { short_done = sim::to_seconds(s.now()); });
  pool.start(150, [&] { long_done = sim::to_seconds(s.now()); });
  s.run();
  // Shared until t=1 (50 bytes each), then the long one gets full rate:
  // 100 remaining bytes at 100 B/s -> finishes at t=2.
  EXPECT_NEAR(short_done, 1.0, 0.01);
  EXPECT_NEAR(long_done, 2.0, 0.01);
}

TEST(BandwidthPoolTest, LateArrivalSlowsTheFirst) {
  sim::Simulation s;
  BandwidthPool pool(s, 100.0);
  double first_done = 0.0;
  pool.start(100, [&] { first_done = sim::to_seconds(s.now()); });
  s.schedule_after(sim::from_seconds(0.5), [&] {
    pool.start(1000, [] {});
  });
  s.run();
  // 50 bytes in the first 0.5 s alone, remaining 50 at half rate -> 1 s
  // more: finishes at 1.5 s.
  EXPECT_NEAR(first_done, 1.5, 0.01);
}

TEST(BandwidthPoolTest, CancelRemovesTransfer) {
  sim::Simulation s;
  BandwidthPool pool(s, 100.0);
  bool cancelled_fired = false;
  double other_done = 0.0;
  const TransferId id = pool.start(1000, [&] { cancelled_fired = true; });
  pool.start(100, [&] { other_done = sim::to_seconds(s.now()); });
  s.schedule_after(sim::from_seconds(0.1), [&] {
    EXPECT_TRUE(pool.cancel(id));
    EXPECT_FALSE(pool.cancel(id));
  });
  s.run();
  EXPECT_FALSE(cancelled_fired);
  // 5 bytes in the shared 0.1 s, then full rate: 95/100 -> done at 1.05 s.
  EXPECT_NEAR(other_done, 1.05, 0.01);
}

TEST(BandwidthPoolTest, NSaversContendLinearly) {
  sim::Simulation s;
  BandwidthPool pool(s, 1000.0);
  int done = 0;
  for (int i = 0; i < 26; ++i) {
    pool.start(1000, [&] { ++done; });
  }
  s.run();
  EXPECT_EQ(done, 26);
  // 26 x 1000 bytes through a 1000 B/s pipe: 26 s total.
  EXPECT_NEAR(sim::to_seconds(s.now()), 26.0, 0.1);
  EXPECT_NEAR(sim::to_seconds(pool.uncontended_time(1000)), 1.0, 1e-9);
}

class PoolConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PoolConservation, WorkConservingUnderRandomArrivals) {
  // Property: a processor-sharing pool is work-conserving — with no idle
  // gaps, the last completion lands exactly at total_bytes / capacity,
  // regardless of arrival pattern inside the busy period.
  sim::Simulation s;
  BandwidthPool pool(s, 1000.0);
  sim::Rng rng(GetParam());
  double total = 0.0;
  int done = 0;
  int started = 0;
  // First transfer at t=0 is big enough to keep the pool busy while the
  // others trickle in.
  const double first = 50000.0;
  total += first;
  pool.start(static_cast<std::uint64_t>(first), [&] { ++done; });
  ++started;
  for (int i = 0; i < 20; ++i) {
    const double bytes = 100.0 + rng.uniform() * 2000.0;
    const sim::Duration at = sim::from_seconds(rng.uniform() * 40.0);
    total += bytes;
    ++started;
    s.schedule_at(at, [&pool, bytes, &done] {
      pool.start(static_cast<std::uint64_t>(bytes), [&] { ++done; });
    });
  }
  s.run();
  EXPECT_EQ(done, started);
  EXPECT_NEAR(sim::to_seconds(s.now()), total / 1000.0, 0.05 * started);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolConservation,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 12345));

TEST(SharedStoreTest, WriteThenReadVerifiesChecksum) {
  sim::Simulation s;
  SharedStore store(s, {});
  ObjectId id = kInvalidObject;
  store.write_object("img", 1 << 20, synthetic_checksum(1, 2, 3),
                     [&](ObjectId oid) { id = oid; });
  s.run();
  ASSERT_NE(id, kInvalidObject);
  const auto info = store.info(id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->bytes, 1u << 20);
  ReadError err = ReadError::kNotFound;
  store.read_object(id, [&](ReadError r) { err = r; });
  s.run();
  EXPECT_EQ(err, ReadError::kOk);
}

TEST(SharedStoreTest, ReadOfMissingObjectFails) {
  sim::Simulation s;
  SharedStore store(s, {});
  ReadError err = ReadError::kOk;
  store.read_object(12345, [&](ReadError r) { err = r; });
  s.run();
  EXPECT_EQ(err, ReadError::kNotFound);
}

TEST(SharedStoreTest, CorruptionIsDetectedOnRead) {
  sim::Simulation s;
  SharedStore store(s, {});
  ObjectId id = kInvalidObject;
  store.write_object("img", 1 << 20, synthetic_checksum(7, 7, 7),
                     [&](ObjectId oid) { id = oid; });
  s.run();
  ASSERT_TRUE(store.corrupt_object(id));
  ReadError err = ReadError::kOk;
  store.read_object(id, [&](ReadError r) { err = r; });
  s.run();
  EXPECT_EQ(err, ReadError::kChecksumMismatch);
  // Corruption is silent at rest: the object still lists as present.
  EXPECT_TRUE(store.info(id).has_value());
}

TEST(SharedStoreTest, TornWriteCompletesSilentlyButFailsVerify) {
  sim::Simulation s;
  SharedStore store(s, {});
  ObjectId id = kInvalidObject;
  store.write_object("img", 8 << 20, synthetic_checksum(1, 1, 1),
                     [&](ObjectId oid) { id = oid; });
  // Kill the store mid-write: the writer still gets a completion (it
  // cannot know the fsync never landed) ...
  s.schedule_after(sim::from_seconds(0.01),
                   [&] { EXPECT_EQ(store.tear_inflight_writes(), 1u); });
  s.run();
  ASSERT_NE(id, kInvalidObject);
  ASSERT_TRUE(store.info(id).has_value());
  EXPECT_TRUE(store.info(id)->torn);
  // ... and the damage only surfaces at the next verified read.
  ReadError err = ReadError::kOk;
  store.read_object(id, [&](ReadError r) { err = r; });
  s.run();
  EXPECT_EQ(err, ReadError::kTorn);
}

TEST(SharedStoreTest, TearWithNothingInFlightIsANoOp) {
  sim::Simulation s;
  SharedStore store(s, {});
  store.write_object("img", 1000, 1, [](ObjectId) {});
  s.run();  // write completes cleanly first
  EXPECT_EQ(store.tear_inflight_writes(), 0u);
}

TEST(SharedStoreTest, NthNewestTargetsMostRecentWrites) {
  sim::Simulation s;
  SharedStore store(s, {});
  std::vector<ObjectId> ids;
  for (int i = 0; i < 3; ++i) {
    store.write_object("img", 1000, 1, [&](ObjectId oid) {
      ids.push_back(oid);
    });
    s.run();
  }
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(store.nth_newest_object(0), ids[2]);
  EXPECT_EQ(store.nth_newest_object(2), ids[0]);
  EXPECT_EQ(store.nth_newest_object(3), kInvalidObject);
}

TEST(SharedStoreTest, RemoveReclaimsBytes) {
  sim::Simulation s;
  SharedStore store(s, {});
  const ObjectId id = store.put_object("base", 500, 1);
  EXPECT_EQ(store.bytes_stored(), 500u);
  EXPECT_TRUE(store.remove_object(id));
  EXPECT_EQ(store.bytes_stored(), 0u);
  EXPECT_FALSE(store.remove_object(id));
  EXPECT_EQ(store.object_count(), 0u);
}

TEST(SharedStoreTest, WriteTimeReflectsBandwidthAndOverhead) {
  sim::Simulation s;
  SharedStore::Config cfg;
  cfg.write_bps = 1e6;
  cfg.op_overhead = 10 * sim::kMillisecond;
  SharedStore store(s, cfg);
  store.write_object("x", 1'000'000, 0, [](ObjectId) {});
  s.run();
  EXPECT_NEAR(sim::to_seconds(s.now()), 1.01, 0.02);
  EXPECT_EQ(store.write_time_stats().count(), 1u);
}

TEST(SharedStoreTest, ChecksumIsDeterministicAndDiscriminates) {
  EXPECT_EQ(synthetic_checksum(1, 2, 3), synthetic_checksum(1, 2, 3));
  EXPECT_NE(synthetic_checksum(1, 2, 3), synthetic_checksum(1, 2, 4));
  EXPECT_NE(synthetic_checksum(1, 2, 3), synthetic_checksum(3, 2, 1));
}

TEST(ImageManagerTest, BaseImagesAreFindable) {
  sim::Simulation s;
  SharedStore store(s, {});
  ImageManager mgr(store);
  const ObjectId id = mgr.register_base_image("debian-hpc", 2ull << 30);
  EXPECT_EQ(mgr.find_base_image("debian-hpc"), std::optional(id));
  EXPECT_FALSE(mgr.find_base_image("missing").has_value());
}

TEST(ImageManagerTest, SetSealsWhenAllMembersDurable) {
  sim::Simulation s;
  SharedStore store(s, {});
  ImageManager mgr(store);
  const CheckpointSetId set = mgr.open_set("vc1", 3);
  bool sealed = false;
  mgr.on_sealed(set, [&] { sealed = true; });
  for (std::uint64_t m = 0; m < 3; ++m) mgr.add_member(set, m, 1000);
  s.run();
  EXPECT_TRUE(sealed);
  const CheckpointSet* cs = mgr.find_set(set);
  ASSERT_NE(cs, nullptr);
  EXPECT_TRUE(cs->sealed);
  EXPECT_EQ(cs->members.size(), 3u);
  EXPECT_EQ(cs->total_bytes(), 3000u);
}

TEST(ImageManagerTest, PartialSetNeverSeals) {
  sim::Simulation s;
  SharedStore store(s, {});
  ImageManager mgr(store);
  const CheckpointSetId set = mgr.open_set("vc1", 3);
  mgr.add_member(set, 0, 1000);
  mgr.add_member(set, 1, 1000);
  s.run();
  EXPECT_FALSE(mgr.find_set(set)->sealed);
  EXPECT_EQ(mgr.latest_sealed("vc1"), nullptr);
}

TEST(ImageManagerTest, AbortGarbageCollectsMembers) {
  sim::Simulation s;
  SharedStore store(s, {});
  ImageManager mgr(store);
  const CheckpointSetId set = mgr.open_set("vc1", 2);
  mgr.add_member(set, 0, 1000);
  s.run();
  mgr.abort_set(set);
  EXPECT_TRUE(mgr.find_set(set)->aborted);
  EXPECT_EQ(store.bytes_stored(), 0u);
  // A member landing after the abort is dropped too.
  mgr.add_member(set, 1, 1000);
  s.run();
  EXPECT_EQ(store.bytes_stored(), 0u);
  EXPECT_FALSE(mgr.find_set(set)->sealed);
}

TEST(ImageManagerTest, LatestSealedPicksNewest) {
  sim::Simulation s;
  SharedStore store(s, {});
  ImageManager mgr(store);
  const auto s1 = mgr.open_set("vc", 1);
  const auto s2 = mgr.open_set("vc", 1);
  const auto other = mgr.open_set("other", 1);
  mgr.add_member(s1, 0, 10);
  mgr.add_member(s2, 0, 20);
  mgr.add_member(other, 0, 30);
  s.run();
  ASSERT_NE(mgr.latest_sealed("vc"), nullptr);
  EXPECT_EQ(mgr.latest_sealed("vc")->id, s2);
  EXPECT_EQ(mgr.latest_sealed("other")->id, other);
}

TEST(ImageManagerTest, StageSetReadsEveryMember) {
  sim::Simulation s;
  SharedStore store(s, {});
  ImageManager mgr(store);
  const auto set = mgr.open_set("vc", 4);
  for (std::uint64_t m = 0; m < 4; ++m) mgr.add_member(set, m, 1 << 20);
  s.run();
  bool staged = false;
  bool ok = false;
  mgr.stage_set(set, [&](bool r) {
    staged = true;
    ok = r;
  });
  s.run();
  EXPECT_TRUE(staged);
  EXPECT_TRUE(ok);
}

TEST(ImageManagerTest, StageOfUnsealedSetFails) {
  sim::Simulation s;
  SharedStore store(s, {});
  ImageManager mgr(store);
  const auto set = mgr.open_set("vc", 2);
  mgr.add_member(set, 0, 100);
  s.run();
  bool ok = true;
  mgr.stage_set(set, [&](bool r) { ok = r; });
  s.run();
  EXPECT_FALSE(ok);
}

TEST(ImageManagerTest, ReplicationCopiesMembersWithoutGatingSeal) {
  sim::Simulation s;
  SharedStore store(s, {});
  SharedStore replica(s, {});
  ImageManager mgr(store);
  mgr.add_replica(replica);
  ASSERT_EQ(mgr.replica_count(), 1u);
  const auto set = mgr.open_set("vc", 2);
  bool sealed = false;
  mgr.on_sealed(set, [&] { sealed = true; });
  mgr.add_member(set, 0, 1 << 20);
  mgr.add_member(set, 1, 1 << 20);
  s.run();
  EXPECT_TRUE(sealed);
  // Both the primary and the replica hold every member's bytes.
  EXPECT_EQ(store.bytes_stored(), 2u << 20);
  EXPECT_EQ(replica.bytes_stored(), 2u << 20);
  for (const auto& m : mgr.find_set(set)->members) {
    ASSERT_EQ(m.replicas.size(), 1u);
    EXPECT_NE(m.replicas[0], kInvalidObject);
  }
}

TEST(ImageManagerTest, ReadMemberFailsOverToReplicaOnPrimaryDamage) {
  sim::Simulation s;
  SharedStore store(s, {});
  SharedStore replica(s, {});
  ImageManager mgr(store);
  mgr.add_replica(replica);
  const auto set = mgr.open_set("vc", 1);
  mgr.add_member(set, 0, 1 << 20);
  s.run();  // primary write + async replica copy both land
  ASSERT_TRUE(store.corrupt_object(mgr.find_set(set)->members[0].object));
  bool ok = false;
  mgr.read_member(set, 0, [&](bool r) { ok = r; });
  s.run();
  EXPECT_TRUE(ok);  // the replica masked the bit rot
  EXPECT_FALSE(mgr.find_set(set)->damaged);
}

TEST(ImageManagerTest, SetDamagedWhenEveryCopyFailsVerification) {
  sim::Simulation s;
  SharedStore store(s, {});
  SharedStore replica(s, {});
  ImageManager mgr(store);
  mgr.add_replica(replica);
  const auto set = mgr.open_set("vc", 1);
  mgr.add_member(set, 0, 1 << 20);
  s.run();
  const MemberImage& m = mgr.find_set(set)->members[0];
  ASSERT_TRUE(store.corrupt_object(m.object));
  ASSERT_TRUE(replica.corrupt_object(m.replicas[0]));
  bool ok = true;
  mgr.read_member(set, 0, [&](bool r) { ok = r; });
  s.run();
  EXPECT_FALSE(ok);
  EXPECT_TRUE(mgr.find_set(set)->damaged);
}

TEST(ImageManagerTest, DiscardReclaimsReplicaObjectsToo) {
  sim::Simulation s;
  SharedStore store(s, {});
  SharedStore replica(s, {});
  ImageManager mgr(store);
  mgr.add_replica(replica);
  const auto set = mgr.open_set("vc", 2);
  mgr.add_member(set, 0, 1000);
  mgr.add_member(set, 1, 1000);
  s.run();
  ASSERT_GT(replica.bytes_stored(), 0u);
  mgr.discard_set(set);
  EXPECT_EQ(store.bytes_stored(), 0u);
  EXPECT_EQ(replica.bytes_stored(), 0u);
}

TEST(ImageManagerTest, PruneKeepsNewestSets) {
  sim::Simulation s;
  SharedStore store(s, {});
  ImageManager mgr(store);
  std::vector<CheckpointSetId> sets;
  for (int i = 0; i < 5; ++i) {
    const auto set = mgr.open_set("vc", 1);
    mgr.add_member(set, 0, 100);
    sets.push_back(set);
  }
  s.run();
  const std::uint64_t reclaimed = mgr.prune("vc", 2);
  EXPECT_EQ(reclaimed, 300u);
  EXPECT_EQ(mgr.find_set(sets[0]), nullptr);
  EXPECT_EQ(mgr.find_set(sets[2]), nullptr);
  ASSERT_NE(mgr.find_set(sets[3]), nullptr);
  ASSERT_NE(mgr.find_set(sets[4]), nullptr);
  EXPECT_EQ(mgr.latest_sealed("vc")->id, sets[4]);
  // Pruning again with everything already within budget is a no-op.
  EXPECT_EQ(mgr.prune("vc", 2), 0u);
}

}  // namespace
}  // namespace dvc::storage
