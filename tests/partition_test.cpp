#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "app/workload.hpp"
#include "ckpt/lsc.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "testbed.hpp"

namespace dvc {
namespace {

using test::TestBed;
using test::TestBedOptions;

app::WorkloadSpec chatty_job(app::RankId ranks, std::uint32_t iters) {
  app::WorkloadSpec s;
  s.name = "partition-test";
  s.ranks = ranks;
  s.iterations = iters;
  s.flops_per_rank_iter = 1e9;  // ~0.1 s of compute per iteration
  s.pattern = app::Pattern::kAllToAll;
  s.bytes_per_msg = 4096;
  return s;
}

/// A VC + application + auto-recovery stack whose control plane is itself
/// a fault domain: the DVC coordinator runs on a designated head node,
/// journals intents, and fences its commands with the coordinator epoch.
struct CoordStack {
  CoordStack(std::uint32_t clusters, std::uint32_t nodes_per_cluster,
             std::uint32_t vc_size, std::uint32_t iters,
             core::DvcManager::RecoveryPolicy base_policy,
             hw::NodeId head, std::uint64_t seed = 26)
      : bed(make_options(clusters, nodes_per_cluster, seed)),
        lsc(bed.sim, {}, sim::Rng(seed ^ 0x15C)) {
    lsc.set_metrics(&bed.metrics);
    core::VcSpec spec;
    spec.name = "coord-vc";
    spec.size = vc_size;
    spec.guest.ram_bytes = 128ull << 20;
    vc = &bed.dvc->create_vc(spec, *bed.dvc->pick_nodes(vc_size), {});
    bed.dvc->designate_head_node(head);
    bed.sim.run_until(20 * sim::kSecond);  // boot completes at 15 s
    application = std::make_unique<app::ParallelApp>(
        bed.sim, bed.fabric.network(), vc->contexts(),
        chatty_job(vc_size, iters));
    bed.dvc->attach_app(*vc, *application);
    application->start();
    base_policy.coordinator = &lsc;
    bed.dvc->enable_auto_recovery(*vc, base_policy);
  }

  static TestBedOptions make_options(std::uint32_t clusters,
                                     std::uint32_t nodes_per_cluster,
                                     std::uint64_t seed) {
    TestBedOptions o;
    o.clusters = clusters;
    o.nodes_per_cluster = nodes_per_cluster;
    o.seed = seed;
    o.store.write_bps = 200e6;
    o.store.read_bps = 400e6;
    o.hv.abort_saves_on_failure = true;
    return o;
  }

  TestBed bed;
  ckpt::NtpLscCoordinator lsc;
  core::VirtualCluster* vc = nullptr;
  std::unique_ptr<app::ParallelApp> application;
};

core::DvcManager::RecoveryPolicy manual_rounds_policy() {
  core::DvcManager::RecoveryPolicy p;
  p.interval = 300 * sim::kSecond;  // periodic rounds out of the way
  return p;
}

// ---------------------------------------------------------------------------
// Crash the coordinator at every phase of an LSC round — before the
// guests freeze, mid-save, just before the seal, and after the seal. In
// every case the control plane must come back consistent: the deposed
// round's set is either the (single) recovery point or swept as an
// orphan, a fresh round succeeds afterwards, and the job keeps running.

TEST(CoordinatorRecoveryTest, CrashAtEveryRoundPhaseEndsConsistent) {
  // A round at 30 s: guests freeze at ~32 s (NTP lead), the 8 x 128 MiB
  // set drains for ~5 s after that and seals at ~37.5 s.
  const double phases[] = {30.5, 33.0, 36.0, 40.0};
  for (const double crash_s : phases) {
    SCOPED_TRACE("coordinator crash at " + std::to_string(crash_s) + " s");
    CoordStack s(/*clusters=*/1, /*nodes=*/12, /*vc=*/8, /*iters=*/3000,
                 manual_rounds_policy(), /*head=*/11);

    std::optional<ckpt::LscResult> first;
    s.bed.sim.schedule_at(30 * sim::kSecond, [&] {
      s.bed.dvc->checkpoint_vc(*s.vc, s.lsc,
                               [&](ckpt::LscResult r) { first = r; });
    });
    s.bed.sim.schedule_at(
        static_cast<sim::Time>(crash_s * sim::kSecond),
        [&] { s.bed.dvc->crash_coordinator(10 * sim::kSecond); });

    s.bed.sim.run_until(100 * sim::kSecond);
    EXPECT_TRUE(s.bed.dvc->coordinator_up());
    EXPECT_EQ(s.bed.dvc->coordinator_crashes(), 1u);
    EXPECT_EQ(s.bed.dvc->coordinator_reboots(), 1u);
    // The round's completion either reached the issuing incarnation
    // (post-seal crash) or was dropped at the door as stale.
    EXPECT_TRUE(first.has_value() ||
                s.bed.dvc->stale_completions() >= 1u);

    // The rebooted incarnation is fully operational: a fresh round seals
    // and becomes *the* recovery point — the deposed round's set (whose
    // app snapshots died with the old coordinator) cannot shadow it.
    std::optional<ckpt::LscResult> second;
    s.bed.dvc->checkpoint_vc(*s.vc, s.lsc,
                             [&](ckpt::LscResult r) { second = r; });
    s.bed.sim.run_until(160 * sim::kSecond);
    ASSERT_TRUE(second.has_value());
    EXPECT_TRUE(second->ok);
    const storage::CheckpointSet* latest =
        s.bed.images.latest_sealed(s.vc->checkpoint_label());
    ASSERT_NE(latest, nullptr);
    EXPECT_EQ(latest->id, second->set);

    // Every journalled intent was either completed or resolved by the
    // reboot's reconciliation pass — nothing half-open remains.
    EXPECT_GT(s.bed.metrics.counter_value("core.dvc.wal_appends"), 0u);
    ASSERT_NE(s.bed.dvc->intent_log(), nullptr);
    EXPECT_TRUE(s.bed.dvc->intent_log()->open_intents().empty());

    // The application survived the whole episode and makes progress.
    EXPECT_FALSE(s.application->failed());
    const auto iter_then = s.application->rank(0).state().iter;
    s.bed.sim.run_until(190 * sim::kSecond);
    EXPECT_GT(s.application->rank(0).state().iter, iter_then);
  }
}

// ---------------------------------------------------------------------------
// Split-brain fencing: commands stamped with a deposed incarnation's
// epoch are rejected at both enforcement points — the image store and the
// hypervisors — and counted in telemetry.

TEST(CoordinatorRecoveryTest, DeposedEpochIsFencedAtStoreAndHypervisor) {
  CoordStack s(/*clusters=*/1, /*nodes=*/12, /*vc=*/4, /*iters=*/3000,
               manual_rounds_policy(), /*head=*/11);
  const std::uint64_t deposed = s.bed.dvc->coordinator_epoch();
  EXPECT_EQ(deposed, s.bed.fence.current());

  // Capture save targets stamped with the current epoch, then depose that
  // incarnation: crash + reboot advances the fence.
  std::vector<ckpt::SaveTarget> stale = s.bed.dvc->save_targets(*s.vc);
  ASSERT_FALSE(stale.empty());
  EXPECT_EQ(stale.front().epoch, deposed);
  s.bed.dvc->crash_coordinator(sim::kSecond);
  s.bed.sim.run_until(60 * sim::kSecond);  // reboot waits the lease out
  ASSERT_TRUE(s.bed.dvc->coordinator_up());
  EXPECT_GT(s.bed.dvc->coordinator_epoch(), deposed);

  // Store fencing: a stale-epoch open yields no set.
  EXPECT_EQ(s.bed.images.open_set("stale-round", 4, deposed),
            storage::kInvalidCheckpointSet);
  EXPECT_GE(s.bed.metrics.counter_value("storage.images.fenced_writes"), 1u);

  // Hypervisor fencing: a stale-epoch save is rejected before the guest
  // is even paused.
  const storage::CheckpointSetId live = s.bed.images.open_set(
      "fence-probe", 1, s.bed.fence.current());
  ASSERT_NE(live, storage::kInvalidCheckpointSet);
  std::optional<bool> saved;
  stale.front().hypervisor->save_domain(
      *stale.front().machine, s.bed.images, live, 0,
      [&](bool ok, std::any) { saved = ok; }, false, deposed);
  s.bed.sim.run_until(70 * sim::kSecond);
  ASSERT_TRUE(saved.has_value());
  EXPECT_FALSE(*saved);
  EXPECT_GE(s.bed.metrics.counter_value("vm.hypervisor.fenced_commands"),
            1u);
  EXPECT_EQ(stale.front().machine->state(), vm::DomainState::kRunning);

  // A whole LSC round driven with the deposed targets aborts cleanly at
  // the store fence without freezing a single guest.
  std::optional<ckpt::LscResult> r;
  s.lsc.checkpoint(s.vc->checkpoint_label(), stale, s.bed.images,
                   [&](ckpt::LscResult res) { r = res; });
  s.bed.sim.run_until(90 * sim::kSecond);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->ok);
  EXPECT_TRUE(r->aborted_cleanly);
  EXPECT_FALSE(s.application->failed());
}

// ---------------------------------------------------------------------------
// A partition cuts only traffic crossing the cut; each side keeps its
// intra-side links. A cut shorter than the transport retry budget
// (~12.6 s at the default config) is masked by retransmission: the
// spanning job never notices.

TEST(PartitionTest, ShortPartitionIsMaskedByRetransmission) {
  // 8 ranks over 6-node clusters: the VC necessarily spans both.
  CoordStack s(/*clusters=*/2, /*nodes=*/6, /*vc=*/8, /*iters=*/3000,
               manual_rounds_policy(), /*head=*/0);
  fault::FaultInjector injector(
      s.bed.sim,
      fault::FaultInjector::Hooks{&s.bed.fabric, &s.bed.store,
                                  s.bed.time.get(), {}, {}},
      &s.bed.metrics);
  injector.arm(fault::FaultPlan::parse_script("40 partition 0|1 8"));

  // Mid-window: cross-cut traffic drops both ways, intra-side flows.
  s.bed.sim.schedule_at(44 * sim::kSecond, [&] {
    net::ClusterLinkModel& links = s.bed.fabric.links();
    EXPECT_DOUBLE_EQ(links.loss_probability(0, 6), 1.0);
    EXPECT_DOUBLE_EQ(links.loss_probability(6, 0), 1.0);
    EXPECT_DOUBLE_EQ(links.loss_probability(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(links.loss_probability(6, 7), 0.0);
  });

  s.bed.sim.run_until(120 * sim::kSecond);
  EXPECT_EQ(injector.injected(fault::FaultKind::kPartition), 1u);
  EXPECT_EQ(injector.lifted_total(), 1u);
  // 8 s < the ~12.6 s retry budget: no endpoint aborted, no recovery ran,
  // the job just stalled across the cut and caught up.
  EXPECT_EQ(s.bed.metrics.counter_value("net.endpoint.aborts"), 0u);
  EXPECT_EQ(s.bed.dvc->recoveries_performed(), 0u);
  EXPECT_FALSE(s.application->failed());
  const auto iter_then = s.application->rank(0).state().iter;
  s.bed.sim.run_until(150 * sim::kSecond);
  EXPECT_GT(s.application->rank(0).state().iter, iter_then);
}

// ---------------------------------------------------------------------------
// migrate_vc failure paths: a death between the save-and-hold and the
// restore must end in "resumed from the held checkpoint" or a diagnosed
// failure — never a silent wedge.

TEST(MigrateFailureTest, TargetNodeDeathMidMigrationNeverWedges) {
  core::DvcManager::RecoveryPolicy policy = manual_rounds_policy();
  policy.watchdog_interval = 10 * sim::kSecond;
  CoordStack s(/*clusters=*/1, /*nodes=*/12, /*vc=*/4, /*iters=*/3000,
               policy, /*head=*/11);

  // Migrate onto 6..9; node 7 dies while the held images are moving
  // (saves drain ~32–34.7 s, staging follows).
  std::optional<bool> migrated;
  s.bed.sim.schedule_at(30 * sim::kSecond, [&] {
    s.bed.dvc->migrate_vc(*s.vc, s.lsc, {6, 7, 8, 9},
                          [&](bool ok) { migrated = ok; });
  });
  s.bed.sim.schedule_at(
      static_cast<sim::Time>(34.5 * sim::kSecond),
      [&] { s.bed.fabric.fail_node(7); });

  s.bed.sim.run_until(200 * sim::kSecond);
  // The caller always hears the verdict.
  ASSERT_TRUE(migrated.has_value());
  // And the VC is either running again (in place or re-recovered from the
  // held checkpoint) or its failure was diagnosed — not wedged.
  if (s.bed.dvc->recoveries_abandoned() == 0) {
    EXPECT_FALSE(s.application->failed());
    const auto iter_then = s.application->rank(0).state().iter;
    s.bed.sim.run_until(240 * sim::kSecond);
    EXPECT_GT(s.application->rank(0).state().iter, iter_then);
  }
}

TEST(MigrateFailureTest, CoordinatorCrashMidMigrationResumesOrRecovers) {
  core::DvcManager::RecoveryPolicy policy = manual_rounds_policy();
  policy.watchdog_interval = 10 * sim::kSecond;
  CoordStack s(/*clusters=*/1, /*nodes=*/12, /*vc=*/4, /*iters=*/3000,
               policy, /*head=*/11);

  // The coordinator dies during the save-and-hold: the members sit frozen
  // with nobody to move them until the reboot's reconciliation pass.
  std::optional<bool> migrated;
  s.bed.sim.schedule_at(30 * sim::kSecond, [&] {
    s.bed.dvc->migrate_vc(*s.vc, s.lsc, {6, 7, 8, 9},
                          [&](bool ok) { migrated = ok; });
  });
  s.bed.sim.schedule_at(
      34 * sim::kSecond,
      [&] { s.bed.dvc->crash_coordinator(10 * sim::kSecond); });

  s.bed.sim.run_until(200 * sim::kSecond);
  ASSERT_TRUE(s.bed.dvc->coordinator_up());
  // Reconciliation either thawed the held members in place or re-drove a
  // whole-VC recovery from the durable checkpoint.
  EXPECT_GE(s.bed.metrics.counter_value("core.dvc.reconcile_resumes") +
                s.bed.metrics.counter_value("core.dvc.reconcile_recoveries"),
            1u);
  EXPECT_FALSE(s.application->failed());
  const auto iter_then = s.application->rank(0).state().iter;
  s.bed.sim.run_until(240 * sim::kSecond);
  EXPECT_GT(s.application->rank(0).state().iter, iter_then);
  // No half-open intent survives the reboot.
  ASSERT_NE(s.bed.dvc->intent_log(), nullptr);
  EXPECT_TRUE(s.bed.dvc->intent_log()->open_intents().empty());
}

// ---------------------------------------------------------------------------
// The head node *is* the coordinator's fault domain: when it dies the
// control plane dies with it, and the coordinator reboots (with a new
// epoch) once the node is repaired.

TEST(CoordinatorRecoveryTest, HeadNodeDeathTakesCoordinatorDownUntilRepair) {
  CoordStack s(/*clusters=*/1, /*nodes=*/12, /*vc=*/4, /*iters=*/3000,
               manual_rounds_policy(), /*head=*/11);
  const std::uint64_t before = s.bed.dvc->coordinator_epoch();

  s.bed.sim.schedule_at(30 * sim::kSecond,
                        [&] { s.bed.fabric.fail_node(11); });
  s.bed.sim.schedule_at(80 * sim::kSecond,
                        [&] { s.bed.fabric.repair_node(11); });

  s.bed.sim.run_until(40 * sim::kSecond);
  EXPECT_FALSE(s.bed.dvc->coordinator_up());
  EXPECT_EQ(s.bed.dvc->coordinator_crashes(), 1u);

  s.bed.sim.run_until(150 * sim::kSecond);
  EXPECT_TRUE(s.bed.dvc->coordinator_up());
  EXPECT_GT(s.bed.dvc->coordinator_epoch(), before);
  EXPECT_FALSE(s.application->failed());
}

}  // namespace
}  // namespace dvc
