#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace dvc::sim {
namespace {

TEST(TimeTest, ConversionsRoundTrip) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(0.001), kMillisecond);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(kSecond), 1000.0);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
}

TEST(SimulationTest, FiresInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
  EXPECT_EQ(s.executed(), 3u);
}

TEST(SimulationTest, SameTimeFiresInInsertionOrder) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    s.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulationTest, ScheduleAfterAdvancesFromNow) {
  Simulation s;
  Time fired_at = -1;
  s.schedule_after(100, [&] {
    s.schedule_after(50, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(SimulationTest, NegativeDelayClampsToNow) {
  Simulation s;
  Time fired_at = -1;
  s.schedule_after(100, [&] {
    s.schedule_after(-500, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(SimulationTest, PastAbsoluteTimeClampsToNow) {
  Simulation s;
  Time fired_at = -1;
  s.schedule_at(100, [&] {
    s.schedule_at(10, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation s;
  bool fired = false;
  const EventId id = s.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.executed(), 0u);
}

TEST(SimulationTest, CancelTwiceReturnsFalse) {
  Simulation s;
  const EventId id = s.schedule_at(10, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
  EXPECT_FALSE(s.cancel(kInvalidEvent));
  EXPECT_FALSE(s.cancel(9999));  // never allocated
}

TEST(SimulationTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulation s;
  std::vector<Time> fired;
  s.schedule_at(10, [&] { fired.push_back(10); });
  s.schedule_at(20, [&] { fired.push_back(20); });
  s.schedule_at(30, [&] { fired.push_back(30); });
  const auto n = s.run_until(20);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(s.now(), 20);
  EXPECT_EQ(s.pending(), 1u);
  s.run_until(25);
  EXPECT_EQ(s.now(), 25);  // idle time still advances
  s.run();
  EXPECT_EQ(s.now(), 30);
}

TEST(SimulationTest, RunUntilSkipsCancelledHead) {
  Simulation s;
  bool late_fired = false;
  const EventId id = s.schedule_at(5, [] {});
  s.schedule_at(50, [&] { late_fired = true; });
  s.cancel(id);
  s.run_until(10);
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(s.pending(), 1u);
  s.run_until(60);
  EXPECT_TRUE(late_fired);
}

TEST(SimulationTest, RunWithLimitStopsEarly) {
  Simulation s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(s.run(4), 4u);
  EXPECT_EQ(count, 4);
}

TEST(SimulationTest, EventsScheduledDuringRunAreExecuted) {
  Simulation s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule_after(1, recurse);
  };
  s.schedule_at(0, recurse);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), 99);
}

TEST(SimulationTest, DaemonEventsDoNotKeepRunAlive) {
  Simulation s;
  int daemon_fires = 0;
  std::function<void()> heartbeat = [&] {
    ++daemon_fires;
    s.schedule_daemon_after(10, heartbeat);  // reschedules forever
  };
  s.schedule_daemon_after(10, heartbeat);
  bool work_done = false;
  s.schedule_at(35, [&] { work_done = true; });
  s.run();  // must terminate despite the immortal heartbeat
  EXPECT_TRUE(work_done);
  // The heartbeat ran while foreground work was pending (t=10,20,30)...
  EXPECT_EQ(daemon_fires, 3);
  // ...and one daemon event is still queued, not keeping us alive.
  EXPECT_EQ(s.pending_foreground(), 0u);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(SimulationTest, RunUntilStillDrivesDaemons) {
  Simulation s;
  int fires = 0;
  std::function<void()> tick = [&] {
    ++fires;
    s.schedule_daemon_after(10, tick);
  };
  s.schedule_daemon_after(10, tick);
  s.run_until(55);
  EXPECT_EQ(fires, 5);  // t = 10..50
  EXPECT_EQ(s.now(), 55);
}

TEST(SimulationTest, CancellingADaemonKeepsForegroundCountRight) {
  Simulation s;
  const EventId d = s.schedule_daemon_after(10, [] {});
  s.schedule_after(20, [] {});
  EXPECT_EQ(s.pending_foreground(), 1u);
  EXPECT_TRUE(s.cancel(d));
  EXPECT_EQ(s.pending_foreground(), 1u);
  EXPECT_EQ(s.run(), 1u);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsIndependentOfParentConsumption) {
  Rng a(7);
  Rng child = a.fork(1);
  const auto c0 = child.next_u64();
  Rng b(7);
  Rng child2 = b.fork(1);
  EXPECT_EQ(c0, child2.next_u64());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng r(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng r(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng r(13);
  SummaryStats st;
  for (int i = 0; i < 200000; ++i) st.add(r.normal(10.0, 3.0));
  EXPECT_NEAR(st.mean(), 10.0, 0.05);
  EXPECT_NEAR(st.stddev(), 3.0, 0.05);
}

TEST(RngTest, ChanceMatchesProbability) {
  Rng r(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BelowStaysInRange) {
  Rng r(19);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(RngTest, NormalDurationNeverNegative) {
  Rng r(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(r.normal_duration(10, 100), 0);
  }
}

TEST(StatsTest, BasicMoments) {
  SummaryStats st;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) st.add(x);
  EXPECT_EQ(st.count(), 5u);
  EXPECT_DOUBLE_EQ(st.mean(), 3.0);
  EXPECT_DOUBLE_EQ(st.min(), 1.0);
  EXPECT_DOUBLE_EQ(st.max(), 5.0);
  EXPECT_DOUBLE_EQ(st.sum(), 15.0);
  EXPECT_NEAR(st.stddev(), 1.5811, 1e-3);
}

TEST(StatsTest, EmptyIsZero) {
  SummaryStats st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_DOUBLE_EQ(st.mean(), 0.0);
  EXPECT_DOUBLE_EQ(st.stddev(), 0.0);
}

TEST(StatsTest, PercentilesWithSamples) {
  SummaryStats st(/*keep_samples=*/true);
  for (int i = 1; i <= 100; ++i) st.add(i);
  EXPECT_NEAR(st.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(st.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(st.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(st.percentile(95), 95.05, 0.01);
}

TEST(StatsTest, RepeatedPercentileCallsAgree) {
  // percentile() sorts its retained samples lazily; repeated calls and
  // interleaved add()s must agree with a freshly built equivalent.
  Rng r(99);
  SummaryStats st(/*keep_samples=*/true);
  for (int i = 0; i < 1000; ++i) st.add(r.uniform(0.0, 1.0));
  const double p50 = st.percentile(50);
  const double p99 = st.percentile(99);
  EXPECT_DOUBLE_EQ(st.percentile(50), p50);
  EXPECT_DOUBLE_EQ(st.percentile(99), p99);

  // Adding after a sort invalidates the cache rather than the answer.
  st.add(-1.0);
  EXPECT_DOUBLE_EQ(st.percentile(0), -1.0);
  st.add(2.0);
  EXPECT_DOUBLE_EQ(st.percentile(100), 2.0);
  EXPECT_EQ(st.count(), 1002u);

  // Moments are untouched by the lazy reordering.
  EXPECT_NEAR(st.mean(), st.sum() / 1002.0, 1e-12);
}

}  // namespace
}  // namespace dvc::sim
