#include <gtest/gtest.h>

#include "app/workload.hpp"
#include "ckpt/methods.hpp"
#include "hw/cluster.hpp"
#include "sim/simulation.hpp"
#include "vm/guest_os.hpp"
#include "vm/virtual_machine.hpp"

namespace dvc::vm {
namespace {

TEST(GuestOsTest, ProcessLifecycle) {
  GuestOs os;
  const Pid a = os.spawn("hpl");
  const Pid b = os.spawn("daemon");
  EXPECT_NE(a, b);
  EXPECT_EQ(os.process_count(), 2u);
  ASSERT_NE(os.find(a), nullptr);
  EXPECT_EQ(os.find(a)->name, "hpl");
  EXPECT_TRUE(os.exit_process(b));
  EXPECT_FALSE(os.exit_process(b));
  EXPECT_EQ(os.find(b), nullptr);
  EXPECT_EQ(os.process_count(), 1u);
}

TEST(GuestOsTest, AccountingFollowsTheSection2Ordering) {
  GuestOs os;
  const Pid p = os.spawn("app");
  os.set_heap(p, 300ull << 20);
  os.open_file(p, "/data/in", 16ull << 20);
  os.open_socket(p, 1, 256 << 10, 256 << 10);
  os.open_socket(p, 2, 256 << 10, 256 << 10);

  const auto app = os.app_level_bytes(p);
  const auto user = os.user_level_bytes(p);
  const auto kern = os.kernel_level_bytes(p);
  // app < user < kernel: each layer is forced to save more (§2).
  EXPECT_EQ(app, 300ull << 20);  // only the working set
  EXPECT_GT(user, app);          // + code, stack, buffered files
  EXPECT_GT(kern, user);         // + socket buffers, kernel bookkeeping
  // Whole-guest resident set covers the kernel itself too.
  EXPECT_GT(os.resident_bytes(), kern);
}

TEST(GuestOsTest, SetHeapReplacesNotAccumulates) {
  GuestOs os;
  const Pid p = os.spawn("app");
  os.set_heap(p, 100);
  os.set_heap(p, 50);
  EXPECT_EQ(os.app_level_bytes(p), 50u);
}

TEST(GuestOsTest, ResidentGrowsWithProcesses) {
  GuestOs os;
  const auto empty = os.resident_bytes();
  const Pid p = os.spawn("one");
  os.set_heap(p, 64ull << 20);
  const auto one = os.resident_bytes();
  const Pid q = os.spawn("two");
  os.set_heap(q, 64ull << 20);
  const auto two = os.resident_bytes();
  EXPECT_GT(one, empty);
  EXPECT_GT(two, one);
  EXPECT_NEAR(static_cast<double>(two - one),
              static_cast<double>(one - empty), 1.0);
}

TEST(GuestOsTest, RankRegistersItselfInTheGuestProcessTable) {
  sim::Simulation sim;
  hw::Fabric fabric(sim, {});
  fabric.add_cluster("a", 3);
  std::vector<std::unique_ptr<VirtualMachine>> vms;
  std::vector<ExecutionContext*> contexts;
  GuestConfig cfg;
  cfg.ram_bytes = 1ull << 30;
  for (std::uint32_t i = 0; i < 3; ++i) {
    vms.push_back(std::make_unique<VirtualMachine>(sim, fabric.network(),
                                                   i + 1, cfg));
    vms.back()->place_on(fabric.node(i));
    vms.back()->resume();
    contexts.push_back(vms.back().get());
  }
  app::WorkloadSpec spec = app::make_hpl(8192, 3);
  app::ParallelApp application(sim, fabric.network(), contexts, spec);
  application.start();

  for (std::uint32_t i = 0; i < 3; ++i) {
    const Pid pid = application.rank(i).guest_pid();
    ASSERT_NE(pid, kInvalidPid);
    const GuestOs::Process* proc = vms[i]->os().find(pid);
    ASSERT_NE(proc, nullptr);
    EXPECT_EQ(proc->sockets.size(), 2u);  // one per peer
    EXPECT_EQ(vms[i]->os().app_level_bytes(pid),
              spec.working_set_bytes_per_rank);
  }

  // Measured footprints from the live table keep the §2 ordering and the
  // model's applicability rules.
  const GuestOs& os = vms[0]->os();
  const Pid pid = application.rank(0).guest_pid();
  const auto app_fp =
      ckpt::measured_footprint(ckpt::MethodKind::kApplication, spec, cfg,
                               os, pid);
  const auto usr_fp = ckpt::measured_footprint(ckpt::MethodKind::kUserLevel,
                                               spec, cfg, os, pid);
  const auto krn_fp = ckpt::measured_footprint(
      ckpt::MethodKind::kKernelLevel, spec, cfg, os, pid);
  const auto vm_fp = ckpt::measured_footprint(ckpt::MethodKind::kVmLevel,
                                              spec, cfg, os, pid);
  EXPECT_LT(app_fp.bytes, usr_fp.bytes);
  EXPECT_LT(usr_fp.bytes, krn_fp.bytes);
  EXPECT_LT(krn_fp.bytes, vm_fp.bytes);
  EXPECT_TRUE(app_fp.applicable);   // HPL ships checkpoint code
  EXPECT_FALSE(usr_fp.applicable);  // parallel job, no interception
  EXPECT_TRUE(vm_fp.applicable);
  sim.run();
}

}  // namespace
}  // namespace dvc::vm
