#include "core/virtual_cluster.hpp"

namespace dvc::core {

VirtualCluster::VirtualCluster(sim::Simulation& sim, net::Network& net,
                               VcId id, VcSpec spec)
    : sim_(&sim), id_(id), spec_(std::move(spec)) {
  vms_.reserve(spec_.size);
  for (std::uint32_t i = 0; i < spec_.size; ++i) {
    const vm::VmId vmid = (id_ << 16) | i;
    vms_.push_back(
        std::make_unique<vm::VirtualMachine>(sim, net, vmid, spec_.guest));
  }
  placement_.assign(spec_.size, hw::kInvalidNode);
}

std::vector<vm::ExecutionContext*> VirtualCluster::contexts() {
  std::vector<vm::ExecutionContext*> out;
  out.reserve(vms_.size());
  for (auto& v : vms_) out.push_back(v.get());
  return out;
}

bool VirtualCluster::spans_clusters(const hw::Fabric& fabric) const {
  if (placement_.empty() || placement_.front() == hw::kInvalidNode) {
    return false;
  }
  const hw::ClusterId first = fabric.node(placement_.front()).cluster();
  for (const hw::NodeId n : placement_) {
    if (n == hw::kInvalidNode) continue;
    if (fabric.node(n).cluster() != first) return true;
  }
  return false;
}

}  // namespace dvc::core
