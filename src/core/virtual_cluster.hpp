#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/cluster.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "storage/image_manager.hpp"
#include "vm/execution_context.hpp"
#include "vm/virtual_machine.hpp"

namespace dvc::core {

/// Identifier of a virtual cluster.
using VcId = std::uint64_t;

/// What a virtual cluster should look like, independent of where it runs.
struct VcSpec {
  std::string name = "vc";
  std::uint32_t size = 1;
  vm::GuestConfig guest;
};

enum class VcState : std::uint8_t {
  kProvisioning,
  kRunning,
  kCheckpointing,
  kRecovering,
  kMigrating,
  kDestroyed,
  /// Recovery exhausted every checkpoint generation and retry budget.
  /// Terminal: the job is lost, but *diagnosed* — never a silent wedge.
  kFailed,
};

/// The last durable coordinated checkpoint of a virtual cluster: the
/// sealed image set plus the guest-software snapshots captured with it.
struct VcCheckpoint {
  storage::CheckpointSetId set = storage::kInvalidCheckpointSet;
  std::vector<std::any> app_snapshots;
  sim::Time taken_at = 0;
};

/// One recovery point in the VC's generation history: the checkpoint plus
/// the full chain of sets a restore from it must stage. Recovery walks
/// this list newest-to-oldest when a generation turns out to be damaged.
struct VcGeneration {
  VcCheckpoint checkpoint;
  std::vector<storage::CheckpointSetId> chain;
};

/// A virtual cluster: a set of virtual machines with stable fabric
/// identities, mapped onto physical nodes — possibly across physical
/// clusters, and onto a *different* node set at each instantiation
/// (paper §1, figure 1). The VMs are owned here; hypervisors only host
/// them.
class VirtualCluster final {
 public:
  VirtualCluster(sim::Simulation& sim, net::Network& net, VcId id,
                 VcSpec spec);

  VirtualCluster(const VirtualCluster&) = delete;
  VirtualCluster& operator=(const VirtualCluster&) = delete;

  [[nodiscard]] VcId id() const noexcept { return id_; }
  [[nodiscard]] const VcSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] VcState state() const noexcept { return state_; }
  [[nodiscard]] std::uint32_t size() const noexcept { return spec_.size; }

  [[nodiscard]] vm::VirtualMachine& machine(std::uint32_t i) {
    return *vms_.at(i);
  }
  [[nodiscard]] const vm::VirtualMachine& machine(std::uint32_t i) const {
    return *vms_.at(i);
  }

  /// The VMs as execution contexts, in member order — what a ParallelApp
  /// is constructed over.
  [[nodiscard]] std::vector<vm::ExecutionContext*> contexts();

  /// Physical node currently hosting member i.
  [[nodiscard]] hw::NodeId placement(std::uint32_t i) const {
    return placement_.at(i);
  }
  [[nodiscard]] const std::vector<hw::NodeId>& placements() const noexcept {
    return placement_;
  }

  /// True if the mapping uses nodes from more than one physical cluster.
  [[nodiscard]] bool spans_clusters(const hw::Fabric& fabric) const;

  /// Label under which this VC's checkpoint sets are filed.
  [[nodiscard]] std::string checkpoint_label() const {
    return spec_.name + "#" + std::to_string(id_);
  }

  [[nodiscard]] const VcCheckpoint& last_checkpoint() const noexcept {
    return last_checkpoint_;
  }
  [[nodiscard]] bool has_checkpoint() const noexcept {
    return last_checkpoint_.set != storage::kInvalidCheckpointSet;
  }

  /// The incremental chain a restore must stage: the last full image set
  /// followed by every incremental set since. Length 1 = full checkpoints.
  [[nodiscard]] const std::vector<storage::CheckpointSetId>&
  checkpoint_chain() const noexcept {
    return checkpoint_chain_;
  }

  /// Retained recovery points, oldest first; the back entry is the current
  /// checkpoint. DvcManager trims this to the policy's keep window with
  /// refcounted set GC (chains may share their base full image).
  [[nodiscard]] const std::vector<VcGeneration>& generations()
      const noexcept {
    return generations_;
  }

  [[nodiscard]] std::uint32_t recoveries() const noexcept {
    return recoveries_;
  }
  [[nodiscard]] std::uint32_t instantiations() const noexcept {
    return instantiations_;
  }

 private:
  friend class DvcManager;

  sim::Simulation* sim_;
  VcId id_;
  VcSpec spec_;
  VcState state_ = VcState::kProvisioning;
  std::vector<std::unique_ptr<vm::VirtualMachine>> vms_;
  std::vector<hw::NodeId> placement_;
  VcCheckpoint last_checkpoint_;
  std::vector<storage::CheckpointSetId> checkpoint_chain_;
  std::vector<VcGeneration> generations_;
  std::uint32_t recoveries_ = 0;
  std::uint32_t instantiations_ = 0;
};

}  // namespace dvc::core
