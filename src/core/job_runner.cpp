#include "core/job_runner.hpp"

#include <stdexcept>
#include <utility>

namespace dvc::core {

VirtualJobRunner::VirtualJobRunner(sim::Simulation& sim,
                                   rm::Scheduler& scheduler,
                                   DvcManager& dvc)
    : sim_(&sim), scheduler_(&scheduler), dvc_(&dvc) {
  if (scheduler.config().auto_run) {
    throw std::invalid_argument(
        "VirtualJobRunner needs a caller-driven scheduler (auto_run off)");
  }
  // The runner owns the scheduler's start feed.
  scheduler_->set_on_start(
      [this](const rm::JobRecord& rec) { on_job_start(rec); });
}

rm::JobId VirtualJobRunner::submit(app::WorkloadSpec workload,
                                   vm::GuestConfig guest,
                                   hw::ClusterId home_cluster,
                                   std::function<void(bool)> on_finished) {
  rm::JobRequest req;
  req.name = workload.name;
  req.nodes_requested = workload.ranks;
  req.home_cluster = home_cluster;
  // An a-priori runtime estimate (for operator visibility only; the
  // scheduler is caller-driven).
  req.node_seconds_work =
      workload.total_flops() / 10e9;  // vs nominal node speed

  RunningJob job;
  job.workload = std::move(workload);
  job.guest = guest;
  job.reliability = reliability_;
  job.on_finished = std::move(on_finished);
  // on_job_start defers provisioning by one event, so installing the
  // workload right after submit() is always early enough — even when the
  // scheduler starts the job synchronously inside submit().
  const rm::JobId id = scheduler_->submit(std::move(req));
  if (scheduler_->job(id).state == rm::JobState::kFailed) {
    // Rejected at submit (infeasible rigid request): report it instead of
    // leaving the submitter waiting forever.
    ++abandoned_;
    if (job.on_finished) {
      sim_->schedule_after(0, [cb = std::move(job.on_finished)] {
        cb(false);
      });
    }
    return id;
  }
  jobs_[id] = std::move(job);
  return id;
}

void VirtualJobRunner::on_job_start(const rm::JobRecord& record) {
  const rm::JobId id = record.id;
  const std::vector<hw::NodeId> allocation = record.allocation.nodes;
  // Defer one tick: when a job starts synchronously inside submit(), its
  // workload entry is only installed right after submit() returns.
  sim_->schedule_after(0, [this, id, allocation] {
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return;
    RunningJob& job = it->second;

    VcSpec spec;
    spec.name = job.workload.name;
    spec.size = job.workload.ranks;
    spec.guest = job.guest;
    job.vc = &dvc_->create_vc(spec, allocation, [this, id] {
      const auto jit = jobs_.find(id);
      if (jit == jobs_.end()) return;
      RunningJob& j = jit->second;
      j.application = std::make_unique<app::ParallelApp>(
          *sim_, dvc_->fabric().network(), j.vc->contexts(), j.workload);
      dvc_->attach_app(*j.vc, *j.application);
      j.application->set_on_complete([this, id] { finish(id, true); });
      if (j.reliability) {
        DvcManager::RecoveryPolicy policy;
        policy.coordinator = j.reliability->coordinator;
        policy.interval = j.reliability->interval;
        policy.proactive_migration = j.reliability->proactive_migration;
        policy.incremental = j.reliability->incremental;
        dvc_->enable_auto_recovery(*j.vc, policy);
      } else {
        // Unprotected job: an application failure abandons it.
        j.application->set_on_failure(
            [this, id](const std::string&) { finish(id, false); });
      }
      j.application->start();
    });
  });
}

void VirtualJobRunner::finish(rm::JobId id, bool completed) {
  // This fires from deep inside the application's own call stack (a rank
  // just completed, or a transport endpoint just aborted); tearing the
  // application down here would free objects still on the stack. Defer
  // to a fresh event.
  sim_->schedule_after(0, [this, id, completed] {
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return;
    RunningJob job = std::move(it->second);
    jobs_.erase(it);
    if (job.vc != nullptr) {
      dvc_->destroy_vc(*job.vc);  // kills guests; ranks get on_killed
    }
    job.application.reset();
    if (completed) {
      ++completed_;
      scheduler_->complete(id);
    } else {
      ++abandoned_;
      scheduler_->fail(id);
    }
    if (job.on_finished) job.on_finished(completed);
  });
}

}  // namespace dvc::core
