#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "app/workload.hpp"
#include "ckpt/lsc.hpp"
#include "core/dvc_manager.hpp"
#include "rm/scheduler.hpp"

namespace dvc::core {

/// The glue the paper's §4 names as future work: "integration with
/// resource managers and schedulers like Torque and Moab."
///
/// Jobs are submitted with a *workload* instead of a fixed duration. When
/// the scheduler starts a job, the runner provisions a virtual cluster on
/// the allocated nodes, boots it, runs the workload inside, and (if a
/// reliability policy is given) arms periodic LSC checkpoints with
/// automatic failure recovery. The scheduler learns about completion when
/// the application actually finishes — checkpoint stalls, recoveries and
/// all.
class VirtualJobRunner final {
 public:
  struct Reliability {
    ckpt::LscCoordinator* coordinator = nullptr;
    sim::Duration interval = 10 * sim::kMinute;
    bool proactive_migration = false;
    bool incremental = false;
  };

  VirtualJobRunner(sim::Simulation& sim, rm::Scheduler& scheduler,
                   DvcManager& dvc);

  VirtualJobRunner(const VirtualJobRunner&) = delete;
  VirtualJobRunner& operator=(const VirtualJobRunner&) = delete;

  /// Submits a workload as a cluster job. The node count comes from the
  /// workload's rank count. `on_finished(completed)` fires when the
  /// application completes (true) or is abandoned (false).
  rm::JobId submit(app::WorkloadSpec workload, vm::GuestConfig guest,
                   hw::ClusterId home_cluster = 0,
                   std::function<void(bool)> on_finished = {});

  /// Applies a reliability policy to all jobs submitted afterwards.
  void set_reliability(std::optional<Reliability> policy) {
    reliability_ = std::move(policy);
  }

  [[nodiscard]] std::uint64_t jobs_completed() const noexcept {
    return completed_;
  }
  [[nodiscard]] std::uint64_t jobs_abandoned() const noexcept {
    return abandoned_;
  }

 private:
  struct RunningJob {
    app::WorkloadSpec workload;
    vm::GuestConfig guest;
    std::optional<Reliability> reliability;
    std::function<void(bool)> on_finished;
    VirtualCluster* vc = nullptr;
    std::unique_ptr<app::ParallelApp> application;
  };

  void on_job_start(const rm::JobRecord& record);
  void finish(rm::JobId id, bool completed);

  sim::Simulation* sim_;
  rm::Scheduler* scheduler_;
  DvcManager* dvc_;
  std::optional<Reliability> reliability_;
  std::map<rm::JobId, RunningJob> jobs_;
  std::uint64_t completed_ = 0;
  std::uint64_t abandoned_ = 0;
};

}  // namespace dvc::core
