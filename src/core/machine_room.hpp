#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "clocksync/ntp.hpp"
#include "core/dvc_manager.hpp"
#include "hw/cluster.hpp"
#include "sim/simulation.hpp"
#include "sim/trace.hpp"
#include "storage/image_manager.hpp"
#include "storage/shared_store.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_bridge.hpp"
#include "vm/hypervisor.hpp"

namespace dvc::core {

/// Configuration of a MachineRoom (kept outside the class so it can be
/// used as a defaulted constructor argument).
struct MachineRoomOptions {
  std::uint32_t clusters = 1;
  std::uint32_t nodes_per_cluster = 4;
  hw::NodeSpec node_spec{};
  net::ClusterLinkModel::Config links{};
  vm::Hypervisor::Config hv{};
  storage::SharedStore::Config store{};
  clocksync::ClusterTimeService::Config time{};
  std::uint64_t seed = 42;
  bool presync_clocks = true;
  /// Checkpoint durability factor k-1: number of additional SharedStore
  /// replicas (same config as the primary) that asynchronously receive a
  /// copy of every checkpoint image. 0 = primary only (historical
  /// behaviour, and byte-identical to it).
  std::uint32_t store_replicas = 0;
};

/// A complete miniature machine room: simulation kernel, physical fabric,
/// per-node hypervisors, shared image store, NTP time service and the DVC
/// control plane — everything a DVC deployment needs, deterministic under
/// one seed. This is the top-level entry point of the library: examples,
/// benches and tests all start here.
struct MachineRoom {
  using Options = MachineRoomOptions;

  explicit MachineRoom(Options opt = Options())
      : fabric(sim, hw::Fabric::Config{opt.links, opt.seed}),
        store(sim, opt.store),
        images(store) {
    for (std::uint32_t c = 0; c < opt.clusters; ++c) {
      fabric.add_cluster("cluster" + std::to_string(c),
                         opt.nodes_per_cluster, opt.node_spec);
    }
    fleet = std::make_unique<vm::HypervisorFleet>(
        sim, fabric, opt.hv, sim::Rng(opt.seed ^ 0xF1EE7));
    time = std::make_unique<clocksync::ClusterTimeService>(
        sim, fabric.node_count(), opt.time, sim::Rng(opt.seed ^ kTimeSalt));
    if (opt.presync_clocks) {
      // One immediate burst so experiments can start synchronised, then
      // ntpd-style periodic polling so long runs stay synchronised.
      time->sync_all();
      time->start_periodic();
    }
    for (std::uint32_t r = 0; r < opt.store_replicas; ++r) {
      replica_stores.push_back(
          std::make_unique<storage::SharedStore>(sim, opt.store));
      images.add_replica(*replica_stores.back());
    }
    dvc = std::make_unique<DvcManager>(sim, fabric, *fleet, images, *time);
    // One cluster-wide coordinator-epoch fence, checked at every storage
    // and hypervisor mutation point. It bites only after a head node is
    // designated (DvcManager::designate_head_node) and a coordinator
    // reboot advances the epoch; until then every command is admitted.
    images.set_fence(&fence);
    fleet->set_fence(&fence);
    dvc->set_fence(&fence);
    fabric.set_trace(&trace);
    dvc->set_trace(&trace);
    // Wire every subsystem into the room-wide metrics registry (each holds
    // a nullable pointer, so standalone construction stays metrics-free).
    fabric.network().set_metrics(&metrics);
    store.set_metrics(&metrics);
    for (std::size_t r = 0; r < replica_stores.size(); ++r) {
      replica_stores[r]->set_metrics(&metrics,
                                     "storage.replica" + std::to_string(r));
    }
    images.set_metrics(&metrics);
    fleet->set_metrics(&metrics);
    dvc->set_metrics(&metrics);
    telemetry::bridge_trace_errors(trace, metrics);
  }

  /// All stores a fault plan can target, primary first — hand this to
  /// fault::FaultInjector::Hooks::replicas (minus the leading primary).
  [[nodiscard]] std::vector<storage::SharedStore*> replica_ptrs() {
    std::vector<storage::SharedStore*> out;
    out.reserve(replica_stores.size());
    for (const auto& r : replica_stores) out.push_back(r.get());
    return out;
  }

  sim::Simulation sim;
  /// Structured operational log (off-echo by default; see sim::TraceLog).
  sim::TraceLog trace;
  /// Room-wide metrics registry and sim-time span timeline; every
  /// subsystem above reports into it (see docs/ARCHITECTURE.md,
  /// "Telemetry & profiling").
  telemetry::MetricsRegistry metrics;
  hw::Fabric fabric;
  storage::SharedStore store;
  storage::ImageManager images;
  /// Coordinator-epoch fence shared by images, fleet, and the manager.
  storage::EpochFence fence;
  /// Replica stores (see MachineRoomOptions::store_replicas); owned here,
  /// registered with `images`.
  std::vector<std::unique_ptr<storage::SharedStore>> replica_stores;
  std::unique_ptr<vm::HypervisorFleet> fleet;
  std::unique_ptr<clocksync::ClusterTimeService> time;
  std::unique_ptr<DvcManager> dvc;

 private:
  static constexpr std::uint64_t kTimeSalt = 0x71AE5;
};

}  // namespace dvc::core
