#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "core/virtual_cluster.hpp"
#include "storage/shared_store.hpp"
#include "telemetry/telemetry.hpp"

namespace dvc::core {

/// What a journalled control-plane operation was going to do. The journal
/// records intent, not effect: an entry proves only that the coordinator
/// *started* the operation before it may have died.
enum class IntentKind : std::uint8_t {
  kProvision,   ///< create_vc: boot every member
  kCheckpoint,  ///< open + seal one LSC round
  kRestore,     ///< roll the whole VC back to its recovery point
  kMigrate,     ///< save-and-hold, then restore elsewhere
  kRetire,      ///< drop a checkpoint generation from the store
};

[[nodiscard]] std::string_view to_string(IntentKind k) noexcept;

/// One open journal entry. `token` is the zero-byte marker object that
/// makes the entry durable in the shared store (metadata-only, so the
/// append is instantaneous and never contends with image traffic).
struct Intent {
  std::uint64_t lsn = 0;
  IntentKind kind = IntentKind::kProvision;
  VcId vc = 0;
  std::string label;
  std::uint64_t epoch = 0;
  storage::ObjectId token = storage::kInvalidObject;
};

/// Write-ahead intent log for the DVC coordinator. Every state-changing
/// operation appends an entry *before* acting and closes it when the
/// operation reaches a terminal outcome; whatever is still open after a
/// coordinator crash is exactly the set of operations the reboot's
/// reconciliation pass must abort-or-complete against ground truth.
///
/// Entries live as named zero-byte objects in the shared store (which
/// survives the coordinator by design), so the log itself needs no extra
/// durability machinery.
class IntentLog final {
 public:
  explicit IntentLog(storage::SharedStore& store) : store_(&store) {}

  IntentLog(const IntentLog&) = delete;
  IntentLog& operator=(const IntentLog&) = delete;

  /// Journals an intent; returns its log sequence number.
  std::uint64_t append(IntentKind kind, VcId vc, std::string label,
                       std::uint64_t epoch);

  /// Marks an intent as reaching a terminal outcome (success or a cleanly
  /// reported failure) and drops its durable token. Unknown lsns are
  /// ignored — a straggler completion may race the crash-recovery pass
  /// that already swept its entry.
  void close(std::uint64_t lsn);

  /// Entries appended but never closed, lsn-ordered — the reconciliation
  /// worklist after a coordinator reboot.
  [[nodiscard]] const std::map<std::uint64_t, Intent>& open_intents()
      const noexcept {
    return open_;
  }

  [[nodiscard]] std::uint64_t appended() const noexcept { return appended_; }
  [[nodiscard]] std::uint64_t closed() const noexcept { return closed_; }

  void set_metrics(telemetry::MetricsRegistry* m) noexcept { metrics_ = m; }

 private:
  storage::SharedStore* store_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  std::uint64_t next_lsn_ = 1;
  std::uint64_t appended_ = 0;
  std::uint64_t closed_ = 0;
  std::map<std::uint64_t, Intent> open_;
};

}  // namespace dvc::core
