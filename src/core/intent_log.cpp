#include "core/intent_log.hpp"

#include <utility>

namespace dvc::core {

std::string_view to_string(IntentKind k) noexcept {
  switch (k) {
    case IntentKind::kProvision:
      return "provision";
    case IntentKind::kCheckpoint:
      return "checkpoint";
    case IntentKind::kRestore:
      return "restore";
    case IntentKind::kMigrate:
      return "migrate";
    case IntentKind::kRetire:
      return "retire";
  }
  return "?";
}

std::uint64_t IntentLog::append(IntentKind kind, VcId vc, std::string label,
                                std::uint64_t epoch) {
  const std::uint64_t lsn = next_lsn_++;
  Intent e;
  e.lsn = lsn;
  e.kind = kind;
  e.vc = vc;
  e.label = std::move(label);
  e.epoch = epoch;
  e.token = store_->put_object(
      "wal/" + std::to_string(lsn) + "/" + std::string(to_string(kind)),
      /*bytes=*/0, storage::synthetic_checksum(lsn, epoch, vc));
  open_.emplace(lsn, std::move(e));
  ++appended_;
  telemetry::count(metrics_, "core.dvc.wal_appends");
  return lsn;
}

void IntentLog::close(std::uint64_t lsn) {
  const auto it = open_.find(lsn);
  if (it == open_.end()) return;
  store_->remove_object(it->second.token);
  open_.erase(it);
  ++closed_;
  telemetry::count(metrics_, "core.dvc.wal_closes");
}

}  // namespace dvc::core
