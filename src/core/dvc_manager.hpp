#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/workload.hpp"
#include "check/hooks.hpp"
#include "ckpt/lsc.hpp"
#include "clocksync/ntp.hpp"
#include "core/intent_log.hpp"
#include "core/virtual_cluster.hpp"
#include "hw/cluster.hpp"
#include "sim/simulation.hpp"
#include "sim/trace.hpp"
#include "storage/epoch_fence.hpp"
#include "storage/image_manager.hpp"
#include "telemetry/telemetry.hpp"
#include "vm/hypervisor.hpp"

namespace dvc::core {

/// The Dynamic Virtual Clustering control plane — the paper's primary
/// contribution. It provisions whole virtual clusters onto physical nodes
/// (within or across physical clusters), checkpoints them with LSC,
/// restores or migrates them onto *different* node sets, and recovers them
/// automatically when a hosting node dies.
class DvcManager final {
 public:
  DvcManager(sim::Simulation& sim, hw::Fabric& fabric,
             vm::HypervisorFleet& fleet, storage::ImageManager& images,
             clocksync::ClusterTimeService& time);

  DvcManager(const DvcManager&) = delete;
  DvcManager& operator=(const DvcManager&) = delete;

  // ---- provisioning ----------------------------------------------------

  /// Picks `count` healthy, unclaimed nodes, preferring to pack into one
  /// physical cluster and spilling over to others (spanning) if needed.
  [[nodiscard]] std::optional<std::vector<hw::NodeId>> pick_nodes(
      std::uint32_t count) const;

  /// Creates a virtual cluster on an explicit placement and boots every
  /// VM. `on_ready` fires once all guests are running.
  VirtualCluster& create_vc(VcSpec spec, std::vector<hw::NodeId> placement,
                            std::function<void()> on_ready);

  /// Tears a VC down and releases its nodes.
  void destroy_vc(VirtualCluster& vc);

  /// Binds a parallel application to a VC: rank i becomes the guest
  /// software of member i. The app's contexts must be vc.contexts().
  void attach_app(VirtualCluster& vc, app::ParallelApp& application);

  // ---- checkpoint / restore / migrate -----------------------------------

  /// Coordinated whole-VC checkpoint via the given LSC implementation.
  /// On success the set becomes the VC's recovery point. An `incremental`
  /// checkpoint writes only memory dirtied since each guest's last image;
  /// restore then stages the whole chain back to the last full image.
  void checkpoint_vc(VirtualCluster& vc, ckpt::LscCoordinator& lsc,
                     std::function<void(ckpt::LscResult)> done,
                     bool incremental = false);

  /// Restores a VC from its last checkpoint onto `new_placement` (which
  /// may equal, overlap, or be disjoint from the current one). All guests
  /// roll back to the checkpoint; the attached app resumes from there.
  void restore_vc(VirtualCluster& vc, std::vector<hw::NodeId> new_placement,
                  std::function<void(bool)> done);

  /// Whole-VC migration via the checkpoint path (paper §4 future work):
  /// LSC save-and-hold, then restore on the target nodes. No work is
  /// lost; the guests experience one freeze of (save + stage + restore)
  /// duration.
  void migrate_vc(VirtualCluster& vc, ckpt::LscCoordinator& lsc,
                  std::vector<hw::NodeId> new_placement,
                  std::function<void(bool)> done);

  /// Parameters of Xen-style iterative pre-copy live migration.
  struct LiveMigrationConfig {
    /// Aggregate host-to-host migration bandwidth shared by the VC's
    /// members (direct streams, not through the image store).
    double bandwidth_bps = 250e6;
    /// Give up pre-copying after this many rounds and stop-and-copy the
    /// residual (guests that dirty faster than their bandwidth share
    /// never converge).
    int max_precopy_rounds = 5;
    /// Residual below which the final stop-and-copy round is taken.
    std::uint64_t stop_copy_threshold = 16ull << 20;
  };

  struct LiveMigrationStats {
    bool ok = false;
    sim::Duration total_time = 0;    ///< first round to last resume
    sim::Duration max_downtime = 0;  ///< worst per-guest freeze
    double bytes_moved = 0.0;        ///< pre-copy amplification shows here
  };

  /// Pre-copy live migration (extension): guests keep *running* while
  /// their memory streams to the target nodes; each is paused only for
  /// its final residual. Downtime is typically sub-second versus the
  /// whole save+stage+restore freeze of migrate_vc, at the price of
  /// re-sending dirtied memory.
  void live_migrate_vc(VirtualCluster& vc,
                       std::vector<hw::NodeId> new_placement,
                       LiveMigrationConfig cfg,
                       std::function<void(LiveMigrationStats)> done);

  [[nodiscard]] std::uint64_t live_migrations_performed() const noexcept {
    return live_migrations_;
  }

  // ---- reliability policy ----------------------------------------------

  struct RecoveryPolicy {
    /// Checkpoint every `interval` using this coordinator.
    ckpt::LscCoordinator* coordinator = nullptr;
    sim::Duration interval = 10 * sim::kMinute;
    /// Re-place the whole VC on fresh nodes at recovery (true, the paper's
    /// "restart ... on a different set of physical nodes") or reuse the
    /// surviving nodes and only replace the dead ones (false).
    bool relocate_all = false;
    /// Keep this many sealed sets; older ones are pruned.
    std::size_t keep_checkpoints = 2;
    /// Write incremental checkpoints (dirty memory only), with a full
    /// image every `full_every`-th round to bound the restore chain.
    bool incremental = false;
    int full_every = 5;
    /// React to hardware failure *predictions* by migrating the whole VC
    /// off the suspect node before it dies (paper §1: "avoidance of job
    /// failure when hardware faults can be predicted"). Evacuation loses
    /// no work; reactive recovery loses up to one checkpoint interval.
    bool proactive_migration = false;
    /// Periodic liveness sweep over the VC's members (0 = disabled). The
    /// failure feed covers node death; the watchdog additionally catches a
    /// member VM that died without its node failing (guest crash, killed
    /// domain) and any failure the feed-triggered recovery missed, and
    /// restores the whole VC from its last complete checkpoint.
    sim::Duration watchdog_interval = 0;
    /// Consecutive restore failures tolerated per recovery point before
    /// the VC is declared failed (kFailed) instead of retrying forever.
    /// Damaged checkpoint data does not consume this budget — it triggers
    /// a generation fallback, which resets the count. Waiting for spare
    /// nodes is not a restore failure and stays unbounded.
    int max_restore_retries = 4;
  };

  /// Arms periodic checkpointing and automatic failure recovery for a VC.
  void enable_auto_recovery(VirtualCluster& vc, RecoveryPolicy policy);

  /// Stops the periodic checkpointing loop for a VC.
  void disable_auto_recovery(VirtualCluster& vc);

  /// Rolls a VC back to its last checkpoint immediately — the hook for
  /// callers that detect *application-level* failure themselves (the
  /// paper's "software errors" case; node death is handled automatically).
  void recover_now(VirtualCluster& vc);

  // ---- coordinator fault domain ------------------------------------------

  /// Attaches the cluster-wide coordinator-epoch fence. The same fence
  /// must be wired into the image manager and hypervisor fleet; until a
  /// head node is designated the manager issues unfenced commands and
  /// nothing changes.
  void set_fence(storage::EpochFence* fence) noexcept;

  /// Makes the control plane itself a fault domain: the manager now "runs"
  /// on `head` (dies with it, reboots when it is repaired), journals every
  /// state-changing intent to the shared store before acting, and fences
  /// all storage/hypervisor commands with the current coordinator epoch.
  /// `lease` is the incarnation's epoch lease, measured on the head node's
  /// *synced* clock: a successor waits the lease out before advancing the
  /// epoch, so a deposed-but-alive incarnation is fenced, never raced.
  void designate_head_node(hw::NodeId head,
                           sim::Duration lease = 10 * sim::kSecond);

  /// Kills the control-plane process (fault-injection hook). In-flight
  /// rounds lose their coordinator; member-side agents keep running. With
  /// `down_for` > 0 a reboot is scheduled; with 0 the coordinator stays
  /// down until reboot_coordinator() (or, after a head-node death, until
  /// the node is repaired).
  void crash_coordinator(sim::Duration down_for);

  /// Boots a new coordinator incarnation: waits out the previous lease,
  /// advances the epoch fence (deposing any zombie), replays the intent
  /// log against store/hypervisor ground truth, and aborts-or-completes
  /// every half-open operation.
  void reboot_coordinator();

  [[nodiscard]] bool coordinator_up() const noexcept {
    return coordinator_up_;
  }
  [[nodiscard]] hw::NodeId head_node() const noexcept { return head_node_; }
  /// Epoch this incarnation stamps into commands (kUnfencedEpoch until a
  /// fence is attached).
  [[nodiscard]] std::uint64_t coordinator_epoch() const noexcept {
    return epoch_;
  }
  [[nodiscard]] std::uint64_t coordinator_crashes() const noexcept {
    return coordinator_crashes_;
  }
  [[nodiscard]] std::uint64_t coordinator_reboots() const noexcept {
    return coordinator_reboots_;
  }
  /// Completions from a dead incarnation's rounds, dropped at the door.
  [[nodiscard]] std::uint64_t stale_completions() const noexcept {
    return stale_completions_;
  }
  /// Checkpoint sets found ownerless by a reboot's reconciliation pass:
  /// sealed orphans discarded, half-open rounds aborted.
  [[nodiscard]] std::uint64_t orphan_sets_discarded() const noexcept {
    return orphan_sets_discarded_;
  }
  [[nodiscard]] std::uint64_t orphan_rounds_aborted() const noexcept {
    return orphan_rounds_aborted_;
  }
  /// The write-ahead intent log (null until a head node is designated).
  [[nodiscard]] const IntentLog* intent_log() const noexcept {
    return wal_.get();
  }

  // ---- introspection -----------------------------------------------------

  [[nodiscard]] std::uint64_t recoveries_performed() const noexcept {
    return recoveries_;
  }
  [[nodiscard]] std::uint64_t checkpoints_taken() const noexcept {
    return checkpoints_;
  }
  [[nodiscard]] std::uint64_t migrations_performed() const noexcept {
    return migrations_;
  }
  [[nodiscard]] std::uint64_t evacuations_performed() const noexcept {
    return evacuations_;
  }
  /// Dead members first noticed by the watchdog sweep (not the feed).
  [[nodiscard]] std::uint64_t watchdog_detections() const noexcept {
    return watchdog_detections_;
  }
  /// Recoveries that had to walk back to an older checkpoint generation
  /// because the newer one was damaged (torn / corrupted / unreadable).
  [[nodiscard]] std::uint64_t restore_fallbacks() const noexcept {
    return restore_fallbacks_;
  }
  /// Recoveries abandoned after exhausting every generation and the retry
  /// budget; the VC ends in VcState::kFailed with its app marked failed.
  [[nodiscard]] std::uint64_t recoveries_abandoned() const noexcept {
    return recoveries_abandoned_;
  }
  [[nodiscard]] storage::ImageManager& images() noexcept { return *images_; }
  [[nodiscard]] hw::Fabric& fabric() noexcept { return *fabric_; }

  /// Nodes currently claimed by any live VC.
  [[nodiscard]] const std::map<hw::NodeId, VcId>& claims() const noexcept {
    return claimed_;
  }

  /// The LSC save-target list for a VC (hypervisor, machine, host clock per
  /// member). Exposed so benches/tests can drive coordinators directly.
  [[nodiscard]] std::vector<ckpt::SaveTarget> save_targets(
      VirtualCluster& vc);

  /// Attaches an optional structured trace sink (null to detach).
  void set_trace(sim::TraceLog* log) noexcept { trace_ = log; }

  /// Attaches an optional metrics registry (null to detach). Control-plane
  /// operations land in `core.dvc.*` counters and on the "dvc" timeline
  /// track.
  void set_metrics(telemetry::MetricsRegistry* m) noexcept { metrics_ = m; }

  /// Attaches an optional invariant checker (null to detach), notified at
  /// control-plane boundaries: round seal (a new recovery point), restore
  /// completion, and recovery resolution (success or abandonment).
  void set_check(check::Checker* c) noexcept { check_ = c; }

  /// Reference counts of every retained checkpoint set. Exposed so the
  /// invariant checker can re-derive the expected counts from the live
  /// VCs' generation chains and compare.
  [[nodiscard]] const std::map<storage::CheckpointSetId, int>& set_refs()
      const noexcept {
    return set_refs_;
  }

  /// Every VC the manager still tracks, id-ordered (destroyed VCs are
  /// erased and do not appear).
  [[nodiscard]] std::vector<const VirtualCluster*> live_vcs() const;

 private:
  struct VcRuntime {
    std::unique_ptr<VirtualCluster> vc;
    app::ParallelApp* app = nullptr;
    std::optional<RecoveryPolicy> policy;
    bool recovery_in_flight = false;
    bool checkpoint_in_flight = false;
    int ckpt_round = 0;
    /// Consecutive failed restores of the *current* recovery point.
    int restore_attempts = 0;
  };

  void claim(VirtualCluster& vc);
  void unclaim(VirtualCluster& vc);
  void on_node_failure(hw::NodeId node);
  void on_failure_prediction(hw::NodeId node, sim::Duration lead);
  void recover(VcRuntime& rt);
  // ---- coordinator fault domain ------------------------------------------
  /// True (and counted) when a completion stamped with `issued_epoch`
  /// belongs to a dead or deposed incarnation and must be dropped.
  [[nodiscard]] bool stale_completion(std::uint64_t issued_epoch);
  /// Journals an intent (no-op without a WAL); returns 0 when not logged.
  std::uint64_t journal(IntentKind kind, VcId vc, const std::string& label);
  void close_intent(std::uint64_t lsn);
  void renew_lease();
  void lease_renewal_tick();
  void watch_head_repair();
  void poll_head_repair();
  /// The reboot's reconciliation pass: replays the WAL against store and
  /// hypervisor ground truth, disposes of orphaned checkpoint sets, and
  /// aborts-or-completes every operation the crash left half-open.
  void recover_control_plane();
  void reconcile_vc(VcRuntime& rt);
  void schedule_periodic_checkpoint(VcId id);
  void schedule_member_watchdog(VcId id);
  // ---- generation history (refcounted checkpoint-set GC) ----------------
  void push_generation(VirtualCluster& vc);
  void release_generation(const VcGeneration& g);
  [[nodiscard]] bool generation_damaged(const VcGeneration& g) const;
  [[nodiscard]] bool chain_damaged(const VirtualCluster& vc) const;
  /// Drops the damaged current recovery point and rolls last_checkpoint_
  /// back to the newest undamaged generation. False = none left.
  bool fall_back_generation(VcRuntime& rt);
  void abandon_recovery(VcRuntime& rt, const std::string& why);

  sim::Simulation* sim_;
  hw::Fabric* fabric_;
  vm::HypervisorFleet* fleet_;
  storage::ImageManager* images_;
  clocksync::ClusterTimeService* time_;
  VcId next_vc_ = 1;
  std::map<VcId, VcRuntime> vcs_;
  std::map<hw::NodeId, VcId> claimed_;
  /// How many retained generations reference each checkpoint set
  /// (incremental chains share their base full image across generations).
  /// A set leaves the store when its last reference drops.
  std::map<storage::CheckpointSetId, int> set_refs_;
  std::uint64_t recoveries_ = 0;
  std::uint64_t checkpoints_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t evacuations_ = 0;
  std::uint64_t live_migrations_ = 0;
  std::uint64_t watchdog_detections_ = 0;
  std::uint64_t restore_fallbacks_ = 0;
  std::uint64_t recoveries_abandoned_ = 0;
  // ---- coordinator fault domain ------------------------------------------
  storage::EpochFence* fence_ = nullptr;
  /// Epoch stamped into every command this incarnation issues. Stays
  /// kUnfencedEpoch (admitted everywhere) until a fence is attached, so
  /// library users driving the manager directly see no fencing at all.
  std::uint64_t epoch_ = storage::kUnfencedEpoch;
  bool coordinator_up_ = true;
  hw::NodeId head_node_ = hw::kInvalidNode;
  sim::Duration lease_ = 10 * sim::kSecond;
  /// When the current lease runs out, on the *head node's* clock.
  sim::Time lease_expiry_local_ = 0;
  bool lease_daemon_armed_ = false;
  bool repair_watch_armed_ = false;
  std::unique_ptr<IntentLog> wal_;
  std::uint64_t coordinator_crashes_ = 0;
  std::uint64_t coordinator_reboots_ = 0;
  std::uint64_t stale_completions_ = 0;
  std::uint64_t orphan_sets_discarded_ = 0;
  std::uint64_t orphan_rounds_aborted_ = 0;
  sim::TraceLog* trace_ = nullptr;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  check::Checker* check_ = nullptr;
};

}  // namespace dvc::core
