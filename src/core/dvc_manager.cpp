#include "core/dvc_manager.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

namespace dvc::core {

namespace {
/// Time from a node dying to the DVC monitor noticing (heartbeat period).
constexpr sim::Duration kFailureDetectionDelay = 1 * sim::kSecond;
/// Backoff before retrying a recovery that could not find nodes.
constexpr sim::Duration kRecoveryRetryDelay = 30 * sim::kSecond;
}  // namespace

DvcManager::DvcManager(sim::Simulation& sim, hw::Fabric& fabric,
                       vm::HypervisorFleet& fleet,
                       storage::ImageManager& images,
                       clocksync::ClusterTimeService& time)
    : sim_(&sim),
      fabric_(&fabric),
      fleet_(&fleet),
      images_(&images),
      time_(&time) {
  if (time.size() < fabric.node_count()) {
    throw std::invalid_argument(
        "time service must cover every fabric node (clock per NodeId)");
  }
  fabric.subscribe_failures([this](hw::NodeId n) { on_node_failure(n); });
  fabric.subscribe_predictions([this](hw::NodeId n, sim::Duration lead) {
    on_failure_prediction(n, lead);
  });
}

std::optional<std::vector<hw::NodeId>> DvcManager::pick_nodes(
    std::uint32_t count) const {
  auto free_in = [this](hw::ClusterId c) {
    std::vector<hw::NodeId> out;
    for (const hw::NodeId n : fabric_->healthy_nodes(c)) {
      if (!claimed_.contains(n) && !fabric_->condemned(n)) out.push_back(n);
    }
    return out;
  };
  // Pack into one physical cluster when possible; otherwise span — the
  // remapping freedom of figure 1.
  for (hw::ClusterId c = 0; c < fabric_->cluster_count(); ++c) {
    auto avail = free_in(c);
    if (avail.size() >= count) {
      avail.resize(count);
      return avail;
    }
  }
  std::vector<hw::NodeId> spanned;
  for (hw::ClusterId c = 0; c < fabric_->cluster_count(); ++c) {
    for (const hw::NodeId n : free_in(c)) {
      if (spanned.size() == count) break;
      spanned.push_back(n);
    }
  }
  if (spanned.size() < count) return std::nullopt;
  return spanned;
}

VirtualCluster& DvcManager::create_vc(VcSpec spec,
                                      std::vector<hw::NodeId> placement,
                                      std::function<void()> on_ready) {
  if (placement.size() != spec.size) {
    throw std::invalid_argument("placement size != vc size");
  }
  const VcId id = next_vc_++;
  sim::trace(trace_, sim_->now(), sim::TraceLevel::kInfo, "dvc",
             "provisioning vc#" + std::to_string(id) + " (" +
                 std::to_string(placement.size()) + " guests)");
  telemetry::count(metrics_, "core.dvc.vcs_created");
  telemetry::instant(metrics_, sim_->now(), "dvc", "provision_vc");
  VcRuntime rt;
  rt.vc = std::make_unique<VirtualCluster>(*sim_, fabric_->network(), id,
                                           std::move(spec));
  VirtualCluster& vc = *rt.vc;
  vc.placement_ = std::move(placement);
  vc.instantiations_ = 1;
  claim(vc);
  vcs_.emplace(id, std::move(rt));

  const std::uint64_t lsn =
      journal(IntentKind::kProvision, id, vc.checkpoint_label());
  auto booted = std::make_shared<std::uint32_t>(0);
  const std::uint32_t n = vc.size();
  for (std::uint32_t i = 0; i < n; ++i) {
    fleet_->on_node(vc.placement(i))
        .boot_domain(vc.machine(i),
                     [this, &vc, booted, n, lsn, cb = on_ready] {
                       if (++*booted == n) {
                         vc.state_ = VcState::kRunning;
                         close_intent(lsn);
                         if (cb) cb();
                       }
                     });
  }
  return vc;
}

void DvcManager::destroy_vc(VirtualCluster& vc) {
  for (std::uint32_t i = 0; i < vc.size(); ++i) {
    if (vc.placement(i) != hw::kInvalidNode) {
      fleet_->on_node(vc.placement(i)).destroy_domain(vc.machine(i));
    }
  }
  unclaim(vc);
  vc.state_ = VcState::kDestroyed;
  // Retire the VC's retained generations: shared sets are reclaimed the
  // moment their last reference drops, and the refcount table never
  // accumulates entries owned by dead VCs.
  for (const auto& g : vc.generations_) release_generation(g);
  vc.generations_.clear();
  vcs_.erase(vc.id());  // destroys the VirtualCluster and its VMs
}

std::vector<const VirtualCluster*> DvcManager::live_vcs() const {
  std::vector<const VirtualCluster*> out;
  out.reserve(vcs_.size());
  for (const auto& [id, rt] : vcs_) out.push_back(rt.vc.get());
  return out;
}

void DvcManager::attach_app(VirtualCluster& vc,
                            app::ParallelApp& application) {
  if (application.size() != vc.size()) {
    throw std::invalid_argument("app rank count != vc size");
  }
  for (std::uint32_t i = 0; i < vc.size(); ++i) {
    vc.machine(i).set_guest_software(&application.rank(i));
  }
  vcs_.at(vc.id()).app = &application;
}

std::vector<ckpt::SaveTarget> DvcManager::save_targets(VirtualCluster& vc) {
  std::vector<ckpt::SaveTarget> targets;
  targets.reserve(vc.size());
  for (std::uint32_t i = 0; i < vc.size(); ++i) {
    const hw::NodeId node = vc.placement(i);
    ckpt::SaveTarget t{&fleet_->on_node(node), &vc.machine(i),
                       &time_->clock(node), i};
    // Stamp the issuing incarnation's fencing token: if this coordinator
    // is deposed before the save lands, the stale epoch is rejected at
    // the hypervisor and image-manager doors.
    t.epoch = epoch_;
    targets.push_back(t);
  }
  return targets;
}

void DvcManager::checkpoint_vc(VirtualCluster& vc,
                               ckpt::LscCoordinator& lsc,
                               std::function<void(ckpt::LscResult)> done,
                               bool incremental) {
  vc.state_ = VcState::kCheckpointing;
  std::vector<ckpt::SaveTarget> targets = save_targets(vc);
  // An incremental round needs a baseline on every member.
  bool can_increment = incremental;
  for (std::uint32_t i = 0; i < vc.size(); ++i) {
    can_increment = can_increment && vc.machine(i).has_image_baseline();
  }
  for (auto& t : targets) t.incremental = can_increment;
  const auto span =
      telemetry::begin_span(metrics_, sim_->now(), "dvc", "checkpoint");
  const VcId id = vc.id();
  const std::uint64_t issued = epoch_;
  const std::uint64_t lsn =
      journal(IntentKind::kCheckpoint, id, vc.checkpoint_label());
  // Retried rounds must not re-fire the targets captured above: the
  // failure that sank the previous round may have relocated members, and
  // a stale mapping pauses the survivors while the moved member runs on.
  // Re-resolve from the live placement — or abandon the retry entirely
  // while a member is dead or a recovery is rewinding the cluster.
  auto retarget = [this, id, issued,
                   incremental]() -> std::optional<
                                      std::vector<ckpt::SaveTarget>> {
    if (!coordinator_up_ || issued != epoch_) {
      // The incarnation that started this round is gone; its retries die
      // with it (the reboot's reconciliation owns the cluster now).
      return std::nullopt;
    }
    const auto it = vcs_.find(id);
    if (it == vcs_.end()) return std::nullopt;
    VcRuntime& rt = it->second;
    if (rt.recovery_in_flight || rt.vc->state_ == VcState::kRecovering ||
        rt.vc->state_ == VcState::kDestroyed) {
      return std::nullopt;
    }
    for (std::uint32_t i = 0; i < rt.vc->size(); ++i) {
      const hw::NodeId n = rt.vc->placement(i);
      if (n == hw::kInvalidNode || fabric_->node(n).failed() ||
          rt.vc->machine(i).state() == vm::DomainState::kDead) {
        return std::nullopt;  // still degraded; recovery owns this now
      }
    }
    std::vector<ckpt::SaveTarget> fresh = save_targets(*rt.vc);
    bool can_inc = incremental;
    for (std::uint32_t i = 0; i < rt.vc->size(); ++i) {
      can_inc = can_inc && rt.vc->machine(i).has_image_baseline();
    }
    for (auto& t : fresh) t.incremental = can_inc;
    return fresh;
  };
  lsc.checkpoint(
      vc.checkpoint_label(), std::move(targets), *images_,
      [this, &vc, can_increment, span, issued, lsn,
       cb = std::move(done)](ckpt::LscResult r) {
        telemetry::end_span(metrics_, span, sim_->now());
        if (stale_completion(issued)) {
          // The issuing coordinator died mid-round. Nobody may adopt the
          // result: the app snapshots it carries belong to an incarnation
          // whose view of the cluster is gone, and the recovery point must
          // come from reconciliation, not a ghost. The set (if any) is
          // swept as an orphan by recover_control_plane.
          return;
        }
        close_intent(lsn);
        telemetry::count(metrics_, r.ok ? "core.dvc.checkpoints"
                                        : "core.dvc.checkpoint_failures");
        if (vc.state_ == VcState::kCheckpointing) {
          vc.state_ = VcState::kRunning;
        }
        if (r.ok) {
          const auto rit = vcs_.find(vc.id());
          app::ParallelApp* app =
              rit != vcs_.end() ? rit->second.app : nullptr;
          if (app != nullptr && app->failed()) {
            // The set sealed around an application that had already
            // reported transport failure: its ranks may be wedged
            // mid-exchange with messages neither delivered nor pending
            // retransmission. Restoring such an image resurrects the
            // wedge, so quarantine the set and keep the previous
            // recovery point.
            images_->discard_set(r.set, epoch_);
            telemetry::count(metrics_, "core.dvc.checkpoints_quarantined");
            sim::trace(trace_, sim_->now(), sim::TraceLevel::kWarn, "dvc",
                       "vc#" + std::to_string(vc.id()) +
                           " checkpoint quarantined (app failed)");
            r.ok = false;
            if (cb) cb(std::move(r));
            return;
          }
          ++checkpoints_;
          sim::trace(trace_, sim_->now(), sim::TraceLevel::kInfo, "dvc",
                     "vc#" + std::to_string(vc.id()) + " checkpoint " +
                         (can_increment ? "(incremental) " : "") +
                         "sealed, skew " +
                         std::to_string(sim::to_milliseconds(r.pause_skew)) +
                         " ms");
          vc.last_checkpoint_ =
              VcCheckpoint{r.set, r.app_snapshots, sim_->now()};
          if (can_increment) {
            vc.checkpoint_chain_.push_back(r.set);
          } else {
            vc.checkpoint_chain_ = {r.set};
          }
          push_generation(vc);
          if (check_ != nullptr) {
            check_->on_vc_boundary(check::Boundary::kRoundSeal, vc.id());
          }
        }
        if (cb) cb(std::move(r));
      },
      /*resume_after_save=*/true, std::move(retarget));
}

void DvcManager::restore_vc(VirtualCluster& vc,
                            std::vector<hw::NodeId> new_placement,
                            std::function<void(bool)> done) {
  if (!vc.has_checkpoint()) {
    if (done) done(false);
    return;
  }
  if (new_placement.size() != vc.size()) {
    throw std::invalid_argument("placement size != vc size");
  }
  VcRuntime& rt = vcs_.at(vc.id());
  vc.state_ = VcState::kRecovering;
  sim::trace(trace_, sim_->now(), sim::TraceLevel::kWarn, "dvc",
             "vc#" + std::to_string(vc.id()) +
                 " rolling back to checkpoint set " +
                 std::to_string(vc.last_checkpoint_.set));

  // The entire cluster rolls back: freeze survivors, detach everything
  // from its old node, bump the transport epoch, then restore every member
  // from the checkpoint set on its new node.
  if (rt.app != nullptr) rt.app->begin_rollback();
  for (std::uint32_t i = 0; i < vc.size(); ++i) {
    vm::VirtualMachine& m = vc.machine(i);
    if (m.state() == vm::DomainState::kRunning) m.pause();
    const hw::NodeId old_node = vc.placement(i);
    if (old_node != hw::kInvalidNode) {
      fleet_->on_node(old_node).evict(m);
    }
  }
  unclaim(vc);
  vc.placement_ = std::move(new_placement);
  claim(vc);
  ++vc.instantiations_;

  const storage::CheckpointSetId set = vc.last_checkpoint_.set;
  const std::uint64_t lsn =
      journal(IntentKind::kRestore, vc.id(), vc.checkpoint_label());
  const auto span =
      telemetry::begin_span(metrics_, sim_->now(), "dvc", "restore");
  const sim::Time restore_begin = sim_->now();
  // Captured by copy: the chain-staging failure path below needs `done`
  // too, and must not find a moved-from shell when staging fails.
  const auto restore_members = [this, &vc, set, span, restore_begin, lsn,
                                issued = epoch_, done]() {
    auto remaining = std::make_shared<std::uint32_t>(vc.size());
    auto all_ok = std::make_shared<bool>(true);
    for (std::uint32_t i = 0; i < vc.size(); ++i) {
      fleet_->on_node(vc.placement(i))
          .restore_domain(vc.machine(i), *images_, set, i,
                          vc.last_checkpoint_.app_snapshots.at(i),
                          [this, &vc, remaining, all_ok, span, restore_begin,
                           lsn, cb = done](bool ok) {
                            if (!ok) *all_ok = false;
                            if (--*remaining == 0) {
                              vc.state_ = *all_ok ? VcState::kRunning
                                                  : VcState::kProvisioning;
                              close_intent(lsn);
                              telemetry::end_span(metrics_, span,
                                                  sim_->now());
                              telemetry::count(
                                  metrics_,
                                  *all_ok ? "core.dvc.restores"
                                          : "core.dvc.restore_failures");
                              telemetry::observe(
                                  metrics_, "core.dvc.restore_s",
                                  sim::to_seconds(sim_->now() -
                                                  restore_begin));
                              if (check_ != nullptr) {
                                check_->on_vc_boundary(
                                    check::Boundary::kRestore, vc.id());
                              }
                              if (cb) cb(*all_ok);
                            }
                          },
                          issued);
    }
  };

  // Incremental chains first stage every earlier set back to the last
  // full image; the newest set is staged by restore_domain itself.
  std::vector<storage::CheckpointSetId> prior_sets = vc.checkpoint_chain_;
  if (!prior_sets.empty() && prior_sets.back() == set) {
    prior_sets.pop_back();
  }
  if (prior_sets.empty()) {
    restore_members();
    return;
  }
  auto chain_left = std::make_shared<std::size_t>(prior_sets.size());
  auto chain_ok = std::make_shared<bool>(true);
  for (const storage::CheckpointSetId s : prior_sets) {
    images_->stage_set(s, [this, &vc, chain_left, chain_ok, restore_members,
                           span, lsn, done_cb = done](bool ok) {
      if (!ok) *chain_ok = false;
      if (--*chain_left == 0) {
        if (*chain_ok) {
          restore_members();
        } else {
          vc.state_ = VcState::kProvisioning;
          close_intent(lsn);
          telemetry::end_span(metrics_, span, sim_->now());
          telemetry::count(metrics_, "core.dvc.restore_failures");
          if (done_cb) done_cb(false);
        }
      }
    });
  }
}

void DvcManager::migrate_vc(VirtualCluster& vc, ckpt::LscCoordinator& lsc,
                            std::vector<hw::NodeId> new_placement,
                            std::function<void(bool)> done) {
  vc.state_ = VcState::kMigrating;
  const VcId id = vc.id();
  const std::uint64_t issued = epoch_;
  const std::uint64_t lsn =
      journal(IntentKind::kMigrate, id, vc.checkpoint_label());
  lsc.checkpoint(
      vc.checkpoint_label(), save_targets(vc), *images_,
      [this, &vc, id, issued, lsn, placement = std::move(new_placement),
       cb = std::move(done)](ckpt::LscResult r) mutable {
        if (stale_completion(issued)) {
          // The coordinator that ordered the move died while the members
          // were saving. The held domains are reconciled (resumed in place
          // or recovered) by the reboot pass, not here.
          return;
        }
        if (!r.ok) {
          close_intent(lsn);
          vc.state_ = VcState::kRunning;
          if (cb) cb(false);
          return;
        }
        vc.last_checkpoint_ =
            VcCheckpoint{r.set, r.app_snapshots, sim_->now()};
        ++migrations_;
        telemetry::count(metrics_, "core.dvc.migrations");
        restore_vc(vc, std::move(placement),
                   [this, id, lsn, cb = std::move(cb)](bool ok) {
                     close_intent(lsn);
                     if (!ok) {
                       // The hold-save sealed but the restore side died
                       // (target node or store fault mid-stage). The
                       // members are frozen with a durable recovery point:
                       // roll the whole VC back from it rather than leave
                       // the cluster wedged between two placements.
                       const auto rit = vcs_.find(id);
                       if (rit != vcs_.end() &&
                           rit->second.vc->has_checkpoint() &&
                           !rit->second.recovery_in_flight &&
                           rit->second.vc->state_ != VcState::kFailed) {
                         rit->second.recovery_in_flight = true;
                         recover(rit->second);
                       }
                     }
                     if (cb) cb(ok);
                   });
      },
      /*resume_after_save=*/false);
}

void DvcManager::live_migrate_vc(
    VirtualCluster& vc, std::vector<hw::NodeId> new_placement,
    LiveMigrationConfig cfg, std::function<void(LiveMigrationStats)> done) {
  if (new_placement.size() != vc.size()) {
    throw std::invalid_argument("placement size != vc size");
  }
  vc.state_ = VcState::kMigrating;
  const std::vector<hw::NodeId> old_placement = vc.placements();
  // Reserve the targets up front so nothing else lands on them mid-move.
  for (const hw::NodeId n : new_placement) claimed_[n] = vc.id();

  struct MoveState {
    LiveMigrationStats stats;
    std::uint32_t outstanding;
    sim::Time started;
    std::vector<hw::NodeId> old_placement;
    std::vector<hw::NodeId> new_placement;
    std::function<void(LiveMigrationStats)> done;
    bool any_failed = false;
  };
  auto ms = std::make_shared<MoveState>();
  ms->outstanding = vc.size();
  ms->started = sim_->now();
  ms->old_placement = old_placement;
  ms->new_placement = new_placement;
  ms->done = std::move(done);

  const double per_vm_bw = cfg.bandwidth_bps / vc.size();
  const VcId id = vc.id();

  auto finish_member = [this, ms, id, &vc](std::uint32_t /*member*/,
                                           bool ok) {
    if (!ok) ms->any_failed = true;
    if (--ms->outstanding != 0) return;
    // Release sources that are not reused as targets.
    for (const hw::NodeId old : ms->old_placement) {
      if (std::find(ms->new_placement.begin(), ms->new_placement.end(),
                    old) == ms->new_placement.end()) {
        const auto it = claimed_.find(old);
        if (it != claimed_.end() && it->second == id) claimed_.erase(it);
      }
    }
    ms->stats.ok = !ms->any_failed;
    ms->stats.total_time = sim_->now() - ms->started;
    vc.state_ = ms->any_failed ? VcState::kProvisioning : VcState::kRunning;
    if (ms->stats.ok) {
      ++live_migrations_;
      telemetry::count(metrics_, "core.dvc.live_migrations");
      telemetry::observe(metrics_, "core.dvc.live_migrate_downtime_s",
                         sim::to_seconds(ms->stats.max_downtime));
    }
    if (ms->done) ms->done(ms->stats);
  };

  for (std::uint32_t i = 0; i < vc.size(); ++i) {
    vm::VirtualMachine& m = vc.machine(i);
    const hw::NodeId src = vc.placement(i);
    const hw::NodeId dst = new_placement[i];
    // Iterative pre-copy: stream the whole guest while it runs, then
    // stream what it dirtied meanwhile, and so on until the residual is
    // small (or we give up and eat a longer stop-and-copy).
    auto round = std::make_shared<std::function<void(double, int)>>();
    *round = [this, ms, round, &vc, &m, i, src, dst, per_vm_bw, cfg,
              finish_member](double residual, int round_no) {
      if (m.state() == vm::DomainState::kDead ||
          fabric_->node(dst).failed()) {
        finish_member(i, false);
        return;
      }
      const double dirty = m.config().dirty_rate_bps;
      if (residual > static_cast<double>(cfg.stop_copy_threshold) &&
          round_no < cfg.max_precopy_rounds) {
        const double t = residual / per_vm_bw;
        ms->stats.bytes_moved += residual;
        sim_->schedule_after(sim::from_seconds(t),
                             [round, residual, t, dirty, round_no] {
                               const double next = std::min(
                                   residual, dirty * t);
                               (*round)(next, round_no + 1);
                             });
        return;
      }
      // Final stop-and-copy of the residual: the only downtime the guest
      // sees.
      m.pause();
      ms->stats.bytes_moved += residual;
      const sim::Duration downtime =
          sim::from_seconds(residual / per_vm_bw) +
          fleet_->on_node(dst).config().restore_overhead;
      sim_->schedule_after(downtime, [this, ms, &vc, &m, i, src, dst,
                                      downtime, finish_member] {
        if (m.state() == vm::DomainState::kDead ||
            fabric_->node(dst).failed()) {
          finish_member(i, false);
          return;
        }
        fleet_->on_node(src).evict(m);
        fleet_->on_node(dst).adopt(m);
        vc.placement_[i] = dst;
        m.resume();
        ms->stats.max_downtime = std::max(ms->stats.max_downtime, downtime);
        finish_member(i, true);
      });
    };
    (*round)(static_cast<double>(m.config().ram_bytes), 0);
  }
}

void DvcManager::enable_auto_recovery(VirtualCluster& vc,
                                      RecoveryPolicy policy) {
  if (policy.coordinator == nullptr) {
    throw std::invalid_argument("recovery policy needs a coordinator");
  }
  vcs_.at(vc.id()).policy = policy;
  // Take checkpoint #0 right away: a failure in the first interval would
  // otherwise find nothing to roll back to and lose the whole run.
  const VcId id = vc.id();
  sim_->schedule_after(0, [this, id] {
    const auto it = vcs_.find(id);
    if (it == vcs_.end() || !it->second.policy || !coordinator_up_) return;
    VcRuntime& rt = it->second;
    if (rt.vc->state_ != VcState::kRunning || rt.checkpoint_in_flight) {
      return;
    }
    rt.checkpoint_in_flight = true;
    checkpoint_vc(*rt.vc, *rt.policy->coordinator,
                  [this, id](const ckpt::LscResult&) {
                    const auto cit = vcs_.find(id);
                    if (cit != vcs_.end()) {
                      cit->second.checkpoint_in_flight = false;
                    }
                  });
  });
  schedule_periodic_checkpoint(vc.id());
  schedule_member_watchdog(vc.id());
}

void DvcManager::disable_auto_recovery(VirtualCluster& vc) {
  auto it = vcs_.find(vc.id());
  if (it != vcs_.end()) it->second.policy.reset();
}

void DvcManager::schedule_periodic_checkpoint(VcId id) {
  const auto it = vcs_.find(id);
  if (it == vcs_.end() || !it->second.policy) return;
  const sim::Duration interval = it->second.policy->interval;
  // Periodic checkpointing is housekeeping: it protects foreground work
  // but must not keep the simulation alive once that work is done.
  sim_->schedule_daemon_after(interval, [this, id] {
    auto rit = vcs_.find(id);
    if (rit == vcs_.end() || !rit->second.policy) return;
    VcRuntime& rt = rit->second;
    // A downed coordinator skips the tick but keeps the loop alive: the
    // cadence resumes by itself once a new incarnation boots.
    if (coordinator_up_ && rt.vc->state_ == VcState::kRunning &&
        !rt.recovery_in_flight && !rt.checkpoint_in_flight) {
      rt.checkpoint_in_flight = true;
      // Incremental rounds between periodic full images (bounding the
      // restore chain). Old generations are collected by the refcounted
      // GC inside push_generation, which keeps a shared base full image
      // alive for as long as any retained chain still stages it.
      const bool incremental =
          rt.policy->incremental &&
          (++rt.ckpt_round % std::max(rt.policy->full_every, 1)) != 0;
      checkpoint_vc(
          *rt.vc, *rt.policy->coordinator,
          [this, id](const ckpt::LscResult&) {
            auto cit = vcs_.find(id);
            if (cit != vcs_.end()) {
              cit->second.checkpoint_in_flight = false;
            }
          },
          incremental);
    }
    schedule_periodic_checkpoint(id);
  });
}

void DvcManager::schedule_member_watchdog(VcId id) {
  const auto it = vcs_.find(id);
  if (it == vcs_.end() || !it->second.policy ||
      it->second.policy->watchdog_interval <= 0) {
    return;
  }
  // A daemon, like the checkpoint loop: supervision must not keep an
  // otherwise-finished run alive.
  sim_->schedule_daemon_after(it->second.policy->watchdog_interval,
                              [this, id] {
    const auto rit = vcs_.find(id);
    if (rit == vcs_.end() || !rit->second.policy) return;
    VcRuntime& rt = rit->second;
    if (coordinator_up_ && !rt.recovery_in_flight &&
        rt.vc->has_checkpoint() &&
        rt.vc->state_ != VcState::kDestroyed &&
        rt.vc->state_ != VcState::kRecovering &&
        rt.vc->state_ != VcState::kFailed) {
      bool member_dead = false;
      for (std::uint32_t i = 0; i < rt.vc->size(); ++i) {
        const hw::NodeId n = rt.vc->placement(i);
        if (rt.vc->machine(i).state() == vm::DomainState::kDead ||
            n == hw::kInvalidNode || fabric_->node(n).failed()) {
          member_dead = true;
          break;
        }
      }
      // An application-level abort (a rank's transport gave up) with every
      // member nominally alive: nothing else in the failure feed will ever
      // fire, so the watchdog is the only path back to the checkpoint.
      const bool app_failed = rt.app != nullptr && rt.app->failed() &&
                              !rt.app->completed();
      // Never roll back a finished job, even with a dead member: the
      // results are in, only idle guests would be resurrected.
      const bool job_live = rt.app == nullptr || !rt.app->completed();
      if ((member_dead && job_live) || app_failed) {
        ++watchdog_detections_;
        telemetry::count(metrics_, "core.dvc.watchdog_detections");
        telemetry::instant(metrics_, sim_->now(), "dvc", "watchdog_detect");
        sim::trace(trace_, sim_->now(), sim::TraceLevel::kWarn, "dvc",
                   "vc#" + std::to_string(id) +
                       (member_dead ? " watchdog: dead member,"
                                    : " watchdog: application failure,") +
                       " restoring from last checkpoint");
        rt.recovery_in_flight = true;
        recover(rt);
      }
    }
    schedule_member_watchdog(id);
  });
}

void DvcManager::on_node_failure(hw::NodeId node) {
  if (node == head_node_ && coordinator_up_) {
    // The control plane lives on this node: the coordinator dies with it
    // and comes back only when the hardware does.
    sim::trace(trace_, sim_->now(), sim::TraceLevel::kError, "dvc",
               "head node " + std::to_string(node) +
                   " died; coordinator down with it");
    crash_coordinator(/*down_for=*/0);
    watch_head_repair();
  }
  const auto cit = claimed_.find(node);
  if (cit == claimed_.end()) return;
  if (!coordinator_up_) {
    // Nobody is home to run the failure feed. The member's death is not
    // lost: the reboot's reconciliation pass re-derives it from ground
    // truth, and the watchdog re-checks every sweep.
    telemetry::count(metrics_, "core.dvc.failures_while_headless");
    return;
  }
  const VcId id = cit->second;
  auto it = vcs_.find(id);
  if (it == vcs_.end()) return;
  VcRuntime& rt = it->second;
  if (!rt.policy || rt.recovery_in_flight || !rt.vc->has_checkpoint()) {
    return;
  }
  // A finished job has nothing left to protect: rolling it back would
  // resurrect ranks just to redo work whose results already exist.
  if (rt.app != nullptr && rt.app->completed()) return;
  rt.recovery_in_flight = true;
  sim_->schedule_after(kFailureDetectionDelay, [this, id] {
    const auto rit = vcs_.find(id);
    if (rit != vcs_.end()) recover(rit->second);
  });
}

void DvcManager::on_failure_prediction(hw::NodeId node,
                                       sim::Duration /*lead*/) {
  const auto cit = claimed_.find(node);
  if (cit == claimed_.end()) return;
  const VcId id = cit->second;
  const auto it = vcs_.find(id);
  if (it == vcs_.end()) return;
  VcRuntime& rt = it->second;
  if (!coordinator_up_ || !rt.policy || !rt.policy->proactive_migration ||
      rt.recovery_in_flight || rt.vc->state_ != VcState::kRunning) {
    return;
  }

  // Evacuate: the same mapping with the suspect node swapped for a spare.
  VirtualCluster& vc = *rt.vc;
  std::vector<hw::NodeId> placement = vc.placements();
  hw::NodeId spare = hw::kInvalidNode;
  for (const hw::NodeId n : fabric_->healthy_nodes()) {
    if (n == node) continue;
    if (claimed_.contains(n)) continue;
    if (fabric_->condemned(n)) continue;  // also under a death sentence
    spare = n;
    break;
  }
  if (spare == hw::kInvalidNode) return;  // reactive recovery will handle it
  bool found = false;
  for (auto& n : placement) {
    if (n == node) {
      n = spare;
      found = true;
      break;
    }
  }
  if (!found) return;

  rt.recovery_in_flight = true;
  migrate_vc(vc, *rt.policy->coordinator, std::move(placement),
             [this, id](bool ok) {
               const auto rit = vcs_.find(id);
               if (rit == vcs_.end()) return;
               rit->second.recovery_in_flight = false;
               if (ok) {
                 ++evacuations_;
                 telemetry::count(metrics_, "core.dvc.evacuations");
                 sim::trace(trace_, sim_->now(), sim::TraceLevel::kInfo,
                            "dvc", "vc#" + std::to_string(id) +
                                       " evacuated ahead of the fault");
               } else {
                 // The fault struck mid-evacuation: fall back to reactive
                 // rollback from the last durable checkpoint.
                 rit->second.recovery_in_flight = true;
                 recover(rit->second);
               }
             });
}

void DvcManager::recover(VcRuntime& rt) {
  if (!coordinator_up_) {
    // A retry landed while the control plane was down. Leave
    // recovery_in_flight set: the reboot's reconciliation pass clears it
    // and re-issues the recovery under the new epoch.
    return;
  }
  VirtualCluster& vc = *rt.vc;
  const bool relocate_all = rt.policy && rt.policy->relocate_all;

  // Build the new mapping: keep healthy nodes unless the policy relocates
  // everything; replace dead (or relinquished) slots from the free pool.
  std::vector<hw::NodeId> placement(vc.size(), hw::kInvalidNode);
  std::vector<std::uint32_t> needs_new;
  for (std::uint32_t i = 0; i < vc.size(); ++i) {
    const hw::NodeId n = vc.placement(i);
    if (!relocate_all && n != hw::kInvalidNode && !fabric_->node(n).failed()) {
      placement[i] = n;
    } else {
      needs_new.push_back(i);
    }
  }
  if (!needs_new.empty()) {
    // Free pool: healthy, not claimed by another VC, not already reused.
    // When relocating everything, prefer nodes outside the current mapping
    // ("restart ... on a different set of physical nodes"), falling back
    // to reuse only if fresh nodes are scarce.
    const auto build_pool = [&](bool avoid_current) {
      std::vector<hw::NodeId> pool;
      for (const hw::NodeId n : fabric_->healthy_nodes()) {
        const auto c = claimed_.find(n);
        const bool claimed_by_other =
            c != claimed_.end() && c->second != vc.id();
        const bool reused =
            std::find(placement.begin(), placement.end(), n) !=
            placement.end();
        const bool current =
            avoid_current &&
            std::find(vc.placement_.begin(), vc.placement_.end(), n) !=
                vc.placement_.end();
        if (!claimed_by_other && !reused && !current &&
            !fabric_->condemned(n)) {
          pool.push_back(n);
        }
      }
      return pool;
    };
    std::vector<hw::NodeId> pool = build_pool(relocate_all);
    if (relocate_all && pool.size() < needs_new.size()) {
      pool = build_pool(false);
    }
    if (pool.size() < needs_new.size()) {
      // Not enough spares right now; retry later (a repair or another VC's
      // teardown may free nodes).
      const VcId id = vc.id();
      sim_->schedule_after(kRecoveryRetryDelay, [this, id] {
        const auto rit = vcs_.find(id);
        if (rit != vcs_.end()) recover(rit->second);
      });
      return;
    }
    for (std::size_t k = 0; k < needs_new.size(); ++k) {
      placement[needs_new[k]] = pool[k];
    }
  }

  const VcId id = vc.id();
  restore_vc(vc, std::move(placement), [this, id,
                                        issued = epoch_](bool ok) {
    if (stale_completion(issued)) {
      // The recovering incarnation died mid-restore; the new one owns the
      // cluster and will re-derive what recovery (if any) is still needed.
      return;
    }
    const auto rit = vcs_.find(id);
    if (rit == vcs_.end()) return;
    VcRuntime& rt = rit->second;
    rt.recovery_in_flight = false;
    if (ok) {
      rt.restore_attempts = 0;
      ++recoveries_;
      ++rt.vc->recoveries_;
      telemetry::count(metrics_, "core.dvc.recoveries");
      telemetry::instant(metrics_, sim_->now(), "dvc", "recovered");
      sim::trace(trace_, sim_->now(), sim::TraceLevel::kInfo, "dvc",
                 "vc#" + std::to_string(id) + " recovered");
      if (check_ != nullptr) {
        check_->on_vc_boundary(check::Boundary::kRecovery, id);
      }
      return;
    }
    if (chain_damaged(*rt.vc)) {
      // The recovery point itself is bad (torn or corrupted images that
      // no replica could mask). Retrying it would wedge forever; walk
      // back a generation and re-run the lost work instead.
      ++restore_fallbacks_;
      telemetry::count(metrics_, "core.dvc.restore_fallbacks");
      telemetry::instant(metrics_, sim_->now(), "dvc", "restore_fallback");
      if (!fall_back_generation(rt)) {
        abandon_recovery(rt, "every checkpoint generation is damaged");
        return;
      }
      sim::trace(trace_, sim_->now(), sim::TraceLevel::kWarn, "dvc",
                 "vc#" + std::to_string(id) +
                     " checkpoint damaged; falling back to set " +
                     std::to_string(rt.vc->last_checkpoint_.set));
      rt.restore_attempts = 0;
      rt.recovery_in_flight = true;
      sim_->schedule_after(kFailureDetectionDelay, [this, id] {
        const auto r2 = vcs_.find(id);
        if (r2 != vcs_.end()) recover(r2->second);
      });
      return;
    }
    // A transient restore-path fault (e.g. another node died mid-restore):
    // retry with re-resolved placement, but only within the budget — an
    // unbounded loop here is indistinguishable from a hang.
    const int budget = rt.policy ? rt.policy->max_restore_retries
                                 : RecoveryPolicy{}.max_restore_retries;
    if (++rt.restore_attempts > budget) {
      abandon_recovery(rt, "restore retry budget exhausted");
      return;
    }
    rt.recovery_in_flight = true;
    sim_->schedule_after(kRecoveryRetryDelay, [this, id] {
      const auto r2 = vcs_.find(id);
      if (r2 != vcs_.end()) recover(r2->second);
    });
  });
}

void DvcManager::push_generation(VirtualCluster& vc) {
  vc.generations_.push_back(
      VcGeneration{vc.last_checkpoint_, vc.checkpoint_chain_});
  for (const storage::CheckpointSetId s : vc.checkpoint_chain_) {
    ++set_refs_[s];
  }
  const auto it = vcs_.find(vc.id());
  if (it == vcs_.end() || !it->second.policy) return;
  const std::size_t keep =
      std::max<std::size_t>(1, it->second.policy->keep_checkpoints);
  while (vc.generations_.size() > keep) {
    release_generation(vc.generations_.front());
    vc.generations_.erase(vc.generations_.begin());
  }
}

void DvcManager::release_generation(const VcGeneration& g) {
  for (const storage::CheckpointSetId s : g.chain) {
    const auto it = set_refs_.find(s);
    if (it == set_refs_.end()) continue;
    if (--it->second == 0) {
      set_refs_.erase(it);
      const std::uint64_t lsn =
          journal(IntentKind::kRetire, 0, "set#" + std::to_string(s));
      images_->discard_set(s, epoch_);
      close_intent(lsn);
    }
  }
}

bool DvcManager::generation_damaged(const VcGeneration& g) const {
  for (const storage::CheckpointSetId s : g.chain) {
    const storage::CheckpointSet* cs = images_->find_set(s);
    if (cs == nullptr || cs->damaged) return true;
  }
  return g.chain.empty();
}

bool DvcManager::chain_damaged(const VirtualCluster& vc) const {
  if (!vc.checkpoint_chain_.empty()) {
    for (const storage::CheckpointSetId s : vc.checkpoint_chain_) {
      const storage::CheckpointSet* cs = images_->find_set(s);
      if (cs == nullptr || cs->damaged) return true;
    }
    return false;
  }
  const storage::CheckpointSet* cs =
      images_->find_set(vc.last_checkpoint_.set);
  return cs == nullptr || cs->damaged;
}

bool DvcManager::fall_back_generation(VcRuntime& rt) {
  VirtualCluster& vc = *rt.vc;
  auto& gens = vc.generations_;
  // Quarantine the current recovery point. Normally it is the newest
  // generation; a migration checkpoint can sit outside the list, in which
  // case only its set is discarded.
  if (!gens.empty() && gens.back().checkpoint.set == vc.last_checkpoint_.set) {
    release_generation(gens.back());
    gens.pop_back();
  } else {
    images_->discard_set(vc.last_checkpoint_.set, epoch_);
  }
  // Walk back to the newest generation not already known to be damaged.
  while (!gens.empty() && generation_damaged(gens.back())) {
    release_generation(gens.back());
    gens.pop_back();
  }
  if (gens.empty()) {
    vc.last_checkpoint_ = VcCheckpoint{};
    vc.checkpoint_chain_.clear();
    return false;
  }
  vc.last_checkpoint_ = gens.back().checkpoint;
  vc.checkpoint_chain_ = gens.back().chain;
  return true;
}

void DvcManager::abandon_recovery(VcRuntime& rt, const std::string& why) {
  VirtualCluster& vc = *rt.vc;
  vc.state_ = VcState::kFailed;
  vc.last_checkpoint_ = VcCheckpoint{};
  vc.checkpoint_chain_.clear();
  rt.recovery_in_flight = false;
  ++recoveries_abandoned_;
  telemetry::count(metrics_, "core.dvc.recoveries_abandoned");
  telemetry::instant(metrics_, sim_->now(), "dvc", "recovery_abandoned");
  sim::trace(trace_, sim_->now(), sim::TraceLevel::kError, "dvc",
             "vc#" + std::to_string(vc.id()) + " recovery abandoned: " + why);
  // End the run *diagnosed*: downstream supervisors (dvcsim, the soak
  // harness, the RM) key off the application's failure flag.
  if (rt.app != nullptr) rt.app->mark_failed("recovery abandoned: " + why);
  if (check_ != nullptr) {
    check_->on_vc_boundary(check::Boundary::kRecovery, vc.id());
  }
}

void DvcManager::recover_now(VirtualCluster& vc) {
  VcRuntime& rt = vcs_.at(vc.id());
  if (!coordinator_up_ || rt.recovery_in_flight || !vc.has_checkpoint()) {
    return;
  }
  rt.recovery_in_flight = true;
  recover(rt);
}

// ---- coordinator fault domain ----------------------------------------------

void DvcManager::set_fence(storage::EpochFence* fence) noexcept {
  fence_ = fence;
  epoch_ = fence == nullptr ? storage::kUnfencedEpoch : fence->current();
}

void DvcManager::designate_head_node(hw::NodeId head, sim::Duration lease) {
  if (head >= fabric_->node_count()) {
    throw std::invalid_argument("head node outside the fabric");
  }
  if (lease <= 0) throw std::invalid_argument("lease must be positive");
  head_node_ = head;
  lease_ = lease;
  if (fence_ != nullptr) epoch_ = fence_->current();
  if (wal_ == nullptr) {
    wal_ = std::make_unique<IntentLog>(images_->store());
    wal_->set_metrics(metrics_);
  }
  renew_lease();
  if (!lease_daemon_armed_) {
    lease_daemon_armed_ = true;
    sim_->schedule_daemon_after(lease_ / 2, [this] { lease_renewal_tick(); });
  }
  sim::trace(trace_, sim_->now(), sim::TraceLevel::kInfo, "dvc",
             "coordinator head = node " + std::to_string(head) +
                 ", epoch " + std::to_string(epoch_));
}

void DvcManager::renew_lease() {
  if (head_node_ == hw::kInvalidNode) return;
  lease_expiry_local_ = time_->clock(head_node_).local_now() + lease_;
}

// Renews at half-lease cadence on the head node's synced clock; a crashed
// coordinator simply stops renewing and its lease runs out.
void DvcManager::lease_renewal_tick() {
  if (head_node_ == hw::kInvalidNode) return;  // un-designated
  if (coordinator_up_ && !fabric_->node(head_node_).failed()) {
    renew_lease();
  }
  sim_->schedule_daemon_after(lease_ / 2, [this] { lease_renewal_tick(); });
}

void DvcManager::crash_coordinator(sim::Duration down_for) {
  if (!coordinator_up_) return;
  coordinator_up_ = false;
  ++coordinator_crashes_;
  telemetry::count(metrics_, "core.dvc.coordinator_crashes");
  telemetry::instant(metrics_, sim_->now(), "dvc", "coordinator_crash");
  sim::trace(trace_, sim_->now(), sim::TraceLevel::kError, "dvc",
             "coordinator crashed (epoch " + std::to_string(epoch_) + ")");
  if (down_for > 0) {
    sim_->schedule_after(down_for, [this] { reboot_coordinator(); });
  }
}

void DvcManager::watch_head_repair() {
  if (repair_watch_armed_) return;
  repair_watch_armed_ = true;
  constexpr sim::Duration kRepairPoll = 5 * sim::kSecond;
  sim_->schedule_daemon_after(kRepairPoll, [this] { poll_head_repair(); });
}

void DvcManager::poll_head_repair() {
  if (coordinator_up_ || head_node_ == hw::kInvalidNode) {
    repair_watch_armed_ = false;
    return;
  }
  if (!fabric_->node(head_node_).failed()) {
    repair_watch_armed_ = false;
    reboot_coordinator();
    return;
  }
  constexpr sim::Duration kRepairPoll = 5 * sim::kSecond;
  sim_->schedule_daemon_after(kRepairPoll, [this] { poll_head_repair(); });
}

void DvcManager::reboot_coordinator() {
  if (coordinator_up_) return;
  if (head_node_ != hw::kInvalidNode &&
      fabric_->node(head_node_).failed()) {
    // The head's hardware is still dark: boot when it is repaired.
    watch_head_repair();
    return;
  }
  if (head_node_ != hw::kInvalidNode) {
    // Wait out the deposed incarnation's lease on the head node's synced
    // clock before fencing: an incarnation that merely lost touch may
    // keep issuing admitted writes until *its* clock passes the expiry,
    // and advancing the epoch earlier would race it instead of fencing it.
    clocksync::HostClock& clock = time_->clock(head_node_);
    if (clock.local_now() < lease_expiry_local_) {
      // The local->sim mapping truncates, so the mapped instant can read
      // one local tick short of the expiry; nudge the wake-up strictly
      // forward so the wait always terminates.
      const sim::Time wake =
          std::max(clock.to_sim(lease_expiry_local_), sim_->now()) + 1;
      sim_->schedule_at(wake, [this] { reboot_coordinator(); });
      return;
    }
  }
  if (fence_ != nullptr) epoch_ = fence_->advance();
  coordinator_up_ = true;
  ++coordinator_reboots_;
  telemetry::count(metrics_, "core.dvc.coordinator_reboots");
  telemetry::instant(metrics_, sim_->now(), "dvc", "coordinator_reboot");
  sim::trace(trace_, sim_->now(), sim::TraceLevel::kWarn, "dvc",
             "coordinator rebooted, epoch " + std::to_string(epoch_));
  renew_lease();
  recover_control_plane();
}

bool DvcManager::stale_completion(std::uint64_t issued_epoch) {
  if (coordinator_up_ && issued_epoch == epoch_) return false;
  ++stale_completions_;
  telemetry::count(metrics_, "core.dvc.stale_completions");
  return true;
}

std::uint64_t DvcManager::journal(IntentKind kind, VcId vc,
                                  const std::string& label) {
  if (wal_ == nullptr || !coordinator_up_) return 0;
  return wal_->append(kind, vc, label, epoch_);
}

void DvcManager::close_intent(std::uint64_t lsn) {
  if (wal_ == nullptr || lsn == 0) return;
  wal_->close(lsn);
}

void DvcManager::recover_control_plane() {
  // Phase 1: read back the journal. Every open entry names an operation
  // the dead incarnation started but never finished; the entries drive
  // telemetry and tracing, while the authoritative repair below works
  // from store and hypervisor ground truth (the journal records intent,
  // not effect).
  if (wal_ != nullptr) {
    for (const auto& [lsn, e] : wal_->open_intents()) {
      telemetry::count(metrics_, "core.dvc.wal_replayed");
      sim::trace(trace_, sim_->now(), sim::TraceLevel::kWarn, "dvc",
                 "wal: open " + std::string(to_string(e.kind)) + " intent " +
                     "#" + std::to_string(lsn) + " (" + e.label + ")");
    }
  }
  // Phase 2: reconcile every VC against ground truth.
  for (auto& [id, rt] : vcs_) reconcile_vc(rt);
  // Phase 3: the journal is now fully resolved.
  if (wal_ != nullptr) {
    while (!wal_->open_intents().empty()) {
      wal_->close(wal_->open_intents().begin()->first);
    }
  }
}

void DvcManager::reconcile_vc(VcRuntime& rt) {
  VirtualCluster& vc = *rt.vc;
  if (vc.state_ == VcState::kDestroyed || vc.state_ == VcState::kFailed) {
    return;
  }
  // The dead incarnation's in-flight flags mean nothing now.
  rt.checkpoint_in_flight = false;
  rt.recovery_in_flight = false;

  // Orphaned checkpoint sets: anything in the store under this VC's label
  // that no retained generation references and that is not the current
  // recovery point was written by a round whose coordinator died. A sealed
  // orphan is discarded — its app snapshots lived in coordinator memory,
  // so it can never be restored and would only shadow the real recovery
  // point as latest_sealed(). A half-open orphan is aborted so its members
  // are garbage-collected instead of waiting forever to seal.
  for (const storage::CheckpointSet* s :
       images_->sets_with_label(vc.checkpoint_label())) {
    if (s->aborted || set_refs_.contains(s->id) ||
        s->id == vc.last_checkpoint_.set) {
      continue;
    }
    if (s->sealed) {
      ++orphan_sets_discarded_;
      telemetry::count(metrics_, "core.dvc.orphan_sets_discarded");
      images_->discard_set(s->id, epoch_);
    } else {
      ++orphan_rounds_aborted_;
      telemetry::count(metrics_, "core.dvc.orphan_rounds_aborted");
      images_->abort_set(s->id, epoch_);
    }
  }

  // Domain reconcile: decide between resume-in-place and whole-VC
  // recovery from the surviving recovery point.
  bool member_dead = false;
  bool member_paused = false;
  for (std::uint32_t i = 0; i < vc.size(); ++i) {
    const hw::NodeId n = vc.placement(i);
    const vm::DomainState st = vc.machine(i).state();
    if (st == vm::DomainState::kDead || n == hw::kInvalidNode ||
        fabric_->node(n).failed()) {
      member_dead = true;
    } else if (st != vm::DomainState::kRunning) {
      member_paused = true;
    }
  }
  const bool job_live = rt.app == nullptr || !rt.app->completed();
  const bool app_failed =
      rt.app != nullptr && rt.app->failed() && job_live;
  if (!job_live) return;  // results are in; never resurrect idle guests

  // Only a transitional control-plane state may have frozen members to
  // thaw; a VC still provisioning has legitimately-paused guests whose
  // boots are in flight, and must not be "resumed" past them.
  const bool transitional = vc.state_ == VcState::kCheckpointing ||
                            vc.state_ == VcState::kMigrating ||
                            vc.state_ == VcState::kRecovering;
  if (!member_dead && !app_failed) {
    if (member_paused && transitional) {
      // A round (checkpoint save, or a migration's save-and-hold) froze
      // members and died before resuming or moving them. Everybody is
      // alive and the images are swept, so thaw the cluster in place.
      telemetry::count(metrics_, "core.dvc.reconcile_resumes");
      sim::trace(trace_, sim_->now(), sim::TraceLevel::kWarn, "dvc",
                 "vc#" + std::to_string(vc.id()) +
                     " reconciled: resuming held members in place");
      for (std::uint32_t i = 0; i < vc.size(); ++i) {
        fleet_->on_node(vc.placement(i)).resume_domain(vc.machine(i));
      }
    }
    if (vc.state_ == VcState::kCheckpointing ||
        vc.state_ == VcState::kMigrating ||
        vc.state_ == VcState::kRecovering) {
      vc.state_ = VcState::kRunning;
    }
    return;
  }
  // A member is gone (or the app aborted): the only consistent path is a
  // whole-VC rollback to the last durable recovery point.
  if (vc.has_checkpoint()) {
    telemetry::count(metrics_, "core.dvc.reconcile_recoveries");
    sim::trace(trace_, sim_->now(), sim::TraceLevel::kWarn, "dvc",
               "vc#" + std::to_string(vc.id()) +
                   " reconciled: recovering from last checkpoint");
    rt.recovery_in_flight = true;
    recover(rt);
  } else {
    abandon_recovery(rt, "coordinator rebooted over a degraded VC with no "
                         "durable checkpoint");
  }
}

void DvcManager::claim(VirtualCluster& vc) {
  for (const hw::NodeId n : vc.placement_) {
    if (n != hw::kInvalidNode) claimed_[n] = vc.id();
  }
}

void DvcManager::unclaim(VirtualCluster& vc) {
  for (const hw::NodeId n : vc.placement_) {
    const auto it = claimed_.find(n);
    if (it != claimed_.end() && it->second == vc.id()) claimed_.erase(it);
  }
}

}  // namespace dvc::core
