#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"
#include "telemetry/telemetry.hpp"

namespace dvc::net {

/// Identifier of a network attachment point (a physical node's NIC or a
/// virtual machine's virtual NIC — the fabric does not care which).
using HostId = std::uint32_t;

inline constexpr HostId kInvalidHost = 0xffffffffu;

/// A (host, port) endpoint address.
struct Address {
  HostId host = kInvalidHost;
  std::uint16_t port = 0;

  friend bool operator==(const Address&, const Address&) = default;
};

struct AddressHash {
  std::size_t operator()(const Address& a) const noexcept {
    return (static_cast<std::size_t>(a.host) << 16) ^ a.port;
  }
};

/// Wire packet. The simulator is metadata-only: packets carry sizes and
/// protocol fields, never real payload bytes.
struct Packet {
  enum class Kind : std::uint8_t {
    kData,      ///< reliable-channel data segment
    kAck,       ///< reliable-channel cumulative acknowledgement
    kDatagram,  ///< fire-and-forget control datagram
  };

  Address src;
  Address dst;
  Kind kind = Kind::kDatagram;
  std::uint64_t seq = 0;       ///< data: segment sequence number
  std::uint64_t ack = 0;       ///< ack: cumulative acknowledged sequence
  std::uint32_t size_bytes = 0;
  std::uint64_t msg_id = 0;    ///< application message identity
  std::uint32_t tag = 0;       ///< application tag (MPI-style)
  /// Incarnation of the sending endpoint. Bumped on every whole-cluster
  /// rollback (the restored VC gets a fresh virtual network namespace), so
  /// packets still in flight from a pre-rollback incarnation are ignored
  /// by restored endpoints instead of corrupting their sequence space.
  std::uint32_t epoch = 0;
};

/// Per-pair delay/loss/bandwidth model. Implementations must be
/// deterministic given the supplied Rng.
class LinkModel {
 public:
  virtual ~LinkModel() = default;

  /// Propagation + queueing latency for one packet (excluding serialisation).
  [[nodiscard]] virtual sim::Duration latency(HostId src, HostId dst,
                                              sim::Rng& rng) = 0;

  /// Independent drop probability for one packet.
  [[nodiscard]] virtual double loss_probability(HostId src, HostId dst) = 0;

  /// Link bandwidth in bytes per second (serialisation delay component).
  [[nodiscard]] virtual double bandwidth_bps(HostId src, HostId dst) = 0;

  /// Declares which physical cluster a host belongs to. Topology-blind
  /// models ignore this; tiered models use it to pick the right tier (and
  /// to apply fault-injector pair overrides) for guest vNICs, which are
  /// allocated after the physical hosts and follow their VM around.
  virtual void set_cluster(HostId /*host*/, std::uint32_t /*cluster*/) {}
};

/// Uniform fabric: every pair of hosts sees the same base latency, jitter,
/// loss rate and bandwidth. Good enough for single-switch clusters.
class FlatLinkModel final : public LinkModel {
 public:
  struct Config {
    sim::Duration base_latency = 50 * sim::kMicrosecond;
    sim::Duration jitter = 20 * sim::kMicrosecond;  ///< exponential mean
    double loss = 0.0;
    double bandwidth_bps = 125e6;  ///< 1 Gbit/s in bytes/s
  };

  explicit FlatLinkModel(Config cfg) noexcept : cfg_(cfg) {}

  [[nodiscard]] sim::Duration latency(HostId, HostId,
                                      sim::Rng& rng) override {
    return cfg_.base_latency + rng.exponential_duration(cfg_.jitter);
  }
  [[nodiscard]] double loss_probability(HostId, HostId) override {
    return cfg_.loss;
  }
  [[nodiscard]] double bandwidth_bps(HostId, HostId) override {
    return cfg_.bandwidth_bps;
  }

 private:
  Config cfg_;
};

/// Two-tier fabric: hosts belong to clusters; intra-cluster pairs see LAN
/// parameters, inter-cluster pairs see WAN parameters. This models the
/// paper's multi-cluster campus fabric.
class ClusterLinkModel final : public LinkModel {
 public:
  struct Tier {
    sim::Duration base_latency;
    sim::Duration jitter;
    double loss;
    double bandwidth_bps;
  };
  struct Config {
    Tier intra{50 * sim::kMicrosecond, 20 * sim::kMicrosecond, 0.0, 125e6};
    Tier inter{1 * sim::kMillisecond, 300 * sim::kMicrosecond, 0.0, 12.5e6};
  };

  /// Transient fault state for one cluster pair (set by the fault
  /// injector): a cut link drops everything; a degraded one adds loss and
  /// inflates latency. Cleared when the fault lifts.
  struct PairOverride {
    bool cut = false;
    double extra_loss = 0.0;
    double latency_factor = 1.0;
  };

  explicit ClusterLinkModel(Config cfg) noexcept : cfg_(cfg) {}

  /// Declares which cluster a host belongs to (default: cluster 0).
  void set_cluster(HostId host, std::uint32_t cluster) override {
    cluster_of_[host] = cluster;
  }
  [[nodiscard]] std::uint32_t cluster_of(HostId host) const {
    const auto it = cluster_of_.find(host);
    return it == cluster_of_.end() ? 0 : it->second;
  }

  /// Symmetric override: applies to traffic in both directions between the
  /// two clusters (the common whole-link fault).
  void set_pair_override(std::uint32_t cluster_a, std::uint32_t cluster_b,
                         PairOverride o) {
    overrides_[directed_key(cluster_a, cluster_b)] = o;
    overrides_[directed_key(cluster_b, cluster_a)] = o;
  }
  void clear_pair_override(std::uint32_t cluster_a, std::uint32_t cluster_b) {
    overrides_.erase(directed_key(cluster_a, cluster_b));
    overrides_.erase(directed_key(cluster_b, cluster_a));
  }

  /// Directional override: applies only to traffic flowing `from` -> `to`.
  /// Models one-way faults (a dying transceiver, asymmetric routing loss);
  /// the reverse direction keeps its own independent state.
  void set_directed_override(std::uint32_t from, std::uint32_t to,
                             PairOverride o) {
    overrides_[directed_key(from, to)] = o;
  }
  void clear_directed_override(std::uint32_t from, std::uint32_t to) {
    overrides_.erase(directed_key(from, to));
  }

  [[nodiscard]] sim::Duration latency(HostId src, HostId dst,
                                      sim::Rng& rng) override {
    const Tier& t = tier(src, dst);
    sim::Duration d = t.base_latency + rng.exponential_duration(t.jitter);
    if (const PairOverride* o = find_override(src, dst)) {
      d = static_cast<sim::Duration>(static_cast<double>(d) *
                                     o->latency_factor);
    }
    return d;
  }
  [[nodiscard]] double loss_probability(HostId src, HostId dst) override {
    double loss = tier(src, dst).loss;
    if (const PairOverride* o = find_override(src, dst)) {
      if (o->cut) return 1.0;
      loss = loss + o->extra_loss;
      if (loss > 1.0) loss = 1.0;
    }
    return loss;
  }
  [[nodiscard]] double bandwidth_bps(HostId src, HostId dst) override {
    return tier(src, dst).bandwidth_bps;
  }

 private:
  [[nodiscard]] static std::uint64_t directed_key(std::uint32_t from,
                                                  std::uint32_t to) noexcept {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  [[nodiscard]] const Tier& tier(HostId src, HostId dst) const {
    return cluster_of(src) == cluster_of(dst) ? cfg_.intra : cfg_.inter;
  }

  [[nodiscard]] const PairOverride* find_override(HostId src,
                                                  HostId dst) const {
    if (overrides_.empty()) return nullptr;
    const auto it =
        overrides_.find(directed_key(cluster_of(src), cluster_of(dst)));
    return it == overrides_.end() ? nullptr : &it->second;
  }

  Config cfg_;
  std::unordered_map<HostId, std::uint32_t> cluster_of_;
  std::unordered_map<std::uint64_t, PairOverride> overrides_;
};

/// Receives packets addressed to an attached endpoint.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void on_packet(const Packet& p) = 0;
};

/// The simulated fabric: attaches endpoints, applies the link model, and
/// enforces host liveness — packets to or from a down host are dropped,
/// which is exactly how a suspended Xen domain behaves on the wire.
class Network final {
 public:
  Network(sim::Simulation& sim, std::shared_ptr<LinkModel> link,
          sim::Rng rng)
      : sim_(&sim), link_(std::move(link)), rng_(rng) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Allocates a new attachment point, initially up.
  [[nodiscard]] HostId new_host();

  /// Marks a host up (running) or down (paused / saved / failed).
  void set_host_up(HostId host, bool up);
  [[nodiscard]] bool host_up(HostId host) const;

  /// Registers a persistent observer of one host's liveness transitions.
  /// Used by transports to resume retransmission the moment a frozen guest
  /// is thawed, instead of polling. Returns a token for unsubscribe.
  std::uint64_t subscribe_host_state(HostId host,
                                     std::function<void(bool)> fn);
  void unsubscribe_host_state(HostId host, std::uint64_t token);

  /// Binds a sink to an address. The address's host must exist.
  void attach(const Address& addr, PacketSink* sink);
  void detach(const Address& addr);

  /// Injects a packet. Returns false if the source host is down (the packet
  /// is silently not sent, as a frozen guest cannot transmit).
  ///
  /// Each host's egress link serialises its packets: a burst of sends from
  /// one host departs back-to-back at the link bandwidth instead of in
  /// parallel. This is what makes a flat broadcast cost O(P x bytes/bw)
  /// and a binomial tree O(log P x bytes/bw).
  bool send(const Packet& p);

  [[nodiscard]] std::uint64_t packets_sent() const noexcept {
    return sent_;
  }
  [[nodiscard]] std::uint64_t packets_delivered() const noexcept {
    return delivered_;
  }
  [[nodiscard]] std::uint64_t packets_dropped() const noexcept {
    return sent_ - delivered_;
  }

  [[nodiscard]] LinkModel& link_model() noexcept { return *link_; }

  /// Attaches an optional metrics registry (null to detach). The fabric-
  /// level packet/byte counters are cached as raw instrument pointers so
  /// the per-packet cost is one branch + increment.
  void set_metrics(telemetry::MetricsRegistry* m);
  [[nodiscard]] telemetry::MetricsRegistry* metrics() const noexcept {
    return metrics_;
  }

 private:
  void deliver(const Packet& p);

  sim::Simulation* sim_;
  std::shared_ptr<LinkModel> link_;
  sim::Rng rng_;
  std::vector<bool> up_;
  std::vector<sim::Time> egress_free_;  ///< per-host link-idle instant
  std::uint64_t next_observer_token_ = 1;
  std::unordered_map<HostId, std::map<std::uint64_t,
                                      std::function<void(bool)>>>
      state_observers_;
  std::unordered_map<Address, PacketSink*, AddressHash> sinks_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::Counter* packets_sent_c_ = nullptr;
  telemetry::Counter* bytes_sent_c_ = nullptr;
  telemetry::Counter* packets_delivered_c_ = nullptr;
  telemetry::Counter* packets_lost_c_ = nullptr;
  telemetry::Counter* packets_dark_c_ = nullptr;
};

}  // namespace dvc::net
