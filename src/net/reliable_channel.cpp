#include "net/reliable_channel.hpp"

#include <algorithm>

namespace dvc::net {

namespace {
constexpr std::uint32_t kAckBytes = 40;  // header-only wire size
constexpr std::uint32_t kHeaderBytes = 40;
}  // namespace

ReliableEndpoint::ReliableEndpoint(sim::Simulation& sim, Network& net,
                                   Address local, Address peer,
                                   ReliableConfig cfg)
    : sim_(&sim),
      net_(&net),
      local_(local),
      peer_(peer),
      cfg_(cfg),
      rto_(cfg.initial_rto) {
  net_->attach(local_, this);
  host_state_token_ = net_->subscribe_host_state(
      local_.host, [this](bool up) { on_host_state(up); });
}

ReliableEndpoint::~ReliableEndpoint() {
  if (timer_ != sim::kInvalidEvent) sim_->cancel(timer_);
  net_->unsubscribe_host_state(local_.host, host_state_token_);
  net_->detach(local_);
}

std::uint64_t ReliableEndpoint::send(std::uint32_t bytes, std::uint32_t tag) {
  if (state_ == State::kFailed) return 0;
  const std::uint64_t seq = next_seq_++;
  const Pending m{bytes, tag};
  unacked_.emplace(seq, m);
  transmit(seq, m);
  if (timer_ == sim::kInvalidEvent) arm_timer();
  return seq + 1;  // 1-based message id so 0 can mean "not sent"
}

void ReliableEndpoint::transmit(std::uint64_t seq, const Pending& m) {
  Packet p;
  p.src = local_;
  p.dst = peer_;
  p.kind = Packet::Kind::kData;
  p.seq = seq;
  p.size_bytes = m.bytes + kHeaderBytes;
  p.msg_id = seq + 1;
  p.tag = m.tag;
  p.epoch = epoch_;
  net_->send(p);  // may be refused if we are frozen; the timer will retry
}

void ReliableEndpoint::send_ack() {
  Packet p;
  p.src = local_;
  p.dst = peer_;
  p.kind = Packet::Kind::kAck;
  p.ack = expected_;
  p.size_bytes = kAckBytes;
  p.epoch = epoch_;
  net_->send(p);
}

void ReliableEndpoint::arm_timer() {
  timer_ = sim_->schedule_after(rto_, [this] { on_timer(); });
}

void ReliableEndpoint::on_host_state(bool up) {
  if (!up) return;
  if (parked_ && state_ != State::kFailed) {
    // Thawed: the guest's nearly-expired retransmission timer goes off
    // shortly after restore and unACKed data flows again (paper §3:
    // "After a restart, the sender will send any unacked messages").
    parked_ = false;
    if (!unacked_.empty() && timer_ == sim::kInvalidEvent) {
      timer_ = sim_->schedule_after(cfg_.thaw_retransmit_delay,
                                    [this] { on_timer(); });
    }
  }
}

void ReliableEndpoint::on_timer() {
  timer_ = sim::kInvalidEvent;
  if (state_ == State::kFailed || unacked_.empty()) return;

  if (!net_->host_up(local_.host)) {
    // We are frozen inside a saved guest: our timers are part of the saved
    // state and do not advance. Park until the host is thawed; no retries
    // are consumed while frozen.
    parked_ = true;
    telemetry::count(net_->metrics(), "net.endpoint.stalls");
    return;
  }

  if (retries_ >= cfg_.max_retries) {
    fail("retransmission limit exceeded (peer unreachable)");
    return;
  }
  ++retries_;
  ++retransmissions_;
  telemetry::count(net_->metrics(), "net.endpoint.retransmissions");
  if (cfg_.stall_threshold > 0 && retries_ >= cfg_.stall_threshold) {
    set_stalled(true);
  }
  // Retransmit the oldest unacknowledged message, back off, re-arm.
  const auto& [seq, m] = *unacked_.begin();
  transmit(seq, m);
  rto_ = std::min(
      static_cast<sim::Duration>(static_cast<double>(rto_) * cfg_.backoff),
      cfg_.max_rto);
  arm_timer();
}

void ReliableEndpoint::set_stalled(bool stalled) {
  if (stalled_ == stalled) return;
  stalled_ = stalled;
  if (stalled) {
    ++stalls_reported_;
    telemetry::count(net_->metrics(), "net.endpoint.stalled");
  } else {
    telemetry::count(net_->metrics(), "net.endpoint.stall_recoveries");
  }
  if (on_stall_) on_stall_(stalled);
}

void ReliableEndpoint::fail(std::string_view reason) {
  if (state_ == State::kFailed) return;
  state_ = State::kFailed;
  telemetry::count(net_->metrics(), "net.endpoint.aborts");
  if (timer_ != sim::kInvalidEvent) {
    sim_->cancel(timer_);
    timer_ = sim::kInvalidEvent;
  }
  if (on_failure_) on_failure_(reason);
}

TransportSnapshot ReliableEndpoint::snapshot() const {
  TransportSnapshot s;
  s.next_seq = next_seq_;
  s.acked = acked_;
  for (const auto& [seq, m] : unacked_) {
    s.unacked.emplace(seq, std::make_pair(m.bytes, m.tag));
  }
  s.expected = expected_;
  for (const auto& [seq, m] : reorder_) {
    s.reorder.emplace(seq, std::make_pair(m.bytes, m.tag));
  }
  return s;
}

void ReliableEndpoint::restore(const TransportSnapshot& snap,
                               std::uint32_t epoch) {
  epoch_ = epoch;
  state_ = State::kOpen;
  next_seq_ = snap.next_seq;
  acked_ = snap.acked;
  unacked_.clear();
  for (const auto& [seq, m] : snap.unacked) {
    unacked_.emplace(seq, Pending{m.first, m.second});
  }
  expected_ = snap.expected;
  reorder_.clear();
  for (const auto& [seq, m] : snap.reorder) {
    reorder_.emplace(seq, Pending{m.first, m.second});
  }
  retries_ = 0;
  rto_ = cfg_.initial_rto;
  parked_ = false;
  stalled_ = false;  // the restored guest's TCP stack never saw the stall
  if (timer_ != sim::kInvalidEvent) {
    sim_->cancel(timer_);
    timer_ = sim::kInvalidEvent;
  }
  if (!unacked_.empty()) {
    // The restored guest's pending retransmission fires shortly after thaw.
    timer_ = sim_->schedule_after(cfg_.thaw_retransmit_delay,
                                  [this] { on_timer(); });
  }
}

void ReliableEndpoint::on_packet(const Packet& p) {
  if (state_ == State::kFailed) return;
  if (p.epoch != epoch_) return;  // stale incarnation (pre-rollback traffic)

  if (p.kind == Packet::Kind::kAck) {
    if (p.ack > acked_) {
      acked_ = p.ack;
      unacked_.erase(unacked_.begin(), unacked_.lower_bound(acked_));
      // Forward progress: reset the backoff schedule.
      retries_ = 0;
      rto_ = cfg_.initial_rto;
      set_stalled(false);
      if (timer_ != sim::kInvalidEvent) {
        sim_->cancel(timer_);
        timer_ = sim::kInvalidEvent;
      }
      if (!unacked_.empty()) arm_timer();
    }
    return;
  }

  if (p.kind != Packet::Kind::kData) return;

  if (p.seq < expected_) {
    // Duplicate of an already-delivered message (the peer never saw our
    // ACK, e.g. it was lost across a checkpoint cut). Re-ACK, do not
    // redeliver — paper §3 scenario 2.
    ++duplicates_;
    telemetry::count(net_->metrics(), "net.endpoint.duplicates");
    send_ack();
    return;
  }

  reorder_.emplace(p.seq, Pending{p.size_bytes - kHeaderBytes, p.tag});
  while (!reorder_.empty() && reorder_.begin()->first == expected_) {
    const Pending m = reorder_.begin()->second;
    const std::uint64_t seq = reorder_.begin()->first;
    reorder_.erase(reorder_.begin());
    ++expected_;
    ++delivered_count_;
    if (on_delivery_) on_delivery_(Message{seq + 1, m.bytes, m.tag});
  }
  send_ack();
}

}  // namespace dvc::net
