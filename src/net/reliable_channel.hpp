#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace dvc::net {

/// An application message carried by a reliable channel.
struct Message {
  std::uint64_t id = 0;      ///< unique per sending endpoint
  std::uint32_t bytes = 0;   ///< payload size (metadata only)
  std::uint32_t tag = 0;     ///< application tag (MPI-style)
};

/// Frozen image of one endpoint's transport state, captured while the host
/// is paused. Restoring it reproduces the guest's TCP stack exactly as it
/// was at the cut: unACKed messages will be retransmitted, duplicates will
/// be re-ACKed but not redelivered — the paper's §3 scenarios.
struct TransportSnapshot {
  std::uint64_t next_seq = 0;
  std::uint64_t acked = 0;
  std::map<std::uint64_t, std::pair<std::uint32_t, std::uint32_t>>
      unacked;  ///< seq -> (bytes, tag)
  std::uint64_t expected = 0;
  std::map<std::uint64_t, std::pair<std::uint32_t, std::uint32_t>>
      reorder;  ///< seq -> (bytes, tag)
};

/// Retransmission policy of the TCP-like transport. The total retry budget
/// (sum of backed-off RTOs) is the hard deadline LSC must beat: a peer that
/// stays frozen longer than the budget causes a connection abort, i.e. an
/// application crash.
struct ReliableConfig {
  sim::Duration initial_rto = 200 * sim::kMillisecond;
  double backoff = 2.0;
  sim::Duration max_rto = 60 * sim::kSecond;
  int max_retries = 6;
  /// Delay between thaw (our host coming back up) and the resumed
  /// retransmission timer firing — models the saved guest's nearly-expired
  /// TCP timers going off shortly after restore.
  sim::Duration thaw_retransmit_delay = 10 * sim::kMillisecond;
  /// Consecutive retransmissions of the same segment after which the
  /// endpoint *reports* a stall (link down / peer unreachable) through the
  /// stall handler, long before the retry budget aborts the connection.
  /// 0 disables the report; the retransmission behaviour itself never
  /// changes.
  int stall_threshold = 0;

  /// Total time a sender will keep retrying before aborting, assuming the
  /// peer never answers: sum of the backed-off RTO schedule.
  [[nodiscard]] sim::Duration retry_budget() const noexcept {
    sim::Duration total = 0;
    double rto = static_cast<double>(initial_rto);
    for (int i = 0; i < max_retries; ++i) {
      total += static_cast<sim::Duration>(rto);
      rto = std::min(rto * backoff, static_cast<double>(max_rto));
    }
    return total + static_cast<sim::Duration>(rto);
  }
};

/// One side of a full-duplex reliable connection (sequence numbers,
/// cumulative ACKs, retransmission with exponential backoff, bounded
/// retries, in-order exactly-once delivery with reordering buffer).
///
/// Semantics needed by the paper's §3 argument, all implemented here:
///  * data arriving at a frozen host is dropped and never ACKed, so the
///    sender retransmits after restore (scenario 1);
///  * an ACK lost on the wire causes a duplicate retransmission after
///    restore, which the receiver re-ACKs without redelivering (scenario 2);
///  * a frozen *sender's* retry clock does not advance (its timers are part
///    of the saved guest), so symmetric checkpoints are always safe;
///  * a sender left running against a frozen peer aborts once the retry
///    budget is exhausted — the failure mode of skewed checkpoints.
class ReliableEndpoint final : public PacketSink {
 public:
  enum class State : std::uint8_t { kOpen, kFailed };

  using DeliveryHandler = std::function<void(const Message&)>;
  using FailureHandler = std::function<void(std::string_view reason)>;
  /// Stall notifications: `stalled=true` when stall_threshold consecutive
  /// retransmissions go unanswered, `false` when the peer answers again.
  using StallHandler = std::function<void(bool stalled)>;

  ReliableEndpoint(sim::Simulation& sim, Network& net, Address local,
                   Address peer, ReliableConfig cfg = {});
  ~ReliableEndpoint() override;

  ReliableEndpoint(const ReliableEndpoint&) = delete;
  ReliableEndpoint& operator=(const ReliableEndpoint&) = delete;

  /// Called for each message delivered in order, exactly once.
  void set_delivery_handler(DeliveryHandler h) { on_delivery_ = std::move(h); }
  /// Called once if the connection aborts (retry budget exhausted).
  void set_failure_handler(FailureHandler h) { on_failure_ = std::move(h); }
  /// Called on stall onset and recovery (needs cfg.stall_threshold > 0).
  void set_stall_handler(StallHandler h) { on_stall_ = std::move(h); }

  /// Queues a message for reliable in-order delivery to the peer.
  /// Returns the message id. No-op (returns 0) after failure.
  std::uint64_t send(std::uint32_t bytes, std::uint32_t tag = 0);

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] bool failed() const noexcept {
    return state_ == State::kFailed;
  }
  [[nodiscard]] std::size_t unacked() const noexcept {
    return unacked_.size();
  }
  /// True while retransmissions of the oldest segment have gone unanswered
  /// `stall_threshold` or more times in a row — a visible "link down or
  /// peer frozen" signal instead of silent loss.
  [[nodiscard]] bool stalled() const noexcept { return stalled_; }
  [[nodiscard]] std::uint64_t stalls_reported() const noexcept {
    return stalls_reported_;
  }

  [[nodiscard]] std::uint64_t messages_sent() const noexcept {
    return next_seq_;
  }
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept {
    return delivered_count_;
  }
  [[nodiscard]] std::uint64_t retransmissions() const noexcept {
    return retransmissions_;
  }
  [[nodiscard]] std::uint64_t duplicates_discarded() const noexcept {
    return duplicates_;
  }

  void on_packet(const Packet& p) override;

  /// Captures transport state (call while the host is paused: that is when
  /// the hypervisor images the guest).
  [[nodiscard]] TransportSnapshot snapshot() const;

  /// Rolls transport state back to a snapshot (whole-VC restore from a
  /// checkpoint). Re-opens a failed endpoint: the restored guest's TCP
  /// stack never saw the abort. `epoch` must be the same on both sides of
  /// the connection and strictly greater than any previous incarnation, so
  /// in-flight packets from before the rollback are discarded on arrival.
  void restore(const TransportSnapshot& snap, std::uint32_t epoch);

  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }

 private:
  struct Pending {
    std::uint32_t bytes;
    std::uint32_t tag;
  };

  void transmit(std::uint64_t seq, const Pending& m);
  void send_ack();
  void arm_timer();
  void on_timer();
  void on_host_state(bool up);
  void fail(std::string_view reason);
  void set_stalled(bool stalled);

  sim::Simulation* sim_;
  Network* net_;
  Address local_;
  Address peer_;
  ReliableConfig cfg_;
  State state_ = State::kOpen;

  // Sender state.
  std::uint64_t next_seq_ = 0;          ///< next sequence number to assign
  std::uint64_t acked_ = 0;             ///< peer has everything below this
  std::map<std::uint64_t, Pending> unacked_;
  int retries_ = 0;
  sim::Duration rto_ = 0;
  sim::EventId timer_ = sim::kInvalidEvent;
  bool parked_ = false;  ///< timer suppressed because our host is frozen
  std::uint64_t host_state_token_ = 0;
  std::uint32_t epoch_ = 0;

  // Receiver state.
  std::uint64_t expected_ = 0;          ///< next in-order sequence expected
  std::map<std::uint64_t, Pending> reorder_;
  std::uint64_t delivered_count_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t retransmissions_ = 0;
  bool stalled_ = false;
  std::uint64_t stalls_reported_ = 0;

  DeliveryHandler on_delivery_;
  FailureHandler on_failure_;
  StallHandler on_stall_;
};

/// A full-duplex reliable connection between two addresses: a convenience
/// wrapper constructing the two endpoints with symmetric configuration.
class ReliableConnection final {
 public:
  ReliableConnection(sim::Simulation& sim, Network& net, Address a,
                     Address b, ReliableConfig cfg = {})
      : a_(sim, net, a, b, cfg), b_(sim, net, b, a, cfg) {}

  [[nodiscard]] ReliableEndpoint& end_a() noexcept { return a_; }
  [[nodiscard]] ReliableEndpoint& end_b() noexcept { return b_; }

  [[nodiscard]] bool failed() const noexcept {
    return a_.failed() || b_.failed();
  }

 private:
  ReliableEndpoint a_;
  ReliableEndpoint b_;
};

}  // namespace dvc::net
