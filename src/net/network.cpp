#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dvc::net {

HostId Network::new_host() {
  const HostId id = static_cast<HostId>(up_.size());
  up_.push_back(true);
  egress_free_.push_back(0);
  return id;
}

void Network::set_host_up(HostId host, bool up) {
  if (host >= up_.size()) throw std::out_of_range("unknown host");
  if (up_[host] == up) return;
  up_[host] = up;
  const auto it = state_observers_.find(host);
  if (it != state_observers_.end()) {
    const auto observers = it->second;  // observers may mutate the list
    for (const auto& [token, fn] : observers) fn(up);
  }
}

std::uint64_t Network::subscribe_host_state(HostId host,
                                            std::function<void(bool)> fn) {
  if (host >= up_.size()) throw std::out_of_range("unknown host");
  const std::uint64_t token = next_observer_token_++;
  state_observers_[host].emplace(token, std::move(fn));
  return token;
}

void Network::unsubscribe_host_state(HostId host, std::uint64_t token) {
  const auto it = state_observers_.find(host);
  if (it != state_observers_.end()) it->second.erase(token);
}

bool Network::host_up(HostId host) const {
  return host < up_.size() && up_[host];
}

void Network::attach(const Address& addr, PacketSink* sink) {
  if (addr.host >= up_.size()) throw std::out_of_range("unknown host");
  if (sink == nullptr) throw std::invalid_argument("null sink");
  sinks_[addr] = sink;
}

void Network::detach(const Address& addr) { sinks_.erase(addr); }

void Network::set_metrics(telemetry::MetricsRegistry* m) {
  metrics_ = m;
  if (m == nullptr) {
    packets_sent_c_ = bytes_sent_c_ = packets_delivered_c_ =
        packets_lost_c_ = packets_dark_c_ = nullptr;
    return;
  }
  packets_sent_c_ = &m->counter("net.network.packets_sent");
  bytes_sent_c_ = &m->counter("net.network.bytes_sent");
  packets_delivered_c_ = &m->counter("net.network.packets_delivered");
  packets_lost_c_ = &m->counter("net.network.packets_lost_wire");
  packets_dark_c_ = &m->counter("net.network.packets_dropped_dark");
}

bool Network::send(const Packet& p) {
  if (!host_up(p.src.host)) return false;
  ++sent_;
  if (packets_sent_c_ != nullptr) {
    packets_sent_c_->add();
    bytes_sent_c_->add(p.size_bytes);
  }
  const double bw = link_->bandwidth_bps(p.src.host, p.dst.host);
  const auto serialisation = static_cast<sim::Duration>(
      static_cast<double>(p.size_bytes) / bw * sim::kSecond);
  // Serialise on the sender's egress link: back-to-back departures.
  const sim::Time depart =
      std::max(sim_->now(), egress_free_[p.src.host]) + serialisation;
  egress_free_[p.src.host] = depart;
  if (rng_.chance(link_->loss_probability(p.src.host, p.dst.host))) {
    if (packets_lost_c_ != nullptr) packets_lost_c_->add();
    return true;  // occupied the wire, then died on it
  }
  const sim::Time arrive =
      depart + link_->latency(p.src.host, p.dst.host, rng_);
  sim_->schedule_at(arrive, [this, p] { deliver(p); });
  return true;
}

void Network::deliver(const Packet& p) {
  // A packet reaching a paused/saved/failed host is lost: the virtual NIC
  // is not consuming its ring, so nothing is ACKed (paper §3, scenario 1).
  if (!host_up(p.dst.host)) {
    if (packets_dark_c_ != nullptr) packets_dark_c_->add();
    return;
  }
  const auto it = sinks_.find(p.dst);
  if (it == sinks_.end()) return;  // no listener: dropped like a closed port
  ++delivered_;
  if (packets_delivered_c_ != nullptr) packets_delivered_c_->add();
  it->second->on_packet(p);
}

}  // namespace dvc::net
