#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "app/workload.hpp"
#include "ckpt/methods.hpp"
#include "sim/simulation.hpp"
#include "storage/image_manager.hpp"

namespace dvc::ckpt {

/// The §2.1 baseline, implemented: CoCheck/BLCR-style *user-level* parallel
/// checkpointing. The application must be re-linked against a checkpoint
/// library; at checkpoint time the library parks every rank at a safe
/// point, lets the network drain (the "consistent cut" is produced by
/// cooperation, not by freezing guests), then writes each process image.
///
/// Contrast with LSC: no hypervisor, smaller images (process, not guest),
/// but the application must cooperate — exactly the restriction DVC's
/// transparency removes. The quiesce takes application-timescale time
/// (up to a full iteration) instead of clock-skew time.
class CocheckCoordinator final {
 public:
  struct Config {
    /// Library handshake latency per rank (signal + safe-point check).
    sim::Duration agent_latency = 5 * sim::kMillisecond;
    /// Drain poll period while waiting for in-flight traffic to land.
    sim::Duration drain_poll = 20 * sim::kMillisecond;
    /// Give up if the job has not parked and drained by then.
    sim::Duration quiesce_timeout = 10 * sim::kMinute;
  };

  struct Result {
    bool ok = false;
    sim::Duration quiesce_time = 0;  ///< request -> parked + drained
    sim::Duration write_time = 0;    ///< process images -> durable
    sim::Duration total_time = 0;
    std::uint64_t bytes_written = 0;
    storage::CheckpointSetId set = storage::kInvalidCheckpointSet;
  };

  explicit CocheckCoordinator(sim::Simulation& sim) : sim_(&sim) {}
  CocheckCoordinator(sim::Simulation& sim, Config cfg)
      : sim_(&sim), cfg_(cfg) {}

  /// Checkpoints a running application: park, drain, write, resume.
  /// The guest VMs never pause — the *application* does.
  void checkpoint(app::ParallelApp& application,
                  const vm::GuestConfig& guest,
                  storage::ImageManager& images,
                  std::function<void(Result)> done);

 private:
  sim::Simulation* sim_;
  Config cfg_{};
};

}  // namespace dvc::ckpt
