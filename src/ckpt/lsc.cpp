#include "ckpt/lsc.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

namespace dvc::ckpt {

// ---------------------------------------------------------------------------
// RoundTracker

RoundTracker::RoundTracker(sim::Simulation& sim,
                           std::vector<SaveTarget> targets,
                           storage::ImageManager& images, std::string label,
                           std::function<void(LscResult)> done,
                           int attempt_no, bool resume_after_save,
                           telemetry::MetricsRegistry* metrics)
    : sim_(&sim),
      targets_(std::move(targets)),
      images_(&images),
      set_(images.open_set(std::move(label), targets_.size(),
                           targets_.empty() ? storage::kUnfencedEpoch
                                            : targets_.front().epoch)),
      done_(std::move(done)),
      outstanding_(targets_.size()),
      resume_after_save_(resume_after_save),
      metrics_(metrics) {
  result_.set = set_;
  result_.attempts = attempt_no;
  result_.app_snapshots.resize(targets_.size());
  pauses_at_fire_.resize(targets_.size(), 0);
  round_span_ = telemetry::begin_span(metrics_, sim_->now(), "lsc", "round");
}

void RoundTracker::fire(std::size_t i) {
  SaveTarget& t = targets_.at(i);
  pauses_at_fire_[i] = t.machine->pauses();
  if (set_ == storage::kInvalidCheckpointSet) {
    // The set never opened (the opening coordinator was already deposed
    // when this round was built): abort the member without touching the
    // guest, so the round ends cleanly instead of wedging.
    on_member_durable(i, false, std::any{});
    return;
  }
  // The durable callback arrives long after the firing event has been
  // destroyed; it must own the round.
  t.hypervisor->save_domain(
      *t.machine, *images_, set_, t.member,
      [self = shared_from_this(), i](bool ok, std::any state) {
        self->on_member_durable(i, ok, std::move(state));
      },
      t.incremental, t.epoch);
}

void RoundTracker::on_member_durable(std::size_t i, bool ok,
                                     std::any state) {
  SaveTarget& t = targets_[i];
  if (ok) {
    const sim::Time paused_at = t.machine->last_pause_started();
    if (!saw_pause_) {
      first_pause_ = last_pause_ = paused_at;
      saw_pause_ = true;
    } else {
      first_pause_ = std::min(first_pause_, paused_at);
      last_pause_ = std::max(last_pause_, paused_at);
    }
    result_.app_snapshots[i] = std::move(state);
    if (resume_after_save_) {
      // Stop-and-copy: the guest thaws the moment its image is durable.
      t.hypervisor->resume_domain(*t.machine);
    }
    telemetry::count(metrics_, "ckpt.lsc.members_saved");
  } else if (t.machine->pauses() > pauses_at_fire_[i]) {
    // The guest froze and then the save died (node failure mid-image):
    // work was genuinely disturbed.
    ++members_failed_;
    telemetry::count(metrics_, "ckpt.lsc.members_failed");
    if (resume_after_save_) {
      // A failed save must not leave a live guest frozen forever:
      // resume_domain no-ops for dead nodes/domains, so this only thaws
      // members that survived whatever killed the save.
      t.hypervisor->resume_domain(*t.machine);
    }
  } else {
    // The save aborted before the guest ever paused; the member kept
    // running undisturbed. Conflating this with a failed save is what
    // made every injected fault look like lost work.
    ++members_aborted_;
    telemetry::count(metrics_, "ckpt.lsc.members_aborted");
  }
  if (--outstanding_ == 0) finish();
}

void RoundTracker::finish() {
  result_.ok = members_failed_ == 0 && members_aborted_ == 0;
  result_.members_failed = members_failed_;
  result_.members_aborted = members_aborted_;
  if (!result_.ok) {
    images_->abort_set(set_);
    // No durable member and no disturbed guest: the round was abandoned
    // before any freeze — harmless, like a health-check abort.
    result_.aborted_cleanly = members_failed_ == 0 && !saw_pause_;
  }
  if (saw_pause_) {
    result_.pause_skew = last_pause_ - first_pause_;
    result_.total_time = sim_->now() - first_pause_;
  }
  telemetry::count(metrics_, result_.ok ? "ckpt.lsc.rounds"
                   : result_.aborted_cleanly ? "ckpt.lsc.rounds_aborted"
                                             : "ckpt.lsc.rounds_failed");
  if (saw_pause_ && metrics_ != nullptr) {
    metrics_->histogram("ckpt.lsc.pause_skew_s")
        .observe(sim::to_seconds(result_.pause_skew));
    metrics_->histogram("ckpt.lsc.round_s")
        .observe(sim::to_seconds(result_.total_time));
    // Retrospective span of the freeze window: the first guest froze at
    // first_pause_, the last at last_pause_ — the skew the transport must
    // mask (visible at a glance on the trace).
    const auto freeze =
        metrics_->begin_span(first_pause_, "lsc", "freeze_window");
    metrics_->end_span(freeze, last_pause_);
  }
  telemetry::end_span(metrics_, round_span_, sim_->now());
  if (done_) done_(result_);
}

// ---------------------------------------------------------------------------
// LscCoordinator — retry/timeout orchestration shared by every trigger

namespace {
/// One-shot latch for a round: whichever of {completion, watchdog} wins
/// settles the round; the loser is swallowed.
struct RoundGate {
  bool settled = false;
  sim::EventId watchdog = sim::kInvalidEvent;
};
}  // namespace

void LscCoordinator::checkpoint(std::string label,
                                std::vector<SaveTarget> targets,
                                storage::ImageManager& images,
                                std::function<void(LscResult)> done,
                                bool resume_after_save, Retarget retarget) {
  run_round(std::move(label), std::move(targets), images, std::move(done),
            resume_after_save, std::move(retarget), /*round_no=*/0,
            retry_.backoff);
}

void LscCoordinator::run_round(std::string label,
                               std::vector<SaveTarget> targets,
                               storage::ImageManager& images,
                               std::function<void(LscResult)> done,
                               bool resume_after_save, Retarget retarget,
                               int round_no, sim::Duration backoff) {
  auto gate = std::make_shared<RoundGate>();
  // Copies of label/targets/done survive in this closure so a failed round
  // can be re-fired; with the default policy it reduces to done(result).
  auto conclude = [this, gate, label, targets, &images, done,
                   resume_after_save, retarget, round_no,
                   backoff](LscResult r) {
    if (gate->settled) {
      // The watchdog already abandoned this round; the stragglers' real
      // completion arrives here and must not reach the caller twice.
      telemetry::count(metrics_, "ckpt.lsc.late_completions");
      return;
    }
    gate->settled = true;
    if (gate->watchdog != sim::kInvalidEvent) {
      sim_->cancel(gate->watchdog);
      gate->watchdog = sim::kInvalidEvent;
    }
    r.retries = round_no;
    if (!r.ok && round_no < retry_.max_round_retries) {
      telemetry::count(metrics_, "ckpt.lsc.round_retries");
      telemetry::instant(metrics_, sim_->now(), "lsc", "round_retry");
      const auto next = static_cast<sim::Duration>(
          static_cast<double>(backoff) * retry_.backoff_factor);
      sim_->schedule_after(backoff, [this, label, targets, &images, done,
                                     resume_after_save, retarget, round_no,
                                     next]() mutable {
        // Re-resolve targets at fire time: the failure that sank the last
        // round may have triggered a recovery that moved members to new
        // nodes, and pausing a stale mapping freezes the survivors while
        // the relocated member runs on — an asymmetry the app's transport
        // retry budget cannot absorb.
        std::vector<SaveTarget> fresh = std::move(targets);
        if (retarget) {
          std::optional<std::vector<SaveTarget>> r2 = retarget();
          if (!r2.has_value()) {
            telemetry::count(metrics_, "ckpt.lsc.retries_abandoned");
            LscResult abandoned;
            abandoned.aborted_cleanly = true;
            abandoned.retries = round_no;
            if (check_ != nullptr) {
              check_->on_round_complete(false, abandoned.set);
            }
            if (done) done(std::move(abandoned));
            return;
          }
          fresh = std::move(*r2);
        }
        run_round(std::move(label), std::move(fresh), images,
                  std::move(done), resume_after_save, std::move(retarget),
                  round_no + 1, next);
      });
      return;
    }
    if (check_ != nullptr) check_->on_round_complete(r.ok, r.set);
    if (done) done(std::move(r));
  };
  if (retry_.round_timeout > 0) {
    gate->watchdog =
        sim_->schedule_after(retry_.round_timeout, [this, gate, conclude] {
          if (gate->settled) return;
          gate->watchdog = sim::kInvalidEvent;
          telemetry::count(metrics_, "ckpt.lsc.round_timeouts");
          telemetry::instant(metrics_, sim_->now(), "lsc", "round_timeout");
          LscResult r;
          r.timed_out = true;
          conclude(std::move(r));
        });
  }
  start_round(std::move(label), std::move(targets), images,
              std::move(conclude), resume_after_save);
}

// ---------------------------------------------------------------------------
// NaiveLscCoordinator

void NaiveLscCoordinator::start_round(std::string label,
                                      std::vector<SaveTarget> targets,
                                      storage::ImageManager& images,
                                      std::function<void(LscResult)> done,
                                      bool resume_after_save) {
  if (targets.empty()) throw std::invalid_argument("no targets");
  auto round = std::make_shared<RoundTracker>(
      *sim_, std::move(targets), images, std::move(label), std::move(done),
      /*attempt_no=*/1, resume_after_save, metrics_);
  // The controlling program writes `vm save` down one terminal after
  // another; each write costs a dispatch delay, so the k-th guest's save
  // command lands ~k dispatch-delays after the first. That cumulative skew
  // is what kills this design at scale.
  sim::Duration t = 0;
  const std::size_t n = round->targets().size();
  for (std::size_t i = 0; i < n; ++i) {
    t += cfg_.dispatch_base + rng_.exponential_duration(cfg_.dispatch_jitter);
    sim_->schedule_after(t, [round, i] { round->fire(i); });
  }
}

// ---------------------------------------------------------------------------
// NtpLscCoordinator

void NtpLscCoordinator::start_round(std::string label,
                                    std::vector<SaveTarget> targets,
                                    storage::ImageManager& images,
                                    std::function<void(LscResult)> done,
                                    bool resume_after_save) {
  if (targets.empty()) throw std::invalid_argument("no targets");
  for (const SaveTarget& t : targets) {
    if (t.clock == nullptr) {
      throw std::invalid_argument("ntp lsc requires a host clock per target");
    }
  }
  attempt(std::move(label), std::move(targets), images, 1, std::move(done),
          resume_after_save);
}

void NtpLscCoordinator::attempt(std::string label,
                                std::vector<SaveTarget> targets,
                                storage::ImageManager& images,
                                int attempt_no,
                                std::function<void(LscResult)> done,
                                bool resume_after_save) {
  // The coordinator publishes one *local wall-clock* instant T; each agent
  // converts T to its own timeline. Host-clock error and timer jitter are
  // the only skew sources left.
  const sim::Time t_local =
      targets.front().clock->local_now() + cfg_.lead_time;

  // Sample each agent's scheduling fate for this round up front (whether
  // the host is too loaded to service the timer promptly).
  std::vector<sim::Duration> delay(targets.size());
  bool any_stalled = false;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    delay[i] = rng_.exponential_duration(cfg_.sched_jitter);
    if (cfg_.stall_prob > 0.0 && rng_.chance(cfg_.stall_prob)) {
      delay[i] += rng_.exponential_duration(cfg_.stall_mean);
      any_stalled = true;
    }
  }

  if (cfg_.health_check && any_stalled) {
    // Future-work robustness (§4): the pre-deadline health check notices
    // the starved agent and abandons the round before any guest freezes.
    if (attempt_no >= cfg_.max_attempts) {
      LscResult r;
      r.ok = false;
      r.aborted_cleanly = true;
      r.attempts = attempt_no;
      sim_->schedule_after(cfg_.lead_time - cfg_.health_check_lead,
                           [this, done = std::move(done), r] {
                             telemetry::count(metrics_,
                                              "ckpt.lsc.rounds_aborted");
                             telemetry::instant(metrics_, sim_->now(),
                                                "lsc", "round_abandoned");
                             if (done) done(r);
                           });
      return;
    }
    sim_->schedule_after(
        cfg_.lead_time - cfg_.health_check_lead,
        [this, label = std::move(label), targets = std::move(targets),
         &images, attempt_no, done = std::move(done),
         resume_after_save]() mutable {
          telemetry::count(metrics_, "ckpt.lsc.health_check_retries");
          telemetry::instant(metrics_, sim_->now(), "lsc",
                             "health_check_retry");
          attempt(std::move(label), std::move(targets), images,
                  attempt_no + 1, std::move(done), resume_after_save);
        });
    return;
  }

  auto round = std::make_shared<RoundTracker>(
      *sim_, std::move(targets), images, std::move(label), std::move(done),
      attempt_no, resume_after_save, metrics_);
  const std::size_t n = round->targets().size();
  for (std::size_t i = 0; i < n; ++i) {
    const clocksync::HostClock& clock = *round->targets()[i].clock;
    // The agent's microsecond timer fires when *its* clock reads T.
    const sim::Time fire_at = clock.to_sim(t_local) + delay[i];
    sim_->schedule_at(fire_at, [round, i] { round->fire(i); });
  }
}

}  // namespace dvc::ckpt
