#include "ckpt/cocheck.hpp"

#include <memory>
#include <utility>

namespace dvc::ckpt {

void CocheckCoordinator::checkpoint(app::ParallelApp& application,
                                    const vm::GuestConfig& guest,
                                    storage::ImageManager& images,
                                    std::function<void(Result)> done) {
  struct Round {
    Result result;
    sim::Time started = 0;
    sim::Time parked_at = 0;
    std::function<void(Result)> done;
  };
  auto round = std::make_shared<Round>();
  round->started = sim_->now();
  round->done = std::move(done);

  const Footprint fp =
      footprint(MethodKind::kUserLevel, application.spec(), guest);
  // The honest restriction check: without network interception a
  // user-level library cannot cut a parallel job — the quiesce protocol
  // below IS that interception, so we proceed for any rank count; what
  // stays impossible is checkpointing an application that was not
  // re-linked (modelled by the caller choosing this coordinator at all).

  // 1. Park every rank at its next iteration boundary (library handshake
  //    costs one agent round trip).
  sim_->schedule_after(cfg_.agent_latency, [this, round, &application,
                                            &images, fp] {
    application.request_quiesce([this, round, &application, &images, fp] {
      // 2. Ranks are parked; wait for in-flight traffic to drain.
      auto poll = std::make_shared<std::function<void()>>();
      *poll = [this, round, &application, &images, fp, poll] {
        if (sim_->now() - round->started > cfg_.quiesce_timeout) {
          application.release_quiesce();
          round->result.ok = false;
          if (round->done) round->done(round->result);
          return;
        }
        if (!application.mesh_drained()) {
          sim_->schedule_after(cfg_.drain_poll, [poll] { (*poll)(); });
          return;
        }
        // 3. Consistent cut achieved by cooperation: write each process
        //    image (user-level footprint) to the shared store.
        round->parked_at = sim_->now();
        round->result.quiesce_time = round->parked_at - round->started;
        const app::RankId ranks = application.size();
        const storage::CheckpointSetId set =
            images.open_set("cocheck", ranks);
        round->result.set = set;
        for (app::RankId r = 0; r < ranks; ++r) {
          images.add_member(set, r, fp.bytes);
          round->result.bytes_written += fp.bytes;
        }
        images.on_sealed(set, [this, round, &application] {
          // 4. Durable: resume the application.
          round->result.write_time = sim_->now() - round->parked_at;
          round->result.total_time = sim_->now() - round->started;
          round->result.ok = true;
          application.release_quiesce();
          if (round->done) round->done(round->result);
        });
      };
      (*poll)();
    });
  });
}

}  // namespace dvc::ckpt
