#pragma once

#include <cmath>

#include "sim/time.hpp"

namespace dvc::ckpt {

/// Classic checkpoint-interval theory (Young 1974, Daly 2006), provided so
/// a DVC deployment can pick its RecoveryPolicy::interval from measured
/// quantities instead of folklore. `abl10_interval` validates these
/// closed forms against the simulator.

/// Young's first-order optimum: T = sqrt(2 * C * MTBF), where C is the
/// cost of one checkpoint and MTBF the *system* mean time between
/// failures (per-node MTBF divided by the node count the job occupies).
[[nodiscard]] inline sim::Duration young_interval(
    sim::Duration checkpoint_cost, sim::Duration system_mtbf) noexcept {
  const double c = sim::to_seconds(checkpoint_cost);
  const double m = sim::to_seconds(system_mtbf);
  if (c <= 0.0 || m <= 0.0) return 0;
  return sim::from_seconds(std::sqrt(2.0 * c * m));
}

/// Daly's higher-order refinement of Young's formula (valid for C < 2M):
/// T = sqrt(2 C M) * (1 + sqrt(C / (18 M)) + C / (18 M)... ) - C, using
/// the common second-order form.
[[nodiscard]] inline sim::Duration daly_interval(
    sim::Duration checkpoint_cost, sim::Duration system_mtbf) noexcept {
  const double c = sim::to_seconds(checkpoint_cost);
  const double m = sim::to_seconds(system_mtbf);
  if (c <= 0.0 || m <= 0.0) return 0;
  if (c >= 2.0 * m) return sim::from_seconds(m);  // checkpoint constantly
  const double root = std::sqrt(2.0 * c * m);
  const double t =
      root * (1.0 + std::sqrt(c / (18.0 * m)) / 3.0 + c / (18.0 * m)) - c;
  return sim::from_seconds(t > 0.0 ? t : c);
}

/// Expected wall time to finish `work_s` of useful compute under an
/// exponential failure process (rate 1/mtbf_s), checkpointing every
/// `interval_s` at cost `ckpt_cost_s`, with `restart_cost_s` to come back
/// after a failure (detection + staging + restore). First-order model:
/// each failure loses on average half an interval plus the restart cost.
[[nodiscard]] inline double expected_runtime_s(double work_s,
                                               double ckpt_cost_s,
                                               double restart_cost_s,
                                               double mtbf_s,
                                               double interval_s) noexcept {
  if (interval_s <= 0.0 || mtbf_s <= 0.0) return work_s;
  // Useful-time dilation from checkpointing.
  const double dilated = work_s * (interval_s + ckpt_cost_s) / interval_s;
  // Failures arrive over the whole dilated span; each costs the rework of
  // half a (dilated) interval plus the restart.
  const double failures = dilated / mtbf_s;
  const double per_failure =
      0.5 * (interval_s + ckpt_cost_s) + restart_cost_s;
  return dilated + failures * per_failure;
}

}  // namespace dvc::ckpt
