#include "ckpt/methods.hpp"

namespace dvc::ckpt {

namespace {
// Process-image overheads beyond the application's working set: code,
// heap slack, libraries for a user-level image; plus in-kernel state
// (socket buffers, page tables, file table) for a kernel-level image.
constexpr std::uint64_t kProcessOverheadBytes = 96ull << 20;
constexpr std::uint64_t kKernelOverheadBytes = 64ull << 20;
}  // namespace

MethodProfile profile(MethodKind kind) noexcept {
  switch (kind) {
    case MethodKind::kApplication:
      return {kind, "application", false, false, true, true, false};
    case MethodKind::kUserLevel:
      return {kind, "user-level", false, true, false, false, false};
    case MethodKind::kKernelLevel:
      return {kind, "kernel-level", true, false, false, false, true};
    case MethodKind::kVmLevel:
      return {kind, "vm-level (DVC)", true, false, false, true, true};
  }
  return {kind, "unknown", false, false, false, false, false};
}

Footprint footprint(MethodKind kind, const app::WorkloadSpec& spec,
                    const vm::GuestConfig& guest) noexcept {
  Footprint f;
  switch (kind) {
    case MethodKind::kApplication:
      f.bytes = spec.working_set_bytes_per_rank;
      f.applicable = spec.supports_app_checkpoint;
      break;
    case MethodKind::kUserLevel:
      f.bytes = spec.working_set_bytes_per_rank + kProcessOverheadBytes;
      // Without CoCheck/BLCR-style network interception, a user-level
      // library cannot produce a consistent cut of a parallel job (§2.1).
      f.applicable = spec.ranks == 1;
      break;
    case MethodKind::kKernelLevel:
      f.bytes = spec.working_set_bytes_per_rank + kProcessOverheadBytes +
                kKernelOverheadBytes;
      f.applicable = spec.ranks == 1;
      break;
    case MethodKind::kVmLevel:
      // The whole guest: every page the guest kernel considers in use,
      // regardless of what the application actually needs.
      f.bytes = guest.ram_bytes;
      f.applicable = true;
      break;
  }
  return f;
}

Footprint measured_footprint(MethodKind kind, const app::WorkloadSpec& spec,
                             const vm::GuestConfig& guest,
                             const vm::GuestOs& os, vm::Pid pid) {
  Footprint f = footprint(kind, spec, guest);  // applicability rules
  switch (kind) {
    case MethodKind::kApplication:
      f.bytes = os.app_level_bytes(pid);
      break;
    case MethodKind::kUserLevel:
      f.bytes = os.user_level_bytes(pid);
      break;
    case MethodKind::kKernelLevel:
      f.bytes = os.kernel_level_bytes(pid);
      break;
    case MethodKind::kVmLevel:
      // A stop-and-copy save writes all of guest RAM; the guest's resident
      // set is what a ballooned save could shrink it to.
      f.bytes = guest.ram_bytes;
      break;
  }
  return f;
}

sim::Duration estimate_time(const Footprint& f,
                            double bytes_per_second) noexcept {
  if (!f.applicable || bytes_per_second <= 0.0) return 0;
  return static_cast<sim::Duration>(static_cast<double>(f.bytes) /
                                    bytes_per_second * sim::kSecond);
}

}  // namespace dvc::ckpt
