#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dvc::ckpt {

/// Records application-level sends and deliveries across a checkpoint cut
/// and verifies the cut was consistent: every sent message is delivered
/// exactly once, in order, per (sender, receiver) pair — the property the
/// paper's §3 scenarios argue for and figure 2 illustrates.
///
/// Intended for save/resume experiments (no rollback); a rollback
/// deliberately undoes deliveries, which this ledger does not model.
class MessageLedger final {
 public:
  void record_send(std::uint32_t from, std::uint32_t to,
                   std::uint64_t msg_id) {
    sent_[key(from, to)].push_back(msg_id);
  }

  void record_delivery(std::uint32_t from, std::uint32_t to,
                       std::uint64_t msg_id) {
    delivered_[key(from, to)].push_back(msg_id);
  }

  /// Verdict of the consistency check, with a human-readable reason.
  struct Verdict {
    bool consistent = true;
    std::string reason;
  };

  /// Verifies exactly-once in-order delivery of a *prefix* of each pair's
  /// sends (messages still in flight at the end of the run are allowed to
  /// be undelivered when `allow_in_flight` is true).
  [[nodiscard]] Verdict check(bool allow_in_flight = false) const {
    for (const auto& [k, del] : delivered_) {
      const auto sit = sent_.find(k);
      if (sit == sent_.end()) {
        return {false, "delivery without a matching send"};
      }
      const auto& snt = sit->second;
      if (del.size() > snt.size()) {
        return {false, "more deliveries than sends (duplicate delivery)"};
      }
      for (std::size_t i = 0; i < del.size(); ++i) {
        if (del[i] != snt[i]) {
          return {false, "out-of-order or duplicated delivery"};
        }
      }
    }
    if (!allow_in_flight) {
      for (const auto& [k, snt] : sent_) {
        const auto dit = delivered_.find(k);
        const std::size_t got =
            dit == delivered_.end() ? 0 : dit->second.size();
        if (got != snt.size()) {
          return {false, "message lost across the cut"};
        }
      }
    }
    return {true, ""};
  }

  [[nodiscard]] std::uint64_t total_sent() const {
    std::uint64_t n = 0;
    for (const auto& [k, v] : sent_) n += v.size();
    return n;
  }
  [[nodiscard]] std::uint64_t total_delivered() const {
    std::uint64_t n = 0;
    for (const auto& [k, v] : delivered_) n += v.size();
    return n;
  }

 private:
  [[nodiscard]] static std::uint64_t key(std::uint32_t a,
                                         std::uint32_t b) noexcept {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  std::map<std::uint64_t, std::vector<std::uint64_t>> sent_;
  std::map<std::uint64_t, std::vector<std::uint64_t>> delivered_;
};

}  // namespace dvc::ckpt
