#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dvc::ckpt {

/// Records application-level sends and deliveries across a checkpoint cut
/// and verifies the cut was consistent: every sent message is delivered
/// exactly once, in order, per (sender, receiver) pair — the property the
/// paper's §3 scenarios argue for and figure 2 illustrates.
///
/// Rollback support: call note_rollback() when the application rolls back
/// to a checkpoint. Events recorded afterwards belong to a new *epoch*;
/// re-executed sends and deliveries (same message ids, later epoch) are
/// the expected consequence of redoing lost work and are collapsed onto
/// their first occurrence, while a repeated id *within* one epoch is
/// still flagged as a genuine duplicate delivery.
class MessageLedger final {
 public:
  void record_send(std::uint32_t from, std::uint32_t to,
                   std::uint64_t msg_id) {
    sent_[key(from, to)].push_back(Entry{msg_id, epoch_});
  }

  void record_delivery(std::uint32_t from, std::uint32_t to,
                       std::uint64_t msg_id) {
    delivered_[key(from, to)].push_back(Entry{msg_id, epoch_});
  }

  /// Marks a rollback cut: subsequent records are re-execution, not
  /// duplication. Returns the new epoch.
  std::uint32_t note_rollback() { return ++epoch_; }

  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }

  /// Verdict of the consistency check, with a human-readable reason.
  struct Verdict {
    bool consistent = true;
    std::string reason;
  };

  /// Verifies exactly-once in-order delivery of a *prefix* of each pair's
  /// sends (messages still in flight at the end of the run are allowed to
  /// be undelivered when `allow_in_flight` is true). Re-execution across
  /// rollback epochs is collapsed first; duplicates within an epoch fail.
  [[nodiscard]] Verdict check(bool allow_in_flight = false) const {
    bool dup_in_epoch = false;
    for (const auto& [k, del] : delivered_) {
      const auto sit = sent_.find(k);
      if (sit == sent_.end()) {
        return {false, "delivery without a matching send"};
      }
      const std::vector<std::uint64_t> snt =
          collapse(sit->second, dup_in_epoch);
      const std::vector<std::uint64_t> got = collapse(del, dup_in_epoch);
      if (dup_in_epoch) {
        return {false, "more deliveries than sends (duplicate delivery)"};
      }
      if (got.size() > snt.size()) {
        return {false, "more deliveries than sends (duplicate delivery)"};
      }
      for (std::size_t i = 0; i < got.size(); ++i) {
        if (got[i] != snt[i]) {
          return {false, "out-of-order or duplicated delivery"};
        }
      }
    }
    if (!allow_in_flight) {
      for (const auto& [k, snt] : sent_) {
        const std::vector<std::uint64_t> unique_snt =
            collapse(snt, dup_in_epoch);
        const auto dit = delivered_.find(k);
        const std::size_t got =
            dit == delivered_.end()
                ? 0
                : collapse(dit->second, dup_in_epoch).size();
        if (got != unique_snt.size()) {
          return {false, "message lost across the cut"};
        }
      }
    }
    return {true, ""};
  }

  [[nodiscard]] std::uint64_t total_sent() const {
    std::uint64_t n = 0;
    for (const auto& [k, v] : sent_) n += v.size();
    return n;
  }
  [[nodiscard]] std::uint64_t total_delivered() const {
    std::uint64_t n = 0;
    for (const auto& [k, v] : delivered_) n += v.size();
    return n;
  }

 private:
  struct Entry {
    std::uint64_t id = 0;
    std::uint32_t epoch = 0;
  };

  /// Collapses a per-pair event sequence onto unique message ids, keeping
  /// first-occurrence order. A repeated id in a *later* epoch is benign
  /// re-execution and is dropped; a repeat within the epoch it was last
  /// seen in sets `dup_in_epoch`.
  [[nodiscard]] static std::vector<std::uint64_t> collapse(
      const std::vector<Entry>& v, bool& dup_in_epoch) {
    std::vector<std::uint64_t> out;
    std::map<std::uint64_t, std::uint32_t> last_epoch;  // id -> epoch seen
    for (const Entry& e : v) {
      const auto it = last_epoch.find(e.id);
      if (it == last_epoch.end()) {
        last_epoch.emplace(e.id, e.epoch);
        out.push_back(e.id);
      } else if (it->second == e.epoch) {
        dup_in_epoch = true;
      } else {
        it->second = e.epoch;  // re-executed across a rollback cut
      }
    }
    return out;
  }

  [[nodiscard]] static std::uint64_t key(std::uint32_t a,
                                         std::uint32_t b) noexcept {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  std::uint32_t epoch_ = 0;
  std::map<std::uint64_t, std::vector<Entry>> sent_;
  std::map<std::uint64_t, std::vector<Entry>> delivered_;
};

}  // namespace dvc::ckpt
