#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/hooks.hpp"
#include "clocksync/host_clock.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "storage/image_manager.hpp"
#include "telemetry/telemetry.hpp"
#include "vm/hypervisor.hpp"
#include "vm/virtual_machine.hpp"

namespace dvc::ckpt {

/// One virtual machine to be saved in a coordinated checkpoint.
struct SaveTarget {
  vm::Hypervisor* hypervisor = nullptr;
  vm::VirtualMachine* machine = nullptr;
  /// The host clock of the node running the VM (needed by the NTP
  /// coordinator; the naive coordinator ignores it).
  clocksync::HostClock* clock = nullptr;
  std::uint64_t member = 0;  ///< index within the checkpoint set
  /// Write only memory dirtied since the member's last image (the restore
  /// chain then spans back to its last full image).
  bool incremental = false;
  /// Issuing coordinator's fencing token, stamped into the checkpoint set
  /// and every save command. Defaults to unfenced for library users
  /// driving the coordinator directly.
  std::uint64_t epoch = storage::kUnfencedEpoch;
};

/// Outcome of one coordinated checkpoint attempt.
struct LscResult {
  bool ok = false;  ///< every member image durable (set sealed)
  /// Round abandoned before any guest froze (health check tripped, or
  /// every save aborted pre-freeze); distinct from a failed save: an
  /// aborted round is harmless.
  bool aborted_cleanly = false;
  /// The round's watchdog expired before every member reported; the
  /// stragglers' late completions are swallowed.
  bool timed_out = false;
  storage::CheckpointSetId set = storage::kInvalidCheckpointSet;
  /// Spread between the first and the last guest freeze — the quantity
  /// that races the transport retry budget.
  sim::Duration pause_skew = 0;
  /// First freeze to last image durable: how long the checkpoint took.
  sim::Duration total_time = 0;
  /// Guest software snapshots, indexed like the targets vector. Restart
  /// hands these back to the restored guests.
  std::vector<std::any> app_snapshots;
  int attempts = 1;  ///< rounds used (health-checked retries)
  int retries = 0;   ///< whole-round retries consumed (RetryPolicy)
  /// Members whose guest froze but whose image never became durable (work
  /// was disturbed) vs. members whose save aborted before the freeze.
  int members_failed = 0;
  int members_aborted = 0;
};

/// Coordinated whole-virtual-cluster checkpointing ("Lazy Synchronous
/// Checkpointing", paper §3): save every VM "simultaneously enough" that
/// the guests' reliable transport masks the cut. Implementations differ
/// only in how the simultaneous trigger is achieved.
class LscCoordinator {
 public:
  /// Whole-round failure handling, shared by every implementation. All
  /// defaults are off, so a coordinator without an explicit policy behaves
  /// exactly as before: one round, no watchdog, failures reported bare.
  struct RetryPolicy {
    /// Extra rounds attempted after a failed one (0 = report the bare
    /// failure). Each retry asks the caller's `Retarget` hook for a fresh
    /// target list (members may have been relocated by a recovery since
    /// the round started); without a hook the original targets are
    /// re-fired as-is.
    int max_round_retries = 0;
    /// Exponential backoff before each retry: first wait `backoff`, then
    /// `backoff * backoff_factor`, and so on.
    sim::Duration backoff = 2 * sim::kSecond;
    double backoff_factor = 2.0;
    /// Abandon a round whose members have not all reported within this
    /// budget (0 = wait forever). A timed-out round reports (or retries
    /// as) a failure; late straggler completions are counted and dropped.
    sim::Duration round_timeout = 0;
  };

  /// Re-resolves the save targets for a retried round. A recovery may have
  /// relocated members between attempts, leaving the original targets
  /// pointing at dead hypervisors — retrying those pauses the survivors
  /// while the relocated member runs free, the exact asymmetry LSC exists
  /// to avoid. Returning nullopt abandons the remaining retries (e.g. a
  /// recovery is mid-flight and will re-checkpoint on its own schedule).
  using Retarget =
      std::function<std::optional<std::vector<SaveTarget>>()>;

  virtual ~LscCoordinator() = default;

  /// Runs one coordinated checkpoint of `targets`. Every VM is resumed as
  /// soon as its own image is durable (stop-and-copy). `done` fires when
  /// the set seals or the attempt is abandoned — after exhausting the
  /// retry policy, if one is set.
  /// `resume_after_save` selects stop-and-copy-and-continue (true, the
  /// checkpointing case) or save-and-hold (false, the migration case: the
  /// frozen domains are about to move, so nobody thaws them here).
  void checkpoint(std::string label, std::vector<SaveTarget> targets,
                  storage::ImageManager& images,
                  std::function<void(LscResult)> done,
                  bool resume_after_save = true, Retarget retarget = nullptr);

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Attaches an optional metrics registry. Rounds appear as spans on the
  /// "lsc" timeline track; skew and duration land in `ckpt.lsc.*`.
  void set_metrics(telemetry::MetricsRegistry* m) noexcept { metrics_ = m; }

  void set_retry_policy(RetryPolicy p) noexcept { retry_ = p; }
  [[nodiscard]] const RetryPolicy& retry_policy() const noexcept {
    return retry_;
  }

  /// Attaches an optional invariant checker (null to detach), notified
  /// once per checkpoint() call when the round's final outcome is settled
  /// (after the retry policy ran its course).
  void set_check(check::Checker* c) noexcept { check_ = c; }

 protected:
  explicit LscCoordinator(sim::Simulation& sim) noexcept : sim_(&sim) {}

  /// One coordinated round (implementation-specific trigger). `done` must
  /// be invoked exactly once with the round's outcome.
  virtual void start_round(std::string label,
                           std::vector<SaveTarget> targets,
                           storage::ImageManager& images,
                           std::function<void(LscResult)> done,
                           bool resume_after_save) = 0;

  telemetry::MetricsRegistry* metrics_ = nullptr;
  check::Checker* check_ = nullptr;
  sim::Simulation* sim_;

 private:
  void run_round(std::string label, std::vector<SaveTarget> targets,
                 storage::ImageManager& images,
                 std::function<void(LscResult)> done, bool resume_after_save,
                 Retarget retarget, int round_no, sim::Duration backoff);

  RetryPolicy retry_{};
};

/// The paper's first prototype (§3.1 "Naive approach"): one program opens a
/// terminal to every node and writes `vm save` down each in a loop. The
/// per-terminal dispatch delays accumulate, so the k-th guest freezes
/// roughly k dispatch-delays after the first — and once the cumulative
/// skew exceeds the transport retry budget, a still-running guest aborts a
/// connection to a frozen one and the application dies. This reproduces
/// "did not scale beyond 8 nodes" (T1).
class NaiveLscCoordinator final : public LscCoordinator {
 public:
  struct Config {
    /// Per-terminal command dispatch: fixed cost plus exponential jitter
    /// (interactive shell round-trip against a timesharing dom0).
    ///
    /// Calibrated against the paper's observed failure knee (fine at 8
    /// nodes, ~50% at 10, ~90% at 12) for the calibrated MPI-over-TCP
    /// transport. The binding exposure is on the *resume* side: staggered
    /// saves finish staggered (amplified ~1.75x by storage contention),
    /// and a resumed guest's backed-off retransmission schedule tolerates
    /// only ~6 s of continued peer silence before the retry counter runs
    /// out. Knee: 1.75 x (n-1) x E[dispatch] ~ 6 s at n = 10.
    sim::Duration dispatch_base = 175 * sim::kMillisecond;
    sim::Duration dispatch_jitter = 175 * sim::kMillisecond;
  };

  NaiveLscCoordinator(sim::Simulation& sim, Config cfg, sim::Rng rng)
      : LscCoordinator(sim), cfg_(cfg), rng_(rng) {}

  [[nodiscard]] std::string_view name() const override { return "naive"; }

 protected:
  void start_round(std::string label, std::vector<SaveTarget> targets,
                   storage::ImageManager& images,
                   std::function<void(LscResult)> done,
                   bool resume_after_save) override;

 private:
  Config cfg_;
  sim::Rng rng_;
};

/// The paper's working prototype (§3.1 "Current prototype"): all hosts are
/// NTP-synchronised; an agent on each node arms a microsecond-precision
/// timer for a common *local* wall-clock instant and fires `vm save`
/// locally. Skew is then bounded by clock error plus timer jitter — a few
/// milliseconds — so the transport never times out (T2).
///
/// The paper's §4 future work (error checking, "coordinated health check of
/// checkpoint processes", robustness on loaded servers) is implemented
/// behind Config::health_check (ablation A3).
class NtpLscCoordinator final : public LscCoordinator {
 public:
  struct Config {
    /// How far in the future the common save instant is set.
    sim::Duration lead_time = 2 * sim::kSecond;
    /// Local timer wake-up jitter (exponential mean): the "sleep timer
    /// capable of microsecond precision" still contends with the OS.
    sim::Duration sched_jitter = 1 * sim::kMillisecond;
    /// Loaded-host model: probability that an agent is starved and fires
    /// late by an extra exponential(stall_mean) — the unaddressed drawback
    /// the paper names ("a heavily loaded server which may not be able to
    /// service a checkpoint request immediately").
    double stall_prob = 0.0;
    sim::Duration stall_mean = 30 * sim::kSecond;
    /// Future-work feature: shortly before the deadline the coordinator
    /// polls every agent; if one is starved, the round is abandoned before
    /// any guest freezes and retried at a later instant.
    bool health_check = false;
    sim::Duration health_check_lead = 500 * sim::kMillisecond;
    int max_attempts = 3;
  };

  NtpLscCoordinator(sim::Simulation& sim, Config cfg, sim::Rng rng)
      : LscCoordinator(sim), cfg_(cfg), rng_(rng) {}

  [[nodiscard]] std::string_view name() const override { return "ntp"; }

 protected:
  void start_round(std::string label, std::vector<SaveTarget> targets,
                   storage::ImageManager& images,
                   std::function<void(LscResult)> done,
                   bool resume_after_save) override;

 private:
  void attempt(std::string label, std::vector<SaveTarget> targets,
               storage::ImageManager& images, int attempt_no,
               std::function<void(LscResult)> done, bool resume_after_save);

  Config cfg_;
  sim::Rng rng_;
};

/// Shared bookkeeping for one in-flight coordinated round: collects pause
/// times and snapshots, resumes guests as their images seal, and reports.
/// Construct through std::make_shared: fire() keeps the round alive until
/// its slow save callback lands, which outlives the firing event itself.
class RoundTracker final
    : public std::enable_shared_from_this<RoundTracker> {
 public:
  RoundTracker(sim::Simulation& sim, std::vector<SaveTarget> targets,
               storage::ImageManager& images, std::string label,
               std::function<void(LscResult)> done, int attempt_no,
               bool resume_after_save,
               telemetry::MetricsRegistry* metrics = nullptr);

  /// Issues the save for target `i` now (hypervisor adds local latency).
  void fire(std::size_t i);

  [[nodiscard]] const std::vector<SaveTarget>& targets() const noexcept {
    return targets_;
  }

 private:
  void on_member_durable(std::size_t i, bool ok, std::any state);
  void finish();

  sim::Simulation* sim_;
  std::vector<SaveTarget> targets_;
  storage::ImageManager* images_;
  storage::CheckpointSetId set_;
  std::function<void(LscResult)> done_;
  LscResult result_;
  std::size_t outstanding_;
  bool resume_after_save_;
  /// Failed-save split: a member whose guest froze before its save died
  /// lost real work; one whose save aborted pre-freeze cost nothing. The
  /// pause counter recorded at fire() time tells the two apart.
  int members_failed_ = 0;
  int members_aborted_ = 0;
  std::vector<std::uint64_t> pauses_at_fire_;
  sim::Time first_pause_ = 0;
  sim::Time last_pause_ = 0;
  bool saw_pause_ = false;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::MetricsRegistry::SpanId round_span_ =
      telemetry::MetricsRegistry::kInvalidSpan;
};

}  // namespace dvc::ckpt
