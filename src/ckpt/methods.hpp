#pragma once

#include <cstdint>
#include <string_view>

#include "app/workload.hpp"
#include "sim/time.hpp"
#include "vm/guest_os.hpp"
#include "vm/virtual_machine.hpp"

namespace dvc::ckpt {

/// The paper's taxonomy of checkpointing approaches (§2), plus the
/// VM-level approach DVC adds on top.
enum class MethodKind : std::uint8_t {
  kApplication,  ///< app saves only what it needs (fastest, most intrusive)
  kUserLevel,    ///< libckpt-style: full process image, needs re-linking
  kKernelLevel,  ///< CRAK-style: full process image, kernel module
  kVmLevel,      ///< DVC: whole guest OS image, fully transparent
};

/// Qualitative properties of a method, matching §2's discussion.
struct MethodProfile {
  MethodKind kind;
  std::string_view name;
  bool transparent_to_app;   ///< no source/app involvement at all
  bool requires_relink;      ///< must link against a checkpoint library
  bool requires_app_code;    ///< programmer writes checkpoint support
  bool handles_parallel;     ///< can checkpoint co-dependent MPI ranks
  bool saves_kernel_state;   ///< sockets/files survive without tricks
};

[[nodiscard]] MethodProfile profile(MethodKind kind) noexcept;

/// Size/time footprint of checkpointing ONE rank of a workload with a
/// given method. Sizes follow §2's ordering: application < user-level
/// (whole process) < kernel-level (+ kernel buffers) < VM (whole guest).
struct Footprint {
  std::uint64_t bytes = 0;
  /// Whether the method can checkpoint this workload at all (application-
  /// level requires the app to ship checkpoint code; user/kernel level
  /// cannot cut parallel network state without extra machinery).
  bool applicable = true;
};

[[nodiscard]] Footprint footprint(MethodKind kind,
                                  const app::WorkloadSpec& spec,
                                  const vm::GuestConfig& guest) noexcept;

/// Measured variant: sizes read out of a live guest's process table
/// (GuestOs) instead of the parametric model — the §2 accounting made
/// concrete. Applicability rules are shared with the model.
[[nodiscard]] Footprint measured_footprint(MethodKind kind,
                                           const app::WorkloadSpec& spec,
                                           const vm::GuestConfig& guest,
                                           const vm::GuestOs& os,
                                           vm::Pid pid);

/// Time to write one rank's checkpoint at the given storage bandwidth
/// share, plus the method's fixed coordination overhead.
[[nodiscard]] sim::Duration estimate_time(const Footprint& f,
                                          double bytes_per_second) noexcept;

inline constexpr MethodKind kAllMethods[] = {
    MethodKind::kApplication,
    MethodKind::kUserLevel,
    MethodKind::kKernelLevel,
    MethodKind::kVmLevel,
};

}  // namespace dvc::ckpt
