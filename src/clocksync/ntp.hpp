#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "clocksync/host_clock.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"

namespace dvc::clocksync {

/// Parameters of the simulated NTP exchange path between a client host and
/// the (stratum-0, true-time) reference server.
struct NtpPathModel {
  /// Mean one-way network delay to/from the server.
  sim::Duration one_way_mean = 200 * sim::kMicrosecond;
  /// Exponential jitter added independently to each direction. Asymmetry
  /// between the two directions is what limits achievable sync accuracy.
  sim::Duration one_way_jitter = 300 * sim::kMicrosecond;
};

/// One completed NTP sample (all values in true-time ticks for bookkeeping;
/// the protocol itself only ever saw local timestamps).
struct NtpSample {
  sim::Duration measured_offset = 0;  ///< Offset the algorithm computed.
  sim::Duration round_trip = 0;       ///< Observed RTT (delay filter key).
};

/// NTP-style synchroniser for one host clock (RFC 5905's on-wire protocol
/// and clock filter, reduced to the parts that matter for LSC):
///
///   * four-timestamp exchange  ->  offset = ((t1-t0) + (t2-t3)) / 2
///   * burst of `samples_per_poll` exchanges, keep the minimum-RTT sample
///     (Mills' clock filter: low RTT correlates with low asymmetry error)
///   * step the clock by the filtered offset
///
/// Because the server is the true-time reference, the residual error after a
/// sync is exactly the delay asymmetry of the chosen sample plus drift
/// accumulated until the next poll — a few hundred microseconds to a few
/// milliseconds for LAN paths, matching the paper's "within a few
/// milliseconds" premise (Mills 1995).
///
/// With `discipline_frequency` on (the default, as in real ntpd), each
/// poll also estimates the oscillator's frequency error from the drift
/// accumulated since the previous poll and corrects a fraction of it, so
/// the steady-state phase error shrinks well below the per-poll drift.
class NtpSynchronizer final {
 public:
  NtpSynchronizer(sim::Simulation& sim, HostClock& clock, NtpPathModel path,
                  sim::Rng rng, int samples_per_poll = 8,
                  bool discipline_frequency = true)
      : sim_(&sim),
        clock_(&clock),
        path_(path),
        rng_(rng),
        samples_per_poll_(samples_per_poll),
        discipline_frequency_(discipline_frequency) {}

  /// Performs one synchronous poll burst and applies the correction.
  /// Returns the sample that was applied.
  NtpSample sync_once();

  /// Starts periodic polling every `interval`; the first poll happens
  /// immediately. Polling continues for the lifetime of the simulation.
  void start_periodic(sim::Duration interval);

  /// Number of corrections applied so far.
  [[nodiscard]] std::uint64_t polls() const noexcept { return polls_; }

  /// Magnitude of applied corrections, for diagnostics.
  [[nodiscard]] const sim::SummaryStats& correction_stats() const noexcept {
    return corrections_;
  }

 private:
  NtpSample measure_once();

  sim::Simulation* sim_;
  HostClock* clock_;
  NtpPathModel path_;
  sim::Rng rng_;
  int samples_per_poll_;
  bool discipline_frequency_;
  sim::Time last_poll_at_ = 0;
  bool have_prior_poll_ = false;
  std::uint64_t polls_ = 0;
  sim::SummaryStats corrections_{/*keep_samples=*/false};
};

/// Convenience bundle: one drifting clock plus its synchroniser per host,
/// all against a common true-time reference. This is the time service the
/// NTP-based LSC coordinator consumes.
class ClusterTimeService final {
 public:
  /// Distribution of initial clock states across hosts.
  struct Config {
    sim::Duration initial_offset_stddev = 50 * sim::kMillisecond;
    double drift_ppm_stddev = 30.0;  ///< typical undisciplined quartz
    NtpPathModel path;
    int samples_per_poll = 8;
    sim::Duration poll_interval = 16 * sim::kSecond;
  };

  ClusterTimeService(sim::Simulation& sim, std::size_t hosts, Config cfg,
                     sim::Rng rng);

  /// Runs one sync burst on every host (e.g. before an experiment).
  void sync_all();

  /// Starts periodic polling on every host.
  void start_periodic();

  [[nodiscard]] std::size_t size() const noexcept { return clocks_.size(); }
  [[nodiscard]] HostClock& clock(std::size_t host) { return *clocks_[host]; }
  [[nodiscard]] const HostClock& clock(std::size_t host) const {
    return *clocks_[host];
  }

  /// Largest pairwise clock disagreement right now (true measurement; used
  /// by tests and benches, not by protocol code).
  [[nodiscard]] sim::Duration max_pairwise_skew() const;

  /// Distribution of |offset error| across hosts right now.
  [[nodiscard]] sim::SummaryStats offset_error_stats() const;

 private:
  sim::Simulation* sim_;
  sim::Duration poll_interval_ = 16 * sim::kSecond;
  std::vector<std::unique_ptr<HostClock>> clocks_;
  std::vector<std::unique_ptr<NtpSynchronizer>> syncs_;
};

}  // namespace dvc::clocksync
