#include "clocksync/ntp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace dvc::clocksync {

NtpSample NtpSynchronizer::measure_once() {
  // Four-timestamp exchange against the true-time server. The exchange is
  // modelled as instantaneous in simulated time (a poll burst is tiny
  // compared to drift timescales); the *sampled* delays still shape the
  // measurement exactly as a real wire would.
  const sim::Duration d_fwd =
      path_.one_way_mean + rng_.exponential_duration(path_.one_way_jitter);
  const sim::Duration d_back =
      path_.one_way_mean + rng_.exponential_duration(path_.one_way_jitter);

  const sim::Time true_now = sim_->now();
  const sim::Time t0 = clock_->to_local(true_now);            // client send
  const sim::Time t1 = true_now + d_fwd;                      // server recv
  const sim::Time t2 = t1;                                    // server send
  const sim::Time t3 = clock_->to_local(true_now + d_fwd + d_back);

  NtpSample s;
  // offset = ((t1 - t0) + (t2 - t3)) / 2; positive means client is behind.
  s.measured_offset = ((t1 - t0) + (t2 - t3)) / 2;
  s.round_trip = (t3 - t0) - (t2 - t1);
  return s;
}

NtpSample NtpSynchronizer::sync_once() {
  NtpSample best;
  best.round_trip = std::numeric_limits<sim::Duration>::max();
  for (int i = 0; i < samples_per_poll_; ++i) {
    const NtpSample s = measure_once();
    if (s.round_trip < best.round_trip) best = s;
  }
  // FLL discipline: the phase error accumulated since the previous poll
  // (whose phase we zeroed) estimates the frequency error. Correct half
  // of it per poll — measurement noise makes a full correction unstable.
  if (discipline_frequency_ && have_prior_poll_) {
    const sim::Duration elapsed = sim_->now() - last_poll_at_;
    if (elapsed > 0) {
      // measured_offset > 0 means we ran SLOW since the last poll, so the
      // corrective frequency adjustment has the same sign as the offset.
      const double correction_ppm =
          static_cast<double>(best.measured_offset) /
          static_cast<double>(elapsed) * 1e6;
      clock_->apply_frequency_correction(0.5 * correction_ppm);
    }
  }
  clock_->apply_correction(best.measured_offset);
  last_poll_at_ = sim_->now();
  have_prior_poll_ = true;
  ++polls_;
  corrections_.add(std::abs(sim::to_milliseconds(best.measured_offset)));
  return best;
}

void NtpSynchronizer::start_periodic(sim::Duration interval) {
  sync_once();
  // Housekeeping: polling must never keep the simulation alive by itself.
  sim_->schedule_daemon_after(interval, [this, interval] {
    start_periodic(interval);
  });
}

ClusterTimeService::ClusterTimeService(sim::Simulation& sim, std::size_t hosts,
                                       Config cfg, sim::Rng rng)
    : sim_(&sim) {
  clocks_.reserve(hosts);
  syncs_.reserve(hosts);
  for (std::size_t h = 0; h < hosts; ++h) {
    sim::Rng host_rng = rng.fork(h + 1);
    const auto offset = static_cast<sim::Duration>(host_rng.normal(
        0.0, static_cast<double>(cfg.initial_offset_stddev)));
    const double drift = host_rng.normal(0.0, cfg.drift_ppm_stddev);
    clocks_.push_back(std::make_unique<HostClock>(sim, offset, drift));
    syncs_.push_back(std::make_unique<NtpSynchronizer>(
        sim, *clocks_.back(), cfg.path, host_rng.fork(0xC10C),
        cfg.samples_per_poll));
    if (cfg.poll_interval > 0) {
      // Periodic polling is armed by start_periodic(); stash the interval.
      poll_interval_ = cfg.poll_interval;
    }
  }
}

void ClusterTimeService::sync_all() {
  for (auto& s : syncs_) s->sync_once();
}

void ClusterTimeService::start_periodic() {
  for (auto& s : syncs_) s->start_periodic(poll_interval_);
}

sim::Duration ClusterTimeService::max_pairwise_skew() const {
  sim::Duration lo = std::numeric_limits<sim::Duration>::max();
  sim::Duration hi = std::numeric_limits<sim::Duration>::min();
  for (const auto& c : clocks_) {
    const sim::Duration e = c->offset_error();
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  return clocks_.empty() ? 0 : hi - lo;
}

sim::SummaryStats ClusterTimeService::offset_error_stats() const {
  sim::SummaryStats st(/*keep_samples=*/true);
  for (const auto& c : clocks_) {
    st.add(std::abs(sim::to_milliseconds(c->offset_error())));
  }
  return st;
}

}  // namespace dvc::clocksync
