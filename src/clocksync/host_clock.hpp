#pragma once

#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace dvc::clocksync {

/// A physical host's local wall clock: an imperfect oscillator with a fixed
/// frequency error (drift, in parts per million) and a settable phase offset.
///
/// Simulated time (`Simulation::now()`) plays the role of ideal "true" time
/// (what a perfect NTP stratum-0 source would report); each host only ever
/// observes its own `local_now()`. NTP-style synchronisation measures and
/// corrects the phase offset but cannot remove delay-asymmetry error — which
/// is exactly the "few milliseconds" residual the paper's LSC relies on.
class HostClock final {
 public:
  /// Creates a clock reading `initial_offset` ahead of true time and running
  /// fast by `drift_ppm` parts per million (negative = slow).
  HostClock(const sim::Simulation& sim, sim::Duration initial_offset,
            double drift_ppm) noexcept
      : sim_(&sim),
        base_sim_(sim.now()),
        base_local_(sim.now() + initial_offset),
        drift_ppm_(drift_ppm) {}

  /// The host's current local wall-clock reading.
  [[nodiscard]] sim::Time local_now() const noexcept {
    return to_local(sim_->now());
  }

  /// Maps a true (simulated) time to this host's local reading of it.
  [[nodiscard]] sim::Time to_local(sim::Time sim_time) const noexcept {
    const sim::Duration dt = sim_time - base_sim_;
    return base_local_ + dt + drift_ticks(dt);
  }

  /// Maps a local wall-clock target back to true (simulated) time — i.e.
  /// the instant at which this host's clock will read `local`. Used to
  /// schedule "fire at local time T" actions on the event queue.
  [[nodiscard]] sim::Time to_sim(sim::Time local) const noexcept {
    const double dt_local = static_cast<double>(local - base_local_);
    const double dt = dt_local / (1.0 + drift_ppm_ * 1e-6);
    return base_sim_ + static_cast<sim::Duration>(dt);
  }

  /// Applies an instantaneous phase correction (NTP step/slew endpoint).
  void apply_correction(sim::Duration delta) noexcept {
    // Re-anchor at the current instant so drift continues from here.
    const sim::Time now_local = local_now();
    base_sim_ = sim_->now();
    base_local_ = now_local + delta;
  }

  /// Adjusts the oscillator's frequency by `delta_ppm` (NTP's FLL/PLL
  /// discipline: phase steps remove the offset, frequency corrections
  /// remove its cause).
  void apply_frequency_correction(double delta_ppm) noexcept {
    // Re-anchor so past time keeps its old rate; only the future changes.
    const sim::Time now_local = local_now();
    base_sim_ = sim_->now();
    base_local_ = now_local;
    drift_ppm_ += delta_ppm;
  }

  /// True phase error right now: local reading minus true time. Only test
  /// and measurement code may call this; protocol code must not peek.
  [[nodiscard]] sim::Duration offset_error() const noexcept {
    return local_now() - sim_->now();
  }

  [[nodiscard]] double drift_ppm() const noexcept { return drift_ppm_; }

 private:
  [[nodiscard]] sim::Duration drift_ticks(sim::Duration dt) const noexcept {
    return static_cast<sim::Duration>(static_cast<double>(dt) * drift_ppm_ *
                                      1e-6);
  }

  const sim::Simulation* sim_;
  sim::Time base_sim_;
  sim::Time base_local_;
  double drift_ppm_;
};

}  // namespace dvc::clocksync
