#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string_view>

#include "sim/simulation.hpp"
#include "telemetry/telemetry.hpp"

namespace dvc::storage {

/// Identifier of an in-flight transfer.
using TransferId = std::uint64_t;

inline constexpr TransferId kInvalidTransfer = 0;

/// A processor-sharing bandwidth resource: N concurrent transfers each
/// progress at capacity/N. This is the standard fluid model for an NFS
/// server (or any shared pipe) under concurrent streams and is what makes
/// "26 VMs saving at once" take ~26x longer per VM than a lone save —
/// the contention effect the paper's save-time measurements include.
class BandwidthPool final {
 public:
  BandwidthPool(sim::Simulation& sim, double bytes_per_second)
      : sim_(&sim), bps_(bytes_per_second) {}

  BandwidthPool(const BandwidthPool&) = delete;
  BandwidthPool& operator=(const BandwidthPool&) = delete;

  /// Starts a transfer of `bytes`; `on_complete` fires when it finishes.
  TransferId start(std::uint64_t bytes, std::function<void()> on_complete);

  /// Cancels an in-flight transfer (no callback). Returns true if found.
  bool cancel(TransferId id);

  /// Changes the pool's aggregate capacity mid-run (disk-slowdown fault
  /// injection / recovery). In-flight transfers keep the progress already
  /// made and continue at the new rate.
  void set_capacity(double bytes_per_second);

  [[nodiscard]] std::size_t active() const noexcept {
    return transfers_.size();
  }
  [[nodiscard]] double capacity_bps() const noexcept { return bps_; }
  [[nodiscard]] std::uint64_t completed() const noexcept {
    return completed_;
  }

  /// Time a transfer of `bytes` would take if it ran alone, for reporting.
  [[nodiscard]] sim::Duration uncontended_time(
      std::uint64_t bytes) const noexcept {
    return static_cast<sim::Duration>(static_cast<double>(bytes) / bps_ *
                                      sim::kSecond);
  }

  /// Attaches an optional metrics registry. `prefix` names this pool
  /// (e.g. "storage.write_pool"); the pool then records `<prefix>.bytes`,
  /// `<prefix>.transfers`, `<prefix>.transfer_s`,
  /// `<prefix>.contention_wait_s` (actual minus uncontended time — the
  /// cost of sharing the pipe) and the `<prefix>.active` gauge.
  void set_metrics(telemetry::MetricsRegistry* m, std::string_view prefix);

 private:
  struct Transfer {
    double remaining_bytes;
    std::function<void()> on_complete;
    std::uint64_t bytes = 0;     ///< original size, for metrics
    sim::Time started = 0;
  };

  /// Advances every transfer by the elapsed fluid progress, then reschedules
  /// the single completion event for the next finisher.
  void settle();
  void reschedule();

  sim::Simulation* sim_;
  double bps_;
  sim::Time last_settle_ = 0;
  TransferId next_id_ = 1;
  std::map<TransferId, Transfer> transfers_;
  sim::EventId pending_event_ = sim::kInvalidEvent;
  std::uint64_t completed_ = 0;

  telemetry::Counter* bytes_c_ = nullptr;
  telemetry::Counter* transfers_c_ = nullptr;
  telemetry::Histogram* transfer_h_ = nullptr;
  telemetry::Histogram* wait_h_ = nullptr;
  telemetry::Gauge* active_g_ = nullptr;
};

}  // namespace dvc::storage
