#include "storage/shared_store.hpp"

#include <utility>

namespace dvc::storage {

std::uint64_t synthetic_checksum(std::uint64_t a, std::uint64_t b,
                                 std::uint64_t c) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint64_t v : {a, b, c}) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

void SharedStore::set_metrics(telemetry::MetricsRegistry* m) {
  metrics_ = m;
  writes_.set_metrics(m, "storage.write_pool");
  reads_.set_metrics(m, "storage.read_pool");
}

void SharedStore::write_object(std::string name, std::uint64_t bytes,
                               std::uint64_t checksum,
                               std::function<void(ObjectId)> on_complete) {
  const sim::Time started = sim_->now();
  // Reserve the id now so concurrent writers get distinct ids
  // deterministically in call order.
  const ObjectId id = next_id_++;
  sim_->schedule_after(cfg_.op_overhead, [this, id, started,
                                          name = std::move(name), bytes,
                                          checksum,
                                          cb = std::move(on_complete)]() mutable {
    writes_.start(bytes, [this, id, started, name = std::move(name), bytes,
                          checksum, cb = std::move(cb)] {
      ObjectInfo info;
      info.id = id;
      info.name = name;
      info.bytes = bytes;
      info.checksum = checksum;
      info.created_at = sim_->now();
      objects_.emplace(id, info);
      bytes_stored_ += bytes;
      bytes_written_total_ += bytes;
      write_times_.add(sim::to_seconds(sim_->now() - started));
      telemetry::count(metrics_, "storage.store.writes");
      telemetry::observe(metrics_, "storage.store.write_s",
                         sim::to_seconds(sim_->now() - started));
      if (cb) cb(id);
    });
  });
}

ObjectId SharedStore::put_object(std::string name, std::uint64_t bytes,
                                 std::uint64_t checksum) {
  const ObjectId id = next_id_++;
  ObjectInfo info;
  info.id = id;
  info.name = std::move(name);
  info.bytes = bytes;
  info.checksum = checksum;
  info.created_at = sim_->now();
  objects_.emplace(id, info);
  bytes_stored_ += bytes;
  return id;
}

void SharedStore::read_object(ObjectId id,
                              std::function<void(bool)> on_complete) {
  sim_->schedule_after(cfg_.op_overhead, [this, id,
                                          cb = std::move(on_complete)] {
    const auto it = objects_.find(id);
    if (it == objects_.end()) {
      telemetry::count(metrics_, "storage.store.read_failures");
      if (cb) cb(false);
      return;
    }
    const std::uint64_t expect = it->second.checksum;
    const std::uint64_t bytes = it->second.bytes;
    reads_.start(bytes, [this, id, expect, cb = std::move(cb)] {
      const auto again = objects_.find(id);
      const bool ok = again != objects_.end() &&
                      again->second.checksum == expect;
      telemetry::count(metrics_, ok ? "storage.store.reads"
                                    : "storage.store.read_failures");
      if (cb) cb(ok);
    });
  });
}

bool SharedStore::remove_object(ObjectId id) {
  const auto it = objects_.find(id);
  if (it == objects_.end()) return false;
  bytes_stored_ -= it->second.bytes;
  objects_.erase(it);
  return true;
}

std::optional<ObjectInfo> SharedStore::info(ObjectId id) const {
  const auto it = objects_.find(id);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

}  // namespace dvc::storage
