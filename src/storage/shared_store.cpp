#include "storage/shared_store.hpp"

#include <algorithm>
#include <utility>

namespace dvc::storage {

namespace {
/// XOR mask applied by corrupt_object: any non-zero change to the on-disk
/// digest models a bit flip the declared digest will not match.
constexpr std::uint64_t kBitRot = 0xB17F117ULL;
}  // namespace

std::string_view to_string(ReadError e) noexcept {
  switch (e) {
    case ReadError::kOk:
      return "ok";
    case ReadError::kNotFound:
      return "not_found";
    case ReadError::kTorn:
      return "torn";
    case ReadError::kChecksumMismatch:
      return "checksum_mismatch";
  }
  return "unknown";
}

std::uint64_t synthetic_checksum(std::uint64_t a, std::uint64_t b,
                                 std::uint64_t c) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint64_t v : {a, b, c}) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

void SharedStore::set_metrics(telemetry::MetricsRegistry* m,
                              std::string prefix) {
  metrics_ = m;
  metric_prefix_ = std::move(prefix);
  writes_.set_metrics(m, metric_prefix_ + ".write_pool");
  reads_.set_metrics(m, metric_prefix_ + ".read_pool");
}

void SharedStore::count(const char* metric) const {
  if (metrics_ == nullptr) return;
  telemetry::count(metrics_, metric_prefix_ + ".store." + metric);
}

void SharedStore::install(ObjectId id, InflightWrite&& w, bool torn) {
  ObjectInfo info;
  info.id = id;
  info.name = std::move(w.name);
  info.bytes = w.bytes;
  info.checksum = w.checksum;
  info.stored_checksum = w.checksum;
  info.torn = torn;
  info.created_at = sim_->now();
  objects_.emplace(id, std::move(info));
  bytes_stored_ += w.bytes;
  bytes_written_total_ += w.bytes;
  write_times_.add(sim::to_seconds(sim_->now() - w.started));
  count(torn ? "torn_writes" : "writes");
  if (metrics_ != nullptr) {
    telemetry::observe(metrics_, metric_prefix_ + ".store.write_s",
                       sim::to_seconds(sim_->now() - w.started));
  }
  // The writer learns nothing about the tear: its fsync "succeeded".
  if (w.on_complete) w.on_complete(id);
}

void SharedStore::write_object(std::string name, std::uint64_t bytes,
                               std::uint64_t checksum,
                               std::function<void(ObjectId)> on_complete) {
  // Reserve the id now so concurrent writers get distinct ids
  // deterministically in call order.
  const ObjectId id = next_id_++;
  InflightWrite w;
  w.name = std::move(name);
  w.bytes = bytes;
  w.checksum = checksum;
  w.started = sim_->now();
  w.on_complete = std::move(on_complete);
  inflight_.emplace(id, std::move(w));
  sim_->schedule_after(cfg_.op_overhead, [this, id] {
    const auto it = inflight_.find(id);
    if (it == inflight_.end()) return;  // torn during the op overhead
    it->second.transfer = writes_.start(it->second.bytes, [this, id] {
      const auto wit = inflight_.find(id);
      if (wit == inflight_.end()) return;
      InflightWrite done = std::move(wit->second);
      inflight_.erase(wit);
      install(id, std::move(done), /*torn=*/false);
    });
  });
}

ObjectId SharedStore::put_object(std::string name, std::uint64_t bytes,
                                 std::uint64_t checksum) {
  const ObjectId id = next_id_++;
  ObjectInfo info;
  info.id = id;
  info.name = std::move(name);
  info.bytes = bytes;
  info.checksum = checksum;
  info.stored_checksum = checksum;
  info.created_at = sim_->now();
  objects_.emplace(id, info);
  bytes_stored_ += bytes;
  return id;
}

void SharedStore::read_object(ObjectId id,
                              std::function<void(ReadError)> on_complete) {
  sim_->schedule_after(cfg_.op_overhead, [this, id,
                                          cb = std::move(on_complete)] {
    const auto it = objects_.find(id);
    if (it == objects_.end()) {
      count("read_failures");
      if (cb) cb(ReadError::kNotFound);
      return;
    }
    const std::uint64_t bytes = it->second.bytes;
    reads_.start(bytes, [this, id, cb = std::move(cb)] {
      // Re-verify after the transfer: the object may have been removed,
      // corrupted, or identified as torn while the read streamed.
      const auto again = objects_.find(id);
      ReadError err = ReadError::kOk;
      if (again == objects_.end()) {
        err = ReadError::kNotFound;
      } else if (again->second.torn) {
        err = ReadError::kTorn;
      } else if (again->second.stored_checksum != again->second.checksum) {
        err = ReadError::kChecksumMismatch;
      }
      count(err == ReadError::kOk ? "reads" : "read_failures");
      if (err == ReadError::kTorn || err == ReadError::kChecksumMismatch) {
        count("verify_failures");
      }
      if (cb) cb(err);
    });
  });
}

bool SharedStore::remove_object(ObjectId id) {
  const auto it = objects_.find(id);
  if (it == objects_.end()) return false;
  bytes_stored_ -= it->second.bytes;
  objects_.erase(it);
  return true;
}

bool SharedStore::corrupt_object(ObjectId id) {
  const auto it = objects_.find(id);
  if (it == objects_.end() || it->second.torn) return false;
  it->second.stored_checksum ^= kBitRot;
  count("corruptions");
  return true;
}

ObjectId SharedStore::nth_newest_object(std::size_t n) const {
  if (n >= objects_.size()) return kInvalidObject;
  // Ids are handed out monotonically, so id order is creation order.
  std::vector<ObjectId> ids;
  ids.reserve(objects_.size());
  for (const auto& [id, info] : objects_) ids.push_back(id);
  std::sort(ids.begin(), ids.end(), std::greater<>());
  return ids[n];
}

std::size_t SharedStore::tear_inflight_writes() {
  if (inflight_.empty()) return 0;
  std::map<ObjectId, InflightWrite> dying = std::move(inflight_);
  inflight_.clear();
  for (auto& [id, w] : dying) {
    if (w.transfer != kInvalidTransfer) writes_.cancel(w.transfer);
    install(id, std::move(w), /*torn=*/true);
  }
  return dying.size();
}

std::optional<ObjectInfo> SharedStore::info(ObjectId id) const {
  const auto it = objects_.find(id);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

}  // namespace dvc::storage
