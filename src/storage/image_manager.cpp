#include "storage/image_manager.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace dvc::storage {

ObjectId ImageManager::register_base_image(std::string name,
                                           std::uint64_t bytes) {
  // Base images are pre-seeded: they exist before the simulated experiment
  // begins, so installation is a metadata-only operation.
  const ObjectId id =
      store_->put_object(name, bytes, synthetic_checksum(bytes, 0, 1));
  base_images_[name] = id;
  return id;
}

std::optional<ObjectId> ImageManager::find_base_image(
    const std::string& name) const {
  const auto it = base_images_.find(name);
  if (it == base_images_.end() || it->second == kInvalidObject) {
    telemetry::count(metrics_, "storage.images.base_image_misses");
    return std::nullopt;
  }
  telemetry::count(metrics_, "storage.images.base_image_hits");
  return it->second;
}

CheckpointSetId ImageManager::open_set(std::string label,
                                       std::size_t members) {
  const CheckpointSetId id = next_set_++;
  CheckpointSet s;
  s.id = id;
  s.label = std::move(label);
  s.expected_members = members;
  sets_.emplace(id, std::move(s));
  telemetry::count(metrics_, "storage.images.sets_opened");
  return id;
}

void ImageManager::add_member(CheckpointSetId set, std::uint64_t member,
                              std::uint64_t bytes,
                              std::function<void()> on_member_done) {
  auto it = sets_.find(set);
  if (it == sets_.end() || it->second.aborted) return;
  const std::uint64_t checksum = synthetic_checksum(set, member, bytes);
  store_->write_object("ckpt", bytes, checksum,
                       [this, set, member, bytes,
                        cb = std::move(on_member_done)](ObjectId obj) {
                         auto sit = sets_.find(set);
                         if (sit == sets_.end() || sit->second.aborted) {
                           store_->remove_object(obj);
                           if (cb) cb();
                           return;
                         }
                         sit->second.members.push_back(
                             MemberImage{member, obj, bytes});
                         telemetry::count(metrics_,
                                          "storage.images.members_added");
                         maybe_seal(sit->second);
                         if (cb) cb();
                       });
}

void ImageManager::abort_set(CheckpointSetId set) {
  auto it = sets_.find(set);
  if (it == sets_.end() || it->second.sealed) return;
  it->second.aborted = true;
  for (const auto& m : it->second.members) store_->remove_object(m.object);
  it->second.members.clear();
  seal_callbacks_.erase(set);
  telemetry::count(metrics_, "storage.images.sets_aborted");
}

std::uint64_t ImageManager::discard_set(CheckpointSetId set) {
  auto it = sets_.find(set);
  if (it == sets_.end()) return 0;
  std::uint64_t reclaimed = 0;
  for (const auto& m : it->second.members) {
    reclaimed += m.bytes;
    store_->remove_object(m.object);
  }
  seal_callbacks_.erase(set);
  sets_.erase(it);
  telemetry::count(metrics_, "storage.images.sets_discarded");
  return reclaimed;
}

void ImageManager::on_sealed(CheckpointSetId set, std::function<void()> fn) {
  const auto it = sets_.find(set);
  if (it != sets_.end() && it->second.sealed) {
    fn();
    return;
  }
  seal_callbacks_[set].push_back(std::move(fn));
}

void ImageManager::maybe_seal(CheckpointSet& s) {
  if (s.sealed || s.aborted || s.members.size() < s.expected_members) return;
  s.sealed = true;
  telemetry::count(metrics_, "storage.images.sets_sealed");
  const auto cbs = seal_callbacks_.find(s.id);
  if (cbs != seal_callbacks_.end()) {
    const auto fns = std::move(cbs->second);
    seal_callbacks_.erase(cbs);
    for (const auto& fn : fns) fn();
  }
}

const CheckpointSet* ImageManager::find_set(CheckpointSetId set) const {
  const auto it = sets_.find(set);
  return it == sets_.end() ? nullptr : &it->second;
}

const CheckpointSet* ImageManager::latest_sealed(
    const std::string& label) const {
  const CheckpointSet* best = nullptr;
  for (const auto& [id, s] : sets_) {
    if (s.sealed && s.label == label) best = &s;  // map is id-ordered
  }
  return best;
}

void ImageManager::stage_set(CheckpointSetId set,
                             std::function<void(bool)> on_staged) {
  const CheckpointSet* s = find_set(set);
  if (s == nullptr || !s->sealed) {
    if (on_staged) on_staged(false);
    return;
  }
  auto remaining = std::make_shared<std::size_t>(s->members.size());
  auto all_ok = std::make_shared<bool>(true);
  if (*remaining == 0) {
    if (on_staged) on_staged(true);
    return;
  }
  for (const auto& m : s->members) {
    telemetry::count(metrics_, "storage.images.stage_reads");
    store_->read_object(m.object,
                        [remaining, all_ok, on_staged](bool ok) {
                          if (!ok) *all_ok = false;
                          if (--*remaining == 0 && on_staged) {
                            on_staged(*all_ok);
                          }
                        });
  }
}

std::uint64_t ImageManager::prune(const std::string& label,
                                  std::size_t keep) {
  std::vector<CheckpointSetId> sealed;
  for (const auto& [id, s] : sets_) {
    if (s.sealed && s.label == label) sealed.push_back(id);
  }
  if (sealed.size() <= keep) return 0;
  std::uint64_t reclaimed = 0;
  const std::size_t drop = sealed.size() - keep;
  for (std::size_t i = 0; i < drop; ++i) {
    auto it = sets_.find(sealed[i]);
    for (const auto& m : it->second.members) {
      reclaimed += m.bytes;
      store_->remove_object(m.object);
    }
    sets_.erase(it);
  }
  telemetry::count(metrics_, "storage.images.sets_pruned", drop);
  telemetry::count(metrics_, "storage.images.pruned_bytes", reclaimed);
  return reclaimed;
}

}  // namespace dvc::storage
