#include "storage/image_manager.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace dvc::storage {

ObjectId ImageManager::register_base_image(std::string name,
                                           std::uint64_t bytes) {
  // Base images are pre-seeded: they exist before the simulated experiment
  // begins, so installation is a metadata-only operation.
  const ObjectId id =
      store_->put_object(name, bytes, synthetic_checksum(bytes, 0, 1));
  base_images_[name] = id;
  return id;
}

std::optional<ObjectId> ImageManager::find_base_image(
    const std::string& name) const {
  const auto it = base_images_.find(name);
  if (it == base_images_.end() || it->second == kInvalidObject) {
    telemetry::count(metrics_, "storage.images.base_image_misses");
    return std::nullopt;
  }
  telemetry::count(metrics_, "storage.images.base_image_hits");
  return it->second;
}

CheckpointSetId ImageManager::open_set(std::string label,
                                       std::size_t members,
                                       std::uint64_t epoch) {
  if (fenced(epoch)) return kInvalidCheckpointSet;
  admitted("open_set", epoch);
  const CheckpointSetId id = next_set_++;
  CheckpointSet s;
  s.id = id;
  s.label = std::move(label);
  s.expected_members = members;
  sets_.emplace(id, std::move(s));
  telemetry::count(metrics_, "storage.images.sets_opened");
  return id;
}

void ImageManager::add_member(CheckpointSetId set, std::uint64_t member,
                              std::uint64_t bytes,
                              std::function<void()> on_member_done,
                              std::uint64_t epoch) {
  if (fenced(epoch)) return;
  admitted("add_member", epoch);
  auto it = sets_.find(set);
  if (it == sets_.end() || it->second.aborted) return;
  const std::uint64_t checksum = synthetic_checksum(set, member, bytes);
  store_->write_object("ckpt", bytes, checksum,
                       [this, set, member, bytes,
                        cb = std::move(on_member_done)](ObjectId obj) {
                         auto sit = sets_.find(set);
                         if (sit == sets_.end() || sit->second.aborted) {
                           store_->remove_object(obj);
                           if (cb) cb();
                           return;
                         }
                         MemberImage img{member, obj, bytes, {}};
                         img.replicas.assign(replicas_.size(),
                                             kInvalidObject);
                         sit->second.members.push_back(std::move(img));
                         telemetry::count(metrics_,
                                          "storage.images.members_added");
                         replicate_member(set, member, bytes);
                         maybe_seal(sit->second);
                         if (cb) cb();
                       });
}

void ImageManager::replicate_member(CheckpointSetId set, std::uint64_t member,
                                    std::uint64_t bytes) {
  // Replication is asynchronous: it consumes each replica store's write
  // bandwidth but never gates sealing. A copy that lands after its set
  // died is removed again.
  const std::uint64_t checksum = synthetic_checksum(set, member, bytes);
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    replicas_[i]->write_object(
        "ckpt-replica", bytes, checksum,
        [this, set, member, bytes, i](ObjectId obj) {
          auto sit = sets_.find(set);
          if (sit == sets_.end() || sit->second.aborted) {
            replicas_[i]->remove_object(obj);
            return;
          }
          for (auto& m : sit->second.members) {
            if (m.member == member) {
              m.replicas[i] = obj;
              telemetry::count(metrics_, "storage.replica.copies");
              telemetry::count(metrics_, "storage.replica.copy_bytes",
                               bytes);
              return;
            }
          }
          replicas_[i]->remove_object(obj);
        });
  }
}

void ImageManager::drop_member_objects(const MemberImage& m) {
  store_->remove_object(m.object);
  for (std::size_t i = 0; i < m.replicas.size() && i < replicas_.size();
       ++i) {
    if (m.replicas[i] != kInvalidObject) {
      replicas_[i]->remove_object(m.replicas[i]);
    }
  }
}

void ImageManager::abort_set(CheckpointSetId set, std::uint64_t epoch) {
  if (fenced(epoch)) return;
  admitted("abort_set", epoch);
  auto it = sets_.find(set);
  if (it == sets_.end() || it->second.sealed) return;
  it->second.aborted = true;
  for (const auto& m : it->second.members) drop_member_objects(m);
  it->second.members.clear();
  seal_callbacks_.erase(set);
  telemetry::count(metrics_, "storage.images.sets_aborted");
}

std::uint64_t ImageManager::discard_set(CheckpointSetId set,
                                        std::uint64_t epoch) {
  if (fenced(epoch)) return 0;
  admitted("discard_set", epoch);
  auto it = sets_.find(set);
  if (it == sets_.end()) return 0;
  std::uint64_t reclaimed = 0;
  for (const auto& m : it->second.members) {
    reclaimed += m.bytes;
    drop_member_objects(m);
  }
  seal_callbacks_.erase(set);
  sets_.erase(it);
  telemetry::count(metrics_, "storage.images.sets_discarded");
  return reclaimed;
}

void ImageManager::on_sealed(CheckpointSetId set, std::function<void()> fn) {
  const auto it = sets_.find(set);
  if (it != sets_.end() && it->second.sealed) {
    fn();
    return;
  }
  seal_callbacks_[set].push_back(std::move(fn));
}

void ImageManager::maybe_seal(CheckpointSet& s) {
  if (s.sealed || s.aborted || s.members.size() < s.expected_members) return;
  s.sealed = true;
  telemetry::count(metrics_, "storage.images.sets_sealed");
  const auto cbs = seal_callbacks_.find(s.id);
  if (cbs != seal_callbacks_.end()) {
    const auto fns = std::move(cbs->second);
    seal_callbacks_.erase(cbs);
    for (const auto& fn : fns) fn();
  }
}

const CheckpointSet* ImageManager::find_set(CheckpointSetId set) const {
  const auto it = sets_.find(set);
  return it == sets_.end() ? nullptr : &it->second;
}

const CheckpointSet* ImageManager::latest_sealed(
    const std::string& label) const {
  const CheckpointSet* best = nullptr;
  for (const auto& [id, s] : sets_) {
    if (s.sealed && s.label == label) best = &s;  // map is id-ordered
  }
  return best;
}

std::vector<const CheckpointSet*> ImageManager::sets_with_label(
    const std::string& label) const {
  std::vector<const CheckpointSet*> out;
  for (const auto& [id, s] : sets_) {
    if (s.label == label) out.push_back(&s);  // map is id-ordered
  }
  return out;
}

void ImageManager::mark_damaged(CheckpointSet& s) {
  if (s.damaged) return;
  s.damaged = true;
  telemetry::count(metrics_, "storage.images.sets_damaged");
}

void ImageManager::read_member_from(CheckpointSetId set,
                                    std::uint64_t member, std::size_t copy,
                                    std::function<void(bool)> on_done) {
  auto sit = sets_.find(set);
  if (sit == sets_.end()) {
    if (on_done) on_done(false);
    return;
  }
  const MemberImage* img = nullptr;
  for (const auto& m : sit->second.members) {
    if (m.member == member) {
      img = &m;
      break;
    }
  }
  if (img == nullptr) {
    if (on_done) on_done(false);
    return;
  }
  // copy 0 is the primary; copy i is replica i-1. Skip replica slots whose
  // asynchronous copy never landed.
  while (copy > 0 && copy <= img->replicas.size() &&
         img->replicas[copy - 1] == kInvalidObject) {
    ++copy;
  }
  if (copy > img->replicas.size() || copy > replicas_.size()) {
    // Every copy of this member failed verification (or never existed):
    // the set as a whole can no longer restore a consistent cut.
    mark_damaged(sit->second);
    if (on_done) on_done(false);
    return;
  }
  SharedStore* src = copy == 0 ? store_ : replicas_[copy - 1];
  const ObjectId obj = copy == 0 ? img->object : img->replicas[copy - 1];
  if (copy > 0) telemetry::count(metrics_, "storage.replica.failovers");
  src->read_object(obj, [this, set, member, copy,
                         cb = std::move(on_done)](ReadError err) mutable {
    if (err == ReadError::kOk) {
      if (cb) cb(true);
      return;
    }
    read_member_from(set, member, copy + 1, std::move(cb));
  });
}

void ImageManager::read_member(CheckpointSetId set, std::uint64_t member,
                               std::function<void(bool)> on_done) {
  read_member_from(set, member, 0, std::move(on_done));
}

void ImageManager::stage_set(CheckpointSetId set,
                             std::function<void(bool)> on_staged) {
  const CheckpointSet* s = find_set(set);
  if (s == nullptr || !s->sealed) {
    if (on_staged) on_staged(false);
    return;
  }
  auto remaining = std::make_shared<std::size_t>(s->members.size());
  auto all_ok = std::make_shared<bool>(true);
  if (*remaining == 0) {
    if (on_staged) on_staged(true);
    return;
  }
  // Copy the member list: read_member failure paths may mutate the set.
  std::vector<std::uint64_t> members;
  members.reserve(s->members.size());
  for (const auto& m : s->members) members.push_back(m.member);
  for (const std::uint64_t m : members) {
    telemetry::count(metrics_, "storage.images.stage_reads");
    read_member(set, m, [remaining, all_ok, on_staged](bool ok) {
      if (!ok) *all_ok = false;
      if (--*remaining == 0 && on_staged) {
        on_staged(*all_ok);
      }
    });
  }
}

std::uint64_t ImageManager::prune(const std::string& label, std::size_t keep,
                                  std::uint64_t epoch) {
  if (fenced(epoch)) return 0;
  admitted("prune", epoch);
  std::vector<CheckpointSetId> sealed;
  for (const auto& [id, s] : sets_) {
    if (s.sealed && s.label == label) sealed.push_back(id);
  }
  if (sealed.size() <= keep) return 0;
  std::uint64_t reclaimed = 0;
  const std::size_t drop = sealed.size() - keep;
  for (std::size_t i = 0; i < drop; ++i) {
    auto it = sets_.find(sealed[i]);
    for (const auto& m : it->second.members) {
      reclaimed += m.bytes;
      drop_member_objects(m);
    }
    sets_.erase(it);
  }
  telemetry::count(metrics_, "storage.images.sets_pruned", drop);
  telemetry::count(metrics_, "storage.images.pruned_bytes", reclaimed);
  return reclaimed;
}

}  // namespace dvc::storage
