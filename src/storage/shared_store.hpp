#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "storage/bandwidth_pool.hpp"

namespace dvc::storage {

/// Identifier of a stored object (VM image or checkpoint image).
using ObjectId = std::uint64_t;

inline constexpr ObjectId kInvalidObject = 0;

/// Metadata of an object held by the store. `checksum` is the digest the
/// writer declared; `stored_checksum` is the digest of the bytes actually
/// on disk. They differ only after silent corruption, which is exactly
/// what a verified read detects.
struct ObjectInfo {
  ObjectId id = kInvalidObject;
  std::string name;
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;
  std::uint64_t stored_checksum = 0;
  bool torn = false;  ///< a write died mid-stream; the object is partial
  sim::Time created_at = 0;
};

/// Why a verified read failed (kOk = it did not).
enum class ReadError : std::uint8_t {
  kOk,
  kNotFound,          ///< no such object (never written, or removed)
  kTorn,              ///< partial object left by an interrupted write
  kChecksumMismatch,  ///< bytes present but silently corrupted
};

[[nodiscard]] std::string_view to_string(ReadError e) noexcept;

/// Deterministic FNV-1a over the object identity; stands in for a real
/// content digest so integrity checks have something to verify.
[[nodiscard]] std::uint64_t synthetic_checksum(std::uint64_t a,
                                               std::uint64_t b,
                                               std::uint64_t c) noexcept;

/// The shared store (NFS-server stand-in) that holds VM images and
/// checkpoint sets. Reads and writes contend within separate bandwidth
/// pools; every operation pays a fixed per-op overhead (RPC + fsync).
///
/// The paper's §1 notes that single-node VC checkpointing needs "only a
/// reliable storage system ... and an image management capability"; this
/// class plus ImageManager is that substrate — and since real NFS servers
/// are *not* perfectly reliable, the store also models the two classic
/// durability failures: silent corruption (`corrupt_object`) and torn
/// writes (`tear_inflight_writes`). Both are invisible at write time and
/// detected by the digest verification every read performs.
class SharedStore final {
 public:
  struct Config {
    double write_bps = 200e6;  ///< aggregate write bandwidth (bytes/s)
    double read_bps = 400e6;   ///< aggregate read bandwidth (bytes/s)
    sim::Duration op_overhead = 5 * sim::kMillisecond;
  };

  SharedStore(sim::Simulation& sim, Config cfg)
      : sim_(&sim),
        cfg_(cfg),
        writes_(sim, cfg.write_bps),
        reads_(sim, cfg.read_bps) {}

  SharedStore(const SharedStore&) = delete;
  SharedStore& operator=(const SharedStore&) = delete;

  /// Streams `bytes` into a new object. `on_complete` receives the object
  /// id once the data is durable — or once the store *believes* it is: a
  /// torn write (see tear_inflight_writes) also completes "successfully",
  /// because a dying writer cannot tell its fsync never finished. The
  /// damage surfaces at the next verified read.
  void write_object(std::string name, std::uint64_t bytes,
                    std::uint64_t checksum,
                    std::function<void(ObjectId)> on_complete);

  /// Instantaneously installs an object (pre-seeded content such as base OS
  /// images that exist before the simulated experiment begins).
  ObjectId put_object(std::string name, std::uint64_t bytes,
                      std::uint64_t checksum);

  /// Streams an object out and verifies its digest against the one the
  /// writer declared. `on_complete` receives kOk only for an existing,
  /// whole, uncorrupted object.
  void read_object(ObjectId id, std::function<void(ReadError)> on_complete);

  /// Drops an object (instantaneous metadata operation).
  bool remove_object(ObjectId id);

  // ---- fault hooks (used by fault::FaultInjector) ------------------------

  /// Silently flips bits in a stored object: its on-disk digest no longer
  /// matches the declared one, so the next read reports kChecksumMismatch.
  /// Returns false if the object does not exist (or is already torn).
  bool corrupt_object(ObjectId id);

  /// The `n`-th newest object (0 = newest) — what a corruption fault
  /// targets, since freshly written checkpoint images are the objects
  /// whose loss actually matters. kInvalidObject if out of range.
  [[nodiscard]] ObjectId nth_newest_object(std::size_t n) const;

  /// Kills every write currently in flight the way a dying NFS server
  /// does: the partial object is installed (detectably torn) and each
  /// writer's completion callback fires as if the write had succeeded.
  /// Returns the number of writes torn.
  std::size_t tear_inflight_writes();

  [[nodiscard]] std::size_t inflight_writes() const noexcept {
    return inflight_.size();
  }

  // ---- introspection -----------------------------------------------------

  [[nodiscard]] std::optional<ObjectInfo> info(ObjectId id) const;
  [[nodiscard]] std::size_t object_count() const noexcept {
    return objects_.size();
  }
  [[nodiscard]] std::uint64_t bytes_stored() const noexcept {
    return bytes_stored_;
  }
  /// Monotonic total of bytes ever written (survives pruning).
  [[nodiscard]] std::uint64_t bytes_written_total() const noexcept {
    return bytes_written_total_;
  }

  [[nodiscard]] BandwidthPool& write_pool() noexcept { return writes_; }
  [[nodiscard]] BandwidthPool& read_pool() noexcept { return reads_; }

  /// Attaches an optional metrics registry: wires both bandwidth pools
  /// (`<prefix>.write_pool.*` / `<prefix>.read_pool.*`) and records
  /// store-level op counts plus the durable-write latency histogram
  /// `<prefix>.store.write_s`. The default prefix keeps the historical
  /// `storage.*` names; replica stores pass their own prefix so their
  /// counters stay distinguishable.
  void set_metrics(telemetry::MetricsRegistry* m,
                   std::string prefix = "storage");

  /// Observed write completion times (seconds), for bench reporting.
  [[nodiscard]] const sim::SummaryStats& write_time_stats() const noexcept {
    return write_times_;
  }

 private:
  struct InflightWrite {
    std::string name;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0;
    sim::Time started = 0;
    TransferId transfer = kInvalidTransfer;  ///< invalid during op_overhead
    std::function<void(ObjectId)> on_complete;
  };

  void install(ObjectId id, InflightWrite&& w, bool torn);
  void count(const char* metric) const;

  sim::Simulation* sim_;
  Config cfg_;
  BandwidthPool writes_;
  BandwidthPool reads_;
  ObjectId next_id_ = 1;
  std::unordered_map<ObjectId, ObjectInfo> objects_;
  /// Writes between write_object and durability, id-ordered so a tear
  /// kills them deterministically in start order.
  std::map<ObjectId, InflightWrite> inflight_;
  std::uint64_t bytes_stored_ = 0;
  std::uint64_t bytes_written_total_ = 0;
  sim::SummaryStats write_times_{/*keep_samples=*/true};
  telemetry::MetricsRegistry* metrics_ = nullptr;
  std::string metric_prefix_ = "storage";
};

}  // namespace dvc::storage
