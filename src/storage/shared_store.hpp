#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "storage/bandwidth_pool.hpp"

namespace dvc::storage {

/// Identifier of a stored object (VM image or checkpoint image).
using ObjectId = std::uint64_t;

inline constexpr ObjectId kInvalidObject = 0;

/// Metadata of an object held by the store.
struct ObjectInfo {
  ObjectId id = kInvalidObject;
  std::string name;
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;
  sim::Time created_at = 0;
};

/// Deterministic FNV-1a over the object identity; stands in for a real
/// content digest so integrity checks have something to verify.
[[nodiscard]] std::uint64_t synthetic_checksum(std::uint64_t a,
                                               std::uint64_t b,
                                               std::uint64_t c) noexcept;

/// The reliable shared store (NFS-server stand-in) that holds VM images and
/// checkpoint sets. Reads and writes contend within separate bandwidth
/// pools; every operation pays a fixed per-op overhead (RPC + fsync).
///
/// The paper's §1 notes that single-node VC checkpointing needs "only a
/// reliable storage system ... and an image management capability"; this
/// class plus ImageManager is that substrate.
class SharedStore final {
 public:
  struct Config {
    double write_bps = 200e6;  ///< aggregate write bandwidth (bytes/s)
    double read_bps = 400e6;   ///< aggregate read bandwidth (bytes/s)
    sim::Duration op_overhead = 5 * sim::kMillisecond;
  };

  SharedStore(sim::Simulation& sim, Config cfg)
      : sim_(&sim),
        cfg_(cfg),
        writes_(sim, cfg.write_bps),
        reads_(sim, cfg.read_bps) {}

  SharedStore(const SharedStore&) = delete;
  SharedStore& operator=(const SharedStore&) = delete;

  /// Streams `bytes` into a new object. `on_complete` receives the object
  /// id once the data is durable.
  void write_object(std::string name, std::uint64_t bytes,
                    std::uint64_t checksum,
                    std::function<void(ObjectId)> on_complete);

  /// Instantaneously installs an object (pre-seeded content such as base OS
  /// images that exist before the simulated experiment begins).
  ObjectId put_object(std::string name, std::uint64_t bytes,
                      std::uint64_t checksum);

  /// Streams an object out. `on_complete` receives true iff the object
  /// exists and its checksum verifies.
  void read_object(ObjectId id, std::function<void(bool)> on_complete);

  /// Drops an object (instantaneous metadata operation).
  bool remove_object(ObjectId id);

  [[nodiscard]] std::optional<ObjectInfo> info(ObjectId id) const;
  [[nodiscard]] std::size_t object_count() const noexcept {
    return objects_.size();
  }
  [[nodiscard]] std::uint64_t bytes_stored() const noexcept {
    return bytes_stored_;
  }
  /// Monotonic total of bytes ever written (survives pruning).
  [[nodiscard]] std::uint64_t bytes_written_total() const noexcept {
    return bytes_written_total_;
  }

  [[nodiscard]] BandwidthPool& write_pool() noexcept { return writes_; }
  [[nodiscard]] BandwidthPool& read_pool() noexcept { return reads_; }

  /// Attaches an optional metrics registry: wires both bandwidth pools
  /// (`storage.write_pool.*` / `storage.read_pool.*`) and records
  /// store-level op counts plus the durable-write latency histogram
  /// `storage.store.write_s`.
  void set_metrics(telemetry::MetricsRegistry* m);

  /// Observed write completion times (seconds), for bench reporting.
  [[nodiscard]] const sim::SummaryStats& write_time_stats() const noexcept {
    return write_times_;
  }

 private:
  sim::Simulation* sim_;
  Config cfg_;
  BandwidthPool writes_;
  BandwidthPool reads_;
  ObjectId next_id_ = 1;
  std::unordered_map<ObjectId, ObjectInfo> objects_;
  std::uint64_t bytes_stored_ = 0;
  std::uint64_t bytes_written_total_ = 0;
  sim::SummaryStats write_times_{/*keep_samples=*/true};
  telemetry::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace dvc::storage
