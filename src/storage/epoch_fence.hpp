#pragma once

#include <cstdint>

#include "check/hooks.hpp"

namespace dvc::storage {

/// Epoch carried by storage/hypervisor commands issued outside any
/// coordinator regime (library users driving subsystems directly). An
/// unfenced command is always admitted.
inline constexpr std::uint64_t kUnfencedEpoch = 0;

/// Monotonic coordinator-epoch fence (the classic storage-fencing token).
///
/// The live coordinator stamps its current epoch into every state-changing
/// command it issues (checkpoint-set mutations, hypervisor save/restore).
/// After a coordinator crash the rebooted incarnation advances the epoch,
/// so commands still in flight from the dead incarnation — callbacks on
/// the simulator queue, retries scheduled before the crash — arrive with a
/// stale epoch and are rejected at the storage/hypervisor layer instead of
/// double-applying. This is what makes split-brain harmless: a deposed
/// coordinator can keep issuing commands, but none of them land.
class EpochFence final {
 public:
  [[nodiscard]] std::uint64_t current() const noexcept { return epoch_; }

  /// Deposes the current epoch; returns the new one.
  std::uint64_t advance() noexcept {
    ++epoch_;
    if (check_ != nullptr) check_->on_epoch_advance(epoch_);
    return epoch_;
  }

  /// Whether a command stamped with `epoch` may execute.
  [[nodiscard]] bool admits(std::uint64_t epoch) const noexcept {
    return epoch == kUnfencedEpoch || epoch == epoch_;
  }

  /// Attaches an optional invariant checker notified on every advance
  /// (null to detach).
  void set_check(check::Checker* c) noexcept { check_ = c; }

 private:
  std::uint64_t epoch_ = 1;
  check::Checker* check_ = nullptr;
};

}  // namespace dvc::storage
