#include "storage/bandwidth_pool.hpp"

#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace dvc::storage {

void BandwidthPool::set_metrics(telemetry::MetricsRegistry* m,
                                std::string_view prefix) {
  if (m == nullptr) {
    bytes_c_ = transfers_c_ = nullptr;
    transfer_h_ = wait_h_ = nullptr;
    active_g_ = nullptr;
    return;
  }
  const std::string p(prefix);
  bytes_c_ = &m->counter(p + ".bytes");
  transfers_c_ = &m->counter(p + ".transfers");
  transfer_h_ = &m->histogram(p + ".transfer_s");
  wait_h_ = &m->histogram(p + ".contention_wait_s");
  active_g_ = &m->gauge(p + ".active");
}

TransferId BandwidthPool::start(std::uint64_t bytes,
                                std::function<void()> on_complete) {
  settle();
  const TransferId id = next_id_++;
  transfers_.emplace(id, Transfer{static_cast<double>(bytes),
                                  std::move(on_complete), bytes,
                                  sim_->now()});
  if (bytes_c_ != nullptr) {
    bytes_c_->add(bytes);
    active_g_->set(static_cast<double>(transfers_.size()));
  }
  reschedule();
  return id;
}

bool BandwidthPool::cancel(TransferId id) {
  settle();
  const bool erased = transfers_.erase(id) > 0;
  if (erased) {
    if (active_g_ != nullptr) {
      active_g_->set(static_cast<double>(transfers_.size()));
    }
    reschedule();
  }
  return erased;
}

void BandwidthPool::set_capacity(double bytes_per_second) {
  if (bytes_per_second <= 0.0 || bytes_per_second == bps_) return;
  settle();  // bank progress at the old rate first
  bps_ = bytes_per_second;
  reschedule();
}

void BandwidthPool::settle() {
  const sim::Time now = sim_->now();
  if (!transfers_.empty() && now > last_settle_) {
    const double progress = sim::to_seconds(now - last_settle_) * bps_ /
                            static_cast<double>(transfers_.size());
    for (auto& [id, t] : transfers_) {
      t.remaining_bytes -= progress;
      if (t.remaining_bytes < 0.0) t.remaining_bytes = 0.0;
    }
  }
  last_settle_ = now;
}

void BandwidthPool::reschedule() {
  if (pending_event_ != sim::kInvalidEvent) {
    sim_->cancel(pending_event_);
    pending_event_ = sim::kInvalidEvent;
  }
  if (transfers_.empty()) return;

  double min_remaining = std::numeric_limits<double>::max();
  for (const auto& [id, t] : transfers_) {
    min_remaining = std::min(min_remaining, t.remaining_bytes);
  }
  const double per_transfer_bps =
      bps_ / static_cast<double>(transfers_.size());
  const auto dt = static_cast<sim::Duration>(
      std::ceil(min_remaining / per_transfer_bps * sim::kSecond));

  pending_event_ = sim_->schedule_after(dt, [this] {
    pending_event_ = sim::kInvalidEvent;
    settle();
    // Collect and fire every transfer that has drained. A completion
    // callback may start new transfers; firing after mutation keeps the
    // container stable.
    std::vector<std::function<void()>> done;
    for (auto it = transfers_.begin(); it != transfers_.end();) {
      if (it->second.remaining_bytes <= 0.5) {  // sub-byte fluid residue
        if (transfers_c_ != nullptr) {
          transfers_c_->add();
          const sim::Duration actual = sim_->now() - it->second.started;
          transfer_h_->observe(sim::to_seconds(actual));
          const sim::Duration alone = uncontended_time(it->second.bytes);
          wait_h_->observe(sim::to_seconds(
              actual > alone ? actual - alone : sim::Duration{0}));
        }
        done.push_back(std::move(it->second.on_complete));
        it = transfers_.erase(it);
        ++completed_;
      } else {
        ++it;
      }
    }
    if (active_g_ != nullptr) {
      active_g_->set(static_cast<double>(transfers_.size()));
    }
    reschedule();
    for (auto& fn : done) {
      if (fn) fn();
    }
  });
}

}  // namespace dvc::storage
