#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/shared_store.hpp"

namespace dvc::storage {

/// Identifier of a checkpoint set (one coordinated snapshot of a whole
/// virtual cluster).
using CheckpointSetId = std::uint64_t;

inline constexpr CheckpointSetId kInvalidCheckpointSet = 0;

/// One member image inside a checkpoint set.
struct MemberImage {
  std::uint64_t member = 0;          ///< index of the VM within its VC
  ObjectId object = kInvalidObject;  ///< backing object in the store
  std::uint64_t bytes = 0;
};

/// A coordinated snapshot of a virtual cluster: complete only when every
/// member image is durable. Restart must only ever use complete sets —
/// a partial set is an inconsistent cut by construction.
struct CheckpointSet {
  CheckpointSetId id = kInvalidCheckpointSet;
  std::string label;
  std::size_t expected_members = 0;
  std::vector<MemberImage> members;
  sim::Time started_at = 0;
  sim::Time sealed_at = 0;
  bool sealed = false;
  bool aborted = false;

  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    std::uint64_t b = 0;
    for (const auto& m : members) b += m.bytes;
    return b;
  }
};

/// Tracks base OS images and checkpoint sets, and stages them to nodes.
/// This is the "image management capability to track the correct staging
/// and restart of images" from §1 of the paper.
class ImageManager final {
 public:
  explicit ImageManager(SharedStore& store) : store_(&store) {}

  ImageManager(const ImageManager&) = delete;
  ImageManager& operator=(const ImageManager&) = delete;

  /// Registers a named base OS image of the given size (instantaneous:
  /// base images are pre-seeded before experiments start).
  ObjectId register_base_image(std::string name, std::uint64_t bytes);

  [[nodiscard]] std::optional<ObjectId> find_base_image(
      const std::string& name) const;

  /// Opens a new checkpoint set expecting `members` images.
  CheckpointSetId open_set(std::string label, std::size_t members);

  /// Streams one member's image into the store; on durability the image is
  /// recorded in the set and, if it was the last one, the set seals.
  /// `on_member_done` fires when this member's image is durable.
  void add_member(CheckpointSetId set, std::uint64_t member,
                  std::uint64_t bytes,
                  std::function<void()> on_member_done = {});

  /// Marks a set as aborted (e.g. a save failed mid-flight). Aborted sets
  /// never seal and their images are garbage-collected.
  void abort_set(CheckpointSetId set);

  /// Permanently removes a set, sealed or not, reclaiming its bytes.
  /// Unlike abort_set this also takes sealed sets — used to quarantine a
  /// checkpoint whose application image is known-bad (keeping it would let
  /// prune() push the last good recovery point out of the keep window).
  std::uint64_t discard_set(CheckpointSetId set);

  /// Registers a callback fired when the set seals (all members durable).
  void on_sealed(CheckpointSetId set, std::function<void()> fn);

  [[nodiscard]] const CheckpointSet* find_set(CheckpointSetId set) const;

  /// Latest sealed set with the given label, if any — what restart uses.
  [[nodiscard]] const CheckpointSet* latest_sealed(
      const std::string& label) const;

  /// Stages every member image of a sealed set toward compute nodes
  /// (a contended read per member); `on_staged(ok)` fires when all reads
  /// finish, ok = all checksums verified.
  void stage_set(CheckpointSetId set, std::function<void(bool)> on_staged);

  /// Deletes all sealed sets with this label except the most recent
  /// `keep`. Returns bytes reclaimed.
  std::uint64_t prune(const std::string& label, std::size_t keep);

  [[nodiscard]] SharedStore& store() noexcept { return *store_; }

  /// Attaches an optional metrics registry for set lifecycle counters
  /// (`storage.images.*`: sets opened/sealed/aborted, members added,
  /// base-image lookup hits/misses, staging reads, pruned bytes).
  void set_metrics(telemetry::MetricsRegistry* m) noexcept { metrics_ = m; }

 private:
  void maybe_seal(CheckpointSet& s);

  telemetry::MetricsRegistry* metrics_ = nullptr;
  SharedStore* store_;
  std::unordered_map<std::string, ObjectId> base_images_;
  CheckpointSetId next_set_ = 1;
  std::map<CheckpointSetId, CheckpointSet> sets_;
  std::unordered_map<CheckpointSetId, std::vector<std::function<void()>>>
      seal_callbacks_;
};

}  // namespace dvc::storage
