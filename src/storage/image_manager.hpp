#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/hooks.hpp"
#include "storage/epoch_fence.hpp"
#include "storage/shared_store.hpp"

namespace dvc::storage {

/// Identifier of a checkpoint set (one coordinated snapshot of a whole
/// virtual cluster).
using CheckpointSetId = std::uint64_t;

inline constexpr CheckpointSetId kInvalidCheckpointSet = 0;

/// One member image inside a checkpoint set. `replicas[i]` is the copy on
/// replica store i (kInvalidObject while that copy is still streaming or
/// was never made).
struct MemberImage {
  std::uint64_t member = 0;          ///< index of the VM within its VC
  ObjectId object = kInvalidObject;  ///< backing object in the primary store
  std::uint64_t bytes = 0;
  std::vector<ObjectId> replicas;
};

/// A coordinated snapshot of a virtual cluster: complete only when every
/// member image is durable. Restart must only ever use complete sets —
/// a partial set is an inconsistent cut by construction.
struct CheckpointSet {
  CheckpointSetId id = kInvalidCheckpointSet;
  std::string label;
  std::size_t expected_members = 0;
  std::vector<MemberImage> members;
  sim::Time started_at = 0;
  sim::Time sealed_at = 0;
  bool sealed = false;
  bool aborted = false;
  /// A member image failed verification on every replica that holds it:
  /// this set can never restore a consistent cut again. Recovery must
  /// fall back to an older generation.
  bool damaged = false;

  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    std::uint64_t b = 0;
    for (const auto& m : members) b += m.bytes;
    return b;
  }
};

/// Tracks base OS images and checkpoint sets, and stages them to nodes.
/// This is the "image management capability to track the correct staging
/// and restart of images" from §1 of the paper.
///
/// Durability: each member image lands on the primary store and is then
/// copied asynchronously to every registered replica store (replication
/// consumes replica write bandwidth but never delays sealing — the seal
/// still means "the primary copy is durable"). Verified reads go through
/// read_member, which fails over primary → replicas in order and marks
/// the set damaged only when every copy is torn, corrupted, or missing.
class ImageManager final {
 public:
  explicit ImageManager(SharedStore& store) : store_(&store) {}

  ImageManager(const ImageManager&) = delete;
  ImageManager& operator=(const ImageManager&) = delete;

  /// Registers an additional store that receives an asynchronous copy of
  /// every member image written from now on. Call before checkpointing
  /// starts; replicas of already-written images are not backfilled.
  void add_replica(SharedStore& store) { replicas_.push_back(&store); }

  [[nodiscard]] std::size_t replica_count() const noexcept {
    return replicas_.size();
  }

  /// Registers a named base OS image of the given size (instantaneous:
  /// base images are pre-seeded before experiments start).
  ObjectId register_base_image(std::string name, std::uint64_t bytes);

  [[nodiscard]] std::optional<ObjectId> find_base_image(
      const std::string& name) const;

  /// Opens a new checkpoint set expecting `members` images. A fenced
  /// (stale-epoch) open returns kInvalidCheckpointSet.
  CheckpointSetId open_set(std::string label, std::size_t members,
                           std::uint64_t epoch = kUnfencedEpoch);

  /// Streams one member's image into the store; on durability the image is
  /// recorded in the set and, if it was the last one, the set seals.
  /// `on_member_done` fires when this member's image is durable. A fenced
  /// write behaves like a write to a missing set: nothing happens and the
  /// callback never fires.
  void add_member(CheckpointSetId set, std::uint64_t member,
                  std::uint64_t bytes,
                  std::function<void()> on_member_done = {},
                  std::uint64_t epoch = kUnfencedEpoch);

  /// Marks a set as aborted (e.g. a save failed mid-flight). Aborted sets
  /// never seal and their images are garbage-collected.
  void abort_set(CheckpointSetId set, std::uint64_t epoch = kUnfencedEpoch);

  /// Permanently removes a set, sealed or not, reclaiming its bytes.
  /// Unlike abort_set this also takes sealed sets — used to quarantine a
  /// checkpoint whose application image is known-bad (keeping it would let
  /// prune() push the last good recovery point out of the keep window).
  std::uint64_t discard_set(CheckpointSetId set,
                            std::uint64_t epoch = kUnfencedEpoch);

  /// Registers a callback fired when the set seals (all members durable).
  void on_sealed(CheckpointSetId set, std::function<void()> fn);

  [[nodiscard]] const CheckpointSet* find_set(CheckpointSetId set) const;

  /// Latest sealed set with the given label, if any — what restart uses.
  [[nodiscard]] const CheckpointSet* latest_sealed(
      const std::string& label) const;

  /// Every live set filed under this label, oldest first — the ground
  /// truth a rebooted coordinator reconciles its journal against.
  [[nodiscard]] std::vector<const CheckpointSet*> sets_with_label(
      const std::string& label) const;

  /// Verified read of one member image with replica failover: tries the
  /// primary copy, then each replica in registration order, and reports
  /// true at the first copy whose digest verifies. Reports false — and
  /// marks the whole set damaged — only when every copy failed.
  void read_member(CheckpointSetId set, std::uint64_t member,
                   std::function<void(bool)> on_done);

  /// Stages every member image of a sealed set toward compute nodes
  /// (a contended, verified read per member, with replica failover);
  /// `on_staged(ok)` fires when all reads finish, ok = every member had
  /// at least one verifiable copy.
  void stage_set(CheckpointSetId set, std::function<void(bool)> on_staged);

  /// Deletes all sealed sets with this label except the most recent
  /// `keep`. Returns bytes reclaimed.
  std::uint64_t prune(const std::string& label, std::size_t keep,
                      std::uint64_t epoch = kUnfencedEpoch);

  /// Attaches the coordinator-epoch fence (null = unfenced). Mutations
  /// stamped with a stale epoch are rejected and counted in
  /// `storage.images.fenced_writes`.
  void set_fence(const EpochFence* fence) noexcept { fence_ = fence; }

  /// Attaches an optional invariant checker (null to detach), notified of
  /// every *admitted* state-changing command with its issuing epoch — the
  /// checker independently re-verifies the fence discipline, so a detached
  /// or bypassed fence surfaces as a violation instead of a silent write.
  void set_check(check::Checker* c) noexcept { check_ = c; }

  [[nodiscard]] SharedStore& store() noexcept { return *store_; }
  [[nodiscard]] SharedStore& replica(std::size_t i) noexcept {
    return *replicas_.at(i);
  }

  /// Attaches an optional metrics registry for set lifecycle counters
  /// (`storage.images.*`: sets opened/sealed/aborted/damaged, members
  /// added, base-image lookup hits/misses, staging reads, pruned bytes)
  /// and replication counters (`storage.replica.*`).
  void set_metrics(telemetry::MetricsRegistry* m) noexcept { metrics_ = m; }

 private:
  /// True (and counted) when a mutation stamped with `epoch` must be
  /// rejected because a newer coordinator incarnation holds the fence.
  [[nodiscard]] bool fenced(std::uint64_t epoch) {
    if (fence_ == nullptr || fence_->admits(epoch)) return false;
    telemetry::count(metrics_, "storage.images.fenced_writes");
    return true;
  }

  void admitted(std::string_view op, std::uint64_t epoch) {
    if (check_ != nullptr) check_->on_admitted_mutation(op, epoch);
  }

  void maybe_seal(CheckpointSet& s);
  void replicate_member(CheckpointSetId set, std::uint64_t member,
                        std::uint64_t bytes);
  void drop_member_objects(const MemberImage& m);
  void mark_damaged(CheckpointSet& s);
  void read_member_from(CheckpointSetId set, std::uint64_t member,
                        std::size_t copy, std::function<void(bool)> on_done);

  telemetry::MetricsRegistry* metrics_ = nullptr;
  const EpochFence* fence_ = nullptr;
  check::Checker* check_ = nullptr;
  SharedStore* store_;
  std::vector<SharedStore*> replicas_;
  std::unordered_map<std::string, ObjectId> base_images_;
  CheckpointSetId next_set_ = 1;
  std::map<CheckpointSetId, CheckpointSet> sets_;
  std::unordered_map<CheckpointSetId, std::vector<std::function<void()>>>
      seal_callbacks_;
};

}  // namespace dvc::storage
