#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace dvc::telemetry {

namespace {

/// Deterministic shortest-ish double rendering ("%.12g" is locale-free
/// for the C locale and stable for identical bit patterns).
std::string fmt_double(double v) {
  if (std::isnan(v)) return "null";
  if (std::isinf(v)) return v > 0 ? "1e9999" : "-1e9999";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// Sim-time nanoseconds to chrome-trace microseconds.
std::string fmt_us(sim::Time t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(t) / 1000.0);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(Options opt)
    : opt_(opt),
      counts_(static_cast<std::size_t>(opt.buckets) + 1, 0),
      summary_(/*keep_samples=*/false) {}

double Histogram::bucket_bound(std::size_t i) const {
  return opt_.first_bound *
         std::pow(opt_.growth, static_cast<double>(i));
}

void Histogram::observe(double v) {
  summary_.add(v);
  std::size_t idx;
  if (v <= opt_.first_bound) {
    idx = 0;
  } else {
    // Smallest i with first_bound * growth^i >= v.
    const double steps =
        std::log(v / opt_.first_bound) / std::log(opt_.growth);
    idx = static_cast<std::size_t>(std::ceil(steps - 1e-9));
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // overflow bucket
  }
  ++counts_[idx];
}

double Histogram::percentile(double p) const {
  const std::uint64_t n = summary_.count();
  if (n == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank && counts_[i] > 0) {
      // Clamp the reconstructed bound by the exact extremes.
      const double hi = i + 1 == counts_.size()
                            ? summary_.max()
                            : std::min(bucket_bound(i), summary_.max());
      return std::max(summary_.min(), std::min(hi, summary_.max()));
    }
  }
  return summary_.max();
}

// ---------------------------------------------------------------------------
// MetricsRegistry — instruments

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      Histogram::Options opt) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram(opt))
      .first->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const Counter* c = find_counter(name);
  return c == nullptr ? 0 : c->value();
}

// ---------------------------------------------------------------------------
// MetricsRegistry — timeline

MetricsRegistry::SpanId MetricsRegistry::begin_span(sim::Time at,
                                                    std::string_view track,
                                                    std::string_view name,
                                                    std::string args_json) {
  Span s;
  s.track = std::string(track);
  s.name = std::string(name);
  s.args = std::move(args_json);
  s.begin = at;
  spans_.push_back(std::move(s));
  return next_span_++;  // ids are 1-based indices into spans_
}

void MetricsRegistry::end_span(SpanId id, sim::Time at) {
  if (id == kInvalidSpan || id > spans_.size()) return;
  Span& s = spans_[id - 1];
  if (!s.open) return;
  s.open = false;
  s.end = at < s.begin ? s.begin : at;
}

void MetricsRegistry::instant(sim::Time at, std::string_view track,
                              std::string_view name) {
  instants_.push_back(Instant{std::string(track), std::string(name), at});
}

// ---------------------------------------------------------------------------
// Export

void MetricsRegistry::write_metrics_json(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << c.value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": {\"value\": " << fmt_double(g.value())
        << ", \"max\": " << fmt_double(g.max()) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const sim::SummaryStats& s = h.summary();
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": {\"count\": " << s.count()
        << ", \"sum\": " << fmt_double(s.sum())
        << ", \"mean\": " << fmt_double(s.mean())
        << ", \"stddev\": " << fmt_double(s.stddev())
        << ", \"min\": " << fmt_double(s.min())
        << ", \"max\": " << fmt_double(s.max())
        << ", \"p50\": " << fmt_double(h.percentile(50))
        << ", \"p99\": " << fmt_double(h.percentile(99))
        << ", \"buckets\": [";
    bool bfirst = true;
    const auto& counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] == 0) continue;
      out << (bfirst ? "" : ", ") << "{\"le\": "
          << (i + 1 == counts.size() ? "\"inf\""
                                     : fmt_double(h.bucket_bound(i)))
          << ", \"count\": " << counts[i] << "}";
      bfirst = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"spans\": " << spans_.size()
      << ",\n  \"instants\": " << instants_.size() << "\n}\n";
}

void MetricsRegistry::write_chrome_trace(std::ostream& out) const {
  // Track name -> tid, in first-appearance order (deterministic).
  std::map<std::string, std::uint32_t> tids;
  std::vector<const std::string*> track_order;
  const auto tid_of = [&](const std::string& track) {
    const auto it = tids.find(track);
    if (it != tids.end()) return it->second;
    const auto tid = static_cast<std::uint32_t>(tids.size() + 1);
    const auto ins = tids.emplace(track, tid).first;
    track_order.push_back(&ins->first);
    return tid;
  };
  for (const Span& s : spans_) tid_of(s.track);
  for (const Instant& i : instants_) tid_of(i.track);

  out << "[\n";
  out << "{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
         "\"args\": {\"name\": \"dvcsim\"}}";
  for (const std::string* track : track_order) {
    out << ",\n{\"ph\": \"M\", \"pid\": 1, \"tid\": " << tids.at(*track)
        << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
        << json_escape(*track) << "\"}}";
  }
  for (const Span& s : spans_) {
    out << ",\n{\"ph\": \"" << (s.open ? 'B' : 'X')
        << "\", \"pid\": 1, \"tid\": " << tids.at(s.track) << ", \"ts\": "
        << fmt_us(s.begin);
    if (!s.open) out << ", \"dur\": " << fmt_us(s.end - s.begin);
    out << ", \"name\": \"" << json_escape(s.name) << "\"";
    if (!s.args.empty()) out << ", \"args\": " << s.args;
    out << "}";
  }
  for (const Instant& i : instants_) {
    out << ",\n{\"ph\": \"i\", \"pid\": 1, \"tid\": " << tids.at(i.track)
        << ", \"ts\": " << fmt_us(i.at) << ", \"s\": \"t\", \"name\": \""
        << json_escape(i.name) << "\"}";
  }
  out << "\n]\n";
}

}  // namespace dvc::telemetry
