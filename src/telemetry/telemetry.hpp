#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace dvc::telemetry {

/// Monotonically increasing event count (saves completed, retransmissions,
/// cache hits). Counters only ever go up.
class Counter final {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written level of some quantity (queue depth, active transfers).
/// Tracks the high-water mark alongside the current value.
class Gauge final {
 public:
  void set(double v) noexcept {
    value_ = v;
    if (v > max_) max_ = v;
  }
  void add(double d) noexcept { set(value_ + d); }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
};

/// Distribution of observed values: fixed log-scale buckets (geometric
/// bucket bounds, so one layout covers microseconds through hours) plus a
/// Welford summary (sim::SummaryStats) for exact moments. Memory is O(1)
/// per instrument regardless of observation count.
class Histogram final {
 public:
  struct Options {
    double first_bound = 1e-6;  ///< upper bound of the first finite bucket
    double growth = 2.0;        ///< geometric bound ratio
    int buckets = 64;           ///< finite buckets (+1 implicit overflow)
  };

  Histogram() : Histogram(Options{}) {}
  explicit Histogram(Options opt);

  void observe(double v);

  [[nodiscard]] const sim::SummaryStats& summary() const noexcept {
    return summary_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return summary_.count();
  }
  /// Approximate quantile in [0, 100] reconstructed from the bucket counts
  /// (exact min/max from the summary clamp the tails).
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] const Options& options() const noexcept { return opt_; }
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts()
      const noexcept {
    return counts_;
  }
  /// Upper bound of bucket `i` (the last bucket is unbounded).
  [[nodiscard]] double bucket_bound(std::size_t i) const;

 private:
  Options opt_;
  std::vector<std::uint64_t> counts_;  ///< opt_.buckets finite + 1 overflow
  sim::SummaryStats summary_;
};

/// One completed (or still-open) span on a named track of the timeline.
struct Span {
  std::string track;  ///< e.g. "vm/node3", "lsc", "dvc"
  std::string name;   ///< e.g. "save", "round", "recover"
  std::string args;   ///< optional pre-rendered JSON object ("" = none)
  sim::Time begin = 0;
  sim::Time end = 0;
  bool open = true;
};

/// A point event on a track (scheduler decision, timeout hit, retry).
struct Instant {
  std::string track;
  std::string name;
  sim::Time at = 0;
};

/// Owner of every named instrument plus the sim-time span timeline.
///
/// Instrument names follow `subsystem.object.metric`
/// (e.g. `vm.hypervisor.saves`, `net.endpoint.retransmissions`,
/// `storage.write_pool.wait_s`). Instruments are created on first use and
/// live for the registry's lifetime; all lookups are by full name.
///
/// Components hold a `MetricsRegistry*` that may be null — telemetry is
/// strictly optional, exactly like sim::TraceLog. The free helpers below
/// (count / observe / gauge_set / begin_span / ...) are null-safe so
/// instrumented code needs no branches.
///
/// Determinism: instruments are stored name-ordered and spans in creation
/// order, and every value derives from simulated time or simulated events,
/// so two same-seed runs export byte-identical JSON.
class MetricsRegistry final {
 public:
  using SpanId = std::uint64_t;
  static constexpr SpanId kInvalidSpan = 0;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     Histogram::Options opt = Histogram::Options{});

  /// Read-only lookups: null if the instrument was never touched.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  /// Convenience for tests/benches: counter value or 0 if absent.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  // ---- timeline ---------------------------------------------------------

  /// Opens a span on `track` at sim-time `at`. Tracks are created on first
  /// use and become the rows of the exported Chrome trace.
  SpanId begin_span(sim::Time at, std::string_view track,
                    std::string_view name, std::string args_json = {});
  /// Closes a span. Closing kInvalidSpan or an unknown id is a no-op.
  void end_span(SpanId id, sim::Time at);
  /// Records a zero-duration point event.
  void instant(sim::Time at, std::string_view track, std::string_view name);

  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const std::vector<Instant>& instants() const noexcept {
    return instants_;
  }

  // ---- export -----------------------------------------------------------

  /// Deterministic JSON dump of every instrument (counters, gauges,
  /// histograms with summary + non-empty buckets), name-ordered.
  void write_metrics_json(std::ostream& out) const;

  /// Chrome trace_event JSON (the "JSON array format"): complete "X"
  /// events for spans, "i" instants, and "M" thread-name metadata mapping
  /// each track to a tid. Loadable in chrome://tracing and Perfetto.
  /// Timestamps are sim-time microseconds.
  void write_chrome_trace(std::ostream& out) const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
  SpanId next_span_ = 1;
};

// ---- null-safe helpers (mirror sim::trace) --------------------------------

inline void count(MetricsRegistry* m, std::string_view name,
                  std::uint64_t n = 1) {
  if (m != nullptr) m->counter(name).add(n);
}

inline void observe(MetricsRegistry* m, std::string_view name, double v) {
  if (m != nullptr) m->histogram(name).observe(v);
}

inline void gauge_set(MetricsRegistry* m, std::string_view name, double v) {
  if (m != nullptr) m->gauge(name).set(v);
}

inline void gauge_add(MetricsRegistry* m, std::string_view name, double d) {
  if (m != nullptr) m->gauge(name).add(d);
}

inline MetricsRegistry::SpanId begin_span(MetricsRegistry* m, sim::Time at,
                                          std::string_view track,
                                          std::string_view name,
                                          std::string args_json = {}) {
  return m == nullptr ? MetricsRegistry::kInvalidSpan
                      : m->begin_span(at, track, name, std::move(args_json));
}

inline void end_span(MetricsRegistry* m, MetricsRegistry::SpanId id,
                     sim::Time at) {
  if (m != nullptr) m->end_span(id, at);
}

inline void instant(MetricsRegistry* m, sim::Time at, std::string_view track,
                    std::string_view name) {
  if (m != nullptr) m->instant(at, track, name);
}

/// Sim-time stopwatch over an operation that may span many simulation
/// events: opens at construction, closes at destruction or an explicit
/// end(). The elapsed *simulated* time lands in `histogram_name`
/// (seconds) and, when `track` is non-empty, as a timeline span. Keep the
/// timer alive across the async callback chain (e.g. in a shared_ptr
/// capture) and the freeze-to-durable duration falls out for free.
class ScopedTimer final {
 public:
  ScopedTimer(MetricsRegistry* m, const sim::Simulation& sim,
              std::string_view histogram_name, std::string_view track = {},
              std::string_view span_name = {})
      : m_(m), sim_(&sim), begin_(sim.now()), name_(histogram_name) {
    if (m_ != nullptr && !track.empty()) {
      span_ = m_->begin_span(begin_, track, span_name);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { end(); }

  /// Ends the span now (idempotent; the destructor then does nothing).
  void end() {
    if (done_) return;
    done_ = true;
    if (m_ == nullptr) return;
    m_->histogram(name_).observe(sim::to_seconds(sim_->now() - begin_));
    m_->end_span(span_, sim_->now());
  }

 private:
  MetricsRegistry* m_;
  const sim::Simulation* sim_;
  sim::Time begin_;
  std::string name_;
  MetricsRegistry::SpanId span_ = MetricsRegistry::kInvalidSpan;
  bool done_ = false;
};

}  // namespace dvc::telemetry
