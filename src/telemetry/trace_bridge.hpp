#pragma once

#include <string>

#include "sim/trace.hpp"
#include "telemetry/telemetry.hpp"

namespace dvc::telemetry {

/// TraceLog → telemetry bridge: every kWarn / kError trace event also
/// increments a per-component counter (`trace.warn.<component>` /
/// `trace.error.<component>`), so operational anomalies are countable
/// without scanning the ring buffer. The registry must outlive the log's
/// emitting lifetime (both usually sit side by side in a MachineRoom).
inline void bridge_trace_errors(sim::TraceLog& log, MetricsRegistry& m) {
  log.subscribe([&m](const sim::TraceEvent& e) {
    if (e.level == sim::TraceLevel::kWarn) {
      m.counter("trace.warn." + e.component).add();
    } else if (e.level == sim::TraceLevel::kError) {
      m.counter("trace.error." + e.component).add();
    }
  });
}

}  // namespace dvc::telemetry
