#include "check/invariants.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace dvc::check {

Invariants::Invariants(Wiring w)
    : w_(w),
      epoch_seen_(w.fence != nullptr ? w.fence->current()
                                     : storage::kUnfencedEpoch) {}

void Invariants::attach() {
  if (w_.dvc != nullptr) w_.dvc->set_check(this);
  if (w_.images != nullptr) w_.images->set_check(this);
  if (w_.fence != nullptr) w_.fence->set_check(this);
}

void Invariants::detach() {
  if (w_.dvc != nullptr) w_.dvc->set_check(nullptr);
  if (w_.images != nullptr) w_.images->set_check(nullptr);
  if (w_.fence != nullptr) w_.fence->set_check(nullptr);
}

void Invariants::violate(std::string invariant, std::string detail,
                         Boundary b) {
  telemetry::count(w_.metrics, "check.violations");
  telemetry::count(w_.metrics, "check.violation." + invariant);
  violations_.push_back(
      Violation{std::move(invariant), std::move(detail), b,
                w_.sim != nullptr ? w_.sim->now() : 0});
}

// ---- hook entry points ------------------------------------------------------

void Invariants::on_vc_boundary(Boundary boundary, std::uint64_t vc) {
  if (boundary == Boundary::kRoundSeal && w_.dvc != nullptr) {
    // Watermark the freshly sealed recovery point: set ids allocate
    // monotonically, so a seal below the previous one means the control
    // plane adopted a stale set as its newest recovery point.
    for (const core::VirtualCluster* v : w_.dvc->live_vcs()) {
      if (v->id() != vc) continue;
      const storage::CheckpointSetId set = v->last_checkpoint().set;
      auto [it, fresh] = seal_watermark_.emplace(vc, set);
      if (!fresh) {
        if (set <= it->second) {
          violate("generation-monotonicity",
                  "vc#" + std::to_string(vc) + " sealed set#" +
                      std::to_string(set) + " at or below watermark set#" +
                      std::to_string(it->second),
                  boundary);
        }
        it->second = set;
      }
      if (v->generations().empty() ||
          v->generations().back().checkpoint.set != set) {
        violate("generation-monotonicity",
                "vc#" + std::to_string(vc) +
                    " newest generation disagrees with last_checkpoint "
                    "(set#" + std::to_string(set) + ")",
                boundary);
      }
    }
  }
  sweep(boundary);
}

void Invariants::on_admitted_mutation(std::string_view op,
                                      std::uint64_t epoch) {
  // Independently re-verify the fence discipline: an *admitted* mutation
  // stamped with anything but the unfenced epoch or the epoch the checker
  // itself has watched the fence reach is a deposed-incarnation write that
  // slipped the fence (or a forged future epoch).
  if (epoch == storage::kUnfencedEpoch) return;
  const std::uint64_t current =
      w_.fence != nullptr ? w_.fence->current() : epoch_seen_;
  if (epoch != current || (w_.fence != nullptr && current != epoch_seen_)) {
    violate("epoch-fence",
            "admitted " + std::string(op) + " stamped epoch " +
                std::to_string(epoch) + " (fence at " +
                std::to_string(current) + ", checker saw " +
                std::to_string(epoch_seen_) + ")",
            Boundary::kRoundSeal);
  }
}

void Invariants::on_epoch_advance(std::uint64_t new_epoch) {
  if (new_epoch <= epoch_seen_) {
    violate("epoch-fence",
            "fence advanced to epoch " + std::to_string(new_epoch) +
                " which is not above " + std::to_string(epoch_seen_),
            Boundary::kRecovery);
  }
  epoch_seen_ = new_epoch;
}

void Invariants::on_round_complete(bool ok, std::uint64_t set) {
  // A round that reports success must name a set that exists and sealed;
  // the coordinator otherwise promoted a phantom recovery point.
  if (!ok || w_.images == nullptr) return;
  const storage::CheckpointSet* s = w_.images->find_set(set);
  if (s == nullptr || !s->sealed || s->aborted) {
    violate("image-completeness",
            "LSC round reported ok with set#" + std::to_string(set) +
                (s == nullptr ? " missing from the store"
                              : (s->aborted ? " aborted" : " unsealed")),
            Boundary::kRoundSeal);
  }
}

// ---- sweeps -----------------------------------------------------------------

void Invariants::sweep(Boundary b) {
  if (w_.dvc == nullptr) return;
  for (const core::VirtualCluster* vc : w_.dvc->live_vcs()) {
    check_generations(*vc, b);
    check_image_sets(*vc, b);
  }
  check_refcounts(b);
  check_membership(b);
}

void Invariants::check_generations(const core::VirtualCluster& vc,
                                   Boundary b) {
  const auto& gens = vc.generations();
  storage::CheckpointSetId prev_set = 0;
  sim::Time prev_taken = 0;
  for (std::size_t i = 0; i < gens.size(); ++i) {
    const core::VcGeneration& g = gens[i];
    const std::string who =
        "vc#" + std::to_string(vc.id()) + " generation[" +
        std::to_string(i) + "]";
    if (g.chain.empty()) {
      violate("generation-monotonicity", who + " has an empty chain", b);
      continue;
    }
    if (g.chain.back() != g.checkpoint.set) {
      violate("generation-monotonicity",
              who + " chain tail set#" + std::to_string(g.chain.back()) +
                  " != recovery point set#" +
                  std::to_string(g.checkpoint.set),
              b);
    }
    if (g.checkpoint.set <= prev_set) {
      violate("generation-monotonicity",
              who + " set#" + std::to_string(g.checkpoint.set) +
                  " does not advance past set#" + std::to_string(prev_set),
              b);
    }
    if (g.checkpoint.taken_at < prev_taken) {
      violate("generation-monotonicity",
              who + " taken_at moves backwards", b);
    }
    prev_set = g.checkpoint.set;
    prev_taken = g.checkpoint.taken_at;
  }
}

void Invariants::check_refcounts(Boundary b) {
  // Re-derive the expected reference count of every retained set from the
  // live VCs' generation chains and compare with the manager's table; any
  // divergence is a leak (sets never reclaimed) or a premature retire
  // (recovery points yanked from under a VC).
  std::map<storage::CheckpointSetId, int> expected;
  for (const core::VirtualCluster* vc : w_.dvc->live_vcs()) {
    for (const core::VcGeneration& g : vc->generations()) {
      for (const storage::CheckpointSetId s : g.chain) ++expected[s];
    }
  }
  const auto& actual = w_.dvc->set_refs();
  for (const auto& [s, n] : expected) {
    const auto it = actual.find(s);
    if (it == actual.end() || it->second != n) {
      violate("refcount-consistency",
              "set#" + std::to_string(s) + " referenced by " +
                  std::to_string(n) + " retained chains but refcounted " +
                  std::to_string(it == actual.end() ? 0 : it->second),
              b);
    }
  }
  for (const auto& [s, n] : actual) {
    if (!expected.contains(s)) {
      violate("refcount-consistency",
              "set#" + std::to_string(s) + " refcounted " +
                  std::to_string(n) + " with no retaining chain (leak)",
              b);
    }
    if (w_.images != nullptr) {
      const storage::CheckpointSet* cs = w_.images->find_set(s);
      if (cs == nullptr || !cs->sealed || cs->aborted) {
        violate("retention-liveness",
                "refcounted set#" + std::to_string(s) +
                    (cs == nullptr
                         ? " is gone from the store"
                         : (cs->aborted ? " was aborted" : " never sealed")),
                b);
      }
    }
  }
}

void Invariants::check_image_sets(const core::VirtualCluster& vc,
                                  Boundary b) {
  if (w_.images == nullptr) return;
  // Every restorable generation must be stageable end to end: each set in
  // its chain present, sealed, unaborted, and fully populated. A *damaged*
  // set is a legal fault effect (recovery falls back past it); a sealed
  // set missing members is corruption of the seal protocol itself.
  for (const core::VcGeneration& g : vc.generations()) {
    for (const storage::CheckpointSetId s : g.chain) {
      const storage::CheckpointSet* cs = w_.images->find_set(s);
      const std::string who = "vc#" + std::to_string(vc.id()) +
                              " chain set#" + std::to_string(s);
      if (cs == nullptr) {
        violate("image-completeness", who + " missing from the store", b);
        continue;
      }
      if (!cs->sealed || cs->aborted) {
        violate("image-completeness",
                who + (cs->aborted ? " aborted" : " unsealed") +
                    " inside a retained chain",
                b);
        continue;
      }
      if (cs->members.size() != cs->expected_members) {
        violate("image-completeness",
                who + " sealed with " + std::to_string(cs->members.size()) +
                    "/" + std::to_string(cs->expected_members) + " members",
                b);
      }
    }
  }
}

void Invariants::check_membership(Boundary b) {
  const auto& claims = w_.dvc->claims();
  std::set<core::VcId> live;
  for (const core::VirtualCluster* vc : w_.dvc->live_vcs()) {
    live.insert(vc->id());
    if (vc->state() != core::VcState::kRunning) continue;
    // A running VC must have a complete, duplicate-free placement whose
    // every node the manager's claim table attributes to it.
    std::set<hw::NodeId> seen;
    for (std::uint32_t i = 0; i < vc->size(); ++i) {
      const hw::NodeId n = vc->placement(i);
      const std::string who = "vc#" + std::to_string(vc->id()) +
                              " member " + std::to_string(i);
      if (n == hw::kInvalidNode) {
        violate("member-conservation", who + " has no host node", b);
        continue;
      }
      if (!seen.insert(n).second) {
        violate("member-conservation",
                who + " shares node " + std::to_string(n) +
                    " with another member",
                b);
      }
      const auto it = claims.find(n);
      if (it == claims.end() || it->second != vc->id()) {
        violate("member-conservation",
                who + " runs on node " + std::to_string(n) +
                    " which the claim table gives to " +
                    (it == claims.end()
                         ? std::string("nobody")
                         : "vc#" + std::to_string(it->second)),
                b);
      }
    }
  }
  for (const auto& [node, id] : claims) {
    if (!live.contains(id)) {
      violate("member-conservation",
              "node " + std::to_string(node) + " claimed by dead vc#" +
                  std::to_string(id),
              b);
    }
  }
}

// ---- harness entry points ---------------------------------------------------

void Invariants::end_of_run(bool expect_quiesced) {
  sweep(Boundary::kEndOfRun);
  if (expect_quiesced && w_.sim != nullptr &&
      w_.sim->pending_foreground() != 0) {
    violate("queue-hygiene",
            std::to_string(w_.sim->pending_foreground()) +
                " foreground event(s) leaked past job completion",
            Boundary::kEndOfRun);
  }
}

bool Invariants::verify_ledger(const ckpt::MessageLedger& ledger,
                               bool allow_in_flight) {
  const ckpt::MessageLedger::Verdict v = ledger.check(allow_in_flight);
  if (!v.consistent) {
    violate("ledger-consistency", v.reason, Boundary::kEndOfRun);
  }
  return v.consistent;
}

std::string Invariants::report() const {
  std::string out;
  for (const Violation& v : violations_) {
    out += "[" + std::string(to_string(v.boundary)) + " t=" +
           std::to_string(v.at) + "] " + v.invariant + ": " + v.detail +
           "\n";
  }
  return out;
}

}  // namespace dvc::check
