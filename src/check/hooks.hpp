#pragma once

#include <cstdint>
#include <string_view>

// Deliberately dependency-free: subsystem headers (storage, ckpt, core)
// include this to accept an optional checker without pulling src/check/'s
// implementation — the concrete dvc::check::Invariants lives in its own
// library on top of dvc_core, so no dependency cycle forms.

namespace dvc::check {

/// Which cross-subsystem boundary a sweep is running at.
enum class Boundary : std::uint8_t {
  kRoundSeal,  ///< a coordinated checkpoint sealed and became a generation
  kRestore,    ///< a whole-VC restore completed (ok or not)
  kRecovery,   ///< automatic recovery concluded (recovered or abandoned)
  kEndOfRun,   ///< the harness is done driving the simulation
};

[[nodiscard]] constexpr std::string_view to_string(Boundary b) noexcept {
  switch (b) {
    case Boundary::kRoundSeal: return "round-seal";
    case Boundary::kRestore: return "restore";
    case Boundary::kRecovery: return "recovery";
    case Boundary::kEndOfRun: return "end-of-run";
  }
  return "?";
}

/// Observer interface the subsystems notify at their consistency points.
/// All hooks default to no-ops so a subsystem with no checker attached
/// behaves (and costs) exactly as before; dvc::check::Invariants overrides
/// them with the cross-subsystem assertions.
class Checker {
 public:
  virtual ~Checker() = default;

  /// A VC crossed a lifecycle boundary (DvcManager).
  virtual void on_vc_boundary(Boundary /*boundary*/, std::uint64_t /*vc*/) {}

  /// The image manager admitted a state-changing command stamped with
  /// `epoch` (post-fence: the mutation is about to execute).
  virtual void on_admitted_mutation(std::string_view /*op*/,
                                    std::uint64_t /*epoch*/) {}

  /// The coordinator-epoch fence advanced to `new_epoch`.
  virtual void on_epoch_advance(std::uint64_t /*new_epoch*/) {}

  /// An LSC round concluded (after the retry policy ran its course).
  virtual void on_round_complete(bool /*ok*/, std::uint64_t /*set*/) {}
};

}  // namespace dvc::check
