#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "check/hooks.hpp"
#include "ckpt/ledger.hpp"
#include "core/dvc_manager.hpp"
#include "sim/simulation.hpp"
#include "storage/epoch_fence.hpp"
#include "storage/image_manager.hpp"
#include "telemetry/telemetry.hpp"

namespace dvc::check {

/// One invariant violation, recorded (never thrown) so a sweep cell can
/// finish its run and report every breakage it saw.
struct Violation {
  std::string invariant;  ///< stable kebab-case name, e.g. "epoch-fence"
  std::string detail;     ///< what was observed vs. what must hold
  Boundary boundary = Boundary::kEndOfRun;
  sim::Time at = 0;
};

/// The always-compiled simulation invariant checker: a Checker
/// implementation that re-derives cross-subsystem consistency from ground
/// truth at every boundary the subsystems announce, instead of trusting
/// any one subsystem's bookkeeping.
///
/// Invariant catalog (see docs/ARCHITECTURE.md for the full rationale):
///   generation-monotonicity  per-VC recovery points strictly advance
///   refcount-consistency     set_refs_ == refs re-derived from live VCs
///   retention-liveness       every refcounted set exists, sealed, unaborted
///   epoch-fence              fence advances strictly; no deposed-epoch
///                            mutation is ever *admitted*
///   image-completeness       every restorable generation's chain is fully
///                            populated (members == expected_members)
///   member-conservation      placements are valid, duplicate-free, and
///                            agree with the manager's node-claim table
///   queue-hygiene            no foreground event outlives the run
///   ledger-consistency       (on demand) message ledger verdict holds
///
/// Violations are collected, counted into `check.violations` /
/// `check.violation.<name>`, and exposed for the harness to report with a
/// reproducing command line. A fault-free run must produce zero.
class Invariants final : public Checker {
 public:
  struct Wiring {
    sim::Simulation* sim = nullptr;
    core::DvcManager* dvc = nullptr;
    storage::ImageManager* images = nullptr;
    storage::EpochFence* fence = nullptr;
    telemetry::MetricsRegistry* metrics = nullptr;
  };

  explicit Invariants(Wiring w);

  /// Attaches this checker to every wired subsystem (fence, image manager,
  /// DVC manager). Call once after the machine room is assembled.
  void attach();
  /// Detaches from every wired subsystem (safe to call in any order with
  /// subsystem teardown as long as the subsystems outlive the checker).
  void detach();

  // ---- Checker hooks ----------------------------------------------------
  void on_vc_boundary(Boundary boundary, std::uint64_t vc) override;
  void on_admitted_mutation(std::string_view op,
                            std::uint64_t epoch) override;
  void on_epoch_advance(std::uint64_t new_epoch) override;
  void on_round_complete(bool ok, std::uint64_t set) override;

  // ---- harness-driven checks --------------------------------------------

  /// Final sweep once the harness stops driving the simulation. With
  /// `expect_quiesced` (the default for completed jobs) a non-empty
  /// foreground queue is a leak: some subsystem scheduled work that
  /// nothing will ever consume.
  void end_of_run(bool expect_quiesced = true);

  /// Checks a message ledger's verdict at a cut the caller believes
  /// consistent. Returns true when it is.
  bool verify_ledger(const ckpt::MessageLedger& ledger,
                     bool allow_in_flight);

  // ---- results ----------------------------------------------------------
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  /// Human-readable one-line-per-violation summary ("" when clean).
  [[nodiscard]] std::string report() const;

 private:
  void violate(std::string invariant, std::string detail, Boundary b);
  void sweep(Boundary b);
  void check_generations(const core::VirtualCluster& vc, Boundary b);
  void check_refcounts(Boundary b);
  void check_image_sets(const core::VirtualCluster& vc, Boundary b);
  void check_membership(Boundary b);

  Wiring w_;
  /// Fence epoch as independently tracked by the checker (not read back
  /// from the fence at comparison time): a forged or detached fence shows
  /// up as a divergence instead of being believed.
  std::uint64_t epoch_seen_;
  /// Per-VC newest recovery-point set id observed at a round seal. Set
  /// ids allocate monotonically, so a freshly sealed recovery point below
  /// the watermark means the control plane resurrected an old one.
  std::map<core::VcId, storage::CheckpointSetId> seal_watermark_;
  std::vector<Violation> violations_;
};

}  // namespace dvc::check
