#include "app/mpi_job.hpp"

#include <stdexcept>
#include <utility>

namespace dvc::app {

namespace {
/// Port scheme: the endpoint on rank r talking to peer q binds port q.
constexpr std::uint16_t port_for_peer(RankId peer) {
  return static_cast<std::uint16_t>(peer);
}
}  // namespace

MpiJob::MpiJob(sim::Simulation& sim, net::Network& net,
               std::vector<vm::ExecutionContext*> ranks,
               net::ReliableConfig transport)
    : ranks_(std::move(ranks)), handlers_(ranks_.size()) {
  const RankId p = size();
  endpoints_.resize(p);
  for (RankId r = 0; r < p; ++r) {
    endpoints_[r].resize(p);
    for (RankId q = 0; q < p; ++q) {
      if (q == r) continue;
      const net::Address local{ranks_[r]->host(), port_for_peer(q)};
      const net::Address peer{ranks_[q]->host(), port_for_peer(r)};
      auto ep = std::make_unique<net::ReliableEndpoint>(sim, net, local,
                                                        peer, transport);
      ep->set_delivery_handler([this, r, q](const net::Message& m) {
        if (handlers_[r]) handlers_[r](q, m);
      });
      ep->set_failure_handler([this, r](std::string_view why) {
        if (failed_) return;
        failed_ = true;
        if (on_failure_) on_failure_(r, std::string(why));
      });
      endpoints_[r][q] = std::move(ep);
    }
  }
}

void MpiJob::set_rank_handler(RankId rank, RankHandler h) {
  handlers_.at(rank) = std::move(h);
}

net::ReliableEndpoint& MpiJob::endpoint(RankId from, RankId to) {
  auto& ep = endpoints_.at(from).at(to);
  if (!ep) throw std::invalid_argument("no self-connection");
  return *ep;
}

const net::ReliableEndpoint& MpiJob::endpoint(RankId from, RankId to) const {
  const auto& ep = endpoints_.at(from).at(to);
  if (!ep) throw std::invalid_argument("no self-connection");
  return *ep;
}

bool MpiJob::send(RankId from, RankId to, std::uint32_t bytes,
                  std::uint32_t tag) {
  if (failed_) return false;
  bytes_sent_ += bytes;
  return endpoint(from, to).send(bytes, tag) != 0;
}

RankTransportSnapshot MpiJob::snapshot_transport(RankId rank) const {
  RankTransportSnapshot snap;
  for (RankId q = 0; q < size(); ++q) {
    if (q == static_cast<RankId>(rank)) continue;
    snap.to_peer.emplace(q, endpoint(rank, q).snapshot());
  }
  return snap;
}

void MpiJob::restore_transport(RankId rank,
                               const RankTransportSnapshot& snap,
                               std::uint32_t epoch) {
  for (const auto& [q, s] : snap.to_peer) {
    endpoint(rank, q).restore(s, epoch);
  }
}

std::uint64_t MpiJob::messages_sent() const {
  std::uint64_t n = 0;
  for (const auto& row : endpoints_) {
    for (const auto& ep : row) {
      if (ep) n += ep->messages_sent();
    }
  }
  return n;
}

std::uint64_t MpiJob::messages_delivered() const {
  std::uint64_t n = 0;
  for (const auto& row : endpoints_) {
    for (const auto& ep : row) {
      if (ep) n += ep->messages_delivered();
    }
  }
  return n;
}

std::uint64_t MpiJob::retransmissions() const {
  std::uint64_t n = 0;
  for (const auto& row : endpoints_) {
    for (const auto& ep : row) {
      if (ep) n += ep->retransmissions();
    }
  }
  return n;
}

std::uint64_t MpiJob::duplicates_discarded() const {
  std::uint64_t n = 0;
  for (const auto& row : endpoints_) {
    for (const auto& ep : row) {
      if (ep) n += ep->duplicates_discarded();
    }
  }
  return n;
}

}  // namespace dvc::app
