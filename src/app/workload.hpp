#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "app/mpi_job.hpp"
#include "sim/simulation.hpp"
#include "vm/virtual_machine.hpp"

namespace dvc::app {

/// Communication pattern executed each iteration.
enum class Pattern : std::uint8_t {
  kNone,           ///< embarrassingly parallel / sequential
  kRing,           ///< nearest-neighbour ring exchange
  kBroadcast,      ///< rotating root sends to every peer (flat bcast)
  kTreeBroadcast,  ///< rotating root, binomial-tree relay (log P rounds)
  kAllToAll,       ///< full transpose exchange (PTRANS-like)
};

/// Binomial-tree helpers (relabelled so `root` maps to virtual rank 0).
/// Exposed for tests and for anyone building their own collectives.
[[nodiscard]] RankId tree_parent(RankId rank, RankId root, RankId ranks);
[[nodiscard]] std::vector<RankId> tree_children(RankId rank, RankId root,
                                                RankId ranks);

/// Static description of a bulk-synchronous parallel workload: per
/// iteration, every rank computes then communicates per the pattern.
struct WorkloadSpec {
  std::string name = "synthetic";
  RankId ranks = 1;
  std::uint32_t iterations = 10;
  double flops_per_rank_iter = 1e9;
  Pattern pattern = Pattern::kNone;
  std::uint32_t bytes_per_msg = 0;
  std::uint64_t working_set_bytes_per_rank = 256ull << 20;
  /// Whether the application ships its own checkpoint code (paper §2:
  /// "not all applications provide this capability").
  bool supports_app_checkpoint = false;
  double total_flops() const {
    return flops_per_rank_iter * ranks * iterations;
  }
};

/// HPL-like workload: compute-dominated LU factorisation; each iteration a
/// rotating root broadcasts its panel share. `n` is the matrix order.
[[nodiscard]] WorkloadSpec make_hpl(std::uint64_t n, RankId ranks,
                                    std::uint32_t iterations = 16);

/// PTRANS-like workload: communication-heavy parallel matrix transpose;
/// every iteration is an all-to-all of the rank's block row/column.
[[nodiscard]] WorkloadSpec make_ptrans(std::uint64_t n, RankId ranks,
                                       std::uint32_t iterations = 8);

/// Single-rank compute job (the "sequential job" case of the paper).
[[nodiscard]] WorkloadSpec make_sequential(double total_flops,
                                           std::uint32_t iterations = 10);

/// Where a rank is in its bulk-synchronous loop. Plain data: this, plus the
/// transport snapshot, is the whole recoverable guest state.
struct RankState {
  std::uint32_t iter = 0;
  enum class Phase : std::uint8_t { kCompute, kComm, kDone } phase =
      Phase::kCompute;
  sim::Duration compute_remaining = 0;  ///< valid when phase == kCompute
  std::map<std::uint32_t, std::uint32_t> recv_count;  ///< per-iter arrivals
  std::set<std::uint32_t> forwarded;  ///< tree-bcast panels already relayed
};

/// Everything a whole-guest image captures for one rank.
struct RankSnapshot {
  RankState state;
  RankTransportSnapshot transport;
};

class ParallelApp;

/// One rank of a parallel application: a bulk-synchronous state machine
/// driven by guest timers (compute) and the MPI mesh (communication).
/// Implements GuestSoftware so a VM checkpoint images it transparently.
class Rank final : public vm::GuestSoftware {
 public:
  Rank(ParallelApp& app, RankId id);

  void start();

  [[nodiscard]] RankId id() const noexcept { return id_; }
  [[nodiscard]] const RankState& state() const noexcept { return st_; }
  [[nodiscard]] bool done() const noexcept {
    return st_.phase == RankState::Phase::kDone;
  }
  /// Parked at an iteration boundary by the quiesce protocol.
  [[nodiscard]] bool held() const noexcept { return held_; }

  /// Resumes a rank parked by the quiesce protocol (no-op otherwise).
  void resume_from_hold();

  /// Simulator telemetry (not guest state): completed compute, including
  /// work redone after rollbacks.
  [[nodiscard]] double compute_done_seconds() const noexcept {
    return compute_done_s_;
  }
  [[nodiscard]] sim::Time started_wall() const noexcept {
    return started_wall_;
  }
  [[nodiscard]] sim::Time finished_wall() const noexcept {
    return finished_wall_;
  }

  /// Pid of this rank's process in its guest's process table (invalid
  /// when running natively).
  [[nodiscard]] vm::Pid guest_pid() const noexcept { return guest_pid_; }

  // GuestSoftware:
  [[nodiscard]] std::any snapshot_state() const override;
  void restore_state(const std::any& state) override;
  void on_killed() override;

  void on_message(RankId from, const net::Message& m);

 private:
  void begin_compute(sim::Duration d);
  void on_compute_done(sim::Duration d);
  void enter_comm();
  void send_pattern_messages();
  void forward_tree_panel(std::uint32_t tag);
  [[nodiscard]] std::uint32_t expected_recvs() const;
  void check_comm_done();
  void advance_iteration();
  void finish();
  void register_guest_process();

  ParallelApp* app_;
  RankId id_;
  RankState st_;
  bool held_ = false;  ///< parked at a boundary by the quiesce protocol
  vm::Pid guest_pid_ = vm::kInvalidPid;
  vm::GuestTimerId compute_timer_ = vm::kInvalidGuestTimer;
  double compute_done_s_ = 0.0;
  sim::Time started_wall_ = 0;
  sim::Time finished_wall_ = 0;
};

/// End-of-job statistics.
struct JobStats {
  double makespan_s = 0.0;          ///< true elapsed (simulated) time
  double reported_elapsed_s = 0.0;  ///< what the app's own clock reports
  double compute_done_s = 0.0;      ///< max over ranks, incl. redone work
  double reported_gflops = 0.0;     ///< app-visible rate (HPL's own metric)
  std::uint64_t messages = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t duplicates = 0;
};

/// A parallel application instance: the MPI mesh plus one Rank per context.
/// The launcher binds each Rank to its VM (vm.set_guest_software) so that
/// whole-guest checkpoints capture application and transport state.
class ParallelApp final {
 public:
  ParallelApp(sim::Simulation& sim, net::Network& net,
              std::vector<vm::ExecutionContext*> contexts, WorkloadSpec spec,
              net::ReliableConfig transport = {});

  ParallelApp(const ParallelApp&) = delete;
  ParallelApp& operator=(const ParallelApp&) = delete;

  void start();

  [[nodiscard]] const WorkloadSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] MpiJob& mesh() noexcept { return job_; }
  [[nodiscard]] Rank& rank(RankId r) { return *ranks_.at(r); }
  [[nodiscard]] RankId size() const noexcept { return spec_.ranks; }

  [[nodiscard]] bool completed() const noexcept { return completed_; }
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  void set_on_complete(std::function<void()> fn) {
    on_complete_ = std::move(fn);
  }
  void set_on_failure(std::function<void(std::string)> fn) {
    on_failure_ = std::move(fn);
  }

  /// Marks the job failed from outside the transport (e.g. the control
  /// plane abandoning recovery after exhausting every checkpoint
  /// generation). No-op on a completed job; fires the failure callback so
  /// the run ends diagnosed instead of wedged.
  void mark_failed(std::string why);

  /// Starts a whole-job rollback: bumps the transport epoch every restored
  /// endpoint must use and clears the failure flag. Ranks are then restored
  /// individually via their VMs' rollback_and_resume.
  std::uint32_t begin_rollback();

  // ---- quiesce protocol (CoCheck/BLCR-style checkpoint support) --------
  // A checkpoint *library* linked into the application (paper §2.1) stops
  // the ranks at their next iteration boundary and lets the network drain,
  // instead of freezing whole guests. This is the cooperation such
  // libraries require — and exactly what DVC's transparency avoids.

  /// Asks every rank to hold at its next iteration boundary; `on_all_held`
  /// fires once every rank is parked (or finished).
  void request_quiesce(std::function<void()> on_all_held);

  /// Resumes every held rank.
  void release_quiesce();

  [[nodiscard]] bool quiescing() const noexcept { return quiescing_; }

  /// True once every rank's outgoing channels have fully drained
  /// (no unacknowledged messages anywhere in the mesh).
  [[nodiscard]] bool mesh_drained() const;

  [[nodiscard]] std::uint32_t rollback_epoch() const noexcept {
    return rollback_epoch_;
  }

  [[nodiscard]] JobStats stats() const;

  /// Bytes an application-level checkpoint of one rank would write (the
  /// app knows its minimal restart state — paper §2).
  [[nodiscard]] std::uint64_t app_checkpoint_bytes() const noexcept {
    return spec_.working_set_bytes_per_rank;
  }

 private:
  friend class Rank;
  void notify_rank_done();
  void note_rank_held();
  void on_transport_failure(RankId rank, std::string why);

  sim::Simulation* sim_;
  WorkloadSpec spec_;
  std::vector<vm::ExecutionContext*> contexts_;
  MpiJob job_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  bool completed_ = false;
  bool failed_ = false;
  bool quiescing_ = false;
  std::function<void()> on_all_held_;
  std::uint32_t rollback_epoch_ = 0;
  sim::Time started_sim_ = 0;
  sim::Time finished_sim_ = 0;
  std::function<void()> on_complete_;
  std::function<void(std::string)> on_failure_;
};

}  // namespace dvc::app
