#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/reliable_channel.hpp"
#include "sim/simulation.hpp"
#include "vm/execution_context.hpp"

namespace dvc::app {

/// Rank index within a parallel job.
using RankId = std::uint32_t;

/// Transport state of one rank: its endpoint toward every peer. Part of a
/// whole-guest checkpoint (the guest's TCP stacks freeze with the guest).
struct RankTransportSnapshot {
  std::map<RankId, net::TransportSnapshot> to_peer;
};

/// The message-passing fabric of one parallel job: a full mesh of reliable
/// connections between ranks. This plays the role of the MPI library + TCP
/// stacks inside the guests: co-dependent processes where losing any single
/// connection kills the whole application (paper §2.1).
class MpiJob final {
 public:
  /// (from, message) delivered in order per (from -> to) pair.
  using RankHandler = std::function<void(RankId from, const net::Message&)>;
  /// Fired once, on the first transport abort anywhere in the job.
  using FailureHandler = std::function<void(RankId rank, std::string why)>;

  MpiJob(sim::Simulation& sim, net::Network& net,
         std::vector<vm::ExecutionContext*> ranks,
         net::ReliableConfig transport = {});

  MpiJob(const MpiJob&) = delete;
  MpiJob& operator=(const MpiJob&) = delete;

  [[nodiscard]] RankId size() const noexcept {
    return static_cast<RankId>(ranks_.size());
  }
  [[nodiscard]] vm::ExecutionContext& context(RankId r) {
    return *ranks_.at(r);
  }

  void set_rank_handler(RankId rank, RankHandler h);
  void set_failure_handler(FailureHandler h) { on_failure_ = std::move(h); }

  /// Sends `bytes` from rank `from` to rank `to` with an application tag.
  /// Reliable, in-order per pair. Returns false if the mesh has failed.
  bool send(RankId from, RankId to, std::uint32_t bytes, std::uint32_t tag);

  /// True once any connection in the mesh has aborted.
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  /// Captures one rank's transport state (call while its guest is paused).
  [[nodiscard]] RankTransportSnapshot snapshot_transport(RankId rank) const;

  /// Rolls one rank's transport back (whole-VC restore). All ranks of a job
  /// must be restored with the same epoch before any of them runs again.
  void restore_transport(RankId rank, const RankTransportSnapshot& snap,
                         std::uint32_t epoch);

  /// Clears the failed flag after a successful whole-job rollback.
  void mark_recovered() noexcept { failed_ = false; }

  // Aggregate statistics across the mesh.
  [[nodiscard]] std::uint64_t messages_sent() const;
  [[nodiscard]] std::uint64_t messages_delivered() const;
  [[nodiscard]] std::uint64_t retransmissions() const;
  [[nodiscard]] std::uint64_t duplicates_discarded() const;
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_;
  }

 private:
  [[nodiscard]] net::ReliableEndpoint& endpoint(RankId from, RankId to);
  [[nodiscard]] const net::ReliableEndpoint& endpoint(RankId from,
                                                      RankId to) const;

  std::vector<vm::ExecutionContext*> ranks_;
  /// endpoints_[from][to], nullptr on the diagonal.
  std::vector<std::vector<std::unique_ptr<net::ReliableEndpoint>>> endpoints_;
  std::vector<RankHandler> handlers_;
  FailureHandler on_failure_;
  bool failed_ = false;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace dvc::app
