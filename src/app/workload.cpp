#include "app/workload.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dvc::app {

WorkloadSpec make_hpl(std::uint64_t n, RankId ranks,
                      std::uint32_t iterations) {
  WorkloadSpec s;
  s.name = "hpl-n" + std::to_string(n);
  s.ranks = ranks;
  s.iterations = iterations;
  const double total_flops =
      (2.0 / 3.0) * static_cast<double>(n) * static_cast<double>(n) *
      static_cast<double>(n);
  s.flops_per_rank_iter = total_flops / (ranks * iterations);
  s.pattern = Pattern::kBroadcast;
  const std::uint64_t nb = std::max<std::uint64_t>(n / iterations, 1);
  // Panel share broadcast to each peer: N x NB doubles spread over ranks.
  s.bytes_per_msg = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(n * nb * 8 / ranks, 0xffffffffull));
  s.working_set_bytes_per_rank = n * n * 8 / ranks;
  s.supports_app_checkpoint = true;  // HPL can dump its matrix share
  return s;
}

WorkloadSpec make_ptrans(std::uint64_t n, RankId ranks,
                         std::uint32_t iterations) {
  WorkloadSpec s;
  s.name = "ptrans-n" + std::to_string(n);
  s.ranks = ranks;
  s.iterations = iterations;
  // Transpose is copy-bound: ~2 ops per element of the local block.
  s.flops_per_rank_iter =
      2.0 * static_cast<double>(n) * static_cast<double>(n) / ranks;
  s.pattern = Pattern::kAllToAll;
  s.bytes_per_msg = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      n * n * 8 / (static_cast<std::uint64_t>(ranks) * ranks),
      0xffffffffull));
  s.working_set_bytes_per_rank = 2 * n * n * 8 / ranks;  // A and A^T blocks
  s.supports_app_checkpoint = false;
  return s;
}

WorkloadSpec make_sequential(double total_flops, std::uint32_t iterations) {
  WorkloadSpec s;
  s.name = "sequential";
  s.ranks = 1;
  s.iterations = iterations;
  s.flops_per_rank_iter = total_flops / iterations;
  s.pattern = Pattern::kNone;
  s.working_set_bytes_per_rank = 256ull << 20;
  s.supports_app_checkpoint = false;
  return s;
}

RankId tree_parent(RankId rank, RankId root, RankId ranks) {
  const RankId v = (rank + ranks - root) % ranks;  // relabel: root -> 0
  if (v == 0) return rank;                         // the root has no parent
  const RankId lowbit = v & (~v + 1);
  return ((v - lowbit) + root) % ranks;
}

std::vector<RankId> tree_children(RankId rank, RankId root, RankId ranks) {
  const RankId v = (rank + ranks - root) % ranks;
  // Children of virtual rank v are v + 2^k for 2^k below v's lowest set
  // bit (the root, v = 0, fans out to every power of two).
  RankId limit = v == 0 ? ranks : (v & (~v + 1));
  std::vector<RankId> out;
  for (RankId step = 1; step < limit && v + step < ranks; step <<= 1) {
    out.push_back((v + step + root) % ranks);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rank

Rank::Rank(ParallelApp& app, RankId id) : app_(&app), id_(id) {}

void Rank::start() {
  started_wall_ = app_->contexts_[id_]->wall_now();
  register_guest_process();
  const double flops = app_->spec_.flops_per_rank_iter;
  begin_compute(sim::from_seconds(flops / app_->contexts_[id_]->flops()));
}

void Rank::register_guest_process() {
  // When running inside a VM, show up in the guest's process table with
  // the resources §2's checkpoint accounting cares about: the working set
  // on the heap, an input file, and a TCP socket per peer.
  auto* machine = dynamic_cast<vm::VirtualMachine*>(app_->contexts_[id_]);
  if (machine == nullptr || guest_pid_ != vm::kInvalidPid) return;
  vm::GuestOs& os = machine->os();
  guest_pid_ = os.spawn(app_->spec_.name + "/rank" + std::to_string(id_));
  os.set_heap(guest_pid_, app_->spec_.working_set_bytes_per_rank);
  os.open_file(guest_pid_, "/data/" + app_->spec_.name + ".in",
               8ull << 20);
  for (RankId q = 0; q < app_->spec_.ranks; ++q) {
    if (q == id_) continue;
    os.open_socket(guest_pid_, q, 256ull << 10, 256ull << 10);
  }
}

void Rank::begin_compute(sim::Duration d) {
  st_.phase = RankState::Phase::kCompute;
  st_.compute_remaining = d;
  compute_timer_ = app_->contexts_[id_]->schedule(
      d, [this, d] { on_compute_done(d); });
}

void Rank::on_compute_done(sim::Duration d) {
  compute_timer_ = vm::kInvalidGuestTimer;
  compute_done_s_ += sim::to_seconds(d);
  enter_comm();
}

void Rank::enter_comm() {
  st_.phase = RankState::Phase::kComm;
  send_pattern_messages();
  check_comm_done();
}

void Rank::send_pattern_messages() {
  const WorkloadSpec& spec = app_->spec_;
  const RankId p = spec.ranks;
  const std::uint32_t tag = st_.iter;
  switch (spec.pattern) {
    case Pattern::kNone:
      break;
    case Pattern::kRing:
      if (p > 1) {
        app_->job_.send(id_, (id_ + 1) % p, spec.bytes_per_msg, tag);
      }
      break;
    case Pattern::kBroadcast: {
      const RankId root = st_.iter % p;
      if (id_ == root) {
        for (RankId q = 0; q < p; ++q) {
          if (q != id_) app_->job_.send(id_, q, spec.bytes_per_msg, tag);
        }
      }
      break;
    }
    case Pattern::kTreeBroadcast:
      // The root injects its panel into the binomial tree; everyone else
      // relays on receipt (see forward_tree_panel).
      if (id_ == st_.iter % p) forward_tree_panel(tag);
      break;
    case Pattern::kAllToAll:
      for (RankId q = 0; q < p; ++q) {
        if (q != id_) app_->job_.send(id_, q, spec.bytes_per_msg, tag);
      }
      break;
  }
}

std::uint32_t Rank::expected_recvs() const {
  const WorkloadSpec& spec = app_->spec_;
  const RankId p = spec.ranks;
  switch (spec.pattern) {
    case Pattern::kNone:
      return 0;
    case Pattern::kRing:
      return p > 1 ? 1 : 0;
    case Pattern::kBroadcast:
    case Pattern::kTreeBroadcast:
      return (st_.iter % p) == id_ ? 0 : 1;
    case Pattern::kAllToAll:
      return p - 1;
  }
  return 0;
}

void Rank::forward_tree_panel(std::uint32_t tag) {
  if (!st_.forwarded.insert(tag).second) return;  // already relayed
  const RankId p = app_->spec_.ranks;
  const RankId root = tag % p;
  for (const RankId child : tree_children(id_, root, p)) {
    app_->job_.send(id_, child, app_->spec_.bytes_per_msg, tag);
  }
}

void Rank::on_message(RankId /*from*/, const net::Message& m) {
  // A tree-broadcast panel is relayed onward the moment it arrives, even
  // if this rank is still busy with an earlier iteration.
  if (app_->spec_.pattern == Pattern::kTreeBroadcast) {
    forward_tree_panel(m.tag);
  }
  ++st_.recv_count[m.tag];
  if (st_.phase == RankState::Phase::kComm && m.tag == st_.iter) {
    check_comm_done();
  }
}

void Rank::check_comm_done() {
  if (st_.phase != RankState::Phase::kComm) return;
  const auto it = st_.recv_count.find(st_.iter);
  const std::uint32_t got = it == st_.recv_count.end() ? 0 : it->second;
  if (got >= expected_recvs()) advance_iteration();
}

void Rank::advance_iteration() {
  // Prune arrival counters at and below the completed iteration; later
  // iterations' early arrivals stay buffered.
  st_.recv_count.erase(st_.recv_count.begin(),
                       st_.recv_count.upper_bound(st_.iter));
  st_.forwarded.erase(st_.forwarded.begin(),
                      st_.forwarded.upper_bound(st_.iter));
  ++st_.iter;
  if (st_.iter >= app_->spec_.iterations) {
    finish();
    return;
  }
  if (app_->quiescing_) {
    // A CoCheck-style checkpoint library parked us at the iteration
    // boundary; release_quiesce() resumes from here.
    held_ = true;
    app_->note_rank_held();
    return;
  }
  const double flops = app_->spec_.flops_per_rank_iter;
  begin_compute(sim::from_seconds(flops / app_->contexts_[id_]->flops()));
}

void Rank::resume_from_hold() {
  if (!held_) return;
  held_ = false;
  const double flops = app_->spec_.flops_per_rank_iter;
  begin_compute(sim::from_seconds(flops / app_->contexts_[id_]->flops()));
}

void Rank::finish() {
  st_.phase = RankState::Phase::kDone;
  finished_wall_ = app_->contexts_[id_]->wall_now();
  app_->notify_rank_done();
}

std::any Rank::snapshot_state() const {
  RankSnapshot snap;
  snap.state = st_;
  if (st_.phase == RankState::Phase::kCompute &&
      compute_timer_ != vm::kInvalidGuestTimer) {
    snap.state.compute_remaining =
        app_->contexts_[id_]->remaining(compute_timer_);
  }
  snap.transport = app_->job_.snapshot_transport(id_);
  return snap;
}

void Rank::restore_state(const std::any& state) {
  const auto* snap = std::any_cast<RankSnapshot>(&state);
  if (snap == nullptr) {
    throw std::invalid_argument("rank restore: wrong snapshot type");
  }
  // Any timer from the dead incarnation is gone (the VM dropped them).
  compute_timer_ = vm::kInvalidGuestTimer;
  st_ = snap->state;
  app_->job_.restore_transport(id_, snap->transport,
                               app_->rollback_epoch());
  switch (st_.phase) {
    case RankState::Phase::kCompute:
      begin_compute(st_.compute_remaining);
      break;
    case RankState::Phase::kComm:
      // In-flight messages will be retransmitted by restored peers; if the
      // counts were already satisfied at the cut, advance immediately.
      check_comm_done();
      break;
    case RankState::Phase::kDone:
      break;
  }
}

void Rank::on_killed() {
  compute_timer_ = vm::kInvalidGuestTimer;  // the VM dropped all timers
}

// ---------------------------------------------------------------------------
// ParallelApp

ParallelApp::ParallelApp(sim::Simulation& sim, net::Network& net,
                         std::vector<vm::ExecutionContext*> contexts,
                         WorkloadSpec spec, net::ReliableConfig transport)
    : sim_(&sim),
      spec_(std::move(spec)),
      contexts_(std::move(contexts)),
      job_(sim, net, contexts_, transport) {
  if (contexts_.size() != spec_.ranks) {
    throw std::invalid_argument("context count != rank count");
  }
  ranks_.reserve(spec_.ranks);
  for (RankId r = 0; r < spec_.ranks; ++r) {
    ranks_.push_back(std::make_unique<Rank>(*this, r));
    job_.set_rank_handler(r, [this, r](RankId from, const net::Message& m) {
      ranks_[r]->on_message(from, m);
    });
  }
  job_.set_failure_handler([this](RankId rank, std::string why) {
    on_transport_failure(rank, std::move(why));
  });
}

void ParallelApp::start() {
  started_sim_ = sim_->now();
  for (auto& r : ranks_) r->start();
}

std::uint32_t ParallelApp::begin_rollback() {
  ++rollback_epoch_;
  failed_ = false;
  job_.mark_recovered();
  return rollback_epoch_;
}

void ParallelApp::request_quiesce(std::function<void()> on_all_held) {
  quiescing_ = true;
  on_all_held_ = std::move(on_all_held);
  note_rank_held();  // maybe everyone is already parked or finished
}

void ParallelApp::release_quiesce() {
  quiescing_ = false;
  on_all_held_ = {};
  for (auto& r : ranks_) r->resume_from_hold();
}

bool ParallelApp::mesh_drained() const {
  for (RankId a = 0; a < spec_.ranks; ++a) {
    const RankTransportSnapshot snap = job_.snapshot_transport(a);
    for (const auto& [peer, s] : snap.to_peer) {
      if (!s.unacked.empty()) return false;
    }
  }
  return true;
}

void ParallelApp::note_rank_held() {
  if (!quiescing_ || !on_all_held_) return;
  for (const auto& r : ranks_) {
    if (!r->done() && !r->held()) return;
  }
  const auto fn = std::move(on_all_held_);
  on_all_held_ = {};
  if (fn) fn();
}

void ParallelApp::notify_rank_done() {
  note_rank_held();  // a finishing rank may complete the quiesce set
  // Recomputed from scratch so that rollbacks which undo a rank's "done"
  // status cannot leave a stale count behind.
  if (completed_) return;
  for (const auto& r : ranks_) {
    if (!r->done()) return;
  }
  completed_ = true;
  finished_sim_ = sim_->now();
  if (on_complete_) on_complete_();
}

void ParallelApp::on_transport_failure(RankId rank, std::string why) {
  if (completed_) return;
  failed_ = true;
  if (on_failure_) {
    on_failure_("rank " + std::to_string(rank) + ": " + why);
  }
}

void ParallelApp::mark_failed(std::string why) {
  if (completed_ || failed_) return;
  failed_ = true;
  if (on_failure_) on_failure_(std::move(why));
}

JobStats ParallelApp::stats() const {
  JobStats s;
  s.makespan_s = sim::to_seconds(finished_sim_ - started_sim_);
  for (const auto& r : ranks_) {
    s.reported_elapsed_s =
        std::max(s.reported_elapsed_s,
                 sim::to_seconds(r->finished_wall() - r->started_wall()));
    s.compute_done_s = std::max(s.compute_done_s, r->compute_done_seconds());
  }
  if (s.reported_elapsed_s > 0.0) {
    s.reported_gflops = spec_.total_flops() / s.reported_elapsed_s / 1e9;
  }
  s.messages = job_.messages_sent();
  s.retransmissions = job_.retransmissions();
  s.duplicates = job_.duplicates_discarded();
  return s;
}

}  // namespace dvc::app
