#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace dvc::sim {

/// Identifier of a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

/// Deterministic discrete-event simulation kernel.
///
/// Components schedule closures at absolute or relative simulated times; the
/// kernel fires them in (time, insertion-order) order, so two events at the
/// same tick run in the order they were scheduled. This total order plus
/// per-component `Rng` streams makes every run bit-for-bit reproducible.
class Simulation final {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `fn` to run at absolute time `at` (clamped to `now()`).
  EventId schedule_at(Time at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` ticks from now (negative delays clamp
  /// to zero, i.e. "as soon as possible, after already-queued work").
  EventId schedule_after(Duration delay, std::function<void()> fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Daemon variants: background housekeeping that perpetually reschedules
  /// itself (NTP polling, failure processes, periodic checkpoints). Daemon
  /// events fire normally while foreground work exists, but they do not
  /// keep run() alive on their own — exactly like daemon threads.
  EventId schedule_daemon_at(Time at, std::function<void()> fn);
  EventId schedule_daemon_after(Duration delay, std::function<void()> fn) {
    return schedule_daemon_at(now_ + (delay < 0 ? 0 : delay),
                              std::move(fn));
  }

  /// Cancels a pending event. Returns true if it had not yet fired;
  /// cancelling an id that already fired (or was already cancelled) is a
  /// harmless no-op returning false — it cannot skew pending() or the
  /// foreground count.
  bool cancel(EventId id);

  /// Runs a single event. Returns false if the queue is empty.
  bool step();

  /// Runs until no *foreground* events remain (daemon events never hold
  /// the simulation open) or `limit` events have fired. Returns the
  /// number of events executed.
  std::uint64_t run(std::uint64_t limit =
                        std::numeric_limits<std::uint64_t>::max());

  /// Runs events with timestamps <= `until`, then sets now() to `until`
  /// (if the simulation did not already pass it). Returns events executed.
  std::uint64_t run_until(Time until);

  /// Number of events currently pending (daemons included).
  [[nodiscard]] std::size_t pending() const noexcept {
    return live_.size();
  }

  /// Number of pending non-daemon events (what keeps run() alive).
  [[nodiscard]] std::size_t pending_foreground() const noexcept {
    return foreground_pending_;
  }

  /// Total number of events executed since construction.
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Entry {
    Time at;
    EventId id;
    bool daemon;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.id > b.id;
    }
  };

  EventId schedule_impl(Time at, std::function<void()> fn, bool daemon);
  bool pop_one(Entry& out);

  Time now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t foreground_pending_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  // Lazy-deletion tombstones for queued-but-cancelled entries.
  std::unordered_set<EventId> cancelled_;
  // Every not-yet-fired, not-cancelled event, with its daemon-ness. The
  // authoritative liveness record: cancel() consults it so that an id whose
  // entry already fired is rejected instead of poisoning the counters.
  std::unordered_map<EventId, bool> live_;
};

}  // namespace dvc::sim
