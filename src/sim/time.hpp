#pragma once

#include <cstdint>

/// Simulated-time primitives.
///
/// All simulation time is kept in signed 64-bit nanosecond ticks. Signed
/// arithmetic lets clock-offset math (which can go negative) reuse the same
/// type, and 64-bit nanoseconds cover ~292 years of simulated time.
namespace dvc::sim {

/// A point in simulated time, in nanoseconds since simulation start.
using Time = std::int64_t;

/// A span of simulated time, in nanoseconds.
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;

/// Converts a duration in (possibly fractional) seconds to ticks.
[[nodiscard]] constexpr Duration from_seconds(double s) noexcept {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

/// Converts ticks to fractional seconds (for reporting only; never use the
/// result for scheduling, to avoid accumulating rounding error).
[[nodiscard]] constexpr double to_seconds(Duration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Converts ticks to fractional milliseconds (reporting only).
[[nodiscard]] constexpr double to_milliseconds(Duration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

}  // namespace dvc::sim
