#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace dvc::sim {

/// Streaming summary statistics (Welford) with optional sample retention
/// for percentiles. Used by experiment harnesses and benches.
class SummaryStats final {
 public:
  explicit SummaryStats(bool keep_samples = false)
      : keep_samples_(keep_samples) {}

  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
    sum_ += x;
    if (keep_samples_) {
      sorted_ = sorted_ && (samples_.empty() || x >= samples_.back());
      samples_.push_back(x);
    }
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept {
    return std::sqrt(variance());
  }

  /// Percentile in [0, 100]; requires keep_samples = true and count() > 0.
  /// Sorts the retained samples lazily (and in place) on first use after
  /// an add(), so sweeping many percentiles costs one sort, not one copy
  /// plus one sort per call.
  [[nodiscard]] double percentile(double p) const {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    const std::vector<double>& v = samples_;
    const double idx = (p / 100.0) * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const auto hi = std::min(lo + 1, v.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
  }

 private:
  bool keep_samples_;
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  /// Retained samples; percentile() may reorder them (sorted-ness is
  /// cached in sorted_ and invalidated by out-of-order add()s).
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace dvc::sim
