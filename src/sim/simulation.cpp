#include "sim/simulation.hpp"

#include <utility>

namespace dvc::sim {

EventId Simulation::schedule_impl(Time at, std::function<void()> fn,
                                  bool daemon) {
  const EventId id = next_id_++;
  queue_.push(Entry{at < now_ ? now_ : at, id, daemon, std::move(fn)});
  live_.emplace(id, daemon);
  if (!daemon) ++foreground_pending_;
  return id;
}

EventId Simulation::schedule_at(Time at, std::function<void()> fn) {
  return schedule_impl(at, std::move(fn), /*daemon=*/false);
}

EventId Simulation::schedule_daemon_at(Time at, std::function<void()> fn) {
  return schedule_impl(at, std::move(fn), /*daemon=*/true);
}

bool Simulation::cancel(EventId id) {
  const auto it = live_.find(id);
  if (it == live_.end()) return false;  // never scheduled, fired, or stale
  if (!it->second) --foreground_pending_;
  live_.erase(it);
  // Lazy deletion: the entry stays queued but is skipped when popped.
  cancelled_.insert(id);
  return true;
}

bool Simulation::pop_one(Entry& out) {
  while (!queue_.empty()) {
    // priority_queue::top() is const; the closure must be moved out, so we
    // copy the POD fields first and const_cast the function (safe: the
    // entry is popped immediately afterwards).
    Entry& top = const_cast<Entry&>(queue_.top());
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    out.at = top.at;
    out.id = top.id;
    out.daemon = top.daemon;
    out.fn = std::move(top.fn);
    live_.erase(top.id);
    if (!top.daemon) --foreground_pending_;
    queue_.pop();
    return true;
  }
  return false;
}

bool Simulation::step() {
  Entry e;
  if (!pop_one(e)) return false;
  now_ = e.at;
  ++executed_;
  e.fn();
  return true;
}

std::uint64_t Simulation::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && foreground_pending_ > 0 && step()) ++n;
  return n;
}

std::uint64_t Simulation::run_until(Time until) {
  std::uint64_t n = 0;
  Entry e;
  while (!queue_.empty()) {
    if (queue_.top().at > until) break;
    if (!pop_one(e)) break;
    if (e.at > until) {
      // pop_one skipped cancelled entries and surfaced a later one; put the
      // real event back and stop. (Cheaper than peek-with-skip.)
      live_.emplace(e.id, e.daemon);
      if (!e.daemon) ++foreground_pending_;
      queue_.push(std::move(e));
      break;
    }
    now_ = e.at;
    ++executed_;
    e.fn();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

}  // namespace dvc::sim
