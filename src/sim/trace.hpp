#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace dvc::sim {

/// Severity of a trace event.
enum class TraceLevel : std::uint8_t {
  kDebug,
  kInfo,
  kWarn,
  kError,
};

[[nodiscard]] constexpr std::string_view to_string(TraceLevel l) noexcept {
  switch (l) {
    case TraceLevel::kDebug:
      return "DEBUG";
    case TraceLevel::kInfo:
      return "INFO";
    case TraceLevel::kWarn:
      return "WARN";
    case TraceLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// One structured trace event.
struct TraceEvent {
  Time at = 0;
  TraceLevel level = TraceLevel::kInfo;
  std::string component;  ///< e.g. "hypervisor/3", "dvc", "fabric"
  std::string message;
};

/// In-simulation structured event log: a bounded ring of events plus
/// optional live echo to stdout and subscriber callbacks. Components
/// receive a TraceLog pointer (possibly null — tracing is strictly
/// optional) and emit via `TRACE`-style helpers.
///
/// Intended uses: example narration, postmortem debugging of failed
/// trials, and assertions over operational sequences in tests.
class TraceLog final {
 public:
  explicit TraceLog(std::size_t capacity = 16384, bool echo = false)
      : capacity_(capacity), echo_(echo) {}

  void set_echo(bool echo) noexcept { echo_ = echo; }
  void set_min_level(TraceLevel level) noexcept { min_level_ = level; }

  void emit(Time at, TraceLevel level, std::string component,
            std::string message) {
    if (level < min_level_) return;
    ++total_;
    TraceEvent e{at, level, std::move(component), std::move(message)};
    if (echo_) {
      std::printf("[%10.3fs] %-5s %-16s %s\n", to_seconds(e.at),
                  to_string(e.level).data(), e.component.c_str(),
                  e.message.c_str());
    }
    for (const auto& fn : subscribers_) fn(e);
    ring_.push_back(std::move(e));
    if (ring_.size() > capacity_) ring_.pop_front();
  }

  /// Registers a live subscriber (e.g. a test asserting on sequences).
  void subscribe(std::function<void(const TraceEvent&)> fn) {
    subscribers_.push_back(std::move(fn));
  }

  [[nodiscard]] const std::deque<TraceEvent>& events() const noexcept {
    return ring_;
  }
  [[nodiscard]] std::uint64_t total_emitted() const noexcept {
    return total_;
  }

  /// Events whose component starts with `prefix`, newest last.
  [[nodiscard]] std::vector<const TraceEvent*> with_component(
      std::string_view prefix) const {
    std::vector<const TraceEvent*> out;
    for (const TraceEvent& e : ring_) {
      if (e.component.starts_with(prefix)) out.push_back(&e);
    }
    return out;
  }

  /// True if any retained event's message contains `needle`.
  [[nodiscard]] bool contains(std::string_view needle) const {
    for (const TraceEvent& e : ring_) {
      if (e.message.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  /// Count of retained events at or above a level.
  [[nodiscard]] std::size_t count_at_least(TraceLevel level) const {
    std::size_t n = 0;
    for (const TraceEvent& e : ring_) {
      if (e.level >= level) ++n;
    }
    return n;
  }

 private:
  std::size_t capacity_;
  bool echo_;
  TraceLevel min_level_ = TraceLevel::kDebug;
  std::deque<TraceEvent> ring_;
  std::vector<std::function<void(const TraceEvent&)>> subscribers_;
  std::uint64_t total_ = 0;
};

/// Null-safe emit helper: components hold `TraceLog*` that may be null.
inline void trace(TraceLog* log, Time at, TraceLevel level,
                  std::string component, std::string message) {
  if (log != nullptr) {
    log->emit(at, level, std::move(component), std::move(message));
  }
}

}  // namespace dvc::sim
