#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

#include "sim/time.hpp"

namespace dvc::sim {

/// Deterministic pseudo-random number generator (SplitMix64).
///
/// Every stochastic component owns its own `Rng`, seeded from the experiment
/// seed plus a component-specific salt, so adding or removing one component
/// never perturbs the random stream seen by another. The simulator never
/// touches global RNG state or the wall clock.
class Rng final {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed ^ kGolden) {}

  /// Derives an independent child generator; `salt` distinguishes siblings.
  [[nodiscard]] Rng fork(std::uint64_t salt) noexcept {
    return Rng(next_u64() ^ (salt * kGolden));
  }

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next_u64() noexcept {
    std::uint64_t z = (state_ += kGolden);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept {
    // Modulo bias is negligible for the ranges used here (n << 2^64).
    return next_u64() % n;
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Exponentially distributed value with the given mean.
  [[nodiscard]] double exponential(double mean) noexcept {
    return -mean * std::log1p(-uniform());
  }

  /// Normally distributed value (Box-Muller).
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    const double u1 = 1.0 - uniform();  // avoid log(0)
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Exponentially distributed simulated duration with the given mean.
  [[nodiscard]] Duration exponential_duration(Duration mean) noexcept {
    return static_cast<Duration>(exponential(static_cast<double>(mean)));
  }

  /// Normally distributed simulated duration, clamped to be non-negative.
  [[nodiscard]] Duration normal_duration(Duration mean,
                                         Duration stddev) noexcept {
    const double v =
        normal(static_cast<double>(mean), static_cast<double>(stddev));
    return v <= 0.0 ? Duration{0} : static_cast<Duration>(v);
  }

 private:
  static constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  std::uint64_t state_;
};

}  // namespace dvc::sim
