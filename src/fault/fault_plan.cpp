#include "fault/fault_plan.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace dvc::fault {

std::string_view to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kNodeCrash:
      return "node_crash";
    case FaultKind::kLinkDown:
      return "link_down";
    case FaultKind::kLinkDegrade:
      return "link_degrade";
    case FaultKind::kDiskSlow:
      return "disk_slow";
    case FaultKind::kClockStep:
      return "clock_step";
    case FaultKind::kStoreCorrupt:
      return "store_corrupt";
    case FaultKind::kStoreTear:
      return "store_tear";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kCoordinatorCrash:
      return "coordinator_crash";
  }
  return "unknown";
}

namespace {

[[noreturn]] void bad_entry(const std::string& entry, const char* why) {
  throw std::invalid_argument("fault script entry '" + entry + "': " + why);
}

double parse_num(const std::string& entry, const std::string& tok,
                 const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(tok, &pos);
    if (pos != tok.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    bad_entry(entry, what);
  }
}

std::uint32_t parse_id(const std::string& entry, const std::string& tok,
                       const char* what) {
  const double v = parse_num(entry, tok, what);
  if (v < 0 || v != static_cast<double>(static_cast<std::uint32_t>(v))) {
    bad_entry(entry, what);
  }
  return static_cast<std::uint32_t>(v);
}

sim::Duration seconds(double s) {
  return static_cast<sim::Duration>(s * sim::kSecond);
}

/// Recognises the one-way link syntax `<a>-><b>`; fills the event's
/// cluster pair and one_way flag and returns true, or returns false for a
/// plain (symmetric) cluster-id token.
bool parse_arrow_pair(const std::string& entry, const std::string& tok,
                      FaultEvent& e) {
  const std::size_t arrow = tok.find("->");
  if (arrow == std::string::npos) return false;
  e.cluster_a = parse_id(entry, tok.substr(0, arrow), "bad cluster id");
  e.cluster_b = parse_id(entry, tok.substr(arrow + 2), "bad cluster id");
  e.one_way = true;
  return true;
}

/// Parses a partition group token `a,b|c,d` into the event's two sides.
void parse_groups(const std::string& entry, const std::string& tok,
                  FaultEvent& e) {
  const std::size_t bar = tok.find('|');
  if (bar == std::string::npos) {
    bad_entry(entry, "partition groups need a '|' separator");
  }
  const auto split_ids = [&](const std::string& side,
                             std::vector<std::uint32_t>& out) {
    std::istringstream in(side);
    std::string id;
    while (std::getline(in, id, ',')) {
      if (id.empty()) bad_entry(entry, "empty cluster id in group");
      out.push_back(parse_id(entry, id, "bad cluster id"));
    }
  };
  split_ids(tok.substr(0, bar), e.group_a);
  split_ids(tok.substr(bar + 1), e.group_b);
  if (e.group_a.empty() || e.group_b.empty()) {
    bad_entry(entry, "each partition side needs at least one cluster");
  }
  for (const std::uint32_t a : e.group_a) {
    for (const std::uint32_t b : e.group_b) {
      if (a == b) bad_entry(entry, "cluster on both sides of the partition");
    }
  }
}

}  // namespace

FaultPlan FaultPlan::parse_script(const std::string& text) {
  FaultPlan plan;
  std::string normal = text;
  std::replace(normal.begin(), normal.end(), '\n', ';');
  std::istringstream entries(normal);
  std::string entry;
  while (std::getline(entries, entry, ';')) {
    std::istringstream in(entry);
    std::vector<std::string> tok;
    std::string t;
    while (in >> t) tok.push_back(t);
    if (tok.empty()) continue;  // empty entry (trailing ';', blank line)
    if (tok.size() < 2) bad_entry(entry, "expected <time_s> <verb> ...");
    const double at_s = parse_num(entry, tok[0], "bad time");
    if (at_s < 0) bad_entry(entry, "negative time");
    FaultEvent e;
    e.at = seconds(at_s);
    const std::string& verb = tok[1];
    if (verb == "crash") {
      if (tok.size() != 3 && tok.size() != 4) {
        bad_entry(entry, "crash takes <node> [down_s]");
      }
      e.kind = FaultKind::kNodeCrash;
      e.node = parse_id(entry, tok[2], "bad node id");
      if (tok.size() == 4) {
        e.down_for = seconds(parse_num(entry, tok[3], "bad down_s"));
      }
    } else if (verb == "linkdown") {
      e.kind = FaultKind::kLinkDown;
      if (tok.size() == 4 && parse_arrow_pair(entry, tok[2], e)) {
        e.down_for = seconds(parse_num(entry, tok[3], "bad for_s"));
      } else if (tok.size() == 5) {
        e.cluster_a = parse_id(entry, tok[2], "bad cluster id");
        e.cluster_b = parse_id(entry, tok[3], "bad cluster id");
        e.down_for = seconds(parse_num(entry, tok[4], "bad for_s"));
      } else {
        bad_entry(entry,
                  "linkdown takes <clusterA> <clusterB> <for_s> "
                  "or <cA>-><cB> <for_s>");
      }
      if (e.cluster_a == e.cluster_b) bad_entry(entry, "self link");
    } else if (verb == "degrade") {
      e.kind = FaultKind::kLinkDegrade;
      std::size_t arg = 3;
      if (tok.size() == 6 && parse_arrow_pair(entry, tok[2], e)) {
        // one-way form: <cA>-><cB> <loss> <lat_factor> <for_s>
      } else if (tok.size() == 7) {
        e.cluster_a = parse_id(entry, tok[2], "bad cluster id");
        e.cluster_b = parse_id(entry, tok[3], "bad cluster id");
        arg = 4;
      } else {
        bad_entry(entry,
                  "degrade takes <cA> <cB> <loss> <lat_factor> <for_s> "
                  "or <cA>-><cB> <loss> <lat_factor> <for_s>");
      }
      e.loss = parse_num(entry, tok[arg], "bad loss");
      e.latency_factor = parse_num(entry, tok[arg + 1], "bad latency factor");
      e.down_for = seconds(parse_num(entry, tok[arg + 2], "bad for_s"));
      if (e.loss < 0.0 || e.loss > 1.0) bad_entry(entry, "loss not in [0,1]");
      if (e.latency_factor < 1.0) bad_entry(entry, "latency factor < 1");
      if (e.cluster_a == e.cluster_b) bad_entry(entry, "self link");
    } else if (verb == "partition") {
      if (tok.size() != 4) {
        bad_entry(entry, "partition takes <a,b|c,d> <for_s>");
      }
      e.kind = FaultKind::kPartition;
      parse_groups(entry, tok[2], e);
      e.down_for = seconds(parse_num(entry, tok[3], "bad for_s"));
    } else if (verb == "coordcrash") {
      if (tok.size() != 2 && tok.size() != 3) {
        bad_entry(entry, "coordcrash takes [down_s]");
      }
      e.kind = FaultKind::kCoordinatorCrash;
      if (tok.size() == 3) {
        e.down_for = seconds(parse_num(entry, tok[2], "bad down_s"));
      }
    } else if (verb == "diskslow") {
      if (tok.size() != 4) bad_entry(entry, "diskslow takes <factor> <for_s>");
      e.kind = FaultKind::kDiskSlow;
      e.factor = parse_num(entry, tok[2], "bad factor");
      e.down_for = seconds(parse_num(entry, tok[3], "bad for_s"));
      if (e.factor < 1.0) bad_entry(entry, "factor < 1");
    } else if (verb == "clockstep") {
      if (tok.size() != 4) bad_entry(entry, "clockstep takes <node> <ms>");
      e.kind = FaultKind::kClockStep;
      e.node = parse_id(entry, tok[2], "bad node id");
      e.clock_step = static_cast<sim::Duration>(
          parse_num(entry, tok[3], "bad ms") * sim::kMillisecond);
    } else if (verb == "corrupt") {
      if (tok.size() != 4) {
        bad_entry(entry, "corrupt takes <store> <nth_newest>");
      }
      e.kind = FaultKind::kStoreCorrupt;
      e.store = parse_id(entry, tok[2], "bad store id");
      e.nth_newest = parse_id(entry, tok[3], "bad nth_newest");
    } else if (verb == "tear") {
      if (tok.size() != 3) bad_entry(entry, "tear takes <store>");
      e.kind = FaultKind::kStoreTear;
      e.store = parse_id(entry, tok[2], "bad store id");
    } else {
      bad_entry(entry, "unknown verb");
    }
    plan.events_.push_back(e);
  }
  return plan;
}

void FaultPlan::sample(const StochasticFaults& spec, std::uint32_t node_count,
                       std::uint32_t cluster_count, sim::Rng rng,
                       std::uint32_t store_count) {
  if (spec.horizon <= 0) return;
  // Each process walks its own exponential arrival sequence with a forked
  // child generator; fixed salts keep the processes independent of each
  // other and of the caller's stream.
  const auto arrivals = [&](sim::Rng& r, sim::Duration mtbf,
                            auto&& make_event) {
    if (mtbf <= 0) return;
    sim::Time t = 0;
    for (;;) {
      t += r.exponential_duration(mtbf);
      if (t > spec.horizon) break;
      make_event(r, t);
    }
  };

  sim::Rng crash_rng = rng.fork(0xC4A5);
  arrivals(crash_rng, spec.node_crash_mtbf, [&](sim::Rng& r, sim::Time t) {
    if (node_count == 0) return;
    FaultEvent e;
    e.at = t;
    e.kind = FaultKind::kNodeCrash;
    e.node = static_cast<std::uint32_t>(r.below(node_count));
    e.down_for = spec.node_down_for;
    events_.push_back(e);
  });

  sim::Rng link_rng = rng.fork(0x114C);
  arrivals(link_rng, spec.link_down_mtbf, [&](sim::Rng& r, sim::Time t) {
    if (cluster_count < 2) return;
    FaultEvent e;
    e.at = t;
    e.kind = FaultKind::kLinkDown;
    e.cluster_a = static_cast<std::uint32_t>(r.below(cluster_count));
    e.cluster_b = static_cast<std::uint32_t>(r.below(cluster_count - 1));
    if (e.cluster_b >= e.cluster_a) ++e.cluster_b;  // distinct pair
    e.down_for = spec.link_down_for;
    events_.push_back(e);
  });

  sim::Rng disk_rng = rng.fork(0xD15C);
  arrivals(disk_rng, spec.disk_slow_mtbf, [&](sim::Rng&, sim::Time t) {
    FaultEvent e;
    e.at = t;
    e.kind = FaultKind::kDiskSlow;
    e.factor = spec.disk_slow_factor;
    e.down_for = spec.disk_slow_for;
    events_.push_back(e);
  });

  sim::Rng clock_rng = rng.fork(0xC10C);
  arrivals(clock_rng, spec.clock_step_mtbf, [&](sim::Rng& r, sim::Time t) {
    if (node_count == 0) return;
    FaultEvent e;
    e.at = t;
    e.kind = FaultKind::kClockStep;
    e.node = static_cast<std::uint32_t>(r.below(node_count));
    const double max = static_cast<double>(spec.clock_step_max);
    e.clock_step = static_cast<sim::Duration>(r.uniform(-max, max));
    events_.push_back(e);
  });

  sim::Rng corrupt_rng = rng.fork(0xC0DD);
  arrivals(corrupt_rng, spec.store_corrupt_mtbf,
           [&](sim::Rng& r, sim::Time t) {
             if (store_count == 0) return;
             FaultEvent e;
             e.at = t;
             e.kind = FaultKind::kStoreCorrupt;
             e.store = static_cast<std::uint32_t>(r.below(store_count));
             // Bit rot strikes the freshest images: those are the ones a
             // restore will actually read.
             e.nth_newest = static_cast<std::uint32_t>(r.below(3));
             events_.push_back(e);
           });

  sim::Rng tear_rng = rng.fork(0x7EA2);
  arrivals(tear_rng, spec.store_tear_mtbf, [&](sim::Rng& r, sim::Time t) {
    if (store_count == 0) return;
    FaultEvent e;
    e.at = t;
    e.kind = FaultKind::kStoreTear;
    e.store = static_cast<std::uint32_t>(r.below(store_count));
    events_.push_back(e);
  });

  sim::Rng partition_rng = rng.fork(0x9A27);
  arrivals(partition_rng, spec.partition_mtbf, [&](sim::Rng& r, sim::Time t) {
    if (cluster_count < 2) return;
    // Split around a random pivot: one cluster against all the others —
    // the common real-world shape (one site loses its uplink).
    const auto pivot = static_cast<std::uint32_t>(r.below(cluster_count));
    FaultEvent e;
    e.at = t;
    e.kind = FaultKind::kPartition;
    e.group_a.push_back(pivot);
    for (std::uint32_t c = 0; c < cluster_count; ++c) {
      if (c != pivot) e.group_b.push_back(c);
    }
    e.down_for = spec.partition_for;
    events_.push_back(e);
  });

  sim::Rng coord_rng = rng.fork(0xC04D);
  arrivals(coord_rng, spec.coordinator_crash_mtbf,
           [&](sim::Rng&, sim::Time t) {
             FaultEvent e;
             e.at = t;
             e.kind = FaultKind::kCoordinatorCrash;
             e.down_for = spec.coordinator_down_for;
             events_.push_back(e);
           });
}

std::vector<FaultEvent> FaultPlan::schedule() const {
  std::vector<FaultEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

}  // namespace dvc::fault
