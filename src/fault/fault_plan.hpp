#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace dvc::fault {

/// The kinds of failure the injector can visit on a machine room. A node
/// reboot is a crash with a non-zero `down_for`; everything else with a
/// duration lifts itself when the duration elapses.
enum class FaultKind : std::uint8_t {
  kNodeCrash,    ///< fail a physical node (repair after `down_for` if set)
  kLinkDown,     ///< cut the link between two physical clusters
  kLinkDegrade,  ///< add loss and inflate latency between two clusters
  kDiskSlow,     ///< divide the shared store's bandwidth by `factor`
  kClockStep,    ///< step one host's wall clock by `clock_step`
  kStoreCorrupt, ///< silently corrupt a stored object (found at read)
  kStoreTear,    ///< kill a store mid-write: in-flight writes land torn
  kPartition,    ///< cut every link between two groups of clusters
  kCoordinatorCrash,  ///< kill the DVC control plane (reboots after down_for)
};

[[nodiscard]] std::string_view to_string(FaultKind k) noexcept;

/// One scheduled fault. Which fields matter depends on `kind`; unused
/// fields keep their defaults.
struct FaultEvent {
  sim::Time at = 0;
  FaultKind kind = FaultKind::kNodeCrash;
  std::uint32_t node = 0;       ///< crash / clock-step target
  std::uint32_t cluster_a = 0;  ///< link faults: one side
  std::uint32_t cluster_b = 0;  ///< link faults: other side
  /// Link faults: affect only the cluster_a -> cluster_b direction (a
  /// dying transceiver rather than a severed cable).
  bool one_way = false;
  /// Partition: the two sides of the cut. Every (a in group_a, b in
  /// group_b) cluster pair is severed in both directions; links within a
  /// side stay healthy.
  std::vector<std::uint32_t> group_a;
  std::vector<std::uint32_t> group_b;
  /// Crash: time until repair (0 = permanent). Link/disk faults: time
  /// until the fault lifts.
  sim::Duration down_for = 0;
  double loss = 1.0;            ///< degrade: added drop probability
  double latency_factor = 1.0;  ///< degrade: latency multiplier
  double factor = 1.0;          ///< disk slowdown divisor (>= 1)
  sim::Duration clock_step = 0; ///< signed phase step
  /// Store faults: which store to hit (0 = primary, i = replica i-1).
  std::uint32_t store = 0;
  /// Corruption target: the n-th newest object on that store (0 = newest,
  /// i.e. the most recently written checkpoint image).
  std::uint32_t nth_newest = 0;
};

/// Rates for the stochastic half of a plan: independent memoryless
/// (exponential) processes, one per fault class, sampled over a fixed
/// horizon. A process with mtbf 0 is disabled.
struct StochasticFaults {
  sim::Duration horizon = 0;  ///< sampling window (0 disables everything)
  sim::Duration node_crash_mtbf = 0;  ///< mean gap between crashes
  sim::Duration node_down_for = 0;    ///< reboot time (0 = stays dead)
  sim::Duration link_down_mtbf = 0;
  sim::Duration link_down_for = 30 * sim::kSecond;
  sim::Duration disk_slow_mtbf = 0;
  sim::Duration disk_slow_for = 60 * sim::kSecond;
  double disk_slow_factor = 10.0;
  sim::Duration clock_step_mtbf = 0;
  sim::Duration clock_step_max = 500 * sim::kMillisecond;
  /// Silent-corruption process: each arrival flips bits in one of the
  /// few newest objects on a uniformly chosen store.
  sim::Duration store_corrupt_mtbf = 0;
  /// Torn-write process: each arrival kills a uniformly chosen store's
  /// in-flight writes mid-stream (a no-op arrival is counted as skipped).
  sim::Duration store_tear_mtbf = 0;
  /// Partition process: each arrival splits the clusters around a random
  /// pivot (one cluster vs the rest) for `partition_for`.
  sim::Duration partition_mtbf = 0;
  sim::Duration partition_for = 30 * sim::kSecond;
  /// Coordinator-crash process: each arrival kills the control plane,
  /// which reboots after `coordinator_down_for` (0 = stays dead).
  sim::Duration coordinator_crash_mtbf = 0;
  sim::Duration coordinator_down_for = 20 * sim::kSecond;
};

/// A deterministic schedule of faults: explicit scripted events plus
/// pre-sampled stochastic processes. Sampling happens up front with a
/// caller-supplied Rng, so the same seed always yields the same event
/// sequence regardless of what the simulation does in between — the
/// property the soak suite asserts.
class FaultPlan final {
 public:
  /// Appends one explicit event.
  void add(FaultEvent e) { events_.push_back(e); }

  /// Parses a fault script. Entries are separated by ';' or newlines;
  /// each entry is `<time_s> <verb> <args...>` with verbs:
  ///   crash <node> [down_s]                    node crash (reboot if down_s)
  ///   linkdown <clusterA> <clusterB> <for_s>   cut an inter-cluster link
  ///   linkdown <cA>-><cB> <for_s>              one-way cut (A->B only)
  ///   degrade <cA> <cB> <loss> <lat_x> <for_s> lossy/slow inter-cluster link
  ///   degrade <cA>-><cB> <loss> <lat_x> <for_s> one-way degrade
  ///   diskslow <factor> <for_s>                shared-store bandwidth / factor
  ///   clockstep <node> <ms>                    step a host clock (ms, signed)
  ///   corrupt <store> <nth_newest>             silently corrupt an object
  ///   tear <store>                             tear the store's in-flight writes
  ///   partition <a,b|c,d> <for_s>              cut clusters {a,b} off from {c,d}
  ///   coordcrash [down_s]                      kill the DVC control plane
  /// Throws std::invalid_argument on malformed input.
  static FaultPlan parse_script(const std::string& text);

  /// Samples the stochastic processes over `spec.horizon` and appends the
  /// resulting events. Each process forks its own child Rng, so enabling
  /// one process never perturbs another's sequence. `store_count` covers
  /// the primary plus replicas (store faults target one uniformly).
  void sample(const StochasticFaults& spec, std::uint32_t node_count,
              std::uint32_t cluster_count, sim::Rng rng,
              std::uint32_t store_count = 1);

  /// All events ordered by time (ties keep insertion order).
  [[nodiscard]] std::vector<FaultEvent> schedule() const;

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace dvc::fault
