#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "clocksync/ntp.hpp"
#include "fault/fault_plan.hpp"
#include "hw/cluster.hpp"
#include "sim/simulation.hpp"
#include "storage/shared_store.hpp"
#include "telemetry/telemetry.hpp"

namespace dvc::fault {

/// Executes a FaultPlan against a live machine room: schedules every event
/// on the simulation's queue (as daemons, so an armed plan never keeps an
/// otherwise-finished run alive), applies it to the targeted subsystem,
/// and lifts temporary faults when their duration elapses.
///
/// Overlapping faults nest: a link pair stays cut while any kLinkDown is
/// active on it; the store runs at the *worst* active slowdown; a repaired
/// node can be re-crashed. Every injection lands in `fault.*` counters and
/// on the "fault" timeline track.
class FaultInjector final {
 public:
  /// Targets; any pointer may be null, in which case events needing it
  /// are counted as skipped instead of applied.
  struct Hooks {
    hw::Fabric* fabric = nullptr;
    storage::SharedStore* store = nullptr;
    clocksync::ClusterTimeService* time = nullptr;
    /// Replica stores, in ImageManager registration order. Store faults
    /// address store 0 = primary, store i = replicas[i-1]. Disk slowdowns
    /// keep hitting only the primary (the contended staging path).
    std::vector<storage::SharedStore*> replicas;
    /// Kills the DVC control plane; the argument is the time until the
    /// coordinator reboots (0 = stays dead). The coordinator owns its own
    /// reboot, so kCoordinatorCrash events have no lift here.
    std::function<void(sim::Duration)> coordinator_crash;
  };

  FaultInjector(sim::Simulation& sim, Hooks hooks,
                telemetry::MetricsRegistry* metrics = nullptr);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every event of `plan`. May be called more than once; plans
  /// accumulate.
  void arm(const FaultPlan& plan);

  [[nodiscard]] std::uint64_t injected_total() const noexcept {
    return injected_total_;
  }
  [[nodiscard]] std::uint64_t injected(FaultKind k) const noexcept {
    return injected_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t lifted_total() const noexcept {
    return lifted_total_;
  }
  /// Events that could not be applied (missing hook, bad target id,
  /// crash of an already-dead node).
  [[nodiscard]] std::uint64_t skipped_total() const noexcept {
    return skipped_total_;
  }

 private:
  /// Fault state of one *directed* cluster edge. A symmetric fault bumps
  /// both directions; a one-way fault bumps only its own.
  struct PairState {
    int down_depth = 0;
    /// Active degrade parameters, newest last (newest wins while no cut
    /// is active).
    std::vector<std::pair<double, double>> degrades;  ///< (loss, lat_factor)
  };

  void apply(const FaultEvent& e);
  void lift(const FaultEvent& e);
  void skip(const FaultEvent& e);
  void refresh_pair(std::uint64_t key);
  void refresh_disk();
  /// Invokes fn(directed_key) for the event's A->B edge and, unless the
  /// event is one-way, for B->A as well.
  template <typename Fn>
  void for_each_direction(const FaultEvent& e, Fn&& fn) {
    fn(directed_key(e.cluster_a, e.cluster_b));
    if (!e.one_way) fn(directed_key(e.cluster_b, e.cluster_a));
  }
  /// Resolves a store-fault target index to a store (null = bad index).
  [[nodiscard]] storage::SharedStore* target_store(std::uint32_t i) const;
  [[nodiscard]] static std::uint64_t directed_key(std::uint32_t from,
                                                  std::uint32_t to) noexcept;

  sim::Simulation* sim_;
  Hooks hooks_;
  telemetry::MetricsRegistry* metrics_;
  std::map<std::uint64_t, PairState> pairs_;
  std::map<double, int> disk_factors_;  ///< active slowdown factor -> depth
  double disk_write_base_ = 0.0;
  double disk_read_base_ = 0.0;
  std::uint64_t injected_total_ = 0;
  std::uint64_t lifted_total_ = 0;
  std::uint64_t skipped_total_ = 0;
  std::array<std::uint64_t, 9> injected_{};
};

}  // namespace dvc::fault
