#include "fault/fault_injector.hpp"

#include <string>

namespace dvc::fault {

namespace {
constexpr std::string_view kTrack = "fault";

std::string counter_name(const char* stem, FaultKind k) {
  return std::string(stem) + "." + std::string(to_string(k));
}
}  // namespace

FaultInjector::FaultInjector(sim::Simulation& sim, Hooks hooks,
                             telemetry::MetricsRegistry* metrics)
    : sim_(&sim), hooks_(hooks), metrics_(metrics) {
  if (hooks_.store != nullptr) {
    disk_write_base_ = hooks_.store->write_pool().capacity_bps();
    disk_read_base_ = hooks_.store->read_pool().capacity_bps();
  }
}

void FaultInjector::arm(const FaultPlan& plan) {
  for (const FaultEvent& e : plan.schedule()) {
    // Daemon events: a fault schedule must not keep a finished job alive.
    sim_->schedule_daemon_at(e.at, [this, e] { apply(e); });
  }
}

std::uint64_t FaultInjector::directed_key(std::uint32_t from,
                                          std::uint32_t to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

void FaultInjector::skip(const FaultEvent& e) {
  ++skipped_total_;
  telemetry::count(metrics_, "fault.skipped");
  telemetry::count(metrics_, counter_name("fault.skipped", e.kind));
}

void FaultInjector::apply(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kNodeCrash: {
      if (hooks_.fabric == nullptr ||
          e.node >= hooks_.fabric->node_count() ||
          hooks_.fabric->node(e.node).failed()) {
        skip(e);
        return;
      }
      hooks_.fabric->fail_node(e.node);
      if (e.down_for > 0) {
        sim_->schedule_daemon_after(e.down_for, [this, e] { lift(e); });
      }
      break;
    }
    case FaultKind::kLinkDown: {
      if (hooks_.fabric == nullptr || e.cluster_a == e.cluster_b) {
        skip(e);
        return;
      }
      for_each_direction(e, [this](std::uint64_t key) {
        ++pairs_[key].down_depth;
        refresh_pair(key);
      });
      sim_->schedule_daemon_after(e.down_for, [this, e] { lift(e); });
      break;
    }
    case FaultKind::kLinkDegrade: {
      if (hooks_.fabric == nullptr || e.cluster_a == e.cluster_b) {
        skip(e);
        return;
      }
      for_each_direction(e, [this, &e](std::uint64_t key) {
        pairs_[key].degrades.emplace_back(e.loss, e.latency_factor);
        refresh_pair(key);
      });
      sim_->schedule_daemon_after(e.down_for, [this, e] { lift(e); });
      break;
    }
    case FaultKind::kPartition: {
      if (hooks_.fabric == nullptr || e.group_a.empty() ||
          e.group_b.empty()) {
        skip(e);
        return;
      }
      // Sever every cross-group edge in both directions; links within a
      // side are untouched. Nests with plain link faults on the same pair.
      for (const std::uint32_t a : e.group_a) {
        for (const std::uint32_t b : e.group_b) {
          for (const std::uint64_t key :
               {directed_key(a, b), directed_key(b, a)}) {
            ++pairs_[key].down_depth;
            refresh_pair(key);
          }
        }
      }
      sim_->schedule_daemon_after(e.down_for, [this, e] { lift(e); });
      break;
    }
    case FaultKind::kCoordinatorCrash: {
      if (!hooks_.coordinator_crash) {
        skip(e);
        return;
      }
      hooks_.coordinator_crash(e.down_for);
      break;  // the coordinator scheduling its own reboot is the "lift"
    }
    case FaultKind::kDiskSlow: {
      if (hooks_.store == nullptr || e.factor < 1.0) {
        skip(e);
        return;
      }
      ++disk_factors_[e.factor];
      refresh_disk();
      sim_->schedule_daemon_after(e.down_for, [this, e] { lift(e); });
      break;
    }
    case FaultKind::kClockStep: {
      if (hooks_.time == nullptr || e.node >= hooks_.time->size()) {
        skip(e);
        return;
      }
      hooks_.time->clock(e.node).apply_correction(e.clock_step);
      break;
    }
    case FaultKind::kStoreCorrupt: {
      storage::SharedStore* st = target_store(e.store);
      if (st == nullptr) {
        skip(e);
        return;
      }
      const storage::ObjectId target = st->nth_newest_object(e.nth_newest);
      if (target == storage::kInvalidObject ||
          !st->corrupt_object(target)) {
        skip(e);  // store empty, or the victim is already torn
        return;
      }
      break;  // permanent: bit rot never lifts itself
    }
    case FaultKind::kStoreTear: {
      storage::SharedStore* st = target_store(e.store);
      if (st == nullptr || st->tear_inflight_writes() == 0) {
        skip(e);  // nothing mid-write to tear — the store was idle
        return;
      }
      break;  // permanent: the partial objects stay until GC'd
    }
  }
  ++injected_total_;
  ++injected_[static_cast<std::size_t>(e.kind)];
  telemetry::count(metrics_, "fault.injected");
  telemetry::count(metrics_, counter_name("fault.injected", e.kind));
  telemetry::instant(metrics_, sim_->now(), kTrack, to_string(e.kind));
}

void FaultInjector::lift(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kNodeCrash:
      if (hooks_.fabric != nullptr && e.node < hooks_.fabric->node_count() &&
          hooks_.fabric->node(e.node).failed()) {
        hooks_.fabric->repair_node(e.node);
      }
      break;
    case FaultKind::kLinkDown: {
      for_each_direction(e, [this](std::uint64_t key) {
        auto it = pairs_.find(key);
        if (it != pairs_.end() && it->second.down_depth > 0) {
          --it->second.down_depth;
          refresh_pair(key);
        }
      });
      break;
    }
    case FaultKind::kLinkDegrade: {
      for_each_direction(e, [this, &e](std::uint64_t key) {
        auto it = pairs_.find(key);
        if (it != pairs_.end()) {
          auto& ds = it->second.degrades;
          for (auto d = ds.begin(); d != ds.end(); ++d) {
            if (d->first == e.loss && d->second == e.latency_factor) {
              ds.erase(d);
              break;
            }
          }
          refresh_pair(key);
        }
      });
      break;
    }
    case FaultKind::kPartition: {
      for (const std::uint32_t a : e.group_a) {
        for (const std::uint32_t b : e.group_b) {
          for (const std::uint64_t key :
               {directed_key(a, b), directed_key(b, a)}) {
            auto it = pairs_.find(key);
            if (it != pairs_.end() && it->second.down_depth > 0) {
              --it->second.down_depth;
              refresh_pair(key);
            }
          }
        }
      }
      break;
    }
    case FaultKind::kDiskSlow: {
      auto it = disk_factors_.find(e.factor);
      if (it != disk_factors_.end() && --it->second == 0) {
        disk_factors_.erase(it);
      }
      refresh_disk();
      break;
    }
    case FaultKind::kClockStep:
    case FaultKind::kStoreCorrupt:
    case FaultKind::kStoreTear:
    case FaultKind::kCoordinatorCrash:
      return;  // instantaneous, permanent, or self-lifting: nothing here
  }
  ++lifted_total_;
  telemetry::count(metrics_, "fault.lifted");
  telemetry::count(metrics_, counter_name("fault.lifted", e.kind));
  telemetry::instant(metrics_, sim_->now(), kTrack,
                     std::string(to_string(e.kind)) + "_lifted");
}

void FaultInjector::refresh_pair(std::uint64_t key) {
  auto it = pairs_.find(key);
  if (it == pairs_.end()) return;
  const auto from = static_cast<std::uint32_t>(key >> 32);
  const auto to = static_cast<std::uint32_t>(key & 0xffffffffu);
  net::ClusterLinkModel& links = hooks_.fabric->links();
  const PairState& st = it->second;
  if (st.down_depth > 0) {
    links.set_directed_override(from, to, net::ClusterLinkModel::PairOverride{
                                              /*cut=*/true, 0.0, 1.0});
  } else if (!st.degrades.empty()) {
    const auto& [loss, lat] = st.degrades.back();
    links.set_directed_override(
        from, to, net::ClusterLinkModel::PairOverride{false, loss, lat});
  } else {
    links.clear_directed_override(from, to);
    pairs_.erase(it);
  }
}

storage::SharedStore* FaultInjector::target_store(std::uint32_t i) const {
  if (i == 0) return hooks_.store;
  if (i - 1 < hooks_.replicas.size()) return hooks_.replicas[i - 1];
  return nullptr;
}

void FaultInjector::refresh_disk() {
  if (hooks_.store == nullptr) return;
  // Concurrent slowdowns do not stack multiplicatively; the store runs at
  // the worst (largest) active factor, like a degraded RAID rebuilding.
  const double factor =
      disk_factors_.empty() ? 1.0 : disk_factors_.rbegin()->first;
  hooks_.store->write_pool().set_capacity(disk_write_base_ / factor);
  hooks_.store->read_pool().set_capacity(disk_read_base_ / factor);
}

}  // namespace dvc::fault
