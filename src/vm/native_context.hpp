#pragma once

#include <map>

#include "hw/cluster.hpp"
#include "sim/simulation.hpp"
#include "vm/execution_context.hpp"

namespace dvc::vm {

/// Application execution directly on a physical node — the unvirtualised
/// baseline for the overhead experiments (T3). No para-virt tax, no freeze
/// capability: a node failure simply destroys the work.
class NativeContext final : public ExecutionContext {
 public:
  NativeContext(sim::Simulation& sim, hw::Fabric& fabric, hw::NodeId node)
      : sim_(&sim), fabric_(&fabric), node_(node) {}

  [[nodiscard]] net::HostId host() const override {
    return fabric_->node(node_).host();
  }
  [[nodiscard]] double flops() const override {
    return fabric_->node(node_).spec().flops;
  }

  GuestTimerId schedule(sim::Duration delay,
                        std::function<void()> fn) override {
    const GuestTimerId id = next_id_++;
    const sim::EventId ev =
        sim_->schedule_after(delay, [this, id, fn = std::move(fn)] {
          pending_.erase(id);
          fn();
        });
    pending_.emplace(id, Pending{ev, sim_->now() + delay});
    return id;
  }

  bool cancel(GuestTimerId id) override {
    const auto it = pending_.find(id);
    if (it == pending_.end()) return false;
    sim_->cancel(it->second.event);
    pending_.erase(it);
    return true;
  }

  [[nodiscard]] sim::Duration remaining(GuestTimerId id) const override {
    const auto it = pending_.find(id);
    if (it == pending_.end()) return 0;
    const sim::Duration rem = it->second.due_at - sim_->now();
    return rem < 0 ? 0 : rem;
  }

  [[nodiscard]] sim::Time wall_now() const override { return sim_->now(); }

  [[nodiscard]] bool running() const override {
    return !fabric_->node(node_).failed();
  }

 private:
  struct Pending {
    sim::EventId event;
    sim::Time due_at;
  };

  sim::Simulation* sim_;
  hw::Fabric* fabric_;
  hw::NodeId node_;
  GuestTimerId next_id_ = 1;
  std::map<GuestTimerId, Pending> pending_;
};

}  // namespace dvc::vm
