#pragma once

#include <cstdint>
#include <functional>

#include "net/network.hpp"
#include "sim/time.hpp"

namespace dvc::vm {

/// Identifier of a guest-progress timer (see ExecutionContext::schedule).
using GuestTimerId = std::uint64_t;

inline constexpr GuestTimerId kInvalidGuestTimer = 0;

/// Where application code runs: either directly on a physical node (native
/// baseline) or inside a virtual machine. The two differ in effective
/// compute rate (para-virt tax), in whether timers can be frozen by a
/// hypervisor pause, and in what the wall clock reports across a
/// save/restore gap.
class ExecutionContext {
 public:
  virtual ~ExecutionContext() = default;

  /// Network attachment point of this context (virtual or physical NIC).
  [[nodiscard]] virtual net::HostId host() const = 0;

  /// Effective sustained compute rate available to the application.
  [[nodiscard]] virtual double flops() const = 0;

  /// Schedules `fn` after `delay` of *guest progress* — time only advances
  /// while the context is actually running; a hypervisor pause freezes it.
  virtual GuestTimerId schedule(sim::Duration delay,
                                std::function<void()> fn) = 0;

  /// Cancels a pending guest timer; returns true if it had not fired.
  virtual bool cancel(GuestTimerId id) = 0;

  /// Remaining guest progress until a pending timer fires (0 if unknown).
  [[nodiscard]] virtual sim::Duration remaining(GuestTimerId id) const = 0;

  /// What the application's gettimeofday() reports. For a native context
  /// or a non-time-virtualised guest this is true time — so it jumps
  /// across a save/restore gap, inflating the app's self-reported runtime
  /// (the paper's HPL observation). A time-virtualised guest hides pauses.
  [[nodiscard]] virtual sim::Time wall_now() const = 0;

  /// True while the context can execute (not paused/saved/failed).
  [[nodiscard]] virtual bool running() const = 0;
};

}  // namespace dvc::vm
