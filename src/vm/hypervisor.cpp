#include "vm/hypervisor.hpp"

#include <stdexcept>
#include <utility>

namespace dvc::vm {

Hypervisor::Hypervisor(sim::Simulation& sim, hw::Fabric& fabric,
                       hw::NodeId node, Config cfg, sim::Rng rng)
    : sim_(&sim),
      fabric_(&fabric),
      node_(node),
      cfg_(cfg),
      rng_(rng),
      track_("vm/node" + std::to_string(node)) {}

bool Hypervisor::node_failed() const { return fabric_->node(node_).failed(); }

sim::Duration Hypervisor::cmd_latency() {
  return rng_.exponential_duration(cfg_.cmd_latency_mean);
}

void Hypervisor::boot_domain(VirtualMachine& vm,
                             std::function<void()> on_booted) {
  if (node_failed()) return;
  vm.place_on(fabric_->node(node_));
  residents_.insert(&vm);
  const sim::Time begin = sim_->now();
  const auto span = telemetry::begin_span(metrics_, begin, track_, "boot");
  sim_->schedule_after(cfg_.boot_time,
                       [this, &vm, begin, span, cb = std::move(on_booted)] {
                         telemetry::end_span(metrics_, span, sim_->now());
                         if (node_failed() ||
                             vm.state() == DomainState::kDead) {
                           return;
                         }
                         vm.resume();
                         telemetry::count(metrics_, "vm.hypervisor.boots");
                         telemetry::observe(
                             metrics_, "vm.hypervisor.boot_s",
                             sim::to_seconds(sim_->now() - begin));
                         if (cb) cb();
                       });
}

void Hypervisor::finish_save(std::uint64_t op_id,
                             const std::shared_ptr<SaveOp>& op, bool ok,
                             std::any state) {
  inflight_saves_.erase(op_id);
  if (op->finished) return;
  op->finished = true;
  telemetry::end_span(metrics_, op->span, sim_->now());
  if (!ok) telemetry::count(metrics_, "vm.hypervisor.save_failures");
  if (op->cb) op->cb(ok, std::move(state));
}

void Hypervisor::save_domain(VirtualMachine& vm,
                             storage::ImageManager& images,
                             storage::CheckpointSetId set,
                             std::uint64_t member,
                             std::function<void(bool, std::any)> on_durable,
                             bool incremental, std::uint64_t epoch) {
  const sim::Time begin = sim_->now();
  auto op = std::make_shared<SaveOp>();
  op->cb = std::move(on_durable);
  op->span = telemetry::begin_span(metrics_, begin, track_, "save");
  const std::uint64_t op_id = next_save_op_++;
  if (cfg_.abort_saves_on_failure) inflight_saves_.emplace(op_id, op);
  sim_->schedule_after(cmd_latency(), [this, &vm, &images, set, member,
                                       incremental, epoch, begin, op,
                                       op_id] {
    if (op->finished) return;  // aborted by node death
    if (node_failed() || vm.state() == DomainState::kDead) {
      finish_save(op_id, op, false, std::any{});
      return;
    }
    // Fence before the guest freezes: a save ordered by a deposed
    // coordinator must not even pause the domain, let alone write.
    if (fenced(epoch)) {
      finish_save(op_id, op, false, std::any{});
      return;
    }
    vm.pause();
    // The guest is frozen: image its software state now. Everything the
    // snapshot sees (application position, TCP stacks) is exactly what a
    // byte copy of guest memory would contain.
    std::any app_state;
    if (vm.guest_software() != nullptr) {
      app_state = vm.guest_software()->snapshot_state();
    }
    // Full image, or just the pages dirtied since the last one.
    constexpr std::uint64_t kDirtyMapOverhead = 4ull << 20;
    const std::uint64_t image_bytes =
        (incremental && vm.has_image_baseline())
            ? std::min(vm.config().ram_bytes,
                       vm.dirty_bytes_since_last_image() +
                           kDirtyMapOverhead)
            : vm.config().ram_bytes;
    sim_->schedule_after(
        cfg_.save_overhead,
        [this, &vm, &images, set, member, image_bytes, epoch, begin, op,
         op_id, state = std::move(app_state)] {
          if (op->finished) return;
          if (node_failed() || vm.state() == DomainState::kDead) {
            finish_save(op_id, op, false, std::any{});
            return;
          }
          // The epoch may have moved while the device quiesce ran; the
          // image manager fences the actual write.
          if (fenced(epoch)) {
            finish_save(op_id, op, false, std::any{});
            return;
          }
          images.add_member(
              set, member, image_bytes,
              [this, &vm, image_bytes, begin, op, op_id,
               state = std::move(state)] {
                if (op->finished) return;
                if (vm.state() == DomainState::kDead) {
                  finish_save(op_id, op, false, std::any{});
                  return;
                }
                vm.mark_saved();
                vm.mark_imaged();
                ++saves_completed_;
                telemetry::count(metrics_, "vm.hypervisor.saves");
                telemetry::count(metrics_, "vm.hypervisor.bytes_saved",
                                 image_bytes);
                telemetry::observe(metrics_, "vm.hypervisor.save_s",
                                   sim::to_seconds(sim_->now() - begin));
                finish_save(op_id, op, true, std::move(state));
              },
              epoch);
        });
  });
}

void Hypervisor::resume_domain(VirtualMachine& vm) {
  if (node_failed() || vm.state() == DomainState::kDead) return;
  vm.resume();
}

void Hypervisor::restore_domain(VirtualMachine& vm,
                                storage::ImageManager& images,
                                storage::CheckpointSetId set,
                                std::uint64_t member, std::any app_state,
                                std::function<void(bool)> on_done,
                                std::uint64_t epoch) {
  if (fenced(epoch)) {
    if (on_done) on_done(false);
    return;
  }
  const storage::CheckpointSet* cs = images.find_set(set);
  if (cs == nullptr || !cs->sealed) {
    if (on_done) on_done(false);
    return;
  }
  const storage::MemberImage* image = nullptr;
  for (const auto& m : cs->members) {
    if (m.member == member) {
      image = &m;
      break;
    }
  }
  if (image == nullptr) {
    if (on_done) on_done(false);
    return;
  }
  vm.place_on(fabric_->node(node_));
  residents_.insert(&vm);
  const sim::Time begin = sim_->now();
  const auto span = telemetry::begin_span(metrics_, begin, track_, "restore");
  const std::uint64_t image_bytes = image->bytes;
  // Verified read with replica failover: the image manager tries every
  // copy and reports false only when none verifies (the set is then
  // marked damaged, which recovery uses to fall back a generation).
  images.read_member(
      set, member,
      [this, &vm, begin, span, image_bytes, state = std::move(app_state),
       cb = std::move(on_done)](bool ok) mutable {
        if (!ok || node_failed()) {
          telemetry::count(metrics_, "vm.hypervisor.restore_failures");
          telemetry::end_span(metrics_, span, sim_->now());
          if (cb) cb(false);
          return;
        }
        sim_->schedule_after(cfg_.restore_overhead,
                             [this, &vm, begin, span, image_bytes,
                              state = std::move(state),
                              cb = std::move(cb)] {
                               telemetry::end_span(metrics_, span,
                                                   sim_->now());
                               if (node_failed()) {
                                 telemetry::count(
                                     metrics_,
                                     "vm.hypervisor.restore_failures");
                                 if (cb) cb(false);
                                 return;
                               }
                               vm.rollback_and_resume(state);
                               ++restores_completed_;
                               telemetry::count(metrics_,
                                                "vm.hypervisor.restores");
                               telemetry::count(
                                   metrics_,
                                   "vm.hypervisor.bytes_restored",
                                   image_bytes);
                               telemetry::observe(
                                   metrics_, "vm.hypervisor.restore_s",
                                   sim::to_seconds(sim_->now() - begin));
                               if (cb) cb(true);
                             });
      });
}

void Hypervisor::evict(VirtualMachine& vm) {
  if (vm.state() == DomainState::kRunning) {
    throw std::logic_error("cannot evict a running domain");
  }
  residents_.erase(&vm);
}

void Hypervisor::adopt(VirtualMachine& vm) {
  if (vm.state() == DomainState::kRunning) {
    throw std::logic_error("cannot adopt a running domain");
  }
  vm.place_on(fabric_->node(node_));
  residents_.insert(&vm);
}

void Hypervisor::destroy_domain(VirtualMachine& vm) {
  residents_.erase(&vm);
  vm.kill();
}

void Hypervisor::on_node_failure() {
  // Everything resident dies with the node; saved images in the shared
  // store survive (that is the whole point of DVC recovery).
  const auto residents = residents_;
  residents_.clear();
  if (!residents.empty()) {
    telemetry::count(metrics_, "vm.hypervisor.domains_killed",
                     residents.size());
    telemetry::instant(metrics_, sim_->now(), track_, "node_failure");
  }
  for (VirtualMachine* vm : residents) vm->kill();
  // Report every in-flight save as failed right now instead of waiting
  // for its next stage boundary; the coordinator learns of the dead round
  // immediately and can retry or trigger recovery.
  if (!inflight_saves_.empty()) {
    const auto ops = std::move(inflight_saves_);
    inflight_saves_.clear();
    for (const auto& [id, op] : ops) {
      if (op->finished) continue;
      op->finished = true;
      ++saves_aborted_;
      telemetry::count(metrics_, "vm.hypervisor.saves_aborted");
      telemetry::count(metrics_, "vm.hypervisor.save_failures");
      telemetry::end_span(metrics_, op->span, sim_->now());
      if (op->cb) op->cb(false, std::any{});
    }
  }
}

HypervisorFleet::HypervisorFleet(sim::Simulation& sim, hw::Fabric& fabric,
                                 Hypervisor::Config cfg, sim::Rng rng) {
  fleet_.reserve(fabric.node_count());
  for (hw::NodeId n = 0; n < fabric.node_count(); ++n) {
    fleet_.push_back(std::make_unique<Hypervisor>(
        sim, fabric, n, cfg, rng.fork(0x4859 + n)));
  }
  fabric.subscribe_failures([this](hw::NodeId n) {
    fleet_.at(n)->on_node_failure();
  });
}

}  // namespace dvc::vm
