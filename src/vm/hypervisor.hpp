#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hw/cluster.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "storage/image_manager.hpp"
#include "telemetry/telemetry.hpp"
#include "vm/virtual_machine.hpp"

namespace dvc::vm {

/// The per-node virtual machine monitor (Xen dom0 stand-in). It hosts
/// domains, executes save/restore against the shared store, and kills its
/// residents when the underlying node dies.
class Hypervisor final {
 public:
  struct Config {
    sim::Duration boot_time = 15 * sim::kSecond;
    sim::Duration shutdown_time = 2 * sim::kSecond;
    /// Fixed device-quiesce cost paid before guest memory starts streaming.
    sim::Duration save_overhead = 200 * sim::kMillisecond;
    sim::Duration restore_overhead = 200 * sim::kMillisecond;
    /// Local `xm save` command-processing latency (exponential mean).
    sim::Duration cmd_latency_mean = 2 * sim::kMillisecond;
    /// Fail in-flight save operations the instant this node dies, instead
    /// of letting each discover the failure at its next stage boundary
    /// (or, worst case, hang inside a store transfer that no longer has a
    /// client). Off by default: the happy-path benches never notice, and
    /// coordinators relying on prompt failure reports opt in.
    bool abort_saves_on_failure = false;
  };

  Hypervisor(sim::Simulation& sim, hw::Fabric& fabric, hw::NodeId node,
             Config cfg, sim::Rng rng);

  Hypervisor(const Hypervisor&) = delete;
  Hypervisor& operator=(const Hypervisor&) = delete;

  [[nodiscard]] hw::NodeId node() const noexcept { return node_; }
  [[nodiscard]] bool node_failed() const;
  [[nodiscard]] std::size_t resident_count() const noexcept {
    return residents_.size();
  }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// Places and boots a domain on this node. `on_booted` fires when the
  /// guest is running (or never, if the node dies first).
  void boot_domain(VirtualMachine& vm, std::function<void()> on_booted);

  /// Pauses, images, and seals one domain into a checkpoint set. The guest
  /// freezes after the local command latency; its software state is
  /// captured at that instant (that is what imaging guest memory means).
  /// `on_durable(ok, app_state)` fires when the image is in the store (the
  /// domain is then in state kSaved). The caller decides when to resume.
  ///
  /// With `incremental` set (and a prior full image), only the memory the
  /// guest dirtied since its last image is written — much cheaper, but a
  /// restore must stage the whole chain back to the last full image.
  ///
  /// `epoch` is the issuing coordinator's fencing token: a save stamped
  /// with a stale epoch is rejected before the guest is paused (counted in
  /// `vm.hypervisor.fenced_commands`) and reports failure.
  void save_domain(VirtualMachine& vm, storage::ImageManager& images,
                   storage::CheckpointSetId set, std::uint64_t member,
                   std::function<void(bool, std::any)> on_durable,
                   bool incremental = false,
                   std::uint64_t epoch = storage::kUnfencedEpoch);

  /// Thaws a paused or saved domain.
  void resume_domain(VirtualMachine& vm);

  /// Adopts a domain previously checkpointed elsewhere: stages its image
  /// from the store, rolls the guest back to `app_state`, and resumes it on
  /// this node. `on_done(ok)` reports staging integrity.
  void restore_domain(VirtualMachine& vm, storage::ImageManager& images,
                      storage::CheckpointSetId set, std::uint64_t member,
                      std::any app_state, std::function<void(bool)> on_done,
                      std::uint64_t epoch = storage::kUnfencedEpoch);

  /// Removes a domain from this node without destroying it (migration
  /// hand-off); the domain must be paused, saved, or dead.
  void evict(VirtualMachine& vm);

  /// Adopts a frozen in-memory domain from another hypervisor (the
  /// receiving end of a live migration — no image staging involved).
  void adopt(VirtualMachine& vm);

  /// Destroys a domain (graceful teardown at job end).
  void destroy_domain(VirtualMachine& vm);

  [[nodiscard]] std::uint64_t saves_completed() const noexcept {
    return saves_completed_;
  }
  [[nodiscard]] std::uint64_t restores_completed() const noexcept {
    return restores_completed_;
  }
  /// In-flight saves cut short by node death (only ever non-zero with
  /// Config::abort_saves_on_failure).
  [[nodiscard]] std::uint64_t saves_aborted() const noexcept {
    return saves_aborted_;
  }

  /// Kills every resident domain; wired to the fabric's failure feed.
  void on_node_failure();

  /// Attaches an optional metrics registry. Save/restore/boot durations
  /// land in `vm.hypervisor.*` histograms and each operation appears as a
  /// span on the `vm/node<N>` timeline track.
  void set_metrics(telemetry::MetricsRegistry* m) noexcept { metrics_ = m; }

  /// Attaches the coordinator-epoch fence (null = unfenced).
  void set_fence(const storage::EpochFence* fence) noexcept {
    fence_ = fence;
  }

 private:
  /// True (and counted) when a command stamped with `epoch` comes from a
  /// deposed coordinator and must be rejected.
  [[nodiscard]] bool fenced(std::uint64_t epoch) {
    if (fence_ == nullptr || fence_->admits(epoch)) return false;
    telemetry::count(metrics_, "vm.hypervisor.fenced_commands");
    return true;
  }

  /// Shared state of one in-flight save: stage continuations consult
  /// `finished` so an abort delivered from on_node_failure() wins the race
  /// against whatever stage was pending.
  struct SaveOp {
    bool finished = false;
    std::function<void(bool, std::any)> cb;
    telemetry::MetricsRegistry::SpanId span =
        telemetry::MetricsRegistry::kInvalidSpan;
  };

  [[nodiscard]] sim::Duration cmd_latency();
  void finish_save(std::uint64_t op_id, const std::shared_ptr<SaveOp>& op,
                   bool ok, std::any state);

  sim::Simulation* sim_;
  hw::Fabric* fabric_;
  hw::NodeId node_;
  Config cfg_;
  sim::Rng rng_;
  std::unordered_set<VirtualMachine*> residents_;
  std::map<std::uint64_t, std::shared_ptr<SaveOp>> inflight_saves_;
  std::uint64_t next_save_op_ = 1;
  std::uint64_t saves_completed_ = 0;
  std::uint64_t restores_completed_ = 0;
  std::uint64_t saves_aborted_ = 0;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  const storage::EpochFence* fence_ = nullptr;
  std::string track_;  ///< timeline track name ("vm/node<N>")
};

/// One hypervisor per node of a fabric, with failure wiring installed.
class HypervisorFleet final {
 public:
  HypervisorFleet(sim::Simulation& sim, hw::Fabric& fabric,
                  Hypervisor::Config cfg, sim::Rng rng);

  [[nodiscard]] Hypervisor& on_node(hw::NodeId node) {
    return *fleet_.at(node);
  }
  [[nodiscard]] std::size_t size() const noexcept { return fleet_.size(); }

  /// Forwards the registry to every node's hypervisor.
  void set_metrics(telemetry::MetricsRegistry* m) noexcept {
    for (auto& h : fleet_) h->set_metrics(m);
  }

  /// Forwards the coordinator-epoch fence to every node's hypervisor.
  void set_fence(const storage::EpochFence* fence) noexcept {
    for (auto& h : fleet_) h->set_fence(fence);
  }

 private:
  std::vector<std::unique_ptr<Hypervisor>> fleet_;
};

}  // namespace dvc::vm
