#include "vm/virtual_machine.hpp"

#include <utility>

namespace dvc::vm {

VirtualMachine::VirtualMachine(sim::Simulation& sim, net::Network& net,
                               VmId id, GuestConfig cfg)
    : sim_(&sim),
      net_(&net),
      id_(id),
      cfg_(std::move(cfg)),
      vnic_(net.new_host()),
      pause_started_(sim.now()) {
  // Domains are created frozen; boot (Hypervisor::boot_domain) resumes
  // them, so the vNIC starts dark.
  net_->set_host_up(vnic_, false);
}

VirtualMachine::~VirtualMachine() { drop_timers(); }

GuestTimerId VirtualMachine::schedule(sim::Duration delay,
                                      std::function<void()> fn) {
  if (state_ == DomainState::kDead) return kInvalidGuestTimer;
  const GuestTimerId id = next_timer_++;
  GuestTimer t;
  t.remaining = delay < 0 ? 0 : delay;
  t.fn = std::move(fn);
  if (state_ == DomainState::kRunning) {
    t.due_at = sim_->now() + t.remaining;
    t.event = sim_->schedule_after(t.remaining, [this, id] {
      auto it = timers_.find(id);
      if (it == timers_.end()) return;
      auto fn = std::move(it->second.fn);
      timers_.erase(it);
      fn();
    });
  } else {
    t.due_at = 0;
    t.event = sim::kInvalidEvent;  // frozen from birth; armed on resume
  }
  timers_.emplace(id, std::move(t));
  return id;
}

bool VirtualMachine::cancel(GuestTimerId id) {
  auto it = timers_.find(id);
  if (it == timers_.end()) return false;
  if (it->second.event != sim::kInvalidEvent) sim_->cancel(it->second.event);
  timers_.erase(it);
  return true;
}

sim::Duration VirtualMachine::remaining(GuestTimerId id) const {
  const auto it = timers_.find(id);
  if (it == timers_.end()) return 0;
  if (it->second.event == sim::kInvalidEvent) return it->second.remaining;
  const sim::Duration rem = it->second.due_at - sim_->now();
  return rem < 0 ? 0 : rem;
}

sim::Time VirtualMachine::wall_now() const {
  // Non-virtualised guests track host time, so a save/restore gap appears
  // as a forward jump in the application's clock (the paper's inflated-HPL
  // effect). Time-virtualised guests subtract all frozen intervals.
  if (!cfg_.virtualize_time) return sim_->now();
  return sim_->now() - total_frozen();
}

sim::Duration VirtualMachine::total_frozen() const noexcept {
  sim::Duration f = frozen_accum_;
  if (state_ != DomainState::kRunning && state_ != DomainState::kDead) {
    f += sim_->now() - pause_started_;
  }
  return f;
}

void VirtualMachine::place_on(const hw::PhysicalNode& node) {
  node_ = node.id();
  flops_ = node.spec().flops * (1.0 - node.spec().virt_overhead);
  // The vNIC rides along: guest traffic must see the tier (and any active
  // link faults) of the cluster the VM currently runs in, not a default.
  net_->link_model().set_cluster(vnic_, node.cluster());
}

void VirtualMachine::pause() {
  if (state_ != DomainState::kRunning) return;
  state_ = DomainState::kPaused;
  pause_started_ = sim_->now();
  ++pauses_;
  net_->set_host_up(vnic_, false);
  freeze_timers();
}

void VirtualMachine::resume() {
  if (state_ != DomainState::kPaused && state_ != DomainState::kSaved) {
    return;
  }
  const sim::Duration gap = sim_->now() - pause_started_;
  frozen_accum_ += gap;
  const bool was_booted = has_run_;
  has_run_ = true;
  state_ = DomainState::kRunning;
  net_->set_host_up(vnic_, true);
  thaw_timers();
  // The watchdog only exists once the guest kernel has run; the initial
  // boot freeze is not a lost timer tick.
  if (was_booted && cfg_.watchdog_enabled && gap > cfg_.watchdog_period) {
    ++watchdog_timeouts_;
    log_kernel("watchdog: BUG: soft lockup - CPU stuck for " +
               std::to_string(sim::to_seconds(gap)) + "s");
    log_kernel("watchdog: timer tick lost across suspend/resume");
  }
}

void VirtualMachine::mark_saved() {
  if (state_ == DomainState::kPaused) state_ = DomainState::kSaved;
}

void VirtualMachine::kill() {
  if (state_ == DomainState::kDead) return;
  if (state_ == DomainState::kRunning) pause_started_ = sim_->now();
  state_ = DomainState::kDead;
  net_->set_host_up(vnic_, false);
  drop_timers();
  if (software_ != nullptr) software_->on_killed();
}

void VirtualMachine::rollback_and_resume(const std::any& app_state) {
  drop_timers();
  has_run_ = true;  // a checkpoint only exists for a guest that has run
  state_ = DomainState::kRunning;
  net_->set_host_up(vnic_, true);
  // The restored incarnation's frozen interval spans from the pause that
  // produced the checkpoint to now; we fold it in so wall_now() semantics
  // stay correct for time-virtualised guests.
  frozen_accum_ += sim_->now() - pause_started_;
  if (cfg_.watchdog_enabled) {
    ++watchdog_timeouts_;
    log_kernel("watchdog: timer tick lost across restore");
  }
  if (software_ != nullptr) software_->restore_state(app_state);
}

std::uint64_t VirtualMachine::dirty_bytes_since_last_image() const {
  if (!imaged_once_) return cfg_.ram_bytes;
  // Dirtying only happens while the guest actually runs.
  const sim::Duration elapsed = sim_->now() - imaged_at_;
  const sim::Duration frozen = total_frozen() - frozen_at_image_;
  const sim::Duration running = elapsed > frozen ? elapsed - frozen : 0;
  const double dirty = cfg_.dirty_rate_bps * sim::to_seconds(running);
  return std::min(cfg_.ram_bytes,
                  static_cast<std::uint64_t>(dirty));
}

void VirtualMachine::mark_imaged() {
  imaged_once_ = true;
  imaged_at_ = sim_->now();
  frozen_at_image_ = total_frozen();
}

void VirtualMachine::log_kernel(std::string msg) {
  ++kernel_messages_total_;
  kernel_log_.push_back(std::move(msg));
  if (kernel_log_.size() > kKernelLogCap) kernel_log_.pop_front();
}

void VirtualMachine::freeze_timers() {
  for (auto& [id, t] : timers_) {
    if (t.event == sim::kInvalidEvent) continue;
    sim_->cancel(t.event);
    t.event = sim::kInvalidEvent;
    t.remaining = t.due_at - sim_->now();
    if (t.remaining < 0) t.remaining = 0;
  }
}

void VirtualMachine::thaw_timers() {
  for (auto& [id, t] : timers_) {
    if (t.event != sim::kInvalidEvent) continue;
    t.due_at = sim_->now() + t.remaining;
    const GuestTimerId tid = id;
    t.event = sim_->schedule_after(t.remaining, [this, tid] {
      auto it = timers_.find(tid);
      if (it == timers_.end()) return;
      auto fn = std::move(it->second.fn);
      timers_.erase(it);
      fn();
    });
  }
}

void VirtualMachine::drop_timers() {
  for (auto& [id, t] : timers_) {
    if (t.event != sim::kInvalidEvent) sim_->cancel(t.event);
  }
  timers_.clear();
}

}  // namespace dvc::vm
