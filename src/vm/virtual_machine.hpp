#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hw/cluster.hpp"
#include "net/network.hpp"
#include "vm/guest_os.hpp"
#include "sim/simulation.hpp"
#include "vm/execution_context.hpp"

namespace dvc::vm {

/// Identifier of a virtual machine (stable across migrations/restores).
using VmId = std::uint64_t;

/// Configuration of a guest environment.
struct GuestConfig {
  std::uint64_t ram_bytes = 1ull << 30;  ///< 1 GiB guest memory
  /// Software watchdog inside the guest kernel: a save/restore gap longer
  /// than this period is reported as a watchdog timeout in the kernel log
  /// (paper §3.2: one report per save/restore, execution unaffected).
  bool watchdog_enabled = true;
  sim::Duration watchdog_period = 10 * sim::kSecond;
  /// Future-work feature: virtualise guest time so pauses are invisible to
  /// the application clock. Off by default to match the paper's testbed.
  bool virtualize_time = false;
  /// Rate at which the running guest dirties its memory — the quantity
  /// iterative pre-copy migration races against.
  double dirty_rate_bps = 10e6;
  std::string os_image = "default-stack";
};

/// Lifecycle of a guest domain.
enum class DomainState : std::uint8_t {
  kRunning,
  kPaused,     ///< frozen by the hypervisor (checkpoint in progress)
  kSaved,      ///< image durable in the store; not executing
  kDead,       ///< lost (host node failed before/without a save)
};

/// Software running inside a guest (an application rank, typically). A
/// whole-guest checkpoint captures its state via snapshot(); a restore from
/// an older checkpoint rolls it back via restore().
class GuestSoftware {
 public:
  virtual ~GuestSoftware() = default;

  /// Captures application state. Called while the VM is paused — exactly
  /// when the hypervisor images guest memory.
  [[nodiscard]] virtual std::any snapshot_state() const = 0;

  /// Rolls application state back to a snapshot and re-schedules pending
  /// work from it. Called after the VM has been restored and resumed.
  virtual void restore_state(const std::any& state) = 0;

  /// The host node died; the in-memory guest (and this software) is gone
  /// until a checkpoint restore resurrects it.
  virtual void on_killed() {}
};

/// A Xen-style para-virtualised guest. The VM owns a virtual NIC whose
/// fabric identity persists across migrations (DVC's virtual network), a
/// set of freezable guest timers, a guest wall clock, and a kernel log.
class VirtualMachine final : public ExecutionContext {
 public:
  VirtualMachine(sim::Simulation& sim, net::Network& net, VmId id,
                 GuestConfig cfg);
  ~VirtualMachine() override;

  VirtualMachine(const VirtualMachine&) = delete;
  VirtualMachine& operator=(const VirtualMachine&) = delete;

  [[nodiscard]] VmId id() const noexcept { return id_; }
  [[nodiscard]] const GuestConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] DomainState state() const noexcept { return state_; }
  [[nodiscard]] hw::NodeId placed_on() const noexcept { return node_; }

  // --- ExecutionContext ----------------------------------------------
  [[nodiscard]] net::HostId host() const noexcept override { return vnic_; }
  [[nodiscard]] double flops() const noexcept override { return flops_; }
  GuestTimerId schedule(sim::Duration delay,
                        std::function<void()> fn) override;
  bool cancel(GuestTimerId id) override;
  [[nodiscard]] sim::Duration remaining(GuestTimerId id) const override;
  [[nodiscard]] sim::Time wall_now() const override;
  [[nodiscard]] bool running() const noexcept override {
    return state_ == DomainState::kRunning;
  }

  // --- guest software -------------------------------------------------
  void set_guest_software(GuestSoftware* sw) noexcept { software_ = sw; }

  /// The in-guest operating system model: process table, memory segments,
  /// file descriptors, sockets (the §2 checkpoint-content accounting).
  [[nodiscard]] GuestOs& os() noexcept { return os_; }
  [[nodiscard]] const GuestOs& os() const noexcept { return os_; }
  [[nodiscard]] GuestSoftware* guest_software() const noexcept {
    return software_;
  }

  // --- hypervisor-facing lifecycle (called via Hypervisor) -------------
  /// Binds the VM to a node (boot or post-migration placement).
  void place_on(const hw::PhysicalNode& node);

  /// Freezes the guest: timers stop, the vNIC goes dark.
  void pause();

  /// Thaws the guest: timers resume; a long gap trips the watchdog and the
  /// (non-virtualised) guest clock jumps forward.
  void resume();

  /// Marks the domain image durable (still frozen).
  void mark_saved();

  /// Destroys the in-memory guest (host node failure).
  void kill();

  /// Rolls the guest back to a checkpoint: application state is restored
  /// via GuestSoftware::restore_state and the domain runs again. Guest
  /// timers from the dead incarnation are discarded; the restored software
  /// re-creates its own.
  void rollback_and_resume(const std::any& app_state);

  // --- guest kernel telemetry -----------------------------------------
  [[nodiscard]] std::uint64_t watchdog_timeouts() const noexcept {
    return watchdog_timeouts_;
  }
  [[nodiscard]] const std::deque<std::string>& kernel_log() const noexcept {
    return kernel_log_;
  }
  [[nodiscard]] std::uint64_t kernel_messages_total() const noexcept {
    return kernel_messages_total_;
  }
  /// Cumulative time spent frozen (pause + saved), i.e. the wall-clock jump
  /// a non-virtualised guest has experienced so far.
  [[nodiscard]] sim::Duration total_frozen() const noexcept;

  [[nodiscard]] std::uint64_t pauses() const noexcept { return pauses_; }

  /// Instant the current/most recent freeze began (LSC skew measurement).
  [[nodiscard]] sim::Time last_pause_started() const noexcept {
    return pause_started_;
  }

  /// Guest memory dirtied since the last image was taken (bounded by the
  /// guest's RAM): what an incremental checkpoint has to write.
  [[nodiscard]] std::uint64_t dirty_bytes_since_last_image() const;

  /// True once at least one full image of this guest exists (incremental
  /// saves are only meaningful on top of one).
  [[nodiscard]] bool has_image_baseline() const noexcept {
    return imaged_once_;
  }

  /// Records that the guest was just imaged (dirty tracking resets).
  void mark_imaged();

 private:
  struct GuestTimer {
    sim::Duration remaining;        ///< valid while frozen
    sim::Time due_at;               ///< valid while running
    sim::EventId event;             ///< armed while running
    std::function<void()> fn;
  };

  void log_kernel(std::string msg);
  void freeze_timers();
  void thaw_timers();
  void drop_timers();

  sim::Simulation* sim_;
  net::Network* net_;
  VmId id_;
  GuestConfig cfg_;
  net::HostId vnic_;
  hw::NodeId node_ = hw::kInvalidNode;
  double flops_ = 0.0;
  DomainState state_ = DomainState::kPaused;  ///< created frozen; boot resumes

  GuestSoftware* software_ = nullptr;
  GuestOs os_;

  GuestTimerId next_timer_ = 1;
  std::map<GuestTimerId, GuestTimer> timers_;

  sim::Time pause_started_ = 0;
  sim::Duration frozen_accum_ = 0;
  bool has_run_ = false;
  bool imaged_once_ = false;
  sim::Time imaged_at_ = 0;
  sim::Duration frozen_at_image_ = 0;
  std::uint64_t pauses_ = 0;
  std::uint64_t watchdog_timeouts_ = 0;
  std::uint64_t kernel_messages_total_ = 0;
  std::deque<std::string> kernel_log_;

  static constexpr std::size_t kKernelLogCap = 4096;
};

}  // namespace dvc::vm
