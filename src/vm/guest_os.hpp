#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dvc::vm {

/// Process identifier inside a guest.
using Pid = std::uint32_t;

inline constexpr Pid kInvalidPid = 0;

/// The paper's §2 argues about checkpoint *content*: "Open files, sockets,
/// memory state, application code, etc. must all be taken into account
/// when saving the state of an application." This is that content, as a
/// small in-guest operating-system model: a process table with memory
/// segments, file descriptors and sockets, plus kernel-side buffers —
/// enough to *measure* what each checkpoint method must write instead of
/// assuming it.
class GuestOs final {
 public:
  enum class SegmentKind : std::uint8_t { kCode, kHeap, kStack, kShared };

  struct MemorySegment {
    SegmentKind kind = SegmentKind::kHeap;
    std::uint64_t bytes = 0;
  };

  struct OpenFile {
    std::string path;
    std::uint64_t buffered_bytes = 0;  ///< page-cache/dirty-buffer share
  };

  struct Socket {
    std::uint32_t peer = 0;
    std::uint64_t send_buffer_bytes = 0;
    std::uint64_t recv_buffer_bytes = 0;
  };

  struct Process {
    Pid pid = kInvalidPid;
    std::string name;
    std::vector<MemorySegment> segments;
    std::vector<OpenFile> files;
    std::vector<Socket> sockets;
  };

  /// Base kernel working set (text, page tables, slab) that exists even
  /// with no processes; part of every whole-guest image.
  explicit GuestOs(std::uint64_t kernel_base_bytes = 64ull << 20)
      : kernel_base_bytes_(kernel_base_bytes) {}

  // ---- process lifecycle -------------------------------------------------

  Pid spawn(std::string name) {
    const Pid pid = next_pid_++;
    Process p;
    p.pid = pid;
    p.name = std::move(name);
    // Every process carries code + stack even before it allocates.
    p.segments.push_back({SegmentKind::kCode, 8ull << 20});
    p.segments.push_back({SegmentKind::kStack, 1ull << 20});
    processes_.emplace(pid, std::move(p));
    return pid;
  }

  bool exit_process(Pid pid) { return processes_.erase(pid) > 0; }

  [[nodiscard]] const Process* find(Pid pid) const {
    const auto it = processes_.find(pid);
    return it == processes_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::size_t process_count() const noexcept {
    return processes_.size();
  }

  // ---- resource registration ---------------------------------------------

  void add_segment(Pid pid, SegmentKind kind, std::uint64_t bytes) {
    processes_.at(pid).segments.push_back({kind, bytes});
  }

  /// Replaces the process's heap with `bytes` (the application's working
  /// set as it grows/shrinks).
  void set_heap(Pid pid, std::uint64_t bytes) {
    Process& p = processes_.at(pid);
    for (MemorySegment& s : p.segments) {
      if (s.kind == SegmentKind::kHeap) {
        s.bytes = bytes;
        return;
      }
    }
    p.segments.push_back({SegmentKind::kHeap, bytes});
  }

  void open_file(Pid pid, std::string path, std::uint64_t buffered) {
    processes_.at(pid).files.push_back({std::move(path), buffered});
  }

  void open_socket(Pid pid, std::uint32_t peer, std::uint64_t send_buf,
                   std::uint64_t recv_buf) {
    processes_.at(pid).sockets.push_back({peer, send_buf, recv_buf});
  }

  // ---- the §2 accounting: what must each method write? --------------------

  /// Application-level: only the data the application knows it needs —
  /// its heap (working set). Code, stacks, files, sockets are all
  /// reconstructed by the restarted program.
  [[nodiscard]] std::uint64_t app_level_bytes(Pid pid) const {
    std::uint64_t b = 0;
    for (const MemorySegment& s : processes_.at(pid).segments) {
      if (s.kind == SegmentKind::kHeap) b += s.bytes;
    }
    return b;
  }

  /// User-level (libckpt-style): "this is much more information to save
  /// ... the library doesn't know which data is necessary" — the whole
  /// address space plus user-visible file state.
  [[nodiscard]] std::uint64_t user_level_bytes(Pid pid) const {
    const Process& p = processes_.at(pid);
    std::uint64_t b = 0;
    for (const MemorySegment& s : p.segments) b += s.bytes;
    for (const OpenFile& f : p.files) b += f.buffered_bytes;
    return b;
  }

  /// Kernel-level (CRAK-style): the user image plus in-kernel state —
  /// socket buffers and per-process kernel bookkeeping.
  [[nodiscard]] std::uint64_t kernel_level_bytes(Pid pid) const {
    const Process& p = processes_.at(pid);
    std::uint64_t b = user_level_bytes(pid);
    for (const Socket& s : p.sockets) {
      b += s.send_buffer_bytes + s.recv_buffer_bytes;
    }
    b += kPerProcessKernelBytes;
    return b;
  }

  /// VM-level (DVC): everything the guest kernel considers in use —
  /// kernel base + every process's kernel-level footprint. (A real `xm
  /// save` writes all of guest RAM; resident_bytes() is the lower bound a
  /// ballooned/compacted save could reach.)
  [[nodiscard]] std::uint64_t resident_bytes() const {
    std::uint64_t b = kernel_base_bytes_;
    for (const auto& [pid, p] : processes_) b += kernel_level_bytes(pid);
    return b;
  }

 private:
  static constexpr std::uint64_t kPerProcessKernelBytes = 4ull << 20;

  std::uint64_t kernel_base_bytes_;
  Pid next_pid_ = 1;
  std::map<Pid, Process> processes_;
};

}  // namespace dvc::vm
