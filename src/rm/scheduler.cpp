#include "rm/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dvc::rm {

Scheduler::Scheduler(sim::Simulation& sim, hw::Fabric& fabric, Config cfg)
    : sim_(&sim), fabric_(&fabric), cfg_(cfg) {
  fabric.subscribe_failures([this](hw::NodeId n) { on_node_failure(n); });
}

JobId Scheduler::submit(JobRequest req) {
  if (req.nodes_requested == 0) {
    throw std::invalid_argument("a job needs at least one node");
  }
  const JobId id = next_id_++;
  JobRecord rec;
  rec.id = id;
  rec.request = std::move(req);
  rec.submitted_at = sim_->now();
  telemetry::count(metrics_, "rm.scheduler.jobs_submitted");

  // Reject jobs that could never run under this configuration (a rigid
  // request bigger than any single cluster on a non-spanning system),
  // instead of head-blocking the FCFS queue forever.
  std::uint32_t max_feasible = 0;
  if (cfg_.allow_spanning) {
    max_feasible = static_cast<std::uint32_t>(fabric_->node_count());
  } else {
    for (hw::ClusterId c = 0; c < fabric_->cluster_count(); ++c) {
      max_feasible = std::max(
          max_feasible,
          static_cast<std::uint32_t>(fabric_->cluster(c).nodes.size()));
    }
  }
  const std::uint32_t floor_nodes =
      cfg_.mold_oversized
          ? (rec.request.min_nodes > 0 ? rec.request.min_nodes : 1)
          : rec.request.nodes_requested;
  if (floor_nodes > max_feasible) {
    rec.state = JobState::kFailed;
    rec.finished_at = sim_->now();
    ++failed_count_;
    telemetry::count(metrics_, "rm.scheduler.jobs_rejected");
    auto [it, inserted] = jobs_.emplace(id, std::move(rec));
    if (on_finish_) on_finish_(it->second);
    return id;
  }

  jobs_.emplace(id, std::move(rec));
  queue_.push_back(id);
  telemetry::gauge_set(metrics_, "rm.scheduler.queue_depth",
                       static_cast<double>(queue_.size()));
  try_schedule();
  return id;
}

void Scheduler::accumulate_busy() {
  const sim::Time now = sim_->now();
  busy_node_seconds_ +=
      sim::to_seconds(now - busy_accum_mark_) * static_cast<double>(
          busy_.size());
  busy_accum_mark_ = now;
}

double Scheduler::busy_node_seconds() const {
  const_cast<Scheduler*>(this)->accumulate_busy();
  return busy_node_seconds_;
}

std::optional<Allocation> Scheduler::find_allocation(
    const JobRequest& req, std::uint32_t nodes) const {
  auto free_in = [this](hw::ClusterId c) {
    std::vector<hw::NodeId> out;
    for (const hw::NodeId n : fabric_->healthy_nodes(c)) {
      if (!busy_.contains(n)) out.push_back(n);
    }
    return out;
  };

  // First preference: entirely inside the home cluster, then any single
  // cluster (virtual clusters give every job its own software stack, so a
  // foreign cluster is as good as home — paper goal 2).
  std::vector<hw::ClusterId> order;
  order.push_back(req.home_cluster);
  for (hw::ClusterId c = 0; c < fabric_->cluster_count(); ++c) {
    if (c != req.home_cluster) order.push_back(c);
  }
  for (const hw::ClusterId c : order) {
    auto avail = free_in(c);
    if (avail.size() >= nodes) {
      avail.resize(nodes);
      return Allocation{std::move(avail), false};
    }
  }

  if (!cfg_.allow_spanning) return std::nullopt;

  // Spanning: take what the home cluster has, fill from the others.
  Allocation alloc;
  for (const hw::ClusterId c : order) {
    for (const hw::NodeId n : free_in(c)) {
      if (alloc.nodes.size() == nodes) break;
      alloc.nodes.push_back(n);
    }
    if (alloc.nodes.size() == nodes) break;
  }
  if (alloc.nodes.size() < nodes) return std::nullopt;
  const hw::ClusterId first = fabric_->node(alloc.nodes.front()).cluster();
  for (const hw::NodeId n : alloc.nodes) {
    if (fabric_->node(n).cluster() != first) {
      alloc.spans_clusters = true;
      break;
    }
  }
  return alloc;
}

void Scheduler::try_schedule() {
  // Strict FCFS: the head of the queue blocks later jobs (no backfill),
  // which keeps fairness semantics simple and makes the spanning benefit
  // visible rather than hidden by backfill.
  while (!queue_.empty()) {
    JobRecord& job = jobs_.at(queue_.front());
    std::uint32_t want = job.request.nodes_requested;

    auto alloc = find_allocation(job.request, want);
    if (!alloc && cfg_.mold_oversized && !cfg_.allow_spanning) {
      // Mold an oversized request down to the largest single-cluster slice
      // that could ever satisfy it, bounded below by min_nodes.
      std::uint32_t biggest = 0;
      for (hw::ClusterId c = 0; c < fabric_->cluster_count(); ++c) {
        biggest = std::max(
            biggest,
            static_cast<std::uint32_t>(fabric_->cluster(c).nodes.size()));
      }
      const std::uint32_t floor_nodes =
          job.request.min_nodes > 0 ? job.request.min_nodes : 1;
      if (biggest < want && floor_nodes <= biggest) {
        want = biggest;
        alloc = find_allocation(job.request, want);
      }
    }
    if (!alloc) {
      // Head blocked: optionally let later jobs jump ahead if they cannot
      // delay the head's earliest possible start.
      if (cfg_.easy_backfill) try_backfill(job);
      return;
    }

    queue_.pop_front();
    telemetry::gauge_set(metrics_, "rm.scheduler.queue_depth",
                         static_cast<double>(queue_.size()));
    start_job(job, std::move(*alloc));
  }
}

sim::Time Scheduler::head_shadow_time(std::uint32_t head_need) const {
  // Release running jobs in estimated end order until enough nodes are
  // free for the head.
  std::size_t free_now = 0;
  for (const hw::NodeId n : fabric_->healthy_nodes()) {
    if (!busy_.contains(n)) ++free_now;
  }
  std::vector<std::pair<sim::Time, std::size_t>> ends;  // end, nodes freed
  for (const auto& [id, end] : expected_end_) {
    const auto it = jobs_.find(id);
    if (it != jobs_.end() && it->second.state == JobState::kRunning) {
      ends.emplace_back(end, it->second.allocation.nodes.size());
    }
  }
  std::sort(ends.begin(), ends.end());
  for (const auto& [end, freed] : ends) {
    if (free_now >= head_need) break;
    free_now += freed;
    if (free_now >= head_need) return end;
  }
  // Either it already fits by count (placement constraints blocked it) or
  // it never will; either way, do not let backfill delay anything.
  return sim_->now();
}

void Scheduler::try_backfill(const JobRecord& head) {
  const sim::Time shadow = head_shadow_time(head.request.nodes_requested);
  if (shadow <= sim_->now()) return;
  for (std::size_t qi = 1; qi < queue_.size();) {
    JobRecord& job = jobs_.at(queue_[qi]);
    const double est_runtime_s =
        job.request.node_seconds_work /
            static_cast<double>(job.request.nodes_requested) +
        sim::to_seconds(job.request.startup_overhead);
    const bool finishes_in_shadow =
        sim_->now() + sim::from_seconds(est_runtime_s) <= shadow;
    auto alloc = finishes_in_shadow
                     ? find_allocation(job.request,
                                       job.request.nodes_requested)
                     : std::nullopt;
    if (alloc) {
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(qi));
      ++backfill_count_;
      telemetry::count(metrics_, "rm.scheduler.jobs_backfilled");
      start_job(job, std::move(*alloc));
      // start_job -> (on completion) try_schedule may have restructured
      // the queue; restart the scan conservatively.
      qi = 1;
    } else {
      ++qi;
    }
  }
}

void Scheduler::start_job(JobRecord& job, Allocation alloc) {
  accumulate_busy();
  job.state = JobState::kRunning;
  job.started_at = sim_->now();
  job.allocation = std::move(alloc);
  for (const hw::NodeId n : job.allocation.nodes) {
    busy_.insert(n);
    node_owner_[n] = job.id;
  }
  ++running_count_;
  waits_.add(sim::to_seconds(job.started_at - job.submitted_at));
  telemetry::count(metrics_, "rm.scheduler.jobs_started");
  telemetry::observe(metrics_, "rm.scheduler.placement_wait_s",
                     sim::to_seconds(job.started_at - job.submitted_at));
  telemetry::gauge_set(metrics_, "rm.scheduler.queue_depth",
                       static_cast<double>(queue_.size()));
  telemetry::gauge_set(metrics_, "rm.scheduler.running",
                       static_cast<double>(running_count_));
  if (metrics_ != nullptr) {
    job_spans_[job.id] = metrics_->begin_span(
        job.started_at, "rm",
        job.request.name.empty() ? "job" : job.request.name);
  }
  {
    const double n = static_cast<double>(job.allocation.nodes.size());
    expected_end_[job.id] =
        job.started_at +
        sim::from_seconds(job.request.node_seconds_work / n) +
        job.request.startup_overhead;
  }
  if (on_start_) on_start_(job);

  if (cfg_.auto_run) {
    const double n = static_cast<double>(job.allocation.nodes.size());
    const sim::Duration run =
        sim::from_seconds(job.request.node_seconds_work / n) +
        job.request.startup_overhead;
    const JobId id = job.id;
    sim_->schedule_after(run, [this, id] {
      JobRecord& j = jobs_.at(id);
      if (j.state == JobState::kRunning) {
        finish_job(j, JobState::kCompleted);
      }
    });
  }
}

void Scheduler::complete(JobId id) {
  JobRecord& job = jobs_.at(id);
  if (job.state == JobState::kRunning) {
    finish_job(job, JobState::kCompleted);
  }
}

void Scheduler::fail(JobId id) {
  JobRecord& job = jobs_.at(id);
  if (job.state == JobState::kRunning) {
    finish_job(job, JobState::kFailed);
  }
}

void Scheduler::finish_job(JobRecord& job, JobState final_state) {
  accumulate_busy();
  job.state = final_state;
  job.finished_at = sim_->now();
  last_finish_ = std::max(last_finish_, job.finished_at);
  for (const hw::NodeId n : job.allocation.nodes) {
    busy_.erase(n);
    node_owner_.erase(n);
  }
  --running_count_;
  expected_end_.erase(job.id);
  if (final_state == JobState::kCompleted) {
    ++completed_count_;
    telemetry::count(metrics_, "rm.scheduler.jobs_completed");
  } else {
    ++failed_count_;
    telemetry::count(metrics_, "rm.scheduler.jobs_failed");
  }
  telemetry::gauge_set(metrics_, "rm.scheduler.running",
                       static_cast<double>(running_count_));
  const auto span = job_spans_.find(job.id);
  if (span != job_spans_.end()) {
    telemetry::end_span(metrics_, span->second, sim_->now());
    job_spans_.erase(span);
  }
  if (on_finish_) on_finish_(job);
  try_schedule();
}

void Scheduler::on_node_failure(hw::NodeId node) {
  // A failed node takes down whatever ran on it (unless a DVC layer above
  // recovers the job — that layer resubmits). The node also leaves the
  // allocatable pool, which try_schedule respects via healthy_nodes().
  const auto it = node_owner_.find(node);
  if (it != node_owner_.end() && cfg_.fail_jobs_on_node_failure) {
    JobRecord& job = jobs_.at(it->second);
    if (job.state == JobState::kRunning) {
      finish_job(job, JobState::kFailed);
      return;  // finish_job already re-runs the queue
    }
  }
  try_schedule();
}

}  // namespace dvc::rm
