#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "hw/cluster.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "telemetry/telemetry.hpp"

namespace dvc::rm {

using JobId = std::uint64_t;

inline constexpr JobId kInvalidJob = 0;

/// What a user submits. Jobs are *moldable*: they carry total work in
/// node-seconds and may run on fewer nodes than requested (more slowly),
/// which is how a non-spanning cluster copes with jobs bigger than itself.
struct JobRequest {
  std::string name;
  std::uint32_t nodes_requested = 1;
  /// Total work: runtime on n nodes = work / n.
  double node_seconds_work = 3600.0;
  /// Cluster the user submitted to (preferred home).
  hw::ClusterId home_cluster = 0;
  /// Minimum nodes the job will accept when molded down (0 = any size).
  std::uint32_t min_nodes = 0;
  /// Per-job one-time startup cost added to the runtime (e.g. virtual
  /// cluster provisioning when running under DVC).
  sim::Duration startup_overhead = 0;
};

enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kCompleted,
  kFailed,
};

/// A job's nodes, spanning one or more clusters.
struct Allocation {
  std::vector<hw::NodeId> nodes;
  bool spans_clusters = false;
};

/// Runtime record of one job.
struct JobRecord {
  JobId id = kInvalidJob;
  JobRequest request;
  JobState state = JobState::kQueued;
  Allocation allocation;
  sim::Time submitted_at = 0;
  sim::Time started_at = 0;
  sim::Time finished_at = 0;
};

/// FIFO + first-fit cluster scheduler (Torque/Moab stand-in) with the two
/// DVC-relevant behaviours from the paper's §1:
///   * failed nodes are never allocated, and a node failure under a
///     running job fails (or, with DVC recovery above it, interrupts) it;
///   * with `allow_spanning`, one job may take nodes from several clusters
///     — the capability virtual clusters add.
class Scheduler final {
 public:
  struct Config {
    bool allow_spanning = false;
    /// Mold oversized jobs down to what a single cluster can ever hold
    /// (only relevant when spanning is off; otherwise they would wait
    /// forever).
    bool mold_oversized = true;
    /// Run jobs automatically for work/nodes seconds (benches); when off,
    /// the caller drives completion via complete().
    bool auto_run = true;
    /// Kill a running job when one of its nodes dies. Turn off when a DVC
    /// layer above recovers jobs transparently (paper §1: the RM keeps
    /// scheduling "in the presence of node faults by using virtualized
    /// remote nodes").
    bool fail_jobs_on_node_failure = true;
    /// EASY backfill: when the queue head is blocked, later jobs may jump
    /// ahead if they fit now and their estimated completion does not delay
    /// the head's earliest possible start (computed from the running
    /// jobs' estimated end times).
    bool easy_backfill = false;
  };

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  Scheduler(sim::Simulation& sim, hw::Fabric& fabric, Config cfg);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Submits a job; scheduling is attempted immediately and on every
  /// release/repair event.
  JobId submit(JobRequest req);

  /// Marks a caller-driven job complete and frees its nodes.
  void complete(JobId id);

  /// Marks a caller-driven job failed/abandoned and frees its nodes.
  void fail(JobId id);

  /// Called when a job starts, with its allocation.
  void set_on_start(std::function<void(const JobRecord&)> fn) {
    on_start_ = std::move(fn);
  }
  /// Called when a job finishes (completed or failed).
  void set_on_finish(std::function<void(const JobRecord&)> fn) {
    on_finish_ = std::move(fn);
  }

  [[nodiscard]] const JobRecord& job(JobId id) const { return jobs_.at(id); }
  [[nodiscard]] std::size_t queued() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t running() const noexcept {
    return running_count_;
  }
  [[nodiscard]] std::uint64_t completed() const noexcept {
    return completed_count_;
  }
  [[nodiscard]] std::uint64_t failed() const noexcept {
    return failed_count_;
  }

  /// Mean time jobs spent queued (seconds).
  [[nodiscard]] const sim::SummaryStats& wait_stats() const noexcept {
    return waits_;
  }
  /// Busy node-seconds accumulated so far (utilisation numerator).
  [[nodiscard]] double busy_node_seconds() const;

  /// Completion time of the last job to finish (makespan measurements).
  [[nodiscard]] sim::Time last_finish() const noexcept {
    return last_finish_;
  }

  [[nodiscard]] std::uint64_t backfilled() const noexcept {
    return backfill_count_;
  }

  /// Attaches an optional metrics registry: job lifecycle counters and the
  /// placement-wait histogram land in `rm.scheduler.*`; each running job
  /// appears as a span on the "rm" timeline track.
  void set_metrics(telemetry::MetricsRegistry* m) noexcept { metrics_ = m; }

 private:
  void try_schedule();
  void try_backfill(const JobRecord& head);
  [[nodiscard]] sim::Time head_shadow_time(std::uint32_t head_need) const;
  [[nodiscard]] std::optional<Allocation> find_allocation(
      const JobRequest& req, std::uint32_t nodes) const;
  void start_job(JobRecord& job, Allocation alloc);
  void finish_job(JobRecord& job, JobState final_state);
  void on_node_failure(hw::NodeId node);
  void accumulate_busy();

  sim::Simulation* sim_;
  hw::Fabric* fabric_;
  Config cfg_;
  JobId next_id_ = 1;
  std::map<JobId, JobRecord> jobs_;
  std::deque<JobId> queue_;
  std::set<hw::NodeId> busy_;
  std::map<hw::NodeId, JobId> node_owner_;
  std::map<JobId, sim::Time> expected_end_;
  std::size_t running_count_ = 0;
  std::uint64_t backfill_count_ = 0;
  std::uint64_t completed_count_ = 0;
  std::uint64_t failed_count_ = 0;
  sim::SummaryStats waits_{/*keep_samples=*/false};
  sim::Time last_finish_ = 0;
  // Utilisation integral: busy-node-count integrated over time.
  mutable double busy_node_seconds_ = 0.0;
  mutable sim::Time busy_accum_mark_ = 0;
  std::function<void(const JobRecord&)> on_start_;
  std::function<void(const JobRecord&)> on_finish_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  std::map<JobId, telemetry::MetricsRegistry::SpanId> job_spans_;
};

}  // namespace dvc::rm
