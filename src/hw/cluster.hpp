#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "sim/trace.hpp"

namespace dvc::hw {

/// Identifier of a physical node within a Fabric.
using NodeId = std::uint32_t;
/// Identifier of a physical cluster within a Fabric.
using ClusterId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// Static capability of a physical node.
struct NodeSpec {
  double flops = 10e9;                       ///< sustained FLOP/s per node
  std::uint64_t ram_bytes = 4ull << 30;      ///< 4 GiB
  double virt_overhead = 0.03;               ///< para-virt CPU tax (Xen)
};

/// A physical compute node: a capability spec, a network attachment point,
/// and a liveness bit. Node failure is permanent until repaired.
class PhysicalNode final {
 public:
  PhysicalNode(NodeId id, ClusterId cluster, NodeSpec spec,
               net::HostId host) noexcept
      : id_(id), cluster_(cluster), spec_(spec), host_(host) {}

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] ClusterId cluster() const noexcept { return cluster_; }
  [[nodiscard]] const NodeSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] net::HostId host() const noexcept { return host_; }
  [[nodiscard]] bool failed() const noexcept { return failed_; }

 private:
  friend class Fabric;
  NodeId id_;
  ClusterId cluster_;
  NodeSpec spec_;
  net::HostId host_;
  bool failed_ = false;
};

/// A named group of nodes behind one switch.
struct PhysicalCluster {
  ClusterId id = 0;
  std::string name;
  std::vector<NodeId> nodes;
};

/// The machine room: clusters of physical nodes joined by a two-tier
/// network fabric, plus failure injection. This substitutes for the paper's
/// ASU multi-cluster testbed.
class Fabric final {
 public:
  struct Config {
    net::ClusterLinkModel::Config links;
    std::uint64_t seed = 1;
  };

  Fabric(sim::Simulation& sim, Config cfg);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Adds a cluster of `count` identical nodes. Returns its id.
  ClusterId add_cluster(std::string name, std::size_t count,
                        NodeSpec spec = {});

  [[nodiscard]] std::size_t cluster_count() const noexcept {
    return clusters_.size();
  }
  [[nodiscard]] const PhysicalCluster& cluster(ClusterId c) const {
    return clusters_.at(c);
  }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] PhysicalNode& node(NodeId n) { return *nodes_.at(n); }
  [[nodiscard]] const PhysicalNode& node(NodeId n) const {
    return *nodes_.at(n);
  }

  /// All currently healthy node ids, optionally restricted to one cluster.
  [[nodiscard]] std::vector<NodeId> healthy_nodes() const;
  [[nodiscard]] std::vector<NodeId> healthy_nodes(ClusterId c) const;

  /// Marks a node failed: its NIC goes dark and observers are notified
  /// (hypervisor kills resident VMs, scheduler stops placing work on it).
  void fail_node(NodeId n);
  /// Returns a failed node to service.
  void repair_node(NodeId n);

  /// Registers an observer called with the id of every node that fails.
  void subscribe_failures(std::function<void(NodeId)> fn) {
    failure_observers_.push_back(std::move(fn));
  }

  /// Registers an observer of failure *predictions*: called with the node
  /// and the warning lead time before the fault actually strikes. This
  /// models ECC/SMART/fan-speed style health monitoring — the paper's §1
  /// "avoidance of job failure when hardware faults can be predicted".
  void subscribe_predictions(
      std::function<void(NodeId, sim::Duration lead)> fn) {
    prediction_observers_.push_back(std::move(fn));
  }

  /// Announces that `node` will fail in `lead` from now (observers fire
  /// immediately; the failure itself is scheduled). Until it dies, the
  /// node is `condemned()` — still up, but nothing should move onto it.
  void predict_failure(NodeId node, sim::Duration lead);

  /// True if a failure prediction is pending for this node.
  [[nodiscard]] bool condemned(NodeId node) const {
    return condemned_.contains(node);
  }

  /// Arms an exponential (memoryless) failure process on every node with
  /// the given mean time between failures. Each firing fails one node; the
  /// process re-arms, so multiple failures can occur over a long run.
  ///
  /// A fraction `predicted_fraction` of faults announce themselves
  /// `prediction_lead` ahead of time through the prediction feed.
  void arm_random_failures(sim::Duration mtbf_per_node,
                           double predicted_fraction = 0.0,
                           sim::Duration prediction_lead = 0);

  [[nodiscard]] sim::Simulation& simulation() noexcept { return *sim_; }
  [[nodiscard]] net::Network& network() noexcept { return *network_; }
  [[nodiscard]] net::ClusterLinkModel& links() noexcept { return *links_; }

  /// Attaches an optional structured trace sink (null to detach).
  void set_trace(sim::TraceLog* log) noexcept { trace_ = log; }

  [[nodiscard]] std::uint64_t failures_injected() const noexcept {
    return failures_injected_;
  }
  [[nodiscard]] std::uint64_t failures_predicted() const noexcept {
    return failures_predicted_;
  }

 private:
  void arm_node_failure(NodeId n, sim::Duration mtbf,
                        double predicted_fraction,
                        sim::Duration prediction_lead);

  sim::Simulation* sim_;
  sim::Rng rng_;
  std::shared_ptr<net::ClusterLinkModel> links_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<PhysicalNode>> nodes_;
  std::vector<PhysicalCluster> clusters_;
  std::vector<std::function<void(NodeId)>> failure_observers_;
  std::vector<std::function<void(NodeId, sim::Duration)>>
      prediction_observers_;
  std::uint64_t failures_injected_ = 0;
  std::uint64_t failures_predicted_ = 0;
  std::set<NodeId> condemned_;
  sim::TraceLog* trace_ = nullptr;
};

}  // namespace dvc::hw
