#include "hw/cluster.hpp"

#include <stdexcept>
#include <utility>

namespace dvc::hw {

Fabric::Fabric(sim::Simulation& sim, Config cfg)
    : sim_(&sim),
      rng_(cfg.seed),
      links_(std::make_shared<net::ClusterLinkModel>(cfg.links)),
      network_(std::make_unique<net::Network>(sim, links_,
                                              rng_.fork(0xFAB))) {}

ClusterId Fabric::add_cluster(std::string name, std::size_t count,
                              NodeSpec spec) {
  const auto cid = static_cast<ClusterId>(clusters_.size());
  PhysicalCluster c;
  c.id = cid;
  c.name = std::move(name);
  c.nodes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto nid = static_cast<NodeId>(nodes_.size());
    const net::HostId host = network_->new_host();
    links_->set_cluster(host, cid);
    nodes_.push_back(std::make_unique<PhysicalNode>(nid, cid, spec, host));
    c.nodes.push_back(nid);
  }
  clusters_.push_back(std::move(c));
  return cid;
}

std::vector<NodeId> Fabric::healthy_nodes() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    if (!n->failed()) out.push_back(n->id());
  }
  return out;
}

std::vector<NodeId> Fabric::healthy_nodes(ClusterId c) const {
  std::vector<NodeId> out;
  for (const NodeId n : clusters_.at(c).nodes) {
    if (!nodes_[n]->failed()) out.push_back(n);
  }
  return out;
}

void Fabric::fail_node(NodeId n) {
  PhysicalNode& node = *nodes_.at(n);
  if (node.failed_) return;
  node.failed_ = true;
  condemned_.erase(n);  // the sentence has been carried out
  network_->set_host_up(node.host(), false);
  ++failures_injected_;
  sim::trace(trace_, sim_->now(), sim::TraceLevel::kError, "fabric",
             "node" + std::to_string(n) + " failed");
  // Copy: an observer may subscribe further observers while running.
  const auto observers = failure_observers_;
  for (const auto& fn : observers) fn(n);
}

void Fabric::repair_node(NodeId n) {
  PhysicalNode& node = *nodes_.at(n);
  if (!node.failed_) return;
  node.failed_ = false;
  network_->set_host_up(node.host(), true);
  sim::trace(trace_, sim_->now(), sim::TraceLevel::kInfo, "fabric",
             "node" + std::to_string(n) + " repaired");
}

void Fabric::predict_failure(NodeId node, sim::Duration lead) {
  ++failures_predicted_;
  condemned_.insert(node);
  sim::trace(trace_, sim_->now(), sim::TraceLevel::kWarn, "fabric",
             "node" + std::to_string(node) + " predicted to fail in " +
                 std::to_string(lead / sim::kSecond) + "s");
  const auto observers = prediction_observers_;
  for (const auto& fn : observers) fn(node, lead);
  sim_->schedule_after(lead, [this, node] {
    if (!nodes_.at(node)->failed()) fail_node(node);
  });
}

void Fabric::arm_random_failures(sim::Duration mtbf_per_node,
                                 double predicted_fraction,
                                 sim::Duration prediction_lead) {
  if (mtbf_per_node <= 0) throw std::invalid_argument("mtbf must be > 0");
  for (const auto& n : nodes_) {
    arm_node_failure(n->id(), mtbf_per_node, predicted_fraction,
                     prediction_lead);
  }
}

void Fabric::arm_node_failure(NodeId n, sim::Duration mtbf,
                              double predicted_fraction,
                              sim::Duration prediction_lead) {
  const sim::Duration dt = rng_.exponential_duration(mtbf);
  // The failure process is background housekeeping (daemon): it must not
  // keep an otherwise-finished simulation running forever.
  sim_->schedule_daemon_after(dt, [this, n, mtbf, predicted_fraction,
                                   prediction_lead] {
    if (!nodes_.at(n)->failed()) {
      if (predicted_fraction > 0.0 && prediction_lead > 0 &&
          rng_.chance(predicted_fraction)) {
        predict_failure(n, prediction_lead);
      } else {
        fail_node(n);
      }
    }
    arm_node_failure(n, mtbf, predicted_fraction, prediction_lead);
  });
}

}  // namespace dvc::hw
