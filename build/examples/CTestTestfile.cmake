# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_tolerant_hpl "/root/repo/build/examples/fault_tolerant_hpl")
set_tests_properties(example_fault_tolerant_hpl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_cluster_span "/root/repo/build/examples/multi_cluster_span")
set_tests_properties(example_multi_cluster_span PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_live_migration "/root/repo/build/examples/live_migration")
set_tests_properties(example_live_migration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_batch_scheduler "/root/repo/build/examples/batch_scheduler")
set_tests_properties(example_batch_scheduler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
