# Empty compiler generated dependencies file for fault_tolerant_hpl.
# This may be replaced when dependencies are built.
