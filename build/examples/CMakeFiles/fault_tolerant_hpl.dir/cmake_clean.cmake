file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerant_hpl.dir/fault_tolerant_hpl.cpp.o"
  "CMakeFiles/fault_tolerant_hpl.dir/fault_tolerant_hpl.cpp.o.d"
  "fault_tolerant_hpl"
  "fault_tolerant_hpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerant_hpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
