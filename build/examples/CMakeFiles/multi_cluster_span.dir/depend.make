# Empty dependencies file for multi_cluster_span.
# This may be replaced when dependencies are built.
