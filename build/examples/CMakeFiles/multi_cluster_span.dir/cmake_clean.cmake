file(REMOVE_RECURSE
  "CMakeFiles/multi_cluster_span.dir/multi_cluster_span.cpp.o"
  "CMakeFiles/multi_cluster_span.dir/multi_cluster_span.cpp.o.d"
  "multi_cluster_span"
  "multi_cluster_span.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_cluster_span.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
