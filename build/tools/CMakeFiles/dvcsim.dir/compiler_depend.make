# Empty compiler generated dependencies file for dvcsim.
# This may be replaced when dependencies are built.
