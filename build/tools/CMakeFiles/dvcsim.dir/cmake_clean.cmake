file(REMOVE_RECURSE
  "CMakeFiles/dvcsim.dir/dvcsim.cpp.o"
  "CMakeFiles/dvcsim.dir/dvcsim.cpp.o.d"
  "dvcsim"
  "dvcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
