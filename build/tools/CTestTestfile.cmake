# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(dvcsim_checkpoint_scenario "/root/repo/build/tools/dvcsim" "/root/repo/scenarios/checkpoint26.scn")
set_tests_properties(dvcsim_checkpoint_scenario PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(dvcsim_live_migrate_scenario "/root/repo/build/tools/dvcsim" "/root/repo/scenarios/live_migrate.scn")
set_tests_properties(dvcsim_live_migrate_scenario PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
