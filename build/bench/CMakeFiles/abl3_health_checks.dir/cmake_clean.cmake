file(REMOVE_RECURSE
  "CMakeFiles/abl3_health_checks.dir/abl3_health_checks.cpp.o"
  "CMakeFiles/abl3_health_checks.dir/abl3_health_checks.cpp.o.d"
  "abl3_health_checks"
  "abl3_health_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl3_health_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
