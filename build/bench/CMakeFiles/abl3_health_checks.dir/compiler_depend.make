# Empty compiler generated dependencies file for abl3_health_checks.
# This may be replaced when dependencies are built.
