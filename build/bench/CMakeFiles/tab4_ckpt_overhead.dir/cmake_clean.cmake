file(REMOVE_RECURSE
  "CMakeFiles/tab4_ckpt_overhead.dir/tab4_ckpt_overhead.cpp.o"
  "CMakeFiles/tab4_ckpt_overhead.dir/tab4_ckpt_overhead.cpp.o.d"
  "tab4_ckpt_overhead"
  "tab4_ckpt_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_ckpt_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
