# Empty compiler generated dependencies file for tab4_ckpt_overhead.
# This may be replaced when dependencies are built.
