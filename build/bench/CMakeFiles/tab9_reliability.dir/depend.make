# Empty dependencies file for tab9_reliability.
# This may be replaced when dependencies are built.
