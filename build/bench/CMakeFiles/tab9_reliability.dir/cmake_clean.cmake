file(REMOVE_RECURSE
  "CMakeFiles/tab9_reliability.dir/tab9_reliability.cpp.o"
  "CMakeFiles/tab9_reliability.dir/tab9_reliability.cpp.o.d"
  "tab9_reliability"
  "tab9_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab9_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
