# Empty compiler generated dependencies file for tab5_ckpt_efficiency.
# This may be replaced when dependencies are built.
