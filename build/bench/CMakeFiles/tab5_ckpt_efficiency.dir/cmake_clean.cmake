file(REMOVE_RECURSE
  "CMakeFiles/tab5_ckpt_efficiency.dir/tab5_ckpt_efficiency.cpp.o"
  "CMakeFiles/tab5_ckpt_efficiency.dir/tab5_ckpt_efficiency.cpp.o.d"
  "tab5_ckpt_efficiency"
  "tab5_ckpt_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab5_ckpt_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
