file(REMOVE_RECURSE
  "CMakeFiles/abl6_migration_modes.dir/abl6_migration_modes.cpp.o"
  "CMakeFiles/abl6_migration_modes.dir/abl6_migration_modes.cpp.o.d"
  "abl6_migration_modes"
  "abl6_migration_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl6_migration_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
