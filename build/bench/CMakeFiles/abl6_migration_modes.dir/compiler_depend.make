# Empty compiler generated dependencies file for abl6_migration_modes.
# This may be replaced when dependencies are built.
