# Empty dependencies file for abl4_timeout_sweep.
# This may be replaced when dependencies are built.
