file(REMOVE_RECURSE
  "CMakeFiles/abl4_timeout_sweep.dir/abl4_timeout_sweep.cpp.o"
  "CMakeFiles/abl4_timeout_sweep.dir/abl4_timeout_sweep.cpp.o.d"
  "abl4_timeout_sweep"
  "abl4_timeout_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl4_timeout_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
