file(REMOVE_RECURSE
  "CMakeFiles/tab1_naive_lsc.dir/tab1_naive_lsc.cpp.o"
  "CMakeFiles/tab1_naive_lsc.dir/tab1_naive_lsc.cpp.o.d"
  "tab1_naive_lsc"
  "tab1_naive_lsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_naive_lsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
