# Empty compiler generated dependencies file for tab1_naive_lsc.
# This may be replaced when dependencies are built.
