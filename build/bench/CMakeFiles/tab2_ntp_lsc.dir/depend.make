# Empty dependencies file for tab2_ntp_lsc.
# This may be replaced when dependencies are built.
