
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab2_ntp_lsc.cpp" "bench/CMakeFiles/tab2_ntp_lsc.dir/tab2_ntp_lsc.cpp.o" "gcc" "bench/CMakeFiles/tab2_ntp_lsc.dir/tab2_ntp_lsc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dvc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/dvc_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/rm/CMakeFiles/dvc_rm.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/dvc_app.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dvc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dvc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dvc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/clocksync/CMakeFiles/dvc_clocksync.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dvc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
