file(REMOVE_RECURSE
  "CMakeFiles/tab2_ntp_lsc.dir/tab2_ntp_lsc.cpp.o"
  "CMakeFiles/tab2_ntp_lsc.dir/tab2_ntp_lsc.cpp.o.d"
  "tab2_ntp_lsc"
  "tab2_ntp_lsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_ntp_lsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
