file(REMOVE_RECURSE
  "CMakeFiles/abl10_interval.dir/abl10_interval.cpp.o"
  "CMakeFiles/abl10_interval.dir/abl10_interval.cpp.o.d"
  "abl10_interval"
  "abl10_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl10_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
