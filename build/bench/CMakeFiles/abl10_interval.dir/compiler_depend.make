# Empty compiler generated dependencies file for abl10_interval.
# This may be replaced when dependencies are built.
