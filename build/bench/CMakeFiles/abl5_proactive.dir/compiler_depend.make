# Empty compiler generated dependencies file for abl5_proactive.
# This may be replaced when dependencies are built.
