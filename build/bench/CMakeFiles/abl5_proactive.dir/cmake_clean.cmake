file(REMOVE_RECURSE
  "CMakeFiles/abl5_proactive.dir/abl5_proactive.cpp.o"
  "CMakeFiles/abl5_proactive.dir/abl5_proactive.cpp.o.d"
  "abl5_proactive"
  "abl5_proactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl5_proactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
