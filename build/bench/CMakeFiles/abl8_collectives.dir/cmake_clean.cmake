file(REMOVE_RECURSE
  "CMakeFiles/abl8_collectives.dir/abl8_collectives.cpp.o"
  "CMakeFiles/abl8_collectives.dir/abl8_collectives.cpp.o.d"
  "abl8_collectives"
  "abl8_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl8_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
