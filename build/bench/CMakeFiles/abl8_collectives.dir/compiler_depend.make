# Empty compiler generated dependencies file for abl8_collectives.
# This may be replaced when dependencies are built.
