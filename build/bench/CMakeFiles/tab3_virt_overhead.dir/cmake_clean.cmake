file(REMOVE_RECURSE
  "CMakeFiles/tab3_virt_overhead.dir/tab3_virt_overhead.cpp.o"
  "CMakeFiles/tab3_virt_overhead.dir/tab3_virt_overhead.cpp.o.d"
  "tab3_virt_overhead"
  "tab3_virt_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_virt_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
