# Empty dependencies file for tab3_virt_overhead.
# This may be replaced when dependencies are built.
