file(REMOVE_RECURSE
  "CMakeFiles/abl2_storage_contention.dir/abl2_storage_contention.cpp.o"
  "CMakeFiles/abl2_storage_contention.dir/abl2_storage_contention.cpp.o.d"
  "abl2_storage_contention"
  "abl2_storage_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl2_storage_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
