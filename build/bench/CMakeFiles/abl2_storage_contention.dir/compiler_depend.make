# Empty compiler generated dependencies file for abl2_storage_contention.
# This may be replaced when dependencies are built.
