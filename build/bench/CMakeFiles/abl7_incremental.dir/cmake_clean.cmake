file(REMOVE_RECURSE
  "CMakeFiles/abl7_incremental.dir/abl7_incremental.cpp.o"
  "CMakeFiles/abl7_incremental.dir/abl7_incremental.cpp.o.d"
  "abl7_incremental"
  "abl7_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl7_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
