# Empty compiler generated dependencies file for abl7_incremental.
# This may be replaced when dependencies are built.
