file(REMOVE_RECURSE
  "CMakeFiles/tab7_watchdog.dir/tab7_watchdog.cpp.o"
  "CMakeFiles/tab7_watchdog.dir/tab7_watchdog.cpp.o.d"
  "tab7_watchdog"
  "tab7_watchdog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab7_watchdog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
