# Empty compiler generated dependencies file for tab7_watchdog.
# This may be replaced when dependencies are built.
