file(REMOVE_RECURSE
  "CMakeFiles/fig1_virtual_clusters.dir/fig1_virtual_clusters.cpp.o"
  "CMakeFiles/fig1_virtual_clusters.dir/fig1_virtual_clusters.cpp.o.d"
  "fig1_virtual_clusters"
  "fig1_virtual_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_virtual_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
