# Empty dependencies file for fig1_virtual_clusters.
# This may be replaced when dependencies are built.
