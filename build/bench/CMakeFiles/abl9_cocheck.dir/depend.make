# Empty dependencies file for abl9_cocheck.
# This may be replaced when dependencies are built.
