file(REMOVE_RECURSE
  "CMakeFiles/abl9_cocheck.dir/abl9_cocheck.cpp.o"
  "CMakeFiles/abl9_cocheck.dir/abl9_cocheck.cpp.o.d"
  "abl9_cocheck"
  "abl9_cocheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl9_cocheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
