file(REMOVE_RECURSE
  "CMakeFiles/fig2_network_cuts.dir/fig2_network_cuts.cpp.o"
  "CMakeFiles/fig2_network_cuts.dir/fig2_network_cuts.cpp.o.d"
  "fig2_network_cuts"
  "fig2_network_cuts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_network_cuts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
