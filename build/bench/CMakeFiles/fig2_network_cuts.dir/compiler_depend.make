# Empty compiler generated dependencies file for fig2_network_cuts.
# This may be replaced when dependencies are built.
