file(REMOVE_RECURSE
  "CMakeFiles/abl1_jitter_sweep.dir/abl1_jitter_sweep.cpp.o"
  "CMakeFiles/abl1_jitter_sweep.dir/abl1_jitter_sweep.cpp.o.d"
  "abl1_jitter_sweep"
  "abl1_jitter_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl1_jitter_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
