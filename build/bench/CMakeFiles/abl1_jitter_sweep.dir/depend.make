# Empty dependencies file for abl1_jitter_sweep.
# This may be replaced when dependencies are built.
