# Empty dependencies file for tab6_walltime_jump.
# This may be replaced when dependencies are built.
