file(REMOVE_RECURSE
  "CMakeFiles/tab6_walltime_jump.dir/tab6_walltime_jump.cpp.o"
  "CMakeFiles/tab6_walltime_jump.dir/tab6_walltime_jump.cpp.o.d"
  "tab6_walltime_jump"
  "tab6_walltime_jump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab6_walltime_jump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
