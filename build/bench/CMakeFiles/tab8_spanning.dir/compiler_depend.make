# Empty compiler generated dependencies file for tab8_spanning.
# This may be replaced when dependencies are built.
