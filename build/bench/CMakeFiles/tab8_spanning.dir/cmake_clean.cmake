file(REMOVE_RECURSE
  "CMakeFiles/tab8_spanning.dir/tab8_spanning.cpp.o"
  "CMakeFiles/tab8_spanning.dir/tab8_spanning.cpp.o.d"
  "tab8_spanning"
  "tab8_spanning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab8_spanning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
