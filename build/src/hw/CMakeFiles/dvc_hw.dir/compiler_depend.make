# Empty compiler generated dependencies file for dvc_hw.
# This may be replaced when dependencies are built.
