file(REMOVE_RECURSE
  "libdvc_hw.a"
)
