file(REMOVE_RECURSE
  "CMakeFiles/dvc_hw.dir/cluster.cpp.o"
  "CMakeFiles/dvc_hw.dir/cluster.cpp.o.d"
  "libdvc_hw.a"
  "libdvc_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvc_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
