file(REMOVE_RECURSE
  "CMakeFiles/dvc_sim.dir/simulation.cpp.o"
  "CMakeFiles/dvc_sim.dir/simulation.cpp.o.d"
  "libdvc_sim.a"
  "libdvc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
