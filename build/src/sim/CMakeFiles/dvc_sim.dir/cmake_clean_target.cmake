file(REMOVE_RECURSE
  "libdvc_sim.a"
)
