# Empty dependencies file for dvc_sim.
# This may be replaced when dependencies are built.
