file(REMOVE_RECURSE
  "CMakeFiles/dvc_ckpt.dir/cocheck.cpp.o"
  "CMakeFiles/dvc_ckpt.dir/cocheck.cpp.o.d"
  "CMakeFiles/dvc_ckpt.dir/lsc.cpp.o"
  "CMakeFiles/dvc_ckpt.dir/lsc.cpp.o.d"
  "CMakeFiles/dvc_ckpt.dir/methods.cpp.o"
  "CMakeFiles/dvc_ckpt.dir/methods.cpp.o.d"
  "libdvc_ckpt.a"
  "libdvc_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvc_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
