
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckpt/cocheck.cpp" "src/ckpt/CMakeFiles/dvc_ckpt.dir/cocheck.cpp.o" "gcc" "src/ckpt/CMakeFiles/dvc_ckpt.dir/cocheck.cpp.o.d"
  "/root/repo/src/ckpt/lsc.cpp" "src/ckpt/CMakeFiles/dvc_ckpt.dir/lsc.cpp.o" "gcc" "src/ckpt/CMakeFiles/dvc_ckpt.dir/lsc.cpp.o.d"
  "/root/repo/src/ckpt/methods.cpp" "src/ckpt/CMakeFiles/dvc_ckpt.dir/methods.cpp.o" "gcc" "src/ckpt/CMakeFiles/dvc_ckpt.dir/methods.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dvc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dvc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dvc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/clocksync/CMakeFiles/dvc_clocksync.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/dvc_app.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
