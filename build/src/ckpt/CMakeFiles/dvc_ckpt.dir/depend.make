# Empty dependencies file for dvc_ckpt.
# This may be replaced when dependencies are built.
