file(REMOVE_RECURSE
  "libdvc_ckpt.a"
)
