# Empty dependencies file for dvc_rm.
# This may be replaced when dependencies are built.
