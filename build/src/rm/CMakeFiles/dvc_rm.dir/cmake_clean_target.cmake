file(REMOVE_RECURSE
  "libdvc_rm.a"
)
