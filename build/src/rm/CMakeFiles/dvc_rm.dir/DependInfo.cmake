
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rm/scheduler.cpp" "src/rm/CMakeFiles/dvc_rm.dir/scheduler.cpp.o" "gcc" "src/rm/CMakeFiles/dvc_rm.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dvc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dvc_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
