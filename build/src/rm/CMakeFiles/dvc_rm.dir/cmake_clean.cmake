file(REMOVE_RECURSE
  "CMakeFiles/dvc_rm.dir/scheduler.cpp.o"
  "CMakeFiles/dvc_rm.dir/scheduler.cpp.o.d"
  "libdvc_rm.a"
  "libdvc_rm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvc_rm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
