file(REMOVE_RECURSE
  "libdvc_net.a"
)
