file(REMOVE_RECURSE
  "CMakeFiles/dvc_net.dir/network.cpp.o"
  "CMakeFiles/dvc_net.dir/network.cpp.o.d"
  "CMakeFiles/dvc_net.dir/reliable_channel.cpp.o"
  "CMakeFiles/dvc_net.dir/reliable_channel.cpp.o.d"
  "libdvc_net.a"
  "libdvc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
