# Empty compiler generated dependencies file for dvc_net.
# This may be replaced when dependencies are built.
