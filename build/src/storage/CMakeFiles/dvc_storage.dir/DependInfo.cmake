
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bandwidth_pool.cpp" "src/storage/CMakeFiles/dvc_storage.dir/bandwidth_pool.cpp.o" "gcc" "src/storage/CMakeFiles/dvc_storage.dir/bandwidth_pool.cpp.o.d"
  "/root/repo/src/storage/image_manager.cpp" "src/storage/CMakeFiles/dvc_storage.dir/image_manager.cpp.o" "gcc" "src/storage/CMakeFiles/dvc_storage.dir/image_manager.cpp.o.d"
  "/root/repo/src/storage/shared_store.cpp" "src/storage/CMakeFiles/dvc_storage.dir/shared_store.cpp.o" "gcc" "src/storage/CMakeFiles/dvc_storage.dir/shared_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dvc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
