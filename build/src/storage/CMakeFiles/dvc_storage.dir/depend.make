# Empty dependencies file for dvc_storage.
# This may be replaced when dependencies are built.
