file(REMOVE_RECURSE
  "libdvc_storage.a"
)
