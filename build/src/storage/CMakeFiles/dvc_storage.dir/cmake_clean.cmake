file(REMOVE_RECURSE
  "CMakeFiles/dvc_storage.dir/bandwidth_pool.cpp.o"
  "CMakeFiles/dvc_storage.dir/bandwidth_pool.cpp.o.d"
  "CMakeFiles/dvc_storage.dir/image_manager.cpp.o"
  "CMakeFiles/dvc_storage.dir/image_manager.cpp.o.d"
  "CMakeFiles/dvc_storage.dir/shared_store.cpp.o"
  "CMakeFiles/dvc_storage.dir/shared_store.cpp.o.d"
  "libdvc_storage.a"
  "libdvc_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvc_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
