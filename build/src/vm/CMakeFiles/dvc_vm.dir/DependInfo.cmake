
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/hypervisor.cpp" "src/vm/CMakeFiles/dvc_vm.dir/hypervisor.cpp.o" "gcc" "src/vm/CMakeFiles/dvc_vm.dir/hypervisor.cpp.o.d"
  "/root/repo/src/vm/virtual_machine.cpp" "src/vm/CMakeFiles/dvc_vm.dir/virtual_machine.cpp.o" "gcc" "src/vm/CMakeFiles/dvc_vm.dir/virtual_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dvc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dvc_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
