file(REMOVE_RECURSE
  "CMakeFiles/dvc_vm.dir/hypervisor.cpp.o"
  "CMakeFiles/dvc_vm.dir/hypervisor.cpp.o.d"
  "CMakeFiles/dvc_vm.dir/virtual_machine.cpp.o"
  "CMakeFiles/dvc_vm.dir/virtual_machine.cpp.o.d"
  "libdvc_vm.a"
  "libdvc_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvc_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
