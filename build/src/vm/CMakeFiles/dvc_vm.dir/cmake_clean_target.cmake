file(REMOVE_RECURSE
  "libdvc_vm.a"
)
