# Empty dependencies file for dvc_vm.
# This may be replaced when dependencies are built.
