file(REMOVE_RECURSE
  "libdvc_app.a"
)
