file(REMOVE_RECURSE
  "CMakeFiles/dvc_app.dir/mpi_job.cpp.o"
  "CMakeFiles/dvc_app.dir/mpi_job.cpp.o.d"
  "CMakeFiles/dvc_app.dir/workload.cpp.o"
  "CMakeFiles/dvc_app.dir/workload.cpp.o.d"
  "libdvc_app.a"
  "libdvc_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvc_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
