# Empty dependencies file for dvc_app.
# This may be replaced when dependencies are built.
