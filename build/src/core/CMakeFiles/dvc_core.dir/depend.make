# Empty dependencies file for dvc_core.
# This may be replaced when dependencies are built.
