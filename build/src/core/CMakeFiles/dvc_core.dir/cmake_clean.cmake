file(REMOVE_RECURSE
  "CMakeFiles/dvc_core.dir/dvc_manager.cpp.o"
  "CMakeFiles/dvc_core.dir/dvc_manager.cpp.o.d"
  "CMakeFiles/dvc_core.dir/job_runner.cpp.o"
  "CMakeFiles/dvc_core.dir/job_runner.cpp.o.d"
  "CMakeFiles/dvc_core.dir/virtual_cluster.cpp.o"
  "CMakeFiles/dvc_core.dir/virtual_cluster.cpp.o.d"
  "libdvc_core.a"
  "libdvc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
