file(REMOVE_RECURSE
  "libdvc_core.a"
)
