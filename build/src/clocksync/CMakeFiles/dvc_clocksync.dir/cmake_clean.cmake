file(REMOVE_RECURSE
  "CMakeFiles/dvc_clocksync.dir/ntp.cpp.o"
  "CMakeFiles/dvc_clocksync.dir/ntp.cpp.o.d"
  "libdvc_clocksync.a"
  "libdvc_clocksync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvc_clocksync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
