file(REMOVE_RECURSE
  "libdvc_clocksync.a"
)
