# Empty dependencies file for dvc_clocksync.
# This may be replaced when dependencies are built.
