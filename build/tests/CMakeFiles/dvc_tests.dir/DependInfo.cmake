
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/app_test.cpp" "tests/CMakeFiles/dvc_tests.dir/app_test.cpp.o" "gcc" "tests/CMakeFiles/dvc_tests.dir/app_test.cpp.o.d"
  "/root/repo/tests/ckpt_test.cpp" "tests/CMakeFiles/dvc_tests.dir/ckpt_test.cpp.o" "gcc" "tests/CMakeFiles/dvc_tests.dir/ckpt_test.cpp.o.d"
  "/root/repo/tests/clocksync_test.cpp" "tests/CMakeFiles/dvc_tests.dir/clocksync_test.cpp.o" "gcc" "tests/CMakeFiles/dvc_tests.dir/clocksync_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/dvc_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/dvc_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/guest_os_test.cpp" "tests/CMakeFiles/dvc_tests.dir/guest_os_test.cpp.o" "gcc" "tests/CMakeFiles/dvc_tests.dir/guest_os_test.cpp.o.d"
  "/root/repo/tests/hw_test.cpp" "tests/CMakeFiles/dvc_tests.dir/hw_test.cpp.o" "gcc" "tests/CMakeFiles/dvc_tests.dir/hw_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/dvc_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/dvc_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/dvc_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/dvc_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/reliable_channel_test.cpp" "tests/CMakeFiles/dvc_tests.dir/reliable_channel_test.cpp.o" "gcc" "tests/CMakeFiles/dvc_tests.dir/reliable_channel_test.cpp.o.d"
  "/root/repo/tests/scenario_config_test.cpp" "tests/CMakeFiles/dvc_tests.dir/scenario_config_test.cpp.o" "gcc" "tests/CMakeFiles/dvc_tests.dir/scenario_config_test.cpp.o.d"
  "/root/repo/tests/scheduler_test.cpp" "tests/CMakeFiles/dvc_tests.dir/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/dvc_tests.dir/scheduler_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/dvc_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/dvc_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/storage_test.cpp" "tests/CMakeFiles/dvc_tests.dir/storage_test.cpp.o" "gcc" "tests/CMakeFiles/dvc_tests.dir/storage_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/dvc_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/dvc_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/vm_test.cpp" "tests/CMakeFiles/dvc_tests.dir/vm_test.cpp.o" "gcc" "tests/CMakeFiles/dvc_tests.dir/vm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dvc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/dvc_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/rm/CMakeFiles/dvc_rm.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/dvc_app.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dvc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dvc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dvc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/clocksync/CMakeFiles/dvc_clocksync.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dvc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
