# Empty dependencies file for dvc_tests.
# This may be replaced when dependencies are built.
