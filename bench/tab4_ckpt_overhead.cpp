// T4 — "measurements ... of the time required by a parallel save and
// restore" (§3.2): HPL runs on a 26-VM virtual cluster with periodic
// NTP-LSC checkpoints at several problem sizes and checkpoint intervals;
// we report the runtime dilation versus the checkpoint-free baseline and
// the cost of one coordinated save and one whole-cluster restore.

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "bench_util.hpp"
#include "scenario.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

constexpr std::uint32_t kRanks = 26;

struct RunResult {
  double makespan_s = 0.0;
  int checkpoints = 0;
  double mean_save_s = 0.0;
  double restore_s = 0.0;
};

RunResult run(std::uint64_t n, sim::Duration interval, std::uint64_t seed) {
  VcScenario sc(paper_substrate(32, seed), /*guest_ram=*/512ull << 20,
                app::make_hpl(n, kRanks, /*iterations=*/64));
  ckpt::NtpLscCoordinator lsc(sc.room.sim, {}, sim::Rng(seed ^ 0xC4));

  RunResult out;
  sim::SummaryStats save_times;
  if (interval > 0) {
    core::DvcManager::RecoveryPolicy policy;
    policy.coordinator = &lsc;
    policy.interval = interval;
    sc.room.dvc->enable_auto_recovery(*sc.vc, policy);
  }
  // Track checkpoint costs by watching the manager's counter move.
  std::uint64_t seen = 0;
  const sim::Time started = sc.room.sim.now();
  while (!sc.application->completed() &&
         sc.room.sim.now() - started < 4 * sim::kHour) {
    sc.room.sim.run_until(sc.room.sim.now() + 5 * sim::kSecond);
    if (sc.room.dvc->checkpoints_taken() > seen) {
      seen = sc.room.dvc->checkpoints_taken();
      // The store records every image write; the per-checkpoint cost is
      // dominated by streaming 26 guests through the shared store.
    }
  }
  out.makespan_s = sc.application->stats().makespan_s;
  out.checkpoints = static_cast<int>(sc.room.dvc->checkpoints_taken());
  // Mean wall time of one coordinated save, from the store's write stats:
  // each checkpoint wrote kRanks images; their mean completion ~ the
  // contended streaming time.
  if (out.checkpoints > 0) {
    out.mean_save_s = sc.room.store.write_time_stats().mean();
  }

  // One whole-cluster restore from the last checkpoint, timed.
  if (interval > 0 && sc.vc->has_checkpoint()) {
    const sim::Time t0 = sc.room.sim.now();
    std::optional<bool> restored;
    sc.room.dvc->restore_vc(*sc.vc, sc.vc->placements(),
                            [&](bool ok) { restored = ok; });
    while (!restored.has_value()) {
      sc.room.sim.run_until(sc.room.sim.now() + sim::kSecond);
    }
    out.restore_s = sim::to_seconds(sc.room.sim.now() - t0);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("T4: checkpoint overhead — HPL on 26 VMs, 512 MiB guests,\n");
  std::printf("    NTP-LSC every T seconds against a 100 MB/s store\n");

  const std::uint64_t sizes[] = {65536, 98304};
  const sim::Duration intervals[] = {0, 1200 * sim::kSecond,
                                     600 * sim::kSecond,
                                     300 * sim::kSecond};

  TextTable table({"hpl n", "ckpt interval", "runtime (s)", "ckpts",
                   "slowdown", "save (s, mean img)", "restore (s)"});
  std::vector<MetricRow> rows;
  for (const std::uint64_t n : sizes) {
    double baseline = 0.0;
    for (const sim::Duration interval : intervals) {
      const RunResult r = run(n, interval, 31 + n);
      if (interval == 0) baseline = r.makespan_s;
      const double slowdown =
          baseline > 0 ? r.makespan_s / baseline - 1.0 : 0.0;
      table.add_row({std::to_string(n),
                     interval == 0
                         ? "none"
                         : std::to_string(interval / sim::kSecond) + " s",
                     fmt(r.makespan_s, 1), std::to_string(r.checkpoints),
                     interval == 0 ? "--" : fmt_pct(slowdown),
                     interval == 0 ? "--" : fmt(r.mean_save_s, 1),
                     interval == 0 ? "--" : fmt(r.restore_s, 1)});
      MetricRow row;
      row.name = "ckpt_overhead/n:" + std::to_string(n) + "/interval_s:" +
                 std::to_string(interval / sim::kSecond);
      row.counters = {{"runtime_s", r.makespan_s},
                      {"checkpoints", static_cast<double>(r.checkpoints)},
                      {"slowdown_frac", slowdown},
                      {"restore_s", r.restore_s}};
      rows.push_back(std::move(row));
    }
  }
  table.print("T4  runtime dilation vs. checkpoint interval");
  std::printf("paper context: 'Both PTRANS and HPL reported a decreased\n"
              "speed in execution time due to the checkpoint.'\n");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
