// T4 — "measurements ... of the time required by a parallel save and
// restore" (§3.2): HPL runs on a 26-VM virtual cluster with periodic
// NTP-LSC checkpoints at several problem sizes and checkpoint intervals;
// we report the runtime dilation versus the checkpoint-free baseline and
// the cost of one coordinated save and one whole-cluster restore.

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "bench_util.hpp"
#include "scenario.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

constexpr std::uint32_t kRanks = 26;

struct RunResult {
  double makespan_s = 0.0;
  int checkpoints = 0;
  double mean_save_s = 0.0;
  double restore_s = 0.0;
};

RunResult run(std::uint64_t n, sim::Duration interval, std::uint64_t seed) {
  VcScenario sc(paper_substrate(32, seed), /*guest_ram=*/512ull << 20,
                app::make_hpl(n, kRanks, /*iterations=*/64));
  ckpt::NtpLscCoordinator lsc(sc.room.sim, {}, sim::Rng(seed ^ 0xC4));
  lsc.set_metrics(&sc.room.metrics);

  RunResult out;
  if (interval > 0) {
    core::DvcManager::RecoveryPolicy policy;
    policy.coordinator = &lsc;
    policy.interval = interval;
    sc.room.dvc->enable_auto_recovery(*sc.vc, policy);
  }
  const sim::Time started = sc.room.sim.now();
  while (!sc.application->completed() &&
         sc.room.sim.now() - started < 4 * sim::kHour) {
    sc.room.sim.run_until(sc.room.sim.now() + 5 * sim::kSecond);
  }
  // Headline numbers come from the room-wide metrics registry: the control
  // plane counts every coordinated checkpoint into `core.dvc.checkpoints`,
  // and the store observes each image write into `storage.store.write_s`
  // (the per-checkpoint cost is dominated by streaming kRanks guests
  // through the contended shared store).
  const telemetry::MetricsRegistry& m = sc.room.metrics;
  out.makespan_s = sc.application->stats().makespan_s;
  out.checkpoints = static_cast<int>(m.counter_value("core.dvc.checkpoints"));
  if (out.checkpoints > 0) {
    if (const auto* w = m.find_histogram("storage.store.write_s")) {
      out.mean_save_s = w->summary().mean();
    }
  }

  // One whole-cluster restore from the last checkpoint; the manager times
  // it into the `core.dvc.restore_s` histogram.
  if (interval > 0 && sc.vc->has_checkpoint()) {
    std::optional<bool> restored;
    sc.room.dvc->restore_vc(*sc.vc, sc.vc->placements(),
                            [&](bool ok) { restored = ok; });
    while (!restored.has_value()) {
      sc.room.sim.run_until(sc.room.sim.now() + sim::kSecond);
    }
    if (const auto* r = m.find_histogram("core.dvc.restore_s")) {
      out.restore_s = r->summary().mean();
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("T4: checkpoint overhead — HPL on 26 VMs, 512 MiB guests,\n");
  std::printf("    NTP-LSC every T seconds against a 100 MB/s store\n");

  const std::uint64_t sizes[] = {65536, 98304};
  const sim::Duration intervals[] = {0, 1200 * sim::kSecond,
                                     600 * sim::kSecond,
                                     300 * sim::kSecond};

  TextTable table({"hpl n", "ckpt interval", "runtime (s)", "ckpts",
                   "slowdown", "save (s, mean img)", "restore (s)"});
  std::vector<MetricRow> rows;
  for (const std::uint64_t n : sizes) {
    double baseline = 0.0;
    for (const sim::Duration interval : intervals) {
      const RunResult r = run(n, interval, 31 + n);
      if (interval == 0) baseline = r.makespan_s;
      const double slowdown =
          baseline > 0 ? r.makespan_s / baseline - 1.0 : 0.0;
      table.add_row({std::to_string(n),
                     interval == 0
                         ? "none"
                         : std::to_string(interval / sim::kSecond) + " s",
                     fmt(r.makespan_s, 1), std::to_string(r.checkpoints),
                     interval == 0 ? "--" : fmt_pct(slowdown),
                     interval == 0 ? "--" : fmt(r.mean_save_s, 1),
                     interval == 0 ? "--" : fmt(r.restore_s, 1)});
      MetricRow row;
      row.name = "ckpt_overhead/n:" + std::to_string(n) + "/interval_s:" +
                 std::to_string(interval / sim::kSecond);
      row.counters = {{"runtime_s", r.makespan_s},
                      {"checkpoints", static_cast<double>(r.checkpoints)},
                      {"slowdown_frac", slowdown},
                      {"restore_s", r.restore_s}};
      rows.push_back(std::move(row));
    }
  }
  table.print("T4  runtime dilation vs. checkpoint interval");
  std::printf("paper context: 'Both PTRANS and HPL reported a decreased\n"
              "speed in execution time due to the checkpoint.'\n");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
