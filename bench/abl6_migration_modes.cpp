// A6 — ablation: how should a virtual cluster move? The paper's §4 names
// parallel migration as the next step; this bench compares the two
// implemented mechanisms:
//   * checkpoint migration (LSC save-and-hold + restore): guests frozen
//     for the whole save+stage+restore;
//   * pre-copy live migration (extension): guests run while memory
//     streams; each pauses only for its final residual.
// Pre-copy trades extra bytes on the wire for orders of magnitude less
// downtime — until the dirtying rate approaches the per-guest bandwidth
// share, where it degenerates toward stop-and-copy.

#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "scenario.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

constexpr std::uint32_t kRanks = 6;
constexpr std::uint64_t kRam = 512ull << 20;

struct Outcome {
  double downtime_s = 0.0;      ///< worst per-guest freeze
  double total_s = 0.0;         ///< migration wall time
  double data_gib = 0.0;        ///< bytes moved
  std::uint32_t iters_during = 0;  ///< app progress while migrating
  bool app_failed = false;
};

core::MachineRoomOptions make_opts(std::uint64_t seed) {
  core::MachineRoomOptions o;
  o.clusters = 2;
  o.nodes_per_cluster = kRanks;
  o.seed = seed;
  o.store.write_bps = 100e6;
  o.store.read_bps = 200e6;
  return o;
}

Outcome run(bool live, double dirty_rate_bps, std::uint64_t seed) {
  core::MachineRoom room(make_opts(seed));
  core::VcSpec spec;
  spec.size = kRanks;
  spec.guest.ram_bytes = kRam;
  spec.guest.dirty_rate_bps = dirty_rate_bps;
  core::VirtualCluster& vc =
      room.dvc->create_vc(spec, *room.dvc->pick_nodes(kRanks), {});
  room.sim.run_until(20 * sim::kSecond);
  app::ParallelApp application(room.sim, room.fabric.network(),
                               vc.contexts(),
                               steady_ptrans(kRanks, 100000, 0.1));
  room.dvc->attach_app(vc, application);
  application.start();
  room.sim.run_until(room.sim.now() + 5 * sim::kSecond);

  const std::uint32_t iter_before = application.rank(0).state().iter;
  const sim::Duration frozen_before = vc.machine(0).total_frozen();
  const sim::Time t0 = room.sim.now();
  std::vector<hw::NodeId> targets;
  for (std::uint32_t i = 0; i < kRanks; ++i) {
    targets.push_back(kRanks + i);  // the second cluster
  }

  Outcome out;
  bool finished = false;
  if (live) {
    core::DvcManager::LiveMigrationConfig cfg;
    cfg.bandwidth_bps = 250e6;
    room.dvc->live_migrate_vc(
        vc, targets, cfg, [&](core::DvcManager::LiveMigrationStats s) {
          finished = true;
          out.downtime_s = sim::to_seconds(s.max_downtime);
          out.total_s = sim::to_seconds(s.total_time);
          out.data_gib = s.bytes_moved / (1ull << 30);
        });
  } else {
    ckpt::NtpLscCoordinator lsc(room.sim, {}, sim::Rng(seed ^ 0x9C));
    room.dvc->migrate_vc(vc, lsc, targets, [&](bool) { finished = true; });
  }
  while (!finished && room.sim.now() - t0 < sim::kHour) {
    room.sim.run_until(room.sim.now() + sim::kSecond);
  }
  if (!live) {
    out.total_s = sim::to_seconds(room.sim.now() - t0);
    out.downtime_s =
        sim::to_seconds(vc.machine(0).total_frozen() - frozen_before);
    out.data_gib = static_cast<double>(kRam) * kRanks * 2 / (1ull << 30);
  }
  // Progress made by the app from migration start until 30 s after.
  room.sim.run_until(room.sim.now() + 30 * sim::kSecond);
  out.iters_during = application.rank(0).state().iter - iter_before;
  out.app_failed = application.failed();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("A6: checkpoint migration vs. pre-copy live migration\n");
  std::printf("    (6 x 512 MiB guests moving across clusters)\n");

  TextTable table({"mechanism", "guest dirty rate", "downtime (s)",
                   "total (s)", "data moved (GiB)", "app iters during+30s",
                   "app ok"});
  std::vector<MetricRow> rows;

  struct Case {
    const char* name;
    bool live;
    double dirty;
  };
  const Case cases[] = {
      {"checkpoint (LSC)", false, 10e6},
      {"pre-copy live", true, 5e6},
      {"pre-copy live", true, 10e6},
      {"pre-copy live", true, 25e6},
      {"pre-copy live", true, 40e6},  // ~ per-guest bandwidth share
  };
  for (const Case& c : cases) {
    const Outcome o = run(c.live, c.dirty, 808);
    table.add_row({c.name, fmt(c.dirty / 1e6, 0) + " MB/s",
                   fmt(o.downtime_s), fmt(o.total_s, 1), fmt(o.data_gib),
                   std::to_string(o.iters_during),
                   o.app_failed ? "FAILED" : "yes"});
    MetricRow row;
    row.name = std::string("migration/") + (c.live ? "live" : "ckpt") +
               "/dirty_mbps:" + fmt(c.dirty / 1e6, 0);
    row.counters = {{"downtime_s", o.downtime_s},
                    {"total_s", o.total_s},
                    {"data_gib", o.data_gib}};
    rows.push_back(std::move(row));
  }
  table.print("A6  migration mechanism trade-off");
  std::printf("checkpoint migration freezes guests for the whole move;\n"
              "pre-copy keeps them computing and pauses each for its\n"
              "residual only — until dirtying outruns the bandwidth share.\n");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
