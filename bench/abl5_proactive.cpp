// A5 — the paper's §1 fault-avoidance claim, quantified: DVC promotes
// "both failure recovery, and avoidance of job failure when hardware
// faults can be predicted." When health monitoring announces a fault
// ahead of time, the whole virtual cluster is migrated off the suspect
// node *before* it dies (no lost work); otherwise the job rolls back to
// the last checkpoint (losing up to one interval).

#include <cstdio>

#include "bench_util.hpp"
#include "scenario.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

constexpr std::uint32_t kRanks = 16;
constexpr std::uint32_t kIterations = 1500;  // x ~0.5 s = ~750 s useful
constexpr double kIterSeconds = 0.5;

struct Outcome {
  bool completed = false;
  double completion_s = 0.0;
  double wasted_s = 0.0;
  std::uint64_t evacuations = 0;
  std::uint64_t rollbacks = 0;
};

Outcome run(bool proactive, double predicted_fraction, std::uint64_t seed) {
  core::MachineRoomOptions opt = paper_substrate(24, seed);
  opt.store.write_bps = 200e6;
  opt.store.read_bps = 400e6;
  core::MachineRoom room(opt);
  room.fabric.subscribe_failures([&room](hw::NodeId n) {
    room.sim.schedule_after(1800 * sim::kSecond,
                            [&room, n] { room.fabric.repair_node(n); });
  });

  core::VcSpec spec;
  spec.size = kRanks;
  spec.guest.ram_bytes = 128ull << 20;
  core::VirtualCluster& vc =
      room.dvc->create_vc(spec, *room.dvc->pick_nodes(kRanks), {});
  room.sim.run_until(20 * sim::kSecond);
  app::ParallelApp application(
      room.sim, room.fabric.network(), vc.contexts(),
      steady_ptrans(kRanks, kIterations, kIterSeconds));
  room.dvc->attach_app(vc, application);
  application.start();

  ckpt::NtpLscCoordinator lsc(room.sim, {}, sim::Rng(seed ^ 0xE7));
  core::DvcManager::RecoveryPolicy policy;
  policy.coordinator = &lsc;
  policy.interval = 300 * sim::kSecond;
  policy.proactive_migration = proactive;
  room.dvc->enable_auto_recovery(vc, policy);

  // Half (or all) the faults announce themselves 2 minutes ahead.
  room.fabric.arm_random_failures(/*mtbf_per_node=*/15000 * sim::kSecond,
                                  predicted_fraction,
                                  /*prediction_lead=*/120 * sim::kSecond);

  const sim::Time started = room.sim.now();
  while (!application.completed() &&
         room.sim.now() - started < 30000 * sim::kSecond) {
    room.sim.run_until(room.sim.now() + 5 * sim::kSecond);
  }

  Outcome out;
  out.completed = application.completed();
  out.completion_s = sim::to_seconds(room.sim.now() - started);
  const double useful_s = kIterations * kIterSeconds / 0.97;
  out.wasted_s =
      std::max(0.0, application.stats().compute_done_s - useful_s);
  out.evacuations = room.dvc->evacuations_performed();
  out.rollbacks = room.dvc->recoveries_performed();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("A5: reactive rollback vs. proactive evacuation under"
              " predicted faults\n");
  std::printf("    (16 VMs, ckpt every 300 s, fault warnings 120 s ahead)\n");

  TextTable table({"policy", "predicted faults", "completed",
                   "completion (s)", "evacuations", "rollbacks",
                   "wasted compute (s)"});
  std::vector<MetricRow> rows;

  struct Case {
    const char* name;
    bool proactive;
    double predicted;
  };
  const Case cases[] = {
      {"reactive only", false, 1.0},
      {"proactive", true, 0.5},
      {"proactive", true, 1.0},
  };
  for (const Case& c : cases) {
    const Outcome o = run(c.proactive, c.predicted, 616);
    table.add_row({c.name, fmt_pct(c.predicted, 0),
                   o.completed ? "yes" : "NO", fmt(o.completion_s, 0),
                   std::to_string(o.evacuations),
                   std::to_string(o.rollbacks), fmt(o.wasted_s, 0)});
    MetricRow row;
    row.name = std::string("proactive/") + c.name + "/pred:" +
               fmt(c.predicted, 1);
    row.counters = {{"completion_s", o.completion_s},
                    {"evacuations", static_cast<double>(o.evacuations)},
                    {"rollbacks", static_cast<double>(o.rollbacks)},
                    {"wasted_s", o.wasted_s}};
    rows.push_back(std::move(row));
  }
  table.print("A5  predicted faults: evacuate instead of roll back");
  std::printf("an evacuation costs one freeze (save+restore) but redoes\n"
              "nothing; a rollback redoes up to a checkpoint interval.\n");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
