// T6 — the paper's wall-clock observation (§3.2): "Since time was not
// virtualized in any virtual machine, the jump in wall time due to the
// checkpoint caused HPL to report a greatly increased execution time."
// We run HPL with one mid-run checkpoint, with and without guest time
// virtualisation (the implied fix, implemented as a GuestConfig option),
// and compare what the application's own clock reports against the truth.

#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "scenario.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

struct Outcome {
  double true_makespan_s = 0.0;
  double reported_s = 0.0;
  double reported_gflops = 0.0;
  double frozen_s = 0.0;
};

Outcome run(bool virtualize_time) {
  const std::uint32_t ranks = 8;
  core::MachineRoomOptions opt = paper_substrate(ranks, 55);
  core::MachineRoom room(opt);
  core::VcSpec spec;
  spec.size = ranks;
  spec.guest.ram_bytes = 1ull << 30;
  spec.guest.virtualize_time = virtualize_time;
  core::VirtualCluster& vc =
      room.dvc->create_vc(spec, *room.dvc->pick_nodes(ranks), {});
  room.sim.run_until(20 * sim::kSecond);

  // HPL sized for ~90 s of real compute.
  app::ParallelApp application(room.sim, room.fabric.network(),
                               vc.contexts(), app::make_hpl(32768, ranks));
  room.dvc->attach_app(vc, application);
  application.start();

  ckpt::NtpLscCoordinator lsc(room.sim, {}, sim::Rng(55));
  room.sim.schedule_after(30 * sim::kSecond, [&] {
    room.dvc->checkpoint_vc(vc, lsc, {});
  });
  room.sim.run();

  Outcome out;
  const app::JobStats st = application.stats();
  out.true_makespan_s = st.makespan_s;
  out.reported_s = st.reported_elapsed_s;
  out.reported_gflops = st.reported_gflops;
  out.frozen_s = sim::to_seconds(vc.machine(0).total_frozen());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("T6: guest wall-clock jump across a checkpoint (HPL's own"
              " timing)\n");

  TextTable table({"guest time", "true runtime (s)", "HPL-reported (s)",
                   "HPL-reported GFLOP/s", "frozen (s)"});
  std::vector<MetricRow> rows;
  for (const bool virt : {false, true}) {
    const Outcome o = run(virt);
    table.add_row({virt ? "virtualised (extension)" : "host time (paper)",
                   fmt(o.true_makespan_s, 1), fmt(o.reported_s, 1),
                   fmt(o.reported_gflops, 1), fmt(o.frozen_s, 1)});
    MetricRow row;
    row.name = std::string("walltime_jump/") +
               (virt ? "virtualised" : "host_time");
    row.counters = {{"true_s", o.true_makespan_s},
                    {"reported_s", o.reported_s},
                    {"reported_gflops", o.reported_gflops},
                    {"frozen_s", o.frozen_s}};
    rows.push_back(std::move(row));
  }
  table.print("T6  reported vs. true execution time");
  std::printf("paper: the non-virtualised guest clock jumps forward by the\n"
              "freeze, so HPL reports a greatly increased execution time\n"
              "(and correspondingly deflated GFLOP/s).\n");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
