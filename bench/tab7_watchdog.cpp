// T7 — the paper's watchdog observation (§3.2): "a software watchdog timer
// was enabled in all virtual machines. Each save and restoration of a
// virtual machine caused a watchdog timeout to be reported. Although this
// did not affect the execution of the environment, it did cause a large
// number of kernel messages to accumulate."
//
// We run repeated checkpoint cycles and count watchdog reports and kernel
// messages per guest, sweeping the watchdog period against the freeze
// duration to show the threshold.

#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "scenario.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

struct Outcome {
  int cycles = 0;
  double timeouts_per_vm = 0.0;
  double kernel_msgs_per_vm = 0.0;
  double freeze_s = 0.0;
  bool app_alive = false;
};

Outcome run(sim::Duration watchdog_period, int cycles) {
  const std::uint32_t ranks = 4;
  core::MachineRoomOptions opt = paper_substrate(ranks, 66);
  core::MachineRoom room(opt);
  core::VcSpec spec;
  spec.size = ranks;
  spec.guest.ram_bytes = 1ull << 30;
  spec.guest.watchdog_period = watchdog_period;
  core::VirtualCluster& vc =
      room.dvc->create_vc(spec, *room.dvc->pick_nodes(ranks), {});
  room.sim.run_until(20 * sim::kSecond);
  app::ParallelApp application(room.sim, room.fabric.network(),
                               vc.contexts(), steady_ptrans(ranks, 100000));
  room.dvc->attach_app(vc, application);
  application.start();

  ckpt::NtpLscCoordinator lsc(room.sim, {}, sim::Rng(66));
  for (int cycle = 0; cycle < cycles; ++cycle) {
    std::optional<ckpt::LscResult> result;
    room.dvc->checkpoint_vc(vc, lsc,
                            [&](ckpt::LscResult r) { result = r; });
    while (!result.has_value()) {
      room.sim.run_until(room.sim.now() + sim::kSecond);
    }
    room.sim.run_until(room.sim.now() + 10 * sim::kSecond);
  }

  Outcome out;
  out.cycles = cycles;
  double timeouts = 0.0;
  double msgs = 0.0;
  for (std::uint32_t i = 0; i < ranks; ++i) {
    timeouts += static_cast<double>(vc.machine(i).watchdog_timeouts());
    msgs += static_cast<double>(vc.machine(i).kernel_messages_total());
  }
  out.timeouts_per_vm = timeouts / ranks;
  out.kernel_msgs_per_vm = msgs / ranks;
  out.freeze_s = sim::to_seconds(vc.machine(0).total_frozen()) / cycles;
  out.app_alive = !application.failed();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("T7: guest watchdog reports across save/restore cycles\n");
  std::printf("    (4 x 1 GiB guests, 100 MB/s store: ~43 s freeze/cycle)\n");

  TextTable table({"watchdog period", "ckpt cycles", "timeouts/vm",
                   "kernel msgs/vm", "freeze s/cycle", "app unaffected"});
  std::vector<MetricRow> rows;
  const sim::Duration periods[] = {10 * sim::kSecond, 60 * sim::kSecond,
                                   600 * sim::kSecond};
  for (const sim::Duration p : periods) {
    const Outcome o = run(p, /*cycles=*/5);
    table.add_row({std::to_string(p / sim::kSecond) + " s",
                   std::to_string(o.cycles), fmt(o.timeouts_per_vm, 1),
                   fmt(o.kernel_msgs_per_vm, 1), fmt(o.freeze_s, 1),
                   o.app_alive ? "yes" : "NO"});
    MetricRow row;
    row.name = "watchdog/period_s:" + std::to_string(p / sim::kSecond);
    row.counters = {{"timeouts_per_vm", o.timeouts_per_vm},
                    {"kernel_msgs_per_vm", o.kernel_msgs_per_vm},
                    {"app_alive", o.app_alive ? 1.0 : 0.0}};
    rows.push_back(std::move(row));
  }
  table.print("T7  watchdog timeouts vs. watchdog period");
  std::printf("paper: one report per save/restore when the freeze exceeds\n"
              "the watchdog period; execution is unaffected either way.\n");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
