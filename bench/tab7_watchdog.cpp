// T7 — the paper's watchdog observation (§3.2): "a software watchdog timer
// was enabled in all virtual machines. Each save and restoration of a
// virtual machine caused a watchdog timeout to be reported. Although this
// did not affect the execution of the environment, it did cause a large
// number of kernel messages to accumulate."
//
// We run repeated checkpoint cycles and count watchdog reports and kernel
// messages per guest, sweeping the watchdog period against the freeze
// duration to show the threshold.

#include <cstdio>
#include <cstdlib>
#include <optional>

#include "bench_util.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "scenario.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

struct Outcome {
  int cycles = 0;
  double timeouts_per_vm = 0.0;
  double kernel_msgs_per_vm = 0.0;
  double freeze_s = 0.0;
  bool app_alive = false;
};

Outcome run(sim::Duration watchdog_period, int cycles,
            double disk_slow_factor = 0.0) {
  const std::uint32_t ranks = 4;
  core::MachineRoomOptions opt = paper_substrate(ranks, 66);
  core::MachineRoom room(opt);
  // Optional injected disk slowdown (DVC_INJECT_FAULTS): a degraded store
  // stretches each save, so freezes — and watchdog reports — grow.
  std::optional<fault::FaultInjector> injector;
  if (disk_slow_factor > 1.0) {
    fault::FaultPlan plan;
    fault::FaultEvent slow;
    slow.kind = fault::FaultKind::kDiskSlow;
    slow.at = 0;
    slow.factor = disk_slow_factor;
    slow.down_for = 100000 * sim::kSecond;  // outlasts every cycle
    plan.add(slow);
    injector.emplace(room.sim,
                     fault::FaultInjector::Hooks{&room.fabric, &room.store,
                                                 room.time.get(), {}, {}},
                     &room.metrics);
    injector->arm(plan);
  }
  core::VcSpec spec;
  spec.size = ranks;
  spec.guest.ram_bytes = 1ull << 30;
  spec.guest.watchdog_period = watchdog_period;
  core::VirtualCluster& vc =
      room.dvc->create_vc(spec, *room.dvc->pick_nodes(ranks), {});
  room.sim.run_until(20 * sim::kSecond);
  app::ParallelApp application(room.sim, room.fabric.network(),
                               vc.contexts(), steady_ptrans(ranks, 100000));
  room.dvc->attach_app(vc, application);
  application.start();

  ckpt::NtpLscCoordinator lsc(room.sim, {}, sim::Rng(66));
  for (int cycle = 0; cycle < cycles; ++cycle) {
    std::optional<ckpt::LscResult> result;
    room.dvc->checkpoint_vc(vc, lsc,
                            [&](ckpt::LscResult r) { result = r; });
    while (!result.has_value()) {
      room.sim.run_until(room.sim.now() + sim::kSecond);
    }
    room.sim.run_until(room.sim.now() + 10 * sim::kSecond);
  }

  Outcome out;
  out.cycles = cycles;
  double timeouts = 0.0;
  double msgs = 0.0;
  for (std::uint32_t i = 0; i < ranks; ++i) {
    timeouts += static_cast<double>(vc.machine(i).watchdog_timeouts());
    msgs += static_cast<double>(vc.machine(i).kernel_messages_total());
  }
  out.timeouts_per_vm = timeouts / ranks;
  out.kernel_msgs_per_vm = msgs / ranks;
  out.freeze_s = sim::to_seconds(vc.machine(0).total_frozen()) / cycles;
  out.app_alive = !application.failed();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("T7: guest watchdog reports across save/restore cycles\n");
  std::printf("    (4 x 1 GiB guests, 100 MB/s store: ~43 s freeze/cycle)\n");

  TextTable table({"watchdog period", "ckpt cycles", "timeouts/vm",
                   "kernel msgs/vm", "freeze s/cycle", "app unaffected"});
  std::vector<MetricRow> rows;
  const sim::Duration periods[] = {10 * sim::kSecond, 60 * sim::kSecond,
                                   600 * sim::kSecond};
  for (const sim::Duration p : periods) {
    const Outcome o = run(p, /*cycles=*/5);
    table.add_row({std::to_string(p / sim::kSecond) + " s",
                   std::to_string(o.cycles), fmt(o.timeouts_per_vm, 1),
                   fmt(o.kernel_msgs_per_vm, 1), fmt(o.freeze_s, 1),
                   o.app_alive ? "yes" : "NO"});
    MetricRow row;
    row.name = "watchdog/period_s:" + std::to_string(p / sim::kSecond);
    row.counters = {{"timeouts_per_vm", o.timeouts_per_vm},
                    {"kernel_msgs_per_vm", o.kernel_msgs_per_vm},
                    {"app_alive", o.app_alive ? 1.0 : 0.0}};
    rows.push_back(std::move(row));
  }
  // Opt-in fault-injection row: deliberately outside the default table so
  // the fault-free output stays byte-stable across runs. An 8x disk
  // slowdown stretches the ~46 s freeze to ~347 s, so the 60 s watchdog —
  // quiet in the clean sweep — now trips on every cycle.
  if (std::getenv("DVC_INJECT_FAULTS") != nullptr) {
    const Outcome o = run(60 * sim::kSecond, /*cycles=*/5,
                          /*disk_slow_factor=*/8.0);
    table.add_row({"60 s + 8x disk slowdown", std::to_string(o.cycles),
                   fmt(o.timeouts_per_vm, 1), fmt(o.kernel_msgs_per_vm, 1),
                   fmt(o.freeze_s, 1), o.app_alive ? "yes" : "NO"});
    MetricRow row;
    row.name = "watchdog/period_s:60_diskslow_x8";
    row.counters = {{"timeouts_per_vm", o.timeouts_per_vm},
                    {"kernel_msgs_per_vm", o.kernel_msgs_per_vm},
                    {"app_alive", o.app_alive ? 1.0 : 0.0}};
    rows.push_back(std::move(row));
  }

  table.print("T7  watchdog timeouts vs. watchdog period");
  std::printf("paper: one report per save/restore when the freeze exceeds\n"
              "the watchdog period; execution is unaffected either way.\n");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
