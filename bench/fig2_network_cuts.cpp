// F2 — the paper's figure 2 and §3 scenarios: which cuts of the network
// state are consistent? A message (scenario 1) or its ACK (scenario 2) is
// in flight when the guests freeze. With a reliable transport the cut is
// always recoverable (retransmit / re-ACK); with an unreliable transport
// the same cuts lose the message — the inconsistent case of figure 2.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "ckpt/ledger.hpp"
#include "net/network.hpp"
#include "net/reliable_channel.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

struct CutOutcome {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicates = 0;
  bool consistent = false;
};

/// Simple unreliable messenger: one datagram per message, no retransmit.
class Datagrams final : public net::PacketSink {
 public:
  Datagrams(net::Network& net, net::Address local, net::Address peer)
      : net_(&net), local_(local), peer_(peer) {
    net.attach(local, this);
  }
  ~Datagrams() override { net_->detach(local_); }

  void send(std::uint64_t msg_id) {
    net::Packet p;
    p.src = local_;
    p.dst = peer_;
    p.kind = net::Packet::Kind::kDatagram;
    p.msg_id = msg_id;
    p.size_bytes = 1024;
    net_->send(p);
  }

  std::uint64_t received = 0;
  std::uint64_t last_msg = 0;

 private:
  void on_packet(const net::Packet& p) override {
    ++received;
    last_msg = p.msg_id;
  }

  net::Network* net_;
  net::Address local_;
  net::Address peer_;
};

/// Runs one cut scenario. `cut_after_delivery` false = scenario 1 (data in
/// flight across the cut), true = scenario 2 (delivered; ACK in flight).
CutOutcome run_reliable(bool cut_after_delivery) {
  sim::Simulation sim;
  auto link = std::make_shared<net::FlatLinkModel>(
      net::FlatLinkModel::Config{100 * sim::kMicrosecond, 0, 0.0, 1e9});
  net::Network net(sim, link, sim::Rng(1));
  const net::HostId ha = net.new_host();
  const net::HostId hb = net.new_host();
  net::ReliableEndpoint a(sim, net, {ha, 1}, {hb, 1});
  net::ReliableEndpoint b(sim, net, {hb, 1}, {ha, 1});
  ckpt::MessageLedger ledger;
  b.set_delivery_handler([&](const net::Message& m) {
    ledger.record_delivery(0, 1, m.id);
  });

  const std::uint64_t id = a.send(1024);
  ledger.record_send(0, 1, id);
  if (cut_after_delivery) {
    // Scenario 2: the data is on the wire; freezing the sender NOW means
    // the receiver's ACK finds a dark NIC and is lost across the cut.
    net.set_host_up(ha, false);
    sim.schedule_after(5 * sim::kMillisecond,
                       [&] { net.set_host_up(hb, false); });
  } else {
    // Scenario 1: freeze the receiver before the packet lands; freeze the
    // sender a few ms later (coordinated checkpoint).
    net.set_host_up(hb, false);
    sim.schedule_after(5 * sim::kMillisecond,
                       [&] { net.set_host_up(ha, false); });
  }
  // Restore both sides of the cut much later.
  sim.schedule_after(2 * sim::kMinute, [&] {
    net.set_host_up(ha, true);
    net.set_host_up(hb, true);
  });
  sim.run();

  CutOutcome out;
  out.sent = ledger.total_sent();
  out.delivered = ledger.total_delivered();
  out.duplicates = b.duplicates_discarded();
  out.consistent = ledger.check().consistent && !a.failed() && !b.failed();
  return out;
}

CutOutcome run_unreliable(bool cut_after_delivery) {
  sim::Simulation sim;
  auto link = std::make_shared<net::FlatLinkModel>(
      net::FlatLinkModel::Config{100 * sim::kMicrosecond, 0, 0.0, 1e9});
  net::Network net(sim, link, sim::Rng(1));
  const net::HostId ha = net.new_host();
  const net::HostId hb = net.new_host();
  Datagrams a(net, {ha, 1}, {hb, 1});
  Datagrams b(net, {hb, 1}, {ha, 1});

  a.send(1);
  if (!cut_after_delivery) {
    net.set_host_up(hb, false);  // the datagram dies with the dark NIC
  }
  sim.schedule_after(5 * sim::kMillisecond, [&] {
    net.set_host_up(ha, false);
    net.set_host_up(hb, false);
  });
  sim.schedule_after(2 * sim::kMinute, [&] {
    net.set_host_up(ha, true);
    net.set_host_up(hb, true);
  });
  sim.run();

  CutOutcome out;
  out.sent = 1;
  out.delivered = b.received;
  out.duplicates = 0;
  out.consistent = b.received == 1;  // nothing retransmits a lost datagram
  return out;
}

/// Scenario 3 (partition fault class): the inter-cluster link partitions
/// with the message in flight. No NIC goes dark — the packet dies on the
/// wire. The partition heals 10 s later, inside the transport retry
/// budget, so the reliable transport masks it by retransmitting across
/// the healed link; the datagram is simply gone.
CutOutcome run_partition(bool reliable_transport) {
  sim::Simulation sim;
  auto link = std::make_shared<net::ClusterLinkModel>(
      net::ClusterLinkModel::Config{});
  net::Network net(sim, link, sim::Rng(1));
  const net::HostId ha = net.new_host();
  const net::HostId hb = net.new_host();
  link->set_cluster(hb, 1);

  link->set_pair_override(0, 1, {.cut = true});
  sim.schedule_after(10 * sim::kSecond,
                     [&] { link->clear_pair_override(0, 1); });

  CutOutcome out;
  if (reliable_transport) {
    net::ReliableEndpoint a(sim, net, {ha, 1}, {hb, 1});
    net::ReliableEndpoint b(sim, net, {hb, 1}, {ha, 1});
    ckpt::MessageLedger ledger;
    b.set_delivery_handler([&](const net::Message& m) {
      ledger.record_delivery(0, 1, m.id);
    });
    const std::uint64_t id = a.send(1024);
    ledger.record_send(0, 1, id);
    sim.run();
    out.sent = ledger.total_sent();
    out.delivered = ledger.total_delivered();
    out.duplicates = b.duplicates_discarded();
    out.consistent = ledger.check().consistent && !a.failed() && !b.failed();
  } else {
    Datagrams a(net, {ha, 1}, {hb, 1});
    Datagrams b(net, {hb, 1}, {ha, 1});
    a.send(1);
    sim.run();
    out.sent = 1;
    out.delivered = b.received;
    out.consistent = b.received == 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("F2: consistent vs. inconsistent cuts of network state\n");
  std::printf("    (paper fig. 2 + the two §3 recovery scenarios)\n");

  TextTable table({"cut scenario", "transport", "sent", "delivered",
                   "dup discarded", "cut consistent"});
  std::vector<MetricRow> rows;

  struct Case {
    const char* scenario;
    bool after_delivery;
    bool reliable;
  };
  const Case cases[] = {
      {"1: data in flight", false, true},
      {"1: data in flight", false, false},
      {"2: ACK in flight", true, true},
      {"2: ACK in flight", true, false},
  };
  for (const Case& c : cases) {
    const CutOutcome out = c.reliable ? run_reliable(c.after_delivery)
                                      : run_unreliable(c.after_delivery);
    table.add_row({c.scenario, c.reliable ? "reliable (TCP)" : "datagram",
                   std::to_string(out.sent), std::to_string(out.delivered),
                   std::to_string(out.duplicates),
                   out.consistent ? "yes" : "NO (lost)"});
    MetricRow row;
    row.name = std::string("fig2/") +
               (c.after_delivery ? "ack_in_flight/" : "data_in_flight/") +
               (c.reliable ? "tcp" : "datagram");
    row.counters = {{"delivered", static_cast<double>(out.delivered)},
                    {"consistent", out.consistent ? 1.0 : 0.0},
                    {"duplicates", static_cast<double>(out.duplicates)}};
    rows.push_back(std::move(row));
  }
  // Opt-in partition rows (same gate as the other fault benches, keeping
  // the default table byte-stable): scenario 3 exercises the partition
  // fault class instead of dark NICs.
  if (std::getenv("DVC_INJECT_FAULTS") != nullptr) {
    for (const bool reliable : {true, false}) {
      const CutOutcome out = run_partition(reliable);
      table.add_row({"3: 10 s partition", reliable ? "reliable (TCP)"
                                                   : "datagram",
                     std::to_string(out.sent), std::to_string(out.delivered),
                     std::to_string(out.duplicates),
                     out.consistent ? "yes" : "NO (lost)"});
      MetricRow row;
      row.name = std::string("fig2/partition/") +
                 (reliable ? "tcp" : "datagram");
      row.counters = {{"delivered", static_cast<double>(out.delivered)},
                      {"consistent", out.consistent ? 1.0 : 0.0},
                      {"duplicates", static_cast<double>(out.duplicates)}};
      rows.push_back(std::move(row));
    }
  }
  table.print("F2  cut consistency by transport");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
