// T3 — "measurements of the overhead required for virtual clusters running
// both sequential and parallel jobs" (abstract). The same workloads run
// natively on the physical nodes and inside a DVC virtual cluster; the
// para-virtualised guests pay the Xen CPU tax (§1: next-gen hardware
// support was expected to push this toward zero) plus a one-time
// provisioning cost.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "scenario.hpp"
#include "vm/native_context.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

double run_native(const app::WorkloadSpec& workload, std::uint64_t seed) {
  core::MachineRoomOptions opt;
  opt.nodes_per_cluster = workload.ranks;
  opt.seed = seed;
  core::MachineRoom room(opt);
  std::vector<std::unique_ptr<vm::NativeContext>> owners;
  std::vector<vm::ExecutionContext*> contexts;
  for (std::uint32_t i = 0; i < workload.ranks; ++i) {
    owners.push_back(
        std::make_unique<vm::NativeContext>(room.sim, room.fabric, i));
    contexts.push_back(owners.back().get());
  }
  app::ParallelApp application(room.sim, room.fabric.network(), contexts,
                               workload);
  application.start();
  room.sim.run();
  return application.stats().makespan_s;
}

struct VirtualRun {
  double makespan_s = 0.0;
  double provision_s = 0.0;
};

VirtualRun run_virtual(const app::WorkloadSpec& workload,
                       std::uint64_t seed) {
  core::MachineRoomOptions opt;
  opt.nodes_per_cluster = workload.ranks;
  opt.seed = seed;
  core::MachineRoom room(opt);
  core::VcSpec spec;
  spec.size = workload.ranks;
  spec.guest.ram_bytes = 512ull << 20;
  bool ready = false;
  core::VirtualCluster& vc =
      room.dvc->create_vc(spec, *room.dvc->pick_nodes(workload.ranks),
                          [&] { ready = true; });
  const sim::Time t0 = room.sim.now();
  while (!ready) room.sim.run_until(room.sim.now() + sim::kSecond);
  VirtualRun out;
  out.provision_s = sim::to_seconds(room.sim.now() - t0);
  app::ParallelApp application(room.sim, room.fabric.network(),
                               vc.contexts(), workload);
  room.dvc->attach_app(vc, application);
  application.start();
  room.sim.run();
  out.makespan_s = application.stats().makespan_s;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("T3: native vs. virtual-cluster execution\n");

  struct Case {
    std::string name;
    app::WorkloadSpec workload;
  };
  std::vector<Case> cases;
  cases.push_back({"sequential 1 TFLOP", app::make_sequential(1e12)});
  cases.push_back({"hpl n=8192 p=8", app::make_hpl(8192, 8)});
  cases.push_back({"hpl n=16384 p=8", app::make_hpl(16384, 8)});
  cases.push_back({"ptrans n=8192 p=8", app::make_ptrans(8192, 8)});
  cases.push_back({"ptrans n=16384 p=8", app::make_ptrans(16384, 8)});

  TextTable table({"workload", "native (s)", "virtual (s)", "overhead",
                   "provision (s)"});
  std::vector<MetricRow> rows;
  for (const Case& c : cases) {
    const double native_s = run_native(c.workload, 21);
    const VirtualRun virt = run_virtual(c.workload, 21);
    const double overhead = virt.makespan_s / native_s - 1.0;
    table.add_row({c.name, fmt(native_s), fmt(virt.makespan_s),
                   fmt_pct(overhead), fmt(virt.provision_s, 1)});
    MetricRow row;
    row.name = "virt_overhead/" + c.name;
    row.counters = {{"native_s", native_s},
                    {"virtual_s", virt.makespan_s},
                    {"overhead_frac", overhead},
                    {"provision_s", virt.provision_s}};
    rows.push_back(std::move(row));
  }
  table.print("T3  virtualisation overhead (runtime, excl. provisioning)");
  std::printf("paper context: para-virt CPU tax ~3%%; provisioning is a\n"
              "one-time per-job cost of booting the virtual cluster.\n");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
