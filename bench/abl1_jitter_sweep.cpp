// A1 — ablation: how much clock synchronisation does NTP-LSC actually
// need? The paper's §3.1 argues "a few milliseconds" of NTP error is
// sufficient. We sweep the host-clock error (no NTP correction; offsets
// drawn with the given spread) and measure the checkpoint failure rate at
// 26 VMs — the knee sits where the firing skew approaches the transport's
// tolerance for a silent peer.

#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "scenario.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

struct Outcome {
  double failure_rate = 0.0;
  double mean_skew_s = 0.0;
};

Outcome run(sim::Duration offset_stddev, int trials) {
  int failures = 0;
  sim::SummaryStats skew;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = 910000 + 31ull * t +
                               static_cast<std::uint64_t>(offset_stddev);
    core::MachineRoomOptions opt = paper_substrate(32, seed);
    opt.time.initial_offset_stddev = offset_stddev;
    opt.presync_clocks = false;  // raw clock error, no NTP discipline
    VcScenario sc(opt, /*guest_ram=*/1ull << 30,
                  steady_ptrans(26, 100000), calibrated_transport());
    ckpt::NtpLscCoordinator lsc(sc.room.sim, {}, sim::Rng(seed ^ 0xAB));
    std::optional<ckpt::LscResult> result;
    sc.room.sim.schedule_after(2 * sim::kSecond, [&] {
      sc.room.dvc->checkpoint_vc(*sc.vc, lsc,
                                 [&](ckpt::LscResult r) { result = r; });
    });
    sim::Time decided = 0;
    while (sc.room.sim.now() < 1500 * sim::kSecond) {
      sc.room.sim.run_until(sc.room.sim.now() + sim::kSecond);
      if (result.has_value()) {
        if (decided == 0) decided = sc.room.sim.now();
        if (sc.application->failed() ||
            sc.room.sim.now() - decided > 15 * sim::kSecond) {
          break;
        }
      }
    }
    const bool failed = sc.application->failed() || !result.has_value() ||
                        !result->ok;
    failures += failed ? 1 : 0;
    if (result.has_value()) {
      skew.add(sim::to_seconds(result->pause_skew));
    }
  }
  return {static_cast<double>(failures) / trials, skew.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("A1: NTP-LSC sensitivity to clock error (26 VMs, calibrated"
              " transport)\n");

  TextTable table({"clock error stddev", "trials", "mean fire skew (s)",
                   "checkpoint failure rate"});
  std::vector<MetricRow> rows;
  const sim::Duration stddevs[] = {
      1 * sim::kMillisecond,   10 * sim::kMillisecond,
      100 * sim::kMillisecond, 500 * sim::kMillisecond,
      1 * sim::kSecond,        2 * sim::kSecond,
      4 * sim::kSecond};
  constexpr int kTrials = 50;
  for (const sim::Duration sd : stddevs) {
    const Outcome o = run(sd, kTrials);
    table.add_row({fmt(sim::to_milliseconds(sd), 0) + " ms",
                   std::to_string(kTrials), fmt(o.mean_skew_s, 3),
                   fmt_pct(o.failure_rate)});
    MetricRow row;
    row.name = "jitter_sweep/stddev_ms:" +
               std::to_string(sd / sim::kMillisecond);
    row.counters = {{"failure_rate", o.failure_rate},
                    {"mean_skew_s", o.mean_skew_s}};
    rows.push_back(std::move(row));
  }
  table.print("A1  failure rate vs. clock synchronisation quality");
  std::printf("paper: millisecond NTP sync leaves orders of magnitude of\n"
              "margin; only multi-second clock error endangers the cut.\n");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
