#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "app/workload.hpp"
#include "ckpt/lsc.hpp"
#include "core/machine_room.hpp"

namespace dvc::bench {

/// A booted virtual cluster with a running parallel application on top of
/// a fresh machine room — the standard starting state of the paper's
/// checkpoint experiments.
struct VcScenario {
  VcScenario(core::MachineRoomOptions opt, std::uint64_t guest_ram,
             app::WorkloadSpec workload, net::ReliableConfig transport = {})
      : room(opt) {
    core::VcSpec spec;
    spec.name = "bench-vc";
    spec.size = workload.ranks;
    spec.guest.ram_bytes = guest_ram;
    const auto placement = room.dvc->pick_nodes(workload.ranks);
    if (!placement) throw std::runtime_error("not enough nodes");
    vc = &room.dvc->create_vc(spec, *placement, {});
    room.sim.run_until(20 * sim::kSecond);  // default boot ends at 15 s
    application = std::make_unique<app::ParallelApp>(
        room.sim, room.fabric.network(), vc->contexts(), workload,
        transport);
    room.dvc->attach_app(*vc, *application);
    application->start();
  }

  core::MachineRoom room;
  core::VirtualCluster* vc = nullptr;
  std::unique_ptr<app::ParallelApp> application;
};

/// Communication-steady PTRANS-like load (one all-to-all round every
/// ~`iter_seconds`), sized so a frozen peer is noticed within one round.
[[nodiscard]] inline app::WorkloadSpec steady_ptrans(app::RankId ranks,
                                                     std::uint32_t iters,
                                                     double iter_seconds =
                                                         0.1) {
  app::WorkloadSpec s;
  s.name = "steady-ptrans";
  s.ranks = ranks;
  s.iterations = iters;
  s.flops_per_rank_iter = iter_seconds * 1e10;  // vs 10 GFLOP/s nodes
  s.pattern = app::Pattern::kAllToAll;
  s.bytes_per_msg = 4096;
  s.working_set_bytes_per_rank = 64ull << 20;
  return s;
}

/// HPL-like load with the same steady pacing but broadcast traffic.
[[nodiscard]] inline app::WorkloadSpec steady_hpl(app::RankId ranks,
                                                  std::uint32_t iters,
                                                  double iter_seconds =
                                                      0.1) {
  app::WorkloadSpec s = app::make_hpl(8192, ranks, iters);
  s.name = "steady-hpl";
  s.flops_per_rank_iter = iter_seconds * 1e10;
  s.bytes_per_msg = 65536;
  return s;
}

/// The 2007-era substrate of the paper's testbed: 1 GiB guests imaged to
/// a ~100 MB/s NFS store, so whole-cluster saves freeze guests for far
/// longer than any transport retry budget.
[[nodiscard]] inline core::MachineRoomOptions paper_substrate(
    std::uint32_t nodes, std::uint64_t seed) {
  core::MachineRoomOptions o;
  o.nodes_per_cluster = nodes;
  o.seed = seed;
  o.store.write_bps = 100e6;
  o.store.read_bps = 200e6;
  return o;
}

/// MPI-over-TCP retry budget calibrated to the paper's observed naive-LSC
/// knee (~12.6 s: fails at 10 nodes half the time, at 12 nearly always).
[[nodiscard]] inline net::ReliableConfig calibrated_transport() {
  net::ReliableConfig t;
  t.initial_rto = 200 * sim::kMillisecond;
  t.backoff = 2.0;
  t.max_retries = 5;
  return t;
}

}  // namespace dvc::bench
