// T1 — the paper's naive-LSC scaling result (§3.1):
//   "The attempts at synchronizing the execution of a save command did not
//    scale beyond 8 nodes, with 10 nodes failing 50% of the time and 12
//    nodes failing 90% of the time."
//
// One program writes `vm save` down a terminal per node; the cumulative
// dispatch skew races the guests' TCP retry budget. We sweep the virtual
// cluster size and report the checkpoint failure rate.

#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "scenario.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

struct TrialOutcome {
  bool failed = false;
  double skew_s = 0.0;
  double save_s = 0.0;
};

TrialOutcome run_trial(std::uint32_t nodes, std::uint64_t seed) {
  VcScenario sc(paper_substrate(nodes, seed), /*guest_ram=*/1ull << 30,
                steady_ptrans(nodes, 100000), calibrated_transport());
  ckpt::NaiveLscCoordinator lsc(sc.room.sim, {}, sim::Rng(seed ^ 0x17A));
  lsc.set_metrics(&sc.room.metrics);
  std::optional<ckpt::LscResult> result;
  sc.room.sim.schedule_after(2 * sim::kSecond, [&] {
    sc.room.dvc->checkpoint_vc(*sc.vc, lsc,
                               [&](ckpt::LscResult r) { result = r; });
  });
  // Run until the outcome is decided: either the application died, or the
  // checkpoint sealed and a grace period (longer than the retry budget)
  // passed without an abort.
  const sim::Duration grace = 15 * sim::kSecond;
  sim::Time decided_at = 0;
  while (sc.room.sim.now() < 1000 * sim::kSecond) {
    sc.room.sim.run_until(sc.room.sim.now() + sim::kSecond);
    if (result.has_value()) {
      if (decided_at == 0) decided_at = sc.room.sim.now();
      if (sc.application->failed() ||
          sc.room.sim.now() - decided_at > grace) {
        break;
      }
    }
  }
  // The headline numbers come from the room-wide metrics registry: the
  // coordinator observed the round's skew and duration into `ckpt.lsc.*`
  // histograms as it ran (one round per trial, so the mean is the value).
  const telemetry::MetricsRegistry& m = sc.room.metrics;
  TrialOutcome out;
  out.failed = sc.application->failed() ||
               m.counter_value("ckpt.lsc.rounds_failed") > 0 ||
               m.counter_value("ckpt.lsc.rounds") == 0;
  if (const auto* skew = m.find_histogram("ckpt.lsc.pause_skew_s")) {
    out.skew_s = skew->summary().mean();
  }
  if (const auto* round = m.find_histogram("ckpt.lsc.round_s")) {
    out.save_s = round->summary().mean();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr int kTrials = 60;
  const std::uint32_t node_counts[] = {2, 4, 6, 8, 10, 12};

  std::printf("T1: naive LSC — parallel `vm save` over terminal fan-out\n");
  std::printf("    (paper: ok through 8 nodes, 50%% fail @ 10, 90%% @ 12)\n");

  TextTable table({"nodes", "trials", "failure rate", "paper", "mean skew (s)",
                   "mean ckpt time (s)"});
  std::vector<MetricRow> rows;
  for (const std::uint32_t n : node_counts) {
    int failures = 0;
    sim::SummaryStats skew;
    sim::SummaryStats save;
    for (int t = 0; t < kTrials; ++t) {
      const TrialOutcome out =
          run_trial(n, 1000ull * n + static_cast<std::uint64_t>(t));
      failures += out.failed ? 1 : 0;
      if (out.skew_s > 0) skew.add(out.skew_s);
      if (out.save_s > 0) save.add(out.save_s);
    }
    const double rate = static_cast<double>(failures) / kTrials;
    const char* paper = n <= 8 ? "~0%" : (n == 10 ? "50%" : "90%");
    table.add_row({std::to_string(n), std::to_string(kTrials),
                   fmt_pct(rate), paper, fmt(skew.mean()),
                   fmt(save.mean(), 1)});
    MetricRow row;
    row.name = "naive_lsc/nodes:" + std::to_string(n);
    row.counters = {{"failure_rate", rate},
                    {"mean_skew_s", skew.mean()},
                    {"mean_ckpt_s", save.mean()}};
    rows.push_back(std::move(row));
  }
  table.print("T1  naive LSC failure rate vs. cluster size");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
