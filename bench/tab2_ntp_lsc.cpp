// T2 — the paper's headline LSC result (§3.2):
//   "In more than 2000 tests involving 26 virtual machines on 26 different
//    nodes, no failures to either save or restore all virtual machines
//    occurred."
//
// All hosts are NTP-synchronised; per-node agents fire `vm save` at one
// agreed local-clock instant. We run 2000+ trials across both HPCC
// workloads the paper used (PTRANS: communication-heavy; HPL:
// compute-heavy) with varying checkpoint timing, and additionally verify
// whole-cluster restore on a fraction of the trials.

#include <cstdio>
#include <optional>
#include <string>

#include "bench_util.hpp"
#include "scenario.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

struct Config {
  std::string name;
  bool ptrans = true;
  double iter_seconds = 0.25;
  int trials = 500;
  int index = 0;
};

struct Tally {
  int trials = 0;
  int save_ok = 0;
  int restore_attempts = 0;
  int restore_ok = 0;
  int app_failures = 0;
  sim::SummaryStats skew_ms{/*keep_samples=*/true};
  sim::SummaryStats save_s;
};

void run_trial(const Config& cfg, int trial, Tally& tally) {
  const std::uint64_t seed = 7700 + 7919ull * static_cast<std::uint64_t>(
      trial) + 1299721ull * static_cast<std::uint64_t>(cfg.index);
  const std::uint32_t kNodes = 26;
  core::MachineRoomOptions opt = paper_substrate(/*nodes=*/32, seed);
  const app::WorkloadSpec workload =
      cfg.ptrans ? steady_ptrans(kNodes, 100000, cfg.iter_seconds)
                 : steady_hpl(kNodes, 100000, cfg.iter_seconds);
  VcScenario sc(opt, /*guest_ram=*/64ull << 20, workload,
                calibrated_transport());

  ckpt::NtpLscCoordinator lsc(sc.room.sim, {}, sim::Rng(seed ^ 0x5A5A));
  lsc.set_metrics(&sc.room.metrics);
  std::optional<ckpt::LscResult> result;
  // "multiple problem sizes ... with varying times between checkpoints":
  // stagger the checkpoint instant across trials.
  const sim::Duration when = (2 + (trial % 5) * 2) * sim::kSecond;
  sc.room.sim.schedule_after(when, [&] {
    sc.room.dvc->checkpoint_vc(*sc.vc, lsc,
                               [&](ckpt::LscResult r) { result = r; });
  });

  const sim::Duration grace = 5 * sim::kSecond;
  sim::Time sealed_at = 0;
  while (sc.room.sim.now() < 600 * sim::kSecond) {
    sc.room.sim.run_until(sc.room.sim.now() + sim::kSecond);
    if (sc.application->failed()) break;
    if (result.has_value()) {
      if (sealed_at == 0) sealed_at = sc.room.sim.now();
      if (sc.room.sim.now() - sealed_at > grace) break;
    }
  }

  ++tally.trials;
  // Headline numbers come from the per-trial metrics registry: one
  // successful round leaves `ckpt.lsc.rounds` == 1 and a single
  // observation in each of the round histograms.
  const telemetry::MetricsRegistry& m = sc.room.metrics;
  const bool round_ok = m.counter_value("ckpt.lsc.rounds") > 0 &&
                        m.counter_value("ckpt.lsc.rounds_failed") == 0;
  const bool save_ok = round_ok && !sc.application->failed();
  tally.save_ok += save_ok ? 1 : 0;
  tally.app_failures += sc.application->failed() ? 1 : 0;
  if (round_ok) {
    if (const auto* skew = m.find_histogram("ckpt.lsc.pause_skew_s")) {
      tally.skew_ms.add(skew->summary().mean() * 1e3);
    }
    if (const auto* round = m.find_histogram("ckpt.lsc.round_s")) {
      tally.save_s.add(round->summary().mean());
    }
  }

  // Every fifth trial additionally restores the whole cluster from the
  // set just taken (onto the same placement, as a restart would) and
  // verifies the application resumes and progresses.
  if (save_ok && trial % 5 == 0) {
    ++tally.restore_attempts;
    sc.room.dvc->restore_vc(*sc.vc, sc.vc->placements(), [](bool) {});
    const auto iter_before = sc.application->rank(0).state().iter;
    sc.room.sim.run_until(sc.room.sim.now() + 60 * sim::kSecond);
    const bool progressed =
        sc.application->rank(0).state().iter > iter_before ||
        sc.application->completed();
    // The control plane counts a successful whole-VC restore into
    // `core.dvc.restores` (failures land in `core.dvc.restore_failures`).
    if (m.counter_value("core.dvc.restores") > 0 && progressed &&
        !sc.application->failed()) {
      ++tally.restore_ok;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Config configs[] = {
      {"ptrans/fast-iter", true, 0.25, 500, 0},
      {"ptrans/slow-iter", true, 0.50, 500, 1},
      {"hpl/fast-iter", false, 0.25, 500, 2},
      {"hpl/slow-iter", false, 0.50, 500, 3},
  };

  std::printf("T2: NTP-scheduled LSC — 26 VMs on 26 nodes\n");
  std::printf("    (paper: >2000 tests, zero save or restore failures)\n");

  TextTable table({"workload", "trials", "save ok", "restore ok",
                   "app failures", "skew ms (mean/max)", "ckpt time (s)"});
  std::vector<MetricRow> rows;
  int total_trials = 0;
  int total_failures = 0;
  for (const Config& cfg : configs) {
    Tally tally;
    for (int t = 0; t < cfg.trials; ++t) run_trial(cfg, t, tally);
    total_trials += tally.trials;
    total_failures += tally.trials - tally.save_ok;
    table.add_row({cfg.name, std::to_string(tally.trials),
                   std::to_string(tally.save_ok) + "/" +
                       std::to_string(tally.trials),
                   std::to_string(tally.restore_ok) + "/" +
                       std::to_string(tally.restore_attempts),
                   std::to_string(tally.app_failures),
                   fmt(tally.skew_ms.mean(), 2) + " / " +
                       fmt(tally.skew_ms.max(), 2),
                   fmt(tally.save_s.mean(), 1)});
    MetricRow row;
    row.name = "ntp_lsc/" + cfg.name;
    row.counters = {
        {"trials", static_cast<double>(tally.trials)},
        {"save_failures",
         static_cast<double>(tally.trials - tally.save_ok)},
        {"restore_failures",
         static_cast<double>(tally.restore_attempts - tally.restore_ok)},
        {"skew_ms_mean", tally.skew_ms.mean()},
        {"skew_ms_p99", tally.skew_ms.percentile(99)},
    };
    rows.push_back(std::move(row));
  }
  table.print("T2  NTP LSC: saves/restores across >2000 trials");
  std::printf("total trials: %d   total save failures: %d\n", total_trials,
              total_failures);

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
