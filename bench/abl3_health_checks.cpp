// A3 — the paper's §4 future work, implemented and measured: "This
// implementation does not take into account a heavily loaded server which
// may not be able to service a checkpoint request immediately, and it does
// not check neighboring processes to make certain that the sleeping
// checkpoint process is still executing."
//
// We starve each per-node agent with some probability. Without the
// coordinated health check a starved agent fires late and the skewed save
// kills the application; with it, the round is abandoned *before any guest
// freezes* and retried — the application never notices.

#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "scenario.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

struct Outcome {
  double app_failure_rate = 0.0;
  double ckpt_success_rate = 0.0;
  double clean_abort_rate = 0.0;
};

Outcome run(double stall_prob, bool health_check, int trials) {
  int app_failures = 0;
  int ckpt_ok = 0;
  int clean_aborts = 0;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed =
        820000 + 37ull * t + (health_check ? 7 : 0) +
        static_cast<std::uint64_t>(stall_prob * 1000);
    VcScenario sc(paper_substrate(12, seed), /*guest_ram=*/1ull << 30,
                  steady_ptrans(12, 100000), calibrated_transport());
    ckpt::NtpLscCoordinator::Config cfg;
    cfg.stall_prob = stall_prob;
    cfg.stall_mean = 30 * sim::kSecond;
    cfg.health_check = health_check;
    cfg.max_attempts = 3;
    ckpt::NtpLscCoordinator lsc(sc.room.sim, cfg, sim::Rng(seed ^ 0x4C));
    std::optional<ckpt::LscResult> result;
    sc.room.sim.schedule_after(2 * sim::kSecond, [&] {
      sc.room.dvc->checkpoint_vc(*sc.vc, lsc,
                                 [&](ckpt::LscResult r) { result = r; });
    });
    sim::Time decided = 0;
    while (sc.room.sim.now() < 1500 * sim::kSecond) {
      sc.room.sim.run_until(sc.room.sim.now() + sim::kSecond);
      if (result.has_value()) {
        if (decided == 0) decided = sc.room.sim.now();
        if (sc.application->failed() ||
            sc.room.sim.now() - decided > 15 * sim::kSecond) {
          break;
        }
      }
    }
    app_failures += sc.application->failed() ? 1 : 0;
    if (result.has_value()) {
      ckpt_ok += (result->ok && !sc.application->failed()) ? 1 : 0;
      clean_aborts += result->aborted_cleanly ? 1 : 0;
    }
  }
  Outcome o;
  o.app_failure_rate = static_cast<double>(app_failures) / trials;
  o.ckpt_success_rate = static_cast<double>(ckpt_ok) / trials;
  o.clean_abort_rate = static_cast<double>(clean_aborts) / trials;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("A3: loaded hosts — health-checked LSC vs. blind LSC\n");
  std::printf("    (12 VMs; a starved agent fires ~30 s late)\n");

  TextTable table({"stall prob", "health check", "app killed",
                   "ckpt succeeded", "aborted cleanly"});
  std::vector<MetricRow> rows;
  constexpr int kTrials = 40;
  for (const double p : {0.05, 0.15, 0.30}) {
    for (const bool hc : {false, true}) {
      const Outcome o = run(p, hc, kTrials);
      table.add_row({fmt_pct(p, 0), hc ? "on (future work)" : "off (paper)",
                     fmt_pct(o.app_failure_rate),
                     fmt_pct(o.ckpt_success_rate),
                     fmt_pct(o.clean_abort_rate)});
      MetricRow row;
      row.name = "health_checks/stall:" + fmt(p, 2) +
                 (hc ? "/on" : "/off");
      row.counters = {{"app_failure_rate", o.app_failure_rate},
                      {"ckpt_success_rate", o.ckpt_success_rate},
                      {"clean_abort_rate", o.clean_abort_rate}};
      rows.push_back(std::move(row));
    }
  }
  table.print("A3  the health check converts crashes into clean retries");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
