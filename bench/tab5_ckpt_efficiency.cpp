// T5 — "a measure of the efficiency of DVC checkpoints vs. application
// specific checkpoints for common applications" (§1) across the paper's
// §2 taxonomy: application-, user-, kernel- and VM-level checkpointing.
// Application-level saves the least data but needs programmer support;
// DVC's VM-level saves the whole guest but is the only fully transparent
// method that can cut a parallel job.

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ckpt/methods.hpp"
#include "scenario.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

constexpr double kStoreBps = 100e6;  // the shared NFS-class store

}  // namespace

int main(int argc, char** argv) {
  std::printf("T5: checkpoint method efficiency (26 ranks, 1 GiB guests,"
              " 100 MB/s store)\n");

  vm::GuestConfig guest;
  guest.ram_bytes = 1ull << 30;

  struct Case {
    std::string name;
    app::WorkloadSpec workload;
  };
  std::vector<Case> cases;
  cases.push_back({"hpl n=32768 p=26", app::make_hpl(32768, 26)});
  cases.push_back({"ptrans n=32768 p=26", app::make_ptrans(32768, 26)});
  cases.push_back({"sequential", app::make_sequential(1e13)});

  TextTable table({"workload", "method", "bytes/rank", "total", "write (s)",
                   "transparent", "relink", "app code", "parallel",
                   "applicable"});
  std::vector<MetricRow> rows;
  for (const Case& c : cases) {
    for (const ckpt::MethodKind kind : ckpt::kAllMethods) {
      const ckpt::MethodProfile prof = ckpt::profile(kind);
      const ckpt::Footprint fp = ckpt::footprint(kind, c.workload, guest);
      const double total = static_cast<double>(fp.bytes) * c.workload.ranks;
      const double write_s =
          fp.applicable ? total / kStoreBps : 0.0;  // contended aggregate
      table.add_row(
          {c.name, std::string(prof.name),
           fp.applicable ? fmt_bytes(static_cast<double>(fp.bytes)) : "--",
           fp.applicable ? fmt_bytes(total) : "--",
           fp.applicable ? fmt(write_s, 1) : "--",
           prof.transparent_to_app ? "yes" : "no",
           prof.requires_relink ? "yes" : "no",
           prof.requires_app_code ? "yes" : "no",
           prof.handles_parallel ? "yes" : "no",
           fp.applicable ? "yes" : "NO"});
      MetricRow row;
      row.name = "ckpt_efficiency/" + c.name + "/" +
                 std::string(prof.name);
      row.counters = {{"bytes_per_rank", static_cast<double>(fp.bytes)},
                      {"applicable", fp.applicable ? 1.0 : 0.0},
                      {"write_s", write_s}};
      rows.push_back(std::move(row));
    }
  }
  table.print("T5  method footprint and restrictions (model)");

  // Cross-check the VM-level model against an actual simulated save of a
  // 26-VM cluster running HPL, and read the per-method sizes out of the
  // live guest's process table (the §2 accounting, measured).
  {
    VcScenario sc(paper_substrate(32, 77), guest.ram_bytes,
                  steady_hpl(26, 100000, 0.5));
    ckpt::NtpLscCoordinator lsc(sc.room.sim, {}, sim::Rng(77));
    std::optional<ckpt::LscResult> result;
    sc.room.sim.schedule_after(2 * sim::kSecond, [&] {
      sc.room.dvc->checkpoint_vc(*sc.vc, lsc,
                                 [&](ckpt::LscResult r) { result = r; });
    });
    while (!result.has_value()) {
      sc.room.sim.run_until(sc.room.sim.now() + sim::kSecond);
    }
    const double measured = sim::to_seconds(result->total_time);
    const double modelled =
        26.0 * static_cast<double>(guest.ram_bytes) / kStoreBps;
    std::printf("\nmeasured whole-cluster VM-level save: %.1f s "
                "(model: %.1f s)\n", measured, modelled);
    MetricRow row;
    row.name = "ckpt_efficiency/measured_vm_save";
    row.counters = {{"measured_s", measured}, {"modelled_s", modelled}};
    rows.push_back(std::move(row));

    // Per-rank checkpoint content measured from the guest process table.
    const vm::GuestOs& os = sc.vc->machine(0).os();
    const vm::Pid pid = sc.application->rank(0).guest_pid();
    std::printf("\nrank 0 checkpoint content, measured in-guest:\n");
    TextTable measured_table({"method", "bytes/rank (measured)"});
    for (const ckpt::MethodKind kind : ckpt::kAllMethods) {
      const ckpt::Footprint fp = ckpt::measured_footprint(
          kind, sc.application->spec(), sc.vc->spec().guest, os, pid);
      measured_table.add_row(
          {std::string(ckpt::profile(kind).name),
           fmt_bytes(static_cast<double>(fp.bytes))});
      MetricRow mrow;
      mrow.name = std::string("ckpt_efficiency/measured/") +
                  std::string(ckpt::profile(kind).name);
      mrow.counters = {{"bytes", static_cast<double>(fp.bytes)}};
      rows.push_back(std::move(mrow));
    }
    measured_table.print("T5b  live guest-OS accounting (rank 0)");
  }

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
