// A9 — the paper's §2.1 baseline, head to head: CoCheck/BLCR-style
// user-level checkpointing (the application is re-linked against a
// checkpoint library that parks ranks and drains the network) versus DVC's
// LSC (freeze whole guests, let TCP heal the cut).
//
// The library writes far less data (process images, not guest images) and
// never freezes the guests — but it only works for applications that can
// be re-linked, and it holds the application for quiesce + write. DVC
// works on anything that boots.

#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "ckpt/cocheck.hpp"
#include "scenario.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

constexpr std::uint32_t kRanks = 16;

struct Outcome {
  double coord_s = 0.0;     ///< quiesce time / pause skew
  double app_held_s = 0.0;  ///< time the application made no progress
  double data_gib = 0.0;
  bool transparent = false;
};

VcScenario make_scenario(std::uint64_t guest_ram, double iter_s) {
  return VcScenario(paper_substrate(kRanks + 2, 4711), guest_ram,
                    steady_ptrans(kRanks, 100000, iter_s));
}

Outcome run_lsc(std::uint64_t guest_ram, double iter_s) {
  VcScenario sc = make_scenario(guest_ram, iter_s);
  ckpt::NtpLscCoordinator lsc(sc.room.sim, {}, sim::Rng(4711));
  std::optional<ckpt::LscResult> result;
  const sim::Duration frozen0 = sc.vc->machine(0).total_frozen();
  sc.room.sim.schedule_after(5 * sim::kSecond, [&] {
    sc.room.dvc->checkpoint_vc(*sc.vc, lsc,
                               [&](ckpt::LscResult r) { result = r; });
  });
  while (!result.has_value()) {
    sc.room.sim.run_until(sc.room.sim.now() + sim::kSecond);
  }
  Outcome o;
  o.coord_s = sim::to_seconds(result->pause_skew);
  o.app_held_s =
      sim::to_seconds(sc.vc->machine(0).total_frozen() - frozen0);
  o.data_gib = static_cast<double>(guest_ram) * kRanks /
               static_cast<double>(1ull << 30);
  o.transparent = true;
  return o;
}

Outcome run_cocheck(std::uint64_t guest_ram, double iter_s) {
  VcScenario sc = make_scenario(guest_ram, iter_s);
  ckpt::CocheckCoordinator cocheck(sc.room.sim);
  std::optional<ckpt::CocheckCoordinator::Result> result;
  vm::GuestConfig guest;
  guest.ram_bytes = guest_ram;
  sc.room.sim.schedule_after(5 * sim::kSecond, [&] {
    cocheck.checkpoint(*sc.application, guest, sc.room.images,
                       [&](ckpt::CocheckCoordinator::Result r) {
                         result = r;
                       });
  });
  while (!result.has_value()) {
    sc.room.sim.run_until(sc.room.sim.now() + sim::kSecond);
  }
  Outcome o;
  o.coord_s = sim::to_seconds(result->quiesce_time);
  o.app_held_s = sim::to_seconds(result->total_time);
  o.data_gib = static_cast<double>(result->bytes_written) /
               static_cast<double>(1ull << 30);
  o.transparent = false;  // the application had to be re-linked
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("A9: DVC LSC vs. CoCheck/BLCR-style user-level checkpointing\n");
  std::printf("    (16-rank PTRANS; store 100 MB/s)\n");

  TextTable table({"method", "guest RAM", "iter time", "coordination (s)",
                   "app held (s)", "data (GiB)", "transparent"});
  std::vector<MetricRow> rows;
  struct Case {
    std::uint64_t ram;
    double iter_s;
    const char* label;
  };
  const Case cases[] = {
      {512ull << 20, 0.1, "0.1 s"},
      {1ull << 30, 0.1, "0.1 s"},
      {1ull << 30, 2.0, "2 s"},  // long iterations: quiesce gets expensive
  };
  for (const Case& c : cases) {
    const Outcome lsc = run_lsc(c.ram, c.iter_s);
    const Outcome cc = run_cocheck(c.ram, c.iter_s);
    const std::string ram = fmt_bytes(static_cast<double>(c.ram));
    table.add_row({"DVC (vm-level LSC)", ram, c.label, fmt(lsc.coord_s, 3),
                   fmt(lsc.app_held_s, 1), fmt(lsc.data_gib, 1), "yes"});
    table.add_row({"CoCheck (user-level)", ram, c.label, fmt(cc.coord_s, 3),
                   fmt(cc.app_held_s, 1), fmt(cc.data_gib, 1),
                   "NO (re-link)"});
    MetricRow row;
    row.name = "cocheck/ram_mib:" + std::to_string(c.ram >> 20) +
               "/iter_s:" + fmt(c.iter_s, 1);
    row.counters = {{"lsc_held_s", lsc.app_held_s},
                    {"cocheck_held_s", cc.app_held_s},
                    {"lsc_gib", lsc.data_gib},
                    {"cocheck_gib", cc.data_gib}};
    rows.push_back(std::move(row));
  }
  table.print("A9  whole-guest vs. process checkpointing");
  std::printf("the user-level library writes ~6x less and skips the guest\n"
              "freeze, but its coordination costs application iterations\n"
              "and it only exists for re-linked applications — the paper's\n"
              "argument for VM-level transparency in one table.\n");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
