// A4 — ablation: the transport retry budget is the load-bearing constant
// of the whole LSC argument ("Reliable network protocols will not retry
// sending forever", §3). With a fixed 10-node naive checkpoint, we sweep
// the number of retransmissions the transport tolerates: small budgets
// make even modest skew fatal; generous budgets forgive the naive
// coordinator entirely.

#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "scenario.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

double run(int max_retries, int trials) {
  int failures = 0;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = 930000 + 41ull * t + max_retries;
    net::ReliableConfig transport;
    transport.max_retries = max_retries;
    VcScenario sc(paper_substrate(10, seed), /*guest_ram=*/1ull << 30,
                  steady_ptrans(10, 100000), transport);
    ckpt::NaiveLscCoordinator lsc(sc.room.sim, {}, sim::Rng(seed ^ 0x7E));
    std::optional<ckpt::LscResult> result;
    sc.room.sim.schedule_after(2 * sim::kSecond, [&] {
      sc.room.dvc->checkpoint_vc(*sc.vc, lsc,
                                 [&](ckpt::LscResult r) { result = r; });
    });
    sim::Time decided = 0;
    while (sc.room.sim.now() < 1500 * sim::kSecond) {
      sc.room.sim.run_until(sc.room.sim.now() + sim::kSecond);
      if (result.has_value()) {
        if (decided == 0) decided = sc.room.sim.now();
        // Grace must exceed the largest swept retry budget.
        if (sc.application->failed() ||
            sc.room.sim.now() - decided > 120 * sim::kSecond) {
          break;
        }
      }
    }
    failures += (sc.application->failed() || !result.has_value() ||
                 !result->ok)
                    ? 1
                    : 0;
  }
  return static_cast<double>(failures) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("A4: naive LSC at 10 nodes vs. transport retry budget\n");

  TextTable table({"max retries", "retry budget (s)", "failure rate"});
  std::vector<MetricRow> rows;
  constexpr int kTrials = 40;
  for (const int retries : {4, 5, 6, 7, 8}) {
    net::ReliableConfig cfg;
    cfg.max_retries = retries;
    const double budget_s = sim::to_seconds(cfg.retry_budget());
    const double rate = run(retries, kTrials);
    table.add_row({std::to_string(retries), fmt(budget_s, 1),
                   fmt_pct(rate)});
    MetricRow row;
    row.name = "timeout_sweep/max_retries:" + std::to_string(retries);
    row.counters = {{"budget_s", budget_s}, {"failure_rate", rate}};
    rows.push_back(std::move(row));
  }
  table.print("A4  failure rate vs. retry budget (10-node naive LSC)");
  std::printf("the knee tracks the budget: the same skewed coordinator is\n"
              "fatal or harmless depending only on how long the transport\n"
              "keeps retrying.\n");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
