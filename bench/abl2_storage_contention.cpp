// A2 — ablation: the shared store bounds checkpoint cost. N guests saving
// simultaneously share the store's write bandwidth, so the whole-cluster
// save takes ~N x the single-guest time — the §1 requirement of "a
// reliable storage system" is also the scalability bottleneck of LSC.

#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "scenario.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

double run(std::uint32_t vms, double write_bps, std::uint64_t guest_ram) {
  core::MachineRoomOptions opt;
  opt.nodes_per_cluster = vms;
  opt.seed = 5150 + vms;
  opt.store.write_bps = write_bps;
  opt.store.read_bps = 2 * write_bps;
  core::MachineRoom room(opt);
  core::VcSpec spec;
  spec.size = vms;
  spec.guest.ram_bytes = guest_ram;
  core::VirtualCluster& vc =
      room.dvc->create_vc(spec, *room.dvc->pick_nodes(vms), {});
  room.sim.run_until(20 * sim::kSecond);

  ckpt::NtpLscCoordinator lsc(room.sim, {}, sim::Rng(opt.seed));
  std::optional<ckpt::LscResult> result;
  room.dvc->checkpoint_vc(vc, lsc, [&](ckpt::LscResult r) { result = r; });
  while (!result.has_value()) {
    room.sim.run_until(room.sim.now() + sim::kSecond);
  }
  return sim::to_seconds(result->total_time);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("A2: whole-cluster save time vs. shared store bandwidth\n");
  std::printf("    (1 GiB guests, idle cluster)\n");

  constexpr std::uint64_t kRam = 1ull << 30;
  const std::uint32_t vm_counts[] = {4, 8, 16, 26};
  const double bandwidths[] = {50e6, 100e6, 200e6, 400e6};

  TextTable table({"store MB/s", "VMs", "ckpt time (s)",
                   "single-guest time (s)", "contention factor"});
  std::vector<MetricRow> rows;
  for (const double bw : bandwidths) {
    for (const std::uint32_t vms : vm_counts) {
      const double total_s = run(vms, bw, kRam);
      const double single_s = static_cast<double>(kRam) / bw;
      table.add_row({fmt(bw / 1e6, 0), std::to_string(vms),
                     fmt(total_s, 1), fmt(single_s, 1),
                     fmt(total_s / single_s, 2)});
      MetricRow row;
      row.name = "storage_contention/bw_mbps:" +
                 std::to_string(static_cast<int>(bw / 1e6)) +
                 "/vms:" + std::to_string(vms);
      row.counters = {{"ckpt_s", total_s},
                      {"contention_factor", total_s / single_s}};
      rows.push_back(std::move(row));
    }
  }
  table.print("A2  save time scales with guests / bandwidth");
  std::printf("the contention factor tracks the VM count: the store, not\n"
              "the coordination, is LSC's scaling cost.\n");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
