// A7 — ablation (extension): incremental whole-guest checkpoints. A full
// VM-level image always writes the entire guest RAM (the cost T4/T5
// charge DVC for); tracking dirty pages lets intermediate checkpoints
// write only what changed since the last image, at the price of staging a
// longer chain on restore. This is the classic answer to "VM-level
// checkpoints are too big" — and it shrinks with the checkpoint interval,
// while full checkpoints do not.

#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "scenario.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

constexpr std::uint32_t kRanks = 8;
constexpr std::uint64_t kRam = 1ull << 30;

struct Outcome {
  double runtime_s = 0.0;
  int checkpoints = 0;
  double gib_written = 0.0;
  double restore_s = 0.0;
  bool completed = false;
};

Outcome run(bool incremental, sim::Duration interval, double dirty_bps,
            std::uint64_t seed) {
  core::MachineRoomOptions opt = paper_substrate(kRanks + 4, seed);
  core::MachineRoom room(opt);
  core::VcSpec spec;
  spec.size = kRanks;
  spec.guest.ram_bytes = kRam;
  spec.guest.dirty_rate_bps = dirty_bps;
  core::VirtualCluster& vc =
      room.dvc->create_vc(spec, *room.dvc->pick_nodes(kRanks), {});
  room.sim.run_until(20 * sim::kSecond);
  app::ParallelApp application(
      room.sim, room.fabric.network(), vc.contexts(),
      steady_ptrans(kRanks, 3000, 0.5));  // ~1550 s of useful compute
  room.dvc->attach_app(vc, application);
  application.start();

  ckpt::NtpLscCoordinator lsc(room.sim, {}, sim::Rng(seed ^ 0xF0));
  core::DvcManager::RecoveryPolicy policy;
  policy.coordinator = &lsc;
  policy.interval = interval;
  policy.incremental = incremental;
  policy.full_every = 6;
  policy.keep_checkpoints = 1;
  room.dvc->enable_auto_recovery(vc, policy);

  const std::uint64_t written_before = room.store.bytes_written_total();
  const sim::Time started = room.sim.now();
  while (!application.completed() &&
         room.sim.now() - started < 3 * sim::kHour) {
    room.sim.run_until(room.sim.now() + 5 * sim::kSecond);
  }
  const double written = static_cast<double>(
      room.store.bytes_written_total() - written_before);

  Outcome out;
  out.completed = application.completed();
  out.runtime_s = sim::to_seconds(room.sim.now() - started);
  out.checkpoints = static_cast<int>(room.dvc->checkpoints_taken());

  // Time one restore from the newest chain.
  if (vc.has_checkpoint()) {
    const sim::Time t0 = room.sim.now();
    std::optional<bool> ok;
    room.dvc->restore_vc(vc, vc.placements(),
                         [&](bool r) { ok = r; });
    while (!ok.has_value()) {
      room.sim.run_until(room.sim.now() + sim::kSecond);
    }
    out.restore_s = sim::to_seconds(room.sim.now() - t0);
  }
  out.gib_written = written / static_cast<double>(1ull << 30);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("A7: full vs. incremental VM-level checkpoints\n");
  std::printf("    (8 x 1 GiB guests, 10 MB/s dirty rate, full image every"
              " 6th round)\n");

  TextTable table({"mode", "interval", "runtime (s)", "ckpts",
                   "ckpt data (GiB)", "restore (s)", "completed"});
  std::vector<MetricRow> rows;
  const sim::Duration intervals[] = {300 * sim::kSecond,
                                     150 * sim::kSecond};
  for (const sim::Duration interval : intervals) {
    for (const bool inc : {false, true}) {
      const Outcome o = run(inc, interval, 10e6, 777);
      table.add_row({inc ? "incremental" : "full",
                     std::to_string(interval / sim::kSecond) + " s",
                     fmt(o.runtime_s, 0), std::to_string(o.checkpoints),
                     fmt(o.gib_written, 1), fmt(o.restore_s, 1),
                     o.completed ? "yes" : "NO"});
      MetricRow row;
      row.name = std::string("incremental/") + (inc ? "inc" : "full") +
                 "/interval_s:" + std::to_string(interval / sim::kSecond);
      row.counters = {{"runtime_s", o.runtime_s},
                      {"checkpoints", static_cast<double>(o.checkpoints)},
                      {"gib_written", o.gib_written},
                      {"restore_s", o.restore_s}};
      rows.push_back(std::move(row));
    }
  }
  table.print("A7  incremental checkpoints cut the dilation");
  std::printf("full images freeze guests for RAM/bandwidth every round;\n"
              "incrementals freeze only for the dirtied fraction, so the\n"
              "job finishes sooner at the same protection level. Restores\n"
              "pay the chain back.\n");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
