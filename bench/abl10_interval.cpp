// A10 — ablation: picking the checkpoint interval. T4/T9 show the
// trade-off empirically; checkpoint-interval theory (Young 1974 / Daly
// 2006) predicts the optimum from two measurable quantities: the cost of
// one coordinated save and the system MTBF. This bench sweeps the
// interval in the simulator and overlays the closed-form predictions —
// the operator guidance a real DVC deployment would ship with.

#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "ckpt/interval.hpp"
#include "scenario.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

constexpr std::uint32_t kRanks = 12;
constexpr std::uint32_t kIterations = 2000;  // x ~1 s = ~2000 s useful
constexpr double kIterSeconds = 1.0;
constexpr sim::Duration kMtbfPerNode = 9000 * sim::kSecond;
// System MTBF ~ per-node MTBF / ranks = 750 s for the 12 busy nodes.

double run_once(sim::Duration interval, std::uint64_t seed) {
  core::MachineRoomOptions opt = paper_substrate(kRanks + 4, seed);
  opt.store.write_bps = 200e6;
  opt.store.read_bps = 400e6;
  core::MachineRoom room(opt);
  room.fabric.subscribe_failures([&room](hw::NodeId n) {
    room.sim.schedule_after(1200 * sim::kSecond,
                            [&room, n] { room.fabric.repair_node(n); });
  });
  core::VcSpec spec;
  spec.size = kRanks;
  spec.guest.ram_bytes = 128ull << 20;
  core::VirtualCluster& vc =
      room.dvc->create_vc(spec, *room.dvc->pick_nodes(kRanks), {});
  room.sim.run_until(20 * sim::kSecond);
  app::ParallelApp application(
      room.sim, room.fabric.network(), vc.contexts(),
      steady_ptrans(kRanks, kIterations, kIterSeconds));
  room.dvc->attach_app(vc, application);
  application.start();
  ckpt::NtpLscCoordinator lsc(room.sim, {}, sim::Rng(seed ^ 0x10));
  core::DvcManager::RecoveryPolicy policy;
  policy.coordinator = &lsc;
  policy.interval = interval;
  room.dvc->enable_auto_recovery(vc, policy);
  room.fabric.arm_random_failures(kMtbfPerNode);

  const sim::Time started = room.sim.now();
  while (!application.completed() &&
         room.sim.now() - started < 50000 * sim::kSecond) {
    room.sim.run_until(room.sim.now() + 5 * sim::kSecond);
  }
  return application.completed()
             ? sim::to_seconds(room.sim.now() - started)
             : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  // Measured quantities feeding the theory.
  const double ckpt_cost_s =
      kRanks * (128.0 * (1 << 20)) / 200e6;  // ~7.9 s coordinated save
  const double system_mtbf_s =
      sim::to_seconds(kMtbfPerNode) / kRanks;  // ~750 s
  const double restart_s = 1.0 + kRanks * (128.0 * (1 << 20)) / 400e6 + 2.0;
  const sim::Duration young = ckpt::young_interval(
      sim::from_seconds(ckpt_cost_s), sim::from_seconds(system_mtbf_s));
  const sim::Duration daly = ckpt::daly_interval(
      sim::from_seconds(ckpt_cost_s), sim::from_seconds(system_mtbf_s));

  std::printf("A10: checkpoint interval — simulation vs. Young/Daly\n");
  std::printf("     save cost ~%.1f s, system MTBF ~%.0f s\n", ckpt_cost_s,
              system_mtbf_s);
  std::printf("     Young optimum: %.0f s   Daly optimum: %.0f s\n",
              sim::to_seconds(young), sim::to_seconds(daly));

  TextTable table({"interval (s)", "runs", "mean completion (s)",
                   "model E[runtime] (s)", "note"});
  std::vector<MetricRow> rows;
  const sim::Duration intervals[] = {
      30 * sim::kSecond,  60 * sim::kSecond,  120 * sim::kSecond,
      240 * sim::kSecond, 480 * sim::kSecond, 960 * sim::kSecond};
  constexpr int kSeeds = 3;
  double best_mean = 1e18;
  sim::Duration best_interval = 0;
  for (const sim::Duration interval : intervals) {
    sim::SummaryStats completion;
    for (int s = 0; s < kSeeds; ++s) {
      const double t = run_once(interval, 5200 + 977ull * s);
      if (t > 0) completion.add(t);
    }
    const double model = ckpt::expected_runtime_s(
        kIterations * kIterSeconds / 0.97, ckpt_cost_s, restart_s,
        system_mtbf_s, sim::to_seconds(interval));
    if (completion.mean() < best_mean && completion.count() > 0) {
      best_mean = completion.mean();
      best_interval = interval;
    }
    std::string note;
    const double i_s = sim::to_seconds(interval);
    if (i_s / sim::to_seconds(young) > 0.5 &&
        i_s / sim::to_seconds(young) < 2.0) {
      note = "~ Young/Daly optimum";
    }
    table.add_row({std::to_string(interval / sim::kSecond),
                   std::to_string(completion.count()),
                   fmt(completion.mean(), 0), fmt(model, 0), note});
    MetricRow row;
    row.name = "interval/s:" + std::to_string(interval / sim::kSecond);
    row.counters = {{"mean_completion_s", completion.mean()},
                    {"model_s", model}};
    rows.push_back(std::move(row));
  }
  table.print("A10  completion time vs. checkpoint interval");
  std::printf("simulated optimum: %lld s   (Young %.0f s, Daly %.0f s)\n",
              static_cast<long long>(best_interval / sim::kSecond),
              sim::to_seconds(young), sim::to_seconds(daly));
  std::printf("the closed forms land on the simulated sweet spot — the\n"
              "right way to configure RecoveryPolicy::interval is from the\n"
              "measured save cost and system MTBF, not folklore.\n");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
