// T8 — the paper's §1 claim: "previous work has demonstrated that a system
// that can transparently span parallel jobs between multiple clusters will
// outperform those same clusters acting independently."
//
// MPI jobs are rigid: they run on exactly the node count they were built
// for. Independent clusters must reject jobs larger than themselves and
// strand free nodes behind fragmentation; DVC virtual clusters span the
// physical boundary, so the same batch completes fully and the machine
// room stays busier.

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hw/cluster.hpp"
#include "rm/scheduler.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

struct Outcome {
  double makespan_h = 0.0;
  double mean_wait_min = 0.0;
  double utilisation = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  double useful_node_hours = 0.0;
};

struct JobShape {
  std::uint32_t nodes;
  int count;
};

Outcome run(bool spanning, sim::Duration per_job_overhead,
            std::span<const JobShape> shapes, std::uint64_t seed) {
  sim::Simulation sim;
  hw::Fabric fabric(sim, {});
  fabric.add_cluster("east", 32);
  fabric.add_cluster("west", 32);
  rm::Scheduler::Config cfg;
  cfg.allow_spanning = spanning;
  cfg.mold_oversized = false;  // MPI jobs are rigid
  rm::Scheduler sched(sim, fabric, cfg);

  double useful = 0.0;
  sched.set_on_finish([&](const rm::JobRecord& j) {
    if (j.state == rm::JobState::kCompleted) {
      useful += j.request.node_seconds_work;
    }
  });

  sim::Rng rng(seed);
  int submitted = 0;
  for (const JobShape& s : shapes) {
    for (int i = 0; i < s.count; ++i) {
      rm::JobRequest req;
      req.name = "job" + std::to_string(submitted++);
      req.nodes_requested = s.nodes;
      // 10-30 minutes of runtime at the requested width.
      req.node_seconds_work = s.nodes * rng.uniform(600.0, 1800.0);
      req.home_cluster = submitted % 2;
      req.startup_overhead = per_job_overhead;
      sched.submit(req);
    }
  }
  sim.run();

  Outcome out;
  out.makespan_h = sim::to_seconds(sched.last_finish()) / 3600.0;
  out.mean_wait_min = sched.wait_stats().mean() / 60.0;
  out.completed = sched.completed();
  out.rejected = sched.failed();
  out.useful_node_hours = useful / 3600.0;
  const double capacity = 64.0 * sim::to_seconds(sched.last_finish());
  out.utilisation = capacity > 0 ? sched.busy_node_seconds() / capacity : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("T8: independent clusters vs. DVC spanning — 44 rigid jobs on"
              " 2 x 32 nodes\n");

  TextTable table({"scheduler", "completed", "rejected", "makespan (h)",
                   "useful node-h", "mean wait (min)", "utilisation"});
  std::vector<MetricRow> rows;

  struct Mode {
    const char* name;
    bool spanning;
    sim::Duration overhead;
  };
  const Mode modes[] = {
      {"independent clusters", false, 0},
      {"DVC spanning", true, 0},
      {"DVC spanning + 30 s VC boot", true, 30 * sim::kSecond},
  };

  // (a) A heavy-tailed batch: 24-node jobs fragment a 32-node cluster and
  // 48-node jobs cannot fit in either cluster alone.
  const JobShape heavy[] = {{8, 16}, {16, 12}, {24, 10}, {48, 6}};
  // (b) A batch every mode can finish, where the win is pure packing:
  // 20-node jobs leave 12-node strays that only spanning can combine.
  const JobShape feasible[] = {{20, 14}, {12, 10}, {8, 8}};

  struct Scenario {
    const char* label;
    std::span<const JobShape> shapes;
  };
  const Scenario scenarios[] = {
      {"oversized-in-mix", heavy},
      {"all-feasible", feasible},
  };
  for (const Scenario& sc : scenarios) {
    for (const Mode& m : modes) {
      const Outcome o = run(m.spanning, m.overhead, sc.shapes, 1234);
      table.add_row({std::string(sc.label) + " / " + m.name,
                     std::to_string(o.completed),
                     std::to_string(o.rejected), fmt(o.makespan_h),
                     fmt(o.useful_node_hours, 0), fmt(o.mean_wait_min, 1),
                     fmt_pct(o.utilisation)});
      MetricRow row;
      row.name = std::string("spanning/") + sc.label + "/" + m.name;
      row.counters = {{"completed", static_cast<double>(o.completed)},
                      {"rejected", static_cast<double>(o.rejected)},
                      {"makespan_h", o.makespan_h},
                      {"useful_node_hours", o.useful_node_hours},
                      {"utilisation", o.utilisation}};
      rows.push_back(std::move(row));
    }
  }
  table.print("T8  spanning vs. independent clusters (rigid jobs)");
  std::printf("paper: the spanning system runs the whole batch — including\n"
              "jobs no single cluster could hold — and packs fragments that\n"
              "independent clusters strand.\n");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
