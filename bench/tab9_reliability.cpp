// T9 — the paper's headline claim (§1): DVC increases reliability because
// "if a single physical node dies, we can restart a checkpoint of the
// entire virtual cluster on a different set of physical nodes."
//
// A 26-rank job needing ~1000 s of useful compute runs on a 32-node
// cluster whose nodes fail randomly (and are repaired). We compare:
//   * restart-from-scratch (no checkpointing — the app dies with the node
//     and starts over), and
//   * DVC auto-recovery at several checkpoint intervals.
// Reported: completion time, failures survived, and redone (wasted) work.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>

#include "bench_util.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "scenario.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

constexpr std::uint32_t kRanks = 26;
constexpr std::uint32_t kIterations = 2000;   // x 0.5 s = 1000 s useful
constexpr double kIterSeconds = 0.5;
constexpr sim::Duration kMtbfPerNode = 20000 * sim::kSecond;
constexpr sim::Duration kRepairTime = 1800 * sim::kSecond;
constexpr sim::Duration kHorizon = 40000 * sim::kSecond;

core::MachineRoomOptions room_options(std::uint64_t seed) {
  core::MachineRoomOptions o = paper_substrate(32, seed);
  o.store.write_bps = 200e6;
  o.store.read_bps = 400e6;
  return o;
}

struct Outcome {
  bool completed = false;
  double completion_s = 0.0;
  std::uint64_t failures = 0;
  std::uint64_t recoveries = 0;   // restarts or rollbacks
  double wasted_compute_s = 0.0;  // redone work, per rank (max)
  double ckpt_overhead = 0.0;     // checkpoints taken
  std::uint64_t verify_failures = 0;  // damaged images caught at restore
  std::uint64_t failovers = 0;        // reads served by a replica
  std::uint64_t fallbacks = 0;        // restores from an older generation
  std::uint64_t coordinator_crashes = 0;
  std::uint64_t coordinator_reboots = 0;
  std::uint64_t fenced_writes = 0;    // deposed-epoch mutations rejected
  std::uint64_t partitions = 0;       // network partitions injected
};

void arm_repairs(core::MachineRoom& room) {
  room.fabric.subscribe_failures([&room](hw::NodeId n) {
    room.sim.schedule_after(kRepairTime,
                            [&room, n] { room.fabric.repair_node(n); });
  });
}

/// Baseline: no checkpointing. When the application dies, everything is
/// torn down and the job restarts from iteration zero on healthy nodes.
Outcome run_restart_from_scratch(std::uint64_t seed) {
  core::MachineRoom room(room_options(seed));
  arm_repairs(room);
  room.fabric.arm_random_failures(kMtbfPerNode);

  Outcome out;
  double compute_done_total = 0.0;
  const sim::Time started = room.sim.now();

  while (room.sim.now() - started < kHorizon) {
    const auto placement = room.dvc->pick_nodes(kRanks);
    if (!placement) {  // not enough healthy nodes right now; wait
      room.sim.run_until(room.sim.now() + 30 * sim::kSecond);
      continue;
    }
    core::VcSpec spec;
    spec.size = kRanks;
    spec.guest.ram_bytes = 128ull << 20;
    bool ready = false;
    core::VirtualCluster& vc =
        room.dvc->create_vc(spec, *placement, [&] { ready = true; });
    const sim::Time boot_deadline = room.sim.now() + 60 * sim::kSecond;
    while (!ready && room.sim.now() < boot_deadline) {
      room.sim.run_until(room.sim.now() + sim::kSecond);
    }
    if (!ready) {  // a boot node died; tear down and try again
      room.dvc->destroy_vc(vc);
      continue;
    }
    auto application = std::make_unique<app::ParallelApp>(
        room.sim, room.fabric.network(), vc.contexts(),
        steady_ptrans(kRanks, kIterations, kIterSeconds));
    room.dvc->attach_app(vc, *application);
    application->start();
    while (!application->completed() && !application->failed() &&
           room.sim.now() - started < kHorizon) {
      room.sim.run_until(room.sim.now() + 5 * sim::kSecond);
    }
    compute_done_total += application->stats().compute_done_s;
    if (application->completed()) {
      out.completed = true;
      out.completion_s = sim::to_seconds(room.sim.now() - started);
      room.dvc->destroy_vc(vc);
      break;
    }
    ++out.recoveries;  // a from-scratch restart
    room.dvc->destroy_vc(vc);
    application.reset();
  }
  out.failures = room.fabric.failures_injected();
  // Useful compute per rank at guest speed (the para-virt tax stretches
  // each nominal iteration second by ~3%).
  const double useful_s = kIterations * kIterSeconds * 1e10 / (10e9 * 0.97);
  out.wasted_compute_s = std::max(0.0, compute_done_total - useful_s);
  return out;
}

/// DVC: periodic NTP-LSC checkpoints + automatic whole-VC recovery. With
/// `inject_faults` (opt-in via DVC_INJECT_FAULTS so the default table stays
/// reproducible bit-for-bit), a seeded fault schedule layers disk
/// slowdowns, clock steps and extra reboot-style crashes on top of the
/// baseline failure process. `storage_faults` swaps in the durability
/// gauntlet (silent corruption + torn writes against the checkpoint
/// store); `replicas` adds k-1 asynchronous store replicas.
Outcome run_dvc(sim::Duration interval, std::uint64_t seed,
                bool inject_faults = false, bool storage_faults = false,
                std::uint32_t replicas = 0, bool control_faults = false) {
  core::MachineRoomOptions opt = room_options(seed);
  opt.store_replicas = replicas;
  if (control_faults) {
    // Same 32 nodes, split across two clusters so a partition has a seam
    // to cut; the VC spans the seam.
    opt.clusters = 2;
    opt.nodes_per_cluster = 16;
  }
  core::MachineRoom room(opt);
  arm_repairs(room);

  core::VcSpec spec;
  spec.size = kRanks;
  spec.guest.ram_bytes = 128ull << 20;
  core::VirtualCluster& vc =
      room.dvc->create_vc(spec, *room.dvc->pick_nodes(kRanks), {});
  room.sim.run_until(20 * sim::kSecond);
  app::ParallelApp application(room.sim, room.fabric.network(),
                               vc.contexts(),
                               steady_ptrans(kRanks, kIterations,
                                             kIterSeconds));
  room.dvc->attach_app(vc, application);
  application.start();

  ckpt::NtpLscCoordinator lsc(room.sim, {}, sim::Rng(seed ^ 0xD5));
  core::DvcManager::RecoveryPolicy policy;
  policy.coordinator = &lsc;
  policy.interval = interval;
  if (control_faults) {
    // Partitions outlasting the transport retry budget kill the app
    // without killing hardware; only the watchdog notices that.
    policy.watchdog_interval = 60 * sim::kSecond;
  }
  room.dvc->enable_auto_recovery(vc, policy);
  if (control_faults) {
    // Node 31 is a spare (the 26 ranks occupy nodes 0..25), so the
    // coordinator's own host survives the job-facing failure process.
    room.dvc->designate_head_node(31);
  }

  // Failures start after the policy is armed (same failure process as the
  // baseline; the baseline just cannot do anything about them).
  room.fabric.arm_random_failures(kMtbfPerNode);

  std::optional<fault::FaultInjector> injector;  // outlives the run loop
  if (inject_faults) {
    fault::StochasticFaults st;
    st.horizon = 20000 * sim::kSecond;
    st.node_crash_mtbf = 10000 * sim::kSecond;
    st.node_down_for = 600 * sim::kSecond;
    if (storage_faults) {
      // Durability gauntlet: the checkpoint store rots and tears while
      // the node-failure process keeps forcing restores that read it.
      st.store_corrupt_mtbf = 1500 * sim::kSecond;
      st.store_tear_mtbf = 2500 * sim::kSecond;
    } else {
      st.disk_slow_mtbf = 4000 * sim::kSecond;
      st.disk_slow_for = 120 * sim::kSecond;
      st.disk_slow_factor = 8.0;
      st.clock_step_mtbf = 3000 * sim::kSecond;
      st.clock_step_max = 400 * sim::kMillisecond;
    }
    if (control_faults) {
      // Control-plane gauntlet: inter-cluster partitions long enough to
      // exhaust the transport retry budget, plus coordinator outages.
      // Rates are against the ~1500-3000 s completion time, not the
      // 40000 s horizon, so several of each land while the job runs.
      st.partition_mtbf = 700 * sim::kSecond;
      st.partition_for = 45 * sim::kSecond;
      st.coordinator_crash_mtbf = 500 * sim::kSecond;
      st.coordinator_down_for = 60 * sim::kSecond;
    }
    fault::FaultPlan plan;
    plan.sample(st, static_cast<std::uint32_t>(room.fabric.node_count()),
                /*cluster_count=*/control_faults ? 2u : 1u,
                sim::Rng(seed ^ 0xFA17),
                static_cast<std::uint32_t>(1 + room.replica_stores.size()));
    fault::FaultInjector::Hooks hooks{&room.fabric, &room.store,
                                      room.time.get(), room.replica_ptrs(),
                                      {}};
    if (control_faults) {
      hooks.coordinator_crash = [&room](sim::Duration down_for) {
        room.dvc->crash_coordinator(down_for);
      };
    }
    injector.emplace(room.sim, hooks, &room.metrics);
    injector->arm(plan);
  }

  const sim::Time started = room.sim.now();
  while (!application.completed() &&
         room.sim.now() - started < kHorizon) {
    room.sim.run_until(room.sim.now() + 5 * sim::kSecond);
  }

  Outcome out;
  out.completed = application.completed();
  out.completion_s = sim::to_seconds(room.sim.now() - started);
  out.failures = room.fabric.failures_injected();
  out.recoveries = room.dvc->recoveries_performed();
  out.ckpt_overhead = static_cast<double>(room.dvc->checkpoints_taken());
  const double useful_s = kIterations * kIterSeconds * 1e10 / (10e9 * 0.97);
  out.wasted_compute_s =
      std::max(0.0, application.stats().compute_done_s - useful_s);
  out.verify_failures =
      room.metrics.counter_value("storage.store.verify_failures");
  out.failovers = room.metrics.counter_value("storage.replica.failovers");
  out.fallbacks = room.dvc->restore_fallbacks();
  out.coordinator_crashes = room.dvc->coordinator_crashes();
  out.coordinator_reboots = room.dvc->coordinator_reboots();
  out.fenced_writes =
      room.metrics.counter_value("storage.images.fenced_writes") +
      room.metrics.counter_value("vm.hypervisor.fenced_commands");
  out.partitions = room.metrics.counter_value("fault.injected.partition");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("T9: reliability — 26-rank job (~1000 s useful compute) on a\n"
              "    32-node cluster with random node failures + repairs\n");

  TextTable table({"policy", "completed", "completion (s)", "node failures",
                   "restarts/recoveries", "ckpts", "wasted compute (s)"});
  std::vector<MetricRow> rows;

  const std::uint64_t kSeed = 4242;

  {
    const Outcome o = run_restart_from_scratch(kSeed);
    table.add_row({"restart from scratch", o.completed ? "yes" : "NO",
                   fmt(o.completion_s, 0), std::to_string(o.failures),
                   std::to_string(o.recoveries), "0",
                   fmt(o.wasted_compute_s, 0)});
    MetricRow row;
    row.name = "reliability/restart_from_scratch";
    row.counters = {{"completion_s", o.completion_s},
                    {"restarts", static_cast<double>(o.recoveries)},
                    {"wasted_s", o.wasted_compute_s}};
    rows.push_back(std::move(row));
  }

  const sim::Duration intervals[] = {600 * sim::kSecond, 300 * sim::kSecond,
                                     120 * sim::kSecond};
  for (const sim::Duration interval : intervals) {
    const Outcome o = run_dvc(interval, kSeed);
    const std::string name =
        "DVC ckpt every " + std::to_string(interval / sim::kSecond) + " s";
    table.add_row({name, o.completed ? "yes" : "NO", fmt(o.completion_s, 0),
                   std::to_string(o.failures), std::to_string(o.recoveries),
                   fmt(o.ckpt_overhead, 0), fmt(o.wasted_compute_s, 0)});
    MetricRow row;
    row.name = "reliability/dvc_interval_s:" +
               std::to_string(interval / sim::kSecond);
    row.counters = {{"completion_s", o.completion_s},
                    {"recoveries", static_cast<double>(o.recoveries)},
                    {"checkpoints", o.ckpt_overhead},
                    {"wasted_s", o.wasted_compute_s}};
    rows.push_back(std::move(row));
  }
  // Opt-in fault-injection row: deliberately outside the default table so
  // the fault-free output stays byte-stable across runs.
  if (std::getenv("DVC_INJECT_FAULTS") != nullptr) {
    const Outcome o = run_dvc(120 * sim::kSecond, kSeed, true);
    table.add_row({"DVC ckpt every 120 s + injected faults",
                   o.completed ? "yes" : "NO", fmt(o.completion_s, 0),
                   std::to_string(o.failures), std::to_string(o.recoveries),
                   fmt(o.ckpt_overhead, 0), fmt(o.wasted_compute_s, 0)});
    MetricRow row;
    row.name = "reliability/dvc_injected_faults";
    row.counters = {{"completion_s", o.completion_s},
                    {"recoveries", static_cast<double>(o.recoveries)},
                    {"checkpoints", o.ckpt_overhead},
                    {"wasted_s", o.wasted_compute_s}};
    rows.push_back(std::move(row));

    // Durability row: storage faults (silent corruption + torn writes)
    // against a k=2 replicated checkpoint store. Replica failover masks
    // most damage; generation fallback catches what slips through.
    const Outcome d = run_dvc(120 * sim::kSecond, kSeed, true,
                              /*storage_faults=*/true, /*replicas=*/1);
    table.add_row({"DVC ckpt 120 s + storage faults (k=2)",
                   d.completed ? "yes" : "NO", fmt(d.completion_s, 0),
                   std::to_string(d.failures), std::to_string(d.recoveries),
                   fmt(d.ckpt_overhead, 0), fmt(d.wasted_compute_s, 0)});
    std::printf("    storage-fault run: %llu verify failures, %llu replica"
                " failovers, %llu generation fallbacks\n",
                static_cast<unsigned long long>(d.verify_failures),
                static_cast<unsigned long long>(d.failovers),
                static_cast<unsigned long long>(d.fallbacks));
    MetricRow drow;
    drow.name = "reliability/dvc_storage_faults_k2";
    drow.counters = {{"completion_s", d.completion_s},
                     {"recoveries", static_cast<double>(d.recoveries)},
                     {"verify_failures",
                      static_cast<double>(d.verify_failures)},
                     {"failovers", static_cast<double>(d.failovers)},
                     {"fallbacks", static_cast<double>(d.fallbacks)}};
    rows.push_back(std::move(drow));

    // Control-plane row: the coordinator itself crashes and the fabric
    // partitions across the inter-cluster seam while the node-failure
    // process keeps running. Epoch fencing keeps deposed writes out of
    // the store and the recovery pass completes or aborts half-open
    // rounds, so the job still finishes.
    const Outcome c = run_dvc(120 * sim::kSecond, kSeed, true,
                              /*storage_faults=*/false, /*replicas=*/0,
                              /*control_faults=*/true);
    table.add_row({"DVC ckpt 120 s + coordinator/partition faults",
                   c.completed ? "yes" : "NO", fmt(c.completion_s, 0),
                   std::to_string(c.failures), std::to_string(c.recoveries),
                   fmt(c.ckpt_overhead, 0), fmt(c.wasted_compute_s, 0)});
    std::printf("    control-fault run: %llu coordinator crashes, %llu"
                " reboots, %llu partitions, %llu fenced writes\n",
                static_cast<unsigned long long>(c.coordinator_crashes),
                static_cast<unsigned long long>(c.coordinator_reboots),
                static_cast<unsigned long long>(c.partitions),
                static_cast<unsigned long long>(c.fenced_writes));
    MetricRow crow;
    crow.name = "reliability/dvc_control_faults";
    crow.counters = {{"completion_s", c.completion_s},
                     {"recoveries", static_cast<double>(c.recoveries)},
                     {"coordinator_crashes",
                      static_cast<double>(c.coordinator_crashes)},
                     {"coordinator_reboots",
                      static_cast<double>(c.coordinator_reboots)},
                     {"partitions", static_cast<double>(c.partitions)},
                     {"fenced_writes",
                      static_cast<double>(c.fenced_writes)}};
    rows.push_back(std::move(crow));
  }

  table.print("T9  job completion under node failures");
  std::printf("paper: DVC bounds lost work to one checkpoint interval and\n"
              "restarts the whole virtual cluster on different nodes,\n"
              "instead of losing the entire run.\n");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
