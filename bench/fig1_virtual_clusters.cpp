// F1 — the paper's figure 1: virtual clusters map onto physical clusters
// flexibly — the whole cluster, a subset, or a span across clusters — and
// the mapping may change completely between instantiations ("a 32 node
// virtual cluster may run on a particular 32 physical nodes in one
// instance, and on a completely separate set at the next").
//
// This bench provisions each mapping on a 2 x 32-node machine room and
// reports where the members landed and what provisioning cost.

#include <algorithm>
#include <cstdio>
#include <set>

#include "bench_util.hpp"
#include "scenario.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

struct Mapping {
  std::uint32_t size = 0;
  std::set<hw::NodeId> nodes;
  std::uint32_t in_cluster0 = 0;
  std::uint32_t in_cluster1 = 0;
  bool spans = false;
  double provision_s = 0.0;
};

Mapping provision(core::MachineRoom& room, std::uint32_t size) {
  core::VcSpec spec;
  spec.name = "fig1";
  spec.size = size;
  spec.guest.ram_bytes = 256ull << 20;
  const auto placement = room.dvc->pick_nodes(size);
  Mapping m;
  m.size = size;
  if (!placement) return m;
  const sim::Time t0 = room.sim.now();
  bool ready = false;
  core::VirtualCluster& vc =
      room.dvc->create_vc(spec, *placement, [&] { ready = true; });
  while (!ready) room.sim.run_until(room.sim.now() + sim::kSecond);
  m.provision_s = sim::to_seconds(room.sim.now() - t0);
  for (const hw::NodeId n : vc.placements()) {
    m.nodes.insert(n);
    if (room.fabric.node(n).cluster() == 0) {
      ++m.in_cluster0;
    } else {
      ++m.in_cluster1;
    }
  }
  m.spans = vc.spans_clusters(room.fabric);
  room.dvc->destroy_vc(vc);
  return m;
}

std::size_t overlap(const Mapping& a, const Mapping& b) {
  std::size_t n = 0;
  for (const auto node : a.nodes) n += b.nodes.count(node);
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  core::MachineRoomOptions opt;
  opt.clusters = 2;
  opt.nodes_per_cluster = 32;
  opt.seed = 11;
  core::MachineRoom room(opt);

  std::printf("F1: dynamic virtual cluster mappings on 2 physical clusters"
              " of 32 nodes\n");

  TextTable table({"mapping", "vc size", "cluster0", "cluster1", "spans",
                   "provision (s)"});
  std::vector<MetricRow> rows;

  const auto add = [&](const char* name, const Mapping& m) {
    table.add_row({name, std::to_string(m.size),
                   std::to_string(m.in_cluster0),
                   std::to_string(m.in_cluster1), m.spans ? "yes" : "no",
                   fmt(m.provision_s, 1)});
    MetricRow row;
    row.name = std::string("fig1/") + name;
    row.counters = {{"vc_size", static_cast<double>(m.size)},
                    {"spans", m.spans ? 1.0 : 0.0},
                    {"provision_s", m.provision_s}};
    rows.push_back(std::move(row));
  };

  // (a) VC the size of a whole physical cluster.
  add("whole-cluster", provision(room, 32));
  // (b) VC on a subset of one cluster.
  add("subset", provision(room, 8));
  // (c) VC bigger than any one cluster: spans both.
  add("spanning", provision(room, 48));

  // (d) Remapping across instantiations: the same 16-node VC lands on a
  // completely different physical set once another tenant holds its old
  // nodes.
  const Mapping first = provision(room, 16);
  // A tenant VC claims (at least) the nodes the first instantiation used.
  core::VcSpec tenant_spec;
  tenant_spec.name = "tenant";
  tenant_spec.size = 16;
  tenant_spec.guest.ram_bytes = 256ull << 20;
  std::vector<hw::NodeId> tenant_nodes(first.nodes.begin(),
                                       first.nodes.end());
  core::VirtualCluster& tenant =
      room.dvc->create_vc(tenant_spec, tenant_nodes, {});
  room.sim.run_until(room.sim.now() + 20 * sim::kSecond);
  const Mapping second = provision(room, 16);
  room.dvc->destroy_vc(tenant);

  add("remap/first", first);
  add("remap/second", second);
  const std::size_t shared = overlap(first, second);
  std::printf("\nremapped 16-node VC: %zu/%u physical nodes shared between"
              " instantiations (paper: may be completely separate)\n",
              shared, 16u);
  MetricRow remap;
  remap.name = "fig1/remap_overlap";
  remap.counters = {{"shared_nodes", static_cast<double>(shared)}};
  rows.push_back(std::move(remap));

  table.print("F1  virtual-to-physical mappings");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
