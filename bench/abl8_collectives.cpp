// A8 — ablation (substrate): how the HPL panel broadcast is implemented
// changes what the virtualisation and checkpoint overheads are measured
// against. A flat broadcast serialises P-1 panel copies on the root's
// egress link; a binomial tree finishes in ~log2(P) serialisations. The
// fabric model (per-host egress serialisation) makes the textbook curve
// measurable — and shows the paper-era MPI implementations' tree
// broadcasts were not an optional nicety at 26+ nodes.

#include <cstdio>
#include <memory>
#include <vector>

#include "app/workload.hpp"
#include "bench_util.hpp"
#include "hw/cluster.hpp"
#include "sim/simulation.hpp"
#include "vm/virtual_machine.hpp"

namespace {

using namespace dvc;          // NOLINT
using namespace dvc::bench;   // NOLINT

double one_broadcast_seconds(app::Pattern pattern, std::uint32_t ranks,
                             std::uint32_t bytes) {
  sim::Simulation sim;
  hw::Fabric fabric(sim, {});
  fabric.add_cluster("a", ranks);
  std::vector<std::unique_ptr<vm::VirtualMachine>> vms;
  std::vector<vm::ExecutionContext*> contexts;
  vm::GuestConfig cfg;
  cfg.ram_bytes = 1 << 20;
  for (std::uint32_t i = 0; i < ranks; ++i) {
    vms.push_back(std::make_unique<vm::VirtualMachine>(
        sim, fabric.network(), i + 1, cfg));
    vms.back()->place_on(fabric.node(i));
    vms.back()->resume();
    contexts.push_back(vms.back().get());
  }
  app::WorkloadSpec s;
  s.ranks = ranks;
  s.iterations = 1;
  s.flops_per_rank_iter = 1.0;  // the broadcast is the whole job
  s.pattern = pattern;
  s.bytes_per_msg = bytes;
  app::ParallelApp app(sim, fabric.network(), contexts, s);
  app.start();
  sim.run();
  return app.stats().makespan_s;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("A8: flat vs. binomial-tree broadcast (the HPL panel move)\n");
  std::printf("    (1 Gbit/s per-host egress links, one panel broadcast)\n");

  TextTable table({"ranks", "panel", "flat (s)", "tree (s)", "speedup"});
  std::vector<MetricRow> rows;
  const std::uint32_t rank_counts[] = {4, 8, 16, 26, 32, 64};
  const std::uint32_t panels[] = {1u << 20, 16u << 20};
  for (const std::uint32_t bytes : panels) {
    for (const std::uint32_t p : rank_counts) {
      const double flat =
          one_broadcast_seconds(app::Pattern::kBroadcast, p, bytes);
      const double tree =
          one_broadcast_seconds(app::Pattern::kTreeBroadcast, p, bytes);
      table.add_row({std::to_string(p), fmt_bytes(bytes), fmt(flat, 3),
                     fmt(tree, 3), fmt(flat / tree, 2) + "x"});
      MetricRow row;
      row.name = "collectives/p:" + std::to_string(p) +
                 "/panel_mib:" + std::to_string(bytes >> 20);
      row.counters = {{"flat_s", flat},
                      {"tree_s", tree},
                      {"speedup", flat / tree}};
      rows.push_back(std::move(row));
    }
  }
  table.print("A8  broadcast algorithm vs. scale");
  std::printf("flat grows linearly in P; the tree's critical path grows\n"
              "logarithmically — already >2x faster at the paper's 26\n"
              "ranks and widening (P / log2 P) from there.\n");

  register_metric_rows(rows);
  return run_benchmark_suite(argc, argv);
}
