#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace dvc::bench {

/// A fixed-width text table for paper-style experiment output.
class TextTable final {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(const std::string& title) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    std::printf("\n=== %s ===\n", title.c_str());
    print_row(headers_, widths);
    std::size_t total = widths.size() ? widths.size() * 3 - 1 : 0;
    for (const auto w : widths) total += w;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row, widths);
    std::fflush(stdout);
  }

 private:
  static void print_row(const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      std::printf("%-*s%s", static_cast<int>(widths[c]), cell.c_str(),
                  c + 1 == widths.size() ? "\n" : " | ");
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

[[nodiscard]] inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

[[nodiscard]] inline std::string fmt_pct(double fraction, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

[[nodiscard]] inline std::string fmt_bytes(double bytes) {
  char buf[64];
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  bytes / static_cast<double>(1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  bytes / static_cast<double>(1ull << 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

/// One named metric bundle produced by an experiment run.
struct MetricRow {
  std::string name;
  std::map<std::string, double> counters;
};

/// Registers each metric row as a single-iteration google-benchmark so the
/// standard flags (--benchmark_format=json, filters, ...) expose the
/// reproduced numbers. The experiment itself ran exactly once, up front;
/// the benchmark bodies only republish its counters.
inline void register_metric_rows(const std::vector<MetricRow>& rows) {
  for (const MetricRow& row : rows) {
    benchmark::RegisterBenchmark(row.name.c_str(),
                                 [row](benchmark::State& state) {
                                   for (auto _ : state) {
                                     benchmark::DoNotOptimize(_);
                                   }
                                   for (const auto& [k, v] : row.counters) {
                                     state.counters[k] = v;
                                   }
                                 })
        ->Iterations(1);
  }
}

/// Standard bench epilogue: print the registered metric rows through the
/// google-benchmark reporter.
inline int run_benchmark_suite(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace dvc::bench
