// Multi-cluster spanning: the paper's goals 2 and 3.
//
// Two physical clusters with different software stacks share a campus
// network. A job submitted to the busy "east" cluster runs unmodified —
// goal 2 — because its virtual cluster carries its own stack; and when
// neither cluster alone has enough free nodes, the virtual cluster
// transparently spans both — goal 3. A FCFS scheduler comparison shows
// why spanning matters for the machine room as a whole.
//
//   ./examples/multi_cluster_span

#include <cstdio>
#include <string>

#include "app/workload.hpp"
#include "core/machine_room.hpp"
#include "rm/scheduler.hpp"

using namespace dvc;  // NOLINT — example brevity

int main() {
  core::MachineRoomOptions opt;
  opt.clusters = 2;
  opt.nodes_per_cluster = 8;
  opt.seed = 3;
  // Campus fabric: fast LAN inside a cluster, slower link between them.
  opt.links.intra = {50 * sim::kMicrosecond, 20 * sim::kMicrosecond, 0.0,
                     125e6};
  opt.links.inter = {1 * sim::kMillisecond, 300 * sim::kMicrosecond, 0.0,
                     30e6};
  core::MachineRoom room(opt);

  // A tenant occupies most of "east": only 3 nodes remain free there,
  // and "west" has 8 — neither cluster alone can host a 10-node job.
  core::VcSpec tenant_spec;
  tenant_spec.name = "tenant";
  tenant_spec.size = 5;
  core::VirtualCluster& tenant = room.dvc->create_vc(
      tenant_spec, {0, 1, 2, 3, 4}, {});
  room.sim.run_until(20 * sim::kSecond);

  // The 10-node virtual cluster spans the boundary transparently.
  core::VcSpec spec;
  spec.name = "spanning-job";
  spec.size = 10;
  core::VirtualCluster& vc =
      room.dvc->create_vc(spec, *room.dvc->pick_nodes(10), {});
  room.sim.run_until(40 * sim::kSecond);
  std::printf("10-VM virtual cluster placement:");
  for (const hw::NodeId n : vc.placements()) {
    std::printf(" node%u(c%u)", n, room.fabric.node(n).cluster());
  }
  std::printf("\nspans physical clusters: %s\n",
              vc.spans_clusters(room.fabric) ? "yes" : "no");

  // Run the parallel job across the span; the inter-cluster tier shows up
  // as extra communication time but nothing else changes for the app.
  app::WorkloadSpec job = app::make_ptrans(8192, 10, /*iterations=*/64);
  app::ParallelApp application(room.sim, room.fabric.network(),
                               vc.contexts(), job);
  room.dvc->attach_app(vc, application);
  application.start();
  room.sim.run_until(room.sim.now() + 600 * sim::kSecond);
  std::printf("spanning PTRANS completed: %s (%.2f s, %llu messages)\n",
              application.completed() ? "yes" : "NO",
              application.stats().makespan_s,
              static_cast<unsigned long long>(application.stats().messages));
  room.dvc->destroy_vc(vc);
  room.dvc->destroy_vc(tenant);

  // Scheduler-level view: the same rigid job stream on two 8-node
  // clusters, with and without spanning.
  std::printf("\nFCFS scheduler comparison (rigid jobs, 2 x 8 nodes):\n");
  for (const bool spanning : {false, true}) {
    sim::Simulation sim;
    hw::Fabric fabric(sim, {});
    fabric.add_cluster("east", 8);
    fabric.add_cluster("west", 8);
    rm::Scheduler::Config cfg;
    cfg.allow_spanning = spanning;
    cfg.mold_oversized = false;
    rm::Scheduler sched(sim, fabric, cfg);
    sim::Rng rng(17);
    const std::uint32_t sizes[] = {5, 3, 5, 10, 2, 6, 12, 4, 5, 3};
    for (const std::uint32_t nodes : sizes) {
      rm::JobRequest req;
      req.nodes_requested = nodes;
      req.node_seconds_work = nodes * rng.uniform(300.0, 900.0);
      sched.submit(req);
    }
    sim.run();
    std::printf("  %-12s completed %llu/10, rejected %llu, makespan %.0f s,"
                " mean wait %.0f s\n",
                spanning ? "spanning:" : "independent:",
                static_cast<unsigned long long>(sched.completed()),
                static_cast<unsigned long long>(sched.failed()),
                sim::to_seconds(sched.last_finish()),
                sched.wait_stats().mean());
  }
  return 0;
}
