// Batch scheduling with DVC underneath (paper §4: "integration with
// resource managers and schedulers like Torque and Moab").
//
// Users submit MPI workloads to an ordinary batch scheduler. For every
// job the VirtualJobRunner provisions a virtual cluster on the allocated
// nodes, runs the workload inside, and protects it with periodic LSC
// checkpoints. When a node dies mid-job, DVC recovers the virtual cluster
// onto spare nodes — the scheduler never even marks the job failed
// (paper §1: the RM keeps scheduling "by using virtualized remote nodes").
//
//   ./examples/batch_scheduler

#include <cstdio>
#include <string>

#include "app/workload.hpp"
#include "ckpt/lsc.hpp"
#include "core/job_runner.hpp"
#include "core/machine_room.hpp"
#include "rm/scheduler.hpp"

using namespace dvc;  // NOLINT — example brevity

int main() {
  core::MachineRoomOptions opt;
  opt.clusters = 2;
  opt.nodes_per_cluster = 10;
  opt.seed = 77;
  opt.store.write_bps = 400e6;
  opt.store.read_bps = 800e6;
  core::MachineRoom room(opt);
  room.trace.set_echo(true);  // narrate the machine room's own log
  room.trace.set_min_level(sim::TraceLevel::kInfo);

  rm::Scheduler::Config cfg;
  cfg.auto_run = false;                   // the runner drives completion
  cfg.allow_spanning = true;              // VCs may cross clusters
  cfg.mold_oversized = false;             // MPI jobs are rigid
  cfg.fail_jobs_on_node_failure = false;  // DVC recovers beneath the RM
  cfg.easy_backfill = true;
  rm::Scheduler scheduler(room.sim, room.fabric, cfg);
  core::VirtualJobRunner runner(room.sim, scheduler, *room.dvc);

  ckpt::NtpLscCoordinator lsc(room.sim, {}, sim::Rng(77));
  core::VirtualJobRunner::Reliability rel;
  rel.coordinator = &lsc;
  rel.interval = 60 * sim::kSecond;
  runner.set_reliability(rel);

  vm::GuestConfig guest;
  guest.ram_bytes = 128ull << 20;

  // A small queue: two wide jobs and two narrow ones (backfill fodder).
  struct Submission {
    app::RankId ranks;
    std::uint32_t iters;
  };
  const Submission queue[] = {{8, 1200}, {12, 1800}, {4, 450}, {6, 750}};
  int finished = 0;
  for (const Submission& s : queue) {
    app::WorkloadSpec w;
    w.name = "job-" + std::to_string(s.ranks) + "x" +
             std::to_string(s.iters);
    w.ranks = s.ranks;
    w.iterations = s.iters;
    w.flops_per_rank_iter = 1e9;  // ~0.1 s per iteration
    w.pattern = app::Pattern::kTreeBroadcast;
    w.bytes_per_msg = 1 << 20;
    runner.submit(w, guest, 0, [&finished, name = w.name](bool ok) {
      std::printf(">>> %s %s\n", name.c_str(),
                  ok ? "completed" : "abandoned");
      ++finished;
    });
  }

  // Mid-run, a node hosting one of the wide jobs dies.
  room.sim.schedule_after(80 * sim::kSecond, [&] {
    room.fabric.fail_node(3);
  });
  room.sim.schedule_after(30 * sim::kMinute, [&] {
    room.fabric.repair_node(3);
  });

  while (finished < 4 && room.sim.now() < 4 * sim::kHour) {
    room.sim.run_until(room.sim.now() + 10 * sim::kSecond);
  }

  std::printf("\n==== scheduler summary ====\n");
  std::printf("completed: %llu   failed: %llu   backfilled: %llu\n",
              static_cast<unsigned long long>(scheduler.completed()),
              static_cast<unsigned long long>(scheduler.failed()),
              static_cast<unsigned long long>(scheduler.backfilled()));
  std::printf("mean wait: %.0f s   busy node-hours: %.1f\n",
              scheduler.wait_stats().mean(),
              scheduler.busy_node_seconds() / 3600.0);
  std::printf("DVC: %llu checkpoints, %llu recoveries\n",
              static_cast<unsigned long long>(room.dvc->checkpoints_taken()),
              static_cast<unsigned long long>(
                  room.dvc->recoveries_performed()));
  return scheduler.completed() == 4 ? 0 : 1;
}
