// Parallel migration (the paper's §4 future work, implemented): a running
// MPI job is moved — all of its virtual machines at once — from one
// physical cluster to another. The mechanism is LSC save-and-hold followed
// by a whole-cluster restore on the target nodes; the application sees one
// freeze and nothing else.
//
//   ./examples/live_migration

#include <cstdio>
#include <string>

#include "app/workload.hpp"
#include "ckpt/lsc.hpp"
#include "core/machine_room.hpp"

using namespace dvc;  // NOLINT — example brevity

namespace {
void show_placement(const core::MachineRoom& room,
                    const core::VirtualCluster& vc, const char* label) {
  std::printf("%s:", label);
  for (const hw::NodeId n : vc.placements()) {
    std::printf(" node%u(c%u)", n, room.fabric.node(n).cluster());
  }
  std::printf("\n");
}
}  // namespace

int main() {
  core::MachineRoomOptions opt;
  opt.clusters = 2;
  opt.nodes_per_cluster = 8;
  opt.seed = 21;
  opt.store.write_bps = 200e6;
  opt.store.read_bps = 400e6;
  core::MachineRoom room(opt);

  core::VcSpec spec;
  spec.name = "migratable";
  spec.size = 6;
  spec.guest.ram_bytes = 512ull << 20;
  // Start packed in cluster 0.
  core::VirtualCluster& vc =
      room.dvc->create_vc(spec, {0, 1, 2, 3, 4, 5}, {});
  room.sim.run_until(20 * sim::kSecond);
  show_placement(room, vc, "initial placement ");

  app::WorkloadSpec job = app::make_ptrans(4096, 6, /*iterations=*/2000);
  job.flops_per_rank_iter = 1e9;  // ~0.1 s compute per iteration
  app::ParallelApp application(room.sim, room.fabric.network(),
                               vc.contexts(), job);
  room.dvc->attach_app(vc, application);
  application.start();
  room.sim.run_until(room.sim.now() + 10 * sim::kSecond);
  const std::uint32_t iter_before = application.rank(0).state().iter;
  std::printf("job running: iteration %u\n", iter_before);

  // Migrate the whole virtual cluster to cluster 1 (e.g. cluster 0 needs
  // maintenance — the fault-avoidance use of migration from §1).
  ckpt::NtpLscCoordinator lsc(room.sim, {}, sim::Rng(21));
  const sim::Time t0 = room.sim.now();
  const sim::Duration frozen_before = vc.machine(0).total_frozen();
  bool migrated = false;
  std::printf("migrating to cluster 1...\n");
  room.dvc->migrate_vc(vc, lsc, {8, 9, 10, 11, 12, 13},
                       [&](bool ok) { migrated = ok; });
  while (!migrated && room.sim.now() - t0 < 600 * sim::kSecond) {
    room.sim.run_until(room.sim.now() + sim::kSecond);
  }
  const double frozen_s =
      sim::to_seconds(vc.machine(0).total_frozen() - frozen_before);
  std::printf("migration %s in %.1f s of wall time\n",
              migrated ? "completed" : "FAILED",
              sim::to_seconds(room.sim.now() - t0));
  show_placement(room, vc, "final placement   ");

  // The application never noticed: same transport connections, same rank
  // state, one freeze.
  room.sim.run_until(room.sim.now() + 30 * sim::kSecond);
  const std::uint32_t iter_after = application.rank(0).state().iter;
  std::printf("job still running: iteration %u -> %u, failed: %s\n",
              iter_before, iter_after,
              application.failed() ? "YES" : "no");
  std::printf("guest frozen for %.1f s total (save + stage + restore)\n",
              frozen_s);
  std::printf("work lost to the move: <= one in-flight iteration\n");
  return (migrated && !application.failed() && iter_after > iter_before)
             ? 0
             : 1;
}
