// Fault-tolerant HPL: the paper's reliability story end to end.
//
// A long HPL-class run executes inside a 16-VM virtual cluster under a
// DVC auto-recovery policy: periodic NTP-LSC checkpoints plus automatic
// whole-cluster rollback whenever a hosting node dies. Nodes fail at
// random and are repaired; the job finishes anyway, losing at most one
// checkpoint interval of work per failure.
//
//   ./examples/fault_tolerant_hpl

#include <cstdio>
#include <string>

#include "app/workload.hpp"
#include "ckpt/lsc.hpp"
#include "core/machine_room.hpp"

using namespace dvc;  // NOLINT — example brevity

namespace {
void stamp(const core::MachineRoom& room, const std::string& msg) {
  std::printf("[t=%7.1fs] %s\n", sim::to_seconds(room.sim.now()),
              msg.c_str());
}
}  // namespace

int main() {
  core::MachineRoomOptions opt;
  opt.nodes_per_cluster = 24;  // 16 for the VC + 8 spares
  opt.seed = 101;
  opt.store.write_bps = 200e6;
  opt.store.read_bps = 400e6;
  core::MachineRoom room(opt);

  // Repairs return failed nodes to the spare pool after 30 minutes.
  room.fabric.subscribe_failures([&](hw::NodeId n) {
    stamp(room, "node" + std::to_string(n) + " FAILED");
    room.sim.schedule_after(30 * sim::kMinute, [&room, n] {
      room.fabric.repair_node(n);
    });
  });

  core::VcSpec spec;
  spec.name = "ft-hpl";
  spec.size = 16;
  spec.guest.ram_bytes = 256ull << 20;
  core::VirtualCluster& vc =
      room.dvc->create_vc(spec, *room.dvc->pick_nodes(16), {});
  room.sim.run_until(20 * sim::kSecond);
  stamp(room, "16-VM virtual cluster booted");

  // ~2000 s of useful compute in a broadcast-heavy (HPL panel) pattern.
  app::WorkloadSpec job = app::make_hpl(16384, 16, /*iterations=*/2000);
  job.flops_per_rank_iter = 1e10;  // ~1 s of compute per iteration
  app::ParallelApp application(room.sim, room.fabric.network(),
                               vc.contexts(), job);
  room.dvc->attach_app(vc, application);
  application.set_on_complete([&] { stamp(room, "HPL COMPLETED"); });
  application.start();
  stamp(room, "HPL started (~2000 s of useful compute)");

  ckpt::NtpLscCoordinator lsc(room.sim, {}, sim::Rng(101));
  core::DvcManager::RecoveryPolicy policy;
  policy.coordinator = &lsc;
  policy.interval = 5 * sim::kMinute;
  room.dvc->enable_auto_recovery(vc, policy);
  stamp(room, "auto-recovery armed: checkpoint every 300 s");

  // Random node failures, aggressive enough to hit the VC a few times.
  room.fabric.arm_random_failures(/*mtbf_per_node=*/2 * sim::kHour);

  std::uint64_t last_ckpts = 0;
  std::uint64_t last_recoveries = 0;
  while (!application.completed() &&
         room.sim.now() < 6 * sim::kHour) {
    room.sim.run_until(room.sim.now() + 10 * sim::kSecond);
    if (room.dvc->checkpoints_taken() != last_ckpts) {
      last_ckpts = room.dvc->checkpoints_taken();
      stamp(room, "checkpoint #" + std::to_string(last_ckpts) + " sealed");
    }
    if (room.dvc->recoveries_performed() != last_recoveries) {
      last_recoveries = room.dvc->recoveries_performed();
      std::string placement = "recovered; placement now:";
      for (const hw::NodeId n : vc.placements()) {
        placement += " node" + std::to_string(n);
      }
      stamp(room, placement);
    }
  }

  const app::JobStats st = application.stats();
  std::printf("\n==== summary ====\n");
  std::printf("completed:            %s\n",
              application.completed() ? "yes" : "NO");
  std::printf("wall time:            %.0f s\n", st.makespan_s);
  const double useful_s = 2000.0 * 1e10 / vc.machine(0).flops();
  std::printf("useful compute:       %.0f s/rank (at guest speed)\n",
              useful_s);
  std::printf("compute incl. redone: %.0f s/rank (waste bounded by the\n"
              "                      checkpoint interval per failure)\n",
              st.compute_done_s);
  std::printf("node failures:        %llu\n",
              static_cast<unsigned long long>(
                  room.fabric.failures_injected()));
  std::printf("recoveries:           %llu\n",
              static_cast<unsigned long long>(
                  room.dvc->recoveries_performed()));
  std::printf("checkpoints:          %llu\n",
              static_cast<unsigned long long>(
                  room.dvc->checkpoints_taken()));
  return application.completed() ? 0 : 1;
}
