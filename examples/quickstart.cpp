// Quickstart: the DVC lifecycle in one file.
//
// Builds a small machine room, boots a 4-VM virtual cluster, runs an MPI
// job inside it, takes a transparent whole-cluster checkpoint while the
// job communicates, kills a physical node, and restores the entire
// virtual cluster — application and in-flight network state included —
// onto a different set of nodes.
//
//   ./examples/quickstart

#include <cstdio>

#include "app/workload.hpp"
#include "ckpt/lsc.hpp"
#include "core/machine_room.hpp"

using namespace dvc;  // NOLINT — example brevity

namespace {
void say(const core::MachineRoom& room, const char* msg) {
  std::printf("[t=%7.1fs] %s\n", sim::to_seconds(room.sim.now()), msg);
}
}  // namespace

int main() {
  // 1. A machine room: one 8-node physical cluster, hypervisor per node,
  //    a shared image store, and NTP-synchronised host clocks.
  core::MachineRoomOptions opt;
  opt.nodes_per_cluster = 8;
  opt.seed = 7;
  core::MachineRoom room(opt);
  say(room, "machine room up: 8 nodes, shared store, clocks synced");

  // 2. Provision a 4-VM virtual cluster (the guests boot a private
  //    software stack; placement is whatever nodes are free).
  core::VcSpec spec;
  spec.name = "quickstart";
  spec.size = 4;
  spec.guest.ram_bytes = 512ull << 20;
  core::VirtualCluster& vc =
      room.dvc->create_vc(spec, *room.dvc->pick_nodes(4), [&] {
        say(room, "virtual cluster booted");
      });
  room.sim.run_until(20 * sim::kSecond);
  std::printf("             placement:");
  for (const hw::NodeId n : vc.placements()) std::printf(" node%u", n);
  std::printf("\n");

  // 3. Run a communication-heavy MPI job inside the guests.
  app::WorkloadSpec job = app::make_ptrans(4096, 4, /*iterations=*/400);
  job.flops_per_rank_iter = 5e8;  // ~50 ms of compute per iteration
  app::ParallelApp application(room.sim, room.fabric.network(),
                               vc.contexts(), job);
  room.dvc->attach_app(vc, application);
  application.set_on_complete([&] { say(room, "application COMPLETED"); });
  application.set_on_failure(
      [&](std::string why) { std::printf("application FAILED: %s\n",
                                         why.c_str()); });
  application.start();
  say(room, "parallel job started (all-to-all transpose, 400 iterations)");

  // 4. Transparent whole-cluster checkpoint: every guest freezes at the
  //    same NTP instant; TCP retransmission absorbs the cut.
  ckpt::NtpLscCoordinator lsc(room.sim, {}, sim::Rng(7));
  room.sim.schedule_after(5 * sim::kSecond, [&] {
    say(room, "taking coordinated checkpoint (NTP-scheduled LSC)...");
    room.dvc->checkpoint_vc(vc, lsc, [&](ckpt::LscResult r) {
      std::printf("[t=%7.1fs] checkpoint %s: skew %.2f ms, %.1f s total\n",
                  sim::to_seconds(room.sim.now()), r.ok ? "sealed" : "FAILED",
                  sim::to_milliseconds(r.pause_skew),
                  sim::to_seconds(r.total_time));
    });
  });
  room.sim.run_until(60 * sim::kSecond);

  // 5. Disaster: the node hosting VM 1 dies.
  const hw::NodeId victim = vc.placement(1);
  room.fabric.fail_node(victim);
  std::printf("[t=%7.1fs] node%u FAILED (hosted VM 1)\n",
              sim::to_seconds(room.sim.now()), victim);

  // 6. Restore the entire virtual cluster from the checkpoint onto a
  //    fresh set of nodes. The job rolls back and keeps going.
  const auto fresh = room.dvc->pick_nodes(4);
  room.dvc->restore_vc(vc, *fresh, [&](bool ok) {
    say(room, ok ? "virtual cluster restored on new nodes"
                 : "restore failed");
    std::printf("             new placement:");
    for (const hw::NodeId n : vc.placements()) std::printf(" node%u", n);
    std::printf("\n");
  });
  room.sim.run_until(room.sim.now() + 1000 * sim::kSecond);

  const app::JobStats st = application.stats();
  std::printf("\njob done: %.1f s wall, %.1f s of rank compute "
              "(incl. redone), %llu messages, %llu retransmits, "
              "%llu duplicate(s) discarded\n",
              st.makespan_s, st.compute_done_s,
              static_cast<unsigned long long>(st.messages),
              static_cast<unsigned long long>(st.retransmissions),
              static_cast<unsigned long long>(st.duplicates));
  std::printf("watchdog timeouts on VM 0: %llu (freeze > watchdog period)\n",
              static_cast<unsigned long long>(
                  vc.machine(0).watchdog_timeouts()));
  return application.completed() ? 0 : 1;
}
